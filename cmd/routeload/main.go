// Command routeload drives load at a routing front-end (anycastd -dns)
// and reports throughput and latency percentiles. Two shapes:
//
//	routeload -addr 127.0.0.1:5300 -service 10.10.0.0 -n 100000
//	    closed loop: each worker sends, waits, repeats
//	routeload -addr 127.0.0.1:5300 -service 10.10.0.0 -rate 50000 -d 10s
//	    open loop: paced senders, answers matched by DNS ID
//
// The -json flag emits the LoadResult for scripting (route_smoke.sh and
// the benchreport route_serving block both consume it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"anycastmap/internal/netsim"
	"anycastmap/internal/route"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5300", "front-end UDP address")
	service := flag.String("service", "", "service prefix to query, e.g. 10.10.0.0 (required)")
	n := flag.Int("n", 100000, "closed-loop query count")
	rate := flag.Float64("rate", 0, "open-loop rate in queries/s (0 = closed loop)")
	dur := flag.Duration("d", 2*time.Second, "open-loop duration")
	workers := flag.Int("workers", 4, "concurrent workers")
	clients := flag.Int("clients", 1024, "distinct synthetic client /24s")
	policy := flag.String("policy", "", "policy label to prefix (empty = server default chain)")
	zone := flag.String("zone", route.DefaultZone, "zone suffix to query under")
	txt := flag.Bool("txt", false, "ask TXT (decision description) instead of A")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	flag.Parse()
	log.SetFlags(0)

	if *service == "" {
		log.Fatal("routeload: -service is required (e.g. -service 10.10.0.0)")
	}
	ip, err := netsim.ParseIP(*service)
	if err != nil {
		log.Fatalf("routeload: bad -service: %v", err)
	}
	var pol route.Policy
	if *policy != "" {
		if pol, err = route.ParsePolicy(*policy); err != nil {
			log.Fatalf("routeload: %v", err)
		}
	}
	cfg := route.LoadConfig{
		Addr:     *addr,
		Workers:  *workers,
		Queries:  *n,
		Duration: *dur,
		RatePerS: *rate,
		Service:  ip.Prefix(),
		Clients:  *clients,
		Policy:   pol,
		Zone:     *zone,
	}
	if *txt {
		cfg.QType = 16
	}

	res, err := route.Run(cfg)
	if err != nil {
		log.Fatalf("routeload: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Println(res)
	}
	if res.Received == 0 {
		os.Exit(1)
	}
}
