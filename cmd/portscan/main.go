// Command portscan runs the Sec. 4.3 service-discovery campaign: it scans
// the representative address of each anycast /24 of the named ASes (or of
// the whole top-100 set) across the full TCP port space and prints the
// per-AS service inventory with fingerprints.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"anycastmap/internal/bgp"
	"anycastmap/internal/cities"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/portscan"
)

func main() {
	asList := flag.String("as", "", "semicolon-separated AS names, e.g. \"EDGECAST,US;L-ROOT,US\" (default: all top-100 ASes)")
	seed := flag.Uint64("seed", 2015, "world seed")
	maxPorts := flag.Int("show", 12, "ports to print per AS")
	flag.Parse()
	log.SetFlags(0)

	cfg := netsim.DefaultConfig()
	cfg.Seed = *seed
	cfg.Unicast24s = 2000 // the scan only touches anycast prefixes
	world := netsim.New(cfg)
	table := bgp.FromWorld(world)
	vp := platform.PlanetLab(cities.Default()).VPs()[0]

	var names []string
	if *asList != "" {
		names = strings.Split(*asList, ";")
	} else {
		for _, as := range world.Registry.Top100() {
			names = append(names, as.Name)
		}
	}

	var targets []netsim.IP
	for _, name := range names {
		as, ok := world.Registry.ByName(strings.TrimSpace(name))
		if !ok {
			log.Fatalf("unknown AS %q", name)
		}
		for _, d := range world.DeploymentsByASN(as.ASN) {
			if ip, alive := world.Representative(d.Prefix); alive {
				targets = append(targets, ip)
			}
		}
	}
	log.Printf("scanning %d representative addresses of %d ASes over the full 2^16 port space...",
		len(targets), len(names))

	start := time.Now()
	camp := portscan.Scan(world, vp, targets, portscan.Config{Round: 1})
	log.Printf("scan done in %v: %d of %d hosts responded",
		time.Since(start).Round(time.Millisecond), camp.RespondingHosts(), len(targets))

	// Aggregate per AS.
	type asAgg struct {
		ports    map[uint16]portscan.OpenPort
		prefixes int
	}
	byAS := map[int]*asAgg{}
	for _, rep := range camp.Reports {
		asn, ok := table.OriginAS(rep.Target.Prefix())
		if !ok {
			continue
		}
		agg := byAS[asn]
		if agg == nil {
			agg = &asAgg{ports: map[uint16]portscan.OpenPort{}}
			byAS[asn] = agg
		}
		agg.prefixes++
		for _, p := range rep.Open {
			agg.ports[p.Port] = p
		}
	}

	asns := make([]int, 0, len(byAS))
	for asn := range byAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return len(byAS[asns[i]].ports) > len(byAS[asns[j]].ports) })

	for _, asn := range asns {
		as, _ := world.Registry.ByASN(asn)
		agg := byAS[asn]
		fmt.Printf("\n%s (%d /24s scanned): %d open ports\n", as.Name, agg.prefixes, len(agg.ports))
		ports := make([]int, 0, len(agg.ports))
		for p := range agg.ports {
			ports = append(ports, int(p))
		}
		sort.Ints(ports)
		shown := 0
		for _, p := range ports {
			if shown >= *maxPorts {
				fmt.Printf("  ... and %d more\n", len(ports)-shown)
				break
			}
			op := agg.ports[uint16(p)]
			sw := op.Software
			if sw == "" {
				sw = "tcpwrapped"
			}
			ssl := ""
			if op.SSL {
				ssl = " [ssl]"
			}
			fmt.Printf("  %5d/tcp %-12s %s%s\n", p, op.Proto, sw, ssl)
			shown++
		}
	}
}
