// Command webview runs a census campaign and serves the results for
// browsing, the equivalent of the paper's public dataset site ([21]):
// an HTML index at /, a JSON API at /api/findings, and per-deployment
// GeoJSON at /api/geojson?prefix=A.B.C.0/24.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"anycastmap/internal/experiments"
	"anycastmap/internal/webview"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	unicast := flag.Int("unicast24s", 6000, "unicast /24 background size for the campaign")
	censuses := flag.Int("censuses", 4, "census rounds")
	seed := flag.Uint64("seed", 2015, "world seed")
	flag.Parse()
	log.SetFlags(0)

	cfg := experiments.DefaultLabConfig()
	cfg.Unicast24s = *unicast
	cfg.Censuses = *censuses
	cfg.Seed = *seed

	log.Printf("running census campaign (%d unicast /24s, %d censuses)...", cfg.Unicast24s, cfg.Censuses)
	start := time.Now()
	lab := experiments.NewLab(cfg)
	log.Printf("campaign done in %v: %d anycast /24s detected", time.Since(start).Round(time.Millisecond), len(lab.Findings))

	srv, err := webview.New(lab.Findings, lab.World.Registry)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving census results on http://%s/", *addr)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}
