// Command webview runs a census campaign and serves the results for
// browsing, the equivalent of the paper's public dataset site ([21]):
// an HTML index at /, a JSON API at /api/findings, and per-deployment
// GeoJSON at /api/geojson?prefix=A.B.C.0/24.
//
// The browser reads from the same hot-swappable store that backs
// cmd/anycastd; with -refresh > 0 a background refresher re-runs census
// rounds and the page picks up the new results without a restart.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/experiments"
	"anycastmap/internal/store"
	"anycastmap/internal/webview"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	unicast := flag.Int("unicast24s", 6000, "unicast /24 background size for the campaign")
	censuses := flag.Int("censuses", 4, "census rounds")
	seed := flag.Uint64("seed", 2015, "world seed")
	refresh := flag.Duration("refresh", 0, "re-run censuses and hot-swap the index at this interval (0 = static)")
	flag.Parse()
	log.SetFlags(0)

	cfg := experiments.DefaultLabConfig()
	cfg.Unicast24s = *unicast
	cfg.Censuses = *censuses
	cfg.Seed = *seed

	log.Printf("running census campaign (%d unicast /24s, %d censuses)...", cfg.Unicast24s, cfg.Censuses)
	start := time.Now()
	lab := experiments.NewLab(cfg)
	log.Printf("campaign done in %v: %d anycast /24s detected", time.Since(start).Round(time.Millisecond), len(lab.Findings))

	st := store.New(store.Options{})
	st.Publish(store.NewSnapshot(lab.Findings, lab.World.Registry, uint64(cfg.Censuses), cfg.Censuses))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *refresh > 0 {
		src := &store.CensusSource{
			World:     lab.World,
			Cities:    lab.Cities,
			Platform:  lab.PL,
			Table:     lab.Table,
			Registry:  lab.World.Registry,
			Hitlist:   lab.Hitlist,
			Blacklist: lab.Black,
			Rounds:    2,
			Seed:      cfg.Seed,
			Census:    census.Config{Seed: cfg.Seed},
		}
		src.SetRound(uint64(cfg.Censuses)) // the startup campaign used rounds 1..N
		r := store.NewRefresher(st, src, *refresh)
		r.Log = log.Printf
		go r.Run(ctx)
		log.Printf("background refresh every %v", *refresh)
	}

	srv, err := webview.New(st)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving census results on http://%s/", *addr)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutCtx)
	}()
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
