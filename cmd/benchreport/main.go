// Command benchreport regenerates every table and figure of the paper's
// evaluation section and prints the measured values next to the numbers the
// paper reports.
//
// Usage:
//
//	benchreport [-unicast24s N] [-censuses N] [-seed S] [-exp LIST]
//	benchreport -benchjson BENCH_3.json [-exp none]
//
// -exp selects a comma-separated subset of experiments, e.g.
// "fig4,fig10,table1"; the default runs everything. -benchjson measures the
// benchmark trajectory point (campaign wall-clock, probes/s, lookups/s,
// allocs/op) and writes it next to the committed baseline. -cpuprofile and
// -memprofile write pprof profiles of the whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"anycastmap/internal/experiments"
)

func main() {
	unicast := flag.Int("unicast24s", 20000, "unicast /24 background size (paper: 10.6M routed /24s)")
	censuses := flag.Int("censuses", 4, "number of census rounds")
	seed := flag.Uint64("seed", 2015, "world seed")
	csvDir := flag.String("csv", "", "export the figure data series as CSV files to this directory")
	expList := flag.String("exp", "all", "comma-separated experiments: table1,fig4..fig16,coverage,opendns,ablate-vps,ablate-rate,ablate-iter,ablate-mis,fusion,longitudinal,longitudinal-campaign,baselines,ripe (or: none)")
	benchJSON := flag.String("benchjson", "", "measure the benchmark trajectory and write it to this JSON file")
	streamUnicast := flag.Int("stream-unicast24s", 250_000, "unicast /24 scale of the -benchjson streaming-campaign headline (0 skips it)")
	paperUnicast := flag.Int("paper-unicast24s", 0, "unicast /24 scale of the -benchjson paper-scale pipelined campaign (0 skips it; 1,700,000 prunes to ~1M targets)")
	fullScaleUnicast := flag.Int("full-scale-unicast24s", 0, "unicast /24 scale of the -benchjson full-scale census (0 skips it; 11,000,000 prunes to the paper's ~6.6M responsive targets)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	cfg := experiments.DefaultLabConfig()
	cfg.Unicast24s = *unicast
	cfg.Censuses = *censuses
	cfg.Seed = *seed

	fmt.Printf("building lab: %d unicast /24s, %d censuses, seed %d ...\n", cfg.Unicast24s, cfg.Censuses, cfg.Seed)
	sampler := startHeapSampler()
	start := time.Now()
	lab := experiments.NewLab(cfg)
	labElapsed := time.Since(start)
	labPeakHeap, labGC := sampler.Stop()
	fmt.Printf("lab ready in %v: %d targets, %d anycast /24s detected of %d true\n\n",
		labElapsed.Round(time.Millisecond), lab.Hitlist.Len(), len(lab.Findings), len(lab.World.Deployments()))

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, lab, labElapsed, labPeakHeap, labGC, *streamUnicast, *paperUnicast, *fullScaleUnicast); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	want := map[string]bool{}
	all := *expList == "all"
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	sel := func(name string) bool { return all || want[name] }

	type experiment struct {
		name string
		run  func() string
	}
	exps := []experiment{
		{"table1", func() string { return lab.Table1().Report() }},
		{"fig4", func() string { return lab.Fig4().Report() }},
		{"fig5", func() string { return lab.Fig5().Report() }},
		{"fig6", func() string { return lab.Fig6().Report() }},
		{"fig7", func() string { return experiments.ReportFig7(lab.Fig7()) }},
		{"fig8", func() string { return lab.Fig8().Report() }},
		{"fig9", func() string { return lab.Fig9().Report() }},
		{"fig10", func() string { return lab.Fig10().Report() }},
		{"fig11", func() string { return lab.Fig11().Report() }},
		{"fig12", func() string { return lab.Fig12().Report() }},
		{"fig13", func() string { return lab.Fig13().Report() }},
		{"fig14", func() string { return lab.Fig14().Report() }},
		{"fig15", func() string { return lab.Fig15().Report() }},
		{"fig16", func() string { return lab.Fig16().Report() }},
		{"coverage", func() string { return lab.Coverage().Report() }},
		{"opendns", func() string { return lab.OpenDNS().Report() }},
		{"ablate-vps", func() string { return lab.AblateVPCount([]int{30, 60, 120, 200, 300}).Report() }},
		{"ablate-rate", func() string { return lab.AblateRate([]float64{1000, 3000, 6000, 12000}).Report() }},
		{"ablate-iter", func() string { return lab.AblateIteration().Report() }},
		{"ablate-mis", func() string { return lab.AblateMIS(50).Report() }},
		{"fusion", func() string { return lab.FusePlatforms(25).Report() }},
		{"longitudinal", func() string { return lab.Longitudinal(4, 261).Report() }},
		{"longitudinal-campaign", func() string { return lab.LongitudinalCampaign(4, 200).Report() }},
		{"baselines", func() string { return lab.Baselines(60).Report() }},
		{"ripe", func() string { return lab.RIPECensus().Report() }},
	}

	ran := 0
	for _, e := range exps {
		if !sel(e.name) {
			continue
		}
		t0 := time.Now()
		report := e.run()
		fmt.Print(report)
		fmt.Printf("  [%s in %v]\n\n", e.name, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 && *benchJSON == "" {
		fmt.Fprintf(os.Stderr, "no experiment matched -exp=%s\n", *expList)
		os.Exit(2)
	}
	if *csvDir != "" {
		files, err := lab.ExportCSV(*csvDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("exported %d CSV series to %s\n", len(files), *csvDir)
	}
}
