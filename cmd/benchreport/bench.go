package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"anycastmap/internal/analysis"
	"anycastmap/internal/bgp"
	"anycastmap/internal/census"
	"anycastmap/internal/cities"
	"anycastmap/internal/cluster"
	"anycastmap/internal/core"
	"anycastmap/internal/experiments"
	"anycastmap/internal/geo"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
	"anycastmap/internal/record"
	"anycastmap/internal/route"
	"anycastmap/internal/store"
)

// benchMetrics is one measured point of the benchmark trajectory. All
// numbers come from live runs of the same code paths the benchmarks in
// bench_test.go exercise, so baseline and current entries are comparable
// across commits on the same machine.
type benchMetrics struct {
	// FullCampaignNs is the wall-clock of one complete campaign (world
	// build + blacklist + 4 censuses + combine + analysis) at the
	// BenchmarkFullCampaign scale (4,000 unicast /24s, seed 3000).
	FullCampaignNs float64 `json:"full_campaign_ns_op"`
	// CampaignWallclockS is the wall-clock of the lab build at the scale
	// selected on the command line (default 20,000 unicast /24s).
	CampaignWallclockS float64 `json:"campaign_wallclock_s,omitempty"`
	// ProbesPerS is the single-VP probing-loop throughput over the pruned
	// hitlist (the census hot loop: LFSR walk, greylist check, probe).
	ProbesPerS float64 `json:"probes_per_s"`
	// LookupsPerS is the anycastd serving-path throughput: snapshot index
	// lookups over an alternating anycast/unicast address mix.
	LookupsPerS float64 `json:"lookups_per_s,omitempty"`
	// AllocsPerProbe is heap allocations per probe in a steady-state
	// probing run (the acceptance bound is zero: the constant per-run
	// setup amortizes to ~0 over thousands of probes).
	AllocsPerProbe float64 `json:"allocs_per_probe"`
	// PeakHeapBytes is the high-water live heap (HeapAlloc, sampled every
	// few ms) across the lab build whose wall-clock CampaignWallclockS
	// reports.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
	// GCCycles is the number of garbage collections that build triggered.
	GCCycles uint32 `json:"gc_cycles,omitempty"`
	// CPUs records how many CPUs the machine that measured this point had.
	// Zero means unknown (baselines predating the field). The campaign
	// fans out across cores, so wall-clock points are only comparable
	// between entries whose CPUs match.
	CPUs int    `json:"cpus,omitempty"`
	Note string `json:"note,omitempty"`
}

// streamBench is the streaming-scale headline: one campaign far beyond the
// batch path's reach, completing with a peak heap bounded below the memory
// that holding every round's dense matrix simultaneously would need.
type streamBench struct {
	Unicast24s  int   `json:"unicast24s"`
	Censuses    int   `json:"censuses"`
	VPsPerRound []int `json:"vps_per_round"`
	Targets     int   `json:"targets"`
	// WallclockS covers the whole Fig. 1 workflow: world build, blacklist
	// census, streaming rounds, fold, analysis, attribution.
	WallclockS    float64 `json:"wallclock_s"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	GCCycles      uint32  `json:"gc_cycles"`
	// DenseAllRoundsBytes is what the pre-streaming data path would hold
	// alive at its peak just for the round matrices: sum over rounds of
	// VPs x targets x 4 bytes. PeakHeapBounded asserts the whole streaming
	// campaign (world and analysis included) stayed below even that.
	DenseAllRoundsBytes uint64 `json:"dense_all_rounds_bytes"`
	// MemoryLimitBytes is the runtime memory limit (GOMEMLIMIT) the rounds
	// ran under: 90% of DenseAllRoundsBytes.
	MemoryLimitBytes uint64 `json:"gomemlimit_bytes"`
	PeakHeapBounded  bool   `json:"peak_heap_bounded"`
	Anycast24s       int    `json:"anycast_24s"`
}

// paperScaleBench is the paper-scale headline: one pipelined campaign over
// a million-plus /24 target list — the regime of the paper's 6.6M-target
// censuses — censused and analyzed on one box under GOMEMLIMIT, its
// product persisted to a snapshot file and re-served via mmap. Peak heap
// must stay under the dense all-rounds footprint and, per target, well
// below the smaller stream_campaign point: the flat-slab combined matrix
// plus in-flight probe spans is all the campaign ever holds.
type paperScaleBench struct {
	Unicast24s  int   `json:"unicast24s"`
	Censuses    int   `json:"censuses"`
	VPsPerRound []int `json:"vps_per_round"`
	Targets     int   `json:"targets"`
	// SpanTargets is the pipelined probe/fold unit width.
	SpanTargets int     `json:"span_targets"`
	WallclockS  float64 `json:"wallclock_s"`
	// ProbingWallS covers just the pipelined rounds; Probes and ProbesPerS
	// are the campaign totals over that window.
	ProbingWallS        float64 `json:"probing_wall_s"`
	Probes              uint64  `json:"probes"`
	ProbesPerS          float64 `json:"probes_per_s"`
	PeakHeapBytes       uint64  `json:"peak_heap_bytes"`
	PeakHeapPerTarget   float64 `json:"peak_heap_bytes_per_target"`
	GCCycles            uint32  `json:"gc_cycles"`
	DenseAllRoundsBytes uint64  `json:"dense_all_rounds_bytes"`
	MemoryLimitBytes    uint64  `json:"gomemlimit_bytes"`
	PeakHeapBounded     bool    `json:"peak_heap_bounded"`
	Anycast24s          int     `json:"anycast_24s"`
	// SnapshotFileBytes is the size of the persisted snapshot file;
	// MappedLookupsPerS is the serving throughput over its mmap reopen.
	SnapshotFileBytes int64   `json:"snapshot_file_bytes"`
	MappedLookupsPerS float64 `json:"mapped_lookups_per_s"`
	// SmallCampaignProbesPerS is the same report's small-campaign probing
	// rate (the current probes_per_s), and RateVsSmallCampaign divides it
	// by this block's ProbesPerS: the per-probe slowdown at scale. The
	// span-resident probe path keeps it within 1.5x — both regimes now run
	// the same cold per-span resolve instead of a memo that only the small
	// campaign could afford.
	SmallCampaignProbesPerS float64 `json:"small_campaign_probes_per_s,omitempty"`
	RateVsSmallCampaign     float64 `json:"rate_vs_small_campaign,omitempty"`
}

// codecBench compares the v2 columnar run format against the legacy
// gob+flate encoding on a real census round.
type codecBench struct {
	VPs     int `json:"vps"`
	Targets int `json:"targets"`
	// Samples is the number of non-empty matrix cells; bytes-per-sample
	// divides the encoded size by it.
	Samples             int     `json:"samples"`
	V2EncodeNs          float64 `json:"v2_encode_ns"`
	V2DecodeNs          float64 `json:"v2_decode_ns"`
	V2Bytes             int     `json:"v2_bytes"`
	V2BytesPerSample    float64 `json:"v2_bytes_per_sample"`
	GobEncodeNs         float64 `json:"gob_flate_encode_ns"`
	GobDecodeNs         float64 `json:"gob_flate_decode_ns"`
	GobBytes            int     `json:"gob_flate_bytes"`
	GobBytesPerSample   float64 `json:"gob_flate_bytes_per_sample"`
	SpeedupEncode       float64 `json:"speedup_encode"`
	SpeedupDecode       float64 `json:"speedup_decode"`
	SpeedupEncodeDecode float64 `json:"speedup_encode_decode"`
}

// analyzeAllBench compares the static-chunk analysis partitioning (each
// worker owns one contiguous 1/workers slice of the target list — idle as
// soon as its slice runs dry) against the work-stealing loop that replaced
// it, over the same combined matrix.
type analyzeAllBench struct {
	VPs         int     `json:"vps"`
	Targets     int     `json:"targets"`
	Workers     int     `json:"workers"`
	StaticNs    float64 `json:"static_chunk_ns_op"`
	WorkStealNs float64 `json:"work_stealing_ns_op"`
	Speedup     float64 `json:"speedup"`
	Anycast24s  int     `json:"anycast_24s"`
}

// incrementalBench is the longitudinal re-analysis workload (Sec. 3.2: one
// full census, then monthly patch rounds re-probing only the churned
// slice of targets): the combination is analyzed after every round both
// ways — batch (re-Combine all rounds + AnalyzeAll from scratch) and
// incremental (fold + dirty-set analysis with cached detection
// certificates) — with the per-round outcomes verified equal.
type incrementalBench struct {
	Rounds           int       `json:"rounds"`
	VPs              int       `json:"vps_per_round"`
	Targets          int       `json:"targets"`
	DirtyFractions   []float64 `json:"dirty_fraction_per_round"`
	BatchWallS       float64   `json:"batch_wall_s"`
	IncrementalWallS float64   `json:"incremental_wall_s"`
	Speedup          float64   `json:"speedup"`
	CertHitRate      float64   `json:"cert_hit_rate"`
	Agree            bool      `json:"outcomes_agree"`
}

// distributedBench compares one campaign probed in-process against the
// same campaign leased across an in-process agent fleet (coordinator +
// net.Pipe agents speaking the shard stream protocol), and checks the
// two combined matrices are byte-identical.
type distributedBench struct {
	Agents      int `json:"agents"`
	Censuses    int `json:"censuses"`
	VPsPerRound int `json:"vps_per_round"`
	Targets     int `json:"targets"`
	// SingleWallS / DistributedWallS time the probing rounds only (the
	// world, blacklist, and analysis are shared context).
	SingleWallS    float64 `json:"single_process_wall_s"`
	SinglePeakHeap uint64  `json:"single_process_peak_heap_bytes"`
	DistribWallS   float64 `json:"distributed_wall_s"`
	// CoordPeakHeap is the coordinator-process high-water heap while the
	// fleet probes; in-process agents share the heap, so this bounds the
	// whole cluster from above.
	CoordPeakHeap uint64 `json:"coordinator_peak_heap_bytes"`
	Leases        int    `json:"leases"`
	FramesFolded  int    `json:"frames_folded"`
	// Identical is the acceptance gate: combined rows, greylist, and VP
	// union must match the single-process campaign byte for byte.
	Identical bool `json:"identical"`
}

// routeServingBench is the routing front-end headline: the per-query
// answer path (decode + decide + encode, the unit every UDP listener
// runs) measured in-process for throughput and allocations, the same
// path measured over real loopback sockets in both load shapes, and a
// live snapshot-swap flatness check — throughput while a dozen mapped
// snapshot generations publish under load must stay within 10% of
// steady state.
type routeServingBench struct {
	Service    string `json:"service"`
	Anycast24s int    `json:"anycast_24s"`
	Workers    int    `json:"workers"`
	// AnswerPathQPS is the aggregate in-process answer-path throughput
	// (the per-listener packet work with the socket syscalls factored
	// out); AnswerAllocsPerQuery is heap allocations per query over that
	// run (the acceptance bound is zero).
	AnswerPathQPS        float64 `json:"answer_path_qps"`
	AnswerAllocsPerQuery float64 `json:"answer_allocs_per_query"`
	// The UDP numbers cross real loopback sockets: closed loop (each
	// worker sends, waits, repeats) and open loop (paced arrivals,
	// answers matched by DNS ID).
	UDPListeners  int     `json:"udp_listeners"`
	UDPClosedQPS  float64 `json:"udp_closed_loop_qps"`
	UDPClosedP99  float64 `json:"udp_closed_loop_p99_us"`
	UDPOpenRate   float64 `json:"udp_open_loop_offered_qps"`
	UDPOpenQPS    float64 `json:"udp_open_loop_qps"`
	UDPOpenP99    float64 `json:"udp_open_loop_p99_us"`
	// SteadyQPS and SwappingQPS are answer-path runs without and with a
	// concurrent publisher cycling SwapVersions mmap-backed snapshot
	// generations; SwapRatio = swapping/steady.
	SwapVersions int     `json:"swap_versions"`
	SteadyQPS    float64 `json:"steady_qps"`
	SwappingQPS  float64 `json:"swapping_qps"`
	SwapRatio    float64 `json:"swap_throughput_ratio"`
	SwapFlat     bool    `json:"swap_flat_within_10pct"`
	Note         string  `json:"note,omitempty"`
}

type benchReport struct {
	Bench    string `json:"bench"`
	Go       string `json:"go"`
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	CPUs     int    `json:"cpus"`
	Captured string `json:"captured"`

	Unicast24s int    `json:"unicast24s"`
	Censuses   int    `json:"censuses"`
	Seed       uint64 `json:"seed"`

	Baseline benchMetrics `json:"baseline"`
	Current  benchMetrics `json:"current"`
	// SpeedupFullCampaign is baseline/current for the FullCampaign time —
	// the regression gate: the streaming data path must not slow the
	// campaign down. It is only emitted when the baseline was measured on
	// a machine with the same CPU count; otherwise the ratio is a machine
	// artifact (BENCH_7/8 reported 0.64x/0.48x purely from comparing a
	// multi-core baseline against a 1-CPU box) and a baseline_cpu_mismatch
	// note replaces it.
	SpeedupFullCampaign float64 `json:"speedup_full_campaign,omitempty"`

	// Notes carries measurement caveats that numbers alone would hide.
	Notes []string `json:"notes,omitempty"`

	// Stream is the bounded-memory campaign at streaming scale (absent
	// when disabled with -stream-unicast24s=0).
	Stream *streamBench `json:"stream_campaign,omitempty"`
	// PaperScale is the million-target pipelined campaign (absent when
	// disabled with -paper-unicast24s=0).
	PaperScale *paperScaleBench `json:"paper_scale_campaign,omitempty"`
	// FullScale is the full paper-scale census: the 6.6M responsive /24s
	// of the paper's Sec. 3 censuses on one box (absent when disabled with
	// -full-scale-unicast24s=0).
	FullScale *paperScaleBench `json:"full_scale_campaign,omitempty"`
	// Codec compares v2 columnar run persistence against legacy gob+flate.
	Codec *codecBench `json:"run_codec,omitempty"`
	// AnalyzeAll compares static-chunk vs work-stealing analysis
	// partitioning.
	AnalyzeAll *analyzeAllBench `json:"analyze_all,omitempty"`
	// Incremental is the longitudinal re-analysis workload, batch vs
	// incremental.
	Incremental *incrementalBench `json:"incremental_analysis,omitempty"`
	// Distributed compares the single-process campaign against the same
	// rounds leased across an in-process agent fleet.
	Distributed *distributedBench `json:"distributed_campaign,omitempty"`
	// Route is the routing front-end serving headline.
	Route *routeServingBench `json:"route_serving,omitempty"`
}

// seedBaseline holds the pre-streaming numbers: the BENCH_3 "current"
// column, measured by cmd/benchreport -benchjson at commit 3751575 on the
// machine that produced the committed BENCH_3.json (CPU count unrecorded,
// hence no cpus field). It seeds the baseline the first time the file is
// written; after that the file's own baseline is preserved across re-runs.
var seedBaseline = benchMetrics{
	FullCampaignNs: 1_871_134_144,
	ProbesPerS:     8.66e6,
	LookupsPerS:    2.90e7,
	AllocsPerProbe: 0.00036,
	Note: "pre-change cmd/benchreport -benchjson at commit 3751575 " +
		"(BENCH_3 current): memoized probe path, batch combine, gob+flate runs",
}

// benchName derives the trajectory-point name from the output filename:
// -benchjson BENCH_4.json labels the report BENCH_4.
func benchName(path string) string {
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if name == "" {
		return "BENCH"
	}
	return strings.ToUpper(name)
}

// writeBenchJSON measures the current benchmark trajectory point and writes
// it next to the baseline. lab, labElapsed and labHeap come from the
// experiment run the caller already paid for; streamUnicast sizes the
// bounded-memory streaming headline (0 skips it).
func writeBenchJSON(path string, lab *experiments.Lab, labElapsed time.Duration, labPeakHeap uint64, labGC uint32, streamUnicast, paperUnicast, fullScaleUnicast int) error {
	rep := benchReport{
		Bench:      benchName(path),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Captured:   time.Now().UTC().Format(time.RFC3339),
		Unicast24s: lab.Config.Unicast24s,
		Censuses:   lab.Config.Censuses,
		Seed:       lab.Config.Seed,
		Baseline:   seedBaseline,
	}
	// A baseline measured earlier on this machine outranks the built-in
	// seed: keep it so the trajectory stays comparable across re-runs.
	if prev, err := os.ReadFile(path); err == nil {
		var old benchReport
		if json.Unmarshal(prev, &old) == nil && old.Baseline.FullCampaignNs > 0 {
			rep.Baseline = old.Baseline
		}
	}

	fmt.Printf("bench: full campaign at BenchmarkFullCampaign scale ... ")
	rep.Current.FullCampaignNs = measureFullCampaign()
	fmt.Printf("%.2fs\n", rep.Current.FullCampaignNs/1e9)

	rep.Current.CampaignWallclockS = labElapsed.Seconds()
	rep.Current.PeakHeapBytes = labPeakHeap
	rep.Current.GCCycles = labGC
	rep.Current.CPUs = runtime.NumCPU()

	fmt.Printf("bench: probing loop ... ")
	rep.Current.ProbesPerS, rep.Current.AllocsPerProbe = measureProbing(lab)
	fmt.Printf("%.0f probes/s, %.4f allocs/probe\n", rep.Current.ProbesPerS, rep.Current.AllocsPerProbe)

	fmt.Printf("bench: serving lookups ... ")
	rep.Current.LookupsPerS = measureLookups(lab)
	fmt.Printf("%.0f lookups/s\n", rep.Current.LookupsPerS)

	// The cross-commit ratio is only meaningful machine-to-same-machine:
	// the campaign fans out across cores, so a multi-core baseline against
	// a 1-CPU current (or vice versa) measures the hardware, not the code.
	switch {
	case rep.Current.FullCampaignNs <= 0:
	case rep.Baseline.CPUs == rep.Current.CPUs:
		rep.SpeedupFullCampaign = rep.Baseline.FullCampaignNs / rep.Current.FullCampaignNs
	default:
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"baseline_cpu_mismatch: baseline measured on a %s machine, this report on a %d-CPU one; "+
				"speedup_full_campaign is omitted — compare full_campaign_ns_op across reports only when "+
				"their cpus fields match", cpusLabel(rep.Baseline.CPUs), rep.Current.CPUs))
	}

	fmt.Printf("bench: run codec (v2 vs gob+flate) ... ")
	rep.Codec = measureCodec(lab)
	if rep.Codec != nil {
		fmt.Printf("%.2f vs %.2f B/sample, %.1fx encode, %.1fx decode\n",
			rep.Codec.V2BytesPerSample, rep.Codec.GobBytesPerSample,
			rep.Codec.SpeedupEncode, rep.Codec.SpeedupDecode)
	} else {
		fmt.Printf("skipped (no retained runs)\n")
	}

	fmt.Printf("bench: analyze-all partitioning (static chunks vs work stealing) ... ")
	rep.AnalyzeAll = measureAnalyzeAll(lab)
	if rep.AnalyzeAll != nil {
		fmt.Printf("%.2fs vs %.2fs, %.2fx\n",
			rep.AnalyzeAll.StaticNs/1e9, rep.AnalyzeAll.WorkStealNs/1e9, rep.AnalyzeAll.Speedup)
	} else {
		fmt.Printf("skipped (paths disagree or nothing detected)\n")
	}

	fmt.Printf("bench: distributed campaign (1 process vs 4 agents) ... ")
	rep.Distributed = measureDistributed(lab, 4)
	if rep.Distributed != nil {
		fmt.Printf("%.2fs vs %.2fs, coordinator peak heap %.0f MiB, identical=%v\n",
			rep.Distributed.SingleWallS, rep.Distributed.DistribWallS,
			float64(rep.Distributed.CoordPeakHeap)/(1<<20), rep.Distributed.Identical)
	} else {
		fmt.Printf("skipped (round failed)\n")
	}

	fmt.Printf("bench: route serving (answer path, UDP loopback, swap flatness) ... ")
	rep.Route = measureRouteServing(lab)
	if rep.Route != nil {
		fmt.Printf("%.2fM qps answer path (%.4f allocs/q), UDP closed %.0f qps p99 %.0fus, swap ratio %.2f (flat=%v)\n",
			rep.Route.AnswerPathQPS/1e6, rep.Route.AnswerAllocsPerQuery,
			rep.Route.UDPClosedQPS, rep.Route.UDPClosedP99,
			rep.Route.SwapRatio, rep.Route.SwapFlat)
	} else {
		fmt.Printf("skipped (no anycast findings)\n")
	}

	fmt.Printf("bench: longitudinal re-analysis (batch vs incremental) ... ")
	rep.Incremental = measureIncremental(lab, 6, 200)
	fmt.Printf("%.1fs vs %.1fs, %.2fx, cert hit rate %.0f%%, agree=%v\n",
		rep.Incremental.BatchWallS, rep.Incremental.IncrementalWallS,
		rep.Incremental.Speedup, 100*rep.Incremental.CertHitRate, rep.Incremental.Agree)

	if streamUnicast > 0 {
		fmt.Printf("bench: streaming campaign at %d unicast /24s ... ", streamUnicast)
		rep.Stream = measureStreamCampaign(streamUnicast, lab.Config.Seed)
		fmt.Printf("%.1fs, peak heap %.0f MiB (dense all-rounds %.0f MiB, bounded=%v)\n",
			rep.Stream.WallclockS, float64(rep.Stream.PeakHeapBytes)/(1<<20),
			float64(rep.Stream.DenseAllRoundsBytes)/(1<<20), rep.Stream.PeakHeapBounded)
	}

	if paperUnicast > 0 {
		fmt.Printf("bench: paper-scale pipelined campaign at %d unicast /24s ... ", paperUnicast)
		rep.PaperScale = measurePaperScaleCampaign(paperUnicast, lab.Config.Seed)
		if rep.PaperScale != nil {
			fmt.Printf("%d targets in %.0fs, %.2fM probes/s, peak heap %.0f MiB (%.0f B/target, bounded=%v), mmap serve %.1fM lookups/s\n",
				rep.PaperScale.Targets, rep.PaperScale.WallclockS, rep.PaperScale.ProbesPerS/1e6,
				float64(rep.PaperScale.PeakHeapBytes)/(1<<20), rep.PaperScale.PeakHeapPerTarget,
				rep.PaperScale.PeakHeapBounded, rep.PaperScale.MappedLookupsPerS/1e6)
		} else {
			fmt.Printf("failed\n")
		}
	}

	if fullScaleUnicast > 0 {
		fmt.Printf("bench: full-scale census at %d unicast /24s (the paper's 6.6M responsive /24s) ... ", fullScaleUnicast)
		rep.FullScale = measurePaperScaleCampaign(fullScaleUnicast, lab.Config.Seed)
		if rep.FullScale != nil {
			rep.FullScale.SmallCampaignProbesPerS = rep.Current.ProbesPerS
			if rep.FullScale.ProbesPerS > 0 {
				rep.FullScale.RateVsSmallCampaign = rep.Current.ProbesPerS / rep.FullScale.ProbesPerS
			}
			fmt.Printf("%d targets in %.0fs, %.2fM probes/s (%.2fx the small-campaign rate), peak heap %.0f MiB (%.0f B/target, bounded=%v)\n",
				rep.FullScale.Targets, rep.FullScale.WallclockS, rep.FullScale.ProbesPerS/1e6,
				rep.FullScale.RateVsSmallCampaign,
				float64(rep.FullScale.PeakHeapBytes)/(1<<20), rep.FullScale.PeakHeapPerTarget,
				rep.FullScale.PeakHeapBounded)
		} else {
			fmt.Printf("failed\n")
		}
	}

	rep.Current.Note = "measured live by cmd/benchreport -benchjson"

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	if rep.SpeedupFullCampaign > 0 {
		fmt.Printf("bench: %s written (full campaign %.2fx vs baseline)\n\n", path, rep.SpeedupFullCampaign)
	} else {
		fmt.Printf("bench: %s written (no speedup ratio: baseline cpus differ)\n\n", path)
	}
	return nil
}

// cpusLabel renders a baseline CPU count for the mismatch note; baselines
// predating the cpus field read as unknown.
func cpusLabel(cpus int) string {
	if cpus == 0 {
		return "multi-core (cpu count unrecorded)"
	}
	return fmt.Sprintf("%d-CPU", cpus)
}

// measureFullCampaign times one complete campaign at exactly the
// BenchmarkFullCampaign configuration so the number is comparable to the
// committed baseline ns/op.
func measureFullCampaign() float64 {
	cfg := experiments.DefaultLabConfig()
	cfg.Unicast24s = 4000
	cfg.Seed = 3000
	start := time.Now()
	l := experiments.NewLab(cfg)
	elapsed := time.Since(start)
	if len(l.Findings) == 0 {
		return 0
	}
	return float64(elapsed.Nanoseconds())
}

// measureProbing times steady-state single-VP probing runs over the pruned
// hitlist and counts heap allocations per probe via the runtime's
// cumulative malloc counter (GC cannot decrease it).
func measureProbing(lab *experiments.Lab) (probesPerS, allocsPerProbe float64) {
	vp := lab.PL.VPs()[0]
	targets := lab.Hitlist.Targets()
	cfg := prober.Config{Seed: lab.Config.Seed, Round: 1}
	sink := func(record.Sample) {}
	// Warm the per-VP session cache and the frozen greylist view so the
	// measured passes only see the steady state the census rounds run in.
	if _, _, err := prober.Run(lab.World, vp, targets, lab.Black, cfg, sink); err != nil {
		return 0, 0
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var sent int64
	const reps = 3
	for i := 0; i < reps; i++ {
		stats, _, err := prober.Run(lab.World, vp, targets, lab.Black, cfg, sink)
		if err != nil {
			return 0, 0
		}
		sent += int64(stats.Sent)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if sent == 0 || elapsed <= 0 {
		return 0, 0
	}
	return float64(sent) / elapsed.Seconds(),
		float64(after.Mallocs-before.Mallocs) / float64(sent)
}

// measureLookups times the anycastd snapshot index over an alternating
// anycast/unicast address mix (the BenchmarkStoreLookupCold workload).
func measureLookups(lab *experiments.Lab) float64 {
	snap := store.NewSnapshot(lab.Findings, lab.World.Registry,
		uint64(lab.Config.Censuses), lab.Config.Censuses)
	var ips []netsim.IP
	for i, f := range lab.Findings {
		ips = append(ips, f.Prefix.Host(byte(i)))
		ips = append(ips, (f.Prefix + 1).Host(byte(i)))
	}
	if len(ips) == 0 {
		return 0
	}
	const n = 2_000_000
	start := time.Now()
	for i := 0; i < n; i++ {
		snap.Lookup(ips[i%len(ips)])
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return n / elapsed.Seconds()
}

// heapSampler tracks the high-water live heap while a measurement runs: a
// background goroutine polls runtime.ReadMemStats every few milliseconds,
// so the reported peak covers transient states (one round folding while the
// previous one is not yet collected), not just the quiescent end state.
type heapSampler struct {
	stop    chan struct{}
	done    chan struct{}
	peak    uint64
	startGC uint32
}

func startHeapSampler() *heapSampler {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &heapSampler{
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		peak:    ms.HeapAlloc,
		startGC: ms.NumGC,
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak {
					s.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return s
}

// Stop ends sampling and returns the peak live heap and the number of GC
// cycles since the sampler started.
func (s *heapSampler) Stop() (peakHeap uint64, gcCycles uint32) {
	close(s.stop)
	<-s.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > s.peak {
		s.peak = ms.HeapAlloc
	}
	return s.peak, ms.NumGC - s.startGC
}

// measureStreamCampaign runs the full Fig. 1 workflow at streaming scale —
// world, blacklist census, rounds folding through a census.Campaign with
// every round's matrix released after its fold — and checks the sampled
// peak heap against the footprint the batch path would need just to keep
// every round's matrix alive. Once that bound is known (after the target
// list is pruned, before the first round), the campaign runs under a
// runtime memory limit of 90% of it: the GC is forced to keep transient
// garbage inside the budget, the way a production deployment would run
// under GOMEMLIMIT.
func measureStreamCampaign(unicast int, seed uint64) *streamBench {
	lcfg := experiments.DefaultLabConfig()
	vpsPerRound := lcfg.VPsPerCensus[:lcfg.Censuses]

	runtime.GC()
	sampler := startHeapSampler()
	start := time.Now()

	wcfg := netsim.DefaultConfig()
	wcfg.Seed = seed
	wcfg.Unicast24s = unicast
	world := netsim.New(wcfg)
	db := cities.Default()
	pl := platform.PlanetLab(db)
	table := bgp.FromWorld(world)
	full := hitlist.FromWorld(world)
	black, err := prober.BuildBlacklist(world, pl.VPs()[0], full.Targets(), prober.Config{Seed: seed})
	if err != nil {
		sampler.Stop()
		return nil
	}
	targets := full.PruneNeverAlive().Without(black.Targets())

	var dense uint64
	for _, v := range vpsPerRound {
		dense += uint64(v) * uint64(targets.Len()) * 4
	}
	limit := int64(dense - dense/10)
	if limit < 192<<20 {
		limit = 192 << 20
	}
	prevLimit := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(prevLimit)

	cp := census.NewCampaign(census.CampaignConfig{Census: census.Config{Seed: seed}})
	for round := uint64(1); round <= uint64(lcfg.Censuses); round++ {
		vps := pl.Sample(vpsPerRound[round-1], seed+round)
		if _, err := cp.ExecuteRound(context.Background(), world, vps, targets, black, round); err != nil {
			sampler.Stop()
			return nil
		}
		// The folded round is garbage now; collect it before the next
		// round allocates its matrix, as a GOMEMLIMIT-governed deployment
		// effectively does.
		runtime.GC()
	}
	outcomes := census.AnalyzeAll(db, cp.Combined(), core.Options{}, 2, 0)
	findings := analysis.Attribute(outcomes, table)

	elapsed := time.Since(start)
	peak, gcs := sampler.Stop()
	return &streamBench{
		Unicast24s:          unicast,
		Censuses:            lcfg.Censuses,
		VPsPerRound:         vpsPerRound,
		Targets:             targets.Len(),
		WallclockS:          elapsed.Seconds(),
		PeakHeapBytes:       peak,
		GCCycles:            gcs,
		DenseAllRoundsBytes: dense,
		MemoryLimitBytes:    uint64(limit),
		PeakHeapBounded:     peak < dense,
		Anycast24s:          len(findings),
	}
}

// measurePaperScaleCampaign runs the million-target headline: the Fig. 1
// workflow with shard-pipelined rounds (probe spans fold into the flat-slab
// combined matrix as they land — no whole-round matrix ever materializes),
// under a GOMEMLIMIT of 90% of the dense all-rounds footprint, followed by
// snapshot persistence and an mmap-served lookup measurement.
func measurePaperScaleCampaign(unicast int, seed uint64) *paperScaleBench {
	const censuses = 2
	const vpsPer = 261

	runtime.GC()
	sampler := startHeapSampler()
	start := time.Now()

	wcfg := netsim.DefaultConfig()
	wcfg.Seed = seed
	wcfg.Unicast24s = unicast
	world := netsim.New(wcfg)
	db := cities.Default()
	pl := platform.PlanetLab(db)
	table := bgp.FromWorld(world)
	full := hitlist.FromWorld(world)
	black, err := prober.BuildBlacklist(world, pl.VPs()[0], full.Targets(), prober.Config{Seed: seed})
	if err != nil {
		sampler.Stop()
		return nil
	}
	targets := full.PruneNeverAlive().Without(black.Targets())

	var vpsPerRound []int
	var dense uint64
	for round := uint64(1); round <= censuses; round++ {
		n := len(pl.Sample(vpsPer, seed+round))
		vpsPerRound = append(vpsPerRound, n)
		dense += uint64(n) * uint64(targets.Len()) * 4
	}
	// GOMEMLIMIT at 75% of the dense all-rounds footprint. The GC fills
	// whatever limit it is given, so the sampled peak tracks the limit,
	// not the live set: at 90% the peak-per-target landed within a
	// fraction of a percent of the dense bound. 75% leaves real headroom
	// over the live set (the combined slab is ~half of dense) while
	// keeping the peak well under what the batch path would hold.
	limit := int64(dense - dense/4)
	if limit < 1<<30 {
		limit = 1 << 30
	}
	prevLimit := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(prevLimit)

	pc := census.PipelineConfig{}
	cp := census.NewCampaign(census.CampaignConfig{Census: census.Config{Seed: seed}})
	var probes uint64
	probeStart := time.Now()
	for round := uint64(1); round <= censuses; round++ {
		vps := pl.Sample(vpsPer, seed+round)
		sum, err := cp.ExecuteRoundPipelined(context.Background(), world, vps, targets, black, round, pc)
		if err != nil {
			sampler.Stop()
			return nil
		}
		probes += uint64(sum.Probes)
	}
	probingWall := time.Since(probeStart)

	outcomes := census.AnalyzeAll(db, cp.Combined(), core.Options{}, 2, 0)
	findings := analysis.Attribute(outcomes, table)

	elapsed := time.Since(start)
	peak, gcs := sampler.Stop()

	out := &paperScaleBench{
		Unicast24s:          unicast,
		Censuses:            censuses,
		VPsPerRound:         vpsPerRound,
		Targets:             targets.Len(),
		SpanTargets:         pc.EffectiveSpanTargets(),
		WallclockS:          elapsed.Seconds(),
		ProbingWallS:        probingWall.Seconds(),
		Probes:              probes,
		ProbesPerS:          float64(probes) / probingWall.Seconds(),
		PeakHeapBytes:       peak,
		PeakHeapPerTarget:   float64(peak) / float64(targets.Len()),
		GCCycles:            gcs,
		DenseAllRoundsBytes: dense,
		MemoryLimitBytes:    uint64(limit),
		PeakHeapBounded:     peak < dense,
		Anycast24s:          len(findings),
	}

	// The campaign's product as anycastd would serve it: persisted, then
	// reopened mmap-backed and hammered with the alternating address mix.
	dir, err := os.MkdirTemp("", "acm-bench-snap")
	if err != nil {
		return out
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "census.snap")
	snap := store.NewSnapshot(findings, world.Registry, censuses, censuses)
	if err := store.SaveSnapshotFile(snapPath, snap); err != nil {
		return out
	}
	if fi, err := os.Stat(snapPath); err == nil {
		out.SnapshotFileBytes = fi.Size()
	}
	mapped, err := store.OpenSnapshotFile(snapPath)
	if err != nil {
		return out
	}
	defer mapped.Close()
	var ips []netsim.IP
	for i, f := range findings {
		ips = append(ips, f.Prefix.Host(byte(i)))
		ips = append(ips, (f.Prefix + 1).Host(byte(i)))
	}
	if len(ips) > 0 {
		const n = 2_000_000
		t0 := time.Now()
		for i := 0; i < n; i++ {
			mapped.Lookup(ips[i%len(ips)])
		}
		if e := time.Since(t0); e > 0 {
			out.MappedLookupsPerS = n / e.Seconds()
		}
	}
	return out
}

// measureRouteServing benchmarks the routing front-end over the lab's
// findings: the in-process answer path (decode, decide, encode — the
// per-packet work each UDP listener does) for aggregate throughput and
// allocations per query, the same path over real loopback sockets in
// closed- and open-loop shape, and answer-path throughput while a dozen
// mmap-backed snapshot generations publish under load.
func measureRouteServing(lab *experiments.Lab) *routeServingBench {
	if len(lab.Findings) == 0 {
		return nil
	}
	svc := lab.Findings[0].Prefix
	st := store.New(store.Options{})
	st.Publish(store.NewSnapshot(lab.Findings, lab.World.Registry, 1, 1))
	eng, err := route.NewEngine(route.Config{
		Store:   st,
		Locator: route.HashLocator{Seed: lab.Config.Seed},
		VPs:     lab.PL.VPs(),
	})
	if err != nil {
		return nil
	}
	responder, err := route.NewResponder(eng, "", 30, nil)
	if err != nil {
		return nil
	}
	zone, err := route.EncodeName(nil, route.DefaultZone)
	if err != nil {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	out := &routeServingBench{
		Service:    svc.String(),
		Anycast24s: len(lab.Findings),
		Workers:    workers,
		Note: fmt.Sprintf("answer_path_qps is the in-process decode+decide+encode path over %d workers "+
			"with 1024 rotating clients (the per-listener packet work without socket syscalls, "+
			"including the per-worker decision cache); the udp_* numbers cross real loopback "+
			"sockets and are bounded by this machine's %d CPU(s)", workers, runtime.NumCPU()),
	}

	src := netip.MustParseAddrPort("192.0.2.1:5353")
	// Prebuilt request packets over rotating clients: the measured loop
	// is the server's work (decode, decide, encode), not the
	// generator's.
	reqs := make([][]byte, 1024)
	for i := range reqs {
		client := netsim.Prefix24(uint32(0x0b0000) + uint32(i))
		reqs[i] = route.AppendQuery(nil, uint16(i), svc, route.PolicyNone, zone, 1, client)
	}
	// answerLoop runs iters queries per worker through the answer path
	// and returns aggregate throughput.
	answerLoop := func(iters int) float64 {
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sc := &route.Scratch{}
				for i := 0; i < iters; i++ {
					responder.Respond(sc, reqs[(w*iters+i)&1023], src)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(t0)
		if elapsed <= 0 {
			return 0
		}
		return float64(iters*workers) / elapsed.Seconds()
	}

	// Warm, then measure throughput and mallocs over a counted run.
	answerLoop(10_000)
	const perWorker = 1_000_000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	out.AnswerPathQPS = answerLoop(perWorker)
	runtime.ReadMemStats(&after)
	out.AnswerAllocsPerQuery = float64(after.Mallocs-before.Mallocs) / float64(perWorker*workers)

	// Swap flatness: the same loop while a publisher cycles mmap-backed
	// snapshot generations. The generations are opened (file read + mmap)
	// before the measured window starts — the claim under test is the
	// cost of the atomic swap itself plus serving across it, not snapshot
	// loading, which on a 1-CPU box would otherwise steal the measuring
	// worker's time slice. Size the window from the steady rate so all
	// publishes land inside it.
	runtime.GC()
	out.SteadyQPS = answerLoop(perWorker / 2)
	const swapVersions = 12
	out.SwapVersions = swapVersions
	swapDir, err := os.MkdirTemp("", "acm-route-swap")
	if err == nil {
		defer os.RemoveAll(swapDir)
		snapPath := filepath.Join(swapDir, "census.snap")
		if store.SaveSnapshotFile(snapPath, store.NewSnapshot(lab.Findings, lab.World.Registry, 1, 1)) == nil {
			var gens []*store.Snapshot
			for k := 0; k < swapVersions; k++ {
				snap, err := store.OpenSnapshotFile(snapPath)
				if err != nil {
					break
				}
				gens = append(gens, snap)
			}
			window := perWorker / 2
			if out.SteadyQPS > 0 {
				// Aim for a ~600ms window; the publisher spreads its 12
				// swaps over the first ~480ms of it.
				window = int(out.SteadyQPS * 0.6 / float64(workers))
			}
			stopPub := make(chan struct{})
			var pubWG sync.WaitGroup
			pubWG.Add(1)
			go func() {
				defer pubWG.Done()
				for k, snap := range gens {
					select {
					case <-stopPub:
						// Unpublished generations still own a mapping ref.
						for _, s := range gens[k:] {
							s.Close()
						}
						return
					case <-time.After(40 * time.Millisecond):
					}
					st.Publish(snap)
				}
			}()
			runtime.GC()
			out.SwappingQPS = answerLoop(window)
			close(stopPub)
			pubWG.Wait()
			if out.SteadyQPS > 0 {
				out.SwapRatio = out.SwappingQPS / out.SteadyQPS
				out.SwapFlat = out.SwapRatio >= 0.9
			}
		}
	}

	// The same path over real loopback sockets.
	srv, err := route.NewServer(route.ServerConfig{Addr: "127.0.0.1:0", Engine: eng})
	if err != nil {
		return out
	}
	defer srv.Close()
	out.UDPListeners = srv.Listeners()
	addr := srv.Addr().String()
	if res, err := route.Run(route.LoadConfig{
		Addr: addr, Workers: workers, Queries: 50_000, Service: svc,
	}); err == nil && res.Received > 0 {
		out.UDPClosedQPS = res.QPS
		out.UDPClosedP99 = float64(res.P99.Microseconds())
	}
	openRate := out.UDPClosedQPS * 0.8
	if openRate < 1000 {
		openRate = 1000
	}
	out.UDPOpenRate = openRate
	if res, err := route.Run(route.LoadConfig{
		Addr: addr, Workers: workers, RatePerS: openRate, Duration: 2 * time.Second, Service: svc,
	}); err == nil && res.Received > 0 {
		out.UDPOpenQPS = res.QPS
		out.UDPOpenP99 = float64(res.P99.Microseconds())
	}
	return out
}

// analyzeAllStatic is the pre-change AnalyzeAll: workers own contiguous
// 1/workers chunks of the target list, so a worker whose chunk holds only
// cheap unicast targets idles while the anycast-dense chunks finish. Kept
// here verbatim (over the exported census/core API) as the comparison
// baseline for the work-stealing loop.
func analyzeAllStatic(db *cities.DB, c *census.Combined, opt core.Options, minSamples, workers int) []census.Outcome {
	if minSamples < 2 {
		minSamples = 2
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := cities.NewIndex(db, 10)
	nVP := len(c.VPs)
	vpDist := make([]float64, nVP*nVP)
	for i := 0; i < nVP; i++ {
		for j := i + 1; j < nVP; j++ {
			d := geo.DistanceKm(c.VPs[i].Loc, c.VPs[j].Loc)
			vpDist[i*nVP+j], vpDist[j*nVP+i] = d, d
		}
	}
	results := make([]*core.Result, len(c.Targets))
	var wg sync.WaitGroup
	chunk := (len(c.Targets) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(c.Targets) {
			hi = len(c.Targets)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ms := make([]core.Measurement, 0, nVP)
			vpIdx := make([]int, 0, nVP)
			dist := core.CenterDist(func(a, b int) float64 {
				return vpDist[vpIdx[a]*nVP+vpIdx[b]]
			})
			for t := lo; t < hi; t++ {
				ms, vpIdx = c.AppendMeasurements(t, ms[:0], vpIdx[:0])
				if len(ms) < minSamples {
					continue
				}
				r := core.AnalyzeWithDist(idx, ms, dist, opt)
				if r.Anycast {
					results[t] = &r
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	var out []census.Outcome
	for t, r := range results {
		if r != nil {
			out = append(out, census.Outcome{Target: c.Targets[t], Result: *r})
		}
	}
	return out
}

// measureAnalyzeAll times both partitionings over the lab's combined
// matrix and checks they agree.
func measureAnalyzeAll(lab *experiments.Lab) *analyzeAllBench {
	c := lab.Combined
	workers := runtime.GOMAXPROCS(0)
	// Warm both paths once, checking agreement while at it.
	steal := census.AnalyzeAll(lab.Cities, c, core.Options{}, 2, workers)
	static := analyzeAllStatic(lab.Cities, c, core.Options{}, 2, workers)
	if len(steal) == 0 || len(steal) != len(static) {
		return nil
	}
	const reps = 3
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		census.AnalyzeAll(lab.Cities, c, core.Options{}, 2, workers)
	}
	stealNs := float64(time.Since(t0).Nanoseconds()) / reps
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		analyzeAllStatic(lab.Cities, c, core.Options{}, 2, workers)
	}
	staticNs := float64(time.Since(t0).Nanoseconds()) / reps
	return &analyzeAllBench{
		VPs:         len(c.VPs),
		Targets:     len(c.Targets),
		Workers:     workers,
		StaticNs:    staticNs,
		WorkStealNs: stealNs,
		Speedup:     staticNs / stealNs,
		Anycast24s:  len(steal),
	}
}

// measureDistributed runs the same probing rounds twice over the lab's
// world — once in-process, once leased across an agent fleet over
// net.Pipe — and checks byte-identity of the two campaigns.
func measureDistributed(lab *experiments.Lab, agents int) *distributedBench {
	const vpsPer = 200
	rounds := lab.Config.Censuses
	seed := lab.Config.Seed
	ccfg := census.Config{Seed: seed}
	targets := lab.Hitlist

	runtime.GC()
	sampler := startHeapSampler()
	t0 := time.Now()
	single := census.NewCampaign(census.CampaignConfig{Census: ccfg})
	for round := uint64(1); round <= uint64(rounds); round++ {
		vps := lab.PL.Sample(vpsPer, seed+round)
		if _, err := single.ExecuteRound(context.Background(), lab.World, vps, targets, lab.Black, round); err != nil {
			sampler.Stop()
			return nil
		}
	}
	singleWall := time.Since(t0)
	singlePeak, _ := sampler.Stop()

	runtime.GC()
	sampler = startHeapSampler()
	t0 = time.Now()
	dist := census.NewCampaign(census.CampaignConfig{Census: ccfg})
	coord, err := cluster.NewCoordinator(cluster.Config{
		Campaign:  dist,
		Targets:   targets.Targets(),
		Blacklist: lab.Black,
		Census:    ccfg,
		World:     lab.World.Config(),
	})
	if err != nil {
		sampler.Stop()
		return nil
	}
	fleet, err := cluster.NewHarness(coord, cluster.HarnessConfig{
		Agents: agents,
		Agent:  cluster.AgentConfig{World: lab.World, Capacity: 2},
	})
	if err != nil {
		coord.Close()
		sampler.Stop()
		return nil
	}
	ok := true
	for round := uint64(1); round <= uint64(rounds); round++ {
		vps := lab.PL.Sample(vpsPer, seed+round)
		if _, err := coord.ExecuteRound(context.Background(), round, vps); err != nil {
			ok = false
			break
		}
	}
	distWall := time.Since(t0)
	st := coord.Stats()
	fleet.Close()
	coordPeak, _ := sampler.Stop()
	if !ok {
		return nil
	}

	cs, cd := single.Combined(), dist.Combined()
	identical := cs != nil && cd != nil &&
		reflect.DeepEqual(cs.VPs, cd.VPs) &&
		reflect.DeepEqual(cs.Targets, cd.Targets) &&
		reflect.DeepEqual(cs.RTTus, cd.RTTus) &&
		reflect.DeepEqual(single.Greylist().Snapshot(), dist.Greylist().Snapshot())

	return &distributedBench{
		Agents:         agents,
		Censuses:       rounds,
		VPsPerRound:    vpsPer,
		Targets:        targets.Len(),
		SingleWallS:    singleWall.Seconds(),
		SinglePeakHeap: singlePeak,
		DistribWallS:   distWall.Seconds(),
		CoordPeakHeap:  coordPeak,
		Leases:         st.Leases,
		FramesFolded:   st.FramesFolded,
		Identical:      identical,
	}
}

// measureIncremental runs the longitudinal re-analysis workload through
// experiments.LongitudinalCampaign.
func measureIncremental(lab *experiments.Lab, rounds, vps int) *incrementalBench {
	r := lab.LongitudinalCampaign(rounds, vps)
	out := &incrementalBench{
		Rounds:           len(r.Rounds),
		VPs:              vps,
		Targets:          r.Targets,
		BatchWallS:       r.BatchWall.Seconds(),
		IncrementalWallS: r.IncrementalWall.Seconds(),
		Speedup:          r.Speedup,
		CertHitRate:      r.CertHitRate,
		Agree:            r.Agree,
	}
	for _, rd := range r.Rounds {
		out.DirtyFractions = append(out.DirtyFractions, rd.DirtyFraction)
	}
	return out
}

// measureCodec times v2 columnar and legacy gob+flate save/load of the
// lab's first census round.
func measureCodec(lab *experiments.Lab) *codecBench {
	if len(lab.Runs) == 0 {
		return nil
	}
	run := lab.Runs[0]
	samples := 0
	for _, row := range run.RTTus {
		for _, v := range row {
			if v >= 0 {
				samples++
			}
		}
	}
	if samples == 0 {
		return nil
	}

	const reps = 3
	measure := func(save func(*bytes.Buffer) error) (encNs, decNs float64, size int) {
		var buf bytes.Buffer
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			buf.Reset()
			if err := save(&buf); err != nil {
				return 0, 0, 0
			}
		}
		encNs = float64(time.Since(t0).Nanoseconds()) / reps
		data := buf.Bytes()
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := census.LoadRun(bytes.NewReader(data)); err != nil {
				return 0, 0, 0
			}
		}
		decNs = float64(time.Since(t0).Nanoseconds()) / reps
		return encNs, decNs, len(data)
	}

	cb := &codecBench{VPs: len(run.VPs), Targets: len(run.Targets), Samples: samples}
	cb.V2EncodeNs, cb.V2DecodeNs, cb.V2Bytes = measure(func(b *bytes.Buffer) error { return census.SaveRun(b, run) })
	cb.GobEncodeNs, cb.GobDecodeNs, cb.GobBytes = measure(func(b *bytes.Buffer) error { return census.SaveRunLegacy(b, run) })
	if cb.V2Bytes == 0 || cb.GobBytes == 0 {
		return nil
	}
	cb.V2BytesPerSample = float64(cb.V2Bytes) / float64(samples)
	cb.GobBytesPerSample = float64(cb.GobBytes) / float64(samples)
	cb.SpeedupEncode = cb.GobEncodeNs / cb.V2EncodeNs
	cb.SpeedupDecode = cb.GobDecodeNs / cb.V2DecodeNs
	cb.SpeedupEncodeDecode = (cb.GobEncodeNs + cb.GobDecodeNs) / (cb.V2EncodeNs + cb.V2DecodeNs)
	return cb
}
