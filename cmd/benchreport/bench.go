package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"anycastmap/internal/experiments"
	"anycastmap/internal/netsim"
	"anycastmap/internal/prober"
	"anycastmap/internal/record"
	"anycastmap/internal/store"
)

// benchMetrics is one measured point of the benchmark trajectory. All
// numbers come from live runs of the same code paths the benchmarks in
// bench_test.go exercise, so baseline and current entries are comparable
// across commits on the same machine.
type benchMetrics struct {
	// FullCampaignNs is the wall-clock of one complete campaign (world
	// build + blacklist + 4 censuses + combine + analysis) at the
	// BenchmarkFullCampaign scale (4,000 unicast /24s, seed 3000).
	FullCampaignNs float64 `json:"full_campaign_ns_op"`
	// CampaignWallclockS is the wall-clock of the lab build at the scale
	// selected on the command line (default 20,000 unicast /24s).
	CampaignWallclockS float64 `json:"campaign_wallclock_s,omitempty"`
	// ProbesPerS is the single-VP probing-loop throughput over the pruned
	// hitlist (the census hot loop: LFSR walk, greylist check, probe).
	ProbesPerS float64 `json:"probes_per_s"`
	// LookupsPerS is the anycastd serving-path throughput: snapshot index
	// lookups over an alternating anycast/unicast address mix.
	LookupsPerS float64 `json:"lookups_per_s,omitempty"`
	// AllocsPerProbe is heap allocations per probe in a steady-state
	// probing run (the acceptance bound is zero: the constant per-run
	// setup amortizes to ~0 over thousands of probes).
	AllocsPerProbe float64 `json:"allocs_per_probe"`
	Note           string  `json:"note,omitempty"`
}

type benchReport struct {
	Bench    string `json:"bench"`
	Go       string `json:"go"`
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	CPUs     int    `json:"cpus"`
	Captured string `json:"captured"`

	Unicast24s int    `json:"unicast24s"`
	Censuses   int    `json:"censuses"`
	Seed       uint64 `json:"seed"`

	Baseline benchMetrics `json:"baseline"`
	Current  benchMetrics `json:"current"`
	// SpeedupFullCampaign is baseline/current for the FullCampaign time —
	// the headline number the probe-path memoization is judged by.
	SpeedupFullCampaign float64 `json:"speedup_full_campaign"`
}

// seedBaseline holds the pre-memoization numbers, measured with
// `go test -bench` at commit f5729cc on the machine that produced the
// committed BENCH_3.json. It seeds the baseline the first time the file is
// written; after that the file's own baseline is preserved across re-runs.
var seedBaseline = benchMetrics{
	FullCampaignNs: 6_723_486_527,
	ProbesPerS:     2.20e6,  // BenchmarkProberRun: 3020925 ns/op at 6638 probes/op
	AllocsPerProbe: 0.00075, // 5 allocs per run of 6638 probes (mutex-bound, not alloc-bound)
	Note: "pre-change go test -bench at commit f5729cc; the serving path " +
		"(lookups/s) is untouched by the memoization work",
}

// writeBenchJSON measures the current benchmark trajectory point and writes
// it next to the baseline. lab and labElapsed come from the experiment run
// the caller already paid for.
func writeBenchJSON(path string, lab *experiments.Lab, labElapsed time.Duration) error {
	rep := benchReport{
		Bench:      "BENCH_3",
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Captured:   time.Now().UTC().Format(time.RFC3339),
		Unicast24s: lab.Config.Unicast24s,
		Censuses:   lab.Config.Censuses,
		Seed:       lab.Config.Seed,
		Baseline:   seedBaseline,
	}
	// A baseline measured earlier on this machine outranks the built-in
	// seed: keep it so the trajectory stays comparable across re-runs.
	if prev, err := os.ReadFile(path); err == nil {
		var old benchReport
		if json.Unmarshal(prev, &old) == nil && old.Baseline.FullCampaignNs > 0 {
			rep.Baseline = old.Baseline
		}
	}

	fmt.Printf("bench: full campaign at BenchmarkFullCampaign scale ... ")
	rep.Current.FullCampaignNs = measureFullCampaign()
	fmt.Printf("%.2fs\n", rep.Current.FullCampaignNs/1e9)

	rep.Current.CampaignWallclockS = labElapsed.Seconds()

	fmt.Printf("bench: probing loop ... ")
	rep.Current.ProbesPerS, rep.Current.AllocsPerProbe = measureProbing(lab)
	fmt.Printf("%.0f probes/s, %.4f allocs/probe\n", rep.Current.ProbesPerS, rep.Current.AllocsPerProbe)

	fmt.Printf("bench: serving lookups ... ")
	rep.Current.LookupsPerS = measureLookups(lab)
	fmt.Printf("%.0f lookups/s\n", rep.Current.LookupsPerS)

	if rep.Current.FullCampaignNs > 0 {
		rep.SpeedupFullCampaign = rep.Baseline.FullCampaignNs / rep.Current.FullCampaignNs
	}
	rep.Current.Note = "measured live by cmd/benchreport -benchjson"

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: %s written (full campaign %.2fx vs baseline)\n\n", path, rep.SpeedupFullCampaign)
	return nil
}

// measureFullCampaign times one complete campaign at exactly the
// BenchmarkFullCampaign configuration so the number is comparable to the
// committed baseline ns/op.
func measureFullCampaign() float64 {
	cfg := experiments.DefaultLabConfig()
	cfg.Unicast24s = 4000
	cfg.Seed = 3000
	start := time.Now()
	l := experiments.NewLab(cfg)
	elapsed := time.Since(start)
	if len(l.Findings) == 0 {
		return 0
	}
	return float64(elapsed.Nanoseconds())
}

// measureProbing times steady-state single-VP probing runs over the pruned
// hitlist and counts heap allocations per probe via the runtime's
// cumulative malloc counter (GC cannot decrease it).
func measureProbing(lab *experiments.Lab) (probesPerS, allocsPerProbe float64) {
	vp := lab.PL.VPs()[0]
	targets := lab.Hitlist.Targets()
	cfg := prober.Config{Seed: lab.Config.Seed, Round: 1}
	sink := func(record.Sample) {}
	// Warm the per-VP session cache and the frozen greylist view so the
	// measured passes only see the steady state the census rounds run in.
	if _, _, err := prober.Run(lab.World, vp, targets, lab.Black, cfg, sink); err != nil {
		return 0, 0
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var sent int64
	const reps = 3
	for i := 0; i < reps; i++ {
		stats, _, err := prober.Run(lab.World, vp, targets, lab.Black, cfg, sink)
		if err != nil {
			return 0, 0
		}
		sent += int64(stats.Sent)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if sent == 0 || elapsed <= 0 {
		return 0, 0
	}
	return float64(sent) / elapsed.Seconds(),
		float64(after.Mallocs-before.Mallocs) / float64(sent)
}

// measureLookups times the anycastd snapshot index over an alternating
// anycast/unicast address mix (the BenchmarkStoreLookupCold workload).
func measureLookups(lab *experiments.Lab) float64 {
	snap := store.NewSnapshot(lab.Findings, lab.World.Registry,
		uint64(lab.Config.Censuses), lab.Config.Censuses)
	var ips []netsim.IP
	for i, f := range lab.Findings {
		ips = append(ips, f.Prefix.Host(byte(i)))
		ips = append(ips, (f.Prefix + 1).Host(byte(i)))
	}
	if len(ips) == 0 {
		return 0
	}
	const n = 2_000_000
	start := time.Now()
	for i := 0; i < n; i++ {
		snap.Lookup(ips[i%len(ips)])
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return n / elapsed.Seconds()
}
