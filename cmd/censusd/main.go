// Command censusd is the distributed census control plane: the same
// census cmd/census runs in one process, split into a coordinator that
// leases target shards and folds the streamed results, and agents that
// own vantage points and probe on its behalf (ROADMAP items 1–2; the
// paper's PlanetLab topology, Sec. 3).
//
// Modes:
//
//	censusd -listen :7624            coordinator serving TCP agents
//	censusd -agent -connect HOST:7624 one agent process
//	censusd -local 4                  coordinator + 4 agents in-process
//
// The -local mode is the deterministic testbed: agents run in the same
// process over net.Pipe (or real TCP loopback with -transport tcp),
// optionally with injected churn (-churn-every) and VP crash faults,
// and -verify holds the distributed result to byte-identity with a
// zero-fault single-process campaign.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"time"

	"anycastmap/internal/analysis"
	"anycastmap/internal/bgp"
	"anycastmap/internal/census"
	"anycastmap/internal/cities"
	"anycastmap/internal/cluster"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/obs"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

func main() {
	// Topology.
	listen := flag.String("listen", "", "coordinator mode: serve agents on this TCP address")
	agent := flag.Bool("agent", false, "agent mode: execute leases for a remote coordinator")
	connect := flag.String("connect", "", "agent mode: coordinator address")
	local := flag.Int("local", 0, "local mode: run a coordinator plus N in-process agents")
	transport := flag.String("transport", "pipe", "local mode transport: pipe or tcp")
	name := flag.String("name", "agent", "agent name")
	capacity := flag.Int("capacity", 2, "leases an agent executes concurrently")
	minAgents := flag.Int("min-agents", 1, "coordinator mode: agents required before the census starts")

	// Census shape (mirrors cmd/census).
	unicast := flag.Int("unicast24s", 20000, "unicast /24 background size")
	rounds := flag.Int("censuses", 4, "number of census rounds")
	vpsPer := flag.Int("vps", 261, "vantage points per census")
	seed := flag.Uint64("seed", 2015, "world seed")
	rate := flag.Float64("rate", 1000, "probing rate per VP (probes/s)")
	retries := flag.Int("retries", 3, "per-VP probing attempts per census round (re-lease budget)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "base backoff before re-leasing a failed VP")

	// Cluster tuning.
	shardTargets := flag.Int("shard-targets", 0, "lease width in targets (0 = one lease per VP row)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "how long an agent may hold a lease")
	heartbeat := flag.Duration("heartbeat", time.Second, "agent heartbeat interval")
	metricsAddr := flag.String("metrics", "", "coordinator modes: serve GET /metrics on this admin address")

	// Failure weather (local mode).
	churnEvery := flag.Int("churn-every", 0, "kill each agent's connection after this many row frames")
	respawn := flag.Bool("respawn", true, "respawn agents that die")
	exitOnCrash := flag.Bool("exit-on-crash", false, "an injected VP crash kills the whole agent")
	faultSeed := flag.Uint64("fault-seed", 0, "fault plan seed (0 = world seed)")
	faultCrash := flag.Float64("fault-crash", 0, "fraction of VPs crashing mid-run per round")
	faultSticky := flag.Float64("fault-crash-sticky", 0, "probability a crashed VP stays down across retries")
	faultFlap := flag.Float64("fault-flap", 0, "fraction of VPs with a total-loss flap window per round")
	faultBurst := flag.Float64("fault-burst", 0, "fraction of VPs with bursty reply loss per round")
	faultOutage := flag.Float64("fault-outage", 0, "fraction of /24s transiently unreachable per round")

	verify := flag.Bool("verify", false, "after the distributed census, run the zero-fault single-process campaign and fail unless combined rows, greylist, and outcomes are byte-identical")
	top := flag.Int("top", 10, "print the top-N anycast ASes")
	flag.Parse()
	log.SetFlags(0)

	if *agent {
		if *connect == "" {
			log.Fatal("agent mode needs -connect HOST:PORT")
		}
		runRemoteAgent(*connect, *name, *capacity)
		return
	}
	if *local <= 0 && *listen == "" {
		log.Fatal("pick a mode: -listen ADDR (coordinator), -agent -connect ADDR, or -local N")
	}
	if *verify {
		// Only crash faults with zero stickiness keep the distributed
		// run byte-identical to a zero-fault single-process campaign: a
		// non-sticky crashed VP recovers on its first re-lease with
		// identical draws, whereas flap/burst loss windows depend on the
		// probing run length (which sharding changes) and sticky crashes
		// quarantine VPs with partial rows.
		if *faultSticky > 0 || *faultFlap > 0 || *faultBurst > 0 || *faultOutage > 0 {
			log.Fatal("-verify only supports -fault-crash with zero stickiness")
		}
	}

	start := time.Now()
	cfg := netsim.DefaultConfig()
	cfg.Seed = *seed
	cfg.Unicast24s = *unicast
	world := netsim.New(cfg)
	db := cities.Default()
	pl := platform.PlanetLab(db)
	table := bgp.FromWorld(world)

	full := hitlist.FromWorld(world)
	log.Printf("world: %d /24s (%d anycast), hitlist %d entries",
		world.NumPrefixes(), len(world.Deployments()), full.Len())
	black, err := prober.BuildBlacklist(world, pl.VPs()[0], full.Targets(), prober.Config{Seed: *seed})
	if err != nil {
		log.Fatalf("blacklist census: %v", err)
	}
	targets := full.PruneNeverAlive().Without(black.Targets())
	log.Printf("blacklist: %d hosts; pruned target list: %d", black.Len(), targets.Len())

	var faults *netsim.FaultConfig
	probeWorld := world
	if *faultCrash > 0 || *faultFlap > 0 || *faultBurst > 0 || *faultOutage > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		faults = &netsim.FaultConfig{
			Seed:                 fseed,
			CrashFraction:        *faultCrash,
			CrashStickiness:      *faultSticky,
			FlapFraction:         *faultFlap,
			BurstLossFraction:    *faultBurst,
			TargetOutageFraction: *faultOutage,
		}
		plan, err := netsim.NewFaultPlan(*faults)
		if err != nil {
			log.Fatalf("fault plan: %v", err)
		}
		probeWorld = world.WithFaults(plan)
		log.Printf("fault injection: crash=%.2f (sticky %.2f) flap=%.2f burst=%.2f outage=%.2f seed=%d",
			*faultCrash, *faultSticky, *faultFlap, *faultBurst, *faultOutage, fseed)
	}

	// The optional admin listener exposes the coordinator's view of the
	// census in Prometheus text: prober, campaign/analyzer and cluster
	// control-plane series.
	var censusMetrics *census.Metrics
	var clusterMetrics *cluster.Metrics
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		prober.DefaultMetrics.Register(reg)
		prober.RegisterGreylistGauge(reg, black, "blacklist")
		censusMetrics = census.NewMetrics(reg)
		clusterMetrics = cluster.NewMetrics(reg)
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("metrics listen: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", ln.Addr())
	}

	ccfg := census.Config{Seed: *seed, Rate: *rate, MaxAttempts: *retries, RetryBackoff: *retryBackoff}
	cp := census.NewCampaign(census.CampaignConfig{Census: ccfg, Metrics: censusMetrics})
	coord, err := cluster.NewCoordinator(cluster.Config{
		Campaign:       cp,
		Targets:        targets.Targets(),
		Blacklist:      black,
		Census:         ccfg,
		World:          cfg,
		Faults:         faults,
		ShardTargets:   *shardTargets,
		LeaseTTL:       *leaseTTL,
		HeartbeatEvery: *heartbeat,
		Log:            log.Printf,
		Metrics:        clusterMetrics,
	})
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}

	var fleet *cluster.Harness
	if *local > 0 {
		fleet, err = cluster.NewHarness(coord, cluster.HarnessConfig{
			Agents:    *local,
			Transport: *transport,
			Agent: cluster.AgentConfig{
				Name:        *name,
				Capacity:    *capacity,
				World:       probeWorld,
				ExitOnCrash: *exitOnCrash,
			},
			Respawn:         *respawn,
			KillAfterFrames: *churnEvery,
		})
		if err != nil {
			coord.Close()
			log.Fatalf("harness: %v", err)
		}
		log.Printf("local cluster: %d agents over %s (churn-every=%d respawn=%v)",
			*local, *transport, *churnEvery, *respawn)
	} else {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			coord.Close()
			log.Fatalf("listen: %v", err)
		}
		go coord.Serve(ln)
		log.Printf("coordinator listening on %s, waiting for %d agents", ln.Addr(), *minAgents)
		for coord.Stats().AgentsJoined < *minAgents {
			time.Sleep(100 * time.Millisecond)
		}
	}

	for round := 1; round <= *rounds; round++ {
		vps := pl.Sample(*vpsPer, *seed+uint64(round))
		sum, err := coord.ExecuteRound(context.Background(), uint64(round), vps)
		if err != nil {
			log.Printf("census %d: probing errors (partial rows kept): %v", sum.Round, err)
		}
		log.Printf("census %d: %d VPs, %d probes, %d echo targets, %d greylisted (%v)",
			sum.Round, sum.VPs, sum.Probes, sum.EchoTargets, sum.GreylistLen,
			sum.Duration.Round(time.Millisecond))
		if sum.Health.Retries > 0 || sum.Health.Degraded() {
			log.Printf("census %d health: %s", sum.Round, sum.Health)
		}
	}
	st := coord.Stats()
	log.Printf("cluster: %d joins, %d losses, %d leases (%d re-leases, %d expired), %d frames folded, %d late",
		st.AgentsJoined, st.AgentsLost, st.Leases, st.ReLeases, st.Expired, st.FramesFolded, st.LateFrames)
	if fleet != nil {
		deaths := fleet.Deaths()
		if err := fleet.Close(); err != nil {
			log.Printf("harness close: %v", err)
		}
		if deaths > 0 {
			log.Printf("agent churn: %d deaths, fleet respawned", deaths)
		}
	} else {
		coord.Close()
	}
	if cp.Health().Degraded() {
		log.Printf("campaign degraded: %s", cp.Health())
	}

	combined := cp.Combined()
	if combined == nil {
		log.Fatal("no census rounds ran")
	}
	outcomes := census.AnalyzeAll(db, combined, core.Options{}, 2, 0)

	if *verify {
		verifyAgainstSingleProcess(cp, outcomes, world, targets, black, pl, ccfg, *rounds, *vpsPer, *seed, db)
	}

	findings := analysis.Attribute(outcomes, table)
	g := analysis.GlanceOf(findings)
	log.Printf("combined: %d anycast /24s across %d ASes, %d replicas in %d cities / %d countries",
		g.IP24s, g.ASes, g.Replicas, g.Cities, g.CC)
	sts := analysis.PerAS(analysis.FilterMinReplicas(findings, 5), world.Registry)
	fmt.Printf("\n%-24s %9s %7s\n", "AS", "replicas", "IP/24")
	for i, s := range sts {
		if i >= *top {
			break
		}
		fmt.Printf("%-24s %9.1f %7d\n", s.AS.Name, s.MeanReplicas, s.IP24s)
	}
	log.Printf("\ntotal wall time %v", time.Since(start).Round(time.Millisecond))
}

// verifyAgainstSingleProcess re-runs the campaign the pre-cluster way —
// one process, zero faults — and dies unless the distributed result is
// byte-identical: same combined rows, same greylist, same outcomes.
func verifyAgainstSingleProcess(cp *census.Campaign, outcomes []census.Outcome, world *netsim.World,
	targets *hitlist.Hitlist, black *prober.Greylist, pl *platform.Platform,
	ccfg census.Config, rounds, vpsPer int, seed uint64, db *cities.DB) {
	ref := census.NewCampaign(census.CampaignConfig{Census: ccfg})
	for round := 1; round <= rounds; round++ {
		vps := pl.Sample(vpsPer, seed+uint64(round))
		if _, err := ref.ExecuteRound(context.Background(), world, vps, targets, black, uint64(round)); err != nil {
			log.Fatalf("verify: single-process round %d: %v", round, err)
		}
	}
	cw, cg := ref.Combined(), cp.Combined()
	if !reflect.DeepEqual(cw.VPs, cg.VPs) || !reflect.DeepEqual(cw.Targets, cg.Targets) {
		log.Fatal("verify: VP union or target list diverges from the single-process campaign")
	}
	for v := range cw.RTTus {
		if !reflect.DeepEqual(cw.RTTus[v], cg.RTTus[v]) {
			log.Fatalf("verify: combined row %d (%s) diverges from the single-process campaign", v, cw.VPs[v].Name)
		}
	}
	if !reflect.DeepEqual(ref.Greylist().Snapshot(), cp.Greylist().Snapshot()) {
		log.Fatal("verify: greylist diverges from the single-process campaign")
	}
	batch := census.AnalyzeAll(db, cw, core.Options{}, 2, 0)
	if !reflect.DeepEqual(outcomes, batch) {
		log.Fatalf("verify: outcomes diverge (%d distributed vs %d single-process anycast /24s)",
			len(outcomes), len(batch))
	}
	log.Printf("verify: distributed census == single-process census (%d rows, %d anycast /24s)",
		len(cg.RTTus), len(outcomes))
}

// runRemoteAgent dials the coordinator and executes leases until it
// sends a shutdown frame or the connection dies.
func runRemoteAgent(addr, name string, capacity int) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	log.Printf("agent %q connected to %s", name, addr)
	if err := cluster.RunAgent(context.Background(), conn, cluster.AgentConfig{
		Name:     name,
		Capacity: capacity,
	}); err != nil {
		log.Fatalf("agent: %v", err)
	}
	log.Printf("agent %q: coordinator shut down, exiting", name)
}
