// Command anycastd is the anycast lookup daemon: the paper's public
// anycast map ([21]) served as a high-QPS classification API. At startup
// it builds the world, seeds the probing blacklist, runs a first census
// campaign, and then answers
//
//	GET  /v1/lookup?ip=188.114.97.7     one IP  -> anycast? AS, replicas, cities
//	POST /v1/lookup/batch               JSON list of IPs -> one answer each
//	GET  /v1/snapshot                   index version, census round, counts
//	GET  /v1/stats                      per-endpoint latency + cache hit rates
//	GET  /metrics                       Prometheus text exposition
//	GET  /healthz                       liveness/readiness
//
// while a background refresher keeps re-running census rounds and
// hot-swaps the index with zero reader downtime: queries issued during a
// refresh answer from the previous snapshot. SIGINT/SIGTERM drain the
// server gracefully.
//
// With -dns ADDR the daemon also serves the DNS/UDP routing front-end
// (package route): A/TXT queries for <a>.<b>.<c>.<zone> steer clients
// to deployment replicas under the census-informed policy chain.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"anycastmap/internal/bgp"
	"anycastmap/internal/census"
	"anycastmap/internal/cities"
	"anycastmap/internal/cluster"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/obs"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
	"anycastmap/internal/route"
	"anycastmap/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	dnsAddr := flag.String("dns", "", "serve the DNS/UDP routing front-end on this address (empty = disabled)")
	dnsListeners := flag.Int("dns-listeners", 0, "SO_REUSEPORT UDP listeners for the routing front-end (0 = GOMAXPROCS)")
	dnsZone := flag.String("dns-zone", route.DefaultZone, "zone suffix the routing front-end answers for")
	unicast := flag.Int("unicast24s", 6000, "unicast /24 background size")
	rounds := flag.Int("censuses", 2, "census rounds combined per snapshot")
	vpsPer := flag.Int("vps", 261, "vantage points per census round")
	agents := flag.Int("agents", 0, "run census rounds across this many in-process cluster agents (0 = in-process executor)")
	pipelined := flag.Bool("pipelined", false, "shard-pipelined census rounds: fold probe spans as they land (bounded peak heap)")
	spanTargets := flag.Int("span-targets", 0, "pipelined probe-span width in targets (0 = 16384)")
	snapFile := flag.String("snapshot-file", "", "persist snapshots here and serve them mmap-backed; an existing file boots the daemon ready before the first census")
	seed := flag.Uint64("seed", 2015, "world seed")
	rate := flag.Float64("rate", 1000, "probing rate per VP (probes/s)")
	workers := flag.Int("workers", 0, "vantage points probing concurrently (0 = GOMAXPROCS)")
	refresh := flag.Duration("refresh", 15*time.Minute, "background census refresh interval")
	cacheSize := flag.Int("cache", 1<<16, "LRU capacity in single-IP answers")
	maxInFlight := flag.Int("max-inflight", 256, "maximum concurrently-served requests")
	retries := flag.Int("retries", 3, "per-VP probing attempts per census round (1 disables retrying)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "base backoff before retrying a failed VP (doubles per retry)")
	faultSeed := flag.Uint64("fault-seed", 0, "fault plan seed (0 = world seed)")
	faultCrash := flag.Float64("fault-crash", 0, "fraction of VPs crashing mid-run per round")
	faultSticky := flag.Float64("fault-crash-sticky", 0, "probability a crashed VP stays down across retries")
	faultFlap := flag.Float64("fault-flap", 0, "fraction of VPs with a total-loss flap window per round")
	faultBurst := flag.Float64("fault-burst", 0, "fraction of VPs with bursty reply loss per round")
	faultOutage := flag.Float64("fault-outage", 0, "fraction of /24s transiently unreachable per round")
	flag.Parse()
	log.SetFlags(0)

	wcfg := netsim.DefaultConfig()
	wcfg.Seed = *seed
	wcfg.Unicast24s = *unicast
	world := netsim.New(wcfg)
	db := cities.Default()
	pl := platform.PlanetLab(db)
	full := hitlist.FromWorld(world)
	log.Printf("world: %d /24s (%d anycast), hitlist %d entries",
		world.NumPrefixes(), len(world.Deployments()), full.Len())

	// Preliminary single-VP census seeds the blacklist (Sec. 3.3).
	black, err := prober.BuildBlacklist(world, pl.VPs()[0], full.Targets(), prober.Config{Seed: *seed})
	if err != nil {
		log.Fatalf("blacklist census: %v", err)
	}
	targets := full.PruneNeverAlive().Without(black.Targets())
	log.Printf("blacklist: %d hosts; pruned target list: %d", black.Len(), targets.Len())

	// Fault injection applies to the census rounds, not the bootstrap
	// blacklist run: a crashed bootstrap would just abort startup.
	if *faultCrash > 0 || *faultFlap > 0 || *faultBurst > 0 || *faultOutage > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		plan, err := netsim.NewFaultPlan(netsim.FaultConfig{
			Seed:                 fseed,
			CrashFraction:        *faultCrash,
			CrashStickiness:      *faultSticky,
			FlapFraction:         *faultFlap,
			BurstLossFraction:    *faultBurst,
			TargetOutageFraction: *faultOutage,
		})
		if err != nil {
			log.Fatalf("fault plan: %v", err)
		}
		world = world.WithFaults(plan)
		log.Printf("fault injection: crash=%.2f (sticky %.2f) flap=%.2f burst=%.2f outage=%.2f seed=%d",
			*faultCrash, *faultSticky, *faultFlap, *faultBurst, *faultOutage, fseed)
	}

	// One registry serves every layer's series at GET /metrics: the
	// prober's packet counters, the campaign/analyzer instruments, the
	// cluster control plane (when -agents is set), the store/refresher
	// read-throughs and the per-endpoint HTTP series.
	reg := obs.NewRegistry()
	prober.DefaultMetrics.Register(reg)
	prober.RegisterGreylistGauge(reg, black, "blacklist")

	src := &store.CensusSource{
		World:       world,
		Cities:      db,
		Platform:    pl,
		Table:       bgp.FromWorld(world),
		Registry:    world.Registry,
		Hitlist:     targets,
		Blacklist:   black,
		Rounds:      *rounds,
		VPsPerRound: *vpsPer,
		Seed:        *seed,
		Agents:      *agents,
		Pipelined:   *pipelined,
		SpanTargets: *spanTargets,
		Metrics:     census.NewMetrics(reg),
		Census: census.Config{
			Seed: *seed, Rate: *rate, Workers: *workers,
			MaxAttempts: *retries, RetryBackoff: *retryBackoff,
		},
	}
	if *agents > 0 {
		src.ClusterMetrics = cluster.NewMetrics(reg)
		log.Printf("census rounds distributed across %d in-process agents", *agents)
	}
	log.Printf("probing with %d concurrent vantage points per census", src.Census.EffectiveWorkers())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	st := store.New(store.Options{CacheSize: *cacheSize})
	r := store.NewRefresher(st, src, *refresh)
	r.Log = log.Printf
	r.SnapshotPath = *snapFile

	// Warm boot: an existing snapshot file serves immediately (mmap, no
	// census wait); a corrupt or missing file just falls through to the
	// normal cold start. The round counter advances past the file's round
	// so refreshed campaigns stay monotone.
	if *snapFile != "" {
		if snap, err := store.OpenSnapshotFile(*snapFile); err == nil {
			src.SetRound(snap.Round())
			st.Publish(snap)
			log.Printf("warm boot: serving %d anycast /24s from %s (census round %d)",
				snap.Len(), *snapFile, snap.Round())
		} else {
			log.Printf("no usable snapshot file (%v); cold start", err)
		}
	}

	// First snapshot synchronously, so the daemon usually comes up ready.
	// A failed initial build is no longer fatal: Run retries it on a
	// short backoff in the background while /healthz answers "starting",
	// so a transient source error can't keep the daemon down. A warm boot
	// skips the synchronous build; the refresher's ticker takes over.
	if !st.Ready() {
		start := time.Now()
		log.Printf("building initial snapshot (%d census rounds)...", *rounds)
		if !r.RefreshOnce(ctx) {
			log.Printf("initial census failed after %v; serving unready, retrying in background",
				time.Since(start).Round(time.Millisecond))
		}
	}
	go r.Run(ctx)

	// Routing front-end: the serving-side consumer of the map. It shares
	// the store (so hot snapshot swaps steer traffic immediately), the
	// world seed (so the synthetic client locator agrees with netsim) and
	// the metrics registry (anycastmap_route_* series).
	if *dnsAddr != "" {
		eng, err := route.NewEngine(route.Config{
			Store:   st,
			Locator: route.HashLocator{Seed: *seed},
			VPs:     pl.VPs(),
		})
		if err != nil {
			log.Fatalf("routing engine: %v", err)
		}
		dnsSrv, err := route.NewServer(route.ServerConfig{
			Addr:      *dnsAddr,
			Listeners: *dnsListeners,
			Engine:    eng,
			Zone:      *dnsZone,
			Metrics:   route.NewMetrics(reg),
		})
		if err != nil {
			log.Fatalf("routing front-end: %v", err)
		}
		go func() {
			<-ctx.Done()
			dnsSrv.Close()
		}()
		log.Printf("routing front-end on udp://%s/ (%d listeners, zone %s)",
			dnsSrv.Addr(), dnsSrv.Listeners(), *dnsZone)
	}

	api := store.NewAPI(st, r, store.APIConfig{MaxInFlight: *maxInFlight, Metrics: reg})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-ctx.Done()
		log.Printf("signal received, draining...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("anycastd serving on http://%s/ (refresh every %v)", *addr, *refresh)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	log.Printf("bye: %d lookups served, cache hit rate %.1f%%",
		st.Stats().Lookups, st.Stats().HitRate*100)
}
