// Command census runs one or more IPv4 anycast censuses end-to-end against
// the synthetic Internet and prints the Fig. 4 funnel: hitlist size, pruned
// target list, responsive targets, greylist, and detected anycast /24s.
//
// With -out DIR it also writes each vantage point's measurements in the
// binary record format (and, with -format csv, the verbose textual format
// of Census-0).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"anycastmap/internal/analysis"
	"anycastmap/internal/bgp"
	"anycastmap/internal/census"
	"anycastmap/internal/cities"
	"anycastmap/internal/cluster"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
	"anycastmap/internal/record"
)

func main() {
	unicast := flag.Int("unicast24s", 20000, "unicast /24 background size")
	agents := flag.Int("agents", 0, "run each census distributed across N in-process agents (cluster coordinator + VP agents over net.Pipe); 0 probes in-process")
	rounds := flag.Int("censuses", 4, "number of census rounds")
	vpsPer := flag.Int("vps", 261, "vantage points per census")
	seed := flag.Uint64("seed", 2015, "world seed")
	rate := flag.Float64("rate", 1000, "probing rate per VP (probes/s)")
	workers := flag.Int("workers", 0, "vantage points probing concurrently (0 = GOMAXPROCS)")
	out := flag.String("out", "", "directory to dump per-VP measurement files")
	save := flag.String("save", "", "directory to save the census runs (loadable with census.LoadRun)")
	format := flag.String("format", "binary", "record format for -out: binary or csv")
	top := flag.Int("top", 15, "print the top-N anycast ASes")
	stream := flag.Bool("stream", true, "fold each census into the combined matrix as it completes (peak memory stays O(one run + combined)); -stream=false retains every round and batch-combines at the end")
	pipelined := flag.Bool("pipelined", false, "shard-pipelined rounds: probe spans fold into the combined matrix as they land, so peak memory holds in-flight spans instead of a whole round of rows")
	spanTargets := flag.Int("span-targets", 0, "pipelined probe-span width in targets (0 = 16384)")
	maxHeapMiB := flag.Int("max-heap-mib", 0, "sample HeapAlloc through the run and fail if the peak exceeds this many MiB (0 = no assertion)")
	rateBaselineTargets := flag.Int("rate-baseline-targets", 0, "measure a single-VP pilot probing run over the first N pruned targets and fail unless the campaign's aggregate probe rate stays within -rate-within of it (0 = no assertion)")
	rateWithin := flag.Float64("rate-within", 2.0, "largest pilot/campaign probes-per-second ratio -rate-baseline-targets tolerates")
	shardTargets := flag.Int("shard-targets", 0, "fold work-unit width in targets (0 = auto)")
	foldWorkers := flag.Int("fold-workers", 0, "goroutines folding a finished round (0 = GOMAXPROCS)")
	incremental := flag.Bool("incremental", true, "analyze each round's dirty targets while the next round probes (needs -stream); -incremental=false analyzes once at the end")
	analyzeWorkers := flag.Int("analyze-workers", 0, "goroutines analyzing targets (0 = GOMAXPROCS)")
	verifyAnalysis := flag.Bool("verify-analysis", false, "after an incremental campaign, re-run the batch analysis and fail unless the outcomes match bit for bit")
	retries := flag.Int("retries", 3, "per-VP probing attempts per census round (1 disables retrying)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "base backoff before retrying a failed VP (doubles per retry)")
	faultSeed := flag.Uint64("fault-seed", 0, "fault plan seed (0 = world seed)")
	faultCrash := flag.Float64("fault-crash", 0, "fraction of VPs crashing mid-run per round")
	faultSticky := flag.Float64("fault-crash-sticky", 0, "probability a crashed VP stays down across retries")
	faultFlap := flag.Float64("fault-flap", 0, "fraction of VPs with a total-loss flap window per round")
	faultBurst := flag.Float64("fault-burst", 0, "fraction of VPs with bursty reply loss per round")
	faultOutage := flag.Float64("fault-outage", 0, "fraction of /24s transiently unreachable per round")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	log.SetFlags(0)
	start := time.Now()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	// The watermark sampler pins the campaign's true peak heap (HeapAlloc
	// between GCs), which the post-campaign ReadMemStats log line misses.
	var peakHeap atomic.Uint64
	if *maxHeapMiB > 0 {
		stopSampling := make(chan struct{})
		defer close(stopSampling)
		go func() {
			t := time.NewTicker(10 * time.Millisecond)
			defer t.Stop()
			var ms runtime.MemStats
			for {
				select {
				case <-stopSampling:
					return
				case <-t.C:
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peakHeap.Load() {
						peakHeap.Store(ms.HeapAlloc)
					}
				}
			}
		}()
	}

	cfg := netsim.DefaultConfig()
	cfg.Seed = *seed
	cfg.Unicast24s = *unicast
	world := netsim.New(cfg)
	db := cities.Default()
	pl := platform.PlanetLab(db)
	table := bgp.FromWorld(world)

	full := hitlist.FromWorld(world)
	log.Printf("world: %d /24s (%d anycast), hitlist %d entries",
		world.NumPrefixes(), len(world.Deployments()), full.Len())

	// Preliminary single-VP census builds the blacklist (Sec. 3.3).
	black, err := prober.BuildBlacklist(world, pl.VPs()[0], full.Targets(), prober.Config{Seed: *seed})
	if err != nil {
		log.Fatalf("blacklist census: %v", err)
	}
	targets := full.PruneNeverAlive().Without(black.Targets())
	log.Printf("blacklist: %d hosts; pruned target list: %d", black.Len(), targets.Len())

	// Fault injection applies to the census rounds, not the bootstrap
	// blacklist run.
	var faults *netsim.FaultConfig
	if *faultCrash > 0 || *faultFlap > 0 || *faultBurst > 0 || *faultOutage > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		faults = &netsim.FaultConfig{
			Seed:                 fseed,
			CrashFraction:        *faultCrash,
			CrashStickiness:      *faultSticky,
			FlapFraction:         *faultFlap,
			BurstLossFraction:    *faultBurst,
			TargetOutageFraction: *faultOutage,
		}
		plan, err := netsim.NewFaultPlan(*faults)
		if err != nil {
			log.Fatalf("fault plan: %v", err)
		}
		world = world.WithFaults(plan)
		log.Printf("fault injection: crash=%.2f (sticky %.2f) flap=%.2f burst=%.2f outage=%.2f seed=%d",
			*faultCrash, *faultSticky, *faultFlap, *faultBurst, *faultOutage, fseed)
	}

	ccfg := census.Config{Seed: *seed, Rate: *rate, Workers: *workers,
		MaxAttempts: *retries, RetryBackoff: *retryBackoff}
	log.Printf("probing with %d concurrent vantage points", ccfg.EffectiveWorkers())

	// The pilot run pins the small-campaign probe rate in this very
	// process: a single-VP probing loop over a prefix of the pruned list,
	// one warm-up pass (session build, greylist freeze) and one measured
	// pass. The campaign's aggregate rate is checked against it at the
	// end — the regression gate for the per-probe collapse that large
	// target lists used to pay once they outgrew the unicast RTT memo.
	var pilotRate float64
	if *rateBaselineTargets > 0 {
		pt := targets.Targets()
		if len(pt) > *rateBaselineTargets {
			pt = pt[:*rateBaselineTargets]
		}
		pcfg := prober.Config{Seed: *seed, Round: 1, Rate: *rate}
		pilotVP := pl.VPs()[0]
		sink := func(record.Sample) {}
		if _, _, err := prober.Run(world, pilotVP, pt, black, pcfg, sink); err != nil {
			log.Fatalf("pilot probing run: %v", err)
		}
		t0 := time.Now()
		st, _, err := prober.Run(world, pilotVP, pt, black, pcfg, sink)
		if err != nil {
			log.Fatalf("pilot probing run: %v", err)
		}
		pilotRate = float64(st.Sent) / time.Since(t0).Seconds()
		log.Printf("pilot probing rate: %.2fM probes/s over %d targets", pilotRate/1e6, len(pt))
	}
	var campaignProbes int64
	var campaignWall time.Duration

	// With -save, every finished round is persisted (v2 columnar format)
	// before the streaming fold releases its matrix.
	saved := 0
	saveRun := func(run *census.Run) error {
		if *save == "" {
			return nil
		}
		name := filepath.Join(*save, fmt.Sprintf("census-%d.run", run.Round))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := census.SaveRun(f, run); err != nil {
			f.Close()
			return fmt.Errorf("save %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("save %s: %w", name, err)
		}
		saved++
		return nil
	}
	if *save != "" {
		if err := os.MkdirAll(*save, 0o755); err != nil {
			log.Fatalf("save: %v", err)
		}
	}

	cp := census.NewCampaign(census.CampaignConfig{
		Census:       ccfg,
		FoldWorkers:  *foldWorkers,
		ShardTargets: *shardTargets,
		RetainRuns:   !*stream,
		OnRun:        saveRun,
	})
	useIncremental := *incremental && *stream
	if *incremental && !*stream {
		log.Printf("-incremental needs -stream; falling back to end-of-campaign analysis")
	}
	onRound := func(sum census.RoundSummary, err error) {
		if err != nil {
			log.Printf("census %d: probing errors (partial rows kept): %v", sum.Round, err)
		}
		log.Printf("census %d: %d VPs, %d probes, %d echo targets, %d greylisted (%v)",
			sum.Round, sum.VPs, sum.Probes, sum.EchoTargets, sum.GreylistLen,
			sum.Duration.Round(time.Millisecond))
		campaignProbes += int64(sum.Probes)
		campaignWall += sum.Duration
		if sum.Health.Retries > 0 || sum.Health.Degraded() {
			log.Printf("census %d health: %s", sum.Round, sum.Health)
		}
	}
	switch {
	case *agents > 0:
		// Distributed mode: the rounds run across an in-process cluster —
		// coordinator plus N agents over net.Pipe — through the same lease
		// and shard-fold protocol cmd/censusd speaks over TCP. The fold
		// always streams (no retained runs), so -save and -stream=false
		// have nothing to persist.
		if *save != "" {
			log.Printf("-save keeps whole runs; the distributed fold streams shards, skipping")
		}
		if !*stream {
			log.Printf("-stream=false needs retained runs; the distributed fold always streams")
		}
		if useIncremental {
			cp.AttachAnalyzer(census.NewAnalyzer(db, census.AnalyzerConfig{Workers: *analyzeWorkers}))
		}
		coord, err := cluster.NewCoordinator(cluster.Config{
			Campaign:     cp,
			Targets:      targets.Targets(),
			Blacklist:    black,
			Census:       ccfg,
			World:        cfg,
			Faults:       faults,
			ShardTargets: *shardTargets,
			Log:          log.Printf,
		})
		if err != nil {
			log.Fatalf("coordinator: %v", err)
		}
		fleet, err := cluster.NewHarness(coord, cluster.HarnessConfig{
			Agents: *agents,
			Agent:  cluster.AgentConfig{World: world, Capacity: 2},
		})
		if err != nil {
			coord.Close()
			log.Fatalf("agent fleet: %v", err)
		}
		log.Printf("distributed census: %d in-process agents", *agents)
		for round := 1; round <= *rounds; round++ {
			vps := pl.Sample(*vpsPer, *seed+uint64(round))
			sum, err := coord.ExecuteRound(context.Background(), uint64(round), vps)
			onRound(sum, err)
			if useIncremental {
				cp.AnalyzeDirty()
			}
		}
		st := coord.Stats()
		log.Printf("cluster: %d leases (%d re-leases), %d frames folded", st.Leases, st.ReLeases, st.FramesFolded)
		if err := fleet.Close(); err != nil {
			log.Printf("agent fleet close: %v", err)
		}
	case *pipelined:
		// Pipelined mode: each round's targets split into probe spans that
		// fold into the combined matrix as workers finish them, so shard
		// N+1 probes while shard N folds. The fold always streams (span
		// rows never assemble into a Run), so -save and -stream=false have
		// nothing to persist.
		if *save != "" {
			log.Printf("-save keeps whole runs; the pipelined fold streams spans, skipping")
		}
		if !*stream {
			log.Printf("-stream=false needs retained runs; the pipelined fold always streams")
		}
		if useIncremental {
			cp.AttachAnalyzer(census.NewAnalyzer(db, census.AnalyzerConfig{Workers: *analyzeWorkers}))
		}
		pc := census.PipelineConfig{SpanTargets: *spanTargets}
		log.Printf("pipelined census: span width %d targets", pc.EffectiveSpanTargets())
		for round := 1; round <= *rounds; round++ {
			vps := pl.Sample(*vpsPer, *seed+uint64(round))
			sum, err := cp.ExecuteRoundPipelined(context.Background(), world, vps, targets, black, uint64(round), pc)
			onRound(sum, err)
			if useIncremental {
				cp.AnalyzeDirty()
			}
		}
	case useIncremental:
		// Each round's dirty targets are analyzed while the next round
		// probes; per-round errors are surfaced by onRound as they happen.
		cp.AttachAnalyzer(census.NewAnalyzer(db, census.AnalyzerConfig{Workers: *analyzeWorkers}))
		if err := cp.ExecuteRoundsOverlapped(context.Background(), world, targets, black,
			1, *rounds, func(round uint64) []platform.VP {
				return pl.Sample(*vpsPer, *seed+round)
			}, onRound); err != nil {
			log.Printf("campaign: %v", err)
		}
	default:
		for round := 1; round <= *rounds; round++ {
			vps := pl.Sample(*vpsPer, *seed+uint64(round))
			sum, err := cp.ExecuteRound(context.Background(), world, vps, targets, black, uint64(round))
			onRound(sum, err)
		}
	}
	if cp.Health().Degraded() {
		log.Printf("campaign degraded: %s", cp.Health())
	}

	if *out != "" {
		if err := dump(world, pl, targets, black, *out, *format, *seed); err != nil {
			log.Fatalf("dump: %v", err)
		}
	}
	if saved > 0 {
		log.Printf("saved %d runs to %s", saved, *save)
	}

	combined := cp.Combined()
	if !*stream && *agents == 0 && !*pipelined {
		// Batch mode keeps every round and re-derives the combination the
		// pre-streaming way; the result is byte-identical to the fold.
		var err error
		combined, err = census.Combine(cp.Runs()...)
		if err != nil {
			log.Fatal(err)
		}
	}
	if combined == nil {
		log.Fatal("no census rounds ran")
	}
	var outcomes []census.Outcome
	var analysisWall time.Duration
	if useIncremental {
		outcomes = cp.Outcomes()
		analysisWall = cp.AnalysisWall()
		st := cp.Analyzer().Stats()
		log.Printf("incremental analysis: %d updates, last dirty %d, %d target analyses, cert hit rate %.0f%% (%d hits, %d full scans)",
			st.Updates, st.LastDirty, st.Analyzed, 100*st.CertHitRate(), st.CertHits, st.FullScans)
		if *verifyAnalysis {
			batch := census.AnalyzeAll(db, combined, core.Options{}, 2, *analyzeWorkers)
			if !reflect.DeepEqual(outcomes, batch) {
				log.Fatalf("verify-analysis: incremental outcomes (%d anycast /24s) diverge from batch AnalyzeAll (%d)",
					len(outcomes), len(batch))
			}
			log.Printf("verify-analysis: incremental == batch (%d anycast /24s)", len(outcomes))
		}
	} else {
		t0 := time.Now()
		outcomes = census.AnalyzeAll(db, combined, core.Options{}, 2, *analyzeWorkers)
		analysisWall = time.Since(t0)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	log.Printf("heap after campaign: %.1f MiB in use, %.1f MiB from OS, %d GC cycles; analysis wall %v",
		float64(ms.HeapAlloc)/(1<<20), float64(ms.Sys)/(1<<20), ms.NumGC,
		analysisWall.Round(time.Millisecond))
	findings := analysis.Attribute(outcomes, table)
	g := analysis.GlanceOf(findings)
	log.Printf("combined: %d anycast /24s across %d ASes, %d replicas in %d cities / %d countries",
		g.IP24s, g.ASes, g.Replicas, g.Cities, g.CC)

	sts := analysis.PerAS(analysis.FilterMinReplicas(findings, 5), world.Registry)
	fmt.Printf("\n%-24s %9s %7s\n", "AS", "replicas", "IP/24")
	for i, st := range sts {
		if i >= *top {
			break
		}
		fmt.Printf("%-24s %9.1f %7d\n", st.AS.Name, st.MeanReplicas, st.IP24s)
	}
	if *rateBaselineTargets > 0 && campaignWall > 0 {
		campaignRate := float64(campaignProbes) / campaignWall.Seconds()
		ratio := pilotRate / campaignRate
		log.Printf("campaign probing rate: %.2fM probes/s aggregate, %.2fx slower than the pilot (limit %.2fx)",
			campaignRate/1e6, ratio, *rateWithin)
		if ratio > *rateWithin {
			log.Fatalf("probe-rate collapse: campaign rate %.0f probes/s is %.2fx below the %d-target pilot (%.0f probes/s), limit %.2fx",
				campaignRate, ratio, *rateBaselineTargets, pilotRate, *rateWithin)
		}
	}
	if *maxHeapMiB > 0 {
		peak := peakHeap.Load()
		limit := uint64(*maxHeapMiB) << 20
		log.Printf("peak heap: %.1f MiB sampled (limit %d MiB, bounded=%v)",
			float64(peak)/(1<<20), *maxHeapMiB, peak <= limit)
		if peak > limit {
			log.Fatalf("peak heap %.1f MiB exceeds -max-heap-mib %d", float64(peak)/(1<<20), *maxHeapMiB)
		}
	}
	log.Printf("\ntotal wall time %v", time.Since(start).Round(time.Millisecond))
}

// dump re-runs one probing round per VP, writing samples to files.
func dump(world *netsim.World, pl *platform.Platform, targets *hitlist.Hitlist, black *prober.Greylist, dir, format string, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	vps := pl.VPs()
	if len(vps) > 8 {
		vps = vps[:8] // keep the demo dump small
	}
	var total int64
	for _, vp := range vps {
		name := filepath.Join(dir, fmt.Sprintf("%s.%s", vp.Name, format))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		var w record.Writer
		switch format {
		case "csv":
			w = record.NewCSVWriter(f, vp.Name)
		default:
			w = record.NewBinaryWriter(f)
		}
		if _, _, err := prober.Run(world, vp, targets.Targets(), black, prober.Config{Seed: seed, Round: 1},
			func(s record.Sample) {
				if err := w.Write(s); err != nil {
					log.Fatalf("write %s: %v", name, err)
				}
			}); err != nil {
			return fmt.Errorf("probe from %s: %w", vp.Name, err)
		}
		if err := w.Flush(); err != nil {
			return err
		}
		st, _ := f.Stat()
		if st != nil {
			total += st.Size()
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	log.Printf("dumped %d VP files (%d bytes) to %s", len(vps), total, dir)
	return nil
}
