// Command igreedy runs the paper's detection / enumeration / geolocation
// technique over a set of latency measurements toward one target.
//
// Input is CSV on stdin or from -in FILE, one measurement per line:
//
//	vantage-name,lat,lon,rtt_ms
//
// With -demo NAME (an AS name from the registry, e.g. "CLOUDFLARENET,US")
// it instead generates the measurements by probing that AS's first anycast
// /24 in the synthetic Internet from every PlanetLab vantage point.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

func main() {
	in := flag.String("in", "", "measurement CSV file (default stdin)")
	demo := flag.String("demo", "", "generate measurements for this AS from the synthetic Internet")
	rounds := flag.Int("rounds", 4, "probing rounds for -demo (minimum RTT is kept)")
	runsDir := flag.String("runs", "", "directory of saved census runs (see cmd/census -save)")
	prefix := flag.String("prefix", "", "target /24 to analyze from -runs, e.g. 1.23.45.0/24")
	flag.Parse()
	log.SetFlags(0)

	var ms []core.Measurement
	var err error
	switch {
	case *runsDir != "":
		ms, err = runsMeasurements(*runsDir, *prefix)
	case *demo != "":
		ms, err = demoMeasurements(*demo, *rounds)
	case *in != "":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			defer f.Close()
			ms, err = parse(f)
		}
	default:
		ms, err = parse(os.Stdin)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(ms) < 2 {
		log.Fatal("igreedy: need at least two measurements")
	}

	res := core.Analyze(cities.Default(), ms, core.Options{})
	if !res.Anycast {
		fmt.Printf("unicast: no speed-of-light violation across %d vantage points\n", len(ms))
		return
	}
	fmt.Printf("ANYCAST: at least %d replicas (from %d measurements, %d iterations)\n",
		res.Count(), len(ms), res.Iterations)
	for _, r := range res.Replicas {
		if r.Located {
			fmt.Printf("  %-28s via %s\n", r.City.String(), r.VP)
		} else {
			fmt.Printf("  unlocated %-28v via %s\n", r.Disk, r.VP)
		}
	}
}

// parse reads the measurement CSV.
func parse(r io.Reader) ([]core.Measurement, error) {
	var ms []core.Measurement
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("line %d: want vantage,lat,lon,rtt_ms", line)
		}
		lat, err1 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		lon, err2 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		rtt, err3 := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("line %d: bad number", line)
		}
		loc, err := geo.NewCoord(lat, lon)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		ms = append(ms, core.Measurement{
			VP:    strings.TrimSpace(parts[0]),
			VPLoc: loc,
			RTT:   time.Duration(rtt * float64(time.Millisecond)),
		})
	}
	return ms, sc.Err()
}

// demoMeasurements probes an AS's first deployment from PlanetLab.
func demoMeasurements(asName string, rounds int) ([]core.Measurement, error) {
	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 2000
	world := netsim.New(cfg)
	as, ok := world.Registry.ByName(asName)
	if !ok {
		return nil, fmt.Errorf("unknown AS %q (try e.g. CLOUDFLARENET,US)", asName)
	}
	d := world.DeploymentsByASN(as.ASN)[0]
	target, _ := world.Representative(d.Prefix)
	log.Printf("probing %v (%s, truth: %d replicas) from PlanetLab", d.Prefix, asName, len(d.Replicas))

	var ms []core.Measurement
	for _, vp := range platform.PlanetLab(cities.Default()).VPs() {
		best := time.Duration(-1)
		for r := 1; r <= rounds; r++ {
			reply := world.ProbeICMP(vp, target, uint64(r))
			if reply.OK() && (best < 0 || reply.RTT < best) {
				best = reply.RTT
			}
		}
		if best >= 0 {
			ms = append(ms, core.Measurement{VP: vp.Name, VPLoc: vp.Loc, RTT: best})
		}
	}
	return ms, nil
}

// runsMeasurements loads saved census runs, combines them by minimum RTT,
// and extracts the measurement set of the requested prefix.
func runsMeasurements(dir, prefixStr string) ([]core.Measurement, error) {
	if prefixStr == "" {
		return nil, fmt.Errorf("igreedy: -runs requires -prefix")
	}
	p, err := netsim.ParsePrefix24(prefixStr)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var runs []*census.Run
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".run") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		run, err := census.LoadRun(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("igreedy: %s: %w", e.Name(), err)
		}
		runs = append(runs, run)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("igreedy: no .run files in %s", dir)
	}
	combined, err := census.Combine(runs...)
	if err != nil {
		return nil, err
	}
	for ti, ip := range combined.Targets {
		if ip.Prefix() == p {
			log.Printf("loaded %d runs, %d combined VPs; analyzing %v", len(runs), len(combined.VPs), p)
			return combined.Measurements(ti), nil
		}
	}
	return nil, fmt.Errorf("igreedy: prefix %v not in the saved target list", p)
}
