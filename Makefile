GO ?= go

.PHONY: all build vet test race verify clean bench bench-smoke bench-json stream-smoke scale-smoke full-scale-smoke analyze-smoke cluster-smoke metrics-smoke route-smoke profile

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race is the gate the fault-injection tests are written for: the census
# retry loop, the store hot-swap and the LRU all exercise real concurrency.
# internal/experiments replays full campaigns and needs more than the
# default 10m per-package budget under the race detector.
race:
	$(GO) test -race -timeout 30m ./...

verify: vet build race

# bench runs the probe-path, prober, census and serving microbenchmarks
# with allocation reporting; compare runs with benchstat if available.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/netsim ./internal/prober ./internal/census ./internal/store ./internal/route .

# bench-smoke is the CI gate: every benchmark must still run (one
# iteration), catching bit-rot in the benchmark harness itself.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./internal/netsim ./internal/prober ./internal/census ./internal/store ./internal/route .

# bench-json regenerates the committed benchmark trajectory point,
# including the route-serving block (answer-path qps, UDP loopback,
# snapshot-swap flatness) and the full-scale census: the paper's 6.6M
# responsive /24s on one box, under a GOMEMLIMIT below the dense
# all-rounds footprint. The full-scale block takes tens of minutes;
# drop -full-scale-unicast24s (or set it to 0) for a quick point, or
# add -paper-unicast24s 1700000 to also re-measure the ~1M-target
# block.
bench-json:
	$(GO) run ./cmd/benchreport -exp none -benchjson BENCH_9.json \
		-stream-unicast24s 0 -paper-unicast24s 0 \
		-full-scale-unicast24s 11000000

# stream-smoke proves the streaming data path's memory bound: a 150k-/24
# campaign must complete under a GOMEMLIMIT set below the ~380 MiB that
# holding all four rounds densely would cost. A regression that
# reintroduces O(rounds) or O(unicast) residency thrashes the GC or dies
# here instead of shipping.
stream-smoke:
	GOMEMLIMIT=360MiB $(GO) run ./cmd/census -unicast24s 150000

# scale-smoke proves the shard-pipelined path's memory bound at the
# largest scale CI can afford: a 500k-/24 two-round campaign (~310k
# pruned targets) where probe spans fold into the flat-slab combined
# matrix as they land, run under a GOMEMLIMIT below the ~620 MiB that
# two dense rounds would cost, with -max-heap-mib failing the run if
# the sampled peak ever reaches that dense footprint.
scale-smoke:
	GOMEMLIMIT=576MiB $(GO) run ./cmd/census -unicast24s 500000 -censuses 2 \
		-pipelined -max-heap-mib 620

# full-scale-smoke is the probe-rate regression gate at the largest scale
# CI can afford: a 1.25M-/24 two-round pipelined campaign (~760k pruned
# targets) under a GOMEMLIMIT below the two dense rounds it never holds,
# where -rate-baseline-targets first measures a 20k-target pilot probing
# run in the same process and the run fails unless the campaign's
# aggregate probe rate stays within 2x of it. The pre-span probe path
# collapsed 3.4x here once the target list outgrew its RTT memo.
full-scale-smoke:
	GOMEMLIMIT=1380MiB $(GO) run ./cmd/census -unicast24s 1250000 -censuses 2 \
		-pipelined -max-heap-mib 1510 -rate-baseline-targets 20000 -rate-within 2

# analyze-smoke proves the incremental analysis engine's bit-identity
# contract on a live campaign: each round's dirty targets are analyzed
# (with cached detection certificates) while the next round probes, and
# -verify-analysis re-runs the batch AnalyzeAll at the end and fails
# unless the outcomes match exactly.
analyze-smoke:
	$(GO) run ./cmd/census -unicast24s 20000 -censuses 3 -verify-analysis

# cluster-smoke proves the distributed control plane end to end: a
# 4-agent in-process census over net.Pipe with forced churn (every
# agent's connection is severed after 25 streamed row frames and
# respawned) and injected VP crashes, where -verify fails the run unless
# the combined matrix, greylist, and analysis outcomes are byte-identical
# to a zero-fault single-process campaign.
cluster-smoke:
	$(GO) run ./cmd/censusd -local 4 -transport pipe -unicast24s 6000 -censuses 3 -vps 24 \
		-retries 50 -retry-backoff 1ms -churn-every 25 -respawn \
		-fault-crash 0.25 -exit-on-crash -verify

# metrics-smoke boots anycastd (with a 2-agent distributed census) and a
# censusd coordinator against tiny worlds, scrapes GET /metrics on both,
# and fails unless every required series family is present: probe,
# census, store, cluster, and per-endpoint HTTP.
metrics-smoke:
	./scripts/metrics_smoke.sh

# route-smoke proves the routing front-end end to end: anycastd boots
# with -dns, a service prefix is discovered via GET /v1/prefixes, 50k
# queries go through the DNS/UDP path via routeload, and GET /metrics
# must carry the anycastmap_route_* series with matching counts.
route-smoke:
	./scripts/route_smoke.sh

# profile captures CPU and heap profiles of a full census run; inspect
# with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/census -unicast24s 8000 -censuses 2 -cpuprofile cpu.pprof -memprofile mem.pprof

clean:
	$(GO) clean ./...
	rm -f cpu.pprof mem.pprof
