GO ?= go

.PHONY: all build vet test race verify clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race is the gate the fault-injection tests are written for: the census
# retry loop, the store hot-swap and the LRU all exercise real concurrency.
# internal/experiments replays full campaigns and needs more than the
# default 10m per-package budget under the race detector.
race:
	$(GO) test -race -timeout 30m ./...

verify: vet build race

clean:
	$(GO) clean ./...
