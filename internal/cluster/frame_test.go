package cluster

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello census")
	b := frameBytes(frameLease, payload)
	typ, got, err := readFrame(bytes.NewReader(b), 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameLease || !bytes.Equal(got, payload) {
		t.Fatalf("round-trip: type %d payload %q", typ, got)
	}
	// Empty payloads (heartbeat, shutdown) are legal.
	typ, got, err = readFrame(bytes.NewReader(frameBytes(frameHeartbeat, nil)), 0)
	if err != nil || typ != frameHeartbeat || len(got) != 0 {
		t.Fatalf("empty payload: %d %q %v", typ, got, err)
	}
}

func TestReadFrameRejectsHostileLengths(t *testing.T) {
	// A declared length of zero carries no type byte.
	zero := make([]byte, 4)
	if _, _, err := readFrame(bytes.NewReader(zero), 0); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// A giant declared length must be rejected before allocation, not
	// trusted into make().
	giant := make([]byte, 4)
	binary.BigEndian.PutUint32(giant, 0xFFFFFFFF)
	if _, _, err := readFrame(bytes.NewReader(giant), 0); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("giant frame: %v", err)
	}
	// The configured cap applies too.
	big := frameBytes(frameRows, make([]byte, 1024))
	if _, _, err := readFrame(bytes.NewReader(big), 128); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap frame: %v", err)
	}
	// Truncated header and truncated body both fail cleanly.
	if _, _, err := readFrame(bytes.NewReader(big[:2]), 0); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, _, err := readFrame(bytes.NewReader(big[:20]), 0); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestReadMagic(t *testing.T) {
	if err := readMagic(strings.NewReader(streamMagic + "rest")); err != nil {
		t.Fatal(err)
	}
	if err := readMagic(strings.NewReader("HTTP/1.1 400\r\n")); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if err := readMagic(strings.NewReader("ACM")); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestRowsPayloadRoundTrip(t *testing.T) {
	frame := []byte{1, 2, 3}
	id, rest, err := splitRowsPayload(rowsPayload(1<<40+7, frame))
	if err != nil || id != 1<<40+7 || !bytes.Equal(rest, frame) {
		t.Fatalf("round-trip: id=%d rest=%v err=%v", id, rest, err)
	}
	if _, _, err := splitRowsPayload(nil); err == nil {
		t.Fatal("empty rows payload accepted")
	}
}
