// Package cluster is the distributed control plane of the census: a
// coordinator that splits the target list into shard leases, hands them
// to registered vantage-point agents with deadlines, and folds the
// partial rows streaming back into the combined matrix; and the agent
// that owns netsim vantage points, executes leased shards through
// prober.Run, heartbeats for liveness, and streams results home.
//
// The paper's census was this system in the flesh — hundreds of
// PlanetLab vantage points probing on behalf of a central repository
// (Sec. 3), on a platform that degraded daily. The subsystem follows the
// same operational shape (ROADMAP items 1–2): work moves as leases so a
// crashed or hung agent's shards are re-executed by someone else rather
// than lost, retry budgets and backoff reuse the single-process
// quarantine machinery, and everything runs over a minimal
// length-prefixed protocol that works identically on a real TCP loopback
// and an in-process net.Pipe, so N-agent censuses are deterministic
// inside one test binary.
//
// Because the netsim substrate draws every reply as a pure function of
// (seed, VP, target, round) and the campaign fold is a per-cell min —
// commutative, associative, idempotent — a census distributed across any
// number of agents, in any arrival order, under agent loss and
// re-leasing, produces combined rows, greylists, and analysis outcomes
// byte-identical to the single-process path. The tests hold it to
// exactly that.
package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
)

// streamMagic opens every connection in both directions, so a peer
// speaking the wrong protocol fails the handshake instead of confusing
// the frame parser.
const streamMagic = "ACMC1\n"

// Frame types. A frame on the wire is a 4-byte big-endian length of what
// follows (type byte + payload), then the type byte, then the payload.
// Control payloads are gob-encoded messages (proto.go); rows payloads
// are a uvarint lease ID followed by a census shard frame (the v2
// columnar codec, census.ShardRows).
const (
	frameHello     = byte(1) // agent -> coordinator: registration
	frameWelcome   = byte(2) // coordinator -> agent: world + census config
	frameLease     = byte(3) // coordinator -> agent: shard lease
	frameRows      = byte(4) // agent -> coordinator: shard result rows
	frameFail      = byte(5) // agent -> coordinator: lease failed
	frameHeartbeat = byte(6) // agent -> coordinator: liveness
	frameShutdown  = byte(7) // coordinator -> agent: drain and exit
)

// frameHeaderLen is the bytes preceding a frame's payload on the wire.
const frameHeaderLen = 5

// DefaultMaxFrame bounds a single frame; a wide shard of a large world
// fits comfortably, a hostile length prefix does not.
const DefaultMaxFrame = 64 << 20

// frameBytes assembles a whole frame — header, type, payload — into one
// buffer, so the transport sees it as a single Write (the agent-churn
// harness counts frame types by inspecting writes).
func frameBytes(typ byte, payload []byte) []byte {
	b := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(b, uint32(1+len(payload)))
	b[4] = typ
	copy(b[frameHeaderLen:], payload)
	return b
}

// readFrame reads one frame, rejecting empty frames and length prefixes
// beyond max before allocating.
func readFrame(r io.Reader, max int) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("cluster: empty frame")
	}
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if n > uint32(max) {
		return 0, nil, fmt.Errorf("cluster: %d-byte frame exceeds the %d-byte cap", n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// readMagic consumes and verifies the peer's protocol magic.
func readMagic(r io.Reader) error {
	var got [len(streamMagic)]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return err
	}
	if string(got[:]) != streamMagic {
		return fmt.Errorf("cluster: peer is not speaking the census protocol (got %q)", got)
	}
	return nil
}
