package cluster

import (
	"time"

	"anycastmap/internal/obs"
)

// Metrics is the coordinator instrument set: the live form of Stats,
// exported through an obs.Registry so the control plane's event
// counters become scrapeable time series. Counters mirror the Stats
// fields one for one (TestCoordinatorMetricsMatchStats pins the
// equality); AgentsLive and ShardFoldSeconds have no Stats counterpart.
// All helpers are nil-safe: a coordinator without metrics pays one
// pointer test per event.
type Metrics struct {
	AgentsJoined  *obs.Counter
	AgentsLost    *obs.Counter
	AgentsLive    *obs.Gauge
	Leases        *obs.Counter
	ReLeases      *obs.Counter
	LeaseExpiries *obs.Counter
	LateFrames    *obs.Counter
	FramesFolded  *obs.Counter
	// ShardFoldSeconds is the latency of folding one ShardRows frame
	// into the campaign's combined matrix.
	ShardFoldSeconds *obs.Histogram
}

// NewMetrics registers the cluster series on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		AgentsJoined:     r.Counter("anycastmap_cluster_agents_joined_total", "Agents that completed the hello handshake."),
		AgentsLost:       r.Counter("anycastmap_cluster_agents_lost_total", "Agents dropped (disconnect, protocol violation, or expiry)."),
		AgentsLive:       r.Gauge("anycastmap_cluster_agents_live", "Agents currently registered and alive."),
		Leases:           r.Counter("anycastmap_cluster_leases_total", "Shard leases granted to agents."),
		ReLeases:         r.Counter("anycastmap_cluster_re_leases_total", "Shards re-queued after a failed or lost lease."),
		LeaseExpiries:    r.Counter("anycastmap_cluster_lease_expiries_total", "Leases past their TTL deadline (the agent is presumed hung)."),
		LateFrames:       r.Counter("anycastmap_cluster_late_frames_total", "Frames for expired or foreign leases, dropped unfolded."),
		FramesFolded:     r.Counter("anycastmap_cluster_frames_folded_total", "ShardRows frames folded into the combined matrix."),
		ShardFoldSeconds: r.Histogram("anycastmap_cluster_shard_fold_seconds", "Latency of folding one ShardRows frame.", obs.FastBuckets),
	}
}

func (m *Metrics) joined() {
	if m != nil {
		m.AgentsJoined.Inc()
		m.AgentsLive.Add(1)
	}
}

func (m *Metrics) lost() {
	if m != nil {
		m.AgentsLost.Inc()
		m.AgentsLive.Add(-1)
	}
}

func (m *Metrics) lease() {
	if m != nil {
		m.Leases.Inc()
	}
}

func (m *Metrics) reLease() {
	if m != nil {
		m.ReLeases.Inc()
	}
}

func (m *Metrics) expired() {
	if m != nil {
		m.LeaseExpiries.Inc()
	}
}

func (m *Metrics) late() {
	if m != nil {
		m.LateFrames.Inc()
	}
}

func (m *Metrics) folded(d time.Duration) {
	if m != nil {
		m.FramesFolded.Inc()
		m.ShardFoldSeconds.Observe(d.Seconds())
	}
}
