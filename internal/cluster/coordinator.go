package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// Config parametrizes a Coordinator.
type Config struct {
	// Campaign receives the folded rounds; required. The coordinator
	// drives it through BeginRound / FoldShard / FinishRound, so the
	// campaign must not be folding runs concurrently.
	Campaign *census.Campaign
	// Targets is the census target list, identical for every round.
	Targets []netsim.IP
	// Blacklist is the pre-census blacklist shipped to agents in the
	// welcome. It is snapshotted when the coordinator is built; later
	// additions do not reach agents.
	Blacklist *prober.Greylist
	// Census carries the probing configuration: rate, seed, and the
	// retry budget and backoff schedule that govern re-leasing, exactly
	// as they govern the single-process retry loop.
	Census census.Config
	// World is the deterministic world agents rebuild; in-process
	// agents may share a prebuilt *netsim.World instead (AgentConfig).
	World netsim.Config
	// Faults, when non-nil, is the fault weather agents install.
	Faults *netsim.FaultConfig

	// ShardTargets is the lease width in targets; non-positive leases
	// each vantage point's whole row at once.
	ShardTargets int
	// LeaseTTL is how long an agent may hold a lease before the
	// coordinator presumes it dead; expiry drops the whole agent (its
	// other leases fail with it). Zero means 30s.
	LeaseTTL time.Duration
	// HeartbeatEvery is the liveness interval announced to agents.
	// Zero means 1s.
	HeartbeatEvery time.Duration
	// AgentGrace is how long a round may sit with zero registered
	// agents before it aborts. Zero means 30s.
	AgentGrace time.Duration
	// Tick is the internal maintenance interval (lease expiry, backoff
	// release). Zero means 25ms.
	Tick time.Duration
	// MaxFrame bounds inbound frames; zero means DefaultMaxFrame.
	MaxFrame int
	// Log, when non-nil, receives operational events.
	Log func(format string, args ...any)
	// Metrics, when non-nil, receives the same events as Stats plus the
	// shard-fold latency histogram, for /metrics exposition.
	Metrics *Metrics
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 30 * time.Second
}

func (c Config) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery > 0 {
		return c.HeartbeatEvery
	}
	return time.Second
}

func (c Config) agentGrace() time.Duration {
	if c.AgentGrace > 0 {
		return c.AgentGrace
	}
	return 30 * time.Second
}

func (c Config) tick() time.Duration {
	if c.Tick > 0 {
		return c.Tick
	}
	return 25 * time.Millisecond
}

// Stats counts coordinator events; read it with Coordinator.Stats.
type Stats struct {
	AgentsJoined int
	AgentsLost   int
	Leases       int
	ReLeases     int
	Expired      int
	LateFrames   int
	FramesFolded int
}

// agentConn is a registered (or registering) agent as the coordinator
// loop sees it. All fields are owned by the loop goroutine except conn
// and out, which the reader/writer goroutines use.
type agentConn struct {
	id       int64
	conn     net.Conn
	out      chan []byte
	name     string
	capacity int
	owned    map[int]bool
	ready    bool
	dead     bool
	lastSeen time.Time
	inflight map[uint64]*lease
}

// vpState tracks one vantage point through a round. Attempts are per
// vantage point, not per shard: any failed lease bumps the VP's attempt
// and every subsequent lease of its shards carries the new number, the
// distributed equivalent of the single-process retry loop re-running the
// whole VP. One lease is outstanding per VP at a time, so all its shards
// of an attempt execute at the same attempt number.
type vpState struct {
	vp          platform.VP
	slot        int
	attempt     int
	maxAttempt  int
	remaining   int
	outstanding *lease
	notBefore   time.Time
	leasedOnce  bool
	failed      bool
	dropped     bool
	lastErr     string
	samples     int
}

// unit is one (vantage point, target span) shard of work.
type unit struct {
	vs     *vpState
	lo, hi int
	done   bool
}

type lease struct {
	id       uint64
	u        *unit
	agent    *agentConn
	attempt  int
	deadline time.Time
}

type roundResult struct {
	summary census.RoundSummary
	err     error
}

// roundState is the in-flight round.
type roundState struct {
	round          uint64
	states         []*vpState
	queue          []*unit
	leases         map[uint64]*lease
	echo           []uint64
	echoCount      int
	probes         int
	grey           *prober.Greylist
	start          time.Time
	agentlessSince time.Time
	aborted        error
	result         chan roundResult
}

// Coordinator runs the control plane: a single loop goroutine owns all
// round and membership state and consumes closures from cmds, so no
// handler ever races another; per-connection reader and writer
// goroutines only decode/encode frames and post closures.
type Coordinator struct {
	cfg     Config
	welcome []byte // pre-encoded welcome frame

	cmds    chan func()
	quit    chan struct{}
	stopped chan struct{}
	wg      sync.WaitGroup

	// Loop-owned state.
	agents  map[int64]*agentConn
	nextID  int64
	leaseID uint64
	round   *roundState

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	statsMu sync.Mutex
	stats   Stats
}

// NewCoordinator builds the coordinator and starts its loop. Close it
// when done.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Campaign == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a campaign")
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	var snap map[netsim.IP]netsim.ReplyKind
	if cfg.Blacklist != nil {
		snap = cfg.Blacklist.Snapshot()
	}
	payload, err := encodeMsg(&welcomeMsg{
		World:     cfg.World,
		Faults:    cfg.Faults,
		Census:    cfg.Census,
		Targets:   cfg.Targets,
		Blacklist: snap,
		Heartbeat: cfg.heartbeatEvery(),
	})
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		welcome: frameBytes(frameWelcome, payload),
		cmds:    make(chan func(), 256),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
		agents:  make(map[int64]*agentConn),
		conns:   make(map[net.Conn]struct{}),
	}
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log(format, args...)
	}
}

// Stats returns a snapshot of the event counters.
func (c *Coordinator) Stats() Stats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

func (c *Coordinator) bump(f func(*Stats)) {
	c.statsMu.Lock()
	f(&c.stats)
	c.statsMu.Unlock()
}

// post hands a closure to the loop; it is dropped after shutdown.
func (c *Coordinator) post(f func()) {
	select {
	case c.cmds <- f:
	case <-c.quit:
	}
}

func (c *Coordinator) loop() {
	defer c.wg.Done()
	defer close(c.stopped)
	ticker := time.NewTicker(c.cfg.tick())
	defer ticker.Stop()
	for {
		select {
		case f := <-c.cmds:
			f()
		case <-ticker.C:
			c.onTick()
		case <-c.quit:
			c.shutdown()
			return
		}
	}
}

// Attach adopts a transport connection to a (future) agent: the magic
// exchange, framing, and registration all happen on the coordinator's
// goroutines, so callers just hand over the conn. It is how both
// Serve-accepted TCP conns and net.Pipe test conns enter the cluster.
func (c *Coordinator) Attach(conn net.Conn) error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		conn.Close()
		return fmt.Errorf("cluster: coordinator is closed")
	}
	c.conns[conn] = struct{}{}
	c.connMu.Unlock()

	a := &agentConn{
		conn:     conn,
		out:      make(chan []byte, 1024),
		lastSeen: time.Now(),
		inflight: make(map[uint64]*lease),
	}
	c.post(func() {
		c.nextID++
		a.id = c.nextID
		c.agents[a.id] = a
	})

	c.wg.Add(2)
	go c.writeLoop(a)
	go c.readLoop(a)
	return nil
}

// Serve accepts agent connections until the listener closes.
func (c *Coordinator) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-c.quit:
				return nil
			default:
				return err
			}
		}
		if err := c.Attach(conn); err != nil {
			return nil
		}
	}
}

// writeLoop drains an agent's outbound queue. The magic goes out first,
// concurrently with readLoop waiting for the peer's magic — on an
// unbuffered net.Pipe neither side may block the other's handshake.
func (c *Coordinator) writeLoop(a *agentConn) {
	defer c.wg.Done()
	if _, err := a.conn.Write([]byte(streamMagic)); err != nil {
		return // readLoop notices the dead conn and reports it
	}
	for {
		select {
		case b, ok := <-a.out:
			if !ok {
				return
			}
			if _, err := a.conn.Write(b); err != nil {
				// Discard the rest until the loop closes the channel
				// (the reader reports the dead connection) or the
				// coordinator shuts down.
				for {
					select {
					case _, ok := <-a.out:
						if !ok {
							return
						}
					case <-c.quit:
						return
					}
				}
			}
		case <-c.quit:
			// Shutdown: flush whatever the loop already queued (the
			// shutdown frame, best-effort) and exit — the channel may
			// never close if this conn was still registering.
			for {
				select {
				case b, ok := <-a.out:
					if !ok {
						return
					}
					if _, err := a.conn.Write(b); err != nil {
						return
					}
				default:
					return
				}
			}
		}
	}
}

func (c *Coordinator) readLoop(a *agentConn) {
	defer c.wg.Done()
	err := c.readFrames(a)
	c.post(func() { c.dropAgent(a, fmt.Sprintf("connection lost: %v", err)) })
}

func (c *Coordinator) readFrames(a *agentConn) error {
	if err := readMagic(a.conn); err != nil {
		return err
	}
	for {
		typ, payload, err := readFrame(a.conn, c.cfg.MaxFrame)
		if err != nil {
			return err
		}
		switch typ {
		case frameHello:
			var hello helloMsg
			if err := decodeMsg(payload, &hello); err != nil {
				return err
			}
			c.post(func() { c.onHello(a, hello) })
		case frameRows:
			id, frame, err := splitRowsPayload(payload)
			if err != nil {
				return err
			}
			sr, err := census.DecodeShardRows(frame)
			if err != nil {
				return fmt.Errorf("cluster: agent %q sent a bad shard frame: %w", a.name, err)
			}
			c.post(func() { c.onRows(a, id, sr) })
		case frameFail:
			var fail failMsg
			if err := decodeMsg(payload, &fail); err != nil {
				return err
			}
			c.post(func() { c.onFail(a, fail) })
		case frameHeartbeat:
			c.post(func() { a.lastSeen = time.Now() })
		default:
			return fmt.Errorf("cluster: unexpected frame type %d from agent", typ)
		}
	}
}

// send enqueues a frame to an agent without ever blocking the loop: an
// agent that stops draining its queue is dropped, and its leases
// re-issued, exactly as if it had hung.
func (c *Coordinator) send(a *agentConn, b []byte) {
	if a.dead {
		return
	}
	select {
	case a.out <- b:
	default:
		c.dropAgent(a, "outbound queue overflow")
	}
}

func (c *Coordinator) onHello(a *agentConn, hello helloMsg) {
	if a.dead || a.ready {
		return
	}
	a.name = hello.Name
	a.capacity = hello.Capacity
	if a.capacity <= 0 {
		a.capacity = 1
	}
	a.owned = make(map[int]bool, len(hello.OwnedVPs))
	for _, id := range hello.OwnedVPs {
		a.owned[id] = true
	}
	a.ready = true
	a.lastSeen = time.Now()
	c.bump(func(s *Stats) { s.AgentsJoined++ })
	c.cfg.Metrics.joined()
	c.logf("cluster: agent %q joined (capacity %d)", a.name, a.capacity)
	c.send(a, c.welcome)
	if c.round != nil {
		c.round.agentlessSince = time.Time{}
		c.dispatch()
	}
}

func (c *Coordinator) onRows(a *agentConn, leaseID uint64, sr *census.ShardRows) {
	if a.dead {
		return
	}
	a.lastSeen = time.Now()
	r := c.round
	if r == nil {
		c.bump(func(s *Stats) { s.LateFrames++ })
		c.cfg.Metrics.late()
		return
	}
	l, ok := r.leases[leaseID]
	if !ok || l.agent != a {
		// The lease expired (its agent was presumed dead and the shard
		// re-leased) or belongs to another connection: the fold already
		// happened or will happen elsewhere, and folding twice would be
		// harmless but the accounting would double. Drop it.
		c.bump(func(s *Stats) { s.LateFrames++ })
		c.cfg.Metrics.late()
		return
	}
	u := l.u
	if sr.Round != r.round || sr.Lo != u.lo || sr.Hi != u.hi ||
		len(sr.Slots) != 1 || sr.Slots[0] != u.vs.slot || len(sr.RTTus) != 1 {
		c.dropAgent(a, fmt.Sprintf("shard frame disagrees with lease %d", leaseID))
		return
	}
	foldStart := time.Now()
	if err := c.cfg.Campaign.FoldShard(sr); err != nil {
		// FoldShard validates before mutating, so the campaign is
		// intact; the agent is speaking nonsense and goes.
		c.dropAgent(a, fmt.Sprintf("fold of lease %d: %v", leaseID, err))
		return
	}
	c.bump(func(s *Stats) { s.FramesFolded++ })
	c.cfg.Metrics.folded(time.Since(foldStart))

	if len(sr.Stats) == 1 {
		r.probes += sr.Stats[0].Sent
	}
	for t, v := range sr.RTTus[0] {
		if v == census.NoSample {
			continue
		}
		u.vs.samples++
		gt := u.lo + t
		if r.echo[gt>>6]&(1<<uint(gt&63)) == 0 {
			r.echo[gt>>6] |= 1 << uint(gt&63)
			r.echoCount++
		}
	}
	if sr.Greylist != nil {
		r.grey.Merge(sr.Greylist)
	}

	delete(r.leases, leaseID)
	delete(a.inflight, leaseID)
	u.done = true
	u.vs.outstanding = nil
	u.vs.remaining--
	c.dispatch()
	c.checkRoundDone()
}

func (c *Coordinator) onFail(a *agentConn, fail failMsg) {
	if a.dead {
		return
	}
	a.lastSeen = time.Now()
	r := c.round
	if r == nil {
		c.bump(func(s *Stats) { s.LateFrames++ })
		c.cfg.Metrics.late()
		return
	}
	l, ok := r.leases[fail.ID]
	if !ok || l.agent != a {
		c.bump(func(s *Stats) { s.LateFrames++ })
		c.cfg.Metrics.late()
		return
	}
	delete(r.leases, fail.ID)
	delete(a.inflight, fail.ID)
	c.failLease(l, fail.Err)
	c.dispatch()
	c.checkRoundDone()
}

// failLease returns a failed lease's shard to the queue under the
// single-process retry policy: the vantage point's attempt counter bumps
// past the failed attempt, the next lease waits out the same capped
// exponential backoff ExecuteContext would sleep, and a VP whose budget
// is exhausted is quarantined — its remaining shards are abandoned and
// its partial row keeps whatever samples earlier shards folded.
func (c *Coordinator) failLease(l *lease, errStr string) {
	vs := l.u.vs
	vs.outstanding = nil
	vs.failed = true
	vs.lastErr = errStr
	if l.attempt >= vs.attempt {
		vs.attempt = l.attempt + 1
	}
	if vs.attempt >= c.cfg.Census.Attempts() {
		if !vs.dropped {
			vs.dropped = true
			c.logf("cluster: VP %s quarantined after %d attempts: %s", vs.vp.Name, vs.attempt, errStr)
		}
		return
	}
	vs.notBefore = time.Now().Add(c.cfg.Census.Backoff(vs.attempt))
	c.round.queue = append(c.round.queue, l.u)
	c.bump(func(s *Stats) { s.ReLeases++ })
	c.cfg.Metrics.reLease()
}

// dropAgent removes an agent from the cluster and fails its in-flight
// leases so their shards re-lease elsewhere.
func (c *Coordinator) dropAgent(a *agentConn, reason string) {
	if a.dead {
		return
	}
	a.dead = true
	delete(c.agents, a.id)
	close(a.out)
	a.conn.Close()
	c.connMu.Lock()
	delete(c.conns, a.conn)
	c.connMu.Unlock()
	if a.ready {
		c.bump(func(s *Stats) { s.AgentsLost++ })
		c.cfg.Metrics.lost()
		c.logf("cluster: agent %q lost: %s", a.name, reason)
	}
	lost := make([]*lease, 0, len(a.inflight))
	for _, l := range a.inflight {
		lost = append(lost, l)
	}
	a.inflight = nil
	if r := c.round; r != nil {
		for _, l := range lost {
			delete(r.leases, l.id)
			c.failLease(l, fmt.Sprintf("agent %q lost: %s", a.name, reason))
		}
		c.dispatch()
		c.checkRoundDone()
	}
}

func (c *Coordinator) onTick() {
	now := time.Now()
	r := c.round
	if r == nil {
		return
	}
	// Expired leases mean a hung (not disconnected) agent: presume the
	// whole agent dead rather than re-lease around it, or it keeps
	// winning leases and burning the retry budget.
	var hung []*agentConn
	for _, l := range r.leases {
		if now.After(l.deadline) && !l.agent.dead {
			hung = append(hung, l.agent)
		}
	}
	for _, a := range hung {
		if !a.dead {
			c.bump(func(s *Stats) { s.Expired++ })
			c.cfg.Metrics.expired()
			c.dropAgent(a, "lease past deadline")
		}
	}
	live := 0
	for _, a := range c.agents {
		if a.ready && !a.dead {
			live++
		}
	}
	if live == 0 {
		if r.agentlessSince.IsZero() {
			r.agentlessSince = now
		} else if now.Sub(r.agentlessSince) > c.cfg.agentGrace() {
			r.aborted = fmt.Errorf("cluster: round %d: no agents for %v", r.round, c.cfg.agentGrace())
		}
	} else {
		r.agentlessSince = time.Time{}
	}
	c.dispatch()
	c.checkRoundDone()
}

// dispatch hands queued shards to agents: one outstanding lease per
// vantage point, owner-affinity first, least-loaded otherwise. It
// snapshots the queue before iterating — issuing a lease can drop an
// agent (queue overflow), which re-appends failed units to the queue.
func (c *Coordinator) dispatch() {
	r := c.round
	if r == nil || len(r.queue) == 0 {
		return
	}
	now := time.Now()
	pending := r.queue
	r.queue = nil
	for _, u := range pending {
		vs := u.vs
		if u.done || vs.dropped {
			continue
		}
		if vs.outstanding != nil || now.Before(vs.notBefore) {
			r.queue = append(r.queue, u)
			continue
		}
		a := c.pickAgent(vs.vp.ID)
		if a == nil {
			r.queue = append(r.queue, u)
			continue
		}
		c.issueLease(r, u, a)
	}
}

// pickAgent chooses the least-loaded ready agent with spare capacity,
// preferring one that owns the vantage point; ties break on agent ID so
// placement is deterministic for a given membership state.
func (c *Coordinator) pickAgent(vpID int) *agentConn {
	var best *agentConn
	better := func(a, b *agentConn) bool {
		if b == nil {
			return true
		}
		ao, bo := a.owned[vpID], b.owned[vpID]
		if ao != bo {
			return ao
		}
		if len(a.inflight) != len(b.inflight) {
			return len(a.inflight) < len(b.inflight)
		}
		return a.id < b.id
	}
	for _, a := range c.agents {
		if !a.ready || a.dead || len(a.inflight) >= a.capacity {
			continue
		}
		if better(a, best) {
			best = a
		}
	}
	return best
}

func (c *Coordinator) issueLease(r *roundState, u *unit, a *agentConn) {
	vs := u.vs
	c.leaseID++
	l := &lease{
		id:       c.leaseID,
		u:        u,
		agent:    a,
		attempt:  vs.attempt,
		deadline: time.Now().Add(c.cfg.leaseTTL()),
	}
	payload, err := encodeMsg(&leaseMsg{
		ID:      l.id,
		Round:   r.round,
		Attempt: l.attempt,
		Slot:    vs.slot,
		VP:      vs.vp,
		Lo:      u.lo,
		Hi:      u.hi,
	})
	if err != nil {
		// A lease that cannot encode cannot execute anywhere; abort.
		r.aborted = err
		return
	}
	r.leases[l.id] = l
	a.inflight[l.id] = l
	vs.outstanding = l
	vs.leasedOnce = true
	if l.attempt > vs.maxAttempt {
		vs.maxAttempt = l.attempt
	}
	c.bump(func(s *Stats) { s.Leases++ })
	c.cfg.Metrics.lease()
	c.send(a, frameBytes(frameLease, payload))
}

func (c *Coordinator) checkRoundDone() {
	r := c.round
	if r == nil {
		return
	}
	if r.aborted == nil {
		for _, vs := range r.states {
			if vs.remaining > 0 && !vs.dropped {
				return
			}
		}
	}
	c.finishRound(r)
}

// finishRound folds the round's health into the campaign — in the same
// shape the in-process executor builds — and wakes ExecuteRound.
func (c *Coordinator) finishRound(r *roundState) {
	c.round = nil
	perVP := make([]census.VPHealth, len(r.states))
	rowSamples := make([]int, len(r.states))
	var errs []error
	for i, vs := range r.states {
		vh := census.VPHealth{VP: vs.vp.Name}
		if vs.leasedOnce {
			vh.Attempts = vs.maxAttempt + 1
		}
		switch {
		case vs.dropped:
			vh.Quarantined = true
			vh.Err = vs.lastErr
			errs = append(errs, fmt.Errorf("census: VP %s quarantined after %d attempts: %s",
				vs.vp.Name, vh.Attempts, vs.lastErr))
		case vs.remaining > 0:
			// Round aborted under it.
			if !vs.leasedOnce {
				vh.Skipped = true
			} else {
				vh.Err = "round aborted"
			}
		case vs.failed:
			vh.Recovered = true
		}
		perVP[i] = vh
		rowSamples[i] = vs.samples
	}
	h := census.BuildRunHealth(r.round, perVP, rowSamples)
	if err := c.cfg.Campaign.FinishRound(h); err != nil {
		errs = append(errs, err)
	}
	if r.aborted != nil {
		errs = append(errs, r.aborted)
	}
	r.result <- roundResult{
		summary: census.RoundSummary{
			Round:       r.round,
			VPs:         len(r.states),
			Probes:      r.probes,
			EchoTargets: r.echoCount,
			GreylistLen: r.grey.Len(),
			Health:      h,
			Duration:    time.Since(r.start),
		},
		err: errors.Join(errs...),
	}
}

// ExecuteRound runs one census round across the cluster: it opens the
// round on the campaign, shards every vantage point's row into leases,
// and returns when all shards folded (or the round aborted). The
// summary mirrors the single-process Campaign.ExecuteRound.
func (c *Coordinator) ExecuteRound(ctx context.Context, round uint64, vps []platform.VP) (census.RoundSummary, error) {
	result := make(chan roundResult, 1)
	c.post(func() { c.startRound(round, vps, result) })
	select {
	case res := <-result:
		return res.summary, res.err
	case <-ctx.Done():
		c.post(func() {
			if c.round != nil && c.round.result == result {
				c.round.aborted = ctx.Err()
				c.finishRound(c.round)
			}
		})
		res := <-result
		return res.summary, res.err
	case <-c.stopped:
		return census.RoundSummary{}, fmt.Errorf("cluster: coordinator closed")
	}
}

func (c *Coordinator) startRound(round uint64, vps []platform.VP, result chan roundResult) {
	fail := func(err error) {
		result <- roundResult{err: err}
	}
	if c.round != nil {
		fail(fmt.Errorf("cluster: round %d already executing", c.round.round))
		return
	}
	slots, err := c.cfg.Campaign.BeginRound(round, c.cfg.Targets, vps)
	if err != nil {
		fail(err)
		return
	}
	spans := census.ShardSpans(len(c.cfg.Targets), c.cfg.ShardTargets)
	r := &roundState{
		round:  round,
		states: make([]*vpState, len(vps)),
		leases: make(map[uint64]*lease),
		echo:   make([]uint64, (len(c.cfg.Targets)+63)/64),
		grey:   prober.NewGreylist(),
		start:  time.Now(),
		result: result,
	}
	for vi, vp := range vps {
		vs := &vpState{vp: vp, slot: slots[vi], remaining: len(spans)}
		r.states[vi] = vs
		for _, sp := range spans {
			r.queue = append(r.queue, &unit{vs: vs, lo: sp.Lo, hi: sp.Hi})
		}
	}
	c.round = r
	c.dispatch()
	c.checkRoundDone() // zero targets or zero VPs finish immediately
}

// shutdown runs on the loop goroutine when Close is called: the active
// round aborts, agents get a best-effort shutdown frame, and every
// outbound queue closes so the writers drain and exit.
func (c *Coordinator) shutdown() {
	if r := c.round; r != nil {
		r.aborted = fmt.Errorf("cluster: coordinator closed")
		c.finishRound(r)
	}
	for _, a := range c.agents {
		if a.dead {
			continue
		}
		a.dead = true
		select {
		case a.out <- frameBytes(frameShutdown, nil):
		default:
		}
		close(a.out)
	}
	c.agents = map[int64]*agentConn{}
}

// Close stops the coordinator: the loop drains, agents are told to shut
// down, and every connection closes. Safe to call more than once.
func (c *Coordinator) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		c.wg.Wait()
		return nil
	}
	c.closed = true
	c.connMu.Unlock()

	close(c.quit)
	<-c.stopped

	c.connMu.Lock()
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.conns = map[net.Conn]struct{}{}
	c.connMu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	return nil
}
