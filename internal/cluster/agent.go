package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/netsim"
	"anycastmap/internal/prober"
	"anycastmap/internal/record"
)

// AgentConfig parametrizes RunAgent.
type AgentConfig struct {
	// Name identifies the agent to the coordinator.
	Name string
	// Capacity is how many leases execute concurrently; zero means 1.
	Capacity int
	// OwnedVPs advertises vantage-point affinity to the coordinator.
	OwnedVPs []int
	// World, when non-nil, is probed directly (in-process agents share
	// the coordinator's world); nil rebuilds the deterministic world
	// from the welcome message, which is what a real separate process
	// does. Both paths produce identical replies.
	World *netsim.World
	// ExitOnCrash makes an injected VP crash kill the whole agent
	// (connection dropped, RunAgent returns the crash) instead of
	// reporting a retryable lease failure — the PlanetLab node that
	// reboots rather than the prober that hiccups. The coordinator
	// re-leases the lost shards either way.
	ExitOnCrash bool
	// MaxFrame bounds inbound frames; zero means DefaultMaxFrame.
	MaxFrame int
}

func (c AgentConfig) capacity() int {
	if c.Capacity > 0 {
		return c.Capacity
	}
	return 1
}

// agentSession is the mutable state of one RunAgent call.
type agentSession struct {
	cfg  AgentConfig
	conn net.Conn

	writeMu sync.Mutex

	world     *netsim.World
	targets   []netsim.IP
	blacklist *prober.Greylist
	ccfg      census.Config

	// fatal latches the error that should kill the agent (ExitOnCrash);
	// the read loop surfaces it instead of the conn-closed error that
	// follows.
	fatalMu sync.Mutex
	fatal   error
}

func (s *agentSession) send(typ byte, payload []byte) error {
	b := frameBytes(typ, payload)
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	_, err := s.conn.Write(b)
	return err
}

func (s *agentSession) setFatal(err error) {
	s.fatalMu.Lock()
	if s.fatal == nil {
		s.fatal = err
	}
	s.fatalMu.Unlock()
}

func (s *agentSession) getFatal() error {
	s.fatalMu.Lock()
	defer s.fatalMu.Unlock()
	return s.fatal
}

// RunAgent speaks the agent side of the census protocol on conn until
// the coordinator sends a shutdown frame (returns nil), the context is
// cancelled, the connection breaks, or — under ExitOnCrash — a vantage
// point crashes mid-shard. It registers, receives the world and census
// configuration, then executes shard leases and streams rows back,
// heartbeating all the while.
func RunAgent(ctx context.Context, conn net.Conn, cfg AgentConfig) error {
	defer conn.Close()
	s := &agentSession{cfg: cfg, conn: conn}

	// Unblock the read loop when the caller gives up.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-stopWatch:
		}
	}()

	// Handshake: magic both ways, then hello, then welcome. The peer's
	// magic is read after ours is written — net.Pipe has no buffer, and
	// the coordinator writes its magic from a dedicated goroutine.
	if _, err := conn.Write([]byte(streamMagic)); err != nil {
		return fmt.Errorf("cluster: agent handshake: %w", err)
	}
	hello, err := encodeMsg(&helloMsg{Name: cfg.Name, Capacity: cfg.capacity(), OwnedVPs: cfg.OwnedVPs})
	if err != nil {
		return err
	}
	if err := s.send(frameHello, hello); err != nil {
		return fmt.Errorf("cluster: agent hello: %w", err)
	}
	if err := readMagic(conn); err != nil {
		return fmt.Errorf("cluster: agent handshake: %w", err)
	}
	typ, payload, err := readFrame(conn, cfg.MaxFrame)
	if err != nil {
		return fmt.Errorf("cluster: agent awaiting welcome: %w", err)
	}
	if typ == frameShutdown {
		return nil
	}
	if typ != frameWelcome {
		return fmt.Errorf("cluster: expected welcome, got frame type %d", typ)
	}
	var welcome welcomeMsg
	if err := decodeMsg(payload, &welcome); err != nil {
		return err
	}
	s.targets = welcome.Targets
	s.blacklist = prober.FromSnapshot(welcome.Blacklist)
	s.ccfg = welcome.Census
	if cfg.World != nil {
		s.world = cfg.World
	} else {
		w := netsim.New(welcome.World)
		if welcome.Faults != nil {
			plan, err := netsim.NewFaultPlan(*welcome.Faults)
			if err != nil {
				return err
			}
			w = w.WithFaults(plan)
		}
		s.world = w
	}

	// Heartbeats, until the session ends.
	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		every := welcome.Heartbeat
		if every <= 0 {
			every = time.Second
		}
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := s.send(frameHeartbeat, nil); err != nil {
					return
				}
			case <-hbDone:
				return
			}
		}
	}()

	// Lease executors: a small worker pool so Capacity leases probe
	// concurrently while the main goroutine keeps reading frames.
	leases := make(chan leaseMsg, 64)
	var wg sync.WaitGroup
	defer wg.Wait()     // after close(leases): drain in-flight executors
	defer close(leases) // runs first (LIFO)
	for i := 0; i < cfg.capacity(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for l := range leases {
				s.executeLease(l)
			}
		}()
	}

	for {
		typ, payload, err := readFrame(conn, cfg.MaxFrame)
		if err != nil {
			if fatal := s.getFatal(); fatal != nil {
				return fatal
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("cluster: agent %q: %w", cfg.Name, err)
		}
		switch typ {
		case frameLease:
			var l leaseMsg
			if err := decodeMsg(payload, &l); err != nil {
				return err
			}
			select {
			case leases <- l:
			default:
				// The coordinator never exceeds our advertised
				// capacity; an overflowing queue means it is confused,
				// and failing the lease tells it so.
				fail, _ := encodeMsg(&failMsg{ID: l.ID, Err: "agent lease queue overflow"})
				if err := s.send(frameFail, fail); err != nil {
					return err
				}
			}
		case frameShutdown:
			return nil
		default:
			return fmt.Errorf("cluster: unexpected frame type %d from coordinator", typ)
		}
	}
}

// executeLease probes the leased span and streams the result (or the
// failure) back. The row is built exactly as the single-process
// executor builds its rows — same sink filter, same RTT clamp — so a
// shard of a round's row is byte-identical to the corresponding span of
// the row ExecuteContext would have produced.
func (s *agentSession) executeLease(l leaseMsg) {
	if l.Lo < 0 || l.Hi < l.Lo || l.Hi > len(s.targets) {
		fail, _ := encodeMsg(&failMsg{ID: l.ID, Err: fmt.Sprintf("lease span [%d,%d) outside %d targets", l.Lo, l.Hi, len(s.targets))})
		s.send(frameFail, fail)
		return
	}
	span := s.targets[l.Lo:l.Hi]
	row := make([]int32, len(span))
	for i := range row {
		row[i] = census.NoSample
	}
	sink := func(ti int, smp record.Sample) {
		if smp.Kind != netsim.ReplyEcho {
			return
		}
		us := smp.RTT.Microseconds()
		if us > 1<<30 {
			us = 1 << 30
		}
		row[ti] = int32(us)
	}
	stats, grey, err := prober.RunIndexed(s.world, l.VP, span, s.blacklist,
		prober.Config{Rate: s.ccfg.Rate, Round: l.Round, Seed: s.ccfg.Seed, Attempt: l.Attempt},
		sink)
	if err != nil {
		var crash *netsim.VPCrashError
		isCrash := errors.As(err, &crash)
		if isCrash && s.cfg.ExitOnCrash {
			// The node "reboots": the whole agent dies with the VP.
			s.setFatal(fmt.Errorf("cluster: agent %q: %w", s.cfg.Name, err))
			s.conn.Close()
			return
		}
		fail, _ := encodeMsg(&failMsg{ID: l.ID, Err: err.Error(), Crash: isCrash})
		s.send(frameFail, fail)
		return
	}
	sr := &census.ShardRows{
		Round:    l.Round,
		Lo:       l.Lo,
		Hi:       l.Hi,
		Slots:    []int{l.Slot},
		RTTus:    [][]int32{row},
		Stats:    []census.ShardStats{census.ShardStatsOf(stats)},
		Greylist: grey,
	}
	frame, err := sr.Encode()
	if err != nil {
		fail, _ := encodeMsg(&failMsg{ID: l.ID, Err: err.Error()})
		s.send(frameFail, fail)
		return
	}
	s.send(frameRows, rowsPayload(l.ID, frame))
}
