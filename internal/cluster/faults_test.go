package cluster

import (
	"context"
	"testing"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/netsim"
)

// The agent-loss acceptance test of ISSUE 6: a deterministic crash plan
// kills well over 20% of the fleet mid-census (each injected VP crash
// takes its whole agent down, ExitOnCrash), the harness respawns them,
// the coordinator re-leases the lost shards — and the final combined
// matrix, greylist, and analysis outcomes are byte-identical to a
// zero-fault single-process run.
//
// The identity is not luck: netsim reply draws are pure functions of
// (seed, VP, target, round) — crash faults abort runs early but never
// change a draw — and a non-sticky crashed VP recovers at attempt 1, so
// every re-leased shard reproduces exactly the samples the zero-fault
// run would have had. (Flap/burst faults do NOT have this property:
// their loss windows depend on the run length, which sharding changes.)
func TestAgentLossReLease(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)

	// Reference: zero faults, single process.
	ref := singleProcessReference(t, w, h, vps)

	fcfg := netsim.FaultConfig{Seed: 77, CrashFraction: 0.3}
	plan, err := netsim.NewFaultPlan(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count the crash events the plan schedules: one agent death each.
	planned := 0
	for r, set := range vps {
		for _, vp := range set {
			if crashes, sticky := plan.Crashes(vp.ID, uint64(r+1)); crashes {
				if sticky {
					t.Fatal("plan scheduled a sticky crash; stickiness must be 0")
				}
				planned++
			}
		}
	}
	const agents = 5
	if planned < (agents+4)/5 { // ceil(20%)
		t.Fatalf("crash plan only kills %d agents; raise CrashFraction", planned)
	}

	faulty := w.WithFaults(plan)
	cp, stats, deaths := distributedRun(t,
		Config{
			Targets:      h.Targets(),
			Census:       testCensusCfg(),
			World:        cfg,
			Faults:       &fcfg,
			ShardTargets: 500,
			Tick:         5 * time.Millisecond,
		},
		HarnessConfig{
			Agents:  agents,
			Agent:   AgentConfig{World: faulty, Capacity: 1, ExitOnCrash: true},
			Respawn: true,
		},
		vps)

	if deaths != planned {
		t.Fatalf("%d agent deaths, crash plan scheduled %d", deaths, planned)
	}
	if stats.AgentsLost < planned {
		t.Fatalf("coordinator lost %d agents for %d crashes", stats.AgentsLost, planned)
	}
	if stats.ReLeases == 0 {
		t.Fatal("no shards were re-leased after agent loss")
	}
	ch := cp.Health()
	if ch.Retries == 0 || ch.Recovered != planned {
		t.Fatalf("health: retries=%d recovered=%d, want recovered=%d", ch.Retries, ch.Recovered, planned)
	}
	if len(ch.Quarantined) != 0 {
		t.Fatalf("recoverable crashes quarantined VPs: %v", ch.Quarantined)
	}

	assertIdentical(t, ref, cp)
}

// Same crash weather, but agents report the crash as a retryable lease
// failure instead of dying (ExitOnCrash off): no agent is lost, the
// retry machinery alone recovers, and the result is still identical.
func TestVPCrashWithoutAgentLoss(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)
	ref := singleProcessReference(t, w, h, vps)

	fcfg := netsim.FaultConfig{Seed: 77, CrashFraction: 0.3}
	plan, err := netsim.NewFaultPlan(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, stats, deaths := distributedRun(t,
		Config{
			Targets:      h.Targets(),
			Census:       testCensusCfg(),
			World:        cfg,
			Faults:       &fcfg,
			ShardTargets: 500,
			Tick:         5 * time.Millisecond,
		},
		HarnessConfig{
			Agents: 4,
			Agent:  AgentConfig{World: w.WithFaults(plan), Capacity: 2},
		},
		vps)
	if deaths != 0 {
		t.Fatalf("%d agents died with ExitOnCrash off", deaths)
	}
	if stats.AgentsLost != 0 {
		t.Fatalf("coordinator lost %d agents", stats.AgentsLost)
	}
	if stats.ReLeases == 0 {
		t.Fatal("crashed leases were not retried")
	}
	assertIdentical(t, ref, cp)
}

// Sticky crashes exhaust the retry budget: the vantage point must end
// the round quarantined, exactly like the single-process path, and the
// round must still complete for everyone else.
func TestStickyCrashQuarantines(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)

	fcfg := netsim.FaultConfig{Seed: 13, CrashFraction: 0.25, CrashStickiness: 1}
	plan, err := netsim.NewFaultPlan(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for _, vp := range vps[0] {
		if c, _ := plan.Crashes(vp.ID, 1); c {
			crashed++
		}
	}
	if crashed == 0 {
		t.Fatal("plan crashed nobody; raise CrashFraction")
	}

	cp := census.NewCampaign(census.CampaignConfig{Census: testCensusCfg()})
	coord, err := NewCoordinator(Config{
		Campaign:     cp,
		Targets:      h.Targets(),
		Census:       testCensusCfg(),
		World:        cfg,
		Faults:       &fcfg,
		ShardTargets: 700,
		Tick:         5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewHarness(coord, HarnessConfig{Agents: 3, Agent: AgentConfig{World: w.WithFaults(plan), Capacity: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()

	_, rerr := coord.ExecuteRound(context.Background(), 1, vps[0])
	if rerr == nil {
		t.Fatal("sticky crashes reported no error")
	}
	h1 := cp.Health()
	if len(h1.Quarantined) != crashed {
		t.Fatalf("quarantined %v, plan crashed %d VPs", h1.Quarantined, crashed)
	}
	if got := cp.Combined(); got == nil || got.Rounds != 1 {
		t.Fatal("round did not fold")
	}
}
