package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// HarnessConfig parametrizes an in-process agent fleet for tests,
// smokes, and the cmd/census -agents mode.
type HarnessConfig struct {
	// Agents is the fleet size.
	Agents int
	// Transport is "pipe" (net.Pipe, default) or "tcp" (real loopback
	// sockets through the coordinator's listener).
	Transport string
	// Agent is the per-agent template; Name is overridden with the
	// agent's index.
	Agent AgentConfig
	// Respawn restarts an agent that died (crash, injected churn, lost
	// connection) with a fresh connection, as a supervisor would.
	Respawn bool
	// KillAfterFrames, when positive, injects churn: each agent's
	// connection is severed after it has streamed that many row frames,
	// simulating a process that dies mid-census. Combine with Respawn
	// for a fleet that keeps losing and replacing members.
	KillAfterFrames int
}

// Harness runs N agents against a coordinator inside one process: over
// net.Pipe for fully deterministic tests, or over real TCP loopback
// sockets to exercise the same protocol end to end.
type Harness struct {
	coord *Coordinator
	cfg   HarnessConfig
	ln    net.Listener

	mu      sync.Mutex
	closing bool
	deaths  int

	wg sync.WaitGroup
}

// NewHarness starts the fleet. Agents connect (and respawn) until Close.
func NewHarness(coord *Coordinator, cfg HarnessConfig) (*Harness, error) {
	if cfg.Agents <= 0 {
		return nil, fmt.Errorf("cluster: harness needs at least one agent")
	}
	h := &Harness{coord: coord, cfg: cfg}
	switch cfg.Transport {
	case "", "pipe":
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		h.ln = ln
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			coord.Serve(ln)
		}()
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q", cfg.Transport)
	}
	for i := 0; i < cfg.Agents; i++ {
		h.startAgent(i)
	}
	return h, nil
}

// Deaths reports how many times an agent died (and, with Respawn, was
// replaced) outside of harness shutdown.
func (h *Harness) Deaths() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.deaths
}

func (h *Harness) dial() (net.Conn, error) {
	if h.ln != nil {
		return net.Dial("tcp", h.ln.Addr().String())
	}
	coordSide, agentSide := net.Pipe()
	if err := h.coord.Attach(coordSide); err != nil {
		agentSide.Close()
		return nil, err
	}
	return agentSide, nil
}

func (h *Harness) startAgent(i int) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			h.mu.Lock()
			closing := h.closing
			h.mu.Unlock()
			if closing {
				return
			}
			conn, err := h.dial()
			if err != nil {
				return // coordinator gone
			}
			if h.cfg.KillAfterFrames > 0 {
				conn = &killAfter{Conn: conn, left: h.cfg.KillAfterFrames}
			}
			acfg := h.cfg.Agent
			acfg.Name = fmt.Sprintf("%s-%d", agentBaseName(h.cfg.Agent.Name), i)
			err = RunAgent(context.Background(), conn, acfg)
			h.mu.Lock()
			closing = h.closing
			if err != nil && !closing {
				h.deaths++
			}
			h.mu.Unlock()
			if err == nil || closing || !h.cfg.Respawn {
				return
			}
		}
	}()
}

func agentBaseName(name string) string {
	if name == "" {
		return "agent"
	}
	return name
}

// Close tears the fleet down: the coordinator closes (agents see
// shutdown frames or dead connections) and every agent goroutine is
// reaped. Deaths during shutdown do not count.
func (h *Harness) Close() error {
	h.mu.Lock()
	if h.closing {
		h.mu.Unlock()
		h.wg.Wait()
		return nil
	}
	h.closing = true
	h.mu.Unlock()
	if h.ln != nil {
		h.ln.Close()
	}
	err := h.coord.Close()
	h.wg.Wait()
	return err
}

// killAfter severs a connection after the Nth row frame written through
// it: deterministic agent churn, keyed to completed work rather than
// wall time. Frames are written as single buffers, so the type byte sits
// at a fixed offset of every Write.
type killAfter struct {
	net.Conn
	mu   sync.Mutex
	left int
	dead bool
}

var errInjectedDeath = errors.New("cluster: injected agent death")

func (k *killAfter) Write(b []byte) (int, error) {
	k.mu.Lock()
	if k.dead {
		k.mu.Unlock()
		return 0, errInjectedDeath
	}
	if len(b) > 4 && b[4] == frameRows {
		k.left--
		if k.left < 0 {
			k.dead = true
			k.mu.Unlock()
			k.Conn.Close()
			return 0, errInjectedDeath
		}
	}
	k.mu.Unlock()
	return k.Conn.Write(b)
}
