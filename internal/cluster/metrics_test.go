package cluster

import (
	"context"
	"strings"
	"testing"

	"anycastmap/internal/census"
	"anycastmap/internal/obs"
)

// The coordinator's metric counters must track Stats exactly: both are
// bumped at the same call sites, and the exposition is the scrapeable
// form of the struct.
func TestCoordinatorMetricsMatchStats(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)

	cp := census.NewCampaign(census.CampaignConfig{Census: testCensusCfg()})
	coord, err := NewCoordinator(Config{
		Campaign: cp, Targets: h.Targets(), Census: testCensusCfg(), World: cfg, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewHarness(coord, HarnessConfig{Agents: 3, Agent: AgentConfig{World: w, Capacity: 2}})
	if err != nil {
		coord.Close()
		t.Fatal(err)
	}
	defer fleet.Close()
	for r, set := range vps {
		if _, err := coord.ExecuteRound(context.Background(), uint64(r+1), set); err != nil {
			t.Fatalf("distributed round %d: %v", r+1, err)
		}
	}

	// Sample Stats and the metrics before closing the fleet: the close
	// itself drops agents, which keeps bumping AgentsLost.
	stats := coord.Stats()
	checks := []struct {
		name string
		c    *obs.Counter
		want int
	}{
		{"AgentsJoined", m.AgentsJoined, stats.AgentsJoined},
		{"AgentsLost", m.AgentsLost, stats.AgentsLost},
		{"Leases", m.Leases, stats.Leases},
		{"ReLeases", m.ReLeases, stats.ReLeases},
		{"LeaseExpiries", m.LeaseExpiries, stats.Expired},
		{"LateFrames", m.LateFrames, stats.LateFrames},
		{"FramesFolded", m.FramesFolded, stats.FramesFolded},
	}
	for _, c := range checks {
		if got := c.c.Value(); got != uint64(c.want) {
			t.Errorf("%s metric = %d, stats = %d", c.name, got, c.want)
		}
	}
	if stats.AgentsJoined != 3 || stats.FramesFolded == 0 {
		t.Fatalf("run shape unexpected: %+v", stats)
	}
	if got := m.ShardFoldSeconds.Count(); got != uint64(stats.FramesFolded) {
		t.Errorf("ShardFoldSeconds count = %d, frames folded = %d", got, stats.FramesFolded)
	}
	if live := m.AgentsLive.Value(); live != float64(stats.AgentsJoined-stats.AgentsLost) {
		t.Errorf("AgentsLive = %v, want %d", live, stats.AgentsJoined-stats.AgentsLost)
	}

	var text strings.Builder
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"anycastmap_cluster_agents_joined_total 3",
		"anycastmap_cluster_frames_folded_total",
		"anycastmap_cluster_shard_fold_seconds_count",
	} {
		if !strings.Contains(text.String(), series) {
			t.Errorf("exposition missing %q", series)
		}
	}
}
