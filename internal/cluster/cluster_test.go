package cluster

import (
	"context"
	"math"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// The cluster testbed: a small deterministic world, a pruned hitlist,
// and two per-round vantage point sets (the second overlapping the
// first, so round 2 registers new VPs mid-campaign).
var (
	ctbOnce sync.Once
	ctbCfg  netsim.Config
	ctbW    *netsim.World
	ctbH    *hitlist.Hitlist
	ctbVPs  [][]platform.VP
)

func clusterTestbed(t *testing.T) (netsim.Config, *netsim.World, *hitlist.Hitlist, [][]platform.VP) {
	t.Helper()
	ctbOnce.Do(func() {
		ctbCfg = netsim.DefaultConfig()
		ctbCfg.Unicast24s = 3000
		ctbW = netsim.New(ctbCfg)
		ctbH = hitlist.FromWorld(ctbW).PruneNeverAlive()
		pl := platform.PlanetLab(cities.Default())
		ctbVPs = [][]platform.VP{pl.Sample(24, 1), pl.Sample(20, 2)}
	})
	return ctbCfg, ctbW, ctbH, ctbVPs
}

// testCensusCfg disables the retry backoff so re-leases are immediate.
func testCensusCfg() census.Config {
	return census.Config{Seed: 9, RetryBackoff: -1}
}

// singleProcessReference runs the rounds through the in-process
// Campaign path against a fault-free world.
func singleProcessReference(t *testing.T, w *netsim.World, h *hitlist.Hitlist, vps [][]platform.VP) *census.Campaign {
	t.Helper()
	cp := census.NewCampaign(census.CampaignConfig{Census: testCensusCfg()})
	for r, set := range vps {
		if _, err := cp.ExecuteRound(context.Background(), w, set, h, nil, uint64(r+1)); err != nil {
			t.Fatalf("single-process round %d: %v", r+1, err)
		}
	}
	return cp
}

// distributedRun executes the same rounds across a harness fleet and
// returns the campaign plus the harness (closed) and coordinator stats.
func distributedRun(t *testing.T, ccfg Config, hcfg HarnessConfig, vps [][]platform.VP) (*census.Campaign, Stats, int) {
	t.Helper()
	cp := census.NewCampaign(census.CampaignConfig{Census: ccfg.Census})
	ccfg.Campaign = cp
	coord, err := NewCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(coord, hcfg)
	if err != nil {
		coord.Close()
		t.Fatal(err)
	}
	for r, set := range vps {
		if _, err := coord.ExecuteRound(context.Background(), uint64(r+1), set); err != nil {
			h.Close()
			t.Fatalf("distributed round %d: %v", r+1, err)
		}
	}
	deaths := h.Deaths()
	stats := coord.Stats()
	if err := h.Close(); err != nil {
		t.Fatalf("harness close: %v", err)
	}
	return cp, stats, deaths
}

// assertIdentical holds the distributed campaign to byte-identity with
// the single-process one: combined rows, greylist, and analysis
// outcomes.
func assertIdentical(t *testing.T, want, got *census.Campaign) {
	t.Helper()
	cw, cg := want.Combined(), got.Combined()
	if cw == nil || cg == nil {
		t.Fatal("campaign missing combined matrix")
	}
	if !reflect.DeepEqual(cw.VPs, cg.VPs) {
		t.Fatal("VP union diverges")
	}
	if !reflect.DeepEqual(cw.Targets, cg.Targets) {
		t.Fatal("target lists diverge")
	}
	if cw.Rounds != cg.Rounds {
		t.Fatalf("rounds %d vs %d", cw.Rounds, cg.Rounds)
	}
	for v := range cw.RTTus {
		if !reflect.DeepEqual(cw.RTTus[v], cg.RTTus[v]) {
			t.Fatalf("combined row %d (%s) diverges", v, cw.VPs[v].Name)
		}
	}
	if !reflect.DeepEqual(want.Greylist().Snapshot(), got.Greylist().Snapshot()) {
		t.Fatal("greylists diverge")
	}
	db := cities.Default()
	ow := census.AnalyzeAll(db, cw, core.Options{}, 2, 0)
	og := census.AnalyzeAll(db, cg, core.Options{}, 2, 0)
	if !reflect.DeepEqual(ow, og) {
		t.Fatal("analysis outcomes diverge")
	}
}

func TestClusterMatchesSingleProcess(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)
	ref := singleProcessReference(t, w, h, vps)

	for _, agents := range []int{1, 4, 7} {
		cp, stats, deaths := distributedRun(t,
			Config{
				Targets:      h.Targets(),
				Census:       testCensusCfg(),
				World:        cfg,
				ShardTargets: 700,
			},
			HarnessConfig{
				Agents: agents,
				Agent:  AgentConfig{World: w, Capacity: 2},
			},
			vps)
		assertIdentical(t, ref, cp)
		if deaths != 0 {
			t.Fatalf("%d agents: %d unexpected deaths", agents, deaths)
		}
		if stats.AgentsJoined != agents {
			t.Fatalf("%d agents: %d joined", agents, stats.AgentsJoined)
		}
		if stats.ReLeases != 0 || stats.Expired != 0 {
			t.Fatalf("%d agents: unexpected recovery traffic: %+v", agents, stats)
		}
	}
}

// The TCP loopback transport must behave exactly like the pipe: same
// protocol, same bytes, real sockets. Agents rebuild the world from the
// welcome message here (World: nil), exercising the true multi-process
// path.
func TestClusterTCPLoopback(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)
	ref := singleProcessReference(t, w, h, vps)

	cp, stats, _ := distributedRun(t,
		Config{
			Targets:      h.Targets(),
			Census:       testCensusCfg(),
			World:        cfg,
			ShardTargets: 1000,
		},
		HarnessConfig{
			Agents:    4,
			Transport: "tcp",
			Agent:     AgentConfig{Capacity: 2},
		},
		vps)
	assertIdentical(t, ref, cp)
	if stats.FramesFolded == 0 {
		t.Fatal("no frames folded over TCP")
	}
}

// A blacklist shipped in the welcome must shape agent probing exactly as
// it shapes the single-process path.
func TestClusterHonoursBlacklist(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)
	black, err := prober.BuildBlacklist(w, vps[0][0], h.Targets(), prober.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	targets := h.Without(black.Targets())

	ref := census.NewCampaign(census.CampaignConfig{Census: testCensusCfg()})
	if _, err := ref.ExecuteRound(context.Background(), w, vps[0], targets, black, 1); err != nil {
		t.Fatal(err)
	}

	cp := census.NewCampaign(census.CampaignConfig{Census: testCensusCfg()})
	coord, err := NewCoordinator(Config{
		Campaign:     cp,
		Targets:      targets.Targets(),
		Blacklist:    black,
		Census:       testCensusCfg(),
		World:        cfg,
		ShardTargets: 800,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewHarness(coord, HarnessConfig{Agents: 3, Agent: AgentConfig{World: w}})
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	if _, err := coord.ExecuteRound(context.Background(), 1, vps[0]); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, ref, cp)
}

// Agent churn: every agent is killed after each few row frames and
// respawned. The coordinator re-leases the lost shards; because replies
// are pure functions of (seed, VP, target, round) and the fold is a
// min, the final state is still byte-identical. The retry budget is
// raised so repeated churn cannot quarantine a vantage point.
func TestClusterSurvivesAgentChurn(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)
	ccfg := testCensusCfg()
	ccfg.MaxAttempts = 50
	refCp := census.NewCampaign(census.CampaignConfig{Census: ccfg})
	for r, set := range vps {
		if _, err := refCp.ExecuteRound(context.Background(), w, set, h, nil, uint64(r+1)); err != nil {
			t.Fatal(err)
		}
	}

	cp, stats, deaths := distributedRun(t,
		Config{
			Targets:      h.Targets(),
			Census:       ccfg,
			World:        cfg,
			ShardTargets: 400,
			Tick:         5 * time.Millisecond,
		},
		HarnessConfig{
			Agents:          4,
			Agent:           AgentConfig{World: w},
			Respawn:         true,
			KillAfterFrames: 6,
		},
		vps)
	assertIdentical(t, refCp, cp)
	if deaths == 0 {
		t.Fatal("churn injected no deaths")
	}
	if stats.ReLeases == 0 {
		t.Fatal("no shards were re-leased despite churn")
	}
	if q := cp.Health().Quarantined; len(q) != 0 {
		t.Fatalf("churn quarantined VPs: %v", q)
	}
}

// hungAgent registers and accepts leases but never answers them: the
// coordinator must expire its lease, presume it dead, and re-lease the
// shard to a live agent.
func hungAgent(t *testing.T, coord *Coordinator) {
	t.Helper()
	coordSide, agentSide := net.Pipe()
	if err := coord.Attach(coordSide); err != nil {
		t.Fatal(err)
	}
	go func() {
		defer agentSide.Close()
		if _, err := agentSide.Write([]byte(streamMagic)); err != nil {
			return
		}
		hello, _ := encodeMsg(&helloMsg{Name: "hung", Capacity: 4})
		if _, err := agentSide.Write(frameBytes(frameHello, hello)); err != nil {
			return
		}
		if err := readMagic(agentSide); err != nil {
			return
		}
		for { // swallow frames forever, answering nothing
			if _, _, err := readFrame(agentSide, 0); err != nil {
				return
			}
		}
	}()
}

func TestHungAgentLeaseExpires(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)
	ref := singleProcessReference(t, w, h, vps[:1])

	ccfg := testCensusCfg()
	ccfg.MaxAttempts = 50
	cp := census.NewCampaign(census.CampaignConfig{Census: ccfg})
	coord, err := NewCoordinator(Config{
		Campaign:     cp,
		Targets:      h.Targets(),
		Census:       ccfg,
		World:        cfg,
		ShardTargets: 700,
		LeaseTTL:     150 * time.Millisecond,
		Tick:         10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hungAgent(t, coord)
	hs, err := NewHarness(coord, HarnessConfig{Agents: 2, Agent: AgentConfig{World: w}})
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()

	if _, err := coord.ExecuteRound(context.Background(), 1, vps[0]); err != nil {
		t.Fatalf("round with hung agent: %v", err)
	}
	stats := coord.Stats()
	if stats.Expired == 0 {
		t.Fatalf("hung agent's leases never expired: %+v", stats)
	}
	assertIdentical(t, ref, cp)
}

// A round executed with no agents at all must abort after the grace
// period instead of hanging forever.
func TestAgentlessRoundAborts(t *testing.T) {
	cfg, _, h, vps := clusterTestbed(t)
	cp := census.NewCampaign(census.CampaignConfig{Census: testCensusCfg()})
	coord, err := NewCoordinator(Config{
		Campaign:   cp,
		Targets:    h.Targets(),
		Census:     testCensusCfg(),
		World:      cfg,
		AgentGrace: 100 * time.Millisecond,
		Tick:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.ExecuteRound(context.Background(), 1, vps[0]); err == nil {
		t.Fatal("agentless round did not abort")
	}
}

func TestExecuteRoundContextCancel(t *testing.T) {
	cfg, _, h, vps := clusterTestbed(t)
	cp := census.NewCampaign(census.CampaignConfig{Census: testCensusCfg()})
	coord, err := NewCoordinator(Config{
		Campaign: cp,
		Targets:  h.Targets(),
		Census:   testCensusCfg(),
		World:    cfg,
		Tick:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := coord.ExecuteRound(ctx, 1, vps[0]); err == nil {
		t.Fatal("cancelled round returned no error")
	}
}

// Completion must not depend on shard width relative to fleet size:
// one wide shard per VP, or hundreds of narrow ones.
func TestClusterShardWidthExtremes(t *testing.T) {
	cfg, w, h, vps := clusterTestbed(t)
	ref := singleProcessReference(t, w, h, vps[:1])
	for _, width := range []int{0, 97, math.MaxInt} {
		cp, _, _ := distributedRun(t,
			Config{
				Targets:      h.Targets(),
				Census:       testCensusCfg(),
				World:        cfg,
				ShardTargets: width,
			},
			HarnessConfig{Agents: 4, Agent: AgentConfig{World: w, Capacity: 3}},
			vps[:1])
		assertIdentical(t, ref, cp)
	}
}
