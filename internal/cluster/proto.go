package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

// Control messages ride as gob payloads: they are small and infrequent
// (a handful per lease), so codec ergonomics beat density. The hot path
// — result rows — uses the hand-rolled v2 columnar codec instead
// (census.ShardRows), where density and byte-determinism matter.

// helloMsg registers an agent with the coordinator.
type helloMsg struct {
	// Name identifies the agent in logs and health reports.
	Name string
	// Capacity is how many leases the agent executes concurrently;
	// zero means 1.
	Capacity int
	// OwnedVPs lists vantage-point IDs the agent prefers to execute
	// (platform affinity: the VP "runs on" this agent). The coordinator
	// honours the preference when the owner has capacity and falls back
	// to any agent otherwise.
	OwnedVPs []int
}

// welcomeMsg equips a fresh agent to probe: the deterministic world to
// rebuild (or share, in-process), the fault weather, the probing
// configuration, and the round-invariant target list and blacklist so
// leases only need to carry spans.
type welcomeMsg struct {
	World     netsim.Config
	Faults    *netsim.FaultConfig
	Census    census.Config
	Targets   []netsim.IP
	Blacklist map[netsim.IP]netsim.ReplyKind
	Heartbeat time.Duration
}

// leaseMsg assigns one shard of one vantage point's round to an agent.
type leaseMsg struct {
	ID      uint64
	Round   uint64
	Attempt int
	// Slot is the vantage point's row slot in the coordinator's
	// combined matrix; the agent echoes it in the result frame.
	Slot int
	VP   platform.VP
	// Lo, Hi is the target span [Lo, Hi) within the welcome target
	// list.
	Lo, Hi int
}

// failMsg reports a lease the agent could not complete. Crash marks an
// injected VP crash (retryable infrastructure failure) as opposed to a
// wire-path error.
type failMsg struct {
	ID    uint64
	Err   string
	Crash bool
}

func encodeMsg(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("cluster: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

func decodeMsg(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("cluster: decode %T: %w", v, err)
	}
	return nil
}

// rowsPayload frames a shard result: uvarint lease ID, then the encoded
// census.ShardRows frame.
func rowsPayload(leaseID uint64, frame []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], leaseID)
	out := make([]byte, 0, n+len(frame))
	out = append(out, hdr[:n]...)
	return append(out, frame...)
}

// splitRowsPayload undoes rowsPayload.
func splitRowsPayload(payload []byte) (uint64, []byte, error) {
	id, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, fmt.Errorf("cluster: rows frame missing lease ID")
	}
	return id, payload[n:], nil
}
