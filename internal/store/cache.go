package store

import (
	"container/list"
	"sync"

	"anycastmap/internal/netsim"
)

// cache is a sharded LRU over single-IP answers. Entries are tagged with
// the snapshot version they were computed against; a hit under a newer
// snapshot is treated as a miss, so a hot-swap invalidates the whole cache
// implicitly — no flush, no stop-the-world.
type cache struct {
	shards []*cacheShard
	mask   uint32
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[netsim.IP]*list.Element
}

type cacheItem struct {
	ip      netsim.IP
	entry   *Entry // nil caches a negative (unicast) answer
	version uint64
}

// newCache builds a cache of roughly size entries across shards shards;
// both are clamped to sane minimums and shards is rounded up to a power
// of two so shard selection is a mask.
func newCache(size, shards int) *cache {
	if size <= 0 {
		size = 1 << 16
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (size + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &cache{shards: make([]*cacheShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap: perShard,
			ll:  list.New(),
			m:   make(map[netsim.IP]*list.Element, perShard),
		}
	}
	return c
}

// shard picks the shard for an IP by Fibonacci-hashing the address; the
// low bits of real target lists are far from uniform.
func (c *cache) shard(ip netsim.IP) *cacheShard {
	h := uint32(ip) * 2654435761
	return c.shards[(h>>16)&c.mask]
}

// get returns the answer cached against the given current snapshot
// version. An entry computed against an older snapshot is dead weight: it
// is evicted on sight — never promoted — so stale entries cannot pin dead
// snapshots in memory under LRU pressure.
func (c *cache) get(ip netsim.IP, current uint64) (*Entry, uint64, bool) {
	s := c.shard(ip)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[ip]
	if !ok {
		return nil, 0, false
	}
	it := el.Value.(*cacheItem)
	if it.version != current {
		s.ll.Remove(el)
		delete(s.m, ip)
		return nil, it.version, false
	}
	s.ll.MoveToFront(el)
	return it.entry, it.version, true
}

// put stores an answer computed against the given snapshot version,
// evicting the least recently used entry of the shard when full.
func (c *cache) put(ip netsim.IP, e *Entry, version uint64) {
	s := c.shard(ip)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[ip]; ok {
		it := el.Value.(*cacheItem)
		it.entry, it.version = e, version
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.m, oldest.Value.(*cacheItem).ip)
		}
	}
	s.m[ip] = s.ll.PushFront(&cacheItem{ip: ip, entry: e, version: version})
}

// len returns the total number of cached answers across shards.
func (c *cache) len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
