package store

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anycastmap/internal/analysis"
	"anycastmap/internal/asdb"
	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
)

// mkFindings builds n synthetic findings over consecutive /24s starting at
// base, each with two located replicas.
func mkFindings(t testing.TB, base netsim.Prefix24, n int) []analysis.Finding {
	t.Helper()
	reg := asdb.Default()
	db := cities.Default()
	cf := reg.MustByName("CLOUDFLARENET,US")
	mk := func(name, cc string) core.GeoReplica {
		return core.GeoReplica{VP: "vp-" + name, Located: true, City: db.MustByName(name, cc)}
	}
	fs := make([]analysis.Finding, n)
	for i := range fs {
		fs[i] = analysis.Finding{
			Prefix: base + netsim.Prefix24(i),
			ASN:    cf.ASN,
			Result: core.Result{Anycast: true, Replicas: []core.GeoReplica{
				mk("Amsterdam", "NL"), mk("Tokyo", "JP"),
			}},
		}
	}
	return fs
}

func testSnapshot(t testing.TB, n int) *Snapshot {
	t.Helper()
	base, err := netsim.ParsePrefix24("10.10.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	return NewSnapshot(mkFindings(t, base, n), asdb.Default(), 4, 4)
}

func TestSnapshotPrefixBoundaries(t *testing.T) {
	snap := testSnapshot(t, 8) // 10.10.0.0/24 .. 10.10.7.0/24
	parse := func(s string) netsim.IP {
		ip, err := netsim.ParseIP(s)
		if err != nil {
			t.Fatal(err)
		}
		return ip
	}
	tests := []struct {
		name string
		ip   string
		want bool
	}{
		{"first IP of first /24", "10.10.0.0", true},
		{"last IP of first /24", "10.10.0.255", true},
		{"first IP of last /24", "10.10.7.0", true},
		{"last IP of last /24", "10.10.7.255", true},
		{"middle of an interior /24", "10.10.3.77", true},
		{"one below the range", "10.9.255.255", false},
		{"one above the range", "10.10.8.0", false},
		{"unrelated address", "192.0.2.1", false},
		{"zero address", "0.0.0.0", false},
		{"broadcast-ish extreme", "255.255.255.255", false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			e, ok := snap.Lookup(parse(tc.ip))
			if ok != tc.want {
				t.Fatalf("Lookup(%s) anycast = %v, want %v", tc.ip, ok, tc.want)
			}
			if ok && e.Prefix != parse(tc.ip).Prefix() {
				t.Errorf("Lookup(%s) landed on %v", tc.ip, e.Prefix)
			}
			if !ok && e != nil {
				t.Errorf("negative lookup returned an entry")
			}
		})
	}
}

func TestSnapshotCounts(t *testing.T) {
	snap := testSnapshot(t, 5)
	if snap.Len() != 5 {
		t.Errorf("Len = %d, want 5", snap.Len())
	}
	if snap.ASes() != 1 {
		t.Errorf("ASes = %d, want 1", snap.ASes())
	}
	if snap.TotalReplicas() != 10 {
		t.Errorf("TotalReplicas = %d, want 10", snap.TotalReplicas())
	}
	if got := len(snap.Entries()); got != 5 {
		t.Errorf("Entries len = %d", got)
	}
	e := snap.Entries()[0]
	if e.ASName == "" || e.Category == "" || len(e.Cities) != 2 || len(e.Instances) != 2 {
		t.Errorf("entry not fully attributed: %+v", e)
	}
}

func TestStoreLookupAndCacheVersioning(t *testing.T) {
	st := New(Options{CacheSize: 64, CacheShards: 2})
	ip, _ := netsim.ParseIP("10.10.0.1")

	if ans := st.Lookup(ip); ans.Anycast || ans.Version != 0 {
		t.Fatalf("empty store answered %+v", ans)
	}

	v1 := st.Publish(testSnapshot(t, 4))
	ans := st.Lookup(ip)
	if !ans.Anycast || ans.Version != v1 {
		t.Fatalf("lookup after publish = %+v", ans)
	}
	// Second lookup must be served by the cache.
	before := st.Stats().CacheHits
	ans2 := st.Lookup(ip)
	if st.Stats().CacheHits != before+1 {
		t.Error("second lookup missed the cache")
	}
	if ans2.Entry != ans.Entry {
		t.Error("cache returned a different entry")
	}

	// A new snapshot must invalidate the cached answer by version tag.
	v2 := st.Publish(testSnapshot(t, 4))
	ans3 := st.Lookup(ip)
	if ans3.Version != v2 {
		t.Fatalf("post-swap lookup still served v%d", ans3.Version)
	}
	if ans3.Entry == ans.Entry {
		t.Error("post-swap lookup returned the old snapshot's entry")
	}
	if v2 != v1+1 {
		t.Errorf("versions did not increment: %d -> %d", v1, v2)
	}
}

func TestStoreNegativeCaching(t *testing.T) {
	st := New(Options{CacheSize: 64})
	st.Publish(testSnapshot(t, 2))
	ip, _ := netsim.ParseIP("192.0.2.9")
	if ans := st.Lookup(ip); ans.Anycast {
		t.Fatal("unicast IP classified anycast")
	}
	before := st.Stats().CacheHits
	if ans := st.Lookup(ip); ans.Anycast || st.Stats().CacheHits != before+1 {
		t.Error("negative answer not cached")
	}
}

func TestCacheEviction(t *testing.T) {
	// One shard of capacity 4: inserting 5 distinct IPs must evict
	// exactly the least recently used one.
	c := newCache(4, 1)
	ips := make([]netsim.IP, 5)
	for i := range ips {
		ips[i] = netsim.IP(i)
	}
	e := &Entry{}
	for _, ip := range ips[:4] {
		c.put(ip, e, 1)
	}
	// Touch ip0 so ip1 becomes the LRU victim.
	if _, _, ok := c.get(ips[0], 1); !ok {
		t.Fatal("warm entry missing")
	}
	c.put(ips[4], e, 1)
	if c.len() != 4 {
		t.Fatalf("cache len = %d, want 4", c.len())
	}
	if _, _, ok := c.get(ips[1], 1); ok {
		t.Error("LRU victim still cached")
	}
	for _, ip := range []netsim.IP{ips[0], ips[2], ips[3], ips[4]} {
		if _, _, ok := c.get(ip, 1); !ok {
			t.Errorf("entry %v wrongly evicted", ip)
		}
	}
	// Overwriting an existing key must not grow the cache.
	c.put(ips[0], nil, 2)
	if c.len() != 4 {
		t.Errorf("overwrite changed len to %d", c.len())
	}
	if got, v, _ := c.get(ips[0], 2); got != nil || v != 2 {
		t.Errorf("overwrite not applied: %v v%d", got, v)
	}
}

func TestCacheShardingCoversAllShards(t *testing.T) {
	c := newCache(1024, 8)
	if len(c.shards) != 8 {
		t.Fatalf("shard count = %d", len(c.shards))
	}
	hit := map[*cacheShard]bool{}
	for i := 0; i < 4096; i++ {
		hit[c.shard(netsim.IP(i*251))] = true
	}
	if len(hit) != 8 {
		t.Errorf("hash only reached %d of 8 shards", len(hit))
	}
}

func TestLookupBatchConsistentVersion(t *testing.T) {
	st := New(Options{})
	st.Publish(testSnapshot(t, 4))
	var ips []netsim.IP
	for i := 0; i < 64; i++ {
		ips = append(ips, netsim.IP(0x0A0A0000+uint32(i)))
	}
	answers := st.LookupBatch(ips)
	if len(answers) != len(ips) {
		t.Fatalf("got %d answers", len(answers))
	}
	v := answers[0].Version
	for _, a := range answers {
		if a.Version != v {
			t.Fatal("batch spans snapshot versions")
		}
	}
}

// TestConcurrentLookupDuringSwap is the acceptance-criterion race test:
// readers hammer Lookup while a refresher-driven swap lands, and every
// answer must be internally consistent (entry matches the IP, version is
// one the store has published). Run under -race.
func TestConcurrentLookupDuringSwap(t *testing.T) {
	st := New(Options{CacheSize: 256, CacheShards: 4})
	st.Publish(testSnapshot(t, 16))

	builds := atomic.Uint64{}
	src := SourceFunc(func(ctx context.Context) (*Snapshot, error) {
		builds.Add(1)
		return testSnapshot(t, 16), nil
	})
	r := NewRefresher(st, src, 1)

	const readers = 8
	stopReaders := make(chan struct{})
	stopSwapper := make(chan struct{})
	errs := make(chan error, readers+1)

	var readersWg sync.WaitGroup
	for g := 0; g < readers; g++ {
		readersWg.Add(1)
		go func(g int) {
			defer readersWg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				ip := netsim.IP(0x0A0A0000 + uint32((g*100000+i)%(16*256)))
				ans := st.Lookup(ip)
				if ans.Version == 0 {
					errs <- fmt.Errorf("reader saw an unpublished store")
					return
				}
				if !ans.Anycast || ans.Entry == nil {
					errs <- fmt.Errorf("in-range IP %v classified unicast", ip)
					return
				}
				if ans.Entry.Prefix != ip.Prefix() {
					errs <- fmt.Errorf("IP %v got entry for %v", ip, ans.Entry.Prefix)
					return
				}
			}
		}(g)
	}

	// Swap continuously while the readers run.
	var swapperWg sync.WaitGroup
	swapperWg.Add(1)
	go func() {
		defer swapperWg.Done()
		for {
			select {
			case <-stopSwapper:
				return
			default:
				if !r.RefreshOnce(context.Background()) {
					errs <- fmt.Errorf("refresh failed")
					return
				}
			}
		}
	}()

	// Keep the readers running until at least two swaps have landed
	// underneath them (the initial Publish does not count as a swap), so
	// the test always exercises lookups racing a pointer store — even
	// under -race, where snapshot builds are slow.
	deadline := time.Now().Add(30 * time.Second)
	for st.Stats().Swaps < 2 && time.Now().Before(deadline) && len(errs) == 0 {
		time.Sleep(time.Millisecond)
	}
	close(stopReaders)
	readersWg.Wait()
	close(stopSwapper)
	swapperWg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if builds.Load() == 0 {
		t.Fatal("no swap happened during the reads")
	}
	if st.Stats().Swaps < 2 {
		t.Fatalf("only %d swaps landed", st.Stats().Swaps)
	}
}
