package store

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"anycastmap/internal/obs"
)

func testAPI(t *testing.T) (*API, *Store) {
	t.Helper()
	st := New(Options{CacheSize: 128})
	st.Publish(testSnapshot(t, 8)) // 10.10.0.0/24 .. 10.10.7.0/24
	return NewAPI(st, nil, APIConfig{}), st
}

func doJSON(t *testing.T, a *API, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, req)
	out := map[string]any{}
	if rec.Body.Len() > 0 && strings.HasPrefix(rec.Body.String(), "{") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON from %s: %v: %s", path, err, rec.Body.String())
		}
	}
	return rec, out
}

func TestAPILookup(t *testing.T) {
	a, _ := testAPI(t)
	rec, body := doJSON(t, a, http.MethodGet, "/v1/lookup?ip=10.10.3.200", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["anycast"] != true || body["prefix"] != "10.10.3.0/24" {
		t.Errorf("lookup body = %v", body)
	}
	if body["as_name"] == "" || body["replicas"].(float64) != 2 {
		t.Errorf("attribution missing: %v", body)
	}
	if _, ok := body["instances"]; ok {
		t.Error("instances included without ?instances=1")
	}

	rec, body = doJSON(t, a, http.MethodGet, "/v1/lookup?ip=10.10.3.200&instances=1", "")
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	if ins, ok := body["instances"].([]any); !ok || len(ins) != 2 {
		t.Errorf("instances not included on request: %v", body)
	}

	rec, body = doJSON(t, a, http.MethodGet, "/v1/lookup?ip=203.0.113.7", "")
	if rec.Code != http.StatusOK || body["anycast"] != false {
		t.Errorf("unicast lookup: %d %v", rec.Code, body)
	}

	rec, _ = doJSON(t, a, http.MethodGet, "/v1/lookup?ip=not-an-ip", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad IP accepted: %d", rec.Code)
	}
	rec, _ = doJSON(t, a, http.MethodGet, "/v1/lookup", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing IP accepted: %d", rec.Code)
	}
}

func TestAPILookupBatch(t *testing.T) {
	a, _ := testAPI(t)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/lookup/batch",
		strings.NewReader(`["10.10.0.0", "10.10.7.255", "203.0.113.9"]`))
	a.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0]["anycast"] != true || out[1]["anycast"] != true || out[2]["anycast"] != false {
		t.Errorf("batch answers = %v", out)
	}

	// Wrapped form.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v1/lookup/batch", strings.NewReader(`{"ips":["10.10.1.1"]}`))
	a.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("wrapped batch rejected: %d %s", rec.Code, rec.Body.String())
	}

	// Errors.
	for _, tc := range []struct {
		body string
		want int
	}{
		{`[]`, http.StatusBadRequest},
		{`["999.1.1.1"]`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		rec = httptest.NewRecorder()
		req = httptest.NewRequest(http.MethodPost, "/v1/lookup/batch", strings.NewReader(tc.body))
		a.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, rec.Code, tc.want)
		}
	}

	over := `["10.10.0.1"` + strings.Repeat(`,"10.10.0.1"`, 1024) + `]`
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/v1/lookup/batch", strings.NewReader(over))
	a.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d", rec.Code)
	}
}

func TestAPISnapshotAndHealth(t *testing.T) {
	a, st := testAPI(t)
	rec, body := doJSON(t, a, http.MethodGet, "/v1/snapshot", "")
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	if body["version"].(float64) != 1 || body["anycast_prefixes"].(float64) != 8 {
		t.Errorf("snapshot body = %v", body)
	}
	if body["censuses_combined"].(float64) != 4 {
		t.Errorf("rounds = %v", body["censuses_combined"])
	}

	rec, body = doJSON(t, a, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("health = %d %v", rec.Code, body)
	}

	// A fresh publish is visible immediately.
	st.Publish(testSnapshot(t, 2))
	_, body = doJSON(t, a, http.MethodGet, "/v1/snapshot", "")
	if body["version"].(float64) != 2 || body["anycast_prefixes"].(float64) != 2 {
		t.Errorf("post-swap snapshot = %v", body)
	}
}

func TestAPINotReady(t *testing.T) {
	a := NewAPI(New(Options{}), nil, APIConfig{})
	for _, path := range []string{"/healthz", "/v1/lookup?ip=1.2.3.4", "/v1/snapshot"} {
		rec, _ := doJSON(t, a, http.MethodGet, path, "")
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s before first snapshot: %d", path, rec.Code)
		}
	}
	rec, _ := doJSON(t, a, http.MethodGet, "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Errorf("stats should answer before the first snapshot: %d", rec.Code)
	}
}

func TestAPIStats(t *testing.T) {
	st := New(Options{CacheSize: 64})
	st.Publish(testSnapshot(t, 4))
	r := NewRefresher(st, SourceFunc(func(context.Context) (*Snapshot, error) {
		return testSnapshot(t, 4), nil
	}), time.Minute)
	a := NewAPI(st, r, APIConfig{})

	doJSON(t, a, http.MethodGet, "/v1/lookup?ip=10.10.0.1", "")
	doJSON(t, a, http.MethodGet, "/v1/lookup?ip=10.10.0.1", "")
	rec, body := doJSON(t, a, http.MethodGet, "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	storeStats := body["store"].(map[string]any)
	if storeStats["lookups"].(float64) != 2 || storeStats["cache_hits"].(float64) != 1 {
		t.Errorf("store stats = %v", storeStats)
	}
	eps := body["endpoints"].(map[string]any)
	if eps["lookup"].(map[string]any)["requests"].(float64) != 2 {
		t.Errorf("endpoint stats = %v", eps["lookup"])
	}
	if _, ok := body["refresher"]; !ok {
		t.Error("refresher stats missing")
	}
}

func TestAPIBoundedConcurrency(t *testing.T) {
	st := New(Options{})
	st.Publish(testSnapshot(t, 2))
	a := NewAPI(st, nil, APIConfig{MaxInFlight: 1})

	// Fill the only slot with a request that blocks inside the handler
	// by hijacking the semaphore directly.
	a.sem <- struct{}{}
	rec, _ := doJSON(t, a, http.MethodGet, "/v1/lookup?ip=10.10.0.1", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overload request got %d", rec.Code)
	}
	<-a.sem
	rec, _ = doJSON(t, a, http.MethodGet, "/v1/lookup?ip=10.10.0.1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-overload request got %d", rec.Code)
	}
	_, body := doJSON(t, a, http.MethodGet, "/v1/stats", "")
	eps := body["endpoints"].(map[string]any)
	if eps["lookup"].(map[string]any)["rejected"].(float64) != 1 {
		t.Errorf("rejection not counted: %v", eps["lookup"])
	}
}

func TestAPIBatchBodyLimit(t *testing.T) {
	st := New(Options{})
	st.Publish(testSnapshot(t, 2))
	a := NewAPI(st, nil, APIConfig{MaxBodyBytes: 64})

	// Under the cap: served normally.
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/lookup/batch", strings.NewReader(`["10.10.0.1"]`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("small batch got %d: %s", rec.Code, rec.Body.String())
	}

	// Over the cap: 413, not the 400 the error used to collapse into.
	over := `["10.10.0.1"` + strings.Repeat(`,"10.10.0.1"`, 16) + `]`
	rec, body := doJSON(t, a, http.MethodPost, "/v1/lookup/batch", over)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body got %d, want 413", rec.Code)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "64 bytes") {
		t.Errorf("413 body does not name the limit: %v", body)
	}
}

// failingWriter accepts the response header but fails every body write,
// like a client that disconnected between the header and the payload.
type failingWriter struct {
	header http.Header
	status int
}

func (w *failingWriter) Header() http.Header { return w.header }

func (w *failingWriter) WriteHeader(status int) { w.status = status }

func (w *failingWriter) Write([]byte) (int, error) {
	return 0, errors.New("client went away")
}

func TestAPIEncodeFailureCountsAsError(t *testing.T) {
	a, _ := testAPI(t)
	fw := &failingWriter{header: http.Header{}}
	a.ServeHTTP(fw, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	// The header went out before the body write failed; the recorded
	// status can't be rewritten, but the endpoint counters must show the
	// request errored.
	if fw.status != http.StatusOK {
		t.Fatalf("header status = %d", fw.status)
	}
	em := a.metrics["stats"]
	if em.requests.Load() != 1 || em.errors.Load() != 1 {
		t.Fatalf("stats endpoint counters = %d requests, %d errors; want 1 and 1",
			em.requests.Load(), em.errors.Load())
	}
	_, body := doJSON(t, a, http.MethodGet, "/v1/stats", "")
	eps := body["endpoints"].(map[string]any)
	if eps["stats"].(map[string]any)["errors"].(float64) != 1 {
		t.Errorf("encode failure invisible in /v1/stats: %v", eps["stats"])
	}
}

func TestAPIRejectedVisibleInStatsAndMetrics(t *testing.T) {
	st := New(Options{})
	st.Publish(testSnapshot(t, 2))
	reg := obs.NewRegistry()
	a := NewAPI(st, nil, APIConfig{MaxInFlight: 1, Metrics: reg})

	a.sem <- struct{}{} // fill the only slot
	rec, _ := doJSON(t, a, http.MethodGet, "/v1/lookup?ip=10.10.0.1", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overload request got %d", rec.Code)
	}
	<-a.sem

	_, body := doJSON(t, a, http.MethodGet, "/v1/stats", "")
	eps := body["endpoints"].(map[string]any)
	if eps["lookup"].(map[string]any)["rejected"].(float64) != 1 {
		t.Errorf("rejection not in /v1/stats: %v", eps["lookup"])
	}
	m := scrapeMetrics(t, a)
	if m[`anycastmap_http_requests_rejected_total{endpoint="lookup"}`] != 1 {
		t.Errorf("rejection not in /metrics: %v", m[`anycastmap_http_requests_rejected_total{endpoint="lookup"}`])
	}
	// The shed request never entered the handler: served and latency
	// counts stay at zero for it.
	if m[`anycastmap_http_requests_total{endpoint="lookup"}`] != 0 {
		t.Errorf("rejected request counted as served: %v", m[`anycastmap_http_requests_total{endpoint="lookup"}`])
	}
}

func TestAPIConcurrentLookupsDuringSwap(t *testing.T) {
	// End-to-end flavour of the acceptance criterion: HTTP lookups keep
	// answering while snapshots swap underneath.
	st := New(Options{CacheSize: 512})
	st.Publish(testSnapshot(t, 8))
	a := NewAPI(st, nil, APIConfig{MaxInFlight: 64})

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st.Publish(testSnapshot(t, 8))
			}
		}
	}()

	var wg sync.WaitGroup
	failures := make(chan string, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodGet, "/v1/lookup?ip=10.10.4.4", nil)
				a.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					failures <- rec.Body.String()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	select {
	case f := <-failures:
		t.Fatalf("lookup failed during swaps: %s", f)
	default:
	}
}
