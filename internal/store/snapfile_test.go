package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"anycastmap/internal/census"
	"anycastmap/internal/netsim"
)

func saveTestSnapshot(t *testing.T, snap *Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "census.snap")
	if err := SaveSnapshotFile(path, snap); err != nil {
		t.Fatalf("SaveSnapshotFile: %v", err)
	}
	return path
}

func TestSnapshotFileRoundtrip(t *testing.T) {
	heap := testSnapshot(t, 64)
	heap.SetHealth(census.CampaignHealth{
		Rounds: 4, VPRuns: 1044, Completed: 1040, Retries: 7, Recovered: 3,
		Quarantined: []string{"vp-ams-3", "vp-nrt-1"}, PartialRows: 1, EmptyRows: 1,
	})
	path := saveTestSnapshot(t, heap)

	mapped, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatalf("OpenSnapshotFile: %v", err)
	}
	defer mapped.Close()

	if mapped.Len() != heap.Len() || mapped.ASes() != heap.ASes() ||
		mapped.TotalReplicas() != heap.TotalReplicas() ||
		mapped.Round() != heap.Round() || mapped.Rounds() != heap.Rounds() {
		t.Errorf("metadata mismatch: mapped {len %d ases %d replicas %d round %d/%d}, heap {len %d ases %d replicas %d round %d/%d}",
			mapped.Len(), mapped.ASes(), mapped.TotalReplicas(), mapped.Round(), mapped.Rounds(),
			heap.Len(), heap.ASes(), heap.TotalReplicas(), heap.Round(), heap.Rounds())
	}
	if !mapped.BuiltAt().Equal(heap.BuiltAt()) {
		t.Errorf("builtAt mismatch: %v vs %v", mapped.BuiltAt(), heap.BuiltAt())
	}
	if !reflect.DeepEqual(mapped.Health(), heap.Health()) {
		t.Errorf("health mismatch:\n mapped %+v\n heap   %+v", mapped.Health(), heap.Health())
	}

	// Every entry must decode identically, via both the lazy single-entry
	// path and the bulk Entries path.
	for i, want := range heap.Entries() {
		got, ok := mapped.LookupPrefix(want.Prefix)
		if !ok {
			t.Fatalf("mapped snapshot misses prefix %v", want.Prefix)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("entry %d mismatch:\n mapped %+v\n heap   %+v", i, *got, want)
		}
	}
	if !reflect.DeepEqual(mapped.Entries(), heap.Entries()) {
		t.Errorf("bulk Entries diverge from heap snapshot")
	}
	if d := mapped.DecodeErrors(); d != 0 {
		t.Errorf("DecodeErrors = %d after clean roundtrip", d)
	}
	if _, ok := mapped.LookupPrefix(netsim.Prefix24(1)); ok {
		t.Errorf("mapped snapshot claims a prefix it never indexed")
	}
}

func TestSnapshotFileWriteDeterministic(t *testing.T) {
	snap := testSnapshot(t, 16)
	var a, b bytes.Buffer
	if err := WriteSnapshot(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteSnapshot is not deterministic for the same snapshot")
	}
}

// TestSnapshotFileRejectsCorrupt pins the promise that a damaged file is
// rejected at open time — before any hot-swap could publish it — rather
// than surfacing as crashes or garbage answers later.
func TestSnapshotFileRejectsCorrupt(t *testing.T) {
	snap := testSnapshot(t, 12)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	open := func(name string, b []byte) error {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenSnapshotFile(path)
		if err == nil {
			s.Close()
		}
		return err
	}

	mutate := func(mut func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return mut(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty file", nil},
		{"shorter than header", good[:snapHeaderLen-1]},
		{"truncated mid-payload", good[:len(good)/2]},
		{"truncated by one byte", good[:len(good)-1]},
		{"one trailing byte", append(append([]byte(nil), good...), 0)},
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xff; return b })},
		{"future version", mutate(func(b []byte) []byte { b[8] = 99; return b })},
		{"payload bit flip", mutate(func(b []byte) []byte { b[snapHeaderLen+5] ^= 0x10; return b })},
		{"entry blob bit flip", mutate(func(b []byte) []byte { b[len(b)-3] ^= 0x01; return b })},
		{"inflated entry count", mutate(func(b []byte) []byte { b[12]++; return b })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := open("bad.snap", tc.data); err == nil {
				t.Fatal("corrupt snapshot file opened without error")
			}
		})
	}

	// The happy path still opens after all that mutation of copies.
	if err := open("good.snap", good); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// TestSnapshotFileSwapUnderReaders hammers a store with lookups while
// mapped snapshots hot-swap underneath; each replaced mapping must survive
// until its last in-flight reader releases it and unmap afterwards. Run
// under -race this doubles as the use-after-unmap detector.
func TestSnapshotFileSwapUnderReaders(t *testing.T) {
	snap := testSnapshot(t, 48)
	path := saveTestSnapshot(t, snap)
	first, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// No LRU interference: every lookup walks the mapped index.
	st := New(Options{CacheSize: 1})
	st.Publish(first)

	prefixes := make([]netsim.IP, 0, snap.Len())
	for _, e := range snap.Entries() {
		prefixes = append(prefixes, netsim.IP(uint32(e.Prefix)<<8|7))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ip := prefixes[(i+seed)%len(prefixes)]
				if ans := st.Lookup(ip); !ans.Anycast {
					t.Errorf("lookup of indexed prefix answered unicast")
					return
				}
				if i%16 == 0 {
					for _, ans := range st.LookupBatch(prefixes[:8]) {
						if !ans.Anycast {
							t.Errorf("batch lookup of indexed prefix answered unicast")
							return
						}
					}
				}
				if i%64 == 0 {
					cur, release := st.Acquire()
					if n := len(cur.Entries()); n != len(prefixes) {
						t.Errorf("Entries() = %d entries, want %d", n, len(prefixes))
					}
					release()
				}
			}
		}(r * 7)
	}

	// 24 hot swaps, each a fresh mapping of the same file. Publish closes
	// the predecessor, whose pages must outlive its in-flight readers.
	swapped := make([]*Snapshot, 0, 24)
	for i := 0; i < 24; i++ {
		next, err := OpenSnapshotFile(path)
		if err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		swapped = append(swapped, st.Current())
		st.Publish(next)
	}
	close(stop)
	wg.Wait()

	for i, old := range swapped {
		if refs := old.m.refs.Load(); refs != 0 {
			t.Errorf("replaced snapshot %d still holds %d mapping refs", i, refs)
		}
	}
	if live := st.Current(); live.m.refs.Load() <= 0 {
		t.Errorf("live snapshot lost its owner reference")
	}
}

func TestSnapshotFileEmpty(t *testing.T) {
	empty := NewSnapshot(nil, nil, 9, 2)
	path := saveTestSnapshot(t, empty)
	mapped, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatalf("OpenSnapshotFile(empty): %v", err)
	}
	defer mapped.Close()
	if mapped.Len() != 0 || mapped.Round() != 9 || mapped.Rounds() != 2 {
		t.Errorf("empty snapshot roundtrip: len %d round %d/%d", mapped.Len(), mapped.Round(), mapped.Rounds())
	}
	if _, ok := mapped.Lookup(netsim.IP(0x08080808)); ok {
		t.Errorf("empty snapshot answered anycast")
	}
	if n := len(mapped.Entries()); n != 0 {
		t.Errorf("empty snapshot Entries() = %d", n)
	}

	st := New(Options{})
	st.Publish(mapped)
	if ans := st.Lookup(netsim.IP(0x01010101)); ans.Anycast {
		t.Errorf("store over empty snapshot answered anycast")
	}
}

// TestRefresherPersistsSnapshot exercises the full daemon path: a build
// whose product lands in SnapshotPath and republishes mmap-backed.
func TestRefresherPersistsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.snap")
	built := testSnapshot(t, 10)
	st := New(Options{})
	r := NewRefresher(st, SourceFunc(func(ctx context.Context) (*Snapshot, error) {
		return built, nil
	}), 0)
	r.SnapshotPath = path
	if !r.RefreshOnce(context.Background()) {
		t.Fatal("refresh did not publish")
	}
	snap := st.Current()
	if !snap.Mapped() {
		t.Fatal("published snapshot is not file-backed")
	}
	if !reflect.DeepEqual(snap.Entries(), built.Entries()) {
		t.Errorf("persisted snapshot diverges from the built one")
	}
	if rs := r.Stats(); rs.Persisted != 1 || rs.PersistErrors != 0 {
		t.Errorf("persist counters = %+v", rs)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("snapshot file missing: %v", err)
	}
}

// TestRefresherPersistFailureFallsBack pins that an unwritable path
// degrades to publishing the heap snapshot rather than failing the
// refresh.
func TestRefresherPersistFailureFallsBack(t *testing.T) {
	built := testSnapshot(t, 3)
	st := New(Options{})
	r := NewRefresher(st, SourceFunc(func(ctx context.Context) (*Snapshot, error) {
		return built, nil
	}), 0)
	r.SnapshotPath = filepath.Join(t.TempDir(), "no", "such", "dir", "map.snap")
	if !r.RefreshOnce(context.Background()) {
		t.Fatal("refresh did not publish despite persist fallback")
	}
	if st.Current().Mapped() {
		t.Fatal("snapshot claims to be file-backed after a failed persist")
	}
	if rs := r.Stats(); rs.Persisted != 0 || rs.PersistErrors != 1 {
		t.Errorf("persist counters = %+v", rs)
	}
}

func benchmarkSnapshotLookup(b *testing.B, mapped bool) {
	base, err := netsim.ParsePrefix24("10.10.0.0/24")
	if err != nil {
		b.Fatal(err)
	}
	snap := testSnapshot(b, 4096)
	if mapped {
		path := filepath.Join(b.TempDir(), "census.snap")
		if err := SaveSnapshotFile(path, snap); err != nil {
			b.Fatal(err)
		}
		if snap, err = OpenSnapshotFile(path); err != nil {
			b.Fatal(err)
		}
		defer snap.Close()
		// Steady-state serving: the lazy cache is warm after first touch.
		for i := 0; i < 4096; i++ {
			snap.LookupPrefix(base + netsim.Prefix24(i))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := base + netsim.Prefix24(i%4096)
		if _, ok := snap.LookupPrefix(p); !ok {
			b.Fatalf("miss at %v", p)
		}
	}
}

func BenchmarkSnapshotLookupHeap(b *testing.B)   { benchmarkSnapshotLookup(b, false) }
func BenchmarkSnapshotLookupMapped(b *testing.B) { benchmarkSnapshotLookup(b, true) }
