package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
	"unsafe"

	"anycastmap/internal/census"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
)

// snapfile.go — the versioned on-disk snapshot format and its mmap-backed
// reader.
//
// A census campaign's product — the anycast map — is rebuilt in minutes
// but served for hours, and at paper scale the build happens on a census
// box while the serving daemon wants to boot instantly and stay light.
// The snapshot file makes the product a first-class artifact: one
// little-endian, CRC-guarded, page-aligned-friendly file whose prefix
// index is binary-searchable *in place*. anycastd maps it read-only:
// serving needs no up-front decode (entries decode lazily, one at a time,
// on first lookup) and no resident heap proportional to the census — the
// kernel page cache owns the bytes.
//
// Layout (all integers little-endian):
//
//	off 0   magic "ACMSNAP1" (8 bytes)
//	    8   u32 format version (1)
//	    12  u32 entry count
//	    16  u64 round
//	    24  u32 rounds combined
//	    28  u32 distinct ASes
//	    32  i64 builtAt (unix nanoseconds)
//	    40  u64 total replicas
//	    48  u32 health blob length (gob census.CampaignHealth)
//	    52  u32 entries blob length
//	    56  u32 reserved (0)
//	    60  u32 IEEE CRC32 of everything past the 64-byte header
//	    64  health blob, padded to 4-byte alignment
//	        prefixes: count × u32, sorted ascending (the search index)
//	        offsets:  (count+1) × u32 into the entries blob
//	        entries blob
//
// The prefix array and offset table are 4-byte aligned by construction,
// so on little-endian hosts the reader casts the mapped bytes straight to
// []Prefix24 / []uint32 — zero copy, zero decode. Big-endian hosts fall
// back to a decoded copy of the two index arrays (entries still decode
// lazily from the map).

// SnapshotFileMagic leads every snapshot file.
const SnapshotFileMagic = "ACMSNAP1"

const (
	snapFileVersion   = 1
	snapHeaderLen     = 64
	snapMaxFileBytes  = 1 << 34 // 16 GiB: far beyond any real map, stops hostile headers
	snapMaxEntryCount = 1 << 28
)

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mapping owns one mmap'd (or, off unix, heap-read) snapshot file and
// refcounts its readers. The owner reference is held by the Snapshot and
// dropped by Close; lookups pin the mapping with acquire/release around
// raw-memory access. The last release unmaps, so a hot-swap never yanks
// pages out from under an in-flight reader.
type mapping struct {
	data   []byte
	mapped bool // true when data needs munmap
	refs   atomic.Int64
}

// acquire takes a reader reference; it fails only after the last
// reference died (the mapping is gone and a newer snapshot must be live).
func (m *mapping) acquire() bool {
	for {
		r := m.refs.Load()
		if r <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops one reference, unmapping on the last.
func (m *mapping) release() {
	if m.refs.Add(-1) == 0 && m.mapped {
		munmapFile(m.data)
		m.data = nil
	}
}

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putStr(b *bytes.Buffer, s string) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(s)))
	b.Write(tmp[:n])
	b.WriteString(s)
}

func putUv(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

// encodeSnapEntry appends one entry's blob encoding (everything except
// the prefix, which lives in the index array).
func encodeSnapEntry(b *bytes.Buffer, e *Entry) error {
	if e.ASN < 0 || e.Replicas < 0 {
		return fmt.Errorf("store: entry %v has negative ASN or replica count", e.Prefix)
	}
	putUv(b, uint64(e.ASN))
	putUv(b, uint64(e.Replicas))
	putStr(b, e.ASName)
	putStr(b, e.Category)
	putUv(b, uint64(len(e.Cities)))
	for _, c := range e.Cities {
		putStr(b, c)
	}
	putUv(b, uint64(len(e.Instances)))
	for _, in := range e.Instances {
		var flags byte
		if in.Located {
			flags |= 1
		}
		b.WriteByte(flags)
		var tmp [16]byte
		binary.LittleEndian.PutUint64(tmp[0:], math.Float64bits(in.Lat))
		binary.LittleEndian.PutUint64(tmp[8:], math.Float64bits(in.Lon))
		b.Write(tmp[:])
		putStr(b, in.ViaVP)
		putStr(b, in.City)
		putStr(b, in.CC)
	}
	return nil
}

func takeUv(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("store: truncated or invalid %s", what)
	}
	return v, p[n:], nil
}

func takeStr(p []byte, what string) (string, []byte, error) {
	n, p, err := takeUv(p, what)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(p)) {
		return "", nil, fmt.Errorf("store: %s length %d exceeds payload", what, n)
	}
	// string() copies: nothing decoded here may point into the mapping,
	// or cached entries would dangle after the unmap.
	return string(p[:n]), p[n:], nil
}

// decodeSnapEntry parses one entry blob into a fully heap-owned Entry.
// Derived fields (the cached prefix string, instance unit vectors) are
// recomputed here exactly as NewSnapshot computes them, so a decoded
// entry is deep-equal to its heap-built twin.
func decodeSnapEntry(p []byte, prefix netsim.Prefix24) (*Entry, error) {
	e := &Entry{Prefix: prefix, prefixStr: prefix.String()}
	var v uint64
	var err error
	if v, p, err = takeUv(p, "entry ASN"); err != nil {
		return nil, err
	}
	if v > 1<<31 {
		return nil, fmt.Errorf("store: entry ASN %d out of range", v)
	}
	e.ASN = int(v)
	if v, p, err = takeUv(p, "entry replicas"); err != nil {
		return nil, err
	}
	if v > 1<<31 {
		return nil, fmt.Errorf("store: entry replica count %d out of range", v)
	}
	e.Replicas = int(v)
	if e.ASName, p, err = takeStr(p, "entry AS name"); err != nil {
		return nil, err
	}
	if e.Category, p, err = takeStr(p, "entry category"); err != nil {
		return nil, err
	}
	var n uint64
	if n, p, err = takeUv(p, "entry city count"); err != nil {
		return nil, err
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("store: entry city count %d exceeds payload", n)
	}
	if n > 0 {
		e.Cities = make([]string, n)
		for i := range e.Cities {
			if e.Cities[i], p, err = takeStr(p, "entry city"); err != nil {
				return nil, err
			}
		}
	}
	if n, p, err = takeUv(p, "entry instance count"); err != nil {
		return nil, err
	}
	// Every instance costs at least 17 bytes (flags + two f64s).
	if n > uint64(len(p))/17+1 {
		return nil, fmt.Errorf("store: entry instance count %d exceeds payload", n)
	}
	if n > 0 {
		e.Instances = make([]Instance, n)
		for i := range e.Instances {
			in := &e.Instances[i]
			if len(p) < 17 {
				return nil, fmt.Errorf("store: truncated entry instance")
			}
			in.Located = p[0]&1 != 0
			in.Lat = math.Float64frombits(binary.LittleEndian.Uint64(p[1:]))
			in.Lon = math.Float64frombits(binary.LittleEndian.Uint64(p[9:]))
			in.vec = geo.UnitVec(geo.Coord{Lat: in.Lat, Lon: in.Lon})
			p = p[17:]
			if in.ViaVP, p, err = takeStr(p, "instance VP"); err != nil {
				return nil, err
			}
			if in.City, p, err = takeStr(p, "instance city"); err != nil {
				return nil, err
			}
			if in.CC, p, err = takeStr(p, "instance cc"); err != nil {
				return nil, err
			}
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("store: entry has %d trailing bytes", len(p))
	}
	return e, nil
}

// WriteSnapshot serializes the snapshot in the on-disk format. The bytes
// are a pure function of the snapshot's contents. Works for both heap and
// mapped snapshots (re-encoding a mapped one decodes each entry once).
func WriteSnapshot(buf *bytes.Buffer, s *Snapshot) error {
	var health bytes.Buffer
	if err := gob.NewEncoder(&health).Encode(s.health); err != nil {
		return fmt.Errorf("store: encoding snapshot health: %w", err)
	}

	var entries bytes.Buffer
	offsets := make([]uint32, 0, len(s.prefixes)+1)
	for i := range s.prefixes {
		offsets = append(offsets, uint32(entries.Len()))
		e := s.entryAt(i)
		if e == nil {
			return fmt.Errorf("store: entry %d is unreadable", i)
		}
		if err := encodeSnapEntry(&entries, e); err != nil {
			return err
		}
		if entries.Len() > 1<<31 {
			return fmt.Errorf("store: entries blob exceeds 2 GiB")
		}
	}
	offsets = append(offsets, uint32(entries.Len()))

	var payload bytes.Buffer
	payload.Write(health.Bytes())
	for payload.Len()%4 != 0 {
		payload.WriteByte(0)
	}
	for _, p := range s.prefixes {
		putU32(&payload, uint32(p))
	}
	for _, o := range offsets {
		putU32(&payload, o)
	}
	payload.Write(entries.Bytes())

	hdr := make([]byte, snapHeaderLen)
	copy(hdr, SnapshotFileMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapFileVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(s.prefixes)))
	binary.LittleEndian.PutUint64(hdr[16:], s.round)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(s.rounds))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(s.ases))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(s.builtAt.UnixNano()))
	binary.LittleEndian.PutUint64(hdr[40:], uint64(s.totalReplicas))
	binary.LittleEndian.PutUint32(hdr[48:], uint32(health.Len()))
	binary.LittleEndian.PutUint32(hdr[52:], uint32(entries.Len()))
	binary.LittleEndian.PutUint32(hdr[60:], crc32.ChecksumIEEE(payload.Bytes()))

	buf.Write(hdr)
	buf.Write(payload.Bytes())
	return nil
}

// SaveSnapshotFile writes the snapshot atomically: a temp file in the
// same directory, synced, then renamed over path. A reader (or a crash)
// never observes a half-written snapshot, and an old mapping of the
// replaced file stays valid — the rename unlinks the name, not the pages.
func SaveSnapshotFile(path string, s *Snapshot) error {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// OpenSnapshotFile maps a snapshot file for serving. The whole file is
// validated before the snapshot escapes — magic, version, region bounds,
// CRC, offset monotonicity — so a truncated or corrupt file is rejected
// here, never after a hot-swap. The returned snapshot serves lookups
// straight off the page cache: the prefix index binary-searches the
// mapped bytes and entries decode lazily on first access. Close it (or
// let Store.Publish close it on replacement) to drop the owner reference.
func OpenSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < snapHeaderLen {
		return nil, fmt.Errorf("store: snapshot file %s: %d bytes is shorter than the header", path, fi.Size())
	}
	if fi.Size() > snapMaxFileBytes {
		return nil, fmt.Errorf("store: snapshot file %s: %d bytes exceeds the %d cap", path, fi.Size(), int64(snapMaxFileBytes))
	}
	data, mapped, err := mmapFile(f, int(fi.Size()))
	if err != nil {
		return nil, fmt.Errorf("store: mapping snapshot file %s: %w", path, err)
	}
	snap, err := openSnapshotBytes(data, mapped)
	if err != nil {
		if mapped {
			munmapFile(data)
		}
		return nil, fmt.Errorf("store: snapshot file %s: %w", path, err)
	}
	return snap, nil
}

// openSnapshotBytes validates an in-memory snapshot image and builds the
// serving Snapshot over it.
func openSnapshotBytes(data []byte, mapped bool) (*Snapshot, error) {
	if len(data) < snapHeaderLen || string(data[:8]) != SnapshotFileMagic {
		return nil, fmt.Errorf("not a snapshot file")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != snapFileVersion {
		return nil, fmt.Errorf("unsupported snapshot format version %d", v)
	}
	count := binary.LittleEndian.Uint32(data[12:])
	round := binary.LittleEndian.Uint64(data[16:])
	rounds := binary.LittleEndian.Uint32(data[24:])
	ases := binary.LittleEndian.Uint32(data[28:])
	builtNanos := int64(binary.LittleEndian.Uint64(data[32:]))
	totalReplicas := binary.LittleEndian.Uint64(data[40:])
	healthLen := binary.LittleEndian.Uint32(data[48:])
	entriesLen := binary.LittleEndian.Uint32(data[52:])
	wantCRC := binary.LittleEndian.Uint32(data[60:])

	if count > snapMaxEntryCount || totalReplicas > 1<<40 || rounds > 1<<20 {
		return nil, fmt.Errorf("snapshot header out of range (%d entries)", count)
	}
	healthPad := (4 - healthLen%4) % 4
	want := uint64(snapHeaderLen) + uint64(healthLen) + uint64(healthPad) +
		4*uint64(count) + 4*uint64(count+1) + uint64(entriesLen)
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("snapshot is %d bytes, header describes %d (truncated or trailing garbage)", len(data), want)
	}
	if got := crc32.ChecksumIEEE(data[snapHeaderLen:]); got != wantCRC {
		return nil, fmt.Errorf("snapshot payload CRC mismatch (file %08x, computed %08x)", wantCRC, got)
	}

	var health census.CampaignHealth
	healthBlob := data[snapHeaderLen : snapHeaderLen+healthLen]
	if err := gob.NewDecoder(bytes.NewReader(healthBlob)).Decode(&health); err != nil {
		return nil, fmt.Errorf("decoding snapshot health: %w", err)
	}

	prefOff := uint64(snapHeaderLen) + uint64(healthLen) + uint64(healthPad)
	offOff := prefOff + 4*uint64(count)
	blobOff := offOff + 4*uint64(count+1)

	var prefixes []netsim.Prefix24
	var offsets []uint32
	if hostLittleEndian {
		// Zero-copy views into the mapping: Prefix24 and the offsets are
		// u32, the regions are 4-aligned by construction, and the file is
		// little-endian — binary search reads the page cache directly.
		if count > 0 {
			prefixes = unsafe.Slice((*netsim.Prefix24)(unsafe.Pointer(&data[prefOff])), count)
		}
		offsets = unsafe.Slice((*uint32)(unsafe.Pointer(&data[offOff])), count+1)
	} else {
		prefixes = make([]netsim.Prefix24, count)
		for i := range prefixes {
			prefixes[i] = netsim.Prefix24(binary.LittleEndian.Uint32(data[prefOff+4*uint64(i):]))
		}
		offsets = make([]uint32, count+1)
		for i := range offsets {
			offsets[i] = binary.LittleEndian.Uint32(data[offOff+4*uint64(i):])
		}
	}
	for i := 0; i < int(count); i++ {
		if prefixes != nil && i > 0 && prefixes[i] <= prefixes[i-1] {
			return nil, fmt.Errorf("snapshot prefixes not strictly ascending at %d", i)
		}
		if offsets[i] > offsets[i+1] {
			return nil, fmt.Errorf("snapshot entry offsets not monotone at %d", i)
		}
	}
	if offsets[0] != 0 || offsets[count] != entriesLen {
		return nil, fmt.Errorf("snapshot entry offsets disagree with blob length")
	}

	m := &mapping{data: data, mapped: mapped}
	m.refs.Store(1) // the owner reference, dropped by Close
	s := &Snapshot{
		round:         round,
		rounds:        int(rounds),
		builtAt:       time.Unix(0, builtNanos),
		health:        health,
		prefixes:      prefixes,
		ases:          int(ases),
		totalReplicas: int(totalReplicas),
		m:             m,
		entryOff:      offsets,
		entriesBlob:   data[blobOff:],
		lazy:          make([]atomic.Pointer[Entry], count),
	}
	return s, nil
}
