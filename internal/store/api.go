package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"anycastmap/internal/netsim"
	"anycastmap/internal/obs"
)

// APIConfig tunes the HTTP layer.
type APIConfig struct {
	// MaxInFlight bounds concurrently-served requests; excess requests
	// are rejected with 503 instead of queueing without bound. Zero
	// means 256.
	MaxInFlight int
	// MaxBatch bounds the /v1/lookup/batch list size; zero means 1024.
	MaxBatch int
	// MaxBodyBytes bounds the /v1/lookup/batch request body; zero means
	// 1 MiB. Oversize bodies are rejected with 413.
	MaxBodyBytes int64
	// Metrics, when set, receives the per-endpoint request series and is
	// served at GET /metrics in Prometheus text format. The store (and
	// refresher, when present) series are registered on it too.
	Metrics *obs.Registry
}

func (c APIConfig) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return 256
}

func (c APIConfig) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 1024
}

func (c APIConfig) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}

// endpointMetrics is one endpoint's latency/volume counters. latency is
// the optional scrape-side histogram; the atomics stay authoritative for
// /v1/stats (and back the scraped counters via read-through functions).
type endpointMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	rejected atomic.Uint64
	totalNs  atomic.Int64
	latency  *obs.Histogram
}

// EndpointStats is the JSON shape of one endpoint's counters.
type EndpointStats struct {
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	Rejected  uint64  `json:"rejected"`
	AvgMicros float64 `json:"avg_latency_us"`
}

func (m *endpointMetrics) stats() EndpointStats {
	st := EndpointStats{
		Requests: m.requests.Load(),
		Errors:   m.errors.Load(),
		Rejected: m.rejected.Load(),
	}
	if st.Requests > 0 {
		st.AvgMicros = float64(m.totalNs.Load()) / float64(st.Requests) / 1e3
	}
	return st
}

// API is the anycastd HTTP surface over a Store: /v1/lookup,
// /v1/lookup/batch, /v1/snapshot, /v1/stats and /healthz. It implements
// http.Handler.
type API struct {
	store     *Store
	refresher *Refresher // optional, enriches /v1/stats
	mux       *http.ServeMux
	sem       chan struct{}
	maxBatch  int
	maxBody   int64
	registry  *obs.Registry
	metrics   map[string]*endpointMetrics
}

// NewAPI builds the handler. refresher may be nil for a static index.
// When cfg.Metrics is set, the store, refresher and per-endpoint series
// are registered on it and GET /metrics serves the scrape.
func NewAPI(st *Store, refresher *Refresher, cfg APIConfig) *API {
	a := &API{
		store:     st,
		refresher: refresher,
		mux:       http.NewServeMux(),
		sem:       make(chan struct{}, cfg.maxInFlight()),
		maxBatch:  cfg.maxBatch(),
		maxBody:   cfg.maxBodyBytes(),
		registry:  cfg.Metrics,
		metrics:   map[string]*endpointMetrics{},
	}
	if a.registry != nil {
		RegisterMetrics(a.registry, st, refresher)
	}
	a.handle("GET /healthz", "healthz", a.handleHealth)
	a.handle("GET /v1/lookup", "lookup", a.handleLookup)
	a.handle("POST /v1/lookup/batch", "batch", a.handleBatch)
	a.handle("GET /v1/snapshot", "snapshot", a.handleSnapshot)
	a.handle("GET /v1/prefixes", "prefixes", a.handlePrefixes)
	a.handle("GET /v1/stats", "stats", a.handleStats)
	if a.registry != nil {
		scrape := a.registry.Handler()
		a.handle("GET /metrics", "metrics", func(w http.ResponseWriter, r *http.Request) int {
			scrape.ServeHTTP(w, r)
			return http.StatusOK
		})
	}
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// handle registers a pattern with the concurrency bound and per-endpoint
// latency accounting wrapped around it. With a registry configured, each
// endpoint also gets anycastmap_http_* series labelled endpoint=name,
// reading through to the same atomics /v1/stats samples.
func (a *API) handle(pattern, name string, h func(http.ResponseWriter, *http.Request) int) {
	m := &endpointMetrics{}
	a.metrics[name] = m
	if a.registry != nil {
		l := obs.L("endpoint", name)
		a.registry.CounterFunc("anycastmap_http_requests_total", "HTTP requests served, by endpoint.", m.requests.Load, l)
		a.registry.CounterFunc("anycastmap_http_request_errors_total", "HTTP requests that returned a 4xx/5xx status, by endpoint.", m.errors.Load, l)
		a.registry.CounterFunc("anycastmap_http_requests_rejected_total", "HTTP requests shed with 503 at the concurrency bound, by endpoint.", m.rejected.Load, l)
		m.latency = a.registry.Histogram("anycastmap_http_request_seconds", "HTTP request latency, by endpoint.", obs.FastBuckets, l)
	}
	a.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		select {
		case a.sem <- struct{}{}:
			defer func() { <-a.sem }()
		default:
			m.rejected.Add(1)
			http.Error(w, `{"error":"server at capacity"}`, http.StatusServiceUnavailable)
			return
		}
		start := time.Now()
		status := h(w, r)
		d := time.Since(start)
		m.requests.Add(1)
		m.totalNs.Add(d.Nanoseconds())
		m.latency.Observe(d.Seconds())
		if status >= 400 {
			m.errors.Add(1)
		}
	})
}

// LookupResponse is the JSON shape of one classification.
type LookupResponse struct {
	IP      string `json:"ip"`
	Anycast bool   `json:"anycast"`
	Prefix  string `json:"prefix,omitempty"`
	*Entry
	Version uint64 `json:"snapshot_version"`
}

// lookupScratch is the reusable per-request state of the single-lookup
// endpoint. The old shape allocated a fresh trimmed Entry copy per
// request just to drop the instances from the JSON; pooling the
// response struct and the trimmed copy keeps the handler's own work to
// the one unavoidable allocation (the IP string) regardless of how many
// instances the entry carries — TestLookupResponseAllocs pins it.
type lookupScratch struct {
	resp    LookupResponse
	trimmed Entry
	ipBuf   [15]byte
}

var lookupScratchPool = sync.Pool{New: func() any { return new(lookupScratch) }}

// fill renders one answer into the scratch and returns the pooled
// response value. The result aliases the scratch: marshal it before the
// scratch goes back to the pool.
func (sc *lookupScratch) fill(ans Answer, withInstances bool) *LookupResponse {
	sc.resp = LookupResponse{
		IP:      string(netsim.AppendIP(sc.ipBuf[:0], ans.IP)),
		Anycast: ans.Anycast,
		Version: ans.Version,
	}
	if ans.Entry != nil {
		sc.resp.Prefix = ans.Entry.PrefixString()
		if withInstances {
			sc.resp.Entry = ans.Entry
		} else {
			sc.trimmed = *ans.Entry
			sc.trimmed.Instances = nil
			sc.resp.Entry = &sc.trimmed
		}
	}
	return &sc.resp
}


func (a *API) handleHealth(w http.ResponseWriter, _ *http.Request) int {
	if !a.store.Ready() {
		return writeJSONStatus(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
	}
	snap := a.store.Current()
	body := map[string]any{
		"status":   "ok",
		"version":  snap.Version(),
		"prefixes": snap.Len(),
	}
	// A degraded campaign still serves (the paper's censuses survived
	// PlanetLab attrition the same way), but the health check says so:
	// the body flips to "degraded" and names the quarantined count while
	// the 200 keeps load balancers routing to the node.
	if h := snap.Health(); h.Degraded() {
		body["status"] = "degraded"
		body["quarantined_vps"] = len(h.Quarantined)
	}
	return writeJSONStatus(w, http.StatusOK, body)
}

// handleLookup classifies one IP: GET /v1/lookup?ip=8.8.8.8[&instances=1].
func (a *API) handleLookup(w http.ResponseWriter, r *http.Request) int {
	raw := r.URL.Query().Get("ip")
	if raw == "" {
		return writeJSONStatus(w, http.StatusBadRequest, errBody("missing ?ip="))
	}
	ip, err := netsim.ParseIP(raw)
	if err != nil {
		return writeJSONStatus(w, http.StatusBadRequest, errBody(err.Error()))
	}
	if !a.store.Ready() {
		return writeJSONStatus(w, http.StatusServiceUnavailable, errBody("no snapshot yet"))
	}
	ans := a.store.Lookup(ip)
	sc := lookupScratchPool.Get().(*lookupScratch)
	defer lookupScratchPool.Put(sc)
	return writeJSONStatus(w, http.StatusOK, sc.fill(ans, r.URL.Query().Get("instances") != ""))
}

// handleBatch classifies a JSON list of IPs: POST /v1/lookup/batch with
// body ["8.8.8.8", "1.1.1.1"] (or {"ips": [...]}).
func (a *API) handleBatch(w http.ResponseWriter, r *http.Request) int {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, a.maxBody))
	if err != nil {
		// An oversize body is the client exceeding a documented limit,
		// not a malformed request: 413, matching the oversize-batch path.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return writeJSONStatus(w, http.StatusRequestEntityTooLarge,
				errBody(fmt.Sprintf("body exceeds limit of %d bytes", tooLarge.Limit)))
		}
		return writeJSONStatus(w, http.StatusBadRequest, errBody(fmt.Sprintf("bad batch body: %v", err)))
	}
	var raw []string
	if err := json.Unmarshal(body, &raw); err != nil {
		// Accept the wrapped form too.
		var alt struct {
			IPs []string `json:"ips"`
		}
		if err2 := json.Unmarshal(body, &alt); err2 != nil || alt.IPs == nil {
			return writeJSONStatus(w, http.StatusBadRequest, errBody(fmt.Sprintf("bad batch body: %v", err)))
		}
		raw = alt.IPs
	}
	if len(raw) == 0 {
		return writeJSONStatus(w, http.StatusBadRequest, errBody("empty batch"))
	}
	if len(raw) > a.maxBatch {
		return writeJSONStatus(w, http.StatusRequestEntityTooLarge,
			errBody(fmt.Sprintf("batch of %d exceeds limit %d", len(raw), a.maxBatch)))
	}
	ips := make([]netsim.IP, len(raw))
	for i, sIP := range raw {
		ip, err := netsim.ParseIP(sIP)
		if err != nil {
			return writeJSONStatus(w, http.StatusBadRequest, errBody(err.Error()))
		}
		ips[i] = ip
	}
	if !a.store.Ready() {
		return writeJSONStatus(w, http.StatusServiceUnavailable, errBody("no snapshot yet"))
	}
	answers := a.store.LookupBatch(ips)
	// One response slice plus one trimmed-entry slice for the whole
	// batch, instead of one heap Entry per anycast answer.
	out := make([]LookupResponse, len(answers))
	trimmed := make([]Entry, len(answers))
	for i, ans := range answers {
		out[i] = LookupResponse{IP: ans.IP.String(), Anycast: ans.Anycast, Version: ans.Version}
		if ans.Entry != nil {
			out[i].Prefix = ans.Entry.PrefixString()
			trimmed[i] = *ans.Entry
			trimmed[i].Instances = nil
			out[i].Entry = &trimmed[i]
		}
	}
	return writeJSONStatus(w, http.StatusOK, out)
}

// SnapshotInfo is the JSON shape of /v1/snapshot.
type SnapshotInfo struct {
	Version       uint64    `json:"version"`
	CensusRound   uint64    `json:"census_round"`
	CensusesMixed int       `json:"censuses_combined"`
	BuiltAt       time.Time `json:"built_at"`
	Prefixes      int       `json:"anycast_prefixes"`
	ASes          int       `json:"ases"`
	Replicas      int       `json:"replicas"`
	// Mapped reports whether the snapshot serves from an mmap-backed file
	// rather than the heap.
	Mapped bool `json:"mapped"`
}

func (a *API) handleSnapshot(w http.ResponseWriter, _ *http.Request) int {
	snap := a.store.Current()
	if snap == nil {
		return writeJSONStatus(w, http.StatusServiceUnavailable, errBody("no snapshot yet"))
	}
	return writeJSONStatus(w, http.StatusOK, SnapshotInfo{
		Version:       snap.Version(),
		CensusRound:   snap.Round(),
		CensusesMixed: snap.Rounds(),
		BuiltAt:       snap.BuiltAt(),
		Prefixes:      snap.Len(),
		ASes:          snap.ASes(),
		Replicas:      snap.TotalReplicas(),
		Mapped:        snap.Mapped(),
	})
}

// PrefixesResponse is the JSON shape of /v1/prefixes.
type PrefixesResponse struct {
	Version  uint64   `json:"snapshot_version"`
	Total    int      `json:"total"`
	Prefixes []string `json:"prefixes"`
}

// handlePrefixes lists indexed anycast /24s in prefix order: GET
// /v1/prefixes?limit=N (default 100, capped at 10000). It walks the
// prefix index directly — no entry ever decodes — so discovering a
// served deployment (the route smoke test's first step) costs O(limit)
// string renders even on a million-entry mapped snapshot.
func (a *API) handlePrefixes(w http.ResponseWriter, r *http.Request) int {
	limit := 100
	if raw := r.URL.Query().Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			return writeJSONStatus(w, http.StatusBadRequest, errBody("bad ?limit="))
		}
		limit = v
	}
	if limit > 10000 {
		limit = 10000
	}
	snap := a.store.AcquirePinned()
	defer snap.Unpin()
	if snap == nil {
		return writeJSONStatus(w, http.StatusServiceUnavailable, errBody("no snapshot yet"))
	}
	n := snap.Len()
	resp := PrefixesResponse{Version: snap.Version(), Total: n}
	if n > limit {
		n = limit
	}
	resp.Prefixes = make([]string, n)
	for i := 0; i < n; i++ {
		resp.Prefixes[i] = snap.PrefixAt(i).String()
	}
	return writeJSONStatus(w, http.StatusOK, resp)
}

func (a *API) handleStats(w http.ResponseWriter, _ *http.Request) int {
	body := map[string]any{
		"store":     a.store.Stats(),
		"endpoints": a.endpointStats(),
	}
	if snap := a.store.Current(); snap != nil {
		body["campaign_health"] = snap.Health()
	}
	if a.refresher != nil {
		body["refresher"] = a.refresher.Stats()
	}
	return writeJSONStatus(w, http.StatusOK, body)
}

func (a *API) endpointStats() map[string]EndpointStats {
	out := make(map[string]EndpointStats, len(a.metrics))
	for name, m := range a.metrics {
		out[name] = m.stats()
	}
	return out
}

func errBody(msg string) map[string]string { return map[string]string{"error": msg} }

func writeJSONStatus(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return http.StatusInternalServerError
	}
	return status
}
