//go:build !unix

package store

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap reads the file into the
// heap; the snapshot then behaves like a mapped one minus the page-cache
// residency (refcounting still gates access, munmap is a no-op).
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func munmapFile([]byte) {}
