package store

import (
	"context"
	"reflect"
	"testing"
	"time"

	"anycastmap/internal/bgp"
	"anycastmap/internal/cities"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

// smallSource wires a CensusSource over a reduced world, the same shape
// cmd/anycastd builds at startup.
func smallSource(t testing.TB) *CensusSource {
	t.Helper()
	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 2000
	cfg.Seed = 77
	w := netsim.New(cfg)
	db := cities.Default()
	return &CensusSource{
		World:       w,
		Cities:      db,
		Platform:    platform.PlanetLab(db),
		Table:       bgp.FromWorld(w),
		Registry:    w.Registry,
		Hitlist:     hitlist.FromWorld(w).PruneNeverAlive(),
		Rounds:      1,
		VPsPerRound: 80,
		Seed:        77,
	}
}

func TestCensusSourceBuildsServableSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real census round")
	}
	cs := smallSource(t)
	snap, err := cs.Build(context.Background())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if snap.Len() == 0 {
		t.Fatal("census detected no anycast")
	}
	if snap.Round() != 1 || snap.Rounds() != 1 {
		t.Errorf("round bookkeeping: %d/%d", snap.Round(), snap.Rounds())
	}

	// Every indexed deployment must be answerable through the store.
	st := New(Options{})
	st.Publish(snap)
	for _, e := range snap.Entries() {
		ans := st.Lookup(e.Prefix.Host(1))
		if !ans.Anycast || ans.Entry.ASN != e.ASN {
			t.Fatalf("entry %v not servable: %+v", e.Prefix, ans)
		}
	}

	// A second build advances the round counter: the freshness loop.
	snap2, err := cs.Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Round() != 2 {
		t.Errorf("second build round = %d, want 2", snap2.Round())
	}
}

// A distributed refresh — the rounds leased out to an in-process agent
// fleet — must publish the exact snapshot the in-process executor
// builds: same entries, same health, same round bookkeeping.
func TestCensusSourceDistributedMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real census rounds")
	}
	local := smallSource(t)
	localSnap, err := local.Build(context.Background())
	if err != nil {
		t.Fatalf("local build: %v", err)
	}

	dist := smallSource(t)
	dist.Agents = 4
	distSnap, err := dist.Build(context.Background())
	if err != nil {
		t.Fatalf("distributed build: %v", err)
	}

	if !reflect.DeepEqual(localSnap.Entries(), distSnap.Entries()) {
		t.Fatalf("distributed snapshot entries diverge: %d local vs %d distributed",
			len(localSnap.Entries()), len(distSnap.Entries()))
	}
	if !reflect.DeepEqual(localSnap.Health(), distSnap.Health()) {
		t.Fatalf("health diverges: %+v vs %+v", localSnap.Health(), distSnap.Health())
	}
	if localSnap.Round() != distSnap.Round() || localSnap.Rounds() != distSnap.Rounds() {
		t.Fatalf("round bookkeeping diverges: %d/%d vs %d/%d",
			localSnap.Round(), localSnap.Rounds(), distSnap.Round(), distSnap.Rounds())
	}
}

func TestCensusSourceCancellation(t *testing.T) {
	cs := smallSource(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if snap, err := cs.Build(ctx); err == nil || snap != nil {
		t.Fatalf("cancelled build returned (%v, %v)", snap, err)
	}
}

func TestRefresherOverCensusSource(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real census rounds")
	}
	st := New(Options{})
	r := NewRefresher(st, smallSource(t), time.Hour)
	if !r.RefreshOnce(context.Background()) {
		t.Fatal("census refresh failed")
	}
	if !st.Ready() || st.Current().Len() == 0 {
		t.Fatal("refresh published nothing")
	}
}
