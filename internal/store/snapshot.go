// Package store is the serving layer over census results: the paper's
// public anycast map (Sec. 2.3, ref [21]) turned into a queryable index.
// A census campaign produces an immutable, versioned Snapshot — every
// detected anycast /24 with its AS attribution, replica count and
// geolocated instances — indexed for O(log n) per-IP lookup. A Store
// publishes snapshots through an atomic pointer so readers never take a
// lock, layers a sharded LRU cache over hot single-IP lookups, and a
// Refresher hot-swaps fresh censuses in the background with zero reader
// downtime.
package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anycastmap/internal/analysis"
	"anycastmap/internal/asdb"
	"anycastmap/internal/census"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
)

// Instance is one geolocated anycast replica of a deployment.
type Instance struct {
	// City and CC identify the classified location; empty when the
	// replica's disk contained no known city.
	City string `json:"city,omitempty"`
	CC   string `json:"cc,omitempty"`
	// Lat/Lon are the city coordinates when located, otherwise the
	// centre of the constraining disk.
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	// ViaVP is the vantage point whose disk isolated the replica.
	ViaVP string `json:"via_vp"`
	// Located is false for enumerated-but-unplaced replicas.
	Located bool `json:"located"`

	// vec is the Earth-centered unit vector of (Lat, Lon), derived at
	// construction/decode time (never serialized) so the routing
	// engine's nearest-replica scan is one dot product per instance.
	vec [3]float64
}

// UnitVec returns the precomputed unit vector of the instance's
// coordinates (geo.UnitVec of Lat/Lon).
func (in *Instance) UnitVec() [3]float64 { return in.vec }

// Entry is one detected anycast /24 in a snapshot.
type Entry struct {
	Prefix   netsim.Prefix24 `json:"-"`
	ASN      int             `json:"asn"`
	ASName   string          `json:"as_name,omitempty"`
	Category string          `json:"category,omitempty"`
	// Replicas is the conservative replica count (the MIS lower bound).
	Replicas int `json:"replicas"`
	// Cities is the sorted distinct set of located replica cities.
	Cities []string `json:"cities,omitempty"`
	// Instances carries the individual geolocated replicas.
	Instances []Instance `json:"instances,omitempty"`

	// prefixStr caches Prefix.String(), derived at construction/decode
	// time so hot response paths render the CIDR without allocating.
	prefixStr string
}

// PrefixString returns the cached CIDR form of the entry's prefix. It
// only allocates for entries built outside NewSnapshot/decodeSnapEntry
// (struct literals in tests).
func (e *Entry) PrefixString() string {
	if e.prefixStr != "" {
		return e.prefixStr
	}
	return e.Prefix.String()
}

// Snapshot is one immutable, versioned index over a census campaign's
// findings. All fields are written once during construction (plus the
// version stamp at publish time) and never mutated afterwards, so any
// number of readers may share a snapshot without synchronization.
type Snapshot struct {
	version uint64
	round   uint64
	rounds  int
	builtAt time.Time
	health  census.CampaignHealth

	// prefixes is sorted ascending; entries is parallel to it. The pair
	// is the O(log n) lookup index: a /24 probe key binary-searches
	// prefixes and lands on its entry. For a file-backed snapshot
	// (OpenSnapshotFile) prefixes is a zero-copy view into the mapping,
	// entries is nil, and the lazy table below takes its place.
	prefixes []netsim.Prefix24
	entries  []Entry

	ases          int
	totalReplicas int

	// File-backed serving state (snapfile.go). m refcounts the mapped
	// bytes; entriesBlob/entryOff address each entry's encoding inside
	// them; lazy caches decoded entries (heap copies, safe to hold after
	// the unmap) so a hot /24 decodes exactly once. Raw-memory access —
	// LookupPrefix's binary search, an entry's first decode — must happen
	// under an acquired mapping reference (Store.Acquire does this).
	m           *mapping
	entriesBlob []byte
	entryOff    []uint32
	lazy        []atomic.Pointer[Entry]
	decodeErrs  atomic.Uint64
	closed      atomic.Bool
	allOnce     sync.Once
	all         []Entry
}

// NewSnapshot indexes a finding set. round is the census round the
// campaign ended on and rounds how many censuses were combined; reg
// resolves AS names and categories (nil leaves them empty). Duplicate
// prefixes keep the last finding.
func NewSnapshot(fs []analysis.Finding, reg *asdb.Registry, round uint64, rounds int) *Snapshot {
	s := &Snapshot{
		round:   round,
		rounds:  rounds,
		builtAt: time.Now(),
	}

	sorted := make([]analysis.Finding, len(fs))
	copy(sorted, fs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Prefix < sorted[j].Prefix })

	ases := make(map[int]bool)
	for _, f := range sorted {
		e := Entry{
			Prefix:    f.Prefix,
			prefixStr: f.Prefix.String(),
			ASN:       f.ASN,
			Replicas:  f.Result.Count(),
			Cities:    f.Result.Cities(),
		}
		if reg != nil {
			if as, ok := reg.ByASN(f.ASN); ok {
				e.ASName, e.Category = as.Name, as.Category.String()
			}
		}
		for _, r := range f.Result.Replicas {
			in := Instance{ViaVP: r.VP, Located: r.Located}
			if r.Located {
				in.City, in.CC = r.City.Name, r.City.CC
				in.Lat, in.Lon = r.City.Loc.Lat, r.City.Loc.Lon
			} else {
				in.Lat, in.Lon = r.Disk.Center.Lat, r.Disk.Center.Lon
			}
			in.vec = geo.UnitVec(geo.Coord{Lat: in.Lat, Lon: in.Lon})
			e.Instances = append(e.Instances, in)
		}
		if n := len(s.prefixes); n > 0 && s.prefixes[n-1] == f.Prefix {
			s.totalReplicas += e.Replicas - s.entries[n-1].Replicas
			s.entries[n-1] = e
			continue
		}
		s.prefixes = append(s.prefixes, f.Prefix)
		s.entries = append(s.entries, e)
		ases[f.ASN] = true
		s.totalReplicas += e.Replicas
	}
	s.ases = len(ases)
	return s
}

// Lookup classifies a single IP against the index: the entry of its /24
// when that /24 was detected anycast, or (nil, false).
func (s *Snapshot) Lookup(ip netsim.IP) (*Entry, bool) {
	return s.LookupPrefix(ip.Prefix())
}

// LookupPrefix is Lookup at /24 granularity. For a file-backed snapshot
// the caller must hold an acquired mapping reference (Store lookups do).
func (s *Snapshot) LookupPrefix(p netsim.Prefix24) (*Entry, bool) {
	i := sort.Search(len(s.prefixes), func(i int) bool { return s.prefixes[i] >= p })
	if i < len(s.prefixes) && s.prefixes[i] == p {
		e := s.entryAt(i)
		return e, e != nil
	}
	return nil, false
}

// entryAt returns the i-th entry, decoding it from the mapped blob on
// first access for file-backed snapshots. A decode failure (a CRC-valid
// file from a buggy writer) is counted and reported as absent rather than
// poisoning the index.
func (s *Snapshot) entryAt(i int) *Entry {
	if s.m == nil {
		return &s.entries[i]
	}
	if e := s.lazy[i].Load(); e != nil {
		return e
	}
	e, err := decodeSnapEntry(s.entriesBlob[s.entryOff[i]:s.entryOff[i+1]], s.prefixes[i])
	if err != nil {
		s.decodeErrs.Add(1)
		return nil
	}
	if !s.lazy[i].CompareAndSwap(nil, e) {
		e = s.lazy[i].Load()
	}
	return e
}

// Mapped reports whether the snapshot serves from a mapped file.
func (s *Snapshot) Mapped() bool { return s.m != nil }

// Pin takes a reader reference on a file-backed snapshot's mapping so
// raw-memory access (LookupPrefix, a first entry decode) stays valid
// against a concurrent Publish unmapping it. It reports false only when
// the mapping is already dead — the snapshot was replaced and its last
// reader finished — in which case the caller must reload the store's
// current snapshot. Heap-built snapshots (and nil) pin trivially.
// Unlike Store.Acquire, Pin/Unpin allocate nothing, so per-query hot
// loops can pin without a release closure.
func (s *Snapshot) Pin() bool {
	if s == nil || s.m == nil {
		return true
	}
	return s.m.acquire()
}

// Unpin releases a Pin. It is nil-safe and a no-op for heap-built
// snapshots, so callers may defer it unconditionally.
func (s *Snapshot) Unpin() {
	if s != nil && s.m != nil {
		s.m.release()
	}
}

// MappingRefs returns the live reference count of a file-backed
// snapshot's mapping (the owner reference counts as one until Close),
// and 0 for heap-built snapshots. Tests use it to assert hot-swapped
// mappings drain to zero.
func (s *Snapshot) MappingRefs() int64 {
	if s == nil || s.m == nil {
		return 0
	}
	return s.m.refs.Load()
}

// PrefixAt returns the i-th indexed /24 in ascending prefix order. For
// a file-backed snapshot the caller must hold a Pin.
func (s *Snapshot) PrefixAt(i int) netsim.Prefix24 { return s.prefixes[i] }

// DecodeErrors counts lazy entry decodes that failed (0 on a healthy
// snapshot; non-zero only for a CRC-valid file with malformed entries).
func (s *Snapshot) DecodeErrors() uint64 { return s.decodeErrs.Load() }

// Close drops a file-backed snapshot's owner reference; the underlying
// file unmaps once the last concurrent reader releases it. Heap-built
// snapshots ignore Close. Store.Publish closes the snapshot it replaces,
// so explicit Closes are only needed for snapshots that never publish.
func (s *Snapshot) Close() error {
	if s.m != nil && !s.closed.Swap(true) {
		s.m.release()
	}
	return nil
}

// SetHealth records the campaign health of the snapshot's build. Like
// every other field it must be set before the snapshot is published.
func (s *Snapshot) SetHealth(h census.CampaignHealth) { s.health = h }

// Health returns the campaign health recorded at build time. The zero
// value means a clean campaign (or a snapshot built before health
// tracking).
func (s *Snapshot) Health() census.CampaignHealth { return s.health }

// Degraded reports whether the snapshot's campaign quarantined any
// vantage point.
func (s *Snapshot) Degraded() bool { return s.health.Degraded() }

// Version is the publish stamp, 0 before the snapshot is published.
func (s *Snapshot) Version() uint64 { return s.version }

// Round is the census round the snapshot's campaign ended on.
func (s *Snapshot) Round() uint64 { return s.round }

// Rounds is how many censuses were min-RTT-combined into the snapshot.
func (s *Snapshot) Rounds() int { return s.rounds }

// BuiltAt is the construction time.
func (s *Snapshot) BuiltAt() time.Time { return s.builtAt }

// Len returns the number of indexed anycast /24s. prefixes rather than
// entries is counted because a file-backed snapshot has no entries slice.
func (s *Snapshot) Len() int { return len(s.prefixes) }

// ASes returns the number of distinct origin ASes.
func (s *Snapshot) ASes() int { return s.ases }

// TotalReplicas returns the summed conservative replica counts.
func (s *Snapshot) TotalReplicas() int { return s.totalReplicas }

// Entries exposes the indexed entries in prefix order. The slice is the
// snapshot's own storage: callers must treat it as read-only. On a
// file-backed snapshot the first call decodes every entry into a
// memoized heap slice (callers needing the full set pay the decode once;
// single-IP lookups never do) and must run under an acquired mapping
// reference, as Store.Acquire arranges.
func (s *Snapshot) Entries() []Entry {
	if s.m == nil {
		return s.entries
	}
	s.allOnce.Do(func() {
		out := make([]Entry, len(s.prefixes))
		for i := range out {
			if e := s.entryAt(i); e != nil {
				out[i] = *e
			} else {
				out[i] = Entry{Prefix: s.prefixes[i]}
			}
		}
		s.all = out
	})
	return s.all
}
