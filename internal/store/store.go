package store

import (
	"sync/atomic"

	"anycastmap/internal/netsim"
)

// Options sizes a Store.
type Options struct {
	// CacheSize is the total LRU capacity in single-IP answers; zero
	// means 65,536.
	CacheSize int
	// CacheShards is the number of LRU shards (rounded up to a power of
	// two); zero means 16.
	CacheShards int
}

// Store publishes census snapshots to concurrent readers. The current
// snapshot hangs off an atomic pointer: lookups never take a lock on the
// index, and Publish swaps a fresh snapshot in one pointer store while
// in-flight readers keep the one they loaded. A sharded LRU absorbs hot
// single-IP traffic; its entries self-invalidate on swap via version tags.
type Store struct {
	snap    atomic.Pointer[Snapshot]
	version atomic.Uint64
	cache   *cache

	lookups atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
	swaps   atomic.Uint64
}

// New builds an empty store; it answers negatively until the first
// Publish.
func New(opt Options) *Store {
	return &Store{cache: newCache(opt.CacheSize, opt.CacheShards)}
}

// Publish stamps the snapshot with the next version and makes it the one
// every subsequent Lookup sees. It returns the assigned version. The
// snapshot must not be mutated after publishing. The snapshot it
// replaces is Closed: for a file-backed predecessor that drops the owner
// reference, so its file unmaps as soon as the last in-flight reader
// releases it (new readers can no longer acquire it — they load the
// fresh snapshot).
func (s *Store) Publish(snap *Snapshot) uint64 {
	v := s.version.Add(1)
	snap.version = v
	old := s.snap.Swap(snap)
	s.swaps.Add(1)
	if old != nil && old != snap {
		old.Close()
	}
	return v
}

// Current returns the live snapshot, or nil before the first Publish.
// For file-backed snapshots, prefer Acquire around any use that touches
// entries or the prefix index: Current alone does not pin the mapping
// against a concurrent Publish unmapping it.
func (s *Store) Current() *Snapshot { return s.snap.Load() }

// Acquire returns the live snapshot pinned against unmapping, plus a
// release function (call it when done; it is cheap and nil-safe to defer
// even when the snapshot is nil). For heap-built snapshots the pin is
// free. The retry loop handles the one race: a reader that loads a
// snapshot just as a Publish replaces and closes it finds the mapping
// dead and simply loads the successor.
func (s *Store) Acquire() (*Snapshot, func()) {
	for {
		snap := s.snap.Load()
		if snap == nil || snap.m == nil {
			return snap, func() {}
		}
		if snap.m.acquire() {
			return snap, func() { snap.m.release() }
		}
	}
}

// AcquirePinned is Acquire without the release closure: the returned
// snapshot is pinned (call Snapshot.Unpin when done; it is nil-safe).
// Unlike Acquire it allocates nothing even for mapped snapshots, so it
// is the acquire path for per-query hot loops — the routing front-end
// and the store's own lookup miss path.
func (s *Store) AcquirePinned() *Snapshot {
	for {
		snap := s.snap.Load()
		if snap == nil || snap.Pin() {
			return snap
		}
	}
}

// Ready reports whether a snapshot has been published.
func (s *Store) Ready() bool { return s.snap.Load() != nil }

// Answer is the result of classifying one IP.
type Answer struct {
	IP      netsim.IP
	Anycast bool
	// Entry is the deployment the IP's /24 belongs to; nil for unicast.
	Entry *Entry
	// Version is the snapshot version that produced the answer; 0 means
	// the store had no snapshot yet.
	Version uint64
}

// Lookup classifies one IP against the current snapshot, consulting the
// LRU first. It is safe for any number of concurrent callers, including
// during a Publish.
func (s *Store) Lookup(ip netsim.IP) Answer {
	s.lookups.Add(1)
	snap := s.snap.Load()
	if snap == nil {
		return Answer{IP: ip}
	}
	if e, v, ok := s.cache.get(ip, snap.version); ok {
		s.hits.Add(1)
		return Answer{IP: ip, Anycast: e != nil, Entry: e, Version: v}
	}
	s.misses.Add(1)
	// Cache miss: the index walk touches raw snapshot memory, so pin the
	// mapping for its duration. The answer itself is heap-owned (decoded
	// entries never point into the mapping) and outlives the pin.
	snap = s.AcquirePinned()
	if snap == nil {
		return Answer{IP: ip}
	}
	e, ok := snap.Lookup(ip)
	snap.Unpin()
	if !ok {
		e = nil
	}
	s.cache.put(ip, e, snap.version)
	return Answer{IP: ip, Anycast: ok, Entry: e, Version: snap.version}
}

// LookupBatch classifies a batch against one consistent snapshot: every
// answer carries the same version even if a swap lands mid-batch. Batch
// lookups bypass the LRU — they walk the index directly, which for bulk
// traffic is cheaper than churning the cache.
func (s *Store) LookupBatch(ips []netsim.IP) []Answer {
	out := make([]Answer, len(ips))
	snap := s.AcquirePinned()
	defer snap.Unpin()
	s.lookups.Add(uint64(len(ips)))
	if snap == nil {
		for i, ip := range ips {
			out[i] = Answer{IP: ip}
		}
		return out
	}
	s.misses.Add(uint64(len(ips)))
	for i, ip := range ips {
		e, ok := snap.Lookup(ip)
		out[i] = Answer{IP: ip, Anycast: ok, Entry: e, Version: snap.version}
	}
	return out
}

// Stats is a point-in-time copy of the store counters.
type Stats struct {
	Lookups   uint64  `json:"lookups"`
	CacheHits uint64  `json:"cache_hits"`
	Misses    uint64  `json:"cache_misses"`
	HitRate   float64 `json:"cache_hit_rate"`
	Cached    int     `json:"cached_answers"`
	Swaps     uint64  `json:"snapshot_swaps"`
	Version   uint64  `json:"snapshot_version"`
}

// Stats samples the counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Lookups:   s.lookups.Load(),
		CacheHits: s.hits.Load(),
		Misses:    s.misses.Load(),
		Cached:    s.cache.len(),
		Swaps:     s.swaps.Load(),
		Version:   s.version.Load(),
	}
	if n := st.CacheHits + st.Misses; n > 0 {
		st.HitRate = float64(st.CacheHits) / float64(n)
	}
	return st
}
