package store

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRefresherPanicRecovery(t *testing.T) {
	st := New(Options{})
	first := st.Publish(testSnapshot(t, 3))

	var logged []string
	var mu sync.Mutex
	src := SourceFunc(func(ctx context.Context) (*Snapshot, error) {
		panic("census exploded")
	})
	r := NewRefresher(st, src, time.Minute)
	r.Log = func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, format)
		mu.Unlock()
	}

	if r.RefreshOnce(context.Background()) {
		t.Fatal("panicking refresh reported success")
	}
	if st.Current().Version() != first {
		t.Error("panic replaced the live snapshot")
	}
	stats := r.Stats()
	if stats.Panics != 1 || stats.Failed != 1 || stats.Completed != 0 {
		t.Errorf("stats = %+v", stats)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) == 0 || !strings.Contains(logged[0], "panicked") {
		t.Errorf("panic not logged: %v", logged)
	}
}

func TestRefresherBuildFailureKeepsSnapshot(t *testing.T) {
	st := New(Options{})
	v := st.Publish(testSnapshot(t, 3))
	src := SourceFunc(func(ctx context.Context) (*Snapshot, error) {
		return nil, errors.New("no vantage points")
	})
	r := NewRefresher(st, src, time.Minute)
	if r.RefreshOnce(context.Background()) {
		t.Fatal("failed refresh reported success")
	}
	if st.Current().Version() != v {
		t.Error("failure replaced the live snapshot")
	}
	if r.Stats().Failed != 1 {
		t.Errorf("failed = %d", r.Stats().Failed)
	}
}

func TestRefresherPartialSnapshotStillPublishes(t *testing.T) {
	st := New(Options{})
	src := SourceFunc(func(ctx context.Context) (*Snapshot, error) {
		return testSnapshot(t, 2), errors.New("one VP errored")
	})
	r := NewRefresher(st, src, time.Minute)
	if !r.RefreshOnce(context.Background()) {
		t.Fatal("partial snapshot not published")
	}
	if !st.Ready() || st.Current().Len() != 2 {
		t.Error("partial snapshot not live")
	}
}

func TestRefresherRunStopsOnCancel(t *testing.T) {
	st := New(Options{})
	var builds sync.WaitGroup
	builds.Add(1)
	var once sync.Once
	src := SourceFunc(func(ctx context.Context) (*Snapshot, error) {
		once.Do(builds.Done)
		return testSnapshot(t, 1), nil
	})
	r := NewRefresher(st, src, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		r.Run(ctx)
		close(done)
	}()
	builds.Wait() // first refresh ran because the store was empty
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancellation")
	}
	if !st.Ready() {
		t.Error("initial refresh did not publish")
	}
}
