//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only. The second return reports whether the
// bytes need munmapFile (a zero-length file yields a nil, unmapped slice:
// there is nothing to map, and every region is empty anyway).
func mmapFile(f *os.File, size int) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func munmapFile(data []byte) {
	if data != nil {
		syscall.Munmap(data)
	}
}
