package store

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"anycastmap/internal/analysis"
	"anycastmap/internal/asdb"
	"anycastmap/internal/bgp"
	"anycastmap/internal/census"
	"anycastmap/internal/cities"
	"anycastmap/internal/cluster"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// Source builds fresh snapshots for a Refresher. Build may return both a
// snapshot and an error: a partially-failed campaign (some vantage points
// erroring) still yields publishable, if thinner, results.
type Source interface {
	Build(ctx context.Context) (*Snapshot, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(ctx context.Context) (*Snapshot, error)

// Build implements Source.
func (f SourceFunc) Build(ctx context.Context) (*Snapshot, error) { return f(ctx) }

// Refresher periodically rebuilds the census index in the background and
// hot-swaps it into a Store. Readers keep answering from the previous
// snapshot for the whole (potentially minutes-long) rebuild; the swap
// itself is one atomic pointer store. A panicking build is recovered, the
// old snapshot stays live, and the loop keeps its schedule.
type Refresher struct {
	store    *Store
	src      Source
	interval time.Duration

	// Log, when set, receives one line per refresh outcome.
	Log func(format string, args ...any)

	// SnapshotPath, when set, persists every built snapshot to this file
	// (atomic temp+rename) and republishes it as an mmap-backed snapshot:
	// the daemon then serves from the page cache with no resident heap
	// proportional to targets, and the file doubles as a warm-boot image.
	// A persist or remap failure is counted and logged but never blocks the
	// refresh — the in-heap snapshot publishes instead.
	SnapshotPath string

	// InitialBackoff is the first retry delay when the startup refresh
	// fails; zero means 100ms. Until the first snapshot publishes, Run
	// retries on this capped-exponential schedule instead of sitting dark
	// for a full interval.
	InitialBackoff time.Duration
	// MaxInitialBackoff caps the startup retry delay; zero means 15s
	// (never more than the refresh interval).
	MaxInitialBackoff time.Duration

	completed      atomic.Uint64
	degraded       atomic.Uint64
	degradedBuilds atomic.Uint64
	failed         atomic.Uint64
	panics         atomic.Uint64
	persisted      atomic.Uint64
	persistErrs    atomic.Uint64
	lastNanos      atomic.Int64
}

// NewRefresher wires a refresher; interval <= 0 defaults to 15 minutes.
func NewRefresher(st *Store, src Source, interval time.Duration) *Refresher {
	if interval <= 0 {
		interval = 15 * time.Minute
	}
	return &Refresher{store: st, src: src, interval: interval}
}

// Run refreshes until ctx is cancelled. If the store has no snapshot yet,
// the first refresh starts immediately — and, should it fail, retries on
// a capped exponential backoff (InitialBackoff doubling up to
// MaxInitialBackoff) until a snapshot publishes. Without the retry a
// transient source error at boot left the daemon answering 503 for an
// entire interval. Once a snapshot is live, one refresh runs per
// interval. Run blocks; start it in a goroutine.
func (r *Refresher) Run(ctx context.Context) {
	backoff := r.InitialBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := r.MaxInitialBackoff
	if maxBackoff <= 0 {
		maxBackoff = 15 * time.Second
	}
	if maxBackoff > r.interval {
		maxBackoff = r.interval
	}
	for !r.store.Ready() {
		if r.RefreshOnce(ctx) {
			break
		}
		if ctx.Err() != nil {
			return
		}
		r.logf("store: no snapshot yet, retrying initial refresh in %v", backoff)
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.RefreshOnce(ctx)
		}
	}
}

// RefreshOnce runs one build-and-swap cycle. It never lets a Source panic
// escape: the panic is counted, logged, and the current snapshot stays
// published. It reports whether a new snapshot was published.
func (r *Refresher) RefreshOnce(ctx context.Context) (published bool) {
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			r.panics.Add(1)
			r.failed.Add(1)
			r.logf("store: refresh panicked (old snapshot stays live): %v", p)
		}
		r.lastNanos.Store(time.Since(start).Nanoseconds())
	}()

	snap, err := r.src.Build(ctx)
	if snap == nil {
		r.failed.Add(1)
		if err != nil && ctx.Err() == nil {
			r.logf("store: refresh failed: %v", err)
		}
		return false
	}
	// Two distinct degradation signals, counted separately: the build
	// returning an error alongside a usable snapshot (degradedBuilds), and
	// the campaign itself quarantining a vantage point (degraded). The log
	// line used to fire for the former while only the latter was counted,
	// so /v1/stats drifted from the logs.
	if err != nil {
		r.degradedBuilds.Add(1)
		r.logf("store: refresh degraded (publishing partial snapshot): %v", err)
	}
	if snap.Degraded() {
		r.degraded.Add(1)
		r.logf("store: campaign degraded: %s", snap.Health())
	}
	if r.SnapshotPath != "" {
		if mapped, perr := r.persist(snap); perr != nil {
			r.persistErrs.Add(1)
			r.logf("store: snapshot persist failed (serving from heap): %v", perr)
		} else {
			r.persisted.Add(1)
			snap = mapped
		}
	}
	v := r.store.Publish(snap)
	r.completed.Add(1)
	backing := "heap"
	if snap.Mapped() {
		backing = "mmap"
	}
	r.logf("store: published snapshot v%d: %d anycast /24s, %d ASes, %d replicas, %s-backed (%v)",
		v, snap.Len(), snap.ASes(), snap.TotalReplicas(), backing, time.Since(start).Round(time.Millisecond))
	return true
}

// persist writes the snapshot to SnapshotPath and reopens it as a
// file-backed snapshot. The write is validated by the reopen itself
// (header, CRC, index monotonicity) before anything reaches the store.
func (r *Refresher) persist(snap *Snapshot) (*Snapshot, error) {
	if err := SaveSnapshotFile(r.SnapshotPath, snap); err != nil {
		return nil, err
	}
	return OpenSnapshotFile(r.SnapshotPath)
}

func (r *Refresher) logf(format string, args ...any) {
	if r.Log != nil {
		r.Log(format, args...)
	}
}

// RefresherStats is a point-in-time copy of the refresh counters.
type RefresherStats struct {
	Completed uint64 `json:"completed"`
	// DegradedPublishes counts published snapshots whose campaign
	// quarantined at least one vantage point.
	DegradedPublishes uint64 `json:"degraded_publishes"`
	// DegradedBuilds counts published snapshots whose build also returned
	// an error (some vantage points failed outright).
	DegradedBuilds uint64 `json:"degraded_builds"`
	Failed         uint64 `json:"failed"`
	Panics         uint64 `json:"panics"`
	// Persisted counts snapshots written to SnapshotPath and republished
	// mmap-backed; PersistErrors counts persist attempts that fell back to
	// publishing the in-heap snapshot.
	Persisted     uint64        `json:"persisted,omitempty"`
	PersistErrors uint64        `json:"persist_errors,omitempty"`
	LastRefresh   time.Duration `json:"last_refresh_ns"`
	Interval      time.Duration `json:"interval_ns"`
}

// Stats samples the counters.
func (r *Refresher) Stats() RefresherStats {
	return RefresherStats{
		Completed:         r.completed.Load(),
		DegradedPublishes: r.degraded.Load(),
		DegradedBuilds:    r.degradedBuilds.Load(),
		Failed:            r.failed.Load(),
		Panics:            r.panics.Load(),
		Persisted:         r.persisted.Load(),
		PersistErrors:     r.persistErrs.Load(),
		LastRefresh:       time.Duration(r.lastNanos.Load()),
		Interval:          r.interval,
	}
}

// CensusSource builds snapshots by running real census rounds against the
// world — census.ExecuteContext fan-out, minimum-RTT combination, then the
// detection/enumeration/geolocation analysis — exactly the workflow of the
// paper's Fig. 1, repeated forever as the map's freshness loop.
type CensusSource struct {
	World     *netsim.World
	Cities    *cities.DB
	Platform  *platform.Platform
	Table     *bgp.Table
	Registry  *asdb.Registry
	Hitlist   *hitlist.Hitlist
	Blacklist *prober.Greylist

	// Rounds is the number of censuses combined per snapshot (the paper
	// ran 4); zero means 2 to keep refreshes cheap.
	Rounds int
	// VPsPerRound is the vantage-point sample size per census; zero
	// means 261 (the paper's first-census PlanetLab availability).
	VPsPerRound int
	// Census tunes each round (rate, workers); Seed decorrelates VP
	// sampling across rounds.
	Census census.Config
	Seed   uint64
	// MinSamples gates analysis like census.AnalyzeAll (minimum 2).
	MinSamples int
	// Agents, when positive, runs each refresh's rounds distributed
	// across that many in-process cluster agents (a coordinator leasing
	// target shards to a net.Pipe fleet) instead of the in-process
	// executor. The published snapshot is byte-identical either way.
	Agents int
	// Pipelined, when Agents is zero, runs each round through the
	// shard-pipelined executor: probe results fold into the combined
	// matrix span by span as they land, so peak heap holds in-flight
	// spans instead of a whole round of rows. Byte-identical to the
	// batch executor.
	Pipelined bool
	// SpanTargets is the pipelined probe-span width; zero means the
	// executor default (65,536 targets).
	SpanTargets int
	// Metrics, when set, instruments every campaign this source builds
	// (rounds folded, fold/analyze latency, cert reuse). The instruments
	// outlive individual campaigns, so counters accumulate across
	// refreshes.
	Metrics *census.Metrics
	// ClusterMetrics instruments the per-refresh coordinator when Agents
	// is positive.
	ClusterMetrics *cluster.Metrics

	round atomic.Uint64
}

func (cs *CensusSource) rounds() int {
	if cs.Rounds > 0 {
		return cs.Rounds
	}
	return 2
}

func (cs *CensusSource) vpsPerRound() int {
	if cs.VPsPerRound > 0 {
		return cs.VPsPerRound
	}
	return 261
}

// SetRound moves the census round counter so rounds stay monotone when an
// earlier campaign (e.g. the startup one) already consumed round numbers.
func (cs *CensusSource) SetRound(n uint64) { cs.round.Store(n) }

// Build implements Source: it advances the global census round counter,
// probes, folds, analyzes, and indexes. Rounds stream through a
// census.Campaign — each finished round folds into the combined matrix and
// its rows are released, so a refresh holds one run plus the combination
// no matter how many rounds a snapshot aggregates. Per-VP probing errors
// do not abort the campaign; they are returned alongside the snapshot so
// the caller can publish the partial result and still surface the problem.
func (cs *CensusSource) Build(ctx context.Context) (*Snapshot, error) {
	cfg := cs.Census
	cfg.Seed = cs.Seed
	cp := census.NewCampaign(census.CampaignConfig{Census: cfg, Metrics: cs.Metrics})
	execute := func(ctx context.Context, round uint64, vps []platform.VP) error {
		_, err := cp.ExecuteRound(ctx, cs.World, vps, cs.Hitlist, cs.Blacklist, round)
		return err
	}
	if cs.Pipelined && cs.Agents <= 0 {
		pc := census.PipelineConfig{SpanTargets: cs.SpanTargets}
		execute = func(ctx context.Context, round uint64, vps []platform.VP) error {
			_, err := cp.ExecuteRoundPipelined(ctx, cs.World, vps, cs.Hitlist, cs.Blacklist, round, pc)
			return err
		}
	}
	if cs.Agents > 0 {
		coord, err := cluster.NewCoordinator(cluster.Config{
			Campaign:  cp,
			Targets:   cs.Hitlist.Targets(),
			Blacklist: cs.Blacklist,
			Census:    cfg,
			World:     cs.World.Config(),
			Metrics:   cs.ClusterMetrics,
		})
		if err != nil {
			return nil, err
		}
		fleet, err := cluster.NewHarness(coord, cluster.HarnessConfig{
			Agents: cs.Agents,
			Agent:  cluster.AgentConfig{World: cs.World, Capacity: 2},
		})
		if err != nil {
			coord.Close()
			return nil, err
		}
		defer fleet.Close()
		execute = func(ctx context.Context, round uint64, vps []platform.VP) error {
			_, err := coord.ExecuteRound(ctx, round, vps)
			return err
		}
	}
	var degraded error
	var last uint64
	for i := 0; i < cs.rounds(); i++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		last = cs.round.Add(1)
		vps := cs.Platform.Sample(cs.vpsPerRound(), cs.Seed+last)
		if err := execute(ctx, last, vps); err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			degraded = err
		}
	}
	combined := cp.Combined()
	if combined == nil {
		return nil, fmt.Errorf("store: no census rounds ran")
	}
	analyzeStart := time.Now()
	outcomes := census.AnalyzeAll(cs.Cities, combined, core.Options{}, cs.MinSamples, 0)
	cs.Metrics.ObserveAnalysis(time.Since(analyzeStart))
	findings := analysis.Attribute(outcomes, cs.Table)
	snap := NewSnapshot(findings, cs.Registry, last, cs.rounds())
	snap.SetHealth(cp.Health())
	return snap, degraded
}
