package store

import (
	"math"
	"time"

	"anycastmap/internal/obs"
)

// RegisterMetrics exposes the store's serving counters, the snapshot
// gauges, and (when rf is non-nil) the refresher counters on r. The
// series read through to the same atomics Stats samples, so scraped
// values always match /v1/stats. NewAPI calls this when APIConfig
// carries a registry; call it directly only for daemons serving a store
// without the HTTP API.
func RegisterMetrics(r *obs.Registry, st *Store, rf *Refresher) {
	r.CounterFunc("anycastmap_store_lookups_total", "Single-IP and batch lookups served.", st.lookups.Load)
	r.CounterFunc("anycastmap_store_cache_hits_total", "Lookups answered from the LRU.", st.hits.Load)
	r.CounterFunc("anycastmap_store_cache_misses_total", "Lookups that walked the snapshot index.", st.misses.Load)
	r.CounterFunc("anycastmap_store_snapshot_swaps_total", "Snapshots published (atomic hot-swaps).", st.swaps.Load)
	r.GaugeFunc("anycastmap_store_cached_answers", "Answers currently held by the LRU.", func() float64 {
		return float64(st.cache.len())
	})
	r.GaugeFunc("anycastmap_store_snapshot_version", "Version of the live snapshot (0 before the first publish).", func() float64 {
		return float64(st.version.Load())
	})
	r.GaugeFunc("anycastmap_store_snapshot_age_seconds", "Age of the live snapshot's build (NaN before the first publish).", func() float64 {
		snap := st.Current()
		if snap == nil {
			return math.NaN()
		}
		return time.Since(snap.BuiltAt()).Seconds()
	})
	r.GaugeFunc("anycastmap_store_snapshot_prefixes", "Anycast /24s indexed by the live snapshot.", func() float64 {
		snap := st.Current()
		if snap == nil {
			return 0
		}
		return float64(snap.Len())
	})
	r.GaugeFunc("anycastmap_store_snapshot_quarantined_vps", "Vantage points quarantined by the live snapshot's campaign.", func() float64 {
		snap := st.Current()
		if snap == nil {
			return 0
		}
		return float64(len(snap.Health().Quarantined))
	})
	if rf == nil {
		return
	}
	r.CounterFunc("anycastmap_refresh_completed_total", "Refreshes that published a snapshot.", rf.completed.Load)
	r.CounterFunc("anycastmap_refresh_failed_total", "Refreshes that produced no snapshot.", rf.failed.Load)
	r.CounterFunc("anycastmap_refresh_panics_total", "Refreshes whose build panicked (recovered).", rf.panics.Load)
	r.CounterFunc("anycastmap_refresh_degraded_publishes_total", "Published snapshots whose campaign health quarantined a vantage point.", rf.degraded.Load)
	r.CounterFunc("anycastmap_refresh_degraded_builds_total", "Published snapshots whose build returned an error alongside the snapshot.", rf.degradedBuilds.Load)
	r.GaugeFunc("anycastmap_refresh_last_duration_seconds", "Wall time of the most recent refresh.", func() float64 {
		return time.Duration(rf.lastNanos.Load()).Seconds()
	})
	r.GaugeFunc("anycastmap_refresh_interval_seconds", "Configured refresh interval.", rf.interval.Seconds)
}
