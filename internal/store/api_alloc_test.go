package store

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"anycastmap/internal/netsim"
)

// TestLookupResponseAllocs pins the single-lookup render path's
// allocation budget: one allocation per answer (the IP string the JSON
// shape requires), independent of how many instances the entry carries.
// The pre-pool shape heap-allocated a trimmed Entry copy per request.
func TestLookupResponseAllocs(t *testing.T) {
	st := New(Options{})
	st.Publish(testSnapshot(t, 8))
	ans := st.Lookup(netsim.Prefix24(0x0a0a01).Host(7))
	if !ans.Anycast || ans.Entry == nil {
		t.Fatal("expected an anycast answer")
	}

	sc := &lookupScratch{}
	sc.fill(ans, false) // warm
	got := testing.AllocsPerRun(100, func() {
		sc.fill(ans, false)
	})
	if got > 1 {
		t.Errorf("lookupScratch.fill(withInstances=false) = %.1f allocs/op, want <= 1", got)
	}

	// The budget must not scale with the entry's instance count.
	big := NewSnapshot(mkFindings(t, netsim.Prefix24(0x0a0a00), 1), nil, 1, 1)
	e, ok := big.LookupPrefix(netsim.Prefix24(0x0a0a00))
	if !ok {
		t.Fatal("big snapshot lookup failed")
	}
	for len(e.Instances) < 64 {
		e.Instances = append(e.Instances, e.Instances[0])
	}
	bigAns := Answer{IP: netsim.Prefix24(0x0a0a00).Host(1), Anycast: true, Entry: e, Version: 1}
	sc.fill(bigAns, false)
	if got := testing.AllocsPerRun(100, func() { sc.fill(bigAns, false) }); got > 1 {
		t.Errorf("fill over a 64-instance entry = %.1f allocs/op, want <= 1", got)
	}
}

// TestAcquirePinnedAllocs asserts the closure-free pin path allocates
// nothing, on both heap and mapped snapshots. Store.Acquire's release
// closure costs one allocation per call on mapped snapshots, which is
// why the routing engine (and the store's own miss path) use this one.
func TestAcquirePinnedAllocs(t *testing.T) {
	heap := New(Options{})
	heap.Publish(testSnapshot(t, 4))

	mappedStore := New(Options{})
	path := filepath.Join(t.TempDir(), "census.snap")
	if err := SaveSnapshotFile(path, testSnapshot(t, 4)); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mappedStore.Publish(mapped)

	for _, tc := range []struct {
		name string
		st   *Store
	}{{"heap", heap}, {"mapped", mappedStore}} {
		if got := testing.AllocsPerRun(100, func() {
			snap := tc.st.AcquirePinned()
			snap.Unpin()
		}); got != 0 {
			t.Errorf("%s AcquirePinned+Unpin = %.1f allocs/op, want 0", tc.name, got)
		}
	}
}

func TestAPIPrefixes(t *testing.T) {
	a, _ := testAPI(t)

	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/prefixes?limit=3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/prefixes = %d, want 200", rec.Code)
	}
	var resp PrefixesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	if resp.Total != 8 || len(resp.Prefixes) != 3 {
		t.Fatalf("total=%d prefixes=%v, want total 8 and 3 listed", resp.Total, resp.Prefixes)
	}
	if resp.Prefixes[0] != "10.10.0.0/24" || resp.Prefixes[2] != "10.10.2.0/24" {
		t.Fatalf("prefixes = %v", resp.Prefixes)
	}

	rec = httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/prefixes?limit=0", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("limit=0 = %d, want 400", rec.Code)
	}

	empty := NewAPI(New(Options{}), nil, APIConfig{})
	rec = httptest.NewRecorder()
	empty.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/prefixes", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no snapshot = %d, want 503", rec.Code)
	}
}

func BenchmarkLookupResponse(b *testing.B) {
	st := New(Options{})
	st.Publish(testSnapshot(b, 8))
	ans := st.Lookup(netsim.Prefix24(0x0a0a01).Host(7))
	sc := &lookupScratch{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.fill(ans, false)
	}
}
