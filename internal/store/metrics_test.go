package store

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/cluster"
	"anycastmap/internal/obs"
	"anycastmap/internal/prober"
)

// scrapeMetrics GETs /metrics through the API and parses the text
// exposition into full-series-name (labels included) -> value.
func scrapeMetrics(t *testing.T, a *API) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	a.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q", ct)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// The acceptance criterion for the /metrics surface: after a real
// (distributed) census refresh and some HTTP traffic, every scraped
// counter equals the Stats struct it mirrors — store, refresher,
// endpoints, census campaign, cluster control plane, prober.
func TestMetricsExposition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real census round")
	}
	reg := obs.NewRegistry()
	prober.DefaultMetrics.Register(reg)
	cs := smallSource(t)
	cs.Agents = 2
	cs.Metrics = census.NewMetrics(reg)
	cs.ClusterMetrics = cluster.NewMetrics(reg)
	prober.RegisterGreylistGauge(reg, cs.Blacklist, "blacklist")

	st := New(Options{CacheSize: 64})
	r := NewRefresher(st, cs, time.Hour)
	a := NewAPI(st, r, APIConfig{Metrics: reg})
	if !r.RefreshOnce(context.Background()) {
		t.Fatal("census refresh failed")
	}

	// Serve a little traffic so every endpoint family has samples: two
	// identical lookups (the second hits the LRU), one batch, one stats.
	doJSON(t, a, http.MethodGet, "/v1/lookup?ip=10.9.0.1", "")
	doJSON(t, a, http.MethodGet, "/v1/lookup?ip=10.9.0.1", "")
	doJSON(t, a, http.MethodPost, "/v1/lookup/batch", `["10.9.0.1","10.9.0.2"]`)
	doJSON(t, a, http.MethodGet, "/v1/stats", "")

	m := scrapeMetrics(t, a)

	ss := st.Stats()
	rs := r.Stats()
	storeChecks := map[string]float64{
		"anycastmap_store_lookups_total":              float64(ss.Lookups),
		"anycastmap_store_cache_hits_total":           float64(ss.CacheHits),
		"anycastmap_store_cache_misses_total":         float64(ss.Misses),
		"anycastmap_store_snapshot_swaps_total":       float64(ss.Swaps),
		"anycastmap_store_cached_answers":             float64(ss.Cached),
		"anycastmap_store_snapshot_version":           float64(ss.Version),
		"anycastmap_store_snapshot_prefixes":          float64(st.Current().Len()),
		"anycastmap_refresh_completed_total":          float64(rs.Completed),
		"anycastmap_refresh_failed_total":             float64(rs.Failed),
		"anycastmap_refresh_panics_total":             float64(rs.Panics),
		"anycastmap_refresh_degraded_publishes_total": float64(rs.DegradedPublishes),
		"anycastmap_refresh_degraded_builds_total":    float64(rs.DegradedBuilds),
		"anycastmap_refresh_interval_seconds":         rs.Interval.Seconds(),
	}
	for name, want := range storeChecks {
		got, ok := m[name]
		if !ok {
			t.Errorf("series %s missing from scrape", name)
		} else if got != want {
			t.Errorf("%s = %v, stats say %v", name, got, want)
		}
	}
	if ss.CacheHits == 0 {
		t.Error("repeated lookup did not hit the cache")
	}

	// Campaign instruments: one round folded (Rounds=1, shard path), one
	// batch analysis observed.
	if m["anycastmap_census_rounds_folded_total"] != 1 {
		t.Errorf("rounds folded = %v", m["anycastmap_census_rounds_folded_total"])
	}
	if m["anycastmap_census_analyze_seconds_count"] != 1 {
		t.Errorf("analyze count = %v", m["anycastmap_census_analyze_seconds_count"])
	}

	// Cluster control plane: both agents joined; their frames folded.
	if m["anycastmap_cluster_agents_joined_total"] != 2 {
		t.Errorf("agents joined = %v", m["anycastmap_cluster_agents_joined_total"])
	}
	if m["anycastmap_cluster_frames_folded_total"] == 0 {
		t.Error("no frames folded")
	}

	// Prober: the scraped counters are the package counters.
	proberChecks := map[string]uint64{
		"anycastmap_probe_runs_total":         prober.DefaultMetrics.Runs.Load(),
		"anycastmap_probe_probes_sent_total":  prober.DefaultMetrics.ProbesSent.Load(),
		"anycastmap_probe_echo_replies_total": prober.DefaultMetrics.EchoReplies.Load(),
	}
	for name, want := range proberChecks {
		if got := m[name]; got != float64(want) {
			t.Errorf("%s = %v, prober counters say %d", name, got, want)
		}
	}
	if m["anycastmap_probe_runs_total"] == 0 {
		t.Error("census refresh recorded no probing runs")
	}

	// Per-endpoint series read the same atomics /v1/stats serves.
	for name, em := range a.metrics {
		if name == "metrics" {
			// The scrape's own request is counted after the handler
			// returns, so its counter lags itself by one; skip.
			continue
		}
		key := `{endpoint="` + name + `"}`
		if got := m["anycastmap_http_requests_total"+key]; got != float64(em.requests.Load()) {
			t.Errorf("requests{%s} = %v, endpoint stats say %d", name, got, em.requests.Load())
		}
		if got := m["anycastmap_http_request_seconds_count"+key]; got != float64(em.requests.Load()) {
			t.Errorf("latency count{%s} = %v, want %d", name, got, em.requests.Load())
		}
		if got := m["anycastmap_http_request_errors_total"+key]; got != float64(em.errors.Load()) {
			t.Errorf("errors{%s} = %v, want %d", name, got, em.errors.Load())
		}
	}
	if a.metrics["lookup"].requests.Load() != 2 {
		t.Errorf("lookup requests = %d", a.metrics["lookup"].requests.Load())
	}
}

// Satellite regression: a source that fails its first builds must not
// leave the daemon dark for a full refresh interval — Run retries the
// initial refresh on a short backoff until the first snapshot lands.
func TestRefresherInitialRetryBackoff(t *testing.T) {
	st := New(Options{})
	fails := 3
	var builds atomic.Int32
	src := SourceFunc(func(context.Context) (*Snapshot, error) {
		if builds.Add(1) <= int32(fails) {
			return nil, errors.New("transient source error")
		}
		return testSnapshot(t, 2), nil
	})
	r := NewRefresher(st, src, time.Hour) // interval far beyond the test deadline
	r.InitialBackoff = 2 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	start := time.Now()
	go func() {
		r.Run(ctx)
		close(done)
	}()

	deadline := time.After(5 * time.Second)
	for !st.Ready() {
		select {
		case <-deadline:
			t.Fatalf("store not ready after 5s (%d builds)", builds.Load())
		case <-time.After(time.Millisecond):
		}
	}
	if elapsed := time.Since(start); elapsed >= 5*time.Second {
		t.Fatalf("first snapshot took %v", elapsed)
	}
	stats := r.Stats()
	if stats.Failed != uint64(fails) || stats.Completed != 1 {
		t.Errorf("stats = %+v, want %d failures then 1 completion", stats, fails)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancellation")
	}
}

// The two degradation signals are distinct and separately counted: a
// build that returns an error alongside its snapshot, and a campaign
// that quarantined a vantage point.
func TestRefresherDegradedCountersDistinct(t *testing.T) {
	st := New(Options{})
	mode := 0
	src := SourceFunc(func(context.Context) (*Snapshot, error) {
		switch mode {
		case 0: // build error, healthy campaign
			return testSnapshot(t, 1), errors.New("one VP errored")
		case 1: // clean build, degraded campaign
			snap := testSnapshot(t, 1)
			snap.SetHealth(census.CampaignHealth{Rounds: 1, Quarantined: []string{"vp-7"}})
			return snap, nil
		default: // both at once
			snap := testSnapshot(t, 1)
			snap.SetHealth(census.CampaignHealth{Rounds: 1, Quarantined: []string{"vp-7"}})
			return snap, errors.New("one VP errored")
		}
	})
	r := NewRefresher(st, src, time.Minute)

	reg := obs.NewRegistry()
	RegisterMetrics(reg, st, r)

	for mode = 0; mode < 3; mode++ {
		if !r.RefreshOnce(context.Background()) {
			t.Fatalf("mode %d refresh failed", mode)
		}
	}
	stats := r.Stats()
	if stats.DegradedBuilds != 2 {
		t.Errorf("DegradedBuilds = %d, want 2 (modes 0 and 2)", stats.DegradedBuilds)
	}
	if stats.DegradedPublishes != 2 {
		t.Errorf("DegradedPublishes = %d, want 2 (modes 1 and 2)", stats.DegradedPublishes)
	}
	if stats.Completed != 3 || stats.Failed != 0 {
		t.Errorf("stats = %+v", stats)
	}

	var text strings.Builder
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"anycastmap_refresh_degraded_builds_total 2",
		"anycastmap_refresh_degraded_publishes_total 2",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, text.String())
		}
	}
}

// Satellite regression: a refresher over a distributed source (-agents)
// publishes the exact snapshot the in-process executor builds.
func TestRefresherDistributedPublishesIdenticalSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real census rounds")
	}
	localStore := New(Options{})
	if !NewRefresher(localStore, smallSource(t), time.Hour).RefreshOnce(context.Background()) {
		t.Fatal("local refresh failed")
	}

	dist := smallSource(t)
	dist.Agents = 2
	distStore := New(Options{})
	if !NewRefresher(distStore, dist, time.Hour).RefreshOnce(context.Background()) {
		t.Fatal("distributed refresh failed")
	}

	l, d := localStore.Current(), distStore.Current()
	if !reflect.DeepEqual(l.Entries(), d.Entries()) {
		t.Fatalf("published snapshots diverge: %d local vs %d distributed entries",
			len(l.Entries()), len(d.Entries()))
	}
	if !reflect.DeepEqual(l.Health(), d.Health()) {
		t.Fatalf("health diverges: %+v vs %+v", l.Health(), d.Health())
	}
	if l.Round() != d.Round() || l.Rounds() != d.Rounds() {
		t.Fatalf("round bookkeeping diverges: %d/%d vs %d/%d", l.Round(), l.Rounds(), d.Round(), d.Rounds())
	}
}
