package store

import (
	"context"
	"net/http"
	"testing"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/netsim"
)

func TestCacheEvictsStaleVersionOnGet(t *testing.T) {
	// Regression: get used to MoveToFront before the caller's version
	// check, so entries from dead snapshots were promoted to the hot end
	// of the LRU and could pin old snapshot memory indefinitely. A stale
	// hit must evict the entry instead.
	c := newCache(4, 1)
	ip := netsim.IP(42)
	c.put(ip, &Entry{}, 1)
	if _, _, ok := c.get(ip, 2); ok {
		t.Fatal("stale entry returned as a hit")
	}
	if c.len() != 0 {
		t.Fatalf("stale entry still cached: len = %d", c.len())
	}

	// The promotion bug in full: a stale entry touched by get must not
	// outlive fresher entries under eviction pressure.
	c = newCache(4, 1)
	c.put(netsim.IP(1), &Entry{}, 1) // stale-to-be
	for i := 2; i <= 4; i++ {
		c.put(netsim.IP(i), &Entry{}, 2)
	}
	c.get(netsim.IP(1), 2) // would have promoted ip1 before the fix
	c.put(netsim.IP(5), &Entry{}, 2)
	if _, _, ok := c.get(netsim.IP(2), 2); !ok {
		t.Error("fresh entry evicted while a stale one survived")
	}
	if _, _, ok := c.get(netsim.IP(1), 2); ok {
		t.Error("stale entry survived eviction pressure")
	}
}

func TestStoreLookupAfterSwapRefreshesCache(t *testing.T) {
	st := New(Options{CacheSize: 64})
	st.Publish(testSnapshot(t, 4))
	ip, _ := netsim.ParseIP("10.10.2.7")
	if ans := st.Lookup(ip); ans.Version != 1 {
		t.Fatalf("first lookup version %d", ans.Version)
	}
	st.Publish(testSnapshot(t, 4))
	misses := st.Stats().Misses
	ans := st.Lookup(ip)
	if ans.Version != 2 {
		t.Errorf("post-swap lookup served version %d", ans.Version)
	}
	if st.Stats().Misses != misses+1 {
		t.Error("stale cache entry served as a hit after the swap")
	}
	// And the refreshed entry is a hit on the next lookup.
	hits := st.Stats().CacheHits
	if st.Lookup(ip); st.Stats().CacheHits != hits+1 {
		t.Error("refreshed entry not cached")
	}
}

// degradedSource wires the smallSource testbed over a world whose fault
// plan permanently crashes a share of the vantage points.
func degradedSource(t testing.TB) *CensusSource {
	t.Helper()
	cs := smallSource(t)
	plan, err := netsim.NewFaultPlan(netsim.FaultConfig{
		Seed: 99, CrashFraction: 0.3, CrashStickiness: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs.World = cs.World.WithFaults(plan)
	cs.Census = census.Config{MaxAttempts: 2, RetryBackoff: -1}
	return cs
}

func TestDegradedCampaignServedAndSurfaced(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real census round")
	}
	cs := degradedSource(t)
	snap, err := cs.Build(context.Background())
	if err == nil {
		t.Fatal("degraded campaign built without error")
	}
	if snap == nil {
		t.Fatal("degraded campaign yielded no snapshot")
	}
	h := snap.Health()
	if !snap.Degraded() || len(h.Quarantined) == 0 {
		t.Fatalf("campaign health not degraded: %+v", h)
	}
	if h.Rounds != 1 || h.Completed+len(h.Quarantined) < h.VPRuns {
		t.Errorf("campaign accounting off: %+v", h)
	}
	if snap.Len() == 0 {
		t.Fatal("degraded campaign detected nothing despite surviving VPs")
	}

	// The refresher publishes the partial snapshot and counts the
	// degradation.
	st := New(Options{})
	r := NewRefresher(st, SourceFunc(func(context.Context) (*Snapshot, error) {
		return snap, err
	}), time.Hour)
	if !r.RefreshOnce(context.Background()) {
		t.Fatal("degraded snapshot not published")
	}
	if r.Stats().DegradedPublishes != 1 {
		t.Errorf("degraded publishes = %d, want 1", r.Stats().DegradedPublishes)
	}

	// The operator surfaces: /healthz flips to degraded, /v1/stats carries
	// the campaign health.
	a := NewAPI(st, r, APIConfig{})
	rec, body := doJSON(t, a, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	if body["status"] != "degraded" {
		t.Errorf("healthz status = %v, want degraded", body["status"])
	}
	if int(body["quarantined_vps"].(float64)) != len(h.Quarantined) {
		t.Errorf("healthz quarantined_vps = %v, want %d", body["quarantined_vps"], len(h.Quarantined))
	}

	rec, body = doJSON(t, a, http.MethodGet, "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	ch, ok := body["campaign_health"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing campaign_health: %v", body)
	}
	if got := len(ch["quarantined_vps"].([]any)); got != len(h.Quarantined) {
		t.Errorf("stats quarantined_vps = %d, want %d", got, len(h.Quarantined))
	}
	if int(ch["retries"].(float64)) != h.Retries {
		t.Errorf("stats retries = %v, want %d", ch["retries"], h.Retries)
	}
	ref, ok := body["refresher"].(map[string]any)
	if !ok || int(ref["degraded_publishes"].(float64)) != 1 {
		t.Errorf("refresher stats missing degradation: %v", body["refresher"])
	}

	// Quarantine thins rows but the surviving samples still serve lookups.
	for _, e := range snap.Entries() {
		ans := st.Lookup(e.Prefix.Host(1))
		if !ans.Anycast || ans.Entry.ASN != e.ASN {
			t.Fatalf("entry %v not servable from degraded snapshot: %+v", e.Prefix, ans)
		}
	}
}
