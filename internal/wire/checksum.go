// Package wire implements the on-the-wire packet formats the measurement
// system exchanges: IPv4 headers (RFC 791), ICMP echo and destination
// unreachable messages (RFC 792), and the DNS message subset (RFC 1035,
// plus the CHAOS-class TXT queries of the Fan et al. baseline). The
// simulator's probers serialize real packets through these codecs - the
// Fastping payload signature of Sec. 3.3 lives in the ICMP payload - so the
// measurement path exercises the same parsing any libpcap-based deployment
// would.
package wire

// Checksum computes the Internet checksum (RFC 1071): the 16-bit one's
// complement of the one's complement sum of the data, padding an odd-length
// buffer with a zero byte.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether a buffer containing its own checksum field
// sums to the all-ones pattern, i.e. validates.
func VerifyChecksum(b []byte) bool {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return uint16(sum) == 0xFFFF
}
