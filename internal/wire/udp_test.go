package wire

import (
	"bytes"
	"testing"
)

func TestUDPRoundTrip(t *testing.T) {
	src, dst := uint32(0x0A000001), uint32(0x08080808)
	h := &UDPHeader{SrcPort: 53535, DstPort: 53}
	payload := []byte("dns goes here")
	dgram, err := h.Marshal(src, dst, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, body, err := ParseUDP(dgram, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got != *h || !bytes.Equal(body, payload) {
		t.Fatalf("round trip: %+v %q", got, body)
	}
}

func TestUDPChecksumValidation(t *testing.T) {
	src, dst := uint32(1), uint32(2)
	h := &UDPHeader{SrcPort: 1, DstPort: 53}
	dgram, _ := h.Marshal(src, dst, []byte("x"))
	if _, _, err := ParseUDP(dgram, src, dst+1); err == nil {
		t.Error("wrong pseudo-header accepted")
	}
	dgram[8] ^= 0xFF
	if _, _, err := ParseUDP(dgram, src, dst); err == nil {
		t.Error("corrupted payload accepted")
	}
	if _, _, err := ParseUDP(dgram[:4], src, dst); err == nil {
		t.Error("truncated datagram accepted")
	}
}

func TestUDPOversize(t *testing.T) {
	h := &UDPHeader{SrcPort: 1, DstPort: 2}
	if _, err := h.Marshal(1, 2, make([]byte, 0x10000)); err == nil {
		t.Error("oversized datagram accepted")
	}
}

func TestDNSDatagramFlow(t *testing.T) {
	q, err := BuildCHAOSQuery(77)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ParseDNS(q)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := BuildDNSQueryDatagram(0x0A000001, 0x08080808, 40000, &msg)
	if err != nil {
		t.Fatal(err)
	}
	ip, udp, dns, err := ParseDNSDatagram(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if ip.Protocol != ProtoUDP || udp.DstPort != 53 || dns.ID != 77 {
		t.Fatalf("datagram fields: %+v %+v %+v", ip, udp, dns)
	}
	if dns.Questions[0].Name != HostnameBind {
		t.Errorf("question = %+v", dns.Questions[0])
	}
	// An ICMP packet is not a DNS datagram.
	icmp, _ := BuildEchoRequest(1, 2, 1, 1)
	if _, _, _, err := ParseDNSDatagram(icmp); err == nil {
		t.Error("ICMP accepted as DNS datagram")
	}
}
