package wire

import (
	"bytes"
	"testing"
)

// The fuzz targets harden the parsers against hostile or corrupted
// datagrams: whatever the bytes, parsing must not panic, and anything that
// parses successfully must re-marshal to a semantically identical message.

func FuzzParseIPv4(f *testing.F) {
	seed, _ := BuildEchoRequest(0x01020304, 0x08080808, 1, 2)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, payload, err := ParseIPv4(data)
		if err != nil {
			return
		}
		// A successful parse must re-marshal and re-parse to the same
		// header and payload.
		again, err := hdr.Marshal(payload)
		if err != nil {
			t.Fatalf("re-marshal of parsed header failed: %v", err)
		}
		hdr2, payload2, err := ParseIPv4(again)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if hdr2 != hdr || !bytes.Equal(payload, payload2) {
			t.Fatalf("round trip diverged: %+v vs %+v", hdr, hdr2)
		}
	})
}

func FuzzParseICMP(f *testing.F) {
	echo := &ICMPEcho{ID: 9, Seq: 9, Payload: []byte(FastpingSignature)}
	f.Add(echo.Marshal())
	unreach := &ICMPDestUnreachable{Code: CodeAdminFiltered, Original: []byte("quoted")}
	f.Add(unreach.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ParseICMP(data)
		if err != nil {
			return
		}
		switch {
		case msg.Echo != nil:
			again, err := ParseICMP(msg.Echo.Marshal())
			if err != nil || again.Echo == nil {
				t.Fatalf("echo re-parse failed: %v", err)
			}
			if again.Echo.ID != msg.Echo.ID || again.Echo.Seq != msg.Echo.Seq ||
				!bytes.Equal(again.Echo.Payload, msg.Echo.Payload) {
				t.Fatal("echo round trip diverged")
			}
		case msg.Unreach != nil:
			again, err := ParseICMP(msg.Unreach.Marshal())
			if err != nil || again.Unreach == nil {
				t.Fatalf("unreach re-parse failed: %v", err)
			}
			if again.Code != msg.Code || !bytes.Equal(again.Unreach.Original, msg.Unreach.Original) {
				t.Fatal("unreach round trip diverged")
			}
		}
	})
}

func FuzzParseDNS(f *testing.F) {
	q, _ := BuildCHAOSQuery(1)
	f.Add(q)
	r, _ := BuildCHAOSResponse(1, "site01.example.net")
	f.Add(r)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAB}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ParseDNS(data)
		if err != nil {
			return
		}
		again, err := msg.Marshal()
		if err != nil {
			// Parsed names can contain characters Marshal rejects only
			// via length rules; a parse-only success is acceptable as
			// long as nothing panicked.
			return
		}
		msg2, err := ParseDNS(again)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(msg2.Questions) != len(msg.Questions) || len(msg2.Answers) != len(msg.Answers) {
			t.Fatal("round trip changed the message shape")
		}
	})
}
