package wire

import (
	"encoding/binary"
	"fmt"
)

// TCP flag bits (RFC 793).
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// TCPHeaderLen is the length of a header without options.
const TCPHeaderLen = 20

// TCPHeader is an RFC 793 header without options; the portscanner only
// exchanges bare SYN / SYN-ACK / RST segments.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

// Marshal serializes the header, computing the checksum over the IPv4
// pseudo-header for the given addresses.
func (h *TCPHeader) Marshal(srcIP, dstIP uint32) []byte {
	b := make([]byte, TCPHeaderLen)
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = (TCPHeaderLen / 4) << 4 // data offset
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	binary.BigEndian.PutUint16(b[16:18], tcpChecksum(b, srcIP, dstIP))
	return b
}

// tcpChecksum computes the segment checksum including the pseudo-header.
func tcpChecksum(seg []byte, srcIP, dstIP uint32) uint16 {
	pseudo := make([]byte, 12+len(seg))
	binary.BigEndian.PutUint32(pseudo[0:4], srcIP)
	binary.BigEndian.PutUint32(pseudo[4:8], dstIP)
	pseudo[9] = ProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(seg)))
	copy(pseudo[12:], seg)
	// Zero the checksum field position within the copied segment.
	pseudo[12+16] = 0
	pseudo[12+17] = 0
	return Checksum(pseudo)
}

// ParseTCP decodes a segment, validating length and the pseudo-header
// checksum for the given addresses.
func ParseTCP(b []byte, srcIP, dstIP uint32) (TCPHeader, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, fmt.Errorf("wire: TCP segment truncated at %d bytes", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return TCPHeader{}, fmt.Errorf("wire: bad TCP data offset %d", off)
	}
	got := binary.BigEndian.Uint16(b[16:18])
	if want := tcpChecksum(b, srcIP, dstIP); got != want {
		return TCPHeader{}, fmt.Errorf("wire: TCP checksum %#04x, want %#04x", got, want)
	}
	return TCPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:16]),
	}, nil
}

// BuildSYN assembles the IPv4 + TCP SYN probe of the portscan campaign.
func BuildSYN(srcIP, dstIP uint32, srcPort, dstPort uint16, seq uint32) ([]byte, error) {
	tcp := &TCPHeader{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Flags: TCPFlagSYN, Window: 65535}
	hdr := &IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: srcIP, Dst: dstIP}
	return hdr.Marshal(tcp.Marshal(srcIP, dstIP))
}

// BuildSYNACKResponse assembles the reply to a SYN probe: a SYN-ACK when
// the port is open, an RST-ACK when it is closed.
func BuildSYNACKResponse(synPkt []byte, open bool, serverSeq uint32) ([]byte, error) {
	hdr, payload, err := ParseIPv4(synPkt)
	if err != nil {
		return nil, err
	}
	if hdr.Protocol != ProtoTCP {
		return nil, fmt.Errorf("wire: protocol %d is not TCP", hdr.Protocol)
	}
	syn, err := ParseTCP(payload, hdr.Src, hdr.Dst)
	if err != nil {
		return nil, err
	}
	if syn.Flags&TCPFlagSYN == 0 || syn.Flags&TCPFlagACK != 0 {
		return nil, fmt.Errorf("wire: not a SYN probe (flags %#02x)", syn.Flags)
	}
	flags := uint8(TCPFlagRST | TCPFlagACK)
	if open {
		flags = TCPFlagSYN | TCPFlagACK
	}
	resp := &TCPHeader{
		SrcPort: syn.DstPort,
		DstPort: syn.SrcPort,
		Seq:     serverSeq,
		Ack:     syn.Seq + 1,
		Flags:   flags,
		Window:  65535,
	}
	out := &IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: hdr.Dst, Dst: hdr.Src}
	return out.Marshal(resp.Marshal(hdr.Dst, hdr.Src))
}

// PortOpen decodes a SYN-probe response: true for SYN-ACK, false for RST.
func PortOpen(respPkt []byte) (bool, error) {
	hdr, payload, err := ParseIPv4(respPkt)
	if err != nil {
		return false, err
	}
	if hdr.Protocol != ProtoTCP {
		return false, fmt.Errorf("wire: protocol %d is not TCP", hdr.Protocol)
	}
	tcp, err := ParseTCP(payload, hdr.Src, hdr.Dst)
	if err != nil {
		return false, err
	}
	switch {
	case tcp.Flags&TCPFlagSYN != 0 && tcp.Flags&TCPFlagACK != 0:
		return true, nil
	case tcp.Flags&TCPFlagRST != 0:
		return false, nil
	}
	return false, fmt.Errorf("wire: unexpected TCP flags %#02x", tcp.Flags)
}
