package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// ICMP message types used by the census (RFC 792).
const (
	ICMPEchoReply    = 0
	ICMPDestUnreach  = 3
	ICMPEchoRequest  = 8
	ICMPTimeExceeded = 11
)

// Destination-unreachable codes relevant to the greylist (RFC 1122 and
// RFC 1812): the census encounters codes 9, 10 and 13 (Sec. 3.3).
const (
	CodeNetProhibited  = 9
	CodeHostProhibited = 10
	CodeAdminFiltered  = 13
)

// FastpingSignature is the payload marker of Sec. 3.3: a good measurement
// citizen identifies itself, pointing operators at the project page so they
// can request exclusion.
const FastpingSignature = "anycastmap-census see https://example.org/anycastmap"

// ICMPEcho is an echo request or reply.
type ICMPEcho struct {
	Reply   bool
	ID, Seq uint16
	Payload []byte
}

// Marshal serializes the message with a valid checksum.
func (m *ICMPEcho) Marshal() []byte {
	b := make([]byte, 8+len(m.Payload))
	if m.Reply {
		b[0] = ICMPEchoReply
	} else {
		b[0] = ICMPEchoRequest
	}
	binary.BigEndian.PutUint16(b[4:6], m.ID)
	binary.BigEndian.PutUint16(b[6:8], m.Seq)
	copy(b[8:], m.Payload)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return b
}

// HasSignature reports whether the payload carries the Fastping signature.
func (m *ICMPEcho) HasSignature() bool {
	return bytes.HasPrefix(m.Payload, []byte(FastpingSignature))
}

// ICMPDestUnreachable is a type-3 error quoting the offending datagram.
type ICMPDestUnreachable struct {
	Code uint8
	// Original is the embedded IP header + first 8 payload bytes of the
	// datagram that triggered the error (RFC 792 requires them; the
	// greylist uses them to attribute errors to probes).
	Original []byte
}

// Marshal serializes the error message with a valid checksum.
func (m *ICMPDestUnreachable) Marshal() []byte {
	b := make([]byte, 8+len(m.Original))
	b[0] = ICMPDestUnreach
	b[1] = m.Code
	copy(b[8:], m.Original)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return b
}

// ICMPMessage is the decoded form of any ICMP message the prober handles.
type ICMPMessage struct {
	Type, Code uint8
	Echo       *ICMPEcho            // set for echo request/reply
	Unreach    *ICMPDestUnreachable // set for destination unreachable
}

// ParseICMP decodes an ICMP message, validating length and checksum.
func ParseICMP(b []byte) (ICMPMessage, error) {
	if len(b) < 8 {
		return ICMPMessage{}, fmt.Errorf("wire: ICMP message truncated at %d bytes", len(b))
	}
	if !VerifyChecksum(b) {
		return ICMPMessage{}, fmt.Errorf("wire: ICMP checksum mismatch")
	}
	msg := ICMPMessage{Type: b[0], Code: b[1]}
	switch msg.Type {
	case ICMPEchoRequest, ICMPEchoReply:
		if msg.Code != 0 {
			return ICMPMessage{}, fmt.Errorf("wire: echo with nonzero code %d", msg.Code)
		}
		msg.Echo = &ICMPEcho{
			Reply:   msg.Type == ICMPEchoReply,
			ID:      binary.BigEndian.Uint16(b[4:6]),
			Seq:     binary.BigEndian.Uint16(b[6:8]),
			Payload: b[8:],
		}
	case ICMPDestUnreach:
		msg.Unreach = &ICMPDestUnreachable{Code: msg.Code, Original: b[8:]}
	}
	return msg, nil
}

// BuildEchoRequest assembles a complete IPv4 + ICMP echo request datagram
// as Fastping would put it on the wire, with the census signature in the
// payload.
func BuildEchoRequest(src, dst uint32, id, seq uint16) ([]byte, error) {
	echo := &ICMPEcho{ID: id, Seq: seq, Payload: []byte(FastpingSignature)}
	hdr := &IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: src, Dst: dst}
	return hdr.Marshal(echo.Marshal())
}

// BuildEchoReply assembles the matching reply a responsive target emits,
// echoing the request's identifier, sequence number and payload.
func BuildEchoReply(req []byte) ([]byte, error) {
	hdr, payload, err := ParseIPv4(req)
	if err != nil {
		return nil, err
	}
	if hdr.Protocol != ProtoICMP {
		return nil, fmt.Errorf("wire: protocol %d is not ICMP", hdr.Protocol)
	}
	msg, err := ParseICMP(payload)
	if err != nil {
		return nil, err
	}
	if msg.Echo == nil || msg.Echo.Reply {
		return nil, fmt.Errorf("wire: not an echo request")
	}
	reply := &ICMPEcho{Reply: true, ID: msg.Echo.ID, Seq: msg.Echo.Seq, Payload: msg.Echo.Payload}
	out := &IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: hdr.Dst, Dst: hdr.Src}
	return out.Marshal(reply.Marshal())
}

// BuildAdminProhibited assembles the router-originated type-3 error for a
// filtered probe, quoting the first bytes of the offending datagram as
// RFC 792 requires.
func BuildAdminProhibited(router uint32, code uint8, offending []byte) ([]byte, error) {
	quote := offending
	if len(quote) > IPv4HeaderLen+8 {
		quote = quote[:IPv4HeaderLen+8]
	}
	origHdr, _, err := ParseIPv4(offending)
	if err != nil {
		return nil, err
	}
	msg := &ICMPDestUnreachable{Code: code, Original: quote}
	hdr := &IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: router, Dst: origHdr.Src}
	return hdr.Marshal(msg.Marshal())
}
