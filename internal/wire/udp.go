package wire

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the fixed UDP header size (RFC 768).
const UDPHeaderLen = 8

// UDPHeader is an RFC 768 header; DNS queries and CHAOS probes travel in
// UDP datagrams.
type UDPHeader struct {
	SrcPort, DstPort uint16
}

// Marshal serializes the header and payload with the checksum computed
// over the IPv4 pseudo-header.
func (h *UDPHeader) Marshal(srcIP, dstIP uint32, payload []byte) ([]byte, error) {
	total := UDPHeaderLen + len(payload)
	if total > 0xFFFF {
		return nil, fmt.Errorf("wire: UDP datagram too large (%d bytes)", total)
	}
	b := make([]byte, total)
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(total))
	copy(b[8:], payload)
	ck := udpChecksum(b, srcIP, dstIP)
	if ck == 0 {
		ck = 0xFFFF // RFC 768: transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[6:8], ck)
	return b, nil
}

func udpChecksum(dgram []byte, srcIP, dstIP uint32) uint16 {
	pseudo := make([]byte, 12+len(dgram))
	binary.BigEndian.PutUint32(pseudo[0:4], srcIP)
	binary.BigEndian.PutUint32(pseudo[4:8], dstIP)
	pseudo[9] = ProtoUDP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(dgram)))
	copy(pseudo[12:], dgram)
	pseudo[12+6] = 0
	pseudo[12+7] = 0
	return Checksum(pseudo)
}

// ParseUDP decodes a datagram, validating length and checksum, and returns
// the header and payload.
func ParseUDP(b []byte, srcIP, dstIP uint32) (UDPHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, nil, fmt.Errorf("wire: UDP datagram truncated at %d bytes", len(b))
	}
	total := int(binary.BigEndian.Uint16(b[4:6]))
	if total < UDPHeaderLen || total > len(b) {
		return UDPHeader{}, nil, fmt.Errorf("wire: UDP length %d inconsistent with %d bytes", total, len(b))
	}
	if got := binary.BigEndian.Uint16(b[6:8]); got != 0 {
		want := udpChecksum(b[:total], srcIP, dstIP)
		if want == 0 {
			want = 0xFFFF
		}
		if got != want {
			return UDPHeader{}, nil, fmt.Errorf("wire: UDP checksum %#04x, want %#04x", got, want)
		}
	}
	return UDPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
	}, b[UDPHeaderLen:total], nil
}

// BuildDNSQueryDatagram wraps a DNS message in UDP + IPv4, the full probe
// a dig-style measurement emits (port 53).
func BuildDNSQueryDatagram(srcIP, dstIP uint32, srcPort uint16, msg *DNSMessage) ([]byte, error) {
	payload, err := msg.Marshal()
	if err != nil {
		return nil, err
	}
	udp := &UDPHeader{SrcPort: srcPort, DstPort: 53}
	dgram, err := udp.Marshal(srcIP, dstIP, payload)
	if err != nil {
		return nil, err
	}
	hdr := &IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}
	return hdr.Marshal(dgram)
}

// ParseDNSDatagram unwraps IPv4 + UDP and decodes the DNS message.
func ParseDNSDatagram(pkt []byte) (IPv4Header, UDPHeader, DNSMessage, error) {
	ip, payload, err := ParseIPv4(pkt)
	if err != nil {
		return IPv4Header{}, UDPHeader{}, DNSMessage{}, err
	}
	if ip.Protocol != ProtoUDP {
		return IPv4Header{}, UDPHeader{}, DNSMessage{}, fmt.Errorf("wire: protocol %d is not UDP", ip.Protocol)
	}
	udp, body, err := ParseUDP(payload, ip.Src, ip.Dst)
	if err != nil {
		return IPv4Header{}, UDPHeader{}, DNSMessage{}, err
	}
	msg, err := ParseDNS(body)
	if err != nil {
		return IPv4Header{}, UDPHeader{}, DNSMessage{}, err
	}
	return ip, udp, msg, nil
}
