package wire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// DNS classes and types used by the census and by the CHAOS enumeration
// baseline of Fan et al. (paper reference [25]): a TXT query for
// "hostname.bind" in class CH returns a per-replica server identifier.
const (
	DNSClassIN = 1
	DNSClassCH = 3

	DNSTypeA   = 1
	DNSTypeTXT = 16
)

// HostnameBind is the CHAOS-class name whose TXT record discloses the
// identity of the answering DNS server instance.
const HostnameBind = "hostname.bind"

// DNSQuestion is one query.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSAnswer is one (simplified) answer record; only TXT payloads are
// modelled.
type DNSAnswer struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	TXT   string
}

// DNSMessage is the subset of RFC 1035 the tooling needs: a header, one
// question and optional TXT answers, without compression.
type DNSMessage struct {
	ID        uint16
	Response  bool
	Questions []DNSQuestion
	Answers   []DNSAnswer
}

// Marshal serializes the message (no name compression).
func (m *DNSMessage) Marshal() ([]byte, error) {
	b := make([]byte, 12)
	binary.BigEndian.PutUint16(b[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	binary.BigEndian.PutUint16(b[2:4], flags)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(b[6:8], uint16(len(m.Answers)))
	for _, q := range m.Questions {
		name, err := marshalName(q.Name)
		if err != nil {
			return nil, err
		}
		b = append(b, name...)
		b = binary.BigEndian.AppendUint16(b, q.Type)
		b = binary.BigEndian.AppendUint16(b, q.Class)
	}
	for _, a := range m.Answers {
		name, err := marshalName(a.Name)
		if err != nil {
			return nil, err
		}
		if len(a.TXT) > 255 {
			return nil, fmt.Errorf("wire: TXT string too long (%d bytes)", len(a.TXT))
		}
		b = append(b, name...)
		b = binary.BigEndian.AppendUint16(b, a.Type)
		b = binary.BigEndian.AppendUint16(b, a.Class)
		b = binary.BigEndian.AppendUint32(b, a.TTL)
		b = binary.BigEndian.AppendUint16(b, uint16(1+len(a.TXT)))
		b = append(b, byte(len(a.TXT)))
		b = append(b, a.TXT...)
	}
	return b, nil
}

// ParseDNS decodes a message produced by Marshal (no compression support).
func ParseDNS(b []byte) (DNSMessage, error) {
	if len(b) < 12 {
		return DNSMessage{}, fmt.Errorf("wire: DNS message truncated at %d bytes", len(b))
	}
	m := DNSMessage{
		ID:       binary.BigEndian.Uint16(b[0:2]),
		Response: binary.BigEndian.Uint16(b[2:4])&(1<<15) != 0,
	}
	qd := int(binary.BigEndian.Uint16(b[4:6]))
	an := int(binary.BigEndian.Uint16(b[6:8]))
	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := parseName(b, off)
		if err != nil {
			return DNSMessage{}, err
		}
		off += n
		if off+4 > len(b) {
			return DNSMessage{}, fmt.Errorf("wire: DNS question truncated")
		}
		m.Questions = append(m.Questions, DNSQuestion{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[off : off+2]),
			Class: binary.BigEndian.Uint16(b[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := parseName(b, off)
		if err != nil {
			return DNSMessage{}, err
		}
		off += n
		if off+10 > len(b) {
			return DNSMessage{}, fmt.Errorf("wire: DNS answer truncated")
		}
		a := DNSAnswer{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[off : off+2]),
			Class: binary.BigEndian.Uint16(b[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(b[off+4 : off+8]),
		}
		rdlen := int(binary.BigEndian.Uint16(b[off+8 : off+10]))
		off += 10
		if off+rdlen > len(b) {
			return DNSMessage{}, fmt.Errorf("wire: DNS rdata truncated")
		}
		if a.Type == DNSTypeTXT && rdlen > 0 {
			txtLen := int(b[off])
			if 1+txtLen > rdlen {
				return DNSMessage{}, fmt.Errorf("wire: TXT length %d exceeds rdata %d", txtLen, rdlen)
			}
			a.TXT = string(b[off+1 : off+1+txtLen])
		}
		off += rdlen
		m.Answers = append(m.Answers, a)
	}
	return m, nil
}

// marshalName encodes a dotted name as length-prefixed labels.
func marshalName(name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	var b []byte
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if label == "" {
				return nil, fmt.Errorf("wire: empty label in %q", name)
			}
			if len(label) > 63 {
				return nil, fmt.Errorf("wire: label %q too long", label)
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	b = append(b, 0)
	if len(b) > 255 {
		return nil, fmt.Errorf("wire: name %q too long", name)
	}
	return b, nil
}

// parseName decodes a label sequence starting at off, returning the dotted
// name and the number of bytes consumed.
func parseName(b []byte, off int) (string, int, error) {
	var labels []string
	n := 0
	for {
		if off+n >= len(b) {
			return "", 0, fmt.Errorf("wire: DNS name truncated")
		}
		l := int(b[off+n])
		n++
		if l == 0 {
			break
		}
		if l > 63 {
			return "", 0, fmt.Errorf("wire: label length %d (compression unsupported)", l)
		}
		if off+n+l > len(b) {
			return "", 0, fmt.Errorf("wire: DNS label truncated")
		}
		labels = append(labels, string(b[off+n:off+n+l]))
		n += l
	}
	return strings.Join(labels, "."), n, nil
}

// BuildCHAOSQuery builds the hostname.bind TXT/CH query datagram of the
// CHAOS enumeration baseline.
func BuildCHAOSQuery(id uint16) ([]byte, error) {
	m := &DNSMessage{
		ID:        id,
		Questions: []DNSQuestion{{Name: HostnameBind, Type: DNSTypeTXT, Class: DNSClassCH}},
	}
	return m.Marshal()
}

// BuildCHAOSResponse builds the reply disclosing the server identity.
func BuildCHAOSResponse(id uint16, serverID string) ([]byte, error) {
	m := &DNSMessage{
		ID:       id,
		Response: true,
		Questions: []DNSQuestion{
			{Name: HostnameBind, Type: DNSTypeTXT, Class: DNSClassCH},
		},
		Answers: []DNSAnswer{
			{Name: HostnameBind, Type: DNSTypeTXT, Class: DNSClassCH, TTL: 0, TXT: serverID},
		},
	}
	return m.Marshal()
}
