package wire

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChecksumKnownVector(t *testing.T) {
	// Classic RFC 1071 example.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 4 {
			return true
		}
		// Zero a checksum field, compute, insert, verify.
		data[2], data[3] = 0, 0
		ck := Checksum(data)
		data[2], data[3] = byte(ck>>8), byte(ck)
		return VerifyChecksum(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumOddLength(t *testing.T) {
	b := []byte{0x01, 0x02, 0x03}
	// Must not panic and must self-verify after insertion at offset 0.
	pkt := append([]byte{0, 0}, b...)
	ck := Checksum(pkt)
	pkt[0], pkt[1] = byte(ck>>8), byte(ck)
	if !VerifyChecksum(pkt) {
		t.Error("odd-length checksum does not verify")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := &IPv4Header{
		TOS: 0, ID: 0xBEEF, TTL: 64, Protocol: ProtoICMP,
		Src: uint32(0x0A000001), Dst: uint32(0x08080808),
	}
	payload := []byte("hello anycast")
	pkt, err := h.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, body, err := ParseIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TTL != 64 || got.Protocol != ProtoICMP || got.ID != 0xBEEF {
		t.Errorf("header round trip: %+v", got)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload round trip: %q", body)
	}
}

func TestIPv4Corruption(t *testing.T) {
	h := &IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: 1, Dst: 2}
	pkt, _ := h.Marshal([]byte("x"))
	// Flip a header bit: checksum must catch it.
	pkt[8] ^= 0xFF
	if _, _, err := ParseIPv4(pkt); err == nil {
		t.Error("corrupted header accepted")
	}
	// Truncation.
	if _, _, err := ParseIPv4(pkt[:10]); err == nil {
		t.Error("truncated datagram accepted")
	}
	// Wrong version.
	pkt2, _ := h.Marshal(nil)
	pkt2[0] = 6<<4 | 5
	if _, _, err := ParseIPv4(pkt2); err == nil {
		t.Error("IPv6 version accepted")
	}
}

func TestIPv4TooLarge(t *testing.T) {
	h := &IPv4Header{TTL: 1, Protocol: ProtoUDP}
	if _, err := h.Marshal(make([]byte, 0x10000)); err == nil {
		t.Error("oversized datagram accepted")
	}
}

func TestEchoRequestReplyFlow(t *testing.T) {
	src, dst := uint32(0x01020304), uint32(0x08080808)
	req, err := BuildEchoRequest(src, dst, 0x1234, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The target parses the request and sees the census signature.
	hdr, payload, err := ParseIPv4(req)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Src != src || hdr.Dst != dst {
		t.Error("addressing wrong")
	}
	msg, err := ParseICMP(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Echo == nil || msg.Echo.Reply || msg.Echo.ID != 0x1234 || msg.Echo.Seq != 7 {
		t.Fatalf("echo request decoded wrong: %+v", msg.Echo)
	}
	if !msg.Echo.HasSignature() {
		t.Error("Fastping signature missing from probe payload")
	}

	// The reply mirrors id/seq/payload with swapped addresses.
	rep, err := BuildEchoReply(req)
	if err != nil {
		t.Fatal(err)
	}
	rh, rp, err := ParseIPv4(rep)
	if err != nil {
		t.Fatal(err)
	}
	if rh.Src != dst || rh.Dst != src {
		t.Error("reply addressing not swapped")
	}
	rmsg, err := ParseICMP(rp)
	if err != nil {
		t.Fatal(err)
	}
	if rmsg.Echo == nil || !rmsg.Echo.Reply || rmsg.Echo.ID != 0x1234 || rmsg.Echo.Seq != 7 {
		t.Fatalf("echo reply decoded wrong: %+v", rmsg.Echo)
	}
	// Replying to a reply is an error.
	if _, err := BuildEchoReply(rep); err == nil {
		t.Error("built a reply to a reply")
	}
}

func TestAdminProhibitedFlow(t *testing.T) {
	req, _ := BuildEchoRequest(uint32(0x01020304), uint32(0x08080808), 1, 1)
	errPkt, err := BuildAdminProhibited(uint32(0x0A0A0A0A), CodeAdminFiltered, req)
	if err != nil {
		t.Fatal(err)
	}
	hdr, payload, err := ParseIPv4(errPkt)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Dst != uint32(0x01020304) {
		t.Error("error not routed back to the prober")
	}
	msg, err := ParseICMP(payload)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != ICMPDestUnreach || msg.Code != CodeAdminFiltered {
		t.Errorf("error message type/code = %d/%d", msg.Type, msg.Code)
	}
	// The quote embeds the original header: the prober can attribute the
	// error to its own probe.
	orig, _, err := ParseIPv4(msg.Unreach.Original[:IPv4HeaderLen])
	if err == nil && orig.Dst != uint32(0x08080808) {
		t.Error("quoted datagram does not name the probed target")
	}
	// Codes 9 and 10 round-trip as well.
	for _, code := range []uint8{CodeNetProhibited, CodeHostProhibited} {
		p, _ := BuildAdminProhibited(uint32(9), code, req)
		_, body, _ := ParseIPv4(p)
		m, _ := ParseICMP(body)
		if m.Type != ICMPDestUnreach || m.Code != code {
			t.Errorf("code %d round trip = %d/%d", code, m.Type, m.Code)
		}
	}
}

func TestICMPCorruption(t *testing.T) {
	echo := &ICMPEcho{ID: 1, Seq: 2, Payload: []byte("x")}
	b := echo.Marshal()
	b[4] ^= 0x40
	if _, err := ParseICMP(b); err == nil {
		t.Error("corrupted ICMP accepted")
	}
	if _, err := ParseICMP(b[:4]); err == nil {
		t.Error("truncated ICMP accepted")
	}
}

func TestDNSRoundTrip(t *testing.T) {
	m := &DNSMessage{
		ID: 0xABCD,
		Questions: []DNSQuestion{
			{Name: "example.org", Type: DNSTypeA, Class: DNSClassIN},
		},
	}
	b, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDNS(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xABCD || got.Response || len(got.Questions) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	q := got.Questions[0]
	if q.Name != "example.org" || q.Type != DNSTypeA || q.Class != DNSClassIN {
		t.Errorf("question round trip: %+v", q)
	}
}

func TestCHAOSFlow(t *testing.T) {
	q, err := BuildCHAOSQuery(42)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := ParseDNS(q)
	if err != nil {
		t.Fatal(err)
	}
	if qm.Questions[0].Name != HostnameBind || qm.Questions[0].Class != DNSClassCH {
		t.Fatalf("CHAOS query wrong: %+v", qm.Questions[0])
	}
	r, err := BuildCHAOSResponse(42, "ams01.l.root-servers.org")
	if err != nil {
		t.Fatal(err)
	}
	rm, err := ParseDNS(r)
	if err != nil {
		t.Fatal(err)
	}
	if !rm.Response || rm.ID != 42 {
		t.Error("response flags wrong")
	}
	if len(rm.Answers) != 1 || rm.Answers[0].TXT != "ams01.l.root-servers.org" {
		t.Fatalf("TXT round trip: %+v", rm.Answers)
	}
}

func TestDNSNameValidation(t *testing.T) {
	long := make([]byte, 64)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"a..b", string(long) + ".org"} {
		m := &DNSMessage{Questions: []DNSQuestion{{Name: bad, Type: 1, Class: 1}}}
		if _, err := m.Marshal(); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	// Root name is fine.
	m := &DNSMessage{Questions: []DNSQuestion{{Name: ".", Type: 1, Class: 1}}}
	if _, err := m.Marshal(); err != nil {
		t.Errorf("root name rejected: %v", err)
	}
}

func TestDNSTruncationRejected(t *testing.T) {
	r, _ := BuildCHAOSResponse(1, "id-1")
	for cut := 1; cut < len(r); cut += 3 {
		if _, err := ParseDNS(r[:cut]); err == nil && cut < len(r) {
			// Some prefixes happen to parse as a shorter valid message
			// only if counts allow; with one question+answer they cannot.
			t.Errorf("truncated DNS message of %d bytes accepted", cut)
		}
	}
}

func TestDNSPropertyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	letters := "abcdefghijklmnopqrstuvwxyz0123456789-"
	randLabel := func() string {
		n := 1 + r.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
	for trial := 0; trial < 200; trial++ {
		name := randLabel()
		for i := 0; i < r.Intn(4); i++ {
			name += "." + randLabel()
		}
		m := &DNSMessage{
			ID:        uint16(r.Uint32()),
			Response:  r.Intn(2) == 0,
			Questions: []DNSQuestion{{Name: name, Type: uint16(r.Intn(300)), Class: uint16(1 + r.Intn(4))}},
		}
		if r.Intn(2) == 0 {
			m.Answers = append(m.Answers, DNSAnswer{
				Name: name, Type: DNSTypeTXT, Class: DNSClassCH,
				TTL: r.Uint32(), TXT: randLabel(),
			})
		}
		b, err := m.Marshal()
		if err != nil {
			t.Fatalf("marshal %q: %v", name, err)
		}
		got, err := ParseDNS(b)
		if err != nil {
			t.Fatalf("parse %q: %v", name, err)
		}
		if got.ID != m.ID || got.Response != m.Response || got.Questions[0] != m.Questions[0] {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
		}
		if len(m.Answers) != len(got.Answers) {
			t.Fatal("answer count mismatch")
		}
		if len(m.Answers) == 1 && got.Answers[0].TXT != m.Answers[0].TXT {
			t.Fatal("TXT mismatch")
		}
	}
}

func BenchmarkBuildEchoRequest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildEchoRequest(1, 2, uint16(i), uint16(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseIPv4ICMP(b *testing.B) {
	pkt, _ := BuildEchoRequest(1, 2, 3, 4)
	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, payload, err := ParseIPv4(pkt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseICMP(payload); err != nil {
			b.Fatal(err)
		}
	}
}
