package wire

import (
	"testing"
)

func TestTCPRoundTrip(t *testing.T) {
	src, dst := uint32(0x0A000001), uint32(0x08080808)
	h := &TCPHeader{SrcPort: 54321, DstPort: 443, Seq: 0xDEADBEEF, Ack: 0, Flags: TCPFlagSYN, Window: 65535}
	seg := h.Marshal(src, dst)
	got, err := ParseTCP(seg, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got != *h {
		t.Fatalf("round trip: %+v vs %+v", got, *h)
	}
}

func TestTCPChecksumCoversPseudoHeader(t *testing.T) {
	src, dst := uint32(1), uint32(2)
	h := &TCPHeader{SrcPort: 1, DstPort: 80, Flags: TCPFlagSYN}
	seg := h.Marshal(src, dst)
	// The same bytes validated against different addresses must fail:
	// that is the point of the pseudo-header.
	if _, err := ParseTCP(seg, src, dst+1); err == nil {
		t.Error("segment accepted with wrong pseudo-header addresses")
	}
	// Corruption detection.
	seg[0] ^= 0xFF
	if _, err := ParseTCP(seg, src, dst); err == nil {
		t.Error("corrupted segment accepted")
	}
	if _, err := ParseTCP(seg[:10], src, dst); err == nil {
		t.Error("truncated segment accepted")
	}
}

func TestSYNHandshakeFlow(t *testing.T) {
	srcIP, dstIP := uint32(0x0A000001), uint32(0x08080808)
	syn, err := BuildSYN(srcIP, dstIP, 40001, 443, 7777)
	if err != nil {
		t.Fatal(err)
	}

	// Open port: SYN-ACK with our sequence acknowledged.
	synack, err := BuildSYNACKResponse(syn, true, 1234)
	if err != nil {
		t.Fatal(err)
	}
	open, err := PortOpen(synack)
	if err != nil {
		t.Fatal(err)
	}
	if !open {
		t.Error("SYN-ACK decoded as closed")
	}
	hdr, payload, _ := ParseIPv4(synack)
	if hdr.Src != dstIP || hdr.Dst != srcIP {
		t.Error("response addressing not swapped")
	}
	tcp, err := ParseTCP(payload, hdr.Src, hdr.Dst)
	if err != nil {
		t.Fatal(err)
	}
	if tcp.Ack != 7778 {
		t.Errorf("SYN-ACK acks %d, want seq+1 = 7778", tcp.Ack)
	}
	if tcp.SrcPort != 443 || tcp.DstPort != 40001 {
		t.Error("response ports not swapped")
	}

	// Closed port: RST.
	rst, err := BuildSYNACKResponse(syn, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	open, err = PortOpen(rst)
	if err != nil {
		t.Fatal(err)
	}
	if open {
		t.Error("RST decoded as open")
	}
}

func TestSYNACKRejectsNonSYN(t *testing.T) {
	srcIP, dstIP := uint32(1), uint32(2)
	syn, _ := BuildSYN(srcIP, dstIP, 1, 80, 1)
	synack, _ := BuildSYNACKResponse(syn, true, 9)
	// Responding to a SYN-ACK is a protocol error here.
	if _, err := BuildSYNACKResponse(synack, true, 9); err == nil {
		t.Error("responded to a SYN-ACK")
	}
	// Responding to an ICMP datagram is too.
	icmp, _ := BuildEchoRequest(srcIP, dstIP, 1, 1)
	if _, err := BuildSYNACKResponse(icmp, true, 9); err == nil {
		t.Error("responded to an ICMP datagram")
	}
}

func TestPortOpenRejectsGarbage(t *testing.T) {
	if _, err := PortOpen([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
	icmp, _ := BuildEchoRequest(1, 2, 1, 1)
	if _, err := PortOpen(icmp); err == nil {
		t.Error("ICMP datagram accepted as TCP response")
	}
}

func FuzzParseTCP(f *testing.F) {
	h := &TCPHeader{SrcPort: 1, DstPort: 80, Flags: TCPFlagSYN}
	f.Add(h.Marshal(1, 2), uint32(1), uint32(2))
	f.Add([]byte{}, uint32(0), uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, src, dst uint32) {
		h, err := ParseTCP(data, src, dst)
		if err != nil {
			return
		}
		again, err := ParseTCP(h.Marshal(src, dst), src, dst)
		if err != nil || again != h {
			t.Fatalf("TCP round trip diverged: %+v vs %+v (%v)", h, again, err)
		}
	})
}

func BenchmarkSYNHandshake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		syn, _ := BuildSYN(1, 2, 40000, 443, uint32(i))
		resp, _ := BuildSYNACKResponse(syn, true, 1)
		if open, _ := PortOpen(resp); !open {
			b.Fatal("closed")
		}
	}
}
