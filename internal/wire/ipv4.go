package wire

import (
	"encoding/binary"
	"fmt"
)

// IPv4 protocol numbers used by the census.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4HeaderLen is the length of a header without options.
const IPv4HeaderLen = 20

// IPv4Header is an RFC 791 header without options.
type IPv4Header struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src, Dst uint32
}

// Marshal serializes the header followed by the payload, computing total
// length and header checksum.
func (h *IPv4Header) Marshal(payload []byte) ([]byte, error) {
	total := IPv4HeaderLen + len(payload)
	if total > 0xFFFF {
		return nil, fmt.Errorf("wire: IPv4 datagram too large (%d bytes)", total)
	}
	if h.FragOff > 0x1FFF {
		return nil, fmt.Errorf("wire: fragment offset %d out of range", h.FragOff)
	}
	b := make([]byte, total)
	b[0] = 4<<4 | IPv4HeaderLen/4 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff)
	b[8] = h.TTL
	b[9] = h.Protocol
	binary.BigEndian.PutUint32(b[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(h.Dst))
	binary.BigEndian.PutUint16(b[10:12], Checksum(b[:IPv4HeaderLen]))
	copy(b[IPv4HeaderLen:], payload)
	return b, nil
}

// ParseIPv4 decodes a datagram, validating version, lengths and the header
// checksum, and returns the header and payload (not copied).
func ParseIPv4(b []byte) (IPv4Header, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, nil, fmt.Errorf("wire: IPv4 datagram truncated at %d bytes", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return IPv4Header{}, nil, fmt.Errorf("wire: IP version %d, want 4", v)
	}
	ihl := int(b[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || ihl > len(b) {
		return IPv4Header{}, nil, fmt.Errorf("wire: bad IHL %d", ihl)
	}
	if !VerifyChecksum(b[:ihl]) {
		return IPv4Header{}, nil, fmt.Errorf("wire: IPv4 header checksum mismatch")
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return IPv4Header{}, nil, fmt.Errorf("wire: total length %d inconsistent with %d bytes", total, len(b))
	}
	flagsFrag := binary.BigEndian.Uint16(b[6:8])
	h := IPv4Header{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Flags:    uint8(flagsFrag >> 13),
		FragOff:  flagsFrag & 0x1FFF,
		TTL:      b[8],
		Protocol: b[9],
		Src:      uint32(binary.BigEndian.Uint32(b[12:16])),
		Dst:      uint32(binary.BigEndian.Uint32(b[16:20])),
	}
	return h, b[ihl:total], nil
}
