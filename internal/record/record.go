// Package record implements the census measurement-record formats of
// Table 1. The first census was logged in a verbose textual format (270 MB
// per vantage point, 79 GB per census, more than 3 days to analyze); the
// re-engineered binary format strips each sample down to a timestamp, a
// delay and an ICMP flag that encodes the greylistable return codes in the
// delay's sign (21 MB per node, 6 GB per census, 3 hours to analyze).
package record

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"anycastmap/internal/netsim"
)

// Sample is one measurement outcome worth recording. Timeouts are not
// recorded: absence of a record is the timeout signal.
type Sample struct {
	Target netsim.IP
	// TimestampMs is milliseconds since the start of the census run.
	TimestampMs uint32
	Kind        netsim.ReplyKind
	RTT         time.Duration
}

// Writer writes a stream of samples.
type Writer interface {
	Write(Sample) error
	// Flush drains any buffering; it must be called before the
	// underlying writer is used.
	Flush() error
}

// Reader iterates a stream of samples.
type Reader interface {
	// Read returns the next sample, or io.EOF at the end of the stream.
	Read() (Sample, error)
}

// binary layout: 3 little-endian 32-bit words per sample.
//
//	word0: target address
//	word1: timestamp (ms since census start)
//	word2: delay in µs, positive for echo replies; negative for
//	       greylistable ICMP errors, with the return code packed in the
//	       top bits of the magnitude: -(code<<24 | delayUs).
const binaryRecordSize = 12

// greylist code points used in the binary encoding.
const (
	codeAdminFiltered  = 1 // ICMP type 3 code 13
	codeHostProhibited = 2 // code 10
	codeNetProhibited  = 3 // code 9
)

const maxDelayUs = 1<<24 - 1

// BinaryWriter encodes samples in the stripped-down binary format.
type BinaryWriter struct {
	w   *bufio.Writer
	buf [binaryRecordSize]byte
}

// NewBinaryWriter returns a binary sample writer.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

// ErrUnrecordable is returned for samples the binary format cannot carry.
var ErrUnrecordable = errors.New("record: sample kind not recordable")

// Write encodes one sample.
func (bw *BinaryWriter) Write(s Sample) error {
	us := s.RTT.Microseconds()
	if us < 0 {
		us = 0
	}
	if us > maxDelayUs {
		us = maxDelayUs
	}
	var word2 int32
	switch s.Kind {
	case netsim.ReplyEcho:
		word2 = int32(us)
	case netsim.ReplyAdminFiltered:
		word2 = -int32(codeAdminFiltered<<24 | us)
	case netsim.ReplyHostProhibited:
		word2 = -int32(codeHostProhibited<<24 | us)
	case netsim.ReplyNetProhibited:
		word2 = -int32(codeNetProhibited<<24 | us)
	default:
		return fmt.Errorf("%w: %v", ErrUnrecordable, s.Kind)
	}
	binary.LittleEndian.PutUint32(bw.buf[0:4], uint32(s.Target))
	binary.LittleEndian.PutUint32(bw.buf[4:8], s.TimestampMs)
	binary.LittleEndian.PutUint32(bw.buf[8:12], uint32(word2))
	_, err := bw.w.Write(bw.buf[:])
	return err
}

// Flush drains the write buffer.
func (bw *BinaryWriter) Flush() error { return bw.w.Flush() }

// BinaryReader decodes the binary format.
type BinaryReader struct {
	r   *bufio.Reader
	buf [binaryRecordSize]byte
}

// NewBinaryReader returns a binary sample reader.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Read returns the next sample or io.EOF.
func (br *BinaryReader) Read() (Sample, error) {
	if _, err := io.ReadFull(br.r, br.buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Sample{}, fmt.Errorf("record: truncated binary record: %w", err)
		}
		return Sample{}, err
	}
	s := Sample{
		Target:      netsim.IP(binary.LittleEndian.Uint32(br.buf[0:4])),
		TimestampMs: binary.LittleEndian.Uint32(br.buf[4:8]),
	}
	word2 := int32(binary.LittleEndian.Uint32(br.buf[8:12]))
	if word2 >= 0 {
		s.Kind = netsim.ReplyEcho
		s.RTT = time.Duration(word2) * time.Microsecond
		return s, nil
	}
	mag := uint32(-int64(word2))
	code := mag >> 24
	s.RTT = time.Duration(mag&maxDelayUs) * time.Microsecond
	switch code {
	case codeAdminFiltered:
		s.Kind = netsim.ReplyAdminFiltered
	case codeHostProhibited:
		s.Kind = netsim.ReplyHostProhibited
	case codeNetProhibited:
		s.Kind = netsim.ReplyNetProhibited
	default:
		return Sample{}, fmt.Errorf("record: invalid greylist code %d", code)
	}
	return s, nil
}

// CSVWriter encodes samples in the verbose textual format of Census-0:
// vantage point, target, absolute timestamp, sequence number, TTL-style
// metadata and a human-readable reply kind. It exists to reproduce the
// Table 1 comparison.
type CSVWriter struct {
	w   *bufio.Writer
	vp  string
	seq uint64
}

// NewCSVWriter returns a textual sample writer attributing samples to the
// named vantage point.
func NewCSVWriter(w io.Writer, vp string) *CSVWriter {
	return &CSVWriter{w: bufio.NewWriter(w), vp: vp}
}

// csvEpoch anchors the absolute timestamps of the textual format to the
// paper's census period (March 2015).
var csvEpoch = time.Date(2015, time.March, 1, 0, 0, 0, 0, time.UTC)

// Write encodes one sample as a CSV line.
func (cw *CSVWriter) Write(s Sample) error {
	cw.seq++
	abs := csvEpoch.Add(time.Duration(s.TimestampMs) * time.Millisecond)
	// vp,seq,target,iso-timestamp,rtt_ms,kind,icmp_type,icmp_code
	icmpType, icmpCode := icmpOf(s.Kind)
	_, err := fmt.Fprintf(cw.w, "%s,%d,%s,%s,%.3f,%s,%d,%d\n",
		cw.vp, cw.seq, s.Target, abs.Format(time.RFC3339Nano),
		float64(s.RTT)/float64(time.Millisecond), s.Kind, icmpType, icmpCode)
	return err
}

// Flush drains the write buffer.
func (cw *CSVWriter) Flush() error { return cw.w.Flush() }

func icmpOf(k netsim.ReplyKind) (int, int) {
	switch k {
	case netsim.ReplyEcho:
		return 0, 0
	case netsim.ReplyAdminFiltered:
		return 3, 13
	case netsim.ReplyHostProhibited:
		return 3, 10
	case netsim.ReplyNetProhibited:
		return 3, 9
	}
	return -1, -1
}

// CSVReader decodes the textual format.
type CSVReader struct {
	s *bufio.Scanner
}

// NewCSVReader returns a textual sample reader.
func NewCSVReader(r io.Reader) *CSVReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &CSVReader{s: sc}
}

// Read returns the next sample or io.EOF.
func (cr *CSVReader) Read() (Sample, error) {
	if !cr.s.Scan() {
		if err := cr.s.Err(); err != nil {
			return Sample{}, err
		}
		return Sample{}, io.EOF
	}
	fields := strings.Split(cr.s.Text(), ",")
	if len(fields) != 8 {
		return Sample{}, fmt.Errorf("record: bad CSV line %q", cr.s.Text())
	}
	target, err := netsim.ParseIP(fields[2])
	if err != nil {
		return Sample{}, err
	}
	abs, err := time.Parse(time.RFC3339Nano, fields[3])
	if err != nil {
		return Sample{}, fmt.Errorf("record: bad timestamp: %w", err)
	}
	rttMs, err := strconv.ParseFloat(fields[4], 64)
	if err != nil {
		return Sample{}, fmt.Errorf("record: bad rtt: %w", err)
	}
	icmpType, err1 := strconv.Atoi(fields[6])
	icmpCode, err2 := strconv.Atoi(fields[7])
	if err1 != nil || err2 != nil {
		return Sample{}, fmt.Errorf("record: bad icmp fields in %q", cr.s.Text())
	}
	kind := netsim.ReplyEcho
	if icmpType == 3 {
		switch icmpCode {
		case 13:
			kind = netsim.ReplyAdminFiltered
		case 10:
			kind = netsim.ReplyHostProhibited
		case 9:
			kind = netsim.ReplyNetProhibited
		default:
			return Sample{}, fmt.Errorf("record: unknown ICMP code %d", icmpCode)
		}
	}
	return Sample{
		Target:      target,
		TimestampMs: uint32(abs.Sub(csvEpoch) / time.Millisecond),
		Kind:        kind,
		RTT:         time.Duration(rttMs * float64(time.Millisecond)),
	}, nil
}

// BinarySize returns the encoded size of n samples in the binary format.
func BinarySize(n int) int64 { return int64(n) * binaryRecordSize }
