package record

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"anycastmap/internal/netsim"
)

func randSample(r *rand.Rand) Sample {
	kinds := []netsim.ReplyKind{
		netsim.ReplyEcho, netsim.ReplyEcho, netsim.ReplyEcho,
		netsim.ReplyAdminFiltered, netsim.ReplyHostProhibited, netsim.ReplyNetProhibited,
	}
	return Sample{
		Target:      netsim.IP(r.Uint32()),
		TimestampMs: r.Uint32() % (24 * 3600 * 1000),
		Kind:        kinds[r.Intn(len(kinds))],
		RTT:         time.Duration(r.Intn(500_000)) * time.Microsecond,
	}
}

func roundTrip(t *testing.T, w Writer, newReader func() Reader, samples []Sample) []Sample {
	t.Helper()
	for _, s := range samples {
		if err := w.Write(s); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var out []Sample
	r := newReader()
	for {
		s, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		out = append(out, s)
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	samples := make([]Sample, 1000)
	for i := range samples {
		samples[i] = randSample(r)
	}
	var buf bytes.Buffer
	got := roundTrip(t, NewBinaryWriter(&buf), func() Reader { return NewBinaryReader(&buf) }, samples)
	if len(got) != len(samples) {
		t.Fatalf("round trip returned %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Fatalf("sample %d: got %+v, want %+v", i, got[i], samples[i])
		}
	}
	if int64(buf.Len())+BinarySize(len(samples)) != 2*BinarySize(len(samples)) {
		// buf has been consumed by the reader; check via BinarySize only.
		t.Log("size check skipped (buffer drained)")
	}
}

func TestBinarySize(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	r := rand.New(rand.NewSource(2))
	const n = 500
	for i := 0; i < n; i++ {
		if err := w.Write(randSample(r)); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if int64(buf.Len()) != BinarySize(n) {
		t.Errorf("binary size = %d, want %d", buf.Len(), BinarySize(n))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	samples := make([]Sample, 500)
	for i := range samples {
		samples[i] = randSample(r)
		// The textual format stores RTT in µs-precision decimal ms.
		samples[i].RTT = samples[i].RTT.Round(time.Microsecond)
	}
	var buf bytes.Buffer
	got := roundTrip(t, NewCSVWriter(&buf, "planetlab1.example.edu"),
		func() Reader { return NewCSVReader(&buf) }, samples)
	if len(got) != len(samples) {
		t.Fatalf("round trip returned %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i].Target != samples[i].Target || got[i].Kind != samples[i].Kind ||
			got[i].TimestampMs != samples[i].TimestampMs {
			t.Fatalf("sample %d: got %+v, want %+v", i, got[i], samples[i])
		}
		// RTT round-trips within the 1µs print precision.
		if d := got[i].RTT - samples[i].RTT; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("sample %d RTT drifted by %v", i, d)
		}
	}
}

func TestTextualMuchLargerThanBinary(t *testing.T) {
	// Table 1: the textual census is an order of magnitude larger
	// (79 GB vs 6 GB).
	r := rand.New(rand.NewSource(4))
	var bin, txt bytes.Buffer
	bw := NewBinaryWriter(&bin)
	cw := NewCSVWriter(&txt, "planetlab2.cs.example.edu")
	for i := 0; i < 2000; i++ {
		s := randSample(r)
		bw.Write(s)
		cw.Write(s)
	}
	bw.Flush()
	cw.Flush()
	ratio := float64(txt.Len()) / float64(bin.Len())
	if ratio < 5 {
		t.Errorf("textual/binary size ratio = %.1f, want > 5 (paper: ~13x)", ratio)
	}
}

func TestBinaryRejectsTimeout(t *testing.T) {
	w := NewBinaryWriter(io.Discard)
	err := w.Write(Sample{Kind: netsim.ReplyTimeout})
	if !errors.Is(err, ErrUnrecordable) {
		t.Errorf("timeout write error = %v, want ErrUnrecordable", err)
	}
}

func TestBinaryTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(Sample{Kind: netsim.ReplyEcho, RTT: time.Millisecond})
	w.Flush()
	trunc := bytes.NewReader(buf.Bytes()[:7])
	r := NewBinaryReader(trunc)
	if _, err := r.Read(); err == nil {
		t.Error("truncated record read succeeded")
	}
}

func TestBinaryDelayCap(t *testing.T) {
	// Delays beyond the 24-bit µs budget are clamped, not corrupted.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Write(Sample{Kind: netsim.ReplyAdminFiltered, RTT: time.Hour}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	s, err := NewBinaryReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != netsim.ReplyAdminFiltered {
		t.Errorf("kind corrupted by clamping: %v", s.Kind)
	}
	if s.RTT > 17*time.Second {
		t.Errorf("clamped RTT = %v, want <= 2^24 µs", s.RTT)
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"not,a,sample",
		"vp,1,999.999.0.1,2015-03-01T00:00:00Z,1.0,echo,0,0",
		"vp,1,1.2.3.4,yesterday,1.0,echo,0,0",
		"vp,1,1.2.3.4,2015-03-01T00:00:00Z,fast,echo,0,0",
		"vp,1,1.2.3.4,2015-03-01T00:00:00Z,1.0,echo,3,77",
	} {
		r := NewCSVReader(bytes.NewBufferString(line + "\n"))
		if _, err := r.Read(); err == nil {
			t.Errorf("CSV accepted garbage line %q", line)
		}
	}
}

func TestBinaryPropertyRoundTrip(t *testing.T) {
	f := func(target uint32, ts uint32, rttUs uint32, kindSel uint8) bool {
		kinds := []netsim.ReplyKind{
			netsim.ReplyEcho, netsim.ReplyAdminFiltered,
			netsim.ReplyHostProhibited, netsim.ReplyNetProhibited,
		}
		in := Sample{
			Target:      netsim.IP(target),
			TimestampMs: ts,
			Kind:        kinds[int(kindSel)%len(kinds)],
			RTT:         time.Duration(rttUs%maxDelayUs) * time.Microsecond,
		}
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		if w.Write(in) != nil {
			return false
		}
		w.Flush()
		out, err := NewBinaryReader(&buf).Read()
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	w := NewBinaryWriter(io.Discard)
	s := Sample{Target: 0x01020304, TimestampMs: 1234, Kind: netsim.ReplyEcho, RTT: 42 * time.Millisecond}
	b.SetBytes(binaryRecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write(s)
	}
}

func BenchmarkCSVWrite(b *testing.B) {
	w := NewCSVWriter(io.Discard, "planetlab1.example.edu")
	s := Sample{Target: 0x01020304, TimestampMs: 1234, Kind: netsim.ReplyEcho, RTT: 42 * time.Millisecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write(s)
	}
}
