package record

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"anycastmap/internal/netsim"
)

// orderedSamples generates timestamp-ordered samples as a probing run
// produces them.
func orderedSamples(r *rand.Rand, n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = randSample(r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimestampMs < out[j].TimestampMs })
	return out
}

func TestCompactRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	samples := orderedSamples(r, 2000)
	var buf bytes.Buffer
	got := roundTrip(t, NewCompactWriter(&buf), func() Reader { return NewCompactReader(&buf) }, samples)
	if len(got) != len(samples) {
		t.Fatalf("round trip returned %d, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Fatalf("sample %d: %+v != %+v", i, got[i], samples[i])
		}
	}
}

func TestCompactSmallerThanBinary(t *testing.T) {
	// The whole point: beat the fixed 12-byte layout on realistic runs
	// (small timestamp deltas, sub-second delays).
	r := rand.New(rand.NewSource(12))
	var bin, compact bytes.Buffer
	bw := NewBinaryWriter(&bin)
	cw := NewCompactWriter(&compact)
	ts := uint32(0)
	for i := 0; i < 5000; i++ {
		ts += uint32(r.Intn(3)) // ~1ms between samples at 1k pps
		s := Sample{
			Target:      netsim.IP(r.Uint32()),
			TimestampMs: ts,
			Kind:        netsim.ReplyEcho,
			RTT:         time.Duration(1000+r.Intn(300_000)) * time.Microsecond,
		}
		bw.Write(s)
		cw.Write(s)
	}
	bw.Flush()
	cw.Flush()
	if compact.Len() >= bin.Len() {
		t.Errorf("compact %d bytes >= binary %d bytes", compact.Len(), bin.Len())
	}
	perSample := float64(compact.Len()) / 5000
	if perSample > 9.5 {
		t.Errorf("compact density %.1f B/sample, want < 9.5", perSample)
	}
	t.Logf("binary %.1f B/sample, compact %.1f B/sample", float64(bin.Len())/5000, perSample)
}

func TestCompactRejectsDisorder(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompactWriter(&buf)
	if err := w.Write(Sample{TimestampMs: 100, Kind: netsim.ReplyEcho}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Sample{TimestampMs: 50, Kind: netsim.ReplyEcho}); err == nil {
		t.Error("out-of-order timestamp accepted")
	}
}

func TestCompactRejectsTimeout(t *testing.T) {
	w := NewCompactWriter(&bytes.Buffer{})
	if err := w.Write(Sample{Kind: netsim.ReplyTimeout}); !errors.Is(err, ErrUnrecordable) {
		t.Errorf("timeout error = %v", err)
	}
}

func TestCompactBadMagic(t *testing.T) {
	r := NewCompactReader(bytes.NewBufferString("NOTMAGIC plus some junk"))
	if _, err := r.Read(); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestCompactTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompactWriter(&buf)
	w.Write(Sample{Target: 0x01020304, TimestampMs: 10, Kind: netsim.ReplyEcho, RTT: time.Millisecond})
	w.Write(Sample{Target: 0x01020305, TimestampMs: 20, Kind: netsim.ReplyEcho, RTT: time.Millisecond})
	w.Flush()
	full := buf.Bytes()
	// Every strict prefix must either cleanly EOF at a boundary or error;
	// never yield a second phantom sample.
	for cut := 0; cut < len(full); cut++ {
		r := NewCompactReader(bytes.NewReader(full[:cut]))
		n := 0
		for {
			_, err := r.Read()
			if err != nil {
				break
			}
			n++
			if n > 2 {
				t.Fatalf("cut %d produced %d samples", cut, n)
			}
		}
	}
}

func TestCompactGreylistKinds(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompactWriter(&buf)
	kinds := []netsim.ReplyKind{
		netsim.ReplyEcho, netsim.ReplyAdminFiltered,
		netsim.ReplyHostProhibited, netsim.ReplyNetProhibited,
	}
	for i, k := range kinds {
		if err := w.Write(Sample{TimestampMs: uint32(i), Kind: k, RTT: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r := NewCompactReader(&buf)
	for _, want := range kinds {
		s, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if s.Kind != want {
			t.Errorf("kind = %v, want %v", s.Kind, want)
		}
	}
}

func BenchmarkCompactWrite(b *testing.B) {
	w := NewCompactWriter(discard{})
	s := Sample{Target: 0x01020304, Kind: netsim.ReplyEcho, RTT: 42 * time.Millisecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TimestampMs = uint32(i)
		w.Write(s)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
