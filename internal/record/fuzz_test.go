package record

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzBinaryReader feeds arbitrary bytes to the binary decoder: it must
// never panic, and every decoded sample must re-encode to the same bytes.
func FuzzBinaryReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(Sample{Target: 0x01020304, TimestampMs: 42, Kind: 1, RTT: 1000000})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBinaryReader(bytes.NewReader(data))
		for {
			s, err := r.Read()
			if err != nil {
				return
			}
			var out bytes.Buffer
			w := NewBinaryWriter(&out)
			if err := w.Write(s); err != nil {
				t.Fatalf("re-encode of decoded sample failed: %v", err)
			}
			w.Flush()
			s2, err := NewBinaryReader(&out).Read()
			if err != nil || s2 != s {
				t.Fatalf("binary round trip diverged: %+v vs %+v (%v)", s, s2, err)
			}
		}
	})
}

// FuzzCompactReader does the same for the compact varint format.
func FuzzCompactReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewCompactWriter(&buf)
	w.Write(Sample{Target: 0x01020304, TimestampMs: 1, Kind: 1, RTT: 1000})
	w.Write(Sample{Target: 0x01020305, TimestampMs: 2, Kind: 1, RTT: 2000})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte(compactMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewCompactReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			if _, err := r.Read(); err != nil {
				if errors.Is(err, io.EOF) || err != nil {
					return
				}
			}
		}
	})
}

// FuzzCSVReader hardens the textual parser.
func FuzzCSVReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, "vp1")
	w.Write(Sample{Target: 0x01020304, TimestampMs: 42, Kind: 1, RTT: 1000000})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("a,b,c\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewCSVReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			if _, err := r.Read(); err != nil {
				return
			}
		}
	})
}
