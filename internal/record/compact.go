package record

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"anycastmap/internal/netsim"
)

// The compact format is the third generation of the census record layout:
// where the fixed binary format spends 12 bytes per sample, the compact one
// varint-encodes timestamp deltas (small and monotone within a run) and
// delays, and folds the reply kind into a tag byte, landing at ~7-9 bytes
// per sample - the density range of the paper's 21 MB-per-VP files.
//
// Layout per sample:
//
//	tag     byte: low 2 bits = kind (0 echo, 1 code13, 2 code10, 3 code9)
//	target  4 bytes big-endian
//	dt      uvarint: timestamp delta in ms from the previous sample
//	delay   uvarint: RTT in µs

const compactMagic = "ACMC1\n"

// kind tags of the compact format.
const (
	tagEcho = iota
	tagAdminFiltered
	tagHostProhibited
	tagNetProhibited
)

func kindToTag(k netsim.ReplyKind) (byte, error) {
	switch k {
	case netsim.ReplyEcho:
		return tagEcho, nil
	case netsim.ReplyAdminFiltered:
		return tagAdminFiltered, nil
	case netsim.ReplyHostProhibited:
		return tagHostProhibited, nil
	case netsim.ReplyNetProhibited:
		return tagNetProhibited, nil
	}
	return 0, fmt.Errorf("%w: %v", ErrUnrecordable, k)
}

func tagToKind(t byte) (netsim.ReplyKind, error) {
	switch t {
	case tagEcho:
		return netsim.ReplyEcho, nil
	case tagAdminFiltered:
		return netsim.ReplyAdminFiltered, nil
	case tagHostProhibited:
		return netsim.ReplyHostProhibited, nil
	case tagNetProhibited:
		return netsim.ReplyNetProhibited, nil
	}
	return 0, fmt.Errorf("record: invalid compact tag %d", t)
}

// CompactWriter encodes samples in the delta/varint format. Samples must be
// written in non-decreasing timestamp order (the natural probe order).
type CompactWriter struct {
	w      *bufio.Writer
	lastTs uint32
	wrote  bool
	buf    [4 + 2*binary.MaxVarintLen64 + 1]byte
}

// NewCompactWriter returns a compact sample writer; the format magic is
// emitted lazily with the first sample.
func NewCompactWriter(w io.Writer) *CompactWriter {
	return &CompactWriter{w: bufio.NewWriter(w)}
}

// Write encodes one sample.
func (cw *CompactWriter) Write(s Sample) error {
	tag, err := kindToTag(s.Kind)
	if err != nil {
		return err
	}
	if !cw.wrote {
		if _, err := cw.w.WriteString(compactMagic); err != nil {
			return err
		}
		cw.wrote = true
	}
	if s.TimestampMs < cw.lastTs {
		return fmt.Errorf("record: compact samples must be timestamp-ordered (%d after %d)", s.TimestampMs, cw.lastTs)
	}
	us := s.RTT.Microseconds()
	if us < 0 {
		us = 0
	}
	n := 0
	cw.buf[n] = tag
	n++
	binary.BigEndian.PutUint32(cw.buf[n:], uint32(s.Target))
	n += 4
	n += binary.PutUvarint(cw.buf[n:], uint64(s.TimestampMs-cw.lastTs))
	n += binary.PutUvarint(cw.buf[n:], uint64(us))
	cw.lastTs = s.TimestampMs
	_, err = cw.w.Write(cw.buf[:n])
	return err
}

// Flush drains the write buffer.
func (cw *CompactWriter) Flush() error { return cw.w.Flush() }

// CompactReader decodes the compact format.
type CompactReader struct {
	r       *bufio.Reader
	lastTs  uint32
	started bool
}

// NewCompactReader returns a compact sample reader.
func NewCompactReader(r io.Reader) *CompactReader {
	return &CompactReader{r: bufio.NewReader(r)}
}

// Read returns the next sample or io.EOF.
func (cr *CompactReader) Read() (Sample, error) {
	if !cr.started {
		magic := make([]byte, len(compactMagic))
		if _, err := io.ReadFull(cr.r, magic); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return Sample{}, fmt.Errorf("record: truncated compact header")
			}
			return Sample{}, err
		}
		if string(magic) != compactMagic {
			return Sample{}, fmt.Errorf("record: bad compact magic %q", magic)
		}
		cr.started = true
	}
	tag, err := cr.r.ReadByte()
	if err != nil {
		return Sample{}, err // io.EOF at a sample boundary is the clean end
	}
	kind, err := tagToKind(tag)
	if err != nil {
		return Sample{}, err
	}
	var tgt [4]byte
	if _, err := io.ReadFull(cr.r, tgt[:]); err != nil {
		return Sample{}, fmt.Errorf("record: truncated compact target: %w", err)
	}
	dt, err := binary.ReadUvarint(cr.r)
	if err != nil {
		return Sample{}, fmt.Errorf("record: truncated compact timestamp: %w", err)
	}
	us, err := binary.ReadUvarint(cr.r)
	if err != nil {
		return Sample{}, fmt.Errorf("record: truncated compact delay: %w", err)
	}
	cr.lastTs += uint32(dt)
	return Sample{
		Target:      netsim.IP(binary.BigEndian.Uint32(tgt[:])),
		TimestampMs: cr.lastTs,
		Kind:        kind,
		RTT:         time.Duration(us) * time.Microsecond,
	}, nil
}
