// Package stats provides the small set of descriptive statistics the census
// characterization needs: empirical CDF/CCDF series (Figs. 8, 12, 13, 15),
// percentiles and medians (validation, Fig. 7), and Pearson / Spearman
// correlation (the footprint-correlation and web-server-popularity checks of
// Secs. 4.2 and 4.3).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Point is one step of an empirical distribution function.
type Point struct {
	X float64 // value
	P float64 // cumulative probability
}

// ECDF returns the empirical CDF of xs as a step series: for each distinct
// value x, the fraction of samples <= x. The series is sorted by X.
func ECDF(xs []float64) []Point {
	if len(xs) == 0 {
		return nil
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := float64(len(s))
	var out []Point
	for i := 0; i < len(s); i++ {
		// Emit one point per distinct value, at its last occurrence.
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, Point{X: s[i], P: float64(i+1) / n})
	}
	return out
}

// CCDF returns the complementary CDF: for each distinct value x, the
// fraction of samples >= x (as plotted in Fig. 15).
func CCDF(xs []float64) []Point {
	if len(xs) == 0 {
		return nil
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := float64(len(s))
	var out []Point
	for i := 0; i < len(s); i++ {
		if i > 0 && s[i] == s[i-1] {
			continue
		}
		out = append(out, Point{X: s[i], P: float64(len(s)-i) / n})
	}
	return out
}

// FractionAtMost returns the fraction of samples <= x.
func FractionAtMost(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAtLeast returns the fraction of samples >= x.
func FractionAtLeast(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v >= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Pearson returns the Pearson linear correlation coefficient of the paired
// samples x and y. It returns 0 when the inputs are degenerate (fewer than
// two points, mismatched lengths, or zero variance).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient of the paired
// samples, i.e. the Pearson correlation of their ranks with ties assigned
// their average rank.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks returns the fractional (average-of-ties) ranks of xs.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
