package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12) {
		t.Error("Mean([1..4]) != 2.5")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 {
		t.Error("StdDev(nil) != 0")
	}
	if StdDev([]float64{5, 5, 5}) != 0 {
		t.Error("StdDev of constant != 0")
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is 2.
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12) {
		t.Error("known stddev failed")
	}
}

func TestMedianAndPercentile(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	if !almost(Median([]float64{3, 1, 2}), 2, 1e-12) {
		t.Error("median of odd-length failed")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5, 1e-12) {
		t.Error("median of even-length failed")
	}
	xs := []float64{10, 20, 30, 40, 50}
	if !almost(Percentile(xs, 0), 10, 1e-12) || !almost(Percentile(xs, 100), 50, 1e-12) {
		t.Error("percentile extremes failed")
	}
	if !almost(Percentile(xs, 25), 20, 1e-12) {
		t.Errorf("P25 = %v, want 20", Percentile(xs, 25))
	}
	// Percentile must not modify its input.
	in := []float64{5, 1, 3}
	Percentile(in, 50)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDF(t *testing.T) {
	if ECDF(nil) != nil {
		t.Error("ECDF(nil) != nil")
	}
	pts := ECDF([]float64{1, 2, 2, 3})
	want := []Point{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("ECDF = %v, want %v", pts, want)
	}
	for i := range want {
		if !almost(pts[i].X, want[i].X, 1e-12) || !almost(pts[i].P, want[i].P, 1e-12) {
			t.Errorf("ECDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCCDF(t *testing.T) {
	pts := CCDF([]float64{1, 2, 2, 3})
	want := []Point{{1, 1}, {2, 0.75}, {3, 0.25}}
	if len(pts) != len(want) {
		t.Fatalf("CCDF = %v, want %v", pts, want)
	}
	for i := range want {
		if !almost(pts[i].X, want[i].X, 1e-12) || !almost(pts[i].P, want[i].P, 1e-12) {
			t.Errorf("CCDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestECDFProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(r.Float64() * 20) // force ties
		}
		pts := ECDF(xs)
		// Monotone nondecreasing in X and P, final P == 1.
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X {
				t.Fatal("ECDF X not strictly increasing")
			}
			if pts[i].P < pts[i-1].P {
				t.Fatal("ECDF P decreasing")
			}
		}
		if !almost(pts[len(pts)-1].P, 1, 1e-12) {
			t.Fatal("ECDF does not end at 1")
		}
		// Cross-check against FractionAtMost.
		for _, p := range pts {
			if !almost(p.P, FractionAtMost(xs, p.X), 1e-12) {
				t.Fatal("ECDF point disagrees with FractionAtMost")
			}
		}
		// CCDF starts at 1 and matches FractionAtLeast.
		cc := CCDF(xs)
		if !almost(cc[0].P, 1, 1e-12) {
			t.Fatal("CCDF does not start at 1")
		}
		for _, p := range cc {
			if !almost(p.P, FractionAtLeast(xs, p.X), 1e-12) {
				t.Fatal("CCDF point disagrees with FractionAtLeast")
			}
		}
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if !almost(Pearson(x, yPos), 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v", Pearson(x, yPos))
	}
	if !almost(Pearson(x, yNeg), -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v", Pearson(x, yNeg))
	}
	if Pearson(x, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Error("zero-variance y should give 0")
	}
	if Pearson(x, x[:3]) != 0 {
		t.Error("mismatched lengths should give 0")
	}
	if Pearson(nil, nil) != 0 {
		t.Error("empty should give 0")
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(pairs []struct{ X, Y float64 }) bool {
		var x, y []float64
		for _, p := range pairs {
			if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				continue
			}
			if math.Abs(p.X) > 1e100 || math.Abs(p.Y) > 1e100 {
				continue
			}
			x = append(x, p.X)
			y = append(y, p.Y)
		}
		r := Pearson(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearman(t *testing.T) {
	// Spearman is 1 for any monotone relationship, even nonlinear.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	if !almost(Spearman(x, y), 1, 1e-12) {
		t.Errorf("monotone cubic Spearman = %v, want 1", Spearman(x, y))
	}
	yRev := []float64{125, 64, 27, 8, 1}
	if !almost(Spearman(x, yRev), -1, 1e-12) {
		t.Errorf("reversed Spearman = %v, want -1", Spearman(x, yRev))
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties handled by average ranks, [1,2,2,3] vs itself is still 1.
	x := []float64{1, 2, 2, 3}
	if !almost(Spearman(x, x), 1, 1e-12) {
		t.Errorf("self Spearman with ties = %v", Spearman(x, x))
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 40})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Error("MinMax(nil) != 0,0")
	}
}

func TestPercentileAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	xs := make([]float64, 999)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	// With 999 samples, P50 is exactly the 500th order statistic.
	if !almost(Percentile(xs, 50), s[499], 1e-12) {
		t.Error("P50 of 999 samples != 500th order statistic")
	}
}

func BenchmarkECDF(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ECDF(xs)
	}
}

func BenchmarkSpearman(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i], y[i] = r.Float64(), r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Spearman(x, y)
	}
}
