// Package hitlist builds and maintains the census target list, standing in
// for the USC/LANDER Internet addresses hitlist the paper relies on
// (Sec. 3.1): one representative IPv4 address per /24, annotated with a
// liveness score accumulated over past measurement campaigns. Entries whose
// /24 never showed an alive host carry a negative score and are pruned
// after the first census confirms them unreachable, shrinking the paper's
// target list from 10.6M to 6.6M per vantage point.
package hitlist

import (
	"sort"

	"anycastmap/internal/detrand"
	"anycastmap/internal/netsim"
)

// Entry is one hitlist row.
type Entry struct {
	Prefix netsim.Prefix24
	IP     netsim.IP
	// Score is the liveness score: positive for addresses seen alive by
	// past campaigns, <= -2 for /24s where no alive host was ever
	// observed (the hitlist then contains an arbitrary address).
	Score int
}

// EverAlive reports whether the /24 has a positive liveness history.
func (e Entry) EverAlive() bool { return e.Score > 0 }

// Hitlist is an immutable target list sorted by prefix.
type Hitlist struct {
	entries []Entry
	byIP    map[netsim.IP]int
}

// FromWorld builds the full hitlist over every allocated /24 of the world.
// A tiny fraction of routed /24s (~0.01%, the paper's coverage gap in
// Sec. 3.1) has no representative and is skipped.
func FromWorld(w *netsim.World) *Hitlist {
	var entries []Entry
	seed := w.Config().Seed
	w.Prefixes(func(p netsim.Prefix24) {
		// Coverage gap: 99.99% of routed /24s have a representative.
		if detrand.UnitFloat(seed, uint64(p), 0x417) < 0.0001 {
			return
		}
		ip, everAlive := w.Representative(p)
		score := 0
		if everAlive {
			score = 5 + detrand.Intn(85, seed, uint64(p), 0x418)
		} else {
			score = -2 - detrand.Intn(3, seed, uint64(p), 0x419)
		}
		entries = append(entries, Entry{Prefix: p, IP: ip, Score: score})
	})
	return build(entries)
}

func build(entries []Entry) *Hitlist {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Prefix < entries[j].Prefix })
	byIP := make(map[netsim.IP]int, len(entries))
	for i, e := range entries {
		byIP[e.IP] = i
	}
	return &Hitlist{entries: entries, byIP: byIP}
}

// Len returns the number of entries.
func (h *Hitlist) Len() int { return len(h.entries) }

// Entries returns the entries ordered by prefix. The slice must not be
// modified.
func (h *Hitlist) Entries() []Entry { return h.entries }

// Targets returns the probe targets in prefix order.
func (h *Hitlist) Targets() []netsim.IP {
	out := make([]netsim.IP, len(h.entries))
	for i, e := range h.entries {
		out[i] = e.IP
	}
	return out
}

// Lookup returns the entry for a target address.
func (h *Hitlist) Lookup(ip netsim.IP) (Entry, bool) {
	i, ok := h.byIP[ip]
	if !ok {
		return Entry{}, false
	}
	return h.entries[i], true
}

// Covers reports whether the hitlist has a representative for the prefix.
func (h *Hitlist) Covers(p netsim.Prefix24) bool {
	i := sort.Search(len(h.entries), func(i int) bool { return h.entries[i].Prefix >= p })
	return i < len(h.entries) && h.entries[i].Prefix == p
}

// PruneNeverAlive drops the negative-score entries after the first census
// confirmed them unreachable (Sec. 3.1: 10.6M -> 6.6M targets per VP).
func (h *Hitlist) PruneNeverAlive() *Hitlist {
	var kept []Entry
	for _, e := range h.entries {
		if e.EverAlive() {
			kept = append(kept, e)
		}
	}
	return build(kept)
}

// Without returns a hitlist with the blacklisted targets removed (the
// greylist/blacklist mechanism of Sec. 3.3).
func (h *Hitlist) Without(blacklist map[netsim.IP]bool) *Hitlist {
	if len(blacklist) == 0 {
		return h
	}
	var kept []Entry
	for _, e := range h.entries {
		if !blacklist[e.IP] {
			kept = append(kept, e)
		}
	}
	return build(kept)
}
