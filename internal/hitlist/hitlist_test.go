package hitlist

import (
	"testing"

	"anycastmap/internal/netsim"
)

func smallWorld() *netsim.World {
	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 4000
	return netsim.New(cfg)
}

func TestFromWorldCoverage(t *testing.T) {
	w := smallWorld()
	h := FromWorld(w)
	total := w.NumPrefixes()
	if h.Len() < total-10 || h.Len() > total {
		t.Errorf("hitlist has %d entries for %d prefixes, want ~99.99%% coverage", h.Len(), total)
	}
}

func TestEntriesSortedAndConsistent(t *testing.T) {
	w := smallWorld()
	h := FromWorld(w)
	for i, e := range h.Entries() {
		if e.IP.Prefix() != e.Prefix {
			t.Fatalf("entry %d: IP %v outside prefix %v", i, e.IP, e.Prefix)
		}
		if i > 0 && e.Prefix <= h.Entries()[i-1].Prefix {
			t.Fatal("entries not sorted by prefix")
		}
		if e.Score == 0 || e.Score == -1 {
			t.Fatalf("entry %d has invalid score %d (never-alive entries score <= -2)", i, e.Score)
		}
	}
}

func TestPruneNeverAlive(t *testing.T) {
	w := smallWorld()
	full := FromWorld(w)
	pruned := full.PruneNeverAlive()
	// Paper: 6.6M of 10.6M targets survive pruning (~62%). Anycast
	// prefixes are always alive, so measure the ratio over the unicast
	// background (the test world is small enough that anycast would skew
	// it).
	uniFull, uniKept := 0, 0
	for _, e := range full.Entries() {
		if w.IsAnycast(e.Prefix) {
			continue
		}
		uniFull++
		if e.EverAlive() {
			uniKept++
		}
	}
	ratio := float64(uniKept) / float64(uniFull)
	if ratio < 0.56 || ratio > 0.68 {
		t.Errorf("pruning kept %.2f of the unicast hitlist, want ~0.62", ratio)
	}
	if pruned.Len() >= full.Len() {
		t.Error("pruning removed nothing")
	}
	for _, e := range pruned.Entries() {
		if !e.EverAlive() {
			t.Fatal("pruned hitlist still contains never-alive entries")
		}
	}
}

func TestAnycastAlwaysSurvivesPruning(t *testing.T) {
	w := smallWorld()
	pruned := FromWorld(w).PruneNeverAlive()
	missing := 0
	for _, d := range w.Deployments() {
		if !pruned.Covers(d.Prefix) {
			missing++
		}
	}
	// Only the 0.01% coverage gap may lose anycast prefixes.
	if missing > 3 {
		t.Errorf("%d anycast /24s missing from the pruned hitlist", missing)
	}
}

func TestLookupAndCovers(t *testing.T) {
	w := smallWorld()
	h := FromWorld(w)
	e := h.Entries()[17]
	got, ok := h.Lookup(e.IP)
	if !ok || got != e {
		t.Error("Lookup failed for an existing entry")
	}
	if _, ok := h.Lookup(netsim.IP(1)); ok {
		t.Error("Lookup hit for a bogus address")
	}
	if !h.Covers(e.Prefix) {
		t.Error("Covers false for an existing prefix")
	}
	if h.Covers(netsim.Prefix24(3)) {
		t.Error("Covers true for an unallocated prefix")
	}
}

func TestWithout(t *testing.T) {
	w := smallWorld()
	h := FromWorld(w)
	bl := map[netsim.IP]bool{
		h.Entries()[0].IP: true,
		h.Entries()[5].IP: true,
	}
	h2 := h.Without(bl)
	if h2.Len() != h.Len()-2 {
		t.Errorf("Without removed %d entries, want 2", h.Len()-h2.Len())
	}
	for ip := range bl {
		if _, ok := h2.Lookup(ip); ok {
			t.Error("blacklisted target still present")
		}
	}
	if h.Without(nil) != h {
		t.Error("Without(nil) should return the receiver")
	}
}

func TestTargets(t *testing.T) {
	w := smallWorld()
	h := FromWorld(w)
	ts := h.Targets()
	if len(ts) != h.Len() {
		t.Fatal("Targets length mismatch")
	}
	for i, ip := range ts {
		if ip != h.Entries()[i].IP {
			t.Fatal("Targets order mismatch")
		}
	}
}

func TestDeterministic(t *testing.T) {
	w := smallWorld()
	a, b := FromWorld(w), FromWorld(w)
	if a.Len() != b.Len() {
		t.Fatal("length differs")
	}
	for i := range a.Entries() {
		if a.Entries()[i] != b.Entries()[i] {
			t.Fatal("entries differ between builds")
		}
	}
}
