package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in the Prometheus text
// exposition format (v0.0.4), in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, f *family, s *series) {
	switch f.kind {
	case counterKind:
		v := s.counter.Value()
		if s.counterFn != nil {
			v = s.counterFn()
		}
		writeSample(bw, f.name, "", s.labels, nil, strconv.FormatUint(v, 10))
	case gaugeKind:
		v := s.gauge.Value()
		if s.gaugeFn != nil {
			v = s.gaugeFn()
		}
		writeSample(bw, f.name, "", s.labels, nil, formatFloat(v))
	case histogramKind:
		h := s.hist
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := Label{Name: "le", Value: formatFloat(bound)}
			writeSample(bw, f.name, "_bucket", s.labels, &le, strconv.FormatUint(cum, 10))
		}
		total := h.Count()
		le := Label{Name: "le", Value: "+Inf"}
		writeSample(bw, f.name, "_bucket", s.labels, &le, strconv.FormatUint(total, 10))
		writeSample(bw, f.name, "_sum", s.labels, nil, formatFloat(h.Sum()))
		writeSample(bw, f.name, "_count", s.labels, nil, strconv.FormatUint(total, 10))
	}
}

func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, extra *Label, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || extra != nil {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			writeLabel(bw, l)
		}
		if extra != nil {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			writeLabel(bw, *extra)
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func writeLabel(bw *bufio.Writer, l Label) {
	bw.WriteString(l.Name)
	bw.WriteString(`="`)
	bw.WriteString(escapeLabelValue(l.Value))
	bw.WriteByte('"')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(s string) string { return labelEscaper.Replace(s) }

// Handler serves the registry as a GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}
