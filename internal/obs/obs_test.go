package obs

import (
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseExposition reads "name{labels} value" lines into a map keyed by
// the full series string; comment lines index the TYPE declarations.
func parseExposition(t *testing.T, text string) (values map[string]float64, types map[string]string) {
	t.Helper()
	values = make(map[string]float64)
	types = make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil && line[i+1:] != "NaN" {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[line[:i]] = v
	}
	return values, types
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events seen.")
	byKind := r.Counter("test_kinds_total", "Events by kind.", L("kind", "a"))
	r.Counter("test_kinds_total", "", L("kind", "b")).Add(7)
	g := r.Gauge("test_depth", "Queue depth.")
	r.GaugeFunc("test_sampled", "Sampled at scrape.", func() float64 { return 2.5 })
	r.CounterFunc("test_fn_total", "Read-through counter.", func() uint64 { return 42 })

	c.Add(3)
	c.Inc()
	byKind.Inc()
	g.Set(9)
	g.Add(-2.5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	vals, types := parseExposition(t, sb.String())
	for series, want := range map[string]float64{
		"test_events_total":          4,
		`test_kinds_total{kind="a"}`: 1,
		`test_kinds_total{kind="b"}`: 7,
		"test_depth":                 6.5,
		"test_sampled":               2.5,
		"test_fn_total":              42,
	} {
		if vals[series] != want {
			t.Errorf("%s = %v, want %v\n%s", series, vals[series], want, sb.String())
		}
	}
	for name, want := range map[string]string{
		"test_events_total": "counter",
		"test_depth":        "gauge",
		"test_sampled":      "gauge",
	} {
		if types[name] != want {
			t.Errorf("TYPE %s = %s, want %s", name, types[name], want)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	vals, types := parseExposition(t, sb.String())
	if types["test_latency_seconds"] != "histogram" {
		t.Errorf("TYPE = %s", types["test_latency_seconds"])
	}
	// le buckets are cumulative and le is inclusive (0.1 lands in le="0.1").
	for series, want := range map[string]float64{
		`test_latency_seconds_bucket{le="0.1"}`:  2,
		`test_latency_seconds_bucket{le="1"}`:    3,
		`test_latency_seconds_bucket{le="10"}`:   4,
		`test_latency_seconds_bucket{le="+Inf"}`: 5,
		"test_latency_seconds_count":             5,
	} {
		if vals[series] != want {
			t.Errorf("%s = %v, want %v\n%s", series, vals[series], want, sb.String())
		}
	}
}

func TestHistogramObserveSince(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_elapsed_seconds", "", DefBuckets)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_esc_total", "line one\nline \\two", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP test_esc_total line one\nline \\two`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `test_esc_total{path="a\"b\\c\n"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("test_dup_total", "")
	expectPanic("duplicate series", func() { r.Counter("test_dup_total", "") })
	expectPanic("kind clash", func() { r.Gauge("test_dup_total", "") })
	expectPanic("bad name", func() { r.Counter("0bad", "") })
	expectPanic("bad label", func() { r.Counter("test_lbl_total", "", L("0bad", "v")) })
	expectPanic("unsorted buckets", func() { r.Histogram("test_h_seconds", "", []float64{1, 0.1}) })
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestHandlerServesContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_served_total", "").Add(2)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Errorf("content type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "test_served_total 2") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "")
	g := r.Gauge("test_conc_depth", "")
	h := r.Histogram("test_conc_seconds", "", []float64{1, 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
	if math.Abs(h.Sum()-12000) > 1e-6 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// No observation may allocate: these run on serving hot paths.
	if allocs := testing.AllocsPerRun(100, func() { c.Inc(); g.Add(1); h.Observe(0.5) }); allocs > 0 {
		t.Fatalf("instrument ops allocate (%v allocs/op)", allocs)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("buckets = %v", b)
		}
	}
}
