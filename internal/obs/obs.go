// Package obs is the observability spine of the map: dependency-free
// counters, gauges, and fixed-bucket histograms behind a named registry
// with a Prometheus text-exposition (v0.0.4) http.Handler — the
// production form of the one-off BENCH_*.json artifacts, in the mold of
// Verfploeter's promauto /metrics endpoint next to its measurement
// service. The module has zero external dependencies and this package
// keeps it that way: instruments are plain atomics, exposition is plain
// text.
//
// Instruments are cheap enough for hot paths (one atomic op per event)
// but the probing inner loop stays untouched on principle: subsystems
// observe at run/round/request granularity, never per probe
// (TestRunZeroAllocsPerProbe pins it).
//
// All instrument methods are safe on a nil receiver (they no-op or
// return zero), so call sites can thread optional metrics without
// guarding every observation.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a series. Series of the
// same family (metric name) are distinguished by their label sets.
type Label struct {
	Name  string
	Value string
}

// L builds a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing event counter. The zero value
// is usable but unregistered; get registered counters from
// Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down (sizes, versions,
// ages).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add offsets the value by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative ("le") buckets,
// Prometheus-style: bucket i counts observations <= bounds[i], plus an
// implicit +Inf bucket, a running sum and a total count. Observations
// are two atomic adds and one CAS loop — no locks, no allocation.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0: the idiom for
// latency histograms.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBuckets are general-purpose latency buckets in seconds (the
// Prometheus client default): 5ms up to 10s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// FastBuckets resolve the sub-millisecond serving path (lookup handlers,
// shard folds): 10µs up to 1s.
var FastBuckets = []float64{1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — for when the default spreads don't fit.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance of a family: exactly one of the
// instrument fields is set.
type series struct {
	labels    []Label
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family is every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   kind
	series []*series
}

// Registry names and collects instruments and renders them in the
// Prometheus text format. Registration order is exposition order, so
// scrapes are deterministic. Registering the same name with a different
// type, or the same name and label set twice, panics: both are wiring
// bugs, caught at startup.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, counterKind, &series{labels: labels, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge to subsystems that already keep their
// own atomic counters (prober run stats, store counters, coordinator
// events). fn must be safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, counterKind, &series{labels: labels, counterFn: fn})
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, gaugeKind, &series{labels: labels, gauge: g})
	return g
}

// GaugeFunc registers a gauge sampled from fn at exposition time
// (snapshot age, cache size). fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, gaugeKind, &series{labels: labels, gaugeFn: fn})
}

// Histogram registers and returns a histogram series over the given
// bucket upper bounds (which must be sorted ascending; the +Inf bucket
// is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not sorted", name))
	}
	bounds := append([]float64(nil), buckets...)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.register(name, help, histogramKind, &series{labels: labels, hist: h})
	return h
}

func (r *Registry) register(name, help string, k kind, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range s.labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("obs: metric %q: invalid label name %q", name, l.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, k))
	}
	key := labelKey(s.labels)
	for _, have := range f.series {
		if labelKey(have.labels) == key {
			panic(fmt.Sprintf("obs: duplicate series %s%s", name, key))
		}
	}
	f.series = append(f.series, s)
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	key := "{"
	for i, l := range labels {
		if i > 0 {
			key += ","
		}
		key += l.Name + "=" + l.Value
	}
	return key + "}"
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons reserved for rules, still legal).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
