package bgp

import (
	"sync"
	"testing"

	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
)

var (
	once sync.Once
	w    *netsim.World
	tbl  *Table
)

func testbed(t *testing.T) (*netsim.World, *Table) {
	t.Helper()
	once.Do(func() {
		cfg := netsim.DefaultConfig()
		cfg.Unicast24s = 5000
		w = netsim.New(cfg)
		tbl = FromWorld(w)
	})
	return w, tbl
}

func TestTableCoversWorld(t *testing.T) {
	w, tbl := testbed(t)
	if tbl.Len() != w.NumPrefixes() {
		t.Errorf("table has %d routes for %d prefixes", tbl.Len(), w.NumPrefixes())
	}
}

func TestOriginASMatchesGroundTruth(t *testing.T) {
	w, tbl := testbed(t)
	for _, d := range w.Deployments()[:200] {
		asn, ok := tbl.OriginAS(d.Prefix)
		if !ok || asn != d.ASN {
			t.Fatalf("OriginAS(%v) = %d,%v want %d", d.Prefix, asn, ok, d.ASN)
		}
	}
	if _, ok := tbl.OriginAS(netsim.Prefix24(5)); ok {
		t.Error("unrouted prefix has an origin")
	}
	if tbl.Routed(netsim.Prefix24(5)) {
		t.Error("unrouted prefix reported routed")
	}
}

func TestAnycastMostlySlash24(t *testing.T) {
	// Paper [35]: 88% of anycast prefixes are announced as /24.
	w, tbl := testbed(t)
	frac := tbl.FractionSlash24(w.AnycastPrefixes())
	if frac < 0.84 || frac > 0.92 {
		t.Errorf("anycast /24-announcement fraction = %.3f, want ~0.88", frac)
	}
	if tbl.FractionSlash24(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestRouteLengths(t *testing.T) {
	_, tbl := testbed(t)
	for _, r := range tbl.Routes() {
		if r.AnnouncedLen < 8 || r.AnnouncedLen > 24 {
			t.Fatalf("route %v has announced length %d", r.Prefix, r.AnnouncedLen)
		}
	}
}

func TestCoverage(t *testing.T) {
	// Sec. 3.1: 99.99% of routed /24s have a hitlist representative.
	w, tbl := testbed(t)
	h := hitlist.FromWorld(w)
	covered, total := Coverage(tbl, h)
	if total != tbl.Len() {
		t.Fatal("total mismatch")
	}
	frac := float64(covered) / float64(total)
	if frac < 0.9995 || frac > 1.0 {
		t.Errorf("coverage = %.5f, want ~0.9999", frac)
	}
	if covered == total {
		t.Log("no coverage gap in this small world (acceptable at test scale)")
	}
}

func TestDeterministic(t *testing.T) {
	w, tbl := testbed(t)
	again := FromWorld(w)
	if again.Len() != tbl.Len() {
		t.Fatal("table size differs")
	}
	for i := range tbl.Routes() {
		if tbl.Routes()[i] != again.Routes()[i] {
			t.Fatal("route differs between builds")
		}
	}
}
