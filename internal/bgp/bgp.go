// Package bgp stands in for the RIPE RIS / RouteViews routing-table dumps
// of Sec. 3.1: the set of announced prefixes, their origin ASes, and the
// /24 split used to cross-check hitlist coverage. It also records the
// announced prefix length of each /24, reproducing the observation (paper
// [35]) that anycast announcements are dominated by /24s - BGP practice
// filters anything longer, which is what makes /24 the natural census
// granularity.
package bgp

import (
	"anycastmap/internal/detrand"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
)

// Route is the routing information for one /24 of the split table.
type Route struct {
	Prefix netsim.Prefix24
	// OriginASN is the AS originating the covering announcement.
	OriginASN int
	// AnnouncedLen is the mask length of the covering announcement
	// (<= 24); 24 means the /24 is announced as-is, smaller values mean
	// it is covered by an aggregate and only probed /24 by /24.
	AnnouncedLen int
}

// Table is the /24-split view of the global routing table.
type Table struct {
	routes   []Route
	byPrefix map[netsim.Prefix24]int
}

// FromWorld derives the routing table from the world's ground truth:
// every allocated /24 is routed; 88% of anycast /24s are announced exactly
// as /24s and the rest sit inside short aggregates; the unicast background
// is a mix of announcement sizes.
func FromWorld(w *netsim.World) *Table {
	seed := w.Config().Seed
	var routes []Route
	w.Prefixes(func(p netsim.Prefix24) {
		asn, ok := w.ASNOf(p)
		if !ok {
			return
		}
		length := 24
		u := detrand.UnitFloat(seed, uint64(p), 0xB69B)
		if w.IsAnycast(p) {
			// Paper [35]: 88% of anycast announcements are /24.
			if u > 0.88 {
				length = 22 + detrand.Intn(2, seed, uint64(p), 0xB69C)
			}
		} else {
			// The unicast table is about half /24s, half aggregates.
			if u > 0.5 {
				length = 16 + detrand.Intn(8, seed, uint64(p), 0xB69D)
			}
		}
		routes = append(routes, Route{Prefix: p, OriginASN: asn, AnnouncedLen: length})
	})
	byPrefix := make(map[netsim.Prefix24]int, len(routes))
	for i, r := range routes {
		byPrefix[r.Prefix] = i
	}
	return &Table{routes: routes, byPrefix: byPrefix}
}

// Len returns the number of routed /24s after splitting.
func (t *Table) Len() int { return len(t.routes) }

// Routes returns the split routes. The slice must not be modified.
func (t *Table) Routes() []Route { return t.routes }

// OriginAS maps a /24 to its origin AS (the a-posteriori mapping of
// Sec. 3.1 used to attribute census findings to ASes).
func (t *Table) OriginAS(p netsim.Prefix24) (int, bool) {
	i, ok := t.byPrefix[p]
	if !ok {
		return 0, false
	}
	return t.routes[i].OriginASN, true
}

// Routed reports whether the /24 appears in the table.
func (t *Table) Routed(p netsim.Prefix24) bool {
	_, ok := t.byPrefix[p]
	return ok
}

// FractionSlash24 returns the fraction of the given /24s whose covering
// announcement is exactly a /24.
func (t *Table) FractionSlash24(prefixes []netsim.Prefix24) float64 {
	if len(prefixes) == 0 {
		return 0
	}
	n := 0
	for _, p := range prefixes {
		if i, ok := t.byPrefix[p]; ok && t.routes[i].AnnouncedLen == 24 {
			n++
		}
	}
	return float64(n) / float64(len(prefixes))
}

// Coverage cross-checks the hitlist against the routed /24s (Sec. 3.1:
// 10,615,563 of 10,616,435 routed /24s have a hitlist representative,
// 99.99%). It returns the number of covered /24s and the table size.
func Coverage(t *Table, h *hitlist.Hitlist) (covered, total int) {
	for _, r := range t.routes {
		if h.Covers(r.Prefix) {
			covered++
		}
	}
	return covered, t.Len()
}
