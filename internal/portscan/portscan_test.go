package portscan

import (
	"sync"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

var (
	once sync.Once
	w    *netsim.World
	vp   platform.VP
)

func testbed(t *testing.T) (*netsim.World, platform.VP) {
	t.Helper()
	once.Do(func() {
		cfg := netsim.DefaultConfig()
		cfg.Unicast24s = 2000
		w = netsim.New(cfg)
		vp = platform.PlanetLab(cities.Default()).VPs()[0]
	})
	return w, vp
}

func repOf(t *testing.T, w *netsim.World, name string) netsim.IP {
	t.Helper()
	as := w.Registry.MustByName(name)
	ip, _ := w.Representative(w.DeploymentsByASN(as.ASN)[0].Prefix)
	return ip
}

func TestFullScanCloudFlare(t *testing.T) {
	w, vp := testbed(t)
	target := repOf(t, w, "CLOUDFLARENET,US")
	camp := Scan(w, vp, []netsim.IP{target}, Config{})
	rep := camp.Reports[0]
	if !rep.Responded() {
		t.Fatal("CloudFlare representative exposed no ports")
	}
	// 22 ports in the inventory; in-path filtering may hide a couple.
	if len(rep.Open) < 18 || len(rep.Open) > 22 {
		t.Errorf("found %d open ports on CloudFlare, want ~22", len(rep.Open))
	}
	ports := rep.OpenPortSet()
	for _, must := range []uint16{53, 80, 443} {
		if !ports[must] {
			t.Errorf("port %d missing from CloudFlare scan", must)
		}
	}
	// The HTTP front end fingerprints as cloudflare-nginx.
	found := false
	for _, p := range rep.Open {
		if p.Software == "cloudflare-nginx" {
			found = true
		}
		if p.Port == 443 && !p.SSL {
			t.Error("443 not flagged SSL")
		}
		if p.Port == 80 && (!p.WellKnown || p.Proto != "http") {
			t.Errorf("port 80 misclassified: %+v", p)
		}
	}
	if !found {
		t.Error("cloudflare-nginx fingerprint missing")
	}
}

func TestScanRestrictedPorts(t *testing.T) {
	w, vp := testbed(t)
	target := repOf(t, w, "EDGECAST,US")
	camp := Scan(w, vp, []netsim.IP{target}, Config{Ports: []uint16{53, 80, 443, 1935, 8080, 2052}})
	rep := camp.Reports[0]
	ports := rep.OpenPortSet()
	if ports[8080] || ports[2052] {
		t.Error("EdgeCast exposes CloudFlare-only ports")
	}
	open := 0
	for _, p := range []uint16{53, 80, 443, 1935} {
		if ports[p] {
			open++
		}
	}
	if open < 3 {
		t.Errorf("EdgeCast scan found only %d of its staple ports", open)
	}
}

func TestUnicastMostlyClosed(t *testing.T) {
	w, vp := testbed(t)
	// Scan a handful of unicast representatives on common ports: most
	// expose nothing or a lone web port.
	var targets []netsim.IP
	w.Prefixes(func(p netsim.Prefix24) {
		if len(targets) >= 40 || w.IsAnycast(p) {
			return
		}
		ip, alive := w.Representative(p)
		if alive {
			targets = append(targets, ip)
		}
	})
	camp := Scan(w, vp, targets, Config{Ports: []uint16{80, 443, 22}})
	if camp.RespondingHosts() > len(targets)/2 {
		t.Errorf("%d of %d unicast hosts responded to TCP, want a minority",
			camp.RespondingHosts(), len(targets))
	}
}

func TestDNSOnlyDeployment(t *testing.T) {
	w, vp := testbed(t)
	target := repOf(t, w, "L-ROOT,US")
	camp := Scan(w, vp, []netsim.IP{target}, Config{Ports: []uint16{53, 80, 443}})
	rep := camp.Reports[0]
	ports := rep.OpenPortSet()
	if !ports[53] {
		t.Error("L-root does not expose TCP 53")
	}
	if ports[80] || ports[443] {
		t.Error("L-root exposes web ports")
	}
	for _, p := range rep.Open {
		if p.Port == 53 && p.Software != "NLnet Labs NSD" {
			t.Errorf("L-root fingerprint = %q, want NSD", p.Software)
		}
	}
}

func TestTcpwrappedFingerprint(t *testing.T) {
	// Many DNS ASes have no identifiable banner; the scan reports the
	// open port with empty software.
	w, vp := testbed(t)
	sawWrapped := false
	for _, as := range w.Registry.Top100() {
		if as.Category.Coarse() != "DNS" {
			continue
		}
		set, ok := w.Services.ByASN(as.ASN)
		if !ok || !set.Open(53) {
			continue
		}
		if svc, _ := set.Lookup(53); svc.Software != "" {
			continue
		}
		ip, _ := w.Representative(w.DeploymentsByASN(as.ASN)[0].Prefix)
		camp := Scan(w, vp, []netsim.IP{ip}, Config{Ports: []uint16{53}})
		for _, p := range camp.Reports[0].Open {
			if p.Port == 53 && p.Software == "" {
				sawWrapped = true
			}
		}
		if sawWrapped {
			break
		}
	}
	if !sawWrapped {
		t.Error("no tcpwrapped port-53 service observed")
	}
}

func TestReportsOrderAndSorting(t *testing.T) {
	w, vp := testbed(t)
	targets := []netsim.IP{
		repOf(t, w, "GOOGLE,US"),
		repOf(t, w, "OPENDNS,US"),
	}
	camp := Scan(w, vp, targets, Config{Ports: []uint16{443, 53, 80, 25}})
	if len(camp.Reports) != 2 {
		t.Fatal("report count mismatch")
	}
	for i, r := range camp.Reports {
		if r.Target != targets[i] {
			t.Error("reports out of input order")
		}
		for j := 1; j < len(r.Open); j++ {
			if r.Open[j].Port <= r.Open[j-1].Port {
				t.Error("open ports not sorted")
			}
		}
	}
}

func BenchmarkFullPortscanOneHost(b *testing.B) {
	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 2000
	world := netsim.New(cfg)
	v := platform.PlanetLab(cities.Default()).VPs()[0]
	as := world.Registry.MustByName("CLOUDFLARENET,US")
	ip, _ := world.Representative(world.DeploymentsByASN(as.ASN)[0].Prefix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scan(world, v, []netsim.IP{ip}, Config{})
	}
}

func TestWireModeEquivalence(t *testing.T) {
	w, vp := testbed(t)
	targets := []netsim.IP{
		repOf(t, w, "CLOUDFLARENET,US"),
		repOf(t, w, "GOOGLE,US"),
		repOf(t, w, "L-ROOT,US"),
	}
	ports := []uint16{22, 25, 53, 80, 110, 179, 443, 1935, 2052, 8080, 12345}
	fast := Scan(w, vp, targets, Config{Ports: ports, Round: 3})
	wired := Scan(w, vp, targets, Config{Ports: ports, Round: 3, Wire: true})
	for i := range fast.Reports {
		a, b := fast.Reports[i], wired.Reports[i]
		if len(a.Open) != len(b.Open) {
			t.Fatalf("target %v: %d vs %d open ports", a.Target, len(a.Open), len(b.Open))
		}
		for j := range a.Open {
			if a.Open[j] != b.Open[j] {
				t.Fatalf("target %v port %d: %+v vs %+v", a.Target, a.Open[j].Port, a.Open[j], b.Open[j])
			}
		}
	}
}
