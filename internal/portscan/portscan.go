// Package portscan implements the nmap-style TCP service scan of Sec. 4.3:
// for each anycast /24 of the top-100 ASes, one representative address is
// scanned - at low rate, here meaning bounded concurrency - across the full
// 2^16 TCP port space, and open services are fingerprinted. The scan is
// conservative by construction: distinct addresses of a /24 may expose
// different ports, and in-path filtering eats a fraction of the SYNs.
package portscan

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/services"
	"anycastmap/internal/wire"
)

// OpenPort is one discovered service on a scanned host.
type OpenPort struct {
	Port uint16
	// Proto is the nmap service name associated with the port number.
	Proto string
	SSL   bool
	// WellKnown means the port maps to an assigned service.
	WellKnown bool
	// Software is the fingerprinted implementation; empty means the scan
	// saw an open port but no identifiable banner ("tcpwrapped").
	Software string
}

// HostReport is the scan outcome for one representative address.
type HostReport struct {
	Target netsim.IP
	Open   []OpenPort // sorted by port
}

// Responded reports whether any TCP port answered.
func (h HostReport) Responded() bool { return len(h.Open) > 0 }

// OpenPortSet returns the open port numbers as a set.
func (h HostReport) OpenPortSet() map[uint16]bool {
	out := make(map[uint16]bool, len(h.Open))
	for _, p := range h.Open {
		out[p.Port] = true
	}
	return out
}

// Config tunes a scan campaign.
type Config struct {
	// Ports lists the ports to probe; nil means the full 2^16 space
	// (port 0 excluded).
	Ports []uint16
	// Workers bounds concurrent per-host scans; 0 means GOMAXPROCS.
	Workers int
	// Round decorrelates the in-path filtering draw.
	Round uint64
	// Wire routes every probe through the TCP packet codecs (SYN
	// marshal, SYN-ACK parse); behaviourally identical to the fast path.
	Wire bool
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Campaign is the outcome of scanning a target list.
type Campaign struct {
	Reports []HostReport // one per target, in input order
}

// RespondingHosts counts targets with at least one open port.
func (c *Campaign) RespondingHosts() int {
	n := 0
	for _, r := range c.Reports {
		if r.Responded() {
			n++
		}
	}
	return n
}

// Scan probes every target on every configured port from the given vantage
// point and fingerprints the open services.
func Scan(w *netsim.World, vp platform.VP, targets []netsim.IP, cfg Config) *Campaign {
	camp := &Campaign{Reports: make([]HostReport, len(targets))}
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.workers())
	for i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			camp.Reports[i] = scanHost(w, vp, targets[i], cfg)
		}(i)
	}
	wg.Wait()
	return camp
}

// scanHost scans one representative address.
func scanHost(w *netsim.World, vp platform.VP, target netsim.IP, cfg Config) HostReport {
	rep := HostReport{Target: target}
	probe := func(port uint16) {
		if cfg.Wire {
			src := netsim.IP(0x0A000000 | uint32(vp.ID)&0xFFFF)
			pkt, reply, err := w.ExchangeTCPSYN(vp, src, target, 40000+port%20000, port, cfg.Round)
			if err != nil {
				panic(fmt.Sprintf("portscan: wire path: %v", err))
			}
			if pkt == nil {
				if reply.OK() {
					panic("portscan: open port produced no packet")
				}
				return
			}
			open, err := wire.PortOpen(pkt)
			if err != nil {
				panic(fmt.Sprintf("portscan: decode response: %v", err))
			}
			if !open {
				return
			}
		} else if !w.ProbeTCP(vp, target, port, cfg.Round).OK() {
			return
		}
		sw, _ := w.BannerTCP(vp, target, port, cfg.Round)
		rep.Open = append(rep.Open, OpenPort{
			Port:      port,
			Proto:     protoName(port),
			SSL:       w.ProbeTLS(vp, target, port, cfg.Round),
			WellKnown: services.IsWellKnown(port),
			Software:  sw,
		})
	}
	if cfg.Ports != nil {
		for _, p := range cfg.Ports {
			probe(p)
		}
	} else {
		for p := 1; p <= 0xFFFF; p++ {
			probe(uint16(p))
		}
	}
	sort.Slice(rep.Open, func(a, b int) bool { return rep.Open[a].Port < rep.Open[b].Port })
	return rep
}

// protoName and sslName mirror the scanner-side port classification (an
// nmap-services lookup); they intentionally do not consult the deployment
// inventory, which the scanner cannot see.
func protoName(port uint16) string {
	switch port {
	case 22:
		return "ssh"
	case 53:
		return "domain"
	case 80:
		return "http"
	case 179:
		return "bgp"
	case 443:
		return "http-ssl"
	case 1935:
		return "rtmp"
	case 3306:
		return "mysql"
	case 5252:
		return "movaz-ssc"
	case 8080:
		return "http-proxy"
	case 8083:
		return "us-srv"
	}
	if services.IsWellKnown(port) {
		return "well-known"
	}
	return "unknown"
}
