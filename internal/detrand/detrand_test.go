package detrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return Hash64(a, b, c) == Hash64(a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64OrderSensitive(t *testing.T) {
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Error("Hash64 should depend on argument order")
	}
	if Hash64(1) == Hash64(1, 0) {
		t.Error("Hash64 should depend on arity")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(a, b uint64) bool {
		v := UnitFloat(a, b)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Distribution(t *testing.T) {
	// Mean of many hashed uniforms should be close to 0.5.
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += UnitFloat(uint64(i), 42)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of hashed uniforms = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		v := Intn(10, uint64(i), 7)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 3500 || c > 6500 {
			t.Errorf("digit %d appeared %d of 50000 times; poor uniformity", d, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	Intn(0, 1)
}

func TestNormMoments(t *testing.T) {
	var sum, sumSq float64
	n := 100000
	for i := 0; i < n; i++ {
		v := Norm(uint64(i), 99)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestExpMoments(t *testing.T) {
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		v := Exp(uint64(i), 5)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one input bit should flip ~half the output bits on average.
	var totalFlips int
	trials := 1000
	for i := 0; i < trials; i++ {
		h1 := Hash64(uint64(i))
		h2 := Hash64(uint64(i) ^ 1)
		totalFlips += popcount(h1 ^ h2)
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average = %.1f bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkHash64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hash64(uint64(i), 123, 456)
	}
}
