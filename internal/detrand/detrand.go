// Package detrand provides deterministic pseudo-randomness derived from
// hashing. The network simulator needs quantities that are random across
// (vantage point, target) pairs but stable across runs and probe
// repetitions — e.g. the BGP path stretch between a given VP and a given
// replica must be the same on every probe, without storing a matrix of
// O(VPs x targets) values. Hash-derived randomness gives exactly that:
// a pure function of the identifying tuple and a world seed.
package detrand

import "math"

// Hash64 mixes an arbitrary tuple of values into a single 64-bit hash using
// splitmix64 steps. It is deterministic, fast and well distributed; it is
// not cryptographic.
func Hash64(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h ^= v + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h = mix(h)
	}
	return h
}

// mix is the splitmix64 finalizer.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 maps a hash to [0, 1).
func Float64(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// UnitFloat is shorthand for Float64(Hash64(vs...)).
func UnitFloat(vs ...uint64) float64 {
	return Float64(Hash64(vs...))
}

// Intn maps a hash tuple to [0, n). It panics if n <= 0.
func Intn(n int, vs ...uint64) int {
	if n <= 0 {
		panic("detrand: Intn with non-positive n")
	}
	return int(Hash64(vs...) % uint64(n))
}

// Norm maps a hash tuple to an approximately standard normal variate using
// the Box-Muller transform on two derived uniforms.
func Norm(vs ...uint64) float64 {
	h := Hash64(vs...)
	u1 := Float64(h)
	u2 := Float64(mix(h + 1))
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp maps a hash tuple to an exponential variate with mean 1.
func Exp(vs ...uint64) float64 {
	u := UnitFloat(vs...)
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}
