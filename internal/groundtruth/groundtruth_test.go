package groundtruth

import (
	"sync"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

var (
	once sync.Once
	w    *netsim.World
	pl   *platform.Platform
)

func testbed(t *testing.T) (*netsim.World, *platform.Platform) {
	t.Helper()
	once.Do(func() {
		cfg := netsim.DefaultConfig()
		cfg.Unicast24s = 2000
		w = netsim.New(cfg)
		pl = platform.PlanetLab(cities.Default())
	})
	return w, pl
}

func TestDiscloses(t *testing.T) {
	if h, ok := Discloses("CLOUDFLARENET,US"); !ok || h != "CF-RAY" {
		t.Errorf("CloudFlare header = %q,%v", h, ok)
	}
	if h, ok := Discloses("EDGECAST,US"); !ok || h != "Server" {
		t.Errorf("EdgeCast header = %q,%v", h, ok)
	}
	if _, ok := Discloses("GOOGLE,US"); ok {
		t.Error("Google should not disclose via headers in this model")
	}
}

func TestCollectCloudFlare(t *testing.T) {
	w, pl := testbed(t)
	cf := w.Registry.MustByName("CLOUDFLARENET,US")
	p := w.DeploymentsByASN(cf.ASN)[0].Prefix
	gt, ok := Collect(w, pl.VPs(), p, 0)
	if !ok {
		t.Fatal("CloudFlare GT collection failed")
	}
	if len(gt.Cities) < 5 {
		t.Errorf("GT saw only %d cities", len(gt.Cities))
	}
	// GT is a subset of PAI.
	pai := PAI(w, cf.ASN)
	for k := range gt.Cities {
		if _, ok := pai[k]; !ok {
			t.Errorf("GT city %s not in PAI", k)
		}
	}
	if len(gt.Cities) > len(pai) {
		t.Error("GT larger than PAI")
	}
}

func TestCollectRefusals(t *testing.T) {
	w, pl := testbed(t)
	// A non-disclosing AS.
	gg := w.Registry.MustByName("GOOGLE,US")
	if _, ok := Collect(w, pl.VPs(), w.DeploymentsByASN(gg.ASN)[0].Prefix, 0); ok {
		t.Error("Collect succeeded for a non-disclosing AS")
	}
	// A unicast prefix.
	found := false
	w.Prefixes(func(p netsim.Prefix24) {
		if found || w.IsAnycast(p) {
			return
		}
		found = true
		if _, ok := Collect(w, pl.VPs(), p, 0); ok {
			t.Error("Collect succeeded for a unicast prefix")
		}
	})
}

func TestValidatePrefixScoring(t *testing.T) {
	db := cities.Default()
	ams := db.MustByName("Amsterdam", "NL")
	fra := db.MustByName("Frankfurt", "DE")
	lon := db.MustByName("London", "GB")
	gt := GT{Cities: map[string]cities.City{ams.Key(): ams, fra.Key(): fra}}
	res := core.Result{
		Anycast: true,
		Replicas: []core.GeoReplica{
			{Located: true, City: ams}, // match
			{Located: true, City: lon}, // miss, ~360 km from Amsterdam
			{Located: false},           // unlocated: not scored
		},
	}
	v := ValidatePrefix(res, gt, 4)
	if v.Located != 2 || v.Matched != 1 {
		t.Fatalf("located=%d matched=%d", v.Located, v.Matched)
	}
	if v.TPR() != 0.5 {
		t.Errorf("TPR = %v", v.TPR())
	}
	if len(v.ErrsKm) != 1 || v.ErrsKm[0] < 300 || v.ErrsKm[0] > 420 {
		t.Errorf("errors = %v, want one ~360 km entry", v.ErrsKm)
	}
	if v.GTCities != 2 || v.PAICities != 4 {
		t.Error("footprint sizes wrong")
	}
}

func TestValidateEmptyResult(t *testing.T) {
	v := ValidatePrefix(core.Result{}, GT{Cities: map[string]cities.City{}}, 3)
	if v.TPR() != 0 || v.Located != 0 {
		t.Error("empty result should score zero")
	}
}

func TestSummarize(t *testing.T) {
	vs := []PrefixValidation{
		{Located: 4, Matched: 3, ErrsKm: []float64{100}, GTCities: 3, PAICities: 4},
		{Located: 2, Matched: 2, GTCities: 2, PAICities: 4},
		{Located: 5, Matched: 2, ErrsKm: []float64{300, 500, 700}, GTCities: 4, PAICities: 8},
	}
	s := Summarize(vs)
	if s.Prefixes != 3 {
		t.Error("prefix count wrong")
	}
	if s.MeanTPR < 0.68 || s.MeanTPR > 0.72 {
		t.Errorf("MeanTPR = %v, want ~0.7167*... check", s.MeanTPR)
	}
	if s.MedianErrKm != 400 {
		t.Errorf("MedianErrKm = %v, want 400", s.MedianErrKm)
	}
	if s.MeanGTOverPAI <= 0 || s.MeanGTOverPAI > 1 {
		t.Errorf("GT/PAI = %v", s.MeanGTOverPAI)
	}
	if got := Summarize(nil); got.Prefixes != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestPAICoversAllASDeployments(t *testing.T) {
	w, _ := testbed(t)
	ec := w.Registry.MustByName("EDGECAST,US")
	pai := PAI(w, ec.ASN)
	for _, d := range w.DeploymentsByASN(ec.ASN) {
		for _, r := range d.Replicas {
			if _, ok := pai[r.City.Key()]; !ok {
				t.Fatalf("PAI missing %v", r.City)
			}
		}
	}
}
