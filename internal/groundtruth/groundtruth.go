// Package groundtruth reproduces the validation methodology of Sec. 3.4:
// for CDNs that disclose the location of the answering replica in their
// HTTP response headers - CloudFlare's CF-RAY and EdgeCast's standard
// Server field - curl requests from every vantage point build a measured
// ground truth (GT) per /24. The publicly available information (PAI) on
// the operators' websites lists the full set of locations and is a
// superset of what any probing platform can see. Geolocation output is
// scored against GT by city-level true-positive rate and by the
// great-circle error of misclassifications.
package groundtruth

import (
	"sort"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/stats"
)

// headerStyles lists the AS deployments that disclose replica locations in
// HTTP headers, and which header carries it.
var headerStyles = map[string]string{
	"CLOUDFLARENET,US": "CF-RAY",
	"EDGECAST,US":      "Server",
}

// Discloses reports whether the named AS exposes per-replica geolocation
// over HTTP, and through which header.
func Discloses(asName string) (header string, ok bool) {
	header, ok = headerStyles[asName]
	return header, ok
}

// GT is the measured ground truth for one /24: the set of replica cities
// observed serving the probing platform's vantage points.
type GT struct {
	Prefix netsim.Prefix24
	Cities map[string]cities.City // key() -> city
}

// Collect issues the curl-style requests of Sec. 3.4 from every vantage
// point toward the prefix and decodes the location header. It returns
// ok=false when the deployment does not disclose locations (no
// CF-RAY/Server header) - notably, such HTTP measurements are not possible
// from RIPE Atlas, only from PlanetLab.
func Collect(w *netsim.World, vps []platform.VP, p netsim.Prefix24, round uint64) (GT, bool) {
	d, isAnycast := w.Deployment(p)
	if !isAnycast {
		return GT{}, false
	}
	as, ok := w.Registry.ByASN(d.ASN)
	if !ok {
		return GT{}, false
	}
	if _, discloses := Discloses(as.Name); !discloses {
		return GT{}, false
	}
	set, hasSvc := w.Services.ByASN(d.ASN)
	if !hasSvc || !set.Open(80) {
		return GT{}, false
	}
	gt := GT{Prefix: p, Cities: make(map[string]cities.City)}
	target, _ := w.Representative(p)
	for _, vp := range vps {
		// The HTTP request reaches whichever replica BGP routes this VP
		// to; its header discloses the serving city.
		if !w.ProbeTCP(vp, target, 80, round).OK() {
			continue
		}
		if r, ok := w.ServingReplica(vp, p, round); ok {
			gt.Cities[r.City.Key()] = r.City
		}
	}
	return gt, true
}

// PAI returns the publicly available information for an AS: the full list
// of replica cities across all its deployments, as published on the
// operator's website. It is a superset of any measured GT.
func PAI(w *netsim.World, asn int) map[string]cities.City {
	out := make(map[string]cities.City)
	for _, d := range w.DeploymentsByASN(asn) {
		for _, r := range d.Replicas {
			out[r.City.Key()] = r.City
		}
	}
	return out
}

// PrefixValidation scores one /24's geolocation result against its GT.
type PrefixValidation struct {
	Prefix netsim.Prefix24
	// Located is the number of replicas the analysis geolocated.
	Located int
	// Matched is how many of those agree with the GT at city level.
	Matched int
	// ErrsKm lists, for each misclassified replica, the great-circle
	// distance from the classified city to the nearest GT city.
	ErrsKm []float64
	// GTCities and PAICities size the measured and published footprints.
	GTCities, PAICities int
}

// TPR returns the city-level true-positive rate for the prefix.
func (v PrefixValidation) TPR() float64 {
	if v.Located == 0 {
		return 0
	}
	return float64(v.Matched) / float64(v.Located)
}

// ValidatePrefix compares the analysis result of one /24 with its measured
// ground truth.
func ValidatePrefix(res core.Result, gt GT, paiCities int) PrefixValidation {
	v := PrefixValidation{Prefix: gt.Prefix, GTCities: len(gt.Cities), PAICities: paiCities}
	for _, rep := range res.Replicas {
		if !rep.Located {
			continue
		}
		v.Located++
		if _, ok := gt.Cities[rep.City.Key()]; ok {
			v.Matched++
			continue
		}
		best := geo.MaxSurfaceDistanceKm
		for _, c := range gt.Cities {
			if d := geo.DistanceKm(rep.City.Loc, c.Loc); d < best {
				best = d
			}
		}
		v.ErrsKm = append(v.ErrsKm, best)
	}
	return v
}

// Summary aggregates the per-/24 validations of one AS (the Fig. 7 bars).
type Summary struct {
	// MeanTPR and StdTPR summarize the per-/24 city-level agreement.
	MeanTPR, StdTPR float64
	// MedianErrKm is the median geolocation error over every
	// misclassified replica of the AS.
	MedianErrKm float64
	// MeanGTOverPAI and StdGTOverPAI summarize which fraction of the
	// published footprint the platform could see at all.
	MeanGTOverPAI, StdGTOverPAI float64
	// Prefixes is the number of /24s validated.
	Prefixes int
}

// Summarize aggregates prefix validations.
func Summarize(vs []PrefixValidation) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	var tprs, ratios, errs []float64
	for _, v := range vs {
		if v.Located > 0 {
			tprs = append(tprs, v.TPR())
		}
		if v.PAICities > 0 {
			ratios = append(ratios, float64(v.GTCities)/float64(v.PAICities))
		}
		errs = append(errs, v.ErrsKm...)
	}
	sort.Float64s(errs)
	return Summary{
		MeanTPR:       stats.Mean(tprs),
		StdTPR:        stats.StdDev(tprs),
		MedianErrKm:   stats.Median(errs),
		MeanGTOverPAI: stats.Mean(ratios),
		StdGTOverPAI:  stats.StdDev(ratios),
		Prefixes:      len(vs),
	}
}
