package prober

import (
	"sync"
	"testing"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/record"
)

var (
	worldOnce sync.Once
	sharedW   *netsim.World
	sharedH   *hitlist.Hitlist
	sharedPL  *platform.Platform
)

func testbed(t *testing.T) (*netsim.World, *hitlist.Hitlist, *platform.Platform) {
	t.Helper()
	worldOnce.Do(func() {
		cfg := netsim.DefaultConfig()
		cfg.Unicast24s = 3000
		sharedW = netsim.New(cfg)
		sharedH = hitlist.FromWorld(sharedW)
		sharedPL = platform.PlanetLab(cities.Default())
	})
	return sharedW, sharedH, sharedPL
}

func TestGreylistBasics(t *testing.T) {
	g := NewGreylist()
	if g.Len() != 0 || g.Contains(netsim.IP(1)) {
		t.Fatal("new greylist not empty")
	}
	g.Add(netsim.IP(1), netsim.ReplyAdminFiltered)
	g.Add(netsim.IP(2), netsim.ReplyHostProhibited)
	g.Add(netsim.IP(1), netsim.ReplyAdminFiltered) // idempotent
	if g.Len() != 2 || !g.Contains(netsim.IP(1)) {
		t.Errorf("greylist state wrong: len=%d", g.Len())
	}
	bd := g.Breakdown()
	if bd[netsim.ReplyAdminFiltered] != 1 || bd[netsim.ReplyHostProhibited] != 1 {
		t.Errorf("breakdown = %v", bd)
	}
	other := NewGreylist()
	other.Add(netsim.IP(3), netsim.ReplyNetProhibited)
	g.Merge(other)
	if g.Len() != 3 {
		t.Errorf("after merge len = %d, want 3", g.Len())
	}
	ts := g.Targets()
	if len(ts) != 3 || !ts[netsim.IP(3)] {
		t.Errorf("Targets() = %v", ts)
	}
}

func TestGreylistConcurrency(t *testing.T) {
	g := NewGreylist()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(netsim.IP(base*1000+j), netsim.ReplyAdminFiltered)
				g.Contains(netsim.IP(j))
			}
		}(i)
	}
	wg.Wait()
	if g.Len() != 8000 {
		t.Errorf("concurrent adds lost entries: %d", g.Len())
	}
}

func TestRunBasics(t *testing.T) {
	w, h, pl := testbed(t)
	vp := pl.VPs()[0]
	targets := h.PruneNeverAlive().Targets()

	var mu sync.Mutex
	var samples []record.Sample
	stats, grey, err := Run(w, vp, targets, nil, Config{Seed: 1, Round: 0}, func(s record.Sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	if stats.Sent != len(targets) {
		t.Errorf("sent %d, want %d", stats.Sent, len(targets))
	}
	if stats.Echo+stats.Errors+stats.Timeouts != stats.Sent {
		t.Error("stats do not add up")
	}
	// On the pruned list, about two thirds of targets answer (plus all
	// the anycast /24s).
	frac := float64(stats.Echo) / float64(stats.Sent)
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("echo fraction = %.2f", frac)
	}
	if stats.Errors == 0 || grey.Len() != stats.Errors {
		t.Errorf("errors=%d greylist=%d", stats.Errors, grey.Len())
	}
	if len(samples) != stats.Echo+stats.Errors {
		t.Errorf("recorded %d samples, want %d", len(samples), stats.Echo+stats.Errors)
	}
	if stats.SourceDropped != 0 {
		t.Errorf("dropped %d replies at the default slow rate, want 0", stats.SourceDropped)
	}
}

func TestRunSkipsGreylist(t *testing.T) {
	w, h, pl := testbed(t)
	vp := pl.VPs()[1]
	targets := h.PruneNeverAlive().Targets()[:500]
	skip := NewGreylist()
	for _, ip := range targets[:100] {
		skip.Add(ip, netsim.ReplyAdminFiltered)
	}
	stats, _, err := Run(w, vp, targets, skip, Config{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 400 {
		t.Errorf("sent %d probes, want 400 after greylist skip", stats.Sent)
	}
}

func TestFastRateDropsReplies(t *testing.T) {
	// The Sec. 3.5 lesson: probing at 10k pps loses replies near the
	// source on many vantage points; 1k pps is safe.
	w, h, pl := testbed(t)
	targets := h.PruneNeverAlive().Targets()
	droppedSomewhere := false
	for _, vp := range pl.VPs()[:12] {
		fast, _, errF := Run(w, vp, targets[:2000], nil, Config{Seed: 1, Rate: 12000}, nil)
		slow, _, errS := Run(w, vp, targets[:2000], nil, Config{Seed: 1, Rate: 1000}, nil)
		if errF != nil || errS != nil {
			t.Fatal(errF, errS)
		}
		if slow.SourceDropped != 0 {
			t.Errorf("%s dropped replies at 1k pps", vp.Name)
		}
		if fast.SourceDropped > 0 {
			droppedSomewhere = true
			if fast.Echo >= slow.Echo {
				t.Errorf("%s: fast echo %d >= slow echo %d despite drops", vp.Name, fast.Echo, slow.Echo)
			}
		}
	}
	if !droppedSomewhere {
		t.Error("no vantage point dropped replies at 12k pps; rate-limit model inert")
	}
}

func TestCompletionTimeScalesWithLoad(t *testing.T) {
	w, h, pl := testbed(t)
	targets := h.PruneNeverAlive().Targets()[:1000]
	var fastVP, slowVP platform.VP
	for _, vp := range pl.VPs() {
		if vp.LoadFactor < 0.7 {
			fastVP = vp
		}
		if vp.LoadFactor > 2.5 {
			slowVP = vp
		}
	}
	if fastVP.Name == "" || slowVP.Name == "" {
		t.Skip("load factor extremes not present in sample")
	}
	fast, _, _ := Run(w, fastVP, targets, nil, Config{Seed: 1}, nil)
	slow, _, _ := Run(w, slowVP, targets, nil, Config{Seed: 1}, nil)
	if fast.Completion >= slow.Completion {
		t.Errorf("loaded host completed faster: %v vs %v", slow.Completion, fast.Completion)
	}
	want := time.Duration(float64(len(targets)) / 1000 * fastVP.LoadFactor * float64(time.Second))
	if fast.Completion != want {
		t.Errorf("completion = %v, want %v", fast.Completion, want)
	}
}

func TestRunDeterministic(t *testing.T) {
	w, h, pl := testbed(t)
	vp := pl.VPs()[2]
	targets := h.PruneNeverAlive().Targets()[:1000]
	s1, g1, _ := Run(w, vp, targets, nil, Config{Seed: 7}, nil)
	s2, g2, _ := Run(w, vp, targets, nil, Config{Seed: 7}, nil)
	if s1 != s2 || g1.Len() != g2.Len() {
		t.Error("identical runs diverged")
	}
}

func TestRunEmptyTargets(t *testing.T) {
	w, _, pl := testbed(t)
	stats, grey, err := Run(w, pl.VPs()[0], nil, nil, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 0 || grey.Len() != 0 {
		t.Error("empty run did something")
	}
}

func TestBuildBlacklist(t *testing.T) {
	w, h, pl := testbed(t)
	targets := h.Targets()
	bl, err := BuildBlacklist(w, pl.VPs()[0], targets, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() == 0 {
		t.Fatal("blacklist empty")
	}
	// Sec. 3.3: ~98.5% of the greylist comes from administrative
	// filtering (code 13).
	bd := bl.Breakdown()
	frac := float64(bd[netsim.ReplyAdminFiltered]) / float64(bl.Len())
	if frac < 0.90 {
		t.Errorf("admin-filtered greylist share = %.2f, want ~0.985", frac)
	}
}

func TestRunWireModeMatchesFastPath(t *testing.T) {
	// Wire mode routes probes through the packet codecs; it must agree
	// with the fast path and report failures as errors, never panic.
	w, h, pl := testbed(t)
	vp := pl.VPs()[3]
	targets := h.PruneNeverAlive().Targets()[:500]
	fast, _, err := Run(w, vp, targets, nil, Config{Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wired, _, err := Run(w, vp, targets, nil, Config{Seed: 5, Wire: true}, nil)
	if err != nil {
		t.Fatalf("wire path errored: %v", err)
	}
	if fast.Echo != wired.Echo || fast.Errors != wired.Errors || fast.Timeouts != wired.Timeouts {
		t.Errorf("wire run diverged: fast %v vs wire %v", fast, wired)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{VP: platform.VP{Name: "x"}, Sent: 1}
	if s.String() == "" {
		t.Error("empty Stats string")
	}
}

func TestGreylistSnapshotRoundTrip(t *testing.T) {
	g := NewGreylist()
	g.Add(netsim.IP(1), netsim.ReplyAdminFiltered)
	g.Add(netsim.IP(2), netsim.ReplyNetProhibited)
	snap := g.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	// Mutating the snapshot must not touch the original.
	snap[netsim.IP(3)] = netsim.ReplyHostProhibited
	if g.Contains(netsim.IP(3)) {
		t.Error("snapshot aliases the greylist")
	}
	back := FromSnapshot(snap)
	if back.Len() != 3 || !back.Contains(netsim.IP(1)) || !back.Contains(netsim.IP(3)) {
		t.Errorf("rebuilt greylist wrong: %v", back.Snapshot())
	}
}
