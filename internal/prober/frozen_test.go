package prober

import (
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/record"
)

func TestFrozenGreylistMatchesMutable(t *testing.T) {
	g := NewGreylist()
	for i := 0; i < 5000; i += 3 {
		g.Add(netsim.IP(1<<24+i*977), netsim.ReplyAdminFiltered)
	}
	f := g.Freeze()
	if f.Len() != g.Len() {
		t.Fatalf("frozen Len %d != mutable Len %d", f.Len(), g.Len())
	}
	for i := 0; i < 5000; i++ {
		ip := netsim.IP(1<<24 + i*977)
		if f.Contains(ip) != g.Contains(ip) {
			t.Fatalf("frozen/mutable disagree on %v", ip)
		}
	}
	if g.Freeze() != f {
		t.Fatal("Freeze without mutation should return the cached view")
	}
	g.Add(netsim.IP(42), netsim.ReplyNetProhibited)
	f2 := g.Freeze()
	if f2 == f {
		t.Fatal("Add did not invalidate the frozen view")
	}
	if !f2.Contains(netsim.IP(42)) || f.Contains(netsim.IP(42)) {
		t.Fatal("new view must see the addition, old view must not")
	}

	other := NewGreylist()
	other.Add(netsim.IP(99), netsim.ReplyHostProhibited)
	g.Merge(other)
	if !g.Freeze().Contains(netsim.IP(99)) {
		t.Fatal("Merge did not invalidate the frozen view")
	}

	var nilG *Greylist
	if nilG.Freeze().Contains(netsim.IP(1)) {
		t.Fatal("nil greylist must freeze to an empty view")
	}
}

// TestFrozenGreylistWindow pins the span windowing the probing hot path
// relies on: membership through any [lo, hi] window matches the full
// view for addresses inside the window, and everything outside reads
// absent.
func TestFrozenGreylistWindow(t *testing.T) {
	g := NewGreylist()
	for i := 0; i < 4000; i += 2 {
		g.Add(netsim.IP(1<<20+i*131), netsim.ReplyAdminFiltered)
	}
	f := g.Freeze()
	for _, w := range [][2]netsim.IP{
		{0, ^netsim.IP(0)},                    // everything
		{1 << 20, 1<<20 + 1000},               // head slice
		{1<<20 + 99999, 1<<20 + 200000},       // middle
		{1<<20 + 523999, 1<<20 + 524000},      // tail edge
		{5, 9},                                // empty, below
		{1 << 30, 1<<30 + 5},                  // empty, above
		{1<<20 + 131, 1<<20 + 131},            // single address
	} {
		win := f.Window(w[0], w[1])
		for i := 0; i < 4000; i++ {
			ip := netsim.IP(1<<20 + i*131)
			want := f.Contains(ip) && ip >= w[0] && ip <= w[1]
			if win.Contains(ip) != want {
				t.Fatalf("window [%v,%v] disagrees on %v: got %v, want %v", w[0], w[1], ip, win.Contains(ip), want)
			}
		}
	}
	var nilF *FrozenGreylist
	empty := nilF.Window(0, 10)
	if empty.Contains(netsim.IP(5)) {
		t.Fatal("nil view must window to empty")
	}
}

// TestRunZeroAllocsPerProbe pins the acceptance criterion that the probing
// inner loop does not allocate per probe: the allocation count of a full
// run is a small constant independent of the target count.
func TestRunZeroAllocsPerProbe(t *testing.T) {
	cfg := netsim.DefaultConfig()
	cfg.Unicast24s = 3000
	w := netsim.New(cfg)
	vp := platform.PlanetLab(cities.Default()).VPs()[0]
	var targets []netsim.IP
	w.Prefixes(func(p netsim.Prefix24) {
		if ip, alive := w.Representative(p); alive {
			targets = append(targets, ip)
		}
	})
	skip, err := BuildBlacklist(w, vp, targets, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := func(record.Sample) {}

	runAllocs := func(lo, hi int) float64 {
		sub := targets[lo:hi]
		// Warm the session, the frozen view and the found-map buckets so
		// the measured passes only see steady-state work.
		if _, _, err := Run(w, vp, sub, skip, Config{Seed: 7, Round: 1}, sink); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			if _, _, err := Run(w, vp, sub, skip, Config{Seed: 7, Round: 1}, sink); err != nil {
				t.Fatal(err)
			}
		})
	}

	small, large := runAllocs(0, len(targets)/4), runAllocs(0, len(targets))
	// A mid-list span exercises the span-session resolver's windowed
	// path (cursor repositioning, greylist window) under the same budget.
	mid := runAllocs(len(targets)/3, 2*len(targets)/3)
	// The per-run constant covers the stats, permutation, span-slab and
	// greylist objects; what it must NOT do is scale with the probe count.
	if large > small+8 {
		t.Fatalf("allocations scale with target count: %v allocs at n=%d vs %v at n=%d",
			small, len(targets)/4, large, len(targets))
	}
	if large > 24 {
		t.Fatalf("full run allocated %v times; the inner loop must be allocation-free", large)
	}
	if mid > 24 {
		t.Fatalf("mid-list span run allocated %v times; the span path must be allocation-free per probe", mid)
	}
}
