package prober

import (
	"sync"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/record"
)

var (
	pbOnce    sync.Once
	pbWorld   *netsim.World
	pbVP      platform.VP
	pbTargets []netsim.IP
	pbSkip    *Greylist
)

func pbSetup(b *testing.B) {
	b.Helper()
	pbOnce.Do(func() {
		cfg := netsim.DefaultConfig()
		cfg.Unicast24s = 8000
		pbWorld = netsim.New(cfg)
		pbVP = platform.PlanetLab(cities.Default()).VPs()[0]
		pbWorld.Prefixes(func(p netsim.Prefix24) {
			if ip, alive := pbWorld.Representative(p); alive {
				pbTargets = append(pbTargets, ip)
			}
		})
		// A realistic blacklist: the hosts that object to probing.
		skip, err := BuildBlacklist(pbWorld, pbVP, pbTargets, Config{Seed: 1})
		if err != nil {
			panic(err)
		}
		pbSkip = skip
	})
	b.ResetTimer()
}

// BenchmarkProberRun measures one full probing run (the census hot loop):
// LFSR walk, greylist check, probe, stats, sink. allocs/op divided by the
// target count is the per-probe allocation rate the acceptance criteria
// bound at zero.
func BenchmarkProberRun(b *testing.B) {
	pbSetup(b)
	b.ReportAllocs()
	sink := func(record.Sample) {}
	for i := 0; i < b.N; i++ {
		stats, _, err := Run(pbWorld, pbVP, pbTargets, pbSkip, Config{Seed: 7, Round: uint64(i%4 + 1)}, sink)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Sent == 0 {
			b.Fatal("no probes sent")
		}
	}
	b.ReportMetric(float64(len(pbTargets)), "probes/op")
}

// BenchmarkGreylistContains measures the per-probe membership check on the
// mutable (RWMutex-guarded) greylist.
func BenchmarkGreylistContains(b *testing.B) {
	pbSetup(b)
	b.ReportAllocs()
	hit := 0
	for i := 0; i < b.N; i++ {
		if pbSkip.Contains(pbTargets[i%len(pbTargets)]) {
			hit++
		}
	}
	_ = hit
}

// BenchmarkGreylistFrozenContains measures the same membership check on the
// frozen lock-free view the probing loop actually uses.
func BenchmarkGreylistFrozenContains(b *testing.B) {
	pbSetup(b)
	frozen := pbSkip.Freeze()
	b.ReportAllocs()
	hit := 0
	for i := 0; i < b.N; i++ {
		if frozen.Contains(pbTargets[i%len(pbTargets)]) {
			hit++
		}
	}
	_ = hit
}
