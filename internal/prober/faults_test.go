package prober

import (
	"errors"
	"sync"
	"testing"
	"time"

	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/record"
)

// crashingVP finds a vantage point the plan schedules to crash in round.
func crashingVP(t *testing.T, pl *platform.Platform, plan *netsim.FaultPlan, round uint64) platform.VP {
	t.Helper()
	for _, vp := range pl.VPs() {
		if c, _ := plan.Crashes(vp.ID, round); c {
			return vp
		}
	}
	t.Fatal("fault plan crashes no vantage point of the platform")
	return platform.VP{}
}

func TestRunCrashAbortsMidRun(t *testing.T) {
	w, h, pl := testbed(t)
	plan, err := netsim.NewFaultPlan(netsim.FaultConfig{Seed: 21, CrashFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	fw := w.WithFaults(plan)
	vp := crashingVP(t, pl, plan, 1)
	targets := h.PruneNeverAlive().Targets()

	stats, _, err := Run(fw, vp, targets, nil, Config{Seed: 1, Round: 1}, nil)
	var crash *netsim.VPCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("crashed VP returned %v, want VPCrashError", err)
	}
	if crash.VP != vp.Name || crash.Round != 1 || crash.Attempt != 0 {
		t.Errorf("crash identity wrong: %+v", crash)
	}
	if stats.Sent == 0 || stats.Sent >= len(targets) {
		t.Errorf("crashed run sent %d of %d probes, want a strict partial", stats.Sent, len(targets))
	}
	// The partial run still accounts for its wall-clock time.
	want := time.Duration(float64(stats.Sent) / 1000 * vp.LoadFactor * float64(time.Second))
	if stats.Completion != want {
		t.Errorf("partial completion = %v, want %v", stats.Completion, want)
	}
}

func TestRunCrashRecoveryOnRetry(t *testing.T) {
	w, h, pl := testbed(t)
	plan, err := netsim.NewFaultPlan(netsim.FaultConfig{Seed: 21, CrashFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	fw := w.WithFaults(plan)
	vp := crashingVP(t, pl, plan, 1)
	targets := h.PruneNeverAlive().Targets()[:1000]

	if _, _, err := Run(fw, vp, targets, nil, Config{Seed: 1, Round: 1, Attempt: 0}, nil); err == nil {
		t.Fatal("attempt 0 did not crash")
	}
	// Non-sticky crash, default RecoveryAttempts=1: the retry completes and
	// matches a run against the faultless world sample for sample.
	var mu sync.Mutex
	retried := map[netsim.IP]time.Duration{}
	rStats, _, err := Run(fw, vp, targets, nil, Config{Seed: 1, Round: 1, Attempt: 1}, func(s record.Sample) {
		mu.Lock()
		retried[s.Target] = s.RTT
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("retry attempt crashed: %v", err)
	}
	if rStats.Sent != len(targets) {
		t.Errorf("retry sent %d, want %d", rStats.Sent, len(targets))
	}
	clean := map[netsim.IP]time.Duration{}
	cStats, _, err := Run(w, vp, targets, nil, Config{Seed: 1, Round: 1}, func(s record.Sample) {
		mu.Lock()
		clean[s.Target] = s.RTT
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(retried) != len(clean) || rStats.Echo != cStats.Echo {
		t.Fatalf("recovered run diverged from faultless run: %d vs %d samples", len(retried), len(clean))
	}
	for ip, rtt := range clean {
		if retried[ip] != rtt {
			t.Fatalf("RTT toward %v changed across recovery: %v vs %v", ip, retried[ip], rtt)
		}
	}
}

func TestRunFlapElevatesTimeouts(t *testing.T) {
	w, h, pl := testbed(t)
	plan, err := netsim.NewFaultPlan(netsim.FaultConfig{Seed: 9, FlapFraction: 1, FlapWindow: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	fw := w.WithFaults(plan)
	vp := pl.VPs()[4]
	targets := h.PruneNeverAlive().Targets()[:2000]

	clean, _, err := Run(w, vp, targets, nil, Config{Seed: 1, Round: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	flapped, _, err := Run(fw, vp, targets, nil, Config{Seed: 1, Round: 1}, nil)
	if err != nil {
		t.Fatalf("flap must degrade, not abort: %v", err)
	}
	if flapped.FaultLost == 0 {
		t.Fatal("flap lost no probes")
	}
	if frac := float64(flapped.FaultLost) / float64(flapped.Sent); frac < 0.25 || frac > 0.35 {
		t.Errorf("flap lost %.2f of probes, want ~0.30", frac)
	}
	if flapped.Timeouts <= clean.Timeouts {
		t.Errorf("timeouts not elevated: %d vs %d clean", flapped.Timeouts, clean.Timeouts)
	}
	if flapped.Echo+flapped.Errors+flapped.Timeouts != flapped.Sent {
		t.Error("faulty stats do not add up")
	}
	if flapped.Sent != clean.Sent {
		t.Errorf("flap changed the probe count: %d vs %d", flapped.Sent, clean.Sent)
	}
}

func TestRunFaultsDeterministic(t *testing.T) {
	w, h, pl := testbed(t)
	plan, _ := netsim.NewFaultPlan(netsim.FaultConfig{
		Seed: 33, CrashFraction: 0.2, FlapFraction: 0.3, BurstLossFraction: 0.3,
	})
	fw := w.WithFaults(plan)
	targets := h.PruneNeverAlive().Targets()[:1500]
	for _, vp := range pl.VPs()[:8] {
		s1, _, e1 := Run(fw, vp, targets, nil, Config{Seed: 7, Round: 2}, nil)
		s2, _, e2 := Run(fw, vp, targets, nil, Config{Seed: 7, Round: 2}, nil)
		if s1 != s2 {
			t.Fatalf("%s: identical faulty runs diverged: %v vs %v", vp.Name, s1, s2)
		}
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("%s: crash outcome diverged", vp.Name)
		}
	}
}

func TestCompletionCountsOnlySentProbes(t *testing.T) {
	// Regression: Completion used to be computed from len(targets) and the
	// sample clock from the raw permutation index, so greylist-skipped
	// targets inflated both. Only probes actually sent take wall-clock time.
	w, h, pl := testbed(t)
	vp := pl.VPs()[5]
	targets := h.PruneNeverAlive().Targets()[:800]
	skip := NewGreylist()
	for _, ip := range targets[:400] {
		skip.Add(ip, netsim.ReplyAdminFiltered)
	}

	var mu sync.Mutex
	var maxTs uint32
	stats, _, err := Run(w, vp, targets, skip, Config{Seed: 3, Round: 1}, func(s record.Sample) {
		mu.Lock()
		if s.TimestampMs > maxTs {
			maxTs = s.TimestampMs
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sent != 400 {
		t.Fatalf("sent %d, want 400", stats.Sent)
	}
	want := time.Duration(float64(stats.Sent) / 1000 * vp.LoadFactor * float64(time.Second))
	if stats.Completion != want {
		t.Errorf("completion = %v, want %v (Sent-based)", stats.Completion, want)
	}
	// At 1k pps the i-th sent probe is stamped (i-1)·1ms·load: the last
	// possible stamp comes from probe 400. The old index-based clock could
	// stamp up to probe 800.
	bound := uint32(float64(stats.Sent-1) * 1.0 * vp.LoadFactor)
	if maxTs > bound {
		t.Errorf("sample timestamp %dms exceeds the sent-probe clock bound %dms", maxTs, bound)
	}
}
