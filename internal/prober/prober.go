// Package prober is the measurement engine of the census, modelled on
// Fastping (Sec. 3.3): an ICMP scanner that walks its target list in a
// randomized LFSR permutation, honours a greylist of hosts that asked not
// to be probed, and paces itself to the configured rate. Like its
// real-world counterpart it is a good Internet citizen: probing too fast
// aggregates replies at the vantage point and loses them (Sec. 3.5 - the
// counter-intuitive lesson that censuses complete sooner when the prober is
// slowed down by an order of magnitude).
package prober

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anycastmap/internal/detrand"
	"anycastmap/internal/lfsr"
	"anycastmap/internal/netsim"
	"anycastmap/internal/obs"
	"anycastmap/internal/platform"
	"anycastmap/internal/record"
)

// Metrics aggregates run-level probing counters across every Run in the
// process. Run observes into it exactly once per returned run — never
// inside the per-probe loop — so the counters cost nothing on the
// zero-alloc hot path (TestRunZeroAllocsPerProbe pins that the loop is
// unchanged with metrics enabled).
type Metrics struct {
	Runs          atomic.Uint64
	ProbesSent    atomic.Uint64
	EchoReplies   atomic.Uint64
	ErrorReplies  atomic.Uint64
	Timeouts      atomic.Uint64
	SourceDropped atomic.Uint64
	FaultLost     atomic.Uint64
	// SpansInFlight counts probing runs — (VP, span) work units —
	// currently executing; spanSeconds records each unit's wall-clock
	// duration. Both are observed at run granularity, never per probe,
	// and spanSeconds stays a no-op until Register wires a histogram.
	SpansInFlight atomic.Int64
	spanSeconds   atomic.Pointer[obs.Histogram]
}

// DefaultMetrics is the process-wide aggregate every Run observes into;
// Register exposes it on a scrape registry.
var DefaultMetrics Metrics

func (m *Metrics) observe(st *Stats) {
	m.Runs.Add(1)
	m.ProbesSent.Add(uint64(st.Sent))
	m.EchoReplies.Add(uint64(st.Echo))
	m.ErrorReplies.Add(uint64(st.Errors))
	m.Timeouts.Add(uint64(st.Timeouts))
	m.SourceDropped.Add(uint64(st.SourceDropped))
	m.FaultLost.Add(uint64(st.FaultLost))
}

// Register exposes the probe counters as anycastmap_probe_* series.
// Probes/s is the scrape-side rate() of anycastmap_probe_probes_sent_total.
func (m *Metrics) Register(r *obs.Registry) {
	r.CounterFunc("anycastmap_probe_runs_total", "Completed per-VP probing runs (including aborted ones).", m.Runs.Load)
	r.CounterFunc("anycastmap_probe_probes_sent_total", "ICMP probes sent across all runs.", m.ProbesSent.Load)
	r.CounterFunc("anycastmap_probe_echo_replies_total", "Echo replies received.", m.EchoReplies.Load)
	r.CounterFunc("anycastmap_probe_error_replies_total", "Greylistable ICMP error replies received.", m.ErrorReplies.Load)
	r.CounterFunc("anycastmap_probe_timeouts_total", "Probes that timed out (includes fault-lost and source-dropped).", m.Timeouts.Load)
	r.CounterFunc("anycastmap_probe_source_dropped_total", "Replies dropped at the vantage point from excessive probing rates.", m.SourceDropped.Load)
	r.CounterFunc("anycastmap_probe_fault_lost_total", "Probes lost to injected flap/burst faults.", m.FaultLost.Load)
	r.GaugeFunc("anycastmap_probe_spans_in_flight", "Probing runs ((VP, span) work units) currently executing.",
		func() float64 { return float64(m.SpansInFlight.Load()) })
	m.spanSeconds.Store(r.Histogram("anycastmap_probe_span_seconds",
		"Wall-clock duration of one (VP, span) probing run.", obs.FastBuckets))
}

// RegisterGreylistGauge exposes a greylist's live size as
// anycastmap_probe_greylist_size{list="..."} — typically the persistent
// blacklist a daemon probes around. A nil greylist reads zero.
func RegisterGreylistGauge(r *obs.Registry, g *Greylist, list string) {
	r.GaugeFunc("anycastmap_probe_greylist_size", "Hosts in the greylist.", func() float64 {
		if g == nil {
			return 0
		}
		return float64(g.Len())
	}, obs.L("list", list))
}

// Greylist is a concurrency-safe set of hosts whose ICMP errors asked us to
// stop probing them (type 3 codes 9, 10 and 13). Entries accumulate during
// a census and merge into the persistent blacklist between censuses.
type Greylist struct {
	mu sync.RWMutex
	m  map[netsim.IP]netsim.ReplyKind
	// frozen caches the immutable read view handed to probing runs;
	// mutations invalidate it. See Freeze.
	frozen atomic.Pointer[FrozenGreylist]
}

// NewGreylist returns an empty greylist.
func NewGreylist() *Greylist {
	return &Greylist{m: make(map[netsim.IP]netsim.ReplyKind)}
}

// Add records a host and the error that put it here.
func (g *Greylist) Add(ip netsim.IP, kind netsim.ReplyKind) {
	g.mu.Lock()
	g.m[ip] = kind
	g.frozen.Store(nil)
	g.mu.Unlock()
}

// FrozenGreylist is an immutable, lock-free membership view of a greylist
// at a point in time: a sorted address slice checked by binary search. A
// census run snapshots the blacklist once and then does per-probe lookups
// without touching the RWMutex - the mutable greylist keeps taking writes
// (for the NEXT census) in the meantime.
type FrozenGreylist struct {
	ips []netsim.IP
}

// Freeze snapshots the greylist. The view is cached until the next
// mutation, so concurrent runs freezing the same blacklist share one
// snapshot. A nil greylist freezes to an empty view.
func (g *Greylist) Freeze() *FrozenGreylist {
	if g == nil {
		return nil
	}
	if f := g.frozen.Load(); f != nil {
		return f
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if f := g.frozen.Load(); f != nil {
		return f
	}
	f := &FrozenGreylist{ips: make([]netsim.IP, 0, len(g.m))}
	for ip := range g.m {
		f.ips = append(f.ips, ip)
	}
	sort.Slice(f.ips, func(a, b int) bool { return f.ips[a] < f.ips[b] })
	g.frozen.Store(f)
	return f
}

// Contains reports membership without locking or allocating. It is safe on
// a nil view (reports false).
func (f *FrozenGreylist) Contains(ip netsim.IP) bool {
	if f == nil {
		return false
	}
	lo, hi := 0, len(f.ips)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.ips[mid] < ip {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(f.ips) && f.ips[lo] == ip
}

// Len returns the number of addresses in the view.
func (f *FrozenGreylist) Len() int {
	if f == nil {
		return 0
	}
	return len(f.ips)
}

// Window returns the sub-view covering addresses in [lo, hi]. A probing
// run over a narrow target span binary-searches the window's handful of
// entries instead of the full blacklist (millions of entries at paper
// scale) on every probe. Safe on a nil view, which windows to empty.
func (f *FrozenGreylist) Window(lo, hi netsim.IP) FrozenGreylist {
	if f == nil {
		return FrozenGreylist{}
	}
	a, b := 0, len(f.ips)
	for a < b {
		mid := int(uint(a+b) >> 1)
		if f.ips[mid] < lo {
			a = mid + 1
		} else {
			b = mid
		}
	}
	c, d := a, len(f.ips)
	for c < d {
		mid := int(uint(c+d) >> 1)
		if f.ips[mid] <= hi {
			c = mid + 1
		} else {
			d = mid
		}
	}
	return FrozenGreylist{ips: f.ips[a:c]}
}

// Contains reports whether the host is greylisted.
func (g *Greylist) Contains(ip netsim.IP) bool {
	g.mu.RLock()
	_, ok := g.m[ip]
	g.mu.RUnlock()
	return ok
}

// Len returns the number of greylisted hosts.
func (g *Greylist) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.m)
}

// Merge folds other into g.
func (g *Greylist) Merge(other *Greylist) {
	other.mu.RLock()
	defer other.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	for ip, k := range other.m {
		g.m[ip] = k
	}
	g.frozen.Store(nil)
}

// Breakdown counts entries by ICMP error kind (Sec. 3.3 reports 98.5%
// administratively filtered).
func (g *Greylist) Breakdown() map[netsim.ReplyKind]int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[netsim.ReplyKind]int)
	for _, k := range g.m {
		out[k]++
	}
	return out
}

// Targets returns the greylisted addresses as a set usable with
// Hitlist.Without.
func (g *Greylist) Targets() map[netsim.IP]bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[netsim.IP]bool, len(g.m))
	for ip := range g.m {
		out[ip] = true
	}
	return out
}

// Config tunes one probing run.
type Config struct {
	// Rate is the probing rate in probes per second. The default 1,000
	// is the deliberately slowed-down Fastping rate that avoids
	// saturating the vantage point's access network; 10,000 is the rate
	// that triggered heterogeneous reply drops.
	Rate float64
	// Round is the census round; it decorrelates per-probe jitter
	// between censuses.
	Round uint64
	// Seed decorrelates the LFSR permutation between runs.
	Seed uint64
	// Attempt is the retry attempt number within the round (0 for the
	// first try). It is threaded to the world's fault plan so a vantage
	// point that crashed can recover — or crash again — on retry; it
	// does not change the permutation or the RTT draws, so samples from
	// different attempts of the same round agree.
	Attempt int
	// Wire routes every probe through the packet codecs (IPv4 + ICMP
	// marshal on send, parse on receive) instead of the fast path. The
	// two are behaviourally identical; wire mode buys fidelity at a
	// modest CPU cost.
	Wire bool
}

func (c Config) rate() float64 {
	if c.Rate <= 0 {
		return 1000
	}
	return c.Rate
}

// Stats summarizes one vantage point's census run.
type Stats struct {
	VP            platform.VP
	Sent          int
	Echo          int
	Errors        int
	Timeouts      int
	SourceDropped int
	// FaultLost counts probes lost to injected flap/burst faults; they
	// are included in Timeouts.
	FaultLost int
	// Completion is the simulated wall-clock duration of the run,
	// including the host's load factor (Fig. 8). Only probes actually
	// sent take wall-clock time: greylist-skipped targets cost nothing.
	Completion time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: sent=%d echo=%d err=%d timeout=%d dropped=%d faultlost=%d in %v",
		s.VP.Name, s.Sent, s.Echo, s.Errors, s.Timeouts, s.SourceDropped, s.FaultLost, s.Completion.Round(time.Second))
}

// Run probes every target from the vantage point, skipping greylisted
// hosts, and streams recordable samples to sink (which may be nil). It
// returns the run statistics and the greylist additions discovered during
// the run.
//
// A wire-path failure (packet marshal/parse) aborts the run and is
// returned as an error together with the partial statistics, so one
// misbehaving vantage point cannot take down a whole census. When the
// world carries a fault plan, an injected VP crash aborts the run the same
// way with a *netsim.VPCrashError (retryable via Config.Attempt), and
// flap/burst faults surface as elevated timeouts in the statistics.
func Run(w *netsim.World, vp platform.VP, targets []netsim.IP, skip *Greylist, cfg Config, sink func(record.Sample)) (Stats, *Greylist, error) {
	var isink func(int, record.Sample)
	if sink != nil {
		isink = func(_ int, smp record.Sample) { sink(smp) }
	}
	return RunIndexed(w, vp, targets, skip, cfg, isink)
}

// RunIndexed is Run with the target's index in targets passed alongside
// each sample. Shard executors fold samples into a row positionally; the
// probe loop already knows the index it drew from the permutation, so
// handing it to the sink spares the caller a target→index lookup per
// reply — at census scale that lookup (or the map backing it) dominates a
// narrow span's probing cost.
func RunIndexed(w *netsim.World, vp platform.VP, targets []netsim.IP, skip *Greylist, cfg Config, sink func(int, record.Sample)) (Stats, *Greylist, error) {
	stats := Stats{VP: vp}
	// One observation per run, on every return path; the per-probe loop
	// never touches the metrics.
	started := time.Now()
	DefaultMetrics.SpansInFlight.Add(1)
	defer func() {
		DefaultMetrics.SpansInFlight.Add(-1)
		DefaultMetrics.spanSeconds.Load().ObserveSince(started)
		DefaultMetrics.observe(&stats)
	}()
	found := NewGreylist()
	n := uint64(len(targets))
	if n == 0 {
		return stats, found, nil
	}

	perm, err := lfsr.NewPermutation(n, detrand.Hash64(cfg.Seed, uint64(vp.ID), cfg.Round, 0x5CAB))
	if err != nil {
		return stats, found, fmt.Errorf("prober: %w", err)
	}

	rate := cfg.rate()
	dropProb := w.SourceDropProb(vp, rate)
	msPerProbe := 1000.0 / rate
	finish := func() {
		stats.Completion = time.Duration(float64(stats.Sent) / rate * vp.LoadFactor * float64(time.Second))
	}

	faults := w.Faults()
	crashAt, crashes := faults.CrashIndex(vp.ID, cfg.Round, cfg.Attempt, n)

	// The inner loop is mutex-, map- and allocation-free per probe: the
	// greylist is frozen and windowed down to the span's address range up
	// front, the (VP, span) slab session is resolved once, and greylist
	// discoveries go into the goroutine-local `found` map directly. Per
	// probe the loop touches only the span slabs and the per-round draws,
	// so the probe rate stays flat from 20k-target runs to full-Internet
	// censuses.
	spanLo, spanHi := targets[0], targets[0]
	for _, target := range targets[1:] {
		if target < spanLo {
			spanLo = target
		}
		if target > spanHi {
			spanHi = target
		}
	}
	win := skip.Freeze().Window(spanLo, spanHi)
	var span netsim.SpanSession
	if !cfg.Wire {
		span = w.ProbeSpanSession(vp, targets)
	}

	for i := uint64(0); ; i++ {
		idx, ok := perm.Next()
		if !ok {
			break
		}
		if crashes && i >= crashAt {
			// The vantage point dies under the prober mid-run: the
			// samples gathered so far stand, the rest never happen.
			finish()
			return stats, found, &netsim.VPCrashError{
				VP: vp.Name, Round: cfg.Round, Attempt: cfg.Attempt, ProbeIndex: i,
			}
		}
		target := targets[idx]
		if win.Contains(target) {
			continue
		}
		stats.Sent++
		// The probe clock advances only for probes actually sent:
		// greylist-skipped targets consume no wall-clock time.
		tsMs := uint32(float64(stats.Sent-1) * msPerProbe * vp.LoadFactor)
		if faults.ReplyLost(vp.ID, cfg.Round, i, n) {
			// Flap window or loss burst: the probe is out, nothing
			// comes back.
			stats.FaultLost++
			stats.Timeouts++
			continue
		}
		var reply netsim.Reply
		if cfg.Wire {
			// Full packet path: marshal the probe, exchange datagrams,
			// parse the reply like a pcap-based deployment would.
			src := netsim.IP(0x0A000000 | uint32(vp.ID)&0xFFFF)
			pkt, wireReply, err := w.ExchangeICMP(vp, src, target, uint16(vp.ID), uint16(i), cfg.Round)
			if err != nil {
				return stats, found, fmt.Errorf("prober: wire path to %v: %w", target, err)
			}
			decoded, err := netsim.DecodeICMPReply(pkt)
			if err != nil {
				return stats, found, fmt.Errorf("prober: decode reply from %v: %w", target, err)
			}
			if decoded.Kind != wireReply.Kind {
				return stats, found, fmt.Errorf("prober: wire decode of %v reply disagrees with simulation (%v vs %v)", target, decoded.Kind, wireReply.Kind)
			}
			reply = wireReply
		} else {
			reply = span.ICMP(int(idx), cfg.Round)
		}

		// Replies aggregate near the vantage point: at excessive rates a
		// fraction is dropped before Fastping sees them.
		if reply.Kind != netsim.ReplyTimeout && dropProb > 0 &&
			detrand.UnitFloat(cfg.Seed, uint64(vp.ID), uint64(target), cfg.Round, 0xD86) < dropProb {
			stats.SourceDropped++
			stats.Timeouts++
			continue
		}

		switch {
		case reply.Kind == netsim.ReplyEcho:
			stats.Echo++
		case reply.Kind.Greylistable():
			stats.Errors++
			// found is local to this run until returned; writing the map
			// directly keeps the loop free of lock acquisitions.
			found.m[target] = reply.Kind
		default:
			stats.Timeouts++
			continue // timeouts are not recorded
		}
		if sink != nil {
			sink(int(idx), record.Sample{Target: target, TimestampMs: tsMs, Kind: reply.Kind, RTT: reply.RTT})
		}
	}

	finish()
	return stats, found, nil
}

// BuildBlacklist runs the preliminary single-vantage census of Sec. 3.3:
// before probing from O(100) VPs, one census from a single VP seeds the
// blacklist with the hosts that object to being probed.
func BuildBlacklist(w *netsim.World, vp platform.VP, targets []netsim.IP, cfg Config) (*Greylist, error) {
	_, grey, err := Run(w, vp, targets, nil, cfg, nil)
	return grey, err
}

// Snapshot returns a copy of the greylist contents for persistence.
func (g *Greylist) Snapshot() map[netsim.IP]netsim.ReplyKind {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[netsim.IP]netsim.ReplyKind, len(g.m))
	for ip, k := range g.m {
		out[ip] = k
	}
	return out
}

// FromSnapshot rebuilds a greylist from a persisted snapshot.
func FromSnapshot(m map[netsim.IP]netsim.ReplyKind) *Greylist {
	g := NewGreylist()
	for ip, k := range m {
		g.m[ip] = k
	}
	return g
}
