package cities

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anycastmap/internal/geo"
)

func TestDefaultDatabaseSanity(t *testing.T) {
	db := Default()
	if db.Len() < 300 {
		t.Fatalf("embedded database has %d cities, want >= 300", db.Len())
	}
	if got := len(db.Countries()); got < 80 {
		t.Errorf("embedded database covers %d countries, want >= 80", got)
	}
	for _, c := range db.All() {
		if !c.Loc.Valid() {
			t.Errorf("city %v has invalid coordinates %v", c, c.Loc)
		}
		if c.Population <= 0 {
			t.Errorf("city %v has non-positive population %d", c, c.Population)
		}
		if c.Name == "" || c.CC == "" {
			t.Errorf("city with empty name or CC: %+v", c)
		}
	}
}

func TestNoDuplicateKeys(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range append(append([]City{}, worldCities...), moreCities...) {
		if seen[c.Key()] {
			t.Errorf("duplicate city key %q", c.Key())
		}
		seen[c.Key()] = true
	}
}

func TestSortedByPopulation(t *testing.T) {
	db := Default()
	all := db.All()
	for i := 1; i < len(all); i++ {
		if all[i].Population > all[i-1].Population {
			t.Fatalf("database not sorted: %v (%d) after %v (%d)",
				all[i], all[i].Population, all[i-1], all[i-1].Population)
		}
	}
}

func TestByName(t *testing.T) {
	db := Default()
	c, ok := db.ByName("Paris", "FR")
	if !ok {
		t.Fatal("Paris,FR not found")
	}
	if c.Population < 1e6 {
		t.Errorf("Paris population %d seems wrong", c.Population)
	}
	// Case insensitivity.
	if _, ok := db.ByName("pArIs", "fr"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := db.ByName("Atlantis", "XX"); ok {
		t.Error("nonexistent city found")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic for missing city")
		}
	}()
	Default().MustByName("Atlantis", "XX")
}

func TestPaperCitiesPresent(t *testing.T) {
	// Cities that the paper's anecdotes depend on.
	db := Default()
	for _, nc := range [][2]string{
		{"Ashburn", "US"}, {"Philadelphia", "US"}, {"Amsterdam", "NL"},
		{"Frankfurt", "DE"}, {"London", "GB"}, {"Singapore", "SG"},
		{"Tokyo", "JP"}, {"Sydney", "AU"}, {"Stockholm", "SE"},
	} {
		if _, ok := db.ByName(nc[0], nc[1]); !ok {
			t.Errorf("%s,%s missing from database", nc[0], nc[1])
		}
	}
}

func TestPhiladelphiaAshburnBias(t *testing.T) {
	// The paper's OpenDNS misclassification (Sec 3.4): Philadelphia is ~33x
	// more populated than Ashburn and ~260 km away, so the population-biased
	// classifier picks Philadelphia for a disk containing both.
	db := Default()
	ash := db.MustByName("Ashburn", "US")
	phi := db.MustByName("Philadelphia", "US")
	if phi.Population < 20*ash.Population {
		t.Errorf("Philadelphia/Ashburn population ratio = %.1f, want > 20",
			float64(phi.Population)/float64(ash.Population))
	}
	d := geo.DistanceKm(ash.Loc, phi.Loc)
	if d < 150 || d > 350 {
		t.Errorf("Ashburn-Philadelphia distance = %.0f km, want ~220-260", d)
	}
	disk := geo.Disk{Center: ash.Loc, RadiusKm: 300}
	got, ok := db.LargestInDisk(disk)
	if !ok || got.Name != "Philadelphia" {
		t.Errorf("LargestInDisk(300km around Ashburn) = %v, want Philadelphia", got)
	}
}

func TestInDisk(t *testing.T) {
	db := Default()
	paris := db.MustByName("Paris", "FR")
	got := db.InDisk(geo.Disk{Center: paris.Loc, RadiusKm: 400})
	if len(got) < 3 {
		t.Fatalf("only %d cities within 400km of Paris, want several", len(got))
	}
	// Must include Paris itself, Brussels, London.
	names := make(map[string]bool)
	for _, c := range got {
		names[c.Name] = true
	}
	for _, want := range []string{"Paris", "Brussels", "London"} {
		if !names[want] {
			t.Errorf("%s not within 400km of Paris; got %v", want, names)
		}
	}
	// Decreasing population order.
	for i := 1; i < len(got); i++ {
		if got[i].Population > got[i-1].Population {
			t.Errorf("InDisk result not sorted by population")
		}
	}
}

func TestInDiskEmpty(t *testing.T) {
	db := Default()
	// Middle of the South Pacific.
	got := db.InDisk(geo.Disk{Center: geo.Coord{Lat: -45, Lon: -130}, RadiusKm: 500})
	if len(got) != 0 {
		t.Errorf("expected no cities in the South Pacific, got %v", got)
	}
	if _, ok := db.LargestInDisk(geo.Disk{Center: geo.Coord{Lat: -45, Lon: -130}, RadiusKm: 500}); ok {
		t.Error("LargestInDisk found a city in the empty ocean")
	}
}

func TestLargestInDiskMatchesInDisk(t *testing.T) {
	db := Default()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		d := geo.Disk{
			Center:   geo.Coord{Lat: r.Float64()*180 - 90, Lon: r.Float64()*360 - 180},
			RadiusKm: r.Float64() * 3000,
		}
		in := db.InDisk(d)
		largest, ok := db.LargestInDisk(d)
		if ok != (len(in) > 0) {
			t.Fatalf("LargestInDisk ok=%v but InDisk returned %d cities", ok, len(in))
		}
		if ok && largest != in[0] {
			t.Fatalf("LargestInDisk = %v but InDisk[0] = %v", largest, in[0])
		}
	}
}

func TestNearest(t *testing.T) {
	db := Default()
	// A point in the English Channel is nearest to London or a French
	// coastal city, certainly within 400 km.
	c, dist := db.Nearest(geo.Coord{Lat: 50.5, Lon: 0.0})
	if dist > 400 {
		t.Errorf("nearest city to the English Channel is %v at %.0f km", c, dist)
	}
	// Nearest to a city's own location is the city itself (or a colocated one).
	tokyo := db.MustByName("Tokyo", "JP")
	got, d := db.Nearest(tokyo.Loc)
	if d > 30 {
		t.Errorf("nearest to Tokyo = %v at %.0f km", got, d)
	}
}

func TestTopByPopulation(t *testing.T) {
	db := Default()
	top := db.TopByPopulation(10)
	if len(top) != 10 {
		t.Fatalf("got %d cities, want 10", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Population > top[i-1].Population {
			t.Error("TopByPopulation not sorted")
		}
	}
	if n := len(db.TopByPopulation(1 << 20)); n != db.Len() {
		t.Errorf("TopByPopulation(huge) returned %d, want %d", n, db.Len())
	}
}

func TestFilter(t *testing.T) {
	db := Default()
	us := db.Filter(func(c City) bool { return c.CC == "US" })
	if us.Len() == 0 || us.Len() >= db.Len() {
		t.Fatalf("US filter returned %d of %d cities", us.Len(), db.Len())
	}
	for _, c := range us.All() {
		if c.CC != "US" {
			t.Errorf("filter leaked %v", c)
		}
	}
}

func TestInDiskContainment(t *testing.T) {
	// Property: every city reported in a disk is actually within the radius.
	db := Default()
	f := func(lat, lon, r float64) bool {
		d := geo.Disk{
			Center:   geo.Coord{Lat: clamp(lat, 90), Lon: clamp(lon, 180)},
			RadiusKm: clamp(r, 10000) + 10000, // 0..20000
		}
		for _, c := range db.InDisk(d) {
			if geo.DistanceKm(d.Center, c.Loc) > d.RadiusKm+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func clamp(v, lim float64) float64 {
	if v != v || v > 1e300 || v < -1e300 { // NaN or huge
		return 0
	}
	for v > lim {
		v -= 2 * lim
	}
	for v < -lim {
		v += 2 * lim
	}
	return v
}

func BenchmarkLargestInDisk(b *testing.B) {
	db := Default()
	d := geo.Disk{Center: geo.Coord{Lat: 48.85, Lon: 2.35}, RadiusKm: 800}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.LargestInDisk(d)
	}
}
