package cities

import (
	"math/rand"
	"testing"

	"anycastmap/internal/geo"
)

func randDisk(r *rand.Rand) geo.Disk {
	return geo.Disk{
		Center:   geo.Coord{Lat: r.Float64()*180 - 90, Lon: r.Float64()*360 - 180},
		RadiusKm: r.Float64() * 6000,
	}
}

// TestIndexMatchesLinearScan is the index's contract: identical results to
// the straightforward implementation, on thousands of random disks.
func TestIndexMatchesLinearScan(t *testing.T) {
	db := Default()
	for _, bandDeg := range []float64{0, 5, 10, 30, 200} {
		idx := NewIndex(db, bandDeg)
		r := rand.New(rand.NewSource(31))
		for trial := 0; trial < 2000; trial++ {
			d := randDisk(r)
			wantCity, wantOK := db.LargestInDisk(d)
			gotCity, gotOK := idx.LargestInDisk(d)
			if wantOK != gotOK || (wantOK && wantCity != gotCity) {
				t.Fatalf("band %v: LargestInDisk(%v) = %v,%v want %v,%v",
					bandDeg, d, gotCity, gotOK, wantCity, wantOK)
			}
		}
	}
}

func TestIndexInDiskMatchesLinearScan(t *testing.T) {
	db := Default()
	idx := NewIndex(db, 10)
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 500; trial++ {
		d := randDisk(r)
		want := db.InDisk(d)
		got := idx.InDisk(d)
		if len(want) != len(got) {
			t.Fatalf("InDisk(%v): %d vs %d cities", d, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("InDisk(%v)[%d]: %v vs %v", d, i, got[i], want[i])
			}
		}
	}
}

func TestIndexPolarDisks(t *testing.T) {
	// Disks touching the grid's edges must not lose cities.
	db := Default()
	idx := NewIndex(db, 10)
	for _, d := range []geo.Disk{
		{Center: geo.Coord{Lat: 89, Lon: 0}, RadiusKm: 4000},
		{Center: geo.Coord{Lat: -89, Lon: 0}, RadiusKm: 6000},
		{Center: geo.Coord{Lat: 0, Lon: 179.9}, RadiusKm: 2000},
	} {
		wantCity, wantOK := db.LargestInDisk(d)
		gotCity, gotOK := idx.LargestInDisk(d)
		if wantOK != gotOK || (wantOK && wantCity != gotCity) {
			t.Errorf("edge disk %v: got %v,%v want %v,%v", d, gotCity, gotOK, wantCity, wantOK)
		}
	}
}

func BenchmarkLargestInDiskLinear(b *testing.B) {
	db := Default()
	d := geo.Disk{Center: geo.Coord{Lat: 48.85, Lon: 2.35}, RadiusKm: 800}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.LargestInDisk(d)
	}
}

func BenchmarkLargestInDiskIndexed(b *testing.B) {
	idx := NewIndex(Default(), 10)
	d := geo.Disk{Center: geo.Coord{Lat: 48.85, Lon: 2.35}, RadiusKm: 800}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.LargestInDisk(d)
	}
}
