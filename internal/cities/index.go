package cities

import (
	"math"
	"sort"

	"anycastmap/internal/geo"
)

// Index accelerates disk queries over a city set with a latitude-band grid:
// LargestInDisk is the inner loop of the geolocation step (it runs once per
// MIS disk per iteration per anycast target), so the census analysis is
// sensitive to its cost. The index prunes by bounding box before paying for
// haversine distances and scans candidates in decreasing-population order
// with early exit, preserving the exact semantics of the linear scan.
type Index struct {
	db *DB
	// bands[i] holds, sorted by decreasing population, the indices of
	// cities whose latitude falls in band i.
	bands    [][]int32
	bandDeg  float64
	minLat   float64
	numBands int
}

// NewIndex builds an index over the database. bandDeg is the latitude band
// height in degrees; 0 means a default of 10.
func NewIndex(db *DB, bandDeg float64) *Index {
	if bandDeg <= 0 {
		bandDeg = 10
	}
	idx := &Index{db: db, bandDeg: bandDeg, minLat: -90}
	idx.numBands = int(math.Ceil(180/bandDeg)) + 1
	idx.bands = make([][]int32, idx.numBands)
	for i, c := range db.All() { // already sorted by decreasing population
		b := idx.bandOf(c.Loc.Lat)
		idx.bands[b] = append(idx.bands[b], int32(i))
	}
	return idx
}

func (idx *Index) bandOf(lat float64) int {
	b := int((lat - idx.minLat) / idx.bandDeg)
	if b < 0 {
		b = 0
	}
	if b >= idx.numBands {
		b = idx.numBands - 1
	}
	return b
}

// kmPerDegLat is the meridian arc length of one degree of latitude.
const kmPerDegLat = math.Pi * geo.EarthRadiusKm / 180

// bandRange returns the band indices a disk can touch.
func (idx *Index) bandRange(d geo.Disk) (lo, hi int) {
	dLat := d.RadiusKm / kmPerDegLat
	return idx.bandOf(d.Center.Lat - dLat), idx.bandOf(d.Center.Lat + dLat)
}

// LargestInDisk returns the most populated city inside the disk, exactly as
// DB.LargestInDisk would.
func (idx *Index) LargestInDisk(d geo.Disk) (City, bool) {
	lo, hi := idx.bandRange(d)
	all := idx.db.All()
	best := int32(-1)
	for b := lo; b <= hi; b++ {
		for _, ci := range idx.bands[b] {
			if best >= 0 && ci >= best {
				// Later indices in this band are less populated than the
				// current best; bands are sorted, so stop scanning it.
				break
			}
			if d.Contains(all[ci].Loc) {
				best = ci
				break
			}
		}
	}
	if best < 0 {
		return City{}, false
	}
	return all[best], true
}

// InDisk returns the cities inside the disk in decreasing-population order,
// exactly as DB.InDisk would.
func (idx *Index) InDisk(d geo.Disk) []City {
	lo, hi := idx.bandRange(d)
	all := idx.db.All()
	var hits []int32
	for b := lo; b <= hi; b++ {
		for _, ci := range idx.bands[b] {
			if d.Contains(all[ci].Loc) {
				hits = append(hits, ci)
			}
		}
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a] < hits[b] })
	out := make([]City, len(hits))
	for i, ci := range hits {
		out[i] = all[ci]
	}
	return out
}
