// Package cities provides the world-city database used as the side channel
// of the anycast geolocation step: the maximum-likelihood classifier of the
// paper reduces to "pick the most populated city inside the disk" (Sec. 2.1,
// accuracy ~75% in the authors' validation).
//
// The embedded database lists major world cities with coordinates and
// population. It intentionally includes pairs like Ashburn/Philadelphia that
// exercise the documented failure mode of the population bias (the paper's
// OpenDNS anecdote, Sec. 3.4).
package cities

import (
	"fmt"
	"sort"
	"strings"

	"anycastmap/internal/geo"
)

// City is one row of the database.
type City struct {
	Name       string
	CC         string // ISO 3166-1 alpha-2 country code
	Loc        geo.Coord
	Population int
}

func (c City) String() string {
	return fmt.Sprintf("%s,%s", c.Name, c.CC)
}

// Key returns the canonical "name,cc" identifier used to compare
// geolocation output against ground truth at city granularity.
func (c City) Key() string {
	return strings.ToLower(c.Name) + "," + strings.ToLower(c.CC)
}

// DB is an immutable set of cities ordered by decreasing population, which
// makes most-populated-in-disk queries an early-exit linear scan.
type DB struct {
	cities []City // sorted by decreasing population
	byKey  map[string]int
}

// New builds a database from the given list. The list is copied.
func New(list []City) *DB {
	cs := make([]City, len(list))
	copy(cs, list)
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Population > cs[j].Population })
	byKey := make(map[string]int, len(cs))
	for i, c := range cs {
		byKey[c.Key()] = i
	}
	return &DB{cities: cs, byKey: byKey}
}

// Default returns a database over the embedded world-city list (the
// primary list plus the secondary-city extension).
func Default() *DB {
	all := make([]City, 0, len(worldCities)+len(moreCities))
	all = append(all, worldCities...)
	all = append(all, moreCities...)
	return New(all)
}

// Len returns the number of cities.
func (db *DB) Len() int { return len(db.cities) }

// All returns the cities in decreasing-population order. The returned slice
// must not be modified.
func (db *DB) All() []City { return db.cities }

// ByName looks a city up by name and country code (case-insensitive).
func (db *DB) ByName(name, cc string) (City, bool) {
	i, ok := db.byKey[strings.ToLower(name)+","+strings.ToLower(cc)]
	if !ok {
		return City{}, false
	}
	return db.cities[i], true
}

// MustByName is ByName that panics on a missing city; it is used when
// instantiating deployments from the paper's tables, where a miss is a
// programming error.
func (db *DB) MustByName(name, cc string) City {
	c, ok := db.ByName(name, cc)
	if !ok {
		panic(fmt.Sprintf("cities: %s,%s not in database", name, cc))
	}
	return c
}

// InDisk returns all cities inside the disk, in decreasing-population order.
func (db *DB) InDisk(d geo.Disk) []City {
	var out []City
	for _, c := range db.cities {
		if d.Contains(c.Loc) {
			out = append(out, c)
		}
	}
	return out
}

// LargestInDisk returns the most populated city inside the disk. This is the
// geolocation classifier of the paper: the population bias has sufficient
// discriminative power on its own.
func (db *DB) LargestInDisk(d geo.Disk) (City, bool) {
	for _, c := range db.cities {
		if d.Contains(c.Loc) {
			return c, true
		}
	}
	return City{}, false
}

// Nearest returns the city closest to p and its distance in km.
func (db *DB) Nearest(p geo.Coord) (City, float64) {
	best := -1
	bestD := geo.MaxSurfaceDistanceKm + 1
	for i, c := range db.cities {
		if d := geo.DistanceKm(p, c.Loc); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return City{}, bestD
	}
	return db.cities[best], bestD
}

// TopByPopulation returns the n most populated cities (fewer if the database
// is smaller).
func (db *DB) TopByPopulation(n int) []City {
	if n > len(db.cities) {
		n = len(db.cities)
	}
	return db.cities[:n]
}

// Countries returns the sorted set of country codes present.
func (db *DB) Countries() []string {
	set := make(map[string]bool)
	for _, c := range db.cities {
		set[c.CC] = true
	}
	out := make([]string, 0, len(set))
	for cc := range set {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// Filter returns a new DB containing only cities accepted by keep.
func (db *DB) Filter(keep func(City) bool) *DB {
	var out []City
	for _, c := range db.cities {
		if keep(c) {
			out = append(out, c)
		}
	}
	return New(out)
}
