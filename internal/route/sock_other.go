//go:build !linux

package route

import "syscall"

// reusePortControl is a no-op off linux: the second bind of the same
// port fails there and the server falls back to a single listener.
func reusePortControl(network, address string, c syscall.RawConn) error { return nil }
