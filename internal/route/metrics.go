package route

import "anycastmap/internal/obs"

// answerBuckets resolve the sub-microsecond answer path: the decode →
// decide → encode pipeline runs in hundreds of nanoseconds, far below
// obs.FastBuckets' 10µs floor, so the histogram starts at 0.5µs.
var answerBuckets = obs.ExpBuckets(5e-7, 2, 18) // 0.5µs .. 65ms

// Metrics is the front-end's obs series. Per-policy and per-rcode
// counters are fixed arrays indexed by the enum, so the packet path
// observes without map lookups or label rendering. A nil *Metrics (and
// the nil instruments inside a bare one) observe as no-ops.
type Metrics struct {
	// Queries counts every received packet, Dropped the ones answered
	// with silence (responses, runts).
	Queries *obs.Counter
	Dropped *obs.Counter
	// Answers counts decided queries by the policy that decided.
	Answers [numPolicies]*obs.Counter
	// Rcodes counts responses by rcode.
	Rcodes [numRcodes]*obs.Counter
	// Latency is the answer path's seconds histogram (receive to
	// response ready).
	Latency *obs.Histogram
}

// NewMetrics registers the anycastmap_route_* series. A nil registry
// returns counting-but-unexposed instruments (handy in benchmarks).
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{}
	if reg == nil {
		m.Queries = &obs.Counter{}
		m.Dropped = &obs.Counter{}
		for i := range m.Answers {
			m.Answers[i] = &obs.Counter{}
		}
		for i := range m.Rcodes {
			m.Rcodes[i] = &obs.Counter{}
		}
		return m // Latency stays nil: Observe is nil-safe
	}
	m.Queries = reg.Counter("anycastmap_route_queries_total",
		"DNS routing queries received.")
	m.Dropped = reg.Counter("anycastmap_route_dropped_total",
		"Packets dropped without a response (non-queries, runts).")
	for p := PolicyNone; p < numPolicies; p++ {
		m.Answers[p] = reg.Counter("anycastmap_route_answers_total",
			"Routing decisions made, by deciding policy (policy=none answered without a replica).",
			obs.L("policy", p.String()))
	}
	for rc, name := range [numRcodes]string{"noerror", "formerr", "servfail", "nxdomain", "notimp", "refused"} {
		m.Rcodes[rc] = reg.Counter("anycastmap_route_rcode_total",
			"Responses sent, by rcode.", obs.L("rcode", name))
	}
	m.Latency = reg.Histogram("anycastmap_route_answer_seconds",
		"Answer path latency: packet decode to response ready.", answerBuckets)
	return m
}

func (m *Metrics) query() {
	if m != nil {
		m.Queries.Inc()
	}
}

func (m *Metrics) dropped() {
	if m != nil {
		m.Dropped.Inc()
	}
}

func (m *Metrics) answered(p Policy, rcode int) {
	if m == nil {
		return
	}
	if p < numPolicies {
		m.Answers[p].Inc()
	}
	if rcode >= 0 && rcode < numRcodes {
		m.Rcodes[rcode].Inc()
	}
}
