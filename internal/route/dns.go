package route

import (
	"fmt"
	"strconv"

	"anycastmap/internal/netsim"
)

// dns.go — a hand-rolled RFC 1035 wire codec for the front-end's narrow
// dialect. The full generality of a DNS library (every RRtype, name
// compression on output, zone transfers) buys nothing here and costs
// allocations; this codec decodes a query and encodes its answer
// entirely inside one worker-owned Scratch, so the packet path touches
// the heap zero times.
//
// Query dialect — the qname names the service, the client rides in an
// EDNS Client Subnet option (RFC 7871) or falls back to the UDP source:
//
//	<a>.<b>.<c>.<zone>            route a.b.c.0/24 under the default chain
//	<policy>.<a>.<b>.<c>.<zone>   same, preferring the named policy
//
// A answers carry the chosen replica's synthesized service address;
// TXT answers describe the decision (policy, via-VP, replica index,
// distance, snapshot version). Malformed packets answer FORMERR or are
// dropped; FuzzDecodeQuery pins "never panic".

// DefaultZone is the suffix the front-end answers for.
const DefaultZone = "route.anycastmap."

// DNS constants (RFC 1035, 2671, 7871).
const (
	RcodeNoError  = 0
	RcodeFormErr  = 1
	RcodeServFail = 2
	RcodeNXDomain = 3
	RcodeNotImp   = 4
	RcodeRefused  = 5

	numRcodes = 6

	qtypeA   = 1
	qtypeTXT = 16
	qtypeOPT = 41
	classIN  = 1

	headerLen  = 12
	maxNameLen = 255
	// maxJumps bounds compression-pointer chasing: a legal name has at
	// most 127 labels, so a longer chain is hostile.
	maxJumps = 127
	// ednsUDPSize is the receive buffer size the server advertises.
	ednsUDPSize = 1232
	// optCodeECS is the EDNS Client Subnet option code.
	optCodeECS = 8

	flagQR = 0x8000
	flagAA = 0x0400
	flagTC = 0x0200
	flagRD = 0x0100
)

// Query is one decoded request, valid until the owning Scratch decodes
// the next packet.
type Query struct {
	ID    uint16
	RD    bool
	QType uint16
	// Service is the deployment prefix the qname names.
	Service netsim.Prefix24
	// Policy is the preferred policy named by the qname's extra label
	// (PolicyNone when absent).
	Policy Policy
	// HasECS/ECS carry the client prefix from a v4 EDNS Client Subnet
	// option with a non-zero source length. ECSSource echoes the
	// request's source prefix length into the response.
	HasECS    bool
	ECS       netsim.Prefix24
	ECSSource uint8
	// EDNS records whether the request carried an OPT record (the
	// response then echoes one).
	EDNS bool
	// nameLen is the decompressed qname's length inside Scratch.name;
	// 0 means the name never parsed (error responses echo no question).
	nameLen int
	qclass  uint16
}

// Scratch is one worker's reusable packet state: the decoded query, the
// decompressed qname, the TXT assembly buffer and the response buffer.
// A Scratch is not safe for concurrent use; each listener goroutine
// (and each loadgen worker) owns one.
type Scratch struct {
	q    Query
	name [maxNameLen + 1]byte
	txt  [320]byte
	req  [2048]byte
	resp [1024]byte
	// dcache memoizes routing decisions per worker; see cache.go.
	dcache [decideCacheSize]decideCacheEntry
}

// Question returns the decompressed qname in wire format (valid until
// the next decode).
func (sc *Scratch) Question() []byte { return sc.name[:sc.q.nameLen] }

// EncodeName converts a dotted domain name into wire-format labels
// appended to dst. The empty name and "." encode as the root.
func EncodeName(dst []byte, name string) ([]byte, error) {
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			l := i - start
			if l > 63 {
				return nil, fmt.Errorf("route: label %q exceeds 63 bytes", name[start:i])
			}
			if l > 0 {
				dst = append(dst, byte(l))
				dst = append(dst, name[start:i]...)
			}
			start = i + 1
		}
	}
	dst = append(dst, 0)
	if len(dst) > maxNameLen {
		return nil, fmt.Errorf("route: name %q exceeds %d bytes", name, maxNameLen)
	}
	return dst, nil
}

// walkName decompresses the name at off in pkt into out, returning the
// written length and the offset just past the name's in-place bytes
// (the position after the first pointer, when one was followed). It
// rejects pointer loops, out-of-bounds jumps and names over 255 bytes.
func walkName(pkt []byte, off int, out *[maxNameLen + 1]byte) (n, next int, ok bool) {
	next = -1
	jumps := 0
	for {
		if off >= len(pkt) {
			return 0, 0, false
		}
		b := int(pkt[off])
		switch {
		case b == 0:
			if n+1 > maxNameLen {
				return 0, 0, false
			}
			out[n] = 0
			n++
			if next < 0 {
				next = off + 1
			}
			return n, next, true
		case b < 64: // plain label
			if off+1+b > len(pkt) || n+1+b > maxNameLen {
				return 0, 0, false
			}
			out[n] = byte(b)
			copy(out[n+1:], pkt[off+1:off+1+b])
			n += 1 + b
			off += 1 + b
		case b >= 192: // compression pointer
			if off+1 >= len(pkt) {
				return 0, 0, false
			}
			if next < 0 {
				next = off + 2
			}
			jumps++
			if jumps > maxJumps {
				return 0, 0, false
			}
			off = (b&0x3f)<<8 | int(pkt[off+1])
		default: // 0x40/0x80 label types were never standardized
			return 0, 0, false
		}
	}
}

// equalFoldWire compares two wire-format names case-insensitively
// (ASCII letters only, per RFC 1035 §2.3.3).
func equalFoldWire(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// DecodeQuery parses one request packet into sc.q against the given
// wire-format zone. ok=false means drop the packet silently (not a
// query, or too short to answer); otherwise rcode is RcodeNoError for a
// routable question or the error rcode to answer with.
func DecodeQuery(sc *Scratch, pkt []byte, zone []byte) (rcode int, ok bool) {
	sc.q = Query{}
	if len(pkt) < headerLen {
		return 0, false
	}
	sc.q.ID = uint16(pkt[0])<<8 | uint16(pkt[1])
	flags := uint16(pkt[2])<<8 | uint16(pkt[3])
	if flags&flagQR != 0 {
		return 0, false // a response: never answer one, or two servers loop
	}
	sc.q.RD = flags&flagRD != 0
	if opcode := (flags >> 11) & 0xf; opcode != 0 {
		return RcodeNotImp, true
	}
	qd := int(pkt[4])<<8 | int(pkt[5])
	an := int(pkt[6])<<8 | int(pkt[7])
	ns := int(pkt[8])<<8 | int(pkt[9])
	ar := int(pkt[10])<<8 | int(pkt[11])
	if qd != 1 || an != 0 || ns != 0 || ar > 1 {
		return RcodeFormErr, true
	}

	n, off, okName := walkName(pkt, headerLen, &sc.name)
	if !okName {
		return RcodeFormErr, true
	}
	sc.q.nameLen = n
	if off+4 > len(pkt) {
		sc.q.nameLen = 0
		return RcodeFormErr, true
	}
	sc.q.QType = uint16(pkt[off])<<8 | uint16(pkt[off+1])
	sc.q.qclass = uint16(pkt[off+2])<<8 | uint16(pkt[off+3])
	off += 4

	if ar == 1 {
		r, newOff := parseAdditional(sc, pkt, off)
		if r != RcodeNoError {
			return r, true
		}
		off = newOff
	}
	if sc.q.qclass != classIN {
		return RcodeRefused, true
	}

	// Zone check: the qname must end in the zone, label-aligned.
	qname := sc.name[:sc.q.nameLen]
	if len(zone) > len(qname) || !equalFoldWire(qname[len(qname)-len(zone):], zone) {
		return RcodeRefused, true
	}
	// Walk the leading labels and check the suffix starts on a label
	// boundary; collect up to 5 (a 5th means NXDOMAIN, not corruption).
	var labels [5][]byte
	nLabels := 0
	p := 0
	for qname[p] != 0 && p != len(qname)-len(zone) {
		l := int(qname[p])
		if nLabels == len(labels) {
			return RcodeNXDomain, true
		}
		labels[nLabels] = qname[p+1 : p+1+l]
		nLabels++
		p += 1 + l
	}
	if p != len(qname)-len(zone) {
		return RcodeRefused, true // suffix match fell inside a label
	}

	// [policy.]a.b.c — three numeric labels, one optional policy label.
	first := 0
	if nLabels == 4 {
		pol, okPol := parsePolicyLabel(labels[0])
		if !okPol {
			return RcodeNXDomain, true
		}
		sc.q.Policy = pol
		first = 1
	} else if nLabels != 3 {
		return RcodeNXDomain, true
	}
	var svc uint32
	for i := first; i < nLabels; i++ {
		v, okOct := parseOctet(labels[i])
		if !okOct {
			return RcodeNXDomain, true
		}
		svc = svc<<8 | uint32(v)
	}
	sc.q.Service = netsim.Prefix24(svc)
	return RcodeNoError, true
}

// parseAdditional parses the single additional record. Only a
// well-formed OPT is meaningful; anything else is FORMERR.
func parseAdditional(sc *Scratch, pkt []byte, off int) (rcode, next int) {
	// OPT owner name must be root; tolerate any legal name for non-OPT.
	var scratch [maxNameLen + 1]byte
	nameN, off, ok := walkName(pkt, off, &scratch)
	if !ok || off+10 > len(pkt) {
		return RcodeFormErr, 0
	}
	rtype := uint16(pkt[off])<<8 | uint16(pkt[off+1])
	ttl := uint32(pkt[off+4])<<24 | uint32(pkt[off+5])<<16 | uint32(pkt[off+6])<<8 | uint32(pkt[off+7])
	rdlen := int(pkt[off+8])<<8 | int(pkt[off+9])
	off += 10
	if off+rdlen > len(pkt) {
		return RcodeFormErr, 0
	}
	if rtype != qtypeOPT {
		return RcodeFormErr, 0 // a query with TSIG/other additionals is out of dialect
	}
	if nameN != 1 { // OPT owner must be the root name
		return RcodeFormErr, 0
	}
	if version := byte(ttl >> 16); version != 0 {
		return RcodeFormErr, 0
	}
	sc.q.EDNS = true

	// Options: {code u16, len u16, data}.
	opt := pkt[off : off+rdlen]
	sawECS := false
	for len(opt) > 0 {
		if len(opt) < 4 {
			return RcodeFormErr, 0
		}
		code := uint16(opt[0])<<8 | uint16(opt[1])
		olen := int(opt[2])<<8 | int(opt[3])
		opt = opt[4:]
		if olen > len(opt) {
			return RcodeFormErr, 0
		}
		if code == optCodeECS {
			if sawECS {
				return RcodeFormErr, 0
			}
			sawECS = true
			if r := parseECS(sc, opt[:olen]); r != RcodeNoError {
				return r, 0
			}
		}
		opt = opt[olen:]
	}
	return RcodeNoError, off + rdlen
}

// parseECS validates one EDNS Client Subnet option (RFC 7871 §6).
func parseECS(sc *Scratch, o []byte) int {
	if len(o) < 4 {
		return RcodeFormErr
	}
	family := uint16(o[0])<<8 | uint16(o[1])
	source, scope := o[2], o[3]
	if scope != 0 { // queries must send scope 0
		return RcodeFormErr
	}
	addr := o[4:]
	if len(addr) != (int(source)+7)/8 {
		return RcodeFormErr
	}
	if family != 1 {
		if family == 2 && source <= 128 {
			return RcodeNoError // v6 clients fall back to the UDP source
		}
		return RcodeFormErr
	}
	if source > 32 {
		return RcodeFormErr
	}
	if source == 0 {
		return RcodeNoError // explicit "no client info"
	}
	var b [4]byte
	copy(b[:], addr)
	// Mask to the source length: trailing bits must not leak into the
	// routing key.
	ip := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	if source < 32 {
		ip &= ^uint32(0) << (32 - source)
	}
	sc.q.HasECS = true
	sc.q.ECS = netsim.IP(ip).Prefix()
	sc.q.ECSSource = source
	return RcodeNoError
}

func parseOctet(l []byte) (byte, bool) {
	if len(l) == 0 || len(l) > 3 {
		return 0, false
	}
	v := 0
	for _, c := range l {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	if v > 255 || (len(l) > 1 && l[0] == '0') {
		return 0, false
	}
	return byte(v), true
}

// parsePolicyLabel matches a label against the policy wire names
// case-insensitively, without allocating.
func parsePolicyLabel(l []byte) (Policy, bool) {
	for p := PolicyCatchmentAffine; p < numPolicies; p++ {
		name := p.String()
		if len(l) != len(name) {
			continue
		}
		match := true
		for i := 0; i < len(l); i++ {
			c := l[i]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != name[i] {
				match = false
				break
			}
		}
		if match {
			return p, true
		}
	}
	return PolicyNone, false
}

func put16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }

// appendHeader writes the 12-byte response header.
func appendHeader(dst []byte, q *Query, rcode, qd, an, ar int) []byte {
	flags := uint16(flagQR | flagAA | uint16(rcode&0xf))
	if q.RD {
		flags |= flagRD
	}
	var h [headerLen]byte
	put16(h[0:], q.ID)
	put16(h[2:], flags)
	put16(h[4:], uint16(qd))
	put16(h[6:], uint16(an))
	put16(h[10:], uint16(ar))
	return append(dst, h[:]...)
}

// appendOPT writes the response OPT record, echoing the request's ECS
// option (scope /24 — the answer's granularity) when one was used.
func appendOPT(dst []byte, q *Query) []byte {
	dst = append(dst, 0) // root owner
	var fixed [10]byte
	put16(fixed[0:], qtypeOPT)
	put16(fixed[2:], ednsUDPSize)
	// TTL bytes 4..8 (ext-rcode, version, flags) all zero.
	rdlen := 0
	if q.HasECS {
		rdlen = 4 + 4 + (int(q.ECSSource)+7)/8
	}
	put16(fixed[8:], uint16(rdlen))
	dst = append(dst, fixed[:]...)
	if q.HasECS {
		n := (int(q.ECSSource) + 7) / 8
		var ecs [12]byte
		put16(ecs[0:], optCodeECS)
		put16(ecs[2:], uint16(4+n))
		put16(ecs[4:], 1) // family v4
		ecs[6] = q.ECSSource
		ecs[7] = 24 // scope: decisions are /24-granular
		ip := uint32(q.ECS) << 8
		ecs[8], ecs[9], ecs[10], ecs[11] = byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip)
		dst = append(dst, ecs[:8+n]...)
	}
	return dst
}

// EncodeError builds an error response (FORMERR, NOTIMP, REFUSED,
// SERVFAIL, NXDOMAIN) into the scratch, echoing the question when it
// parsed.
func EncodeError(sc *Scratch, rcode int) []byte {
	q := &sc.q
	qd := 0
	if q.nameLen > 0 {
		qd = 1
	}
	ar := 0
	if q.EDNS {
		ar = 1
	}
	out := appendHeader(sc.resp[:0], q, rcode, qd, 0, ar)
	if qd == 1 {
		out = append(out, sc.name[:q.nameLen]...)
		var qt [4]byte
		put16(qt[0:], q.QType)
		put16(qt[2:], q.qclass)
		out = append(out, qt[:]...)
	}
	if ar == 1 {
		out = appendOPT(out, q)
	}
	return out
}

// EncodeAnswer builds the success response for the decoded query in sc:
// an A record with the replica address, or a TXT record describing the
// decision. A nil-replica answer (anycast entry with no instances)
// encodes NOERROR with an empty answer section; qtypes other than A and
// TXT get the same NODATA shape.
func EncodeAnswer(sc *Scratch, ans *Answer, policy Policy, ttl uint32) []byte {
	q := &sc.q
	withAnswer := ans.Replica >= 0 && (q.QType == qtypeA || q.QType == qtypeTXT)
	an := 0
	if withAnswer {
		an = 1
	}
	ar := 0
	if q.EDNS {
		ar = 1
	}
	out := appendHeader(sc.resp[:0], q, RcodeNoError, 1, an, ar)
	out = append(out, sc.name[:q.nameLen]...)
	var qt [4]byte
	put16(qt[0:], q.QType)
	put16(qt[2:], q.qclass)
	out = append(out, qt[:]...)

	if withAnswer {
		// Owner: pointer to the question name at offset 12.
		out = append(out, 0xc0, headerLen)
		var fixed [8]byte
		put16(fixed[0:], q.QType)
		put16(fixed[2:], classIN)
		fixed[4] = byte(ttl >> 24)
		fixed[5] = byte(ttl >> 16)
		fixed[6] = byte(ttl >> 8)
		fixed[7] = byte(ttl)
		out = append(out, fixed[:]...)
		if q.QType == qtypeA {
			ip := uint32(ans.Addr)
			out = append(out, 0, 4, byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
		} else {
			txt := appendTXT(sc.txt[:0], ans, policy)
			if len(txt) > 255 {
				txt = txt[:255]
			}
			var rdlen [2]byte
			put16(rdlen[0:], uint16(len(txt)+1))
			out = append(out, rdlen[:]...)
			out = append(out, byte(len(txt)))
			out = append(out, txt...)
		}
	}
	if ar == 1 {
		out = appendOPT(out, q)
	}
	return out
}

// appendTXT renders the decision description, e.g.
//
//	policy=nearest-replica via=vp-ams-1 replica=2/7 asn=13335
//	city=Amsterdam,NL dist_km=742 client=188.114.97.0/24 v=5
func appendTXT(dst []byte, ans *Answer, policy Policy) []byte {
	dst = append(dst, "policy="...)
	dst = append(dst, policy.String()...)
	dst = append(dst, " via="...)
	dst = append(dst, ans.ViaVP...)
	dst = append(dst, " replica="...)
	dst = strconv.AppendInt(dst, int64(ans.Replica), 10)
	dst = append(dst, '/')
	dst = strconv.AppendInt(dst, int64(ans.Replicas), 10)
	dst = append(dst, " asn="...)
	dst = strconv.AppendInt(dst, int64(ans.ASN), 10)
	if ans.Located {
		dst = append(dst, " city="...)
		dst = append(dst, ans.City...)
		dst = append(dst, ',')
		dst = append(dst, ans.CC...)
	}
	dst = append(dst, " dist_km="...)
	dst = strconv.AppendInt(dst, int64(ans.DistKm), 10)
	dst = append(dst, " client="...)
	dst = netsim.AppendPrefix24(dst, ans.Client)
	dst = append(dst, " v="...)
	dst = strconv.AppendUint(dst, ans.Version, 10)
	return dst
}
