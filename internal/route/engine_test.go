package route

import (
	"crypto/sha256"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"anycastmap/internal/analysis"
	"anycastmap/internal/census"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/store"
)

func TestPolicyNames(t *testing.T) {
	for p := PolicyCatchmentAffine; p < numPolicies; p++ {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("round-robin"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestNearestReplica(t *testing.T) {
	// A client in Frankfurt is nearest to the Amsterdam instance.
	e := testEngine(t, testStore(t),
		withLocator(cityLocator(cityLoc(t, "Frankfurt", "DE"))),
		withPolicies(PolicyNearestReplica))
	ans, pol := e.Decide(netsim.Prefix24(0x0b0001))
	if pol != PolicyNearestReplica {
		t.Fatalf("policy = %v", pol)
	}
	if !ans.Anycast || ans.City != "Amsterdam" || ans.Replica != 0 {
		t.Fatalf("answer = %+v", ans)
	}
	if ans.Addr != svcPrefix.Host(1) {
		t.Errorf("addr = %v, want %v", ans.Addr, svcPrefix.Host(1))
	}
	if ans.DistKm < 100 || ans.DistKm > 1000 {
		t.Errorf("Frankfurt-Amsterdam dist = %.0f km", ans.DistKm)
	}
}

func TestCatchmentAffineDiffersFromNearest(t *testing.T) {
	// Instance 0 is located in Tokyo but was isolated by the Ashburn
	// VP; instance 1 is in Amsterdam via the Tokyo VP. A client near
	// Ashburn is geographically nearest to Amsterdam, but its side of
	// the catchment (the Ashburn VP's) reaches the Tokyo replica.
	crossed := []analysis.Finding{mkFinding(t, svcPrefix, 64500, []testReplica{
		{"vp-ash", "Tokyo", "JP"},
		{"vp-tyo", "Amsterdam", "NL"},
	})}
	st := store.New(store.Options{})
	st.Publish(store.NewSnapshot(crossed, nil, 1, 1))
	loc := withLocator(cityLocator(cityLoc(t, "Ashburn", "US")))

	near := testEngine(t, st, loc, withPolicies(PolicyNearestReplica))
	ansN, _ := near.Decide(netsim.Prefix24(0x0b0001))
	if ansN.City != "Amsterdam" {
		t.Fatalf("nearest picked %q, want Amsterdam", ansN.City)
	}

	catch := testEngine(t, st, loc, withPolicies(PolicyCatchmentAffine))
	ansC, pol := catch.Decide(netsim.Prefix24(0x0b0001))
	if pol != PolicyCatchmentAffine || ansC.City != "Tokyo" || ansC.ViaVP != "vp-ash" {
		t.Fatalf("catchment picked %+v via %v", ansC.City, ansC.ViaVP)
	}
}

func TestHealthWeighted(t *testing.T) {
	// Quarantining the Amsterdam instance's VP demotes it: the
	// Frankfurt client lands on the next nearest healthy instance.
	snap := store.NewSnapshot(testFindings(t, 64500), nil, 1, 1)
	snap.SetHealth(census.CampaignHealth{Quarantined: []string{"vp-ams"}})
	st := store.New(store.Options{})
	st.Publish(snap)
	e := testEngine(t, st,
		withLocator(cityLocator(cityLoc(t, "Frankfurt", "DE"))),
		withPolicies(PolicyHealthWeighted, PolicyNearestReplica))
	ans, pol := e.Decide(netsim.Prefix24(0x0b0001))
	if pol != PolicyHealthWeighted {
		t.Fatalf("policy = %v", pol)
	}
	if ans.City != "Ashburn" {
		t.Fatalf("picked %q, want Ashburn (Amsterdam demoted, Tokyo farther)", ans.City)
	}

	// A clean campaign demotes nothing: health-weighted abstains and
	// the chain falls through to nearest-replica.
	clean := testEngine(t, testStore(t),
		withLocator(cityLocator(cityLoc(t, "Frankfurt", "DE"))),
		withPolicies(PolicyHealthWeighted, PolicyNearestReplica))
	ans, pol = clean.Decide(netsim.Prefix24(0x0b0001))
	if pol != PolicyNearestReplica || ans.City != "Amsterdam" {
		t.Fatalf("clean campaign: policy %v, city %q", pol, ans.City)
	}
}

func TestDecidePreferOverride(t *testing.T) {
	e := testEngine(t, testStore(t),
		withLocator(cityLocator(cityLoc(t, "Frankfurt", "DE"))))
	// The default chain decides catchment-affine; preferring
	// nearest-replica must win without reconfiguring the engine.
	_, pol := e.DecideFor(netsim.Prefix24(0x0b0001), svcPrefix, PolicyNearestReplica)
	if pol != PolicyNearestReplica {
		t.Fatalf("prefer override ignored: %v", pol)
	}
}

func TestDecideEdgeCases(t *testing.T) {
	// Empty store: no version, no decision.
	empty, err := NewEngine(Config{Store: store.New(store.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	ans, pol := empty.Decide(netsim.Prefix24(0x0b0001))
	if ans.Version != 0 || ans.Anycast || pol != PolicyNone {
		t.Fatalf("empty store: %+v, %v", ans, pol)
	}

	// Unicast prefix: version stamped, not anycast.
	e := testEngine(t, testStore(t))
	ans, pol = e.DecideFor(netsim.Prefix24(0x0b0001), netsim.Prefix24(0xDEAD00), PolicyNone)
	if ans.Version == 0 || ans.Anycast || pol != PolicyNone {
		t.Fatalf("unicast service: %+v, %v", ans, pol)
	}

	// Anycast entry with no enumerated instances: anycast yes,
	// replica no.
	bare := []analysis.Finding{{Prefix: svcPrefix, ASN: 64500, Result: core.Result{Anycast: true}}}
	st := store.New(store.Options{})
	st.Publish(store.NewSnapshot(bare, nil, 1, 1))
	e2 := testEngine(t, st)
	ans, pol = e2.Decide(netsim.Prefix24(0x0b0001))
	if !ans.Anycast || ans.Replica != -1 || pol != PolicyNone {
		t.Fatalf("bare entry: %+v, %v", ans, pol)
	}
}

// TestDecideZeroAllocs pins the tentpole's core claim: a routing
// decision allocates nothing, on heap and mapped snapshots, for every
// policy.
func TestDecideZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   *store.Store
	}{{"heap", testStore(t)}, {"mapped", mappedStore(t)}} {
		e := testEngine(t, tc.st)
		client := netsim.Prefix24(0x0b0001)
		for p := PolicyNone; p < numPolicies; p++ {
			e.DecideFor(client, svcPrefix, p) // warm
			got := testing.AllocsPerRun(100, func() {
				e.DecideFor(client, svcPrefix, p)
			})
			if got != 0 {
				t.Errorf("%s/%v: DecideFor = %.1f allocs/op, want 0", tc.name, p, got)
			}
		}
	}
}

// TestDecideDeterministic pins the satellite contract: over a fixed
// world, the full answer set is byte-identical across worker counts and
// across mapped-vs-heap snapshots — the serving twin of the snapfile
// parity test.
func TestDecideDeterministic(t *testing.T) {
	fs := testFindings(t, 64500)
	heapSnap := store.NewSnapshot(fs, nil, 1, 1)
	path := filepath.Join(t.TempDir(), "census.snap")
	if err := store.SaveSnapshotFile(path, heapSnap); err != nil {
		t.Fatal(err)
	}
	mapped, err := store.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heapStore := store.New(store.Options{})
	heapStore.Publish(heapSnap)
	mappedStore := store.New(store.Options{})
	mappedStore.Publish(mapped)

	const clients = 512
	digest := func(st *store.Store, workers int) [32]byte {
		e := testEngine(t, st)
		out := make([][]byte, clients)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < clients; i += workers {
					client := netsim.Prefix24(uint32(0x0b0000) + uint32(i))
					var buf []byte
					for p := PolicyNone; p < numPolicies; p++ {
						ans, pol := e.DecideFor(client, svcPrefix, p)
						buf = fmt.Appendf(buf, "%d|%+v|%v\n", p, ans, pol)
					}
					out[i] = buf
				}
			}(w)
		}
		wg.Wait()
		h := sha256.New()
		for _, b := range out {
			h.Write(b)
		}
		var sum [32]byte
		copy(sum[:], h.Sum(nil))
		return sum
	}

	want := digest(heapStore, 1)
	for _, workers := range []int{2, 8} {
		if got := digest(heapStore, workers); got != want {
			t.Errorf("heap snapshot: %d workers diverge from 1", workers)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		if got := digest(mappedStore, workers); got != want {
			t.Errorf("mapped snapshot with %d workers diverges from heap", workers)
		}
	}
}

func BenchmarkDecide(b *testing.B) {
	e := testEngine(b, mappedStore(b))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.DecideFor(netsim.Prefix24(uint32(0x0b0000)+uint32(i&1023)), svcPrefix, PolicyNone)
	}
}
