//go:build linux

package route

import "syscall"

// soReusePort is SO_REUSEPORT, absent from the stdlib syscall package
// on linux (it predates the constant's addition cutoff). The value is
// 15 on every linux architecture.
const soReusePort = 0xf

// reusePortControl marks the socket SO_REUSEPORT before bind, so N
// listeners share one port and the kernel hashes flows across them —
// the standard sharding pattern for UDP packet services.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}
