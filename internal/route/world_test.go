package route

import (
	"path/filepath"
	"testing"

	"anycastmap/internal/analysis"
	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/store"
)

// The test world: one anycast service at 10.10.0.0/24 with replicas in
// Amsterdam (isolated by vp-ams), Tokyo (vp-tyo) and Ashburn (vp-ash),
// plus a second service at 10.10.1.0/24. Vantage points sit in the same
// three cities, so catchment-affine and nearest-replica agree unless a
// test deliberately crosses them.

const (
	svcPrefix  = netsim.Prefix24(0x0a0a00) // 10.10.0.0/24
	svc2Prefix = netsim.Prefix24(0x0a0a01) // 10.10.1.0/24
)

type testReplica struct {
	vp   string
	city string
	cc   string
}

var defaultReplicas = []testReplica{
	{"vp-ams", "Amsterdam", "NL"},
	{"vp-tyo", "Tokyo", "JP"},
	{"vp-ash", "Ashburn", "US"},
}

func mkFinding(t testing.TB, prefix netsim.Prefix24, asn int, reps []testReplica) analysis.Finding {
	t.Helper()
	db := cities.Default()
	rs := make([]core.GeoReplica, len(reps))
	for i, r := range reps {
		rs[i] = core.GeoReplica{VP: r.vp, Located: true, City: db.MustByName(r.city, r.cc)}
	}
	return analysis.Finding{
		Prefix: prefix,
		ASN:    asn,
		Result: core.Result{Anycast: true, Replicas: rs},
	}
}

func testFindings(t testing.TB, asn int) []analysis.Finding {
	return []analysis.Finding{
		mkFinding(t, svcPrefix, asn, defaultReplicas),
		mkFinding(t, svc2Prefix, asn, defaultReplicas[:2]),
	}
}

func testVPs(t testing.TB) []platform.VP {
	t.Helper()
	db := cities.Default()
	vps := make([]platform.VP, len(defaultReplicas))
	for i, r := range defaultReplicas {
		c := db.MustByName(r.city, r.cc)
		vps[i] = platform.VP{ID: i, Name: r.vp, City: c, Loc: c.Loc}
	}
	return vps
}

// cityLocator places every client at a fixed coordinate.
func cityLocator(loc geo.Coord) Locator {
	return LocatorFunc(func(netsim.Prefix24) (geo.Coord, bool) { return loc, true })
}

func cityLoc(t testing.TB, name, cc string) geo.Coord {
	t.Helper()
	return cities.Default().MustByName(name, cc).Loc
}

// testStore publishes a heap snapshot of the default world.
func testStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New(store.Options{})
	st.Publish(store.NewSnapshot(testFindings(t, 64500), nil, 1, 1))
	return st
}

// mappedStore publishes the same world served from a snapshot file.
func mappedStore(t testing.TB) *store.Store {
	t.Helper()
	snap := store.NewSnapshot(testFindings(t, 64500), nil, 1, 1)
	path := filepath.Join(t.TempDir(), "census.snap")
	if err := store.SaveSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	mapped, err := store.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(store.Options{})
	st.Publish(mapped)
	return st
}

func testEngine(t testing.TB, st *store.Store, opts ...func(*Config)) *Engine {
	t.Helper()
	cfg := Config{Store: st, Service: svcPrefix, VPs: testVPs(t)}
	for _, o := range opts {
		o(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func withLocator(l Locator) func(*Config) { return func(c *Config) { c.Locator = l } }

func withPolicies(ps ...Policy) func(*Config) { return func(c *Config) { c.Policies = ps } }
