package route

import (
	"reflect"
	"testing"

	"anycastmap/internal/netsim"
	"anycastmap/internal/store"
)

// TestDecideForCached pins the cache's contract: cached answers are
// byte-identical to the uncached path — on cold slots, on hits, across
// direct-mapped evictions (more distinct clients than can coexist in
// colliding slots), and across a snapshot swap, where the version gate
// must force recomputation against the new generation.
func TestDecideForCached(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   *store.Store
	}{{"heap", testStore(t)}, {"mapped", mappedStore(t)}} {
		t.Run(tc.name, func(t *testing.T) {
			e := testEngine(t, tc.st)
			sc := &Scratch{}
			check := func(stage string) {
				t.Helper()
				for _, prefer := range []Policy{PolicyNone, PolicyCatchmentAffine, PolicyHealthWeighted, PolicyNearestReplica} {
					for i := 0; i < 2*decideCacheSize+37; i += 97 {
						client := netsim.Prefix24(uint32(0x0b0000) + uint32(i))
						for _, svc := range []netsim.Prefix24{svcPrefix, svc2Prefix, netsim.Prefix24(0x7f0000)} {
							want, wantP := e.DecideFor(client, svc, prefer)
							got, gotP := e.DecideForCached(sc, client, svc, prefer)
							if gotP != wantP || !reflect.DeepEqual(got, want) {
								t.Fatalf("%s: client %v svc %v prefer %v:\ncached   %+v (%v)\nuncached %+v (%v)",
									stage, client, svc, prefer, got, gotP, want, wantP)
							}
							// Second call lands on the warm slot.
							again, againP := e.DecideForCached(sc, client, svc, prefer)
							if againP != wantP || !reflect.DeepEqual(again, want) {
								t.Fatalf("%s: hit path diverged for client %v", stage, client)
							}
						}
					}
				}
			}
			check("v1")

			// A new generation with a different ASN: every cached slot is
			// now stale and must revalidate by version, never serving v1
			// fields under v2.
			tc.st.Publish(store.NewSnapshot(testFindings(t, 64999), nil, 2, 2))
			ans, _ := e.DecideForCached(sc, netsim.Prefix24(0x0b0000), svcPrefix, PolicyNone)
			if ans.Version != 2 || ans.ASN != 64999 {
				t.Fatalf("post-swap cached answer = version %d asn %d, want 2/64999", ans.Version, ans.ASN)
			}
			check("v2")
		})
	}
}

// TestDecideForCachedZeroAllocs pins zero heap allocations on both the
// miss and the hit path.
func TestDecideForCachedZeroAllocs(t *testing.T) {
	e := testEngine(t, mappedStore(t))
	sc := &Scratch{}
	if got := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.DecideForCached(sc, netsim.Prefix24(uint32(0x0b0000)+uint32(i)), svcPrefix, PolicyNone)
		}
	}); got != 0 {
		t.Errorf("DecideForCached = %.1f allocs, want 0", got)
	}
}

func BenchmarkDecideCached(b *testing.B) {
	e := testEngine(b, mappedStore(b))
	sc := &Scratch{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.DecideForCached(sc, netsim.Prefix24(uint32(0x0b0000)+uint32(i&1023)), svcPrefix, PolicyNone)
	}
}
