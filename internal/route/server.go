package route

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"anycastmap/internal/netsim"
)

// Responder is the complete per-packet answer path — decode, decide,
// encode — over one engine. It is the unit the benchmarks measure and
// the zero-alloc test pins: Respond touches only the caller's Scratch.
type Responder struct {
	engine  *Engine
	zone    []byte
	ttl     uint32
	metrics *Metrics
}

// NewResponder builds the answer path for a zone (empty = DefaultZone)
// with the given answer TTL (0 = 30s). metrics may be nil.
func NewResponder(e *Engine, zone string, ttl uint32, m *Metrics) (*Responder, error) {
	if zone == "" {
		zone = DefaultZone
	}
	wire, err := EncodeName(nil, zone)
	if err != nil {
		return nil, err
	}
	if ttl == 0 {
		ttl = 30
	}
	return &Responder{engine: e, zone: wire, ttl: ttl, metrics: m}, nil
}

// Respond answers one request packet using the worker's scratch. The
// returned slice aliases sc.resp (valid until the next Respond on the
// same scratch); nil means drop. src supplies the client prefix when
// the query carries no EDNS Client Subnet option.
func (r *Responder) Respond(sc *Scratch, pkt []byte, src netip.AddrPort) []byte {
	var start time.Time
	if r.metrics != nil {
		start = time.Now()
	}
	r.metrics.query()
	rcode, ok := DecodeQuery(sc, pkt, r.zone)
	if !ok {
		r.metrics.dropped()
		return nil
	}
	if rcode != RcodeNoError {
		r.metrics.answered(PolicyNone, rcode)
		return EncodeError(sc, rcode)
	}

	client := sc.q.ECS
	if !sc.q.HasECS {
		a := src.Addr()
		if a.Is4In6() {
			a = a.Unmap()
		}
		if a.Is4() {
			b := a.As4()
			client = netsim.IP(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])).Prefix()
		}
	}

	ans, policy := r.engine.DecideForCached(sc, client, sc.q.Service, sc.q.Policy)
	var out []byte
	switch {
	case ans.Version == 0:
		// No snapshot yet: the daemon is starting. SERVFAIL tells the
		// client to retry rather than caching a lie.
		rcode = RcodeServFail
		out = EncodeError(sc, rcode)
	case !ans.Anycast:
		rcode = RcodeNXDomain
		out = EncodeError(sc, rcode)
	default:
		rcode = RcodeNoError
		out = EncodeAnswer(sc, &ans, policy, r.ttl)
	}
	r.metrics.answered(policy, rcode)
	if r.metrics != nil {
		r.metrics.Latency.ObserveSince(start)
	}
	return out
}

// ServerConfig wires a Server.
type ServerConfig struct {
	// Addr is the UDP listen address, e.g. "127.0.0.1:5300" (port 0
	// picks one; Addr() reports it).
	Addr string
	// Listeners is the number of SO_REUSEPORT sockets sharing the port,
	// each served by its own goroutine with its own Scratch. 0 means
	// GOMAXPROCS. Platforms without SO_REUSEPORT fall back to 1.
	Listeners int
	// Engine makes the decisions. Required.
	Engine *Engine
	// Zone is the served suffix (empty = DefaultZone); TTL the answer
	// TTL in seconds (0 = 30).
	Zone string
	TTL  uint32
	// Metrics receives the anycastmap_route_* series; may be nil.
	Metrics *Metrics
}

// Server owns N SO_REUSEPORT UDP listeners over one Responder. The
// kernel hashes flows across the sockets, so the packet path shards
// across GOMAXPROCS without a userspace dispatcher.
type Server struct {
	responder *Responder
	conns     []*net.UDPConn
	wg        sync.WaitGroup
	closed    atomic.Bool
}

// NewServer binds the listeners and starts the serve goroutines.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("route: ServerConfig.Engine is required")
	}
	r, err := NewResponder(cfg.Engine, cfg.Zone, cfg.TTL, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	n := cfg.Listeners
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	lc := net.ListenConfig{Control: reusePortControl}
	first, err := lc.ListenPacket(context.Background(), "udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("route: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{responder: r, conns: []*net.UDPConn{first.(*net.UDPConn)}}
	// Port 0 resolves at the first bind; the rest bind the actual port.
	actual := first.LocalAddr().String()
	for i := 1; i < n; i++ {
		c, err := lc.ListenPacket(context.Background(), "udp", actual)
		if err != nil {
			break // no SO_REUSEPORT here: serve with what bound
		}
		s.conns = append(s.conns, c.(*net.UDPConn))
	}
	for _, c := range s.conns {
		s.wg.Add(1)
		go s.serve(c)
	}
	return s, nil
}

// Addr returns the bound address of the first listener.
func (s *Server) Addr() net.Addr { return s.conns[0].LocalAddr() }

// Listeners returns how many sockets actually bound.
func (s *Server) Listeners() int { return len(s.conns) }

// Close stops every listener and waits for the serve goroutines.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	for _, c := range s.conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// serve is one listener's packet loop. Everything it touches per packet
// — request buffer, decoded query, response buffer — lives in its own
// Scratch, and the AddrPort read/write pair keeps the source address a
// stack value: zero heap allocations per packet, pinned by
// TestRespondZeroAllocsPerQuery and the benchreport route_serving
// block.
func (s *Server) serve(c *net.UDPConn) {
	defer s.wg.Done()
	sc := &Scratch{}
	for {
		n, src, err := c.ReadFromUDPAddrPort(sc.req[:])
		if err != nil {
			if s.closed.Load() {
				return
			}
			continue // transient (e.g. a truncation error); keep serving
		}
		if resp := s.responder.Respond(sc, sc.req[:n], src); resp != nil {
			c.WriteToUDPAddrPort(resp, src)
		}
	}
}
