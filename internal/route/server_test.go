package route

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anycastmap/internal/analysis"
	"anycastmap/internal/netsim"
	"anycastmap/internal/obs"
	"anycastmap/internal/store"
)

func testServer(t *testing.T, st *store.Store, m *Metrics) *Server {
	t.Helper()
	e := testEngine(t, st)
	s, err := NewServer(ServerConfig{
		Addr:      "127.0.0.1:0",
		Listeners: 2,
		Engine:    e,
		Metrics:   m,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// exchange sends one query packet and returns the response.
func exchange(t *testing.T, addr string, pkt []byte) []byte {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp := make([]byte, 2048)
	n, err := conn.Read(resp)
	if err != nil {
		t.Fatalf("no response: %v", err)
	}
	return resp[:n]
}

func respRcode(resp []byte) int { return int(resp[3] & 0xf) }

func TestServerEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	s := testServer(t, testStore(t), m)
	if s.Listeners() < 1 {
		t.Fatalf("no listeners bound")
	}
	addr := s.Addr().String()

	// A query: NOERROR with one answer.
	pkt := buildQuery(t, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(0x0b0001))
	resp := exchange(t, addr, pkt)
	if rc := respRcode(resp); rc != RcodeNoError {
		t.Fatalf("A query rcode = %d", rc)
	}
	if an := int(resp[6])<<8 | int(resp[7]); an != 1 {
		t.Fatalf("ANCOUNT = %d", an)
	}

	// TXT query with an explicit policy label.
	pkt = buildQuery(t, svcPrefix, PolicyNearestReplica, qtypeTXT, netsim.Prefix24(0x0b0001))
	resp = exchange(t, addr, pkt)
	if !bytes.Contains(resp, []byte("policy=nearest-replica")) {
		t.Errorf("TXT answer missing policy: %q", resp)
	}

	// Unknown service prefix: NXDOMAIN.
	pkt = buildQuery(t, netsim.Prefix24(0xDEAD00), PolicyNone, qtypeA, netsim.Prefix24(0x0b0001))
	if rc := respRcode(exchange(t, addr, pkt)); rc != RcodeNXDomain {
		t.Errorf("unknown service rcode = %d", rc)
	}

	// No EDNS at all: the client prefix falls back to the UDP source
	// (127.0.0.1/24 here) and the query still routes.
	name, err := EncodeName(nil, "10.10.0."+DefaultZone)
	if err != nil {
		t.Fatal(err)
	}
	bare := []byte{0xab, 0xcd, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0}
	bare = append(bare, name...)
	bare = append(bare, 0, 1, 0, 1)
	resp = exchange(t, addr, bare)
	if rc := respRcode(resp); rc != RcodeNoError {
		t.Errorf("no-EDNS query rcode = %d", rc)
	}

	// Closed-loop load through the real socket path.
	res, err := Run(LoadConfig{Addr: addr, Workers: 2, Queries: 2000, Service: svcPrefix})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received < res.Sent*9/10 || res.Received == 0 {
		t.Fatalf("load: %v", res)
	}

	// The metrics series saw the traffic.
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"anycastmap_route_queries_total",
		"anycastmap_route_answers_total",
		"anycastmap_route_answer_seconds",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics missing %s:\n%s", want, text[:min(len(text), 400)])
		}
	}
	if got := m.Queries.Value(); got < uint64(res.Sent) {
		t.Errorf("queries_total = %d, want >= %d", got, res.Sent)
	}
}

func TestServerServfailBeforePublish(t *testing.T) {
	// A server over an empty store must SERVFAIL, not lie.
	s := testServer(t, store.New(store.Options{}), nil)
	pkt := buildQuery(t, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(0x0b0001))
	if rc := respRcode(exchange(t, s.Addr().String(), pkt)); rc != RcodeServFail {
		t.Fatalf("rcode = %d, want SERVFAIL", rc)
	}
}

// TestRespondZeroAllocsPerQuery pins the tentpole claim end to end: the
// full answer path — decode, decide, encode, metrics — performs zero
// heap allocations per query, for A and TXT, on heap and mapped
// snapshots.
func TestRespondZeroAllocsPerQuery(t *testing.T) {
	src := netip.MustParseAddrPort("192.0.2.1:5353")
	for _, st := range []struct {
		name string
		st   *store.Store
	}{{"heap", testStore(t)}, {"mapped", mappedStore(t)}} {
		e := testEngine(t, st.st)
		r, err := NewResponder(e, "", 30, NewMetrics(obs.NewRegistry()))
		if err != nil {
			t.Fatal(err)
		}
		for _, qt := range []struct {
			name  string
			qtype uint16
		}{{"A", qtypeA}, {"TXT", qtypeTXT}} {
			pkt := buildQuery(t, svcPrefix, PolicyNone, qt.qtype, netsim.Prefix24(0x0b0001))
			sc := &Scratch{}
			if out := r.Respond(sc, pkt, src); out == nil || respRcode(out) != RcodeNoError {
				t.Fatalf("%s/%s: bad warmup response", st.name, qt.name)
			}
			got := testing.AllocsPerRun(200, func() {
				r.Respond(sc, pkt, src)
			})
			if got != 0 {
				t.Errorf("%s/%s: Respond = %.1f allocs/op, want 0", st.name, qt.name, got)
			}
		}
	}
}

// TestSwapUnderLoad publishes a dozen mapped snapshot generations while
// workers hammer the answer path, then checks the two serving
// invariants: no answer ever mixes fields from two versions, and every
// replaced mapping's refcount drains to zero (the file actually
// unmaps). The version is encoded in the findings' ASN, so mixing is
// detectable from the answer alone. Run with -race to check the
// publish/decide interleaving.
func TestSwapUnderLoad(t *testing.T) {
	const versions = 12
	const asnBase = 64500
	dir := t.TempDir()

	st := store.New(store.Options{})
	// Version k serves ASN asnBase+k; Publish assigns versions 1..12 in
	// order.
	load := func(k int) *store.Snapshot {
		fs := []analysis.Finding{mkFinding(t, svcPrefix, asnBase+k, defaultReplicas)}
		path := filepath.Join(dir, fmt.Sprintf("v%d.snap", k))
		if err := store.SaveSnapshotFile(path, store.NewSnapshot(fs, nil, uint64(k), 1)); err != nil {
			t.Fatal(err)
		}
		snap, err := store.OpenSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	snaps := make([]*store.Snapshot, versions+1)
	snaps[1] = load(1)
	st.Publish(snaps[1])

	e := testEngine(t, st)
	r, err := NewResponder(e, "", 30, nil)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var mixed atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	src := netip.MustParseAddrPort("192.0.2.1:5353")
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &Scratch{}
			for i := 0; !stop.Load(); i++ {
				client := netsim.Prefix24(uint32(0x0b0000) + uint32(i&1023))
				// Half the workers exercise the packet path, half the
				// engine directly (the latter sees Version and ASN
				// without parsing).
				if w%2 == 0 {
					ans, _ := e.Decide(client)
					if ans.Version == 0 {
						continue
					}
					served.Add(1)
					if ans.ASN != asnBase+int(ans.Version) {
						mixed.Add(1)
					}
				} else {
					pkt := buildQuery(t, svcPrefix, PolicyNone, qtypeA, client)
					if out := r.Respond(sc, pkt, src); out == nil || respRcode(out) != RcodeNoError {
						mixed.Add(1)
					} else {
						served.Add(1)
					}
				}
			}
		}(w)
	}

	for k := 2; k <= versions; k++ {
		time.Sleep(5 * time.Millisecond)
		snaps[k] = load(k)
		if v := st.Publish(snaps[k]); v != uint64(k) {
			t.Errorf("publish %d assigned version %d", k, v)
		}
	}
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("no queries served during the swaps")
	}
	if n := mixed.Load(); n != 0 {
		t.Fatalf("%d answers mixed snapshot versions (of %d served)", n, served.Load())
	}
	// Every replaced snapshot's mapping must have drained: no worker
	// holds a pin, and Publish dropped the owner reference.
	for k := 1; k < versions; k++ {
		if refs := snaps[k].MappingRefs(); refs != 0 {
			t.Errorf("version %d still holds %d mapping refs", k, refs)
		}
	}
	if refs := snaps[versions].MappingRefs(); refs < 1 {
		t.Errorf("live snapshot refs = %d, want >= 1 (owner)", refs)
	}
	if got := st.Current().Version(); got != versions {
		t.Errorf("current version = %d, want %d", got, versions)
	}
}

// BenchmarkRespond measures the full per-packet answer path — decode,
// decide, encode — that each UDP listener runs between syscalls.
func BenchmarkRespond(b *testing.B) {
	e := testEngine(b, mappedStore(b))
	r, err := NewResponder(e, "", 30, nil)
	if err != nil {
		b.Fatal(err)
	}
	src := netip.MustParseAddrPort("192.0.2.1:5353")
	var reqs [][]byte
	for i := 0; i < 1024; i++ {
		reqs = append(reqs, buildQuery(b, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(uint32(0x0b0000)+uint32(i))))
	}
	sc := &Scratch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Respond(sc, reqs[i&1023], src)
	}
}
