package route

import (
	"bytes"
	"testing"

	"anycastmap/internal/netsim"
)

var testZone = func() []byte {
	z, err := EncodeName(nil, DefaultZone)
	if err != nil {
		panic(err)
	}
	return z
}()

func buildQuery(t testing.TB, service netsim.Prefix24, policy Policy, qtype uint16, client netsim.Prefix24) []byte {
	t.Helper()
	return AppendQuery(nil, 0x1234, service, policy, testZone, qtype, client)
}

func TestDecodeQueryRoundtrip(t *testing.T) {
	sc := &Scratch{}
	pkt := buildQuery(t, svcPrefix, PolicyNearestReplica, qtypeTXT, netsim.Prefix24(0x0b2233))
	rcode, ok := DecodeQuery(sc, pkt, testZone)
	if !ok || rcode != RcodeNoError {
		t.Fatalf("decode: rcode=%d ok=%v", rcode, ok)
	}
	q := &sc.q
	if q.ID != 0x1234 || !q.RD || q.QType != qtypeTXT {
		t.Fatalf("header fields: %+v", q)
	}
	if q.Service != svcPrefix {
		t.Fatalf("service = %v, want %v", q.Service, svcPrefix)
	}
	if q.Policy != PolicyNearestReplica {
		t.Fatalf("policy = %v", q.Policy)
	}
	if !q.EDNS || !q.HasECS || q.ECS != netsim.Prefix24(0x0b2233) || q.ECSSource != 24 {
		t.Fatalf("ECS: %+v", q)
	}

	// Without a policy label: three labels, default chain.
	pkt = buildQuery(t, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(0x0b2233))
	if rcode, ok = DecodeQuery(sc, pkt, testZone); !ok || rcode != RcodeNoError {
		t.Fatalf("3-label decode: rcode=%d ok=%v", rcode, ok)
	}
	if sc.q.Policy != PolicyNone || sc.q.Service != svcPrefix {
		t.Fatalf("3-label query: %+v", sc.q)
	}
}

func TestDecodeQueryCaseInsensitiveZone(t *testing.T) {
	sc := &Scratch{}
	pkt := buildQuery(t, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(0x0b2233))
	// Fold the zone letters byte-wise (bytes.ToUpper is UTF-8 aware and
	// would mangle the binary OPT section).
	upper := append([]byte(nil), pkt...)
	for i, c := range upper {
		if 'a' <= c && c <= 'z' {
			upper[i] = c - ('a' - 'A')
		}
	}
	if rcode, ok := DecodeQuery(sc, upper, testZone); !ok || rcode != RcodeNoError {
		t.Fatalf("uppercase zone: rcode=%d ok=%v", rcode, ok)
	}
}

func TestDecodeQueryErrors(t *testing.T) {
	base := buildQuery(t, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(0x0b2233))
	mut := func(f func(p []byte)) []byte {
		p := append([]byte(nil), base...)
		f(p)
		return p
	}
	outOfZone, err := EncodeName(nil, "10.10.0.example.com.")
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name  string
		pkt   []byte
		rcode int
		drop  bool
	}{
		{"runt", base[:8], 0, true},
		{"response bit", mut(func(p []byte) { p[2] |= 0x80 }), 0, true},
		{"opcode status", mut(func(p []byte) { p[2] |= 0x10 }), RcodeNotImp, false},
		{"two questions", mut(func(p []byte) { p[5] = 2 }), RcodeFormErr, false},
		{"answer in query", mut(func(p []byte) { p[7] = 1 }), RcodeFormErr, false},
		{"chaos class", mut(func(p []byte) { p[len(p)-22-4+3] = 3 }), RcodeRefused, false},
		{"truncated question", base[:headerLen+4], RcodeFormErr, false},
	}
	sc := &Scratch{}
	for _, tc := range tests {
		rcode, ok := DecodeQuery(sc, tc.pkt, testZone)
		if tc.drop {
			if ok {
				t.Errorf("%s: not dropped (rcode %d)", tc.name, rcode)
			}
			continue
		}
		if !ok || rcode != tc.rcode {
			t.Errorf("%s: rcode=%d ok=%v, want %d", tc.name, rcode, ok, tc.rcode)
		}
	}

	// Structured cases that need their own packets.
	hdr := func(qd, an, ns, ar int) []byte {
		p := []byte{0x12, 0x34, 0, 0, 0, byte(qd), 0, byte(an), 0, byte(ns), 0, byte(ar)}
		return p
	}
	// Out-of-zone name.
	p := append(hdr(1, 0, 0, 0), outOfZone...)
	p = append(p, 0, 1, 0, 1)
	if rcode, ok := DecodeQuery(sc, p, testZone); !ok || rcode != RcodeRefused {
		t.Errorf("out of zone: rcode=%d ok=%v", rcode, ok)
	}
	// In-zone but not the service dialect: NXDOMAIN.
	name, _ := EncodeName(nil, "foo.bar."+DefaultZone)
	p = append(hdr(1, 0, 0, 0), name...)
	p = append(p, 0, 1, 0, 1)
	if rcode, ok := DecodeQuery(sc, p, testZone); !ok || rcode != RcodeNXDomain {
		t.Errorf("bad labels: rcode=%d ok=%v", rcode, ok)
	}
	// Octet out of range.
	name, _ = EncodeName(nil, "10.999.0."+DefaultZone)
	p = append(hdr(1, 0, 0, 0), name...)
	p = append(p, 0, 1, 0, 1)
	if rcode, ok := DecodeQuery(sc, p, testZone); !ok || rcode != RcodeNXDomain {
		t.Errorf("bad octet: rcode=%d ok=%v", rcode, ok)
	}
	// Compression pointer loop in the qname must not hang or crash.
	p = append(hdr(1, 0, 0, 0), 0xc0, headerLen) // points at itself
	p = append(p, 0, 1, 0, 1)
	if rcode, ok := DecodeQuery(sc, p, testZone); !ok || rcode != RcodeFormErr {
		t.Errorf("pointer loop: rcode=%d ok=%v", rcode, ok)
	}
}

func TestDecodeQueryECSValidation(t *testing.T) {
	// Build a query and corrupt the ECS option in targeted ways. The
	// option data — family(2) source(1) scope(1) addr(3) — occupies the
	// packet's last 7 bytes (see AppendQuery).
	base := buildQuery(t, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(0x0b2233))
	ecsOff := len(base) - 7
	sc := &Scratch{}

	corrupt := func(f func(p []byte)) (int, bool) {
		p := append([]byte(nil), base...)
		f(p)
		return DecodeQuery(sc, p, testZone)
	}

	if rcode, ok := corrupt(func(p []byte) { p[ecsOff+3] = 8 }); !ok || rcode != RcodeFormErr {
		t.Errorf("nonzero scope: rcode=%d ok=%v", rcode, ok)
	}
	if rcode, ok := corrupt(func(p []byte) { p[ecsOff+2] = 33 }); !ok || rcode != RcodeFormErr {
		t.Errorf("v4 source 33: rcode=%d ok=%v", rcode, ok)
	}
	if rcode, ok := corrupt(func(p []byte) { p[ecsOff+2] = 16 }); !ok || rcode != RcodeFormErr {
		t.Errorf("source/addr length mismatch: rcode=%d ok=%v", rcode, ok)
	}

	// Source 0 with no address bytes is legal "no client info": drop
	// the 3 addr bytes and fix the lengths.
	p := append([]byte(nil), base...)
	p = p[:len(p)-3]
	put16(p[len(p)-10:], 8) // OPT RDLEN: option header 4 + ECS 4
	put16(p[len(p)-6:], 4)  // ECS option length
	p[len(p)-2] = 0         // source 0
	if rcode, ok := DecodeQuery(sc, p, testZone); !ok || rcode != RcodeNoError || sc.q.HasECS {
		t.Errorf("source 0: rcode=%d ok=%v hasECS=%v", rcode, ok, sc.q.HasECS)
	}

	// A /16 source masks the third octet out of the routing key.
	p = append([]byte(nil), base...)
	p = p[:len(p)-1]         // addr shrinks to 2 bytes
	put16(p[len(p)-12:], 10) // OPT RDLEN: option header 4 + ECS 6
	put16(p[len(p)-8:], 6)   // ECS option length
	p[len(p)-4] = 16         // source /16
	if rcode, ok := DecodeQuery(sc, p, testZone); !ok || rcode != RcodeNoError {
		t.Fatalf("/16 source: rcode=%d ok=%v", rcode, ok)
	}
	if !sc.q.HasECS || sc.q.ECS != netsim.Prefix24(0x0b2200) || sc.q.ECSSource != 16 {
		t.Errorf("/16 source: ECS=%v source=%d", sc.q.ECS, sc.q.ECSSource)
	}

	// Well-formed /24 resolves to the client prefix.
	if rcode, ok := DecodeQuery(sc, base, testZone); !ok || rcode != RcodeNoError {
		t.Fatalf("well-formed: rcode=%d ok=%v", rcode, ok)
	}
	if sc.q.ECS != netsim.Prefix24(0x0b2233) || sc.q.ECSSource != 24 {
		t.Errorf("ECS = %v source=%d", sc.q.ECS, sc.q.ECSSource)
	}
}

func TestEncodeAnswerShape(t *testing.T) {
	sc := &Scratch{}
	pkt := buildQuery(t, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(0x0b2233))
	if rcode, ok := DecodeQuery(sc, pkt, testZone); !ok || rcode != RcodeNoError {
		t.Fatalf("decode: %d %v", rcode, ok)
	}
	ans := Answer{
		Client: netsim.Prefix24(0x0b2233), Service: svcPrefix, Version: 7,
		Anycast: true, Replica: 2, Replicas: 3, Addr: svcPrefix.Host(3),
		ViaVP: "vp-ash", City: "Ashburn", CC: "US", Located: true, DistKm: 123,
		ASN: 64500,
	}
	out := EncodeAnswer(sc, &ans, PolicyNearestReplica, 30)

	if len(out) < headerLen {
		t.Fatal("short response")
	}
	if out[0] != 0x12 || out[1] != 0x34 {
		t.Errorf("ID not echoed: % x", out[:2])
	}
	flags := uint16(out[2])<<8 | uint16(out[3])
	if flags&flagQR == 0 || flags&flagAA == 0 || flags&flagRD == 0 || flags&0xf != RcodeNoError {
		t.Errorf("flags = %04x", flags)
	}
	an := int(out[6])<<8 | int(out[7])
	ar := int(out[10])<<8 | int(out[11])
	if an != 1 || ar != 1 {
		t.Errorf("ANCOUNT=%d ARCOUNT=%d", an, ar)
	}
	// The A rdata is the last 4 bytes before the OPT record; locate it
	// from the answer's fixed layout: question + name-pointer(2) +
	// type/class/ttl(8) + rdlen(2) + rdata(4).
	qlen := sc.q.nameLen + 4
	aOff := headerLen + qlen + 2 + 8 + 2
	addr := netsim.IP(uint32(out[aOff])<<24 | uint32(out[aOff+1])<<16 | uint32(out[aOff+2])<<8 | uint32(out[aOff+3]))
	if addr != ans.Addr {
		t.Errorf("A rdata = %v, want %v", addr, ans.Addr)
	}

	// TXT answers describe the decision.
	pkt = buildQuery(t, svcPrefix, PolicyNone, qtypeTXT, netsim.Prefix24(0x0b2233))
	if rcode, ok := DecodeQuery(sc, pkt, testZone); !ok || rcode != RcodeNoError {
		t.Fatalf("decode TXT: %d %v", rcode, ok)
	}
	out = EncodeAnswer(sc, &ans, PolicyNearestReplica, 30)
	if !bytes.Contains(out, []byte("policy=nearest-replica")) ||
		!bytes.Contains(out, []byte("via=vp-ash")) ||
		!bytes.Contains(out, []byte("client=11.34.51.0/24")) {
		t.Errorf("TXT missing fields: %q", out)
	}

	// No-replica answers are NODATA: NOERROR, empty answer section.
	bare := ans
	bare.Replica = -1
	out = EncodeAnswer(sc, &bare, PolicyNone, 30)
	if an := int(out[6])<<8 | int(out[7]); an != 0 {
		t.Errorf("NODATA ANCOUNT = %d", an)
	}
}

func TestEncodeErrorShape(t *testing.T) {
	sc := &Scratch{}
	pkt := buildQuery(t, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(0x0b2233))
	if rcode, ok := DecodeQuery(sc, pkt, testZone); !ok || rcode != RcodeNoError {
		t.Fatal("decode failed")
	}
	out := EncodeError(sc, RcodeServFail)
	flags := uint16(out[2])<<8 | uint16(out[3])
	if flags&0xf != RcodeServFail {
		t.Errorf("rcode = %d", flags&0xf)
	}
	if qd := int(out[4])<<8 | int(out[5]); qd != 1 {
		t.Errorf("question not echoed: QDCOUNT=%d", qd)
	}
	// A FORMERR before the name parsed echoes nothing.
	DecodeQuery(sc, append(pkt[:headerLen:headerLen], 0xc0, 0x0c), testZone)
	out = EncodeError(sc, RcodeFormErr)
	if qd := int(out[4])<<8 | int(out[5]); qd != 0 {
		t.Errorf("unparsed question echoed: QDCOUNT=%d", qd)
	}
}

// TestScratchReuse decodes packets of decreasing size through one
// scratch and checks no state leaks between packets.
func TestScratchReuse(t *testing.T) {
	sc := &Scratch{}
	withPolicyAndECS := buildQuery(t, svcPrefix, PolicyHealthWeighted, qtypeTXT, netsim.Prefix24(0x0b2233))
	if rcode, ok := DecodeQuery(sc, withPolicyAndECS, testZone); !ok || rcode != RcodeNoError {
		t.Fatal("first decode failed")
	}
	// A minimal query without EDNS must not inherit the first packet's
	// policy, ECS or EDNS flags.
	name, _ := EncodeName(nil, "10.10.1."+DefaultZone)
	p := []byte{0x56, 0x78, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}
	p = append(p, name...)
	p = append(p, 0, 1, 0, 1)
	if rcode, ok := DecodeQuery(sc, p, testZone); !ok || rcode != RcodeNoError {
		t.Fatalf("second decode: %d %v", rcode, ok)
	}
	q := &sc.q
	if q.Policy != PolicyNone || q.HasECS || q.EDNS || q.Service != svc2Prefix || q.ID != 0x5678 {
		t.Fatalf("scratch leaked state: %+v", q)
	}
}

// FuzzDecodeQuery hardens the parser against hostile packets: whatever
// the bytes, DecodeQuery must return without panicking, and a query it
// accepts must also encode an answer and an error without panicking.
func FuzzDecodeQuery(f *testing.F) {
	f.Add(buildQuery(f, svcPrefix, PolicyNone, qtypeA, netsim.Prefix24(0x0b2233)))
	f.Add(buildQuery(f, svcPrefix, PolicyNearestReplica, qtypeTXT, netsim.Prefix24(0x0b2233)))
	f.Add(buildQuery(f, svc2Prefix, PolicyCatchmentAffine, qtypeA, 0))
	// Hostile seeds: pointer loop, truncated OPT, nested pointers.
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 0x0c, 0, 1, 0, 1})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0, 1, 0, 1, 0, 0, 41, 0, 0, 0, 0, 0, 0, 0, 4, 0, 8})
	f.Add(bytes.Repeat([]byte{0xc0}, 64))

	ans := Answer{Anycast: true, Replica: 1, Replicas: 3, Addr: svcPrefix.Host(2),
		ViaVP: "vp-x", City: "Nowhere", CC: "XX", Located: true, DistKm: 1, ASN: 1}
	f.Fuzz(func(t *testing.T, pkt []byte) {
		sc := &Scratch{}
		rcode, ok := DecodeQuery(sc, pkt, testZone)
		if !ok {
			return
		}
		if rcode < 0 || rcode >= numRcodes {
			t.Fatalf("rcode %d out of range", rcode)
		}
		var out []byte
		if rcode == RcodeNoError {
			out = EncodeAnswer(sc, &ans, PolicyNearestReplica, 30)
		} else {
			out = EncodeError(sc, rcode)
		}
		if len(out) < headerLen {
			t.Fatalf("short response: %d bytes", len(out))
		}
		if len(out) > len(sc.resp) {
			t.Fatalf("response %d bytes overflows the scratch", len(out))
		}
		// Responses must never have the query bit clear.
		if out[2]&0x80 == 0 {
			t.Fatal("response without QR bit")
		}
	})
}
