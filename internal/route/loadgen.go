package route

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"anycastmap/internal/netsim"
)

// loadgen.go — the front-end's traffic source, in both shapes the
// serving literature distinguishes:
//
//   - closed loop: each worker sends, waits for the answer, repeats.
//     Measures latency under a concurrency bound; throughput is gated
//     by round-trip time.
//   - open loop: senders pace queries at a fixed rate regardless of
//     responses, the way real query arrivals behave; a reader matches
//     answers by DNS ID. Measures whether the server keeps up and what
//     the tail looks like when it must.

// LoadConfig shapes one load run.
type LoadConfig struct {
	// Addr is the front-end's UDP address.
	Addr string
	// Workers is the number of concurrent connections (closed loop) or
	// sender/reader pairs (open loop). 0 means 4.
	Workers int
	// Queries is the closed-loop total; Duration and RatePerS select
	// the open loop instead when RatePerS > 0.
	Queries  int
	Duration time.Duration
	RatePerS float64
	// Service is the deployment prefix to query for.
	Service netsim.Prefix24
	// Clients is how many distinct synthetic client /24s rotate through
	// the ECS option. 0 means 1024.
	Clients int
	// QType is the query type (0 = A). Policy optionally prefixes the
	// qname with a policy label; Zone defaults to DefaultZone.
	QType  uint16
	Policy Policy
	Zone   string
	// Timeout bounds one closed-loop round trip (0 = 1s).
	Timeout time.Duration
}

// LoadResult summarizes one run.
type LoadResult struct {
	Sent     int           `json:"sent"`
	Received int           `json:"received"`
	Timeouts int           `json:"timeouts"`
	Errors   int           `json:"errors"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// QPS counts received answers per second of elapsed time.
	QPS  float64       `json:"qps"`
	P50  time.Duration `json:"p50_ns"`
	P99  time.Duration `json:"p99_ns"`
	P999 time.Duration `json:"p999_ns"`
}

func (c LoadConfig) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 4
}

func (c LoadConfig) clients() int {
	if c.Clients > 0 {
		return c.Clients
	}
	return 1024
}

func (c LoadConfig) qtype() uint16 {
	if c.QType != 0 {
		return c.QType
	}
	return qtypeA
}

func (c LoadConfig) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return time.Second
}

// AppendQuery builds one request packet: an RD query for the service
// under the zone, carrying client as a /24 EDNS Client Subnet option.
func AppendQuery(dst []byte, id uint16, service netsim.Prefix24, policy Policy, zone []byte, qtype uint16, client netsim.Prefix24) []byte {
	var h [headerLen]byte
	put16(h[0:], id)
	put16(h[2:], flagRD)
	put16(h[4:], 1) // QDCOUNT
	put16(h[10:], 1)
	dst = append(dst, h[:]...)
	if policy != PolicyNone {
		name := policy.String()
		dst = append(dst, byte(len(name)))
		dst = append(dst, name...)
	}
	svc := uint32(service)
	for shift := 16; shift >= 0; shift -= 8 {
		var lbl [4]byte
		oct := appendOctet(lbl[:0], byte(svc>>shift))
		dst = append(dst, byte(len(oct)))
		dst = append(dst, oct...)
	}
	dst = append(dst, zone...)
	var qt [4]byte
	put16(qt[0:], qtype)
	put16(qt[2:], classIN)
	dst = append(dst, qt[:]...)
	// OPT with a /24 ECS option.
	dst = append(dst, 0)
	var opt [21]byte
	put16(opt[0:], qtypeOPT)
	put16(opt[2:], ednsUDPSize)
	put16(opt[8:], 11) // RDLEN: option header 4 + ECS 7
	put16(opt[10:], optCodeECS)
	put16(opt[12:], 7)
	put16(opt[14:], 1) // family v4
	opt[16] = 24       // source /24
	opt[17] = 0        // scope
	ip := uint32(client) << 8
	opt[18], opt[19], opt[20] = byte(ip>>24), byte(ip>>16), byte(ip>>8)
	return append(dst, opt[:]...)
}

// appendOctet mirrors netsim's digit rendering for qname labels.
func appendOctet(dst []byte, v byte) []byte {
	if v >= 100 {
		dst = append(dst, '0'+v/100)
	}
	if v >= 10 {
		dst = append(dst, '0'+(v/10)%10)
	}
	return append(dst, '0'+v%10)
}

// Run fires load at the front-end and reports. RatePerS > 0 selects the
// open loop, otherwise the closed loop runs cfg.Queries queries.
func Run(cfg LoadConfig) (LoadResult, error) {
	zone := cfg.Zone
	if zone == "" {
		zone = DefaultZone
	}
	wireZone, err := EncodeName(nil, zone)
	if err != nil {
		return LoadResult{}, err
	}
	if cfg.RatePerS > 0 {
		return runOpenLoop(cfg, wireZone)
	}
	return runClosedLoop(cfg, wireZone)
}

func runClosedLoop(cfg LoadConfig, zone []byte) (LoadResult, error) {
	workers := cfg.workers()
	total := cfg.Queries
	if total <= 0 {
		total = 10000
	}
	per := total / workers
	if per == 0 {
		per = 1
		workers = total
	}

	type wres struct {
		sent, recv, timeouts, errs int
		lat                        []time.Duration
	}
	results := make([]wres, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			conn, err := net.Dial("udp", cfg.Addr)
			if err != nil {
				r.errs = per
				return
			}
			defer conn.Close()
			r.lat = make([]time.Duration, 0, per)
			req := make([]byte, 0, 128)
			resp := make([]byte, 2048)
			clients := cfg.clients()
			for i := 0; i < per; i++ {
				client := netsim.Prefix24(uint32(0x0b0000) + uint32((w*per+i)%clients))
				req = AppendQuery(req[:0], uint16(i), cfg.Service, cfg.Policy, zone, cfg.qtype(), client)
				t0 := time.Now()
				if _, err := conn.Write(req); err != nil {
					r.errs++
					continue
				}
				r.sent++
				conn.SetReadDeadline(t0.Add(cfg.timeout()))
				if _, err := conn.Read(resp); err != nil {
					r.timeouts++
					continue
				}
				r.recv++
				r.lat = append(r.lat, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var res LoadResult
	var all []time.Duration
	for _, r := range results {
		res.Sent += r.sent
		res.Received += r.recv
		res.Timeouts += r.timeouts
		res.Errors += r.errs
		all = append(all, r.lat...)
	}
	res.Elapsed = elapsed
	finishLoad(&res, all)
	return res, nil
}

// runOpenLoop paces cfg.RatePerS queries/s across the workers for
// cfg.Duration. Each worker's reader matches responses to send times by
// DNS ID through a 64Ki ring, so latency is measured without a lockstep
// round trip.
func runOpenLoop(cfg LoadConfig, zone []byte) (LoadResult, error) {
	workers := cfg.workers()
	dur := cfg.Duration
	if dur <= 0 {
		dur = 2 * time.Second
	}
	perRate := cfg.RatePerS / float64(workers)
	interval := time.Duration(float64(time.Second) / perRate)
	if interval <= 0 {
		interval = time.Nanosecond
	}

	type wres struct {
		sent, recv, errs int
		lat              []time.Duration
	}
	results := make([]wres, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			conn, err := net.Dial("udp", cfg.Addr)
			if err != nil {
				r.errs++
				return
			}
			defer conn.Close()

			sendNs := make([]int64, 1<<16)
			done := make(chan struct{})
			var reader sync.WaitGroup
			reader.Add(1)
			go func() {
				defer reader.Done()
				resp := make([]byte, 2048)
				for {
					conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
					n, err := conn.Read(resp)
					if err != nil {
						select {
						case <-done:
							return
						default:
							continue
						}
					}
					if n < 2 {
						continue
					}
					id := uint16(resp[0])<<8 | uint16(resp[1])
					if t0 := sendNs[id]; t0 != 0 {
						r.recv++
						r.lat = append(r.lat, time.Duration(time.Now().UnixNano()-t0))
						sendNs[id] = 0
					}
				}
			}()

			req := make([]byte, 0, 128)
			clients := cfg.clients()
			deadline := start.Add(dur)
			i := 0
			for {
				now := time.Now()
				if now.After(deadline) {
					break
				}
				// Pace: query i is due at start + i*interval.
				due := start.Add(time.Duration(i) * interval)
				if d := due.Sub(now); d > 0 {
					time.Sleep(d)
				}
				id := uint16(i)
				client := netsim.Prefix24(uint32(0x0b0000) + uint32(i%clients))
				req = AppendQuery(req[:0], id, cfg.Service, cfg.Policy, zone, cfg.qtype(), client)
				sendNs[id] = time.Now().UnixNano()
				if _, err := conn.Write(req); err != nil {
					r.errs++
				} else {
					r.sent++
				}
				i++
			}
			// Drain stragglers briefly, then stop the reader.
			time.Sleep(50 * time.Millisecond)
			close(done)
			conn.SetReadDeadline(time.Now())
			reader.Wait()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var res LoadResult
	var all []time.Duration
	for _, r := range results {
		res.Sent += r.sent
		res.Received += r.recv
		res.Errors += r.errs
		all = append(all, r.lat...)
	}
	res.Timeouts = res.Sent - res.Received
	if res.Timeouts < 0 {
		res.Timeouts = 0
	}
	res.Elapsed = elapsed
	finishLoad(&res, all)
	return res, nil
}

func finishLoad(res *LoadResult, lat []time.Duration) {
	if res.Elapsed > 0 {
		res.QPS = float64(res.Received) / res.Elapsed.Seconds()
	}
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50 = lat[len(lat)/2]
	res.P99 = lat[len(lat)*99/100]
	res.P999 = lat[len(lat)*999/1000]
}

// String renders the result for log lines.
func (r LoadResult) String() string {
	return fmt.Sprintf("sent %d, received %d (%.0f qps), timeouts %d, errors %d, p50 %v, p99 %v",
		r.Sent, r.Received, r.QPS, r.Timeouts, r.Errors,
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
}
