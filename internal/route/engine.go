// Package route is the serving-side consumer of the anycast map: a
// GSLB-style routing decision engine plus a DNS/UDP front-end that
// answers "which replica of this deployment should serve this client"
// at millions of queries per second with zero heap allocations per
// query.
//
// The census pipeline (ROADMAP item 3) ends in a snapshot that knows,
// for every detected anycast /24, the deployment's enumerated and
// geolocated replica instances. This package closes the loop from
// measurement to traffic steering — the workload "Anycast Performance
// in Context" measures at root-DNS/CDN scale: a client (identified by
// its /24, carried in an EDNS Client Subnet option or taken from the
// query's source address) asks about a service prefix, and the engine
// picks the replica under one of three pluggable policies:
//
//   - nearest-replica: the geographically closest enumerated instance
//     (one dot product per instance against precomputed unit vectors).
//   - catchment-affine: the instance whose isolating vantage point is
//     closest to the client — the replica the client's side of the
//     catchment actually reaches, per the census rows.
//   - health-weighted: nearest-replica restricted to instances whose
//     isolating VP was not quarantined in the snapshot's campaign.
//
// Every decision reads only through Store.AcquirePinned, so hot
// snapshot swaps never stall a query and a query never mixes versions.
package route

import (
	"fmt"

	"anycastmap/internal/detrand"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/store"
)

// Policy identifies one replica-selection strategy.
type Policy uint8

const (
	// PolicyNone is "no decision": the store had no snapshot, the
	// service is not anycast, or no policy produced a replica.
	PolicyNone Policy = iota
	// PolicyCatchmentAffine picks the instance whose isolating VP is
	// closest to the client.
	PolicyCatchmentAffine
	// PolicyHealthWeighted picks the nearest instance whose isolating
	// VP survived the campaign un-quarantined.
	PolicyHealthWeighted
	// PolicyNearestReplica picks the geographically nearest instance.
	PolicyNearestReplica

	numPolicies
)

// String returns the policy's wire name (the qname label that selects
// it).
func (p Policy) String() string {
	switch p {
	case PolicyCatchmentAffine:
		return "catchment-affine"
	case PolicyHealthWeighted:
		return "health-weighted"
	case PolicyNearestReplica:
		return "nearest-replica"
	default:
		return "none"
	}
}

// ParsePolicy parses a policy wire name.
func ParsePolicy(s string) (Policy, error) {
	for p := PolicyCatchmentAffine; p < numPolicies; p++ {
		if s == p.String() {
			return p, nil
		}
	}
	return PolicyNone, fmt.Errorf("route: unknown policy %q", s)
}

// DefaultChain is the decision order when the caller names no policy:
// catchment affinity when the census saw the client's side of the
// catchment, demoting unhealthy replicas otherwise, plain proximity as
// the backstop.
var DefaultChain = []Policy{PolicyCatchmentAffine, PolicyHealthWeighted, PolicyNearestReplica}

// Locator estimates a client /24's coordinates. Implementations must be
// safe for concurrent use and must not allocate per call.
type Locator interface {
	Locate(p netsim.Prefix24) (geo.Coord, bool)
}

// LocatorFunc adapts a function to the Locator interface.
type LocatorFunc func(netsim.Prefix24) (geo.Coord, bool)

// Locate implements Locator.
func (f LocatorFunc) Locate(p netsim.Prefix24) (geo.Coord, bool) { return f(p) }

// HashLocator synthesizes deterministic client coordinates from the
// prefix bits — the simulator's stand-in for an IP-geolocation
// database, matching how netsim scatters hosts. Latitudes stay within
// the populated band [-60, 70].
type HashLocator struct{ Seed uint64 }

// Locate implements Locator.
func (l HashLocator) Locate(p netsim.Prefix24) (geo.Coord, bool) {
	lat := -60 + 130*detrand.UnitFloat(l.Seed, uint64(p), 0x1a7)
	lon := -180 + 360*detrand.UnitFloat(l.Seed, uint64(p), 0x10f)
	return geo.Coord{Lat: lat, Lon: lon}, true
}

// Config wires an Engine.
type Config struct {
	// Store supplies the published snapshots. Required.
	Store *store.Store
	// Service is the deployment prefix Decide routes for; DecideFor
	// overrides it per call (the DNS front-end always does).
	Service netsim.Prefix24
	// Policies is the decision chain, tried in order until one produces
	// a replica. Empty means DefaultChain.
	Policies []Policy
	// Locator places client prefixes; nil means HashLocator{}.
	Locator Locator
	// VPs is the measurement platform behind the snapshot's census:
	// catchment-affine routing resolves each instance's isolating VP
	// name to these coordinates.
	VPs []platform.VP
}

// Engine turns snapshot entries into routing decisions. All fields are
// written once at construction; Decide is safe for any number of
// concurrent callers and allocates nothing.
type Engine struct {
	store   *store.Store
	service netsim.Prefix24
	chain   [numPolicies]Policy
	chainN  int
	locator Locator
	// vpVec maps a VP name to its precomputed unit vector. Reads of a
	// prebuilt map allocate nothing.
	vpVec map[string][3]float64
}

// NewEngine validates the config and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("route: Config.Store is required")
	}
	e := &Engine{
		store:   cfg.Store,
		service: cfg.Service,
		locator: cfg.Locator,
		vpVec:   make(map[string][3]float64, len(cfg.VPs)),
	}
	if e.locator == nil {
		e.locator = HashLocator{}
	}
	chain := cfg.Policies
	if len(chain) == 0 {
		chain = DefaultChain
	}
	if len(chain) > len(e.chain) {
		return nil, fmt.Errorf("route: chain of %d policies exceeds %d", len(chain), len(e.chain))
	}
	for i, p := range chain {
		if p == PolicyNone || p >= numPolicies {
			return nil, fmt.Errorf("route: invalid policy %d in chain", p)
		}
		e.chain[i] = p
	}
	e.chainN = len(chain)
	for _, vp := range cfg.VPs {
		e.vpVec[vp.Name] = geo.UnitVec(vp.Loc)
	}
	return e, nil
}

// Answer is one routing decision. Strings are heap-owned snapshot
// strings (never mapped memory), so an Answer stays valid across
// snapshot swaps.
type Answer struct {
	// Client and Service echo the question.
	Client  netsim.Prefix24
	Service netsim.Prefix24
	// Version is the snapshot version the decision read; 0 means the
	// store had no snapshot yet (the front-end answers SERVFAIL).
	Version uint64
	// Anycast reports whether the service prefix is in the map.
	Anycast bool
	// Replica is the index of the chosen instance within the entry, or
	// -1 when no policy produced one. Addr is the replica's synthesized
	// service address: host byte 1+Replica inside the service /24.
	Replica  int
	Replicas int
	Addr     netsim.IP
	// ViaVP, City, CC, Located, Lat, Lon describe the chosen instance.
	ViaVP   string
	City    string
	CC      string
	Located bool
	Lat     float64
	Lon     float64
	// DistKm is the great-circle distance from the located client to
	// the chosen instance (0 when the client could not be located).
	DistKm float64
	ASN    int
}

// Decide routes a client /24 to a replica of the engine's configured
// service, returning the decision and the policy that made it.
func (e *Engine) Decide(client netsim.Prefix24) (Answer, Policy) {
	return e.DecideFor(client, e.service, PolicyNone)
}

// DecideFor routes client to a replica of service. A non-None prefer
// policy is tried before the configured chain (the chain still runs as
// fallback, skipping the preferred policy). The whole call performs no
// heap allocation: it pins the snapshot, walks the entry's instances,
// and unpins before returning.
func (e *Engine) DecideFor(client, service netsim.Prefix24, prefer Policy) (Answer, Policy) {
	ans := Answer{Client: client, Service: service, Replica: -1}
	snap := e.store.AcquirePinned()
	if snap == nil {
		return ans, PolicyNone
	}
	ans.Version = snap.Version()
	entry, ok := snap.LookupPrefix(service)
	if !ok {
		snap.Unpin()
		return ans, PolicyNone
	}
	ans.Anycast = true
	ans.ASN = entry.ASN
	ans.Replicas = entry.Replicas

	cl, located := e.locator.Locate(client)
	var cvec [3]float64
	if located {
		cvec = geo.UnitVec(cl)
	}

	decided := PolicyNone
	best := -1
	if prefer != PolicyNone {
		if best = e.apply(prefer, entry, snap, cvec, located); best >= 0 {
			decided = prefer
		}
	}
	for i := 0; i < e.chainN && best < 0; i++ {
		p := e.chain[i]
		if p == prefer {
			continue
		}
		if best = e.apply(p, entry, snap, cvec, located); best >= 0 {
			decided = p
		}
	}
	if best >= 0 {
		in := &entry.Instances[best]
		ans.Replica = best
		ans.Addr = service.Host(replicaHostByte(best))
		ans.ViaVP = in.ViaVP
		ans.City = in.City
		ans.CC = in.CC
		ans.Located = in.Located
		ans.Lat, ans.Lon = in.Lat, in.Lon
		if located {
			ans.DistKm = geo.VecDistKm(geo.VecDot(cvec, in.UnitVec()))
		}
	}
	snap.Unpin()
	return ans, decided
}

// replicaHostByte maps an instance index to the host byte of its
// synthesized service address, skipping .0.
func replicaHostByte(i int) byte {
	if i >= 254 {
		i = 254
	}
	return byte(i + 1)
}

// apply runs one policy over the entry's instances and returns the
// chosen index, or -1 when the policy abstains. Ties break to the
// lowest instance index, which together with the instances' fixed
// snapshot order makes every decision deterministic.
func (e *Engine) apply(p Policy, entry *store.Entry, snap *store.Snapshot, cvec [3]float64, located bool) int {
	if len(entry.Instances) == 0 {
		return -1
	}
	best, bestDot := -1, -2.0
	switch p {
	case PolicyNearestReplica:
		if !located {
			return -1
		}
		for i := range entry.Instances {
			if d := geo.VecDot(cvec, entry.Instances[i].UnitVec()); d > bestDot {
				best, bestDot = i, d
			}
		}
	case PolicyHealthWeighted:
		if !located {
			return -1
		}
		quarantined := snap.Health().Quarantined
		if len(quarantined) == 0 {
			// A clean campaign demotes nothing; abstain so the chain's
			// answer is attributed to the policy that actually chose.
			return -1
		}
		for i := range entry.Instances {
			in := &entry.Instances[i]
			if containsSorted(quarantined, in.ViaVP) {
				continue
			}
			if d := geo.VecDot(cvec, in.UnitVec()); d > bestDot {
				best, bestDot = i, d
			}
		}
	case PolicyCatchmentAffine:
		if !located {
			return -1
		}
		for i := range entry.Instances {
			vec, ok := e.vpVec[entry.Instances[i].ViaVP]
			if !ok {
				continue
			}
			if d := geo.VecDot(cvec, vec); d > bestDot {
				best, bestDot = i, d
			}
		}
	}
	return best
}

// containsSorted reports whether sorted contains s — a hand-rolled
// binary search: CampaignHealth.Quarantined is sorted and deduplicated
// by construction, and the stdlib's sort.SearchStrings would force the
// closure (and the slice header) to escape.
func containsSorted(sorted []string, s string) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == s
}
