package route

import "anycastmap/internal/netsim"

// Per-worker decision cache. Resolver traffic repeats client /24s
// heavily (a handful of recursive resolvers front most of a service's
// users), so the same (client, service, policy) question arrives over
// and over against the same snapshot version. The full decision —
// locate the client, score every instance, pick a replica — is a pure
// function of that tuple plus the snapshot version, which makes it
// safe to memoize: a direct-mapped cache keyed by the tuple and
// validated against the live version turns the hot path into one hash,
// one compare, and a struct copy, with zero coherence traffic because
// each worker owns its own cache inside its Scratch.
//
// A publish invalidates nothing eagerly: entries are revalidated by
// version on lookup, so the first query per slot after a snapshot swap
// recomputes and every answer still reads from exactly one version
// (the swap-under-load test's mixing invariant holds unchanged).

// decideCacheBits sizes the per-Scratch decision cache: 4096 entries
// (~650 KiB per worker) — big enough that a resolver population in the
// thousands mostly hits, small enough to stay resident per listener.
const decideCacheBits = 12

const decideCacheSize = 1 << decideCacheBits

type decideCacheEntry struct {
	key     uint64
	version uint64
	policy  Policy
	ans     Answer
}

// decideKey packs (client, service, prefer) into a nonzero key: both
// prefixes fit 24 bits and the policy 2, leaving bit 63 as the
// valid marker that distinguishes a real key from an empty slot.
func decideKey(client, service uint32, prefer Policy) uint64 {
	return 1<<63 | uint64(client&0xffffff)<<26 | uint64(service&0xffffff)<<2 | uint64(prefer)
}

// decideSlot maps a key to its direct-mapped slot (Fibonacci hashing:
// sequential client prefixes spread across the table instead of
// clustering in the low bits).
func decideSlot(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> (64 - decideCacheBits)
}

// DecideForCached is DecideFor through the scratch's per-worker
// decision cache. A hit — same client, service and preferred policy
// against the currently published snapshot version — returns the
// memoized answer without pinning, locating, or scoring; a miss runs
// the full DecideFor and caches its result. Answers are byte-identical
// to the uncached path (pinned by TestDecideForCached) and the call
// still performs zero heap allocations.
func (e *Engine) DecideForCached(sc *Scratch, client, service netsim.Prefix24, prefer Policy) (Answer, Policy) {
	key := decideKey(uint32(client), uint32(service), prefer)
	ent := &sc.dcache[decideSlot(key)]
	if ent.key == key {
		// Version gates the hit: Current() is one atomic load, and the
		// version field is immutable after publish, so reading it off
		// the unpinned snapshot is safe even mid-swap.
		if snap := e.store.Current(); snap != nil && snap.Version() == ent.version {
			return ent.ans, ent.policy
		}
	}
	ans, policy := e.DecideFor(client, service, prefer)
	if ans.Version != 0 {
		ent.key = key
		ent.version = ans.Version
		ent.policy = policy
		ent.ans = ans
	}
	return ans, policy
}
