package platform

import (
	"strings"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/geo"
)

func TestPlanetLabSize(t *testing.T) {
	pl := PlanetLab(cities.Default())
	// Real PlanetLab had ~300 active nodes (Sec. 2.2).
	if pl.Len() < 260 || pl.Len() > 340 {
		t.Errorf("PlanetLab has %d VPs, want ~300", pl.Len())
	}
	if pl.Name() != "planetlab" {
		t.Errorf("name = %q", pl.Name())
	}
}

func TestPlanetLabGeography(t *testing.T) {
	pl := PlanetLab(cities.Default())
	byRegion := map[string]int{}
	for _, v := range pl.VPs() {
		switch v.City.CC {
		case "US", "CA":
			byRegion["na"]++
		case "FR", "GB", "DE", "CH", "IT", "ES", "NL", "BE", "SE", "NO", "DK", "FI", "IE", "PL", "CZ", "HU", "GR", "PT", "AT", "SI", "RO", "TR", "IL":
			byRegion["eu"]++
		default:
			byRegion["other"]++
		}
	}
	n := float64(pl.Len())
	if f := float64(byRegion["na"]) / n; f < 0.35 || f > 0.60 {
		t.Errorf("North America fraction = %.2f, want ~0.45 (PlanetLab is US-skewed)", f)
	}
	if f := float64(byRegion["eu"]) / n; f < 0.25 || f > 0.50 {
		t.Errorf("Europe fraction = %.2f, want ~0.35", f)
	}
	if byRegion["other"] == 0 {
		t.Error("PlanetLab should have some non-NA/EU nodes")
	}
}

func TestRIPEBiggerAndBroader(t *testing.T) {
	db := cities.Default()
	pl := PlanetLab(db)
	ripe := RIPEAtlas(db)
	if ripe.Len() <= 2*pl.Len() {
		t.Errorf("RIPE (%d) should be much larger than PlanetLab (%d)", ripe.Len(), pl.Len())
	}
	if len(ripe.Countries()) <= len(pl.Countries()) {
		t.Errorf("RIPE covers %d countries, PlanetLab %d; RIPE should cover more",
			len(ripe.Countries()), len(pl.Countries()))
	}
}

func TestVPsHaveValidPlacement(t *testing.T) {
	db := cities.Default()
	for _, p := range []*Platform{PlanetLab(db), RIPEAtlas(db)} {
		seen := map[int]bool{}
		for _, v := range p.VPs() {
			if seen[v.ID] {
				t.Fatalf("%s: duplicate VP ID %d", p.Name(), v.ID)
			}
			seen[v.ID] = true
			if !v.Loc.Valid() {
				t.Fatalf("%s: VP %v has invalid location", p.Name(), v)
			}
			if d := geo.DistanceKm(v.Loc, v.City.Loc); d > 30 {
				t.Fatalf("%s: VP %v placed %.0f km from its site city", p.Name(), v, d)
			}
			if v.LoadFactor <= 0 {
				t.Fatalf("%s: VP %v has non-positive load factor", p.Name(), v)
			}
			if v.Name == "" {
				t.Fatalf("%s: VP %d has empty name", p.Name(), v.ID)
			}
		}
	}
}

func TestPlanetLabLoadDistribution(t *testing.T) {
	// Fig. 8 calibration: with a 1.83h base census, ~40% of nodes finish
	// within 2h and ~95% within 5h.
	pl := PlanetLab(cities.Default())
	const baseHours = 1.833
	within2, within5 := 0, 0
	maxH := 0.0
	for _, v := range pl.VPs() {
		h := baseHours * v.LoadFactor
		if h <= 2 {
			within2++
		}
		if h <= 5 {
			within5++
		}
		if h > maxH {
			maxH = h
		}
	}
	n := float64(pl.Len())
	if f := float64(within2) / n; f < 0.30 || f > 0.55 {
		t.Errorf("fraction finishing within 2h = %.2f, want ~0.40", f)
	}
	if f := float64(within5) / n; f < 0.90 || f > 0.99 {
		t.Errorf("fraction finishing within 5h = %.2f, want ~0.95", f)
	}
	if maxH < 5 || maxH > 17 {
		t.Errorf("slowest node takes %.1f h, want a heavy tail below ~16h", maxH)
	}
}

func TestSample(t *testing.T) {
	pl := PlanetLab(cities.Default())
	s := pl.Sample(261, 1)
	if len(s) != 261 {
		t.Fatalf("Sample(261) returned %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v.ID] {
			t.Fatal("Sample returned duplicate VP")
		}
		seen[v.ID] = true
	}
	// Deterministic for the same seed.
	s2 := pl.Sample(261, 1)
	for i := range s {
		if s[i].ID != s2[i].ID {
			t.Fatal("Sample not deterministic")
		}
	}
	// Different for a different seed.
	s3 := pl.Sample(261, 2)
	diff := false
	for i := range s {
		if s[i].ID != s3[i].ID {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("samples with different seeds are identical")
	}
	// Requesting more than available returns everything.
	all := pl.Sample(10000, 3)
	if len(all) != pl.Len() {
		t.Errorf("Sample(10000) returned %d, want %d", len(all), pl.Len())
	}
}

func TestPlanetLabDeterministic(t *testing.T) {
	db := cities.Default()
	a, b := PlanetLab(db), PlanetLab(db)
	if a.Len() != b.Len() {
		t.Fatal("sizes differ")
	}
	for i := range a.VPs() {
		if a.VPs()[i] != b.VPs()[i] {
			t.Fatalf("VP %d differs between constructions", i)
		}
	}
}

func TestVPNames(t *testing.T) {
	pl := PlanetLab(cities.Default())
	for _, v := range pl.VPs() {
		if !strings.HasPrefix(v.Name, "planetlab") {
			t.Errorf("unexpected VP name %q", v.Name)
		}
	}
}
