// Package platform models the measurement platforms of the paper: a
// PlanetLab-like platform of ~300 vantage points hosted at academic sites
// (skewed toward North America and Europe), and a larger RIPE-Atlas-like
// platform with broader geographic coverage. The platform choice drives the
// recall of the census (Fig. 5: PlanetLab finds a subset of the replicas
// RIPE finds) and the per-VP completion-time distribution (Fig. 8).
package platform

import (
	"fmt"
	"math"
	"sort"

	"anycastmap/internal/cities"
	"anycastmap/internal/detrand"
	"anycastmap/internal/geo"
)

// VP is a vantage point: a host we control that can send probes.
type VP struct {
	ID   int
	Name string
	City cities.City
	// Loc is the actual host location, jittered a few tens of km around
	// the site city.
	Loc geo.Coord
	// LoadFactor models how slowly this (shared, oversubscribed) host
	// runs relative to an idle one; census completion time scales with
	// it. PlanetLab hosts have a heavy-tailed load distribution
	// (Sec. 3.5: 95% of nodes finish in under 5 hours, stragglers take
	// much longer).
	LoadFactor float64
}

func (v VP) String() string { return fmt.Sprintf("%s@%s", v.Name, v.City) }

// Platform is an immutable set of vantage points.
type Platform struct {
	name string
	vps  []VP
}

// Name returns the platform name ("planetlab" or "ripe").
func (p *Platform) Name() string { return p.name }

// VPs returns all vantage points. The slice must not be modified.
func (p *Platform) VPs() []VP { return p.vps }

// Len returns the number of vantage points.
func (p *Platform) Len() int { return len(p.vps) }

// Sample returns a deterministic pseudo-random subset of n vantage points
// (all of them if n >= Len). Each census run uses a different availability
// sample, like real PlanetLab where the set of live nodes fluctuates
// between 240 and 270 (Fig. 12 legend).
func (p *Platform) Sample(n int, seed uint64) []VP {
	if n >= len(p.vps) {
		out := make([]VP, len(p.vps))
		copy(out, p.vps)
		return out
	}
	idx := make([]int, len(p.vps))
	for i := range idx {
		idx[i] = i
	}
	// Deterministic Fisher-Yates driven by the seed.
	for i := len(idx) - 1; i > 0; i-- {
		j := detrand.Intn(i+1, seed, uint64(i), 0xA11CE)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]VP, n)
	for i := 0; i < n; i++ {
		out[i] = p.vps[idx[i]]
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Countries returns the sorted set of country codes hosting VPs.
func (p *Platform) Countries() []string {
	set := map[string]bool{}
	for _, v := range p.vps {
		set[v.City.CC] = true
	}
	out := make([]string, 0, len(set))
	for cc := range set {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// plSite is one PlanetLab hosting site.
type plSite struct {
	domain string
	city   string
	cc     string
	nodes  int
}

// planetLabSites approximates the real PlanetLab deployment footprint:
// university sites, about half in North America, a dense European cluster,
// and a thinner tail in Asia, Oceania and South America.
var planetLabSites = []plSite{
	// North America.
	{"cs.princeton.edu", "Princeton", "US", 4},
	{"csail.mit.edu", "Cambridge", "US", 4},
	{"cs.berkeley.edu", "Berkeley", "US", 4},
	{"cs.washington.edu", "Seattle", "US", 4},
	{"cs.cornell.edu", "Ithaca", "US", 3},
	{"cs.cmu.edu", "Pittsburgh", "US", 3},
	{"cs.ucla.edu", "Los Angeles", "US", 3},
	{"cs.ucsd.edu", "San Diego", "US", 3},
	{"cs.stanford.edu", "Palo Alto", "US", 3},
	{"cs.uchicago.edu", "Chicago", "US", 3},
	{"cs.utexas.edu", "Austin", "US", 3},
	{"cs.gatech.edu", "Atlanta", "US", 3},
	{"cs.umd.edu", "Washington", "US", 3},
	{"cs.colorado.edu", "Boulder", "US", 3},
	{"cs.uiuc.edu", "Champaign", "US", 3},
	{"eecs.umich.edu", "Ann Arbor", "US", 3},
	{"cs.wisc.edu", "Madison", "US", 3},
	{"cs.duke.edu", "Durham", "US", 3},
	{"cs.unc.edu", "Raleigh", "US", 3},
	{"cs.purdue.edu", "Indianapolis", "US", 3},
	{"cs.umn.edu", "Minneapolis", "US", 3},
	{"cs.arizona.edu", "Tucson", "US", 3},
	{"cs.utah.edu", "Salt Lake City", "US", 3},
	{"cs.rice.edu", "Houston", "US", 3},
	{"cs.columbia.edu", "New York", "US", 3},
	{"cs.nyu.edu", "New York", "US", 3},
	{"cs.bu.edu", "Boston", "US", 3},
	{"cs.northwestern.edu", "Chicago", "US", 3},
	{"cs.usc.edu", "Los Angeles", "US", 3},
	{"cs.uci.edu", "Irvine", "US", 3},
	{"cs.ucsb.edu", "Santa Barbara", "US", 3},
	{"cs.rochester.edu", "Rochester", "US", 3},
	{"cse.osu.edu", "Columbus", "US", 3},
	{"cs.pitt.edu", "Pittsburgh", "US", 3},
	{"cs.vt.edu", "Richmond", "US", 3},
	{"cs.ufl.edu", "Gainesville", "US", 3},
	{"cs.fiu.edu", "Miami", "US", 3},
	{"cs.uoregon.edu", "Eugene", "US", 3},
	{"cs.byu.edu", "Salt Lake City", "US", 3},
	{"cs.ku.edu", "Lawrence", "US", 3},
	{"cs.ou.edu", "Norman", "US", 3},
	{"cs.missouri.edu", "Columbia", "US", 3},
	{"cs.uiowa.edu", "Iowa City", "US", 3},
	{"cs.unl.edu", "Lincoln", "US", 3},
	{"cs.toronto.edu", "Toronto", "CA", 3},
	{"cs.ubc.ca", "Vancouver", "CA", 3},
	{"cs.mcgill.ca", "Montreal", "CA", 3},
	{"cs.uwaterloo.ca", "Hamilton", "CA", 3},
	{"cs.ualberta.ca", "Edmonton", "CA", 3},
	{"cs.carleton.ca", "Ottawa", "CA", 3},

	// Europe.
	{"lip6.fr", "Paris", "FR", 4},
	{"inria.fr", "Grenoble", "FR", 3},
	{"irisa.fr", "Rennes", "FR", 3},
	{"eurecom.fr", "Nice", "FR", 3},
	{"cs.ucl.ac.uk", "London", "GB", 3},
	{"cl.cam.ac.uk", "Cambridge", "GB", 3},
	{"inf.ed.ac.uk", "Edinburgh", "GB", 3},
	{"cs.ox.ac.uk", "Oxford", "GB", 3},
	{"lancs.ac.uk", "Manchester", "GB", 3},
	{"tu-berlin.de", "Berlin", "DE", 3},
	{"tum.de", "Munich", "DE", 3},
	{"uni-kl.de", "Frankfurt", "DE", 2},
	{"rwth-aachen.de", "Aachen", "DE", 2},
	{"uni-goettingen.de", "Hanover", "DE", 2},
	{"ethz.ch", "Zurich", "CH", 3},
	{"epfl.ch", "Lausanne", "CH", 3},
	{"uniroma1.it", "Rome", "IT", 2},
	{"polimi.it", "Milan", "IT", 2},
	{"unipi.it", "Pisa", "IT", 2},
	{"unina.it", "Naples", "IT", 2},
	{"upc.edu", "Barcelona", "ES", 2},
	{"uc3m.es", "Madrid", "ES", 2},
	{"tudelft.nl", "The Hague", "NL", 2},
	{"vu.nl", "Amsterdam", "NL", 3},
	{"ugent.be", "Ghent", "BE", 2},
	{"ucl.be", "Brussels", "BE", 2},
	{"kth.se", "Stockholm", "SE", 3},
	{"sics.se", "Uppsala", "SE", 2},
	{"uio.no", "Oslo", "NO", 2},
	{"dtu.dk", "Copenhagen", "DK", 2},
	{"aalto.fi", "Helsinki", "FI", 2},
	{"ucd.ie", "Dublin", "IE", 2},
	{"cyfronet.pl", "Krakow", "PL", 2},
	{"pw.edu.pl", "Warsaw", "PL", 2},
	{"cesnet.cz", "Prague", "CZ", 2},
	{"elte.hu", "Budapest", "HU", 2},
	{"upatras.gr", "Athens", "GR", 2},
	{"fct.unl.pt", "Lisbon", "PT", 2},
	{"tuwien.ac.at", "Vienna", "AT", 2},
	{"uni-lj.si", "Ljubljana", "SI", 2},
	{"pub.ro", "Bucharest", "RO", 2},
	{"bilkent.edu.tr", "Ankara", "TR", 2},
	{"koc.edu.tr", "Istanbul", "TR", 2},
	{"technion.ac.il", "Haifa", "IL", 2},
	{"huji.ac.il", "Jerusalem", "IL", 2},

	// Asia and Oceania.
	{"titech.ac.jp", "Tokyo", "JP", 3},
	{"osaka-u.ac.jp", "Osaka", "JP", 2},
	{"kaist.ac.kr", "Daejeon", "KR", 2},
	{"snu.ac.kr", "Seoul", "KR", 2},
	{"tsinghua.edu.cn", "Beijing", "CN", 2},
	{"sjtu.edu.cn", "Shanghai", "CN", 2},
	{"cuhk.edu.hk", "Hong Kong", "HK", 2},
	{"ntu.edu.tw", "Taipei", "TW", 2},
	{"nus.edu.sg", "Singapore", "SG", 3},
	{"iitb.ac.in", "Mumbai", "IN", 2},
	{"iitd.ac.in", "Delhi", "IN", 2},
	{"unimelb.edu.au", "Melbourne", "AU", 2},
	{"usyd.edu.au", "Sydney", "AU", 2},
	{"auckland.ac.nz", "Auckland", "NZ", 2},

	// South America and Africa.
	{"usp.br", "Sao Paulo", "BR", 2},
	{"ufmg.br", "Belo Horizonte", "BR", 2},
	{"unlp.edu.ar", "Buenos Aires", "AR", 2},
	{"uchile.cl", "Santiago", "CL", 2},
	{"uct.ac.za", "Cape Town", "ZA", 2},
	{"unam.mx", "Mexico City", "MX", 2},
}

// PlanetLab builds the PlanetLab-like platform over the given city
// database. Host locations and load factors are deterministic.
func PlanetLab(db *cities.DB) *Platform {
	var vps []VP
	id := 0
	for _, s := range planetLabSites {
		city := db.MustByName(s.city, s.cc)
		for n := 1; n <= s.nodes; n++ {
			vps = append(vps, makeVP(id, fmt.Sprintf("planetlab%d.%s", n, s.domain), city, plLoadFactor(id)))
			id++
		}
	}
	return &Platform{name: "planetlab", vps: vps}
}

// plLoadFactor draws the heavy-tailed PlanetLab load factor for a node.
// Calibrated against Fig. 8: with a ~1.8 h base census, ~40% of nodes
// finish within 2 h, 95% within 5 h, and the slowest take up to ~16 h.
func plLoadFactor(id int) float64 {
	q := detrand.UnitFloat(uint64(id), 0x10AD)
	switch {
	case q <= 0.40:
		// Fast nodes: barely loaded.
		return 0.55 + 0.54*(q/0.40)
	case q <= 0.95:
		// The bulk: moderately loaded, stretching to ~2.7x.
		f := (q - 0.40) / 0.55
		return 1.09 + 1.64*math.Pow(f, 1.5)
	default:
		// Stragglers.
		f := (q - 0.95) / 0.05
		return 2.73 + 5.9*f*f
	}
}

// RIPEAtlas builds the RIPE-Atlas-like platform: broader and more uniform
// coverage, roughly nVPs probes hosted in the most populated cities of
// every country in the database. The default size is ~1000.
func RIPEAtlas(db *cities.DB) *Platform {
	const perCity = 4
	// Take every country's three largest cities, then fill with the
	// largest remaining cities overall.
	chosen := make(map[string]bool)
	var sites []cities.City
	perCC := make(map[string]int)
	for _, c := range db.All() { // decreasing population
		if perCC[c.CC] < 3 {
			perCC[c.CC]++
			chosen[c.Key()] = true
			sites = append(sites, c)
		}
	}
	for _, c := range db.All() {
		if len(sites) >= 250 {
			break
		}
		if !chosen[c.Key()] {
			chosen[c.Key()] = true
			sites = append(sites, c)
		}
	}
	var vps []VP
	id := 0
	for _, city := range sites {
		for n := 0; n < perCity; n++ {
			lf := 0.9 + 0.4*detrand.UnitFloat(uint64(id), 0x41A5)
			vps = append(vps, makeVP(id, fmt.Sprintf("ripe-probe-%04d", id), city, lf))
			id++
		}
	}
	return &Platform{name: "ripe", vps: vps}
}

// makeVP places a VP a deterministic few kilometers away from its site city
// center.
func makeVP(id int, name string, city cities.City, load float64) VP {
	bearing := 360 * detrand.UnitFloat(uint64(id), 0xBEA2)
	dist := 25 * detrand.UnitFloat(uint64(id), 0xD157)
	return VP{
		ID:         id,
		Name:       name,
		City:       city,
		Loc:        geo.Destination(city.Loc, bearing, dist),
		LoadFactor: load,
	}
}
