// Package asdb is the autonomous-system registry behind the census
// characterization. It plays the role of WHOIS, the CAIDA AS rank, and the
// Alexa top-100k cross-check of the paper (Secs. 4.1-4.2): every anycast
// deployment belongs to an AS with a name, a business category, optional
// CAIDA/Alexa standing, and a footprint (number of anycast /24s, mean
// geographic replicas per /24).
//
// The top-100 table is transcribed from Fig. 9 of the paper; the remaining
// 246 ASes of the census (Fig. 10: 346 ASes in total) are synthesized
// deterministically with the footprint distribution of Fig. 13.
package asdb

import (
	"fmt"
	"math/rand"
	"sort"
)

// Category is the business category of an AS (the top x-axis labels of
// Fig. 9). Categories are informal; for ASes with multiple services only
// the most prominent is recorded.
type Category int

const (
	CatUnknown Category = iota
	CatDNS
	CatCDN
	CatCloud
	CatISP
	CatISPTier1
	CatSecurity
	CatSocialNetwork
	CatWebPortal
	CatBlogging
	CatOnlineMarketing
	CatWebAnalytics
	CatADTech
	CatCloudMessaging
	CatVideoConferencing
	CatTelecomVendor
	CatBackbone
)

var categoryNames = map[Category]string{
	CatUnknown:           "unknown",
	CatDNS:               "DNS",
	CatCDN:               "CDN",
	CatCloud:             "Cloud",
	CatISP:               "ISP",
	CatISPTier1:          "ISP-tier1",
	CatSecurity:          "Security",
	CatSocialNetwork:     "Social Network",
	CatWebPortal:         "Web Portal",
	CatBlogging:          "Blogging",
	CatOnlineMarketing:   "Online Marketing",
	CatWebAnalytics:      "Web Analytics",
	CatADTech:            "AD technology",
	CatCloudMessaging:    "Cloud messaging",
	CatVideoConferencing: "Video Conferencing",
	CatTelecomVendor:     "Telecom Vendor",
	CatBackbone:          "Backbone Network",
}

func (c Category) String() string {
	if s, ok := categoryNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Coarse buckets the fine-grained category into the eight classes of the
// Fig. 11 breakdown (DNS, CDN, Cloud, ISP, Security, Social, unknown,
// Other).
func (c Category) Coarse() string {
	switch c {
	case CatDNS:
		return "DNS"
	case CatCDN:
		return "CDN"
	case CatCloud, CatCloudMessaging:
		return "Cloud"
	case CatISP, CatISPTier1, CatBackbone:
		return "ISP"
	case CatSecurity:
		return "Security"
	case CatSocialNetwork:
		return "Social"
	case CatUnknown:
		return "Unknown"
	default:
		return "Other"
	}
}

// CoarseCategories lists the Fig. 11 buckets in display order.
var CoarseCategories = []string{"DNS", "CDN", "Cloud", "ISP", "Security", "Social", "Unknown", "Other"}

// AS describes one autonomous system of the census.
type AS struct {
	ASN      int
	Name     string // WHOIS-style name, as printed in Fig. 9
	CC       string
	Category Category

	// CAIDARank is the CAIDA AS-rank standing (1 = largest customer
	// cone); 0 means outside any rank we track. 8 ASes of the census are
	// in the CAIDA top-100 (Fig. 10).
	CAIDARank int

	// AlexaSites is the number of Alexa top-100k websites served from
	// this AS's anycast prefixes (Sec. 4.1: 15 ASes host such sites).
	AlexaSites int

	// AlexaIP24s is the number of the AS's anycast /24s that actually
	// host those websites (Fig. 10: 242 /24s across the 15 ASes; a site
	// can resolve to several /24s and a /24 can host several sites).
	AlexaIP24s int

	// IP24s is the number of anycast /24 prefixes operated by the AS
	// (middle bar plot of Fig. 9; Fig. 13 distribution).
	IP24s int

	// PaperMeanReplicas is the mean number of geographically distinct
	// replicas per /24 the paper measured from PlanetLab (bottom bar
	// plot of Fig. 9). The synthetic world inflates this by the
	// deployment-inflation factor to obtain the true deployment size,
	// since the paper's figures are a conservative lower bound.
	PaperMeanReplicas int

	// Top100 marks membership in the paper's top-100 list (ASes with at
	// least 5 detected replicas).
	Top100 bool
}

func (a AS) String() string { return fmt.Sprintf("AS%d(%s)", a.ASN, a.Name) }

// top100 transcribes Fig. 9: the 100 ASes with at least 5 replicas, ordered
// by decreasing geographical footprint. IP24s values that the paper states
// explicitly (Fig. 13 and Sec. 4.2) are hardcoded; zero values are filled
// deterministically by Default so that the total matches Fig. 10 (897 /24s
// across the top-100).
var top100 = []AS{
	{ASN: 13335, Name: "CLOUDFLARENET,US", CC: "US", Category: CatCDN, AlexaSites: 188, AlexaIP24s: 196, IP24s: 328, PaperMeanReplicas: 33},
	{ASN: 1280, Name: "ISC-AS,US", CC: "US", Category: CatDNS, IP24s: 13, PaperMeanReplicas: 23},
	{ASN: 6939, Name: "HURRICANE,US", CC: "US", Category: CatISP, CAIDARank: 19, IP24s: 4, PaperMeanReplicas: 21},
	{ASN: 36408, Name: "CDNETWORKSUS,US", CC: "US", Category: CatCDN, PaperMeanReplicas: 20},
	{ASN: 32934, Name: "FACEBOOK,US", CC: "US", Category: CatSocialNetwork, PaperMeanReplicas: 19},
	{ASN: 42909, Name: "COMMUNITYDNS,GB", CC: "GB", Category: CatDNS, PaperMeanReplicas: 19},
	{ASN: 36617, Name: "XGTLD,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 18},
	{ASN: 20144, Name: "L-ROOT,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 18},
	{ASN: 8075, Name: "MICROSOFT,US", CC: "US", Category: CatCloud, AlexaSites: 3, AlexaIP24s: 1, IP24s: 15, PaperMeanReplicas: 21},
	{ASN: 29216, Name: "I-ROOT,SE", CC: "SE", Category: CatDNS, PaperMeanReplicas: 17},
	{ASN: 7342, Name: "VERISIGN-INC,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 17},
	{ASN: 22822, Name: "LLNW,US", CC: "US", Category: CatCDN, PaperMeanReplicas: 16},
	{ASN: 33005, Name: "ARYAKA-ARIN,US", CC: "US", Category: CatCloud, PaperMeanReplicas: 16},
	{ASN: 714, Name: "APPLE-ENGINEERING,US", CC: "US", Category: CatCDN, IP24s: 6, PaperMeanReplicas: 17},
	{ASN: 30670, Name: "CEDEXIS,US", CC: "US", Category: CatSecurity, PaperMeanReplicas: 15},
	{ASN: 33438, Name: "HIGHWINDS3,US", CC: "US", Category: CatCDN, AlexaSites: 1, AlexaIP24s: 1, PaperMeanReplicas: 15},
	{ASN: 8674, Name: "NETNOD-IX,SE", CC: "SE", Category: CatDNS, PaperMeanReplicas: 14},
	{ASN: 36692, Name: "OPENDNS,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 16},
	{ASN: 42, Name: "WOODYNET-1,US", CC: "US", Category: CatDNS, IP24s: 14, PaperMeanReplicas: 14},
	{ASN: 41146, Name: "LGTLD,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 13},
	{ASN: 20634, Name: "LIECHTENSTEIN1,LI", CC: "LI", Category: CatUnknown, PaperMeanReplicas: 13},
	{ASN: 54113, Name: "FASTLY,US", CC: "US", Category: CatCDN, AlexaSites: 5, AlexaIP24s: 5, PaperMeanReplicas: 13},
	{ASN: 30081, Name: "CACHENETWORKS,US", CC: "US", Category: CatCDN, AlexaSites: 1, AlexaIP24s: 1, PaperMeanReplicas: 12},
	{ASN: 33047, Name: "INSTART,US", CC: "US", Category: CatCDN, AlexaSites: 1, AlexaIP24s: 1, PaperMeanReplicas: 12},
	{ASN: 62597, Name: "DNSCAST-AS,US", CC: "US", Category: CatDNS, IP24s: 15, PaperMeanReplicas: 12},
	{ASN: 15169, Name: "GOOGLE,US", CC: "US", Category: CatCloud, AlexaSites: 11, AlexaIP24s: 11, IP24s: 102, PaperMeanReplicas: 10},
	{ASN: 14153, Name: "EDGECAST-IR,US", CC: "US", Category: CatCDN, PaperMeanReplicas: 11},
	{ASN: 27, Name: "UMDNET,US", CC: "US", Category: CatUnknown, PaperMeanReplicas: 11},
	{ASN: 33517, Name: "DYNDNS,US", CC: "US", Category: CatDNS, IP24s: 10, PaperMeanReplicas: 11},
	{ASN: 62597 + 9000, Name: "NSONE,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 10},
	{ASN: 4249, Name: "EASYLINK4,US", CC: "US", Category: CatCloudMessaging, PaperMeanReplicas: 10},
	{ASN: 24018, Name: "YAHOO-AN2,US", CC: "US", Category: CatWebPortal, AlexaSites: 1, AlexaIP24s: 1, PaperMeanReplicas: 10},
	{ASN: 12008, Name: "ULTRADNS,US", CC: "US", Category: CatDNS, IP24s: 11, PaperMeanReplicas: 10},
	{ASN: 16276, Name: "OVH,FR", CC: "FR", Category: CatCloud, IP24s: 10, PaperMeanReplicas: 9},
	{ASN: 20634 + 1, Name: "LIECHTENSTEIN2,LI", CC: "LI", Category: CatUnknown, PaperMeanReplicas: 9},
	{ASN: 12041, Name: "AS-AFILIAS1,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 9},
	{ASN: 2635, Name: "AUTOMATTIC,US", CC: "US", Category: CatBlogging, AlexaSites: 1, AlexaIP24s: 1, IP24s: 10, PaperMeanReplicas: 9},
	{ASN: 3257, Name: "TINET-BACKBONE,DE", CC: "DE", Category: CatISPTier1, CAIDARank: 16, IP24s: 3, PaperMeanReplicas: 9},
	{ASN: 6461, Name: "ABOVENET-CUSTOMER,US", CC: "US", Category: CatISP, CAIDARank: 122, PaperMeanReplicas: 9},
	{ASN: 16509, Name: "AMAZON-02,US", CC: "US", Category: CatCloud, AlexaSites: 2, AlexaIP24s: 1, IP24s: 10, PaperMeanReplicas: 8},
	{ASN: 1273, Name: "CW,GB", CC: "GB", Category: CatISP, CAIDARank: 137, PaperMeanReplicas: 8},
	{ASN: 3356, Name: "LEVEL3,US", CC: "US", Category: CatISPTier1, CAIDARank: 1, IP24s: 2, PaperMeanReplicas: 8},
	{ASN: 15133, Name: "EDGECAST,US", CC: "US", Category: CatCDN, AlexaSites: 10, AlexaIP24s: 10, IP24s: 37, PaperMeanReplicas: 12},
	{ASN: 13414, Name: "TWITTER-NETWORK,US", CC: "US", Category: CatSocialNetwork, IP24s: 3, PaperMeanReplicas: 8},
	{ASN: 19551, Name: "INCAPSULA,US", CC: "US", Category: CatCDN, AlexaSites: 1, AlexaIP24s: 1, PaperMeanReplicas: 8},
	{ASN: 36619, Name: "AGTLD,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 8},
	{ASN: 18059, Name: "AUSREGISTRY-1,AU", CC: "AU", Category: CatDNS, PaperMeanReplicas: 8},
	{ASN: 29454, Name: "CENTRALNIC-A1,GB", CC: "GB", Category: CatDNS, PaperMeanReplicas: 8},
	{ASN: 174, Name: "COGENT-2149,US", CC: "US", Category: CatISP, CAIDARank: 2, IP24s: 2, PaperMeanReplicas: 7},
	{ASN: 36620, Name: "HGTLD,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 7},
	{ASN: 33439, Name: "HIGHWINDS4,US", CC: "US", Category: CatCDN, PaperMeanReplicas: 7},
	{ASN: 25152, Name: "K-ROOT-SERVER,NL", CC: "NL", Category: CatDNS, PaperMeanReplicas: 7},
	{ASN: 47786, Name: "NETRIPLEX01,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 7},
	{ASN: 15224, Name: "OMNITURE,US", CC: "US", Category: CatOnlineMarketing, PaperMeanReplicas: 7},
	{ASN: 36351, Name: "SOFTLAYER,US", CC: "US", Category: CatCloud, PaperMeanReplicas: 7},
	{ASN: 20446, Name: "WANGSU-US,US", CC: "US", Category: CatCDN, PaperMeanReplicas: 7},
	{ASN: 24019, Name: "YAHOO-FC,US", CC: "US", Category: CatWebPortal, PaperMeanReplicas: 7},
	{ASN: 40009, Name: "BITGRAVITY,US", CC: "US", Category: CatCDN, AlexaSites: 1, AlexaIP24s: 1, IP24s: 12, PaperMeanReplicas: 7},
	{ASN: 11537, Name: "ABILENE,US", CC: "US", Category: CatBackbone, PaperMeanReplicas: 6},
	{ASN: 62713, Name: "ADVAN-CAST,US", CC: "US", Category: CatUnknown, PaperMeanReplicas: 6},
	{ASN: 39570, Name: "ASATTLD,SE", CC: "SE", Category: CatDNS, PaperMeanReplicas: 6},
	{ASN: 8100, Name: "AS-QUADRANET,US", CC: "US", Category: CatCloud, PaperMeanReplicas: 6},
	{ASN: 6453, Name: "AS6453,US", CC: "US", Category: CatISPTier1, CAIDARank: 6, IP24s: 2, PaperMeanReplicas: 6},
	{ASN: 2686, Name: "ATT,EU", CC: "GB", Category: CatISP, CAIDARank: 24, IP24s: 2, PaperMeanReplicas: 6},
	{ASN: 29455, Name: "CENTRALNIC-A2,GB", CC: "GB", Category: CatDNS, PaperMeanReplicas: 6},
	{ASN: 209, Name: "CENTURYLINK-QWEST,US", CC: "US", Category: CatISPTier1, CAIDARank: 11, IP24s: 2, PaperMeanReplicas: 6},
	{ASN: 38719, Name: "CONEXIM-AS-AP,AU", CC: "AU", Category: CatCloud, PaperMeanReplicas: 6},
	{ASN: 36621, Name: "EGTLD,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 6},
	{ASN: 36622, Name: "KGTLD,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 6},
	{ASN: 44654, Name: "MNS-AS,NO", CC: "NO", Category: CatVideoConferencing, PaperMeanReplicas: 6},
	{ASN: 1921, Name: "NICAT,AT", CC: "AT", Category: CatDNS, PaperMeanReplicas: 6},
	{ASN: 64512 - 2, Name: "VITAL-DNS,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 6},
	{ASN: 64512 - 3, Name: "WHS-ANYCAST,US", CC: "US", Category: CatSecurity, PaperMeanReplicas: 6},
	{ASN: 36623, Name: "ZGTLD,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 6},
	{ASN: 14744, Name: "INTERNAP-BLK,US", CC: "US", Category: CatCloud, PaperMeanReplicas: 5},
	{ASN: 14743, Name: "NETAPP-ANYCAST,US", CC: "US", Category: CatWebAnalytics, PaperMeanReplicas: 5},
	{ASN: 1239, Name: "SPRINTLINK,US", CC: "US", Category: CatISPTier1, CAIDARank: 13, IP24s: 2, PaperMeanReplicas: 5},
	{ASN: 18060, Name: "AUSREGISTRY-2,AU", CC: "AU", Category: CatDNS, PaperMeanReplicas: 5},
	{ASN: 210, Name: "CENTURYLINK-LEGACY,US", CC: "US", Category: CatISP, PaperMeanReplicas: 5},
	{ASN: 64512 - 4, Name: "DNSIMPLE,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 5},
	{ASN: 33518, Name: "DYN-HC,US", CC: "US", Category: CatDNS, PaperMeanReplicas: 5},
	{ASN: 4250, Name: "EASYLINK2,US", CC: "US", Category: CatCloudMessaging, PaperMeanReplicas: 5},
	{ASN: 62714, Name: "EDNS,CA", CC: "CA", Category: CatDNS, PaperMeanReplicas: 5},
	{ASN: 62715, Name: "ESGOB-ANYCAST,ES", CC: "ES", Category: CatDNS, PaperMeanReplicas: 5},
	{ASN: 12824, Name: "HOMEPL-AS,PL", CC: "PL", Category: CatCloud, PaperMeanReplicas: 5},
	{ASN: 14413, Name: "LINKEDIN,US", CC: "US", Category: CatSocialNetwork, AlexaSites: 1, AlexaIP24s: 1, IP24s: 1, PaperMeanReplicas: 5},
	{ASN: 18608, Name: "MASERGY,US", CC: "US", Category: CatCloud, PaperMeanReplicas: 5},
	{ASN: 31377, Name: "MEDIAMATH-INC,US", CC: "US", Category: CatADTech, PaperMeanReplicas: 5},
	{ASN: 43531, Name: "MII-2,GB", CC: "GB", Category: CatCDN, PaperMeanReplicas: 5},
	{ASN: 43532, Name: "MII-XPC,US", CC: "US", Category: CatCDN, PaperMeanReplicas: 5},
	{ASN: 13768, Name: "PEER1,US", CC: "US", Category: CatCloud, PaperMeanReplicas: 5},
	{ASN: 48284, Name: "PHH-AS,DE", CC: "DE", Category: CatCDN, PaperMeanReplicas: 5},
	{ASN: 62716, Name: "PRETECS,CA", CC: "CA", Category: CatCDN, PaperMeanReplicas: 5},
	{ASN: 32787, Name: "PROLEXIC,US", CC: "US", Category: CatSecurity, AlexaSites: 10, AlexaIP24s: 10, IP24s: 21, PaperMeanReplicas: 8},
	{ASN: 36281, Name: "QUANTCAST,US", CC: "US", Category: CatWebAnalytics, PaperMeanReplicas: 5},
	{ASN: 18705, Name: "RIMBLACKBERRY,CA", CC: "CA", Category: CatTelecomVendor, PaperMeanReplicas: 5},
	{ASN: 39392, Name: "SUPERNETWORK,CZ", CC: "CZ", Category: CatCloud, PaperMeanReplicas: 5},
	{ASN: 62717, Name: "UNOVA-1,CA", CC: "CA", Category: CatDNS, PaperMeanReplicas: 5},
	{ASN: 39743, Name: "VOXILITY,RO", CC: "RO", Category: CatCloud, PaperMeanReplicas: 5},
	{ASN: 62718, Name: "ZVONKOVA-AS,RU", CC: "RU", Category: CatUnknown, PaperMeanReplicas: 5},
}

// Census-wide totals from Fig. 10 of the paper.
const (
	// TotalASes is the number of ASes with any detected anycast /24.
	TotalASes = 346
	// TotalIP24s is the number of anycast /24s across all ASes.
	TotalIP24s = 1696
	// Top100IP24s is the number of anycast /24s across the top-100 ASes
	// (those with at least 5 replicas).
	Top100IP24s = 897
)

// Registry is an immutable AS database.
type Registry struct {
	list  []AS
	byASN map[int]int
}

// Default builds the census AS registry: the transcribed top-100 plus a
// deterministic synthetic tail of 246 ASes, with /24 footprints matching the
// paper's totals exactly (1,696 /24s overall, 897 in the top-100).
func Default() *Registry {
	rng := rand.New(rand.NewSource(2015)) // deterministic: same registry every run

	list := make([]AS, len(top100))
	copy(list, top100)

	// Fill unspecified top-100 /24 footprints so the group sums to 897.
	explicit := 0
	var autos []int
	for i := range list {
		list[i].Top100 = true
		if list[i].IP24s == 0 {
			autos = append(autos, i)
		} else {
			explicit += list[i].IP24s
		}
	}
	remaining := Top100IP24s - explicit
	// Roughly half of all ASes have exactly one /24 (Fig. 13); the rest of
	// the budget is spread with a skewed distribution, uncorrelated with
	// the replica footprint (Sec. 4.2 reports a Pearson of only 0.35).
	base := make([]int, len(autos))
	for i := range base {
		base[i] = 1
	}
	remaining -= len(autos)
	for remaining > 0 {
		i := rng.Intn(len(autos))
		// Skewed increments: mostly +1, occasionally a burst.
		inc := 1
		if rng.Float64() < 0.15 {
			inc = 2 + rng.Intn(4)
		}
		if inc > remaining {
			inc = remaining
		}
		// Keep auto-filled footprints below the named large deployments.
		if base[i]+inc > 16 {
			continue
		}
		base[i] += inc
		remaining -= inc
	}
	for k, i := range autos {
		list[i].IP24s = base[k]
	}

	// Synthesize the 246-AS tail: deployments with fewer than 5 detected
	// replicas (2-4), totalling 1696-897=799 /24s.
	tail := TotalASes - len(top100)
	tailBudget := TotalIP24s - Top100IP24s
	ccs := []string{"US", "DE", "GB", "FR", "NL", "JP", "BR", "AU", "CA", "SE", "IT", "ES", "PL", "RU", "IN", "SG", "ZA", "KR", "CH", "AT"}
	cats := []Category{CatDNS, CatDNS, CatDNS, CatCloud, CatCloud, CatCDN, CatISP, CatUnknown, CatUnknown, CatSecurity}
	// Half of the tail has exactly one /24.
	counts := make([]int, tail)
	ones := tail / 2
	for i := 0; i < ones; i++ {
		counts[i] = 1
	}
	left := tailBudget - ones
	for i := ones; i < tail; i++ {
		counts[i] = 2
		left -= 2
	}
	for left > 0 {
		i := ones + rng.Intn(tail-ones)
		if counts[i] >= 14 {
			continue
		}
		counts[i]++
		left--
	}
	rng.Shuffle(tail, func(i, j int) { counts[i], counts[j] = counts[j], counts[i] })
	for i := 0; i < tail; i++ {
		list = append(list, AS{
			ASN:               64512 + i,
			Name:              synthName(rng, i) + "," + ccs[i%len(ccs)],
			CC:                ccs[i%len(ccs)],
			Category:          cats[rng.Intn(len(cats))],
			IP24s:             counts[i],
			PaperMeanReplicas: 2 + rng.Intn(2), // 2..3: well below the top-100 cut
		})
	}

	byASN := make(map[int]int, len(list))
	for i, a := range list {
		if _, dup := byASN[a.ASN]; dup {
			panic(fmt.Sprintf("asdb: duplicate ASN %d", a.ASN))
		}
		byASN[a.ASN] = i
	}
	return &Registry{list: list, byASN: byASN}
}

var synthA = []string{"NORTH", "BLUE", "OPEN", "FAST", "EDGE", "NET", "GLOBAL", "PRIME", "CORE", "ZEN", "APEX", "NOVA", "TERRA", "HYPER", "QUAD"}
var synthB = []string{"CAST", "DNS", "LINK", "WAVE", "GRID", "NODE", "PATH", "ROUTE", "HOST", "CLOUD", "TELECOM", "NETWORKS", "IX", "SYS", "DATA"}

// synthName produces a deterministic WHOIS-style name for a tail AS.
func synthName(rng *rand.Rand, i int) string {
	return fmt.Sprintf("%s%s-%02d", synthA[rng.Intn(len(synthA))], synthB[rng.Intn(len(synthB))], i%100)
}

// All returns every AS, top-100 first in Fig. 9 order. The slice must not be
// modified.
func (r *Registry) All() []AS { return r.list }

// Len returns the number of ASes.
func (r *Registry) Len() int { return len(r.list) }

// Top100 returns the paper's top-100 list in Fig. 9 order (decreasing
// geographical footprint).
func (r *Registry) Top100() []AS { return r.list[:len(top100)] }

// ByASN looks up an AS by number.
func (r *Registry) ByASN(asn int) (AS, bool) {
	i, ok := r.byASN[asn]
	if !ok {
		return AS{}, false
	}
	return r.list[i], true
}

// ByName looks up an AS by its WHOIS-style name.
func (r *Registry) ByName(name string) (AS, bool) {
	for _, a := range r.list {
		if a.Name == name {
			return a, true
		}
	}
	return AS{}, false
}

// MustByName is ByName that panics on a miss; used when wiring the paper's
// named deployments, where absence is a programming error.
func (r *Registry) MustByName(name string) AS {
	a, ok := r.ByName(name)
	if !ok {
		panic("asdb: unknown AS " + name)
	}
	return a
}

// TotalFootprint returns the sum of anycast /24 counts over all ASes.
func (r *Registry) TotalFootprint() int {
	n := 0
	for _, a := range r.list {
		n += a.IP24s
	}
	return n
}

// CAIDATop100 returns the census ASes that are in the CAIDA top-100 rank.
func (r *Registry) CAIDATop100() []AS {
	var out []AS
	for _, a := range r.list {
		if a.CAIDARank > 0 && a.CAIDARank <= 100 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CAIDARank < out[j].CAIDARank })
	return out
}

// AlexaHosts returns the census ASes serving at least one Alexa top-100k
// website over anycast.
func (r *Registry) AlexaHosts() []AS {
	var out []AS
	for _, a := range r.list {
		if a.AlexaSites > 0 {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AlexaSites > out[j].AlexaSites })
	return out
}

// CategoryBreakdown returns, for the given AS set, the fraction of ASes per
// coarse category (Fig. 11).
func CategoryBreakdown(ases []AS) map[string]float64 {
	if len(ases) == 0 {
		return nil
	}
	counts := make(map[string]int)
	for _, a := range ases {
		counts[a.Category.Coarse()]++
	}
	out := make(map[string]float64, len(counts))
	for k, v := range counts {
		out[k] = float64(v) / float64(len(ases))
	}
	return out
}
