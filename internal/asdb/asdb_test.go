package asdb

import (
	"testing"
)

func TestTop100HasExactlyHundredEntries(t *testing.T) {
	if len(top100) != 100 {
		t.Fatalf("top100 table has %d entries, want 100", len(top100))
	}
}

func TestDefaultTotals(t *testing.T) {
	r := Default()
	if r.Len() != TotalASes {
		t.Errorf("registry has %d ASes, want %d", r.Len(), TotalASes)
	}
	if got := r.TotalFootprint(); got != TotalIP24s {
		t.Errorf("total /24 footprint = %d, want %d", got, TotalIP24s)
	}
	top := 0
	for _, a := range r.Top100() {
		if !a.Top100 {
			t.Errorf("%v in Top100() but not flagged", a)
		}
		top += a.IP24s
	}
	if top != Top100IP24s {
		t.Errorf("top-100 footprint = %d, want %d", top, Top100IP24s)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := Default(), Default()
	if a.Len() != b.Len() {
		t.Fatal("two Default() registries differ in size")
	}
	for i := range a.All() {
		if a.All()[i] != b.All()[i] {
			t.Fatalf("registry not deterministic at index %d: %+v vs %+v", i, a.All()[i], b.All()[i])
		}
	}
}

func TestNoDuplicateASNs(t *testing.T) {
	// Default panics on duplicates; also verify lookup consistency.
	r := Default()
	for _, a := range r.All() {
		got, ok := r.ByASN(a.ASN)
		if !ok || got.Name != a.Name {
			t.Fatalf("ByASN(%d) = %v,%v want %v", a.ASN, got, ok, a)
		}
	}
}

func TestEveryASHasFootprint(t *testing.T) {
	for _, a := range Default().All() {
		if a.IP24s < 1 {
			t.Errorf("%v has no anycast /24", a)
		}
		if a.PaperMeanReplicas < 2 {
			t.Errorf("%v has PaperMeanReplicas %d < 2 (anycast needs >= 2)", a, a.PaperMeanReplicas)
		}
		if a.Top100 && a.PaperMeanReplicas < 5 {
			t.Errorf("top-100 AS %v has fewer than 5 mean replicas", a)
		}
		if !a.Top100 && a.PaperMeanReplicas >= 5 {
			t.Errorf("tail AS %v has %d mean replicas, should be < 5", a, a.PaperMeanReplicas)
		}
		if a.Name == "" || a.CC == "" {
			t.Errorf("AS %d missing name or CC", a.ASN)
		}
	}
}

func TestNamedDeployments(t *testing.T) {
	// The deployments the paper calls out explicitly (Fig. 13, Sec. 4.2).
	r := Default()
	cases := []struct {
		name  string
		ip24s int
	}{
		{"CLOUDFLARENET,US", 328},
		{"GOOGLE,US", 102},
		{"EDGECAST,US", 37},
		{"PROLEXIC,US", 21},
		{"APPLE-ENGINEERING,US", 6},
		{"TWITTER-NETWORK,US", 3},
		{"LEVEL3,US", 2},
		{"LINKEDIN,US", 1},
	}
	for _, c := range cases {
		a, ok := r.ByName(c.name)
		if !ok {
			t.Errorf("%s missing from registry", c.name)
			continue
		}
		if a.IP24s != c.ip24s {
			t.Errorf("%s has %d /24s, want %d", c.name, a.IP24s, c.ip24s)
		}
	}
}

func TestCloudFlareIsLargestFootprint(t *testing.T) {
	r := Default()
	cf := r.MustByName("CLOUDFLARENET,US")
	for _, a := range r.All() {
		if a.ASN != cf.ASN && a.IP24s >= cf.IP24s {
			t.Errorf("%v footprint %d >= CloudFlare %d", a, a.IP24s, cf.IP24s)
		}
	}
}

func TestHalfHaveSinglePrefix(t *testing.T) {
	// Fig. 13: about half of the ASes operate exactly one anycast /24.
	r := Default()
	ones := 0
	tenPlus := 0
	for _, a := range r.All() {
		if a.IP24s == 1 {
			ones++
		}
		if a.IP24s >= 10 {
			tenPlus++
		}
	}
	frac := float64(ones) / float64(r.Len())
	if frac < 0.32 || frac > 0.62 {
		t.Errorf("fraction of single-/24 ASes = %.2f, want ~0.5", frac)
	}
	frac10 := float64(tenPlus) / float64(r.Len())
	if frac10 < 0.04 || frac10 > 0.20 {
		t.Errorf("fraction of ASes with >=10 /24s = %.2f, want ~0.10", frac10)
	}
}

func TestCAIDATop100(t *testing.T) {
	// Fig. 10: 8 census ASes are in the CAIDA top-100.
	got := Default().CAIDATop100()
	if len(got) != 8 {
		t.Fatalf("CAIDA top-100 intersection has %d ASes, want 8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].CAIDARank < got[i-1].CAIDARank {
			t.Error("CAIDATop100 not sorted by rank")
		}
	}
	// Level3 holds CAIDA rank 1.
	if got[0].Name != "LEVEL3,US" {
		t.Errorf("CAIDA rank-1 census AS = %v, want LEVEL3,US", got[0])
	}
}

func TestAlexaHosts(t *testing.T) {
	// Sec. 4.1: 15 ASes serve Alexa top-100k sites; CloudFlare leads with 188.
	got := Default().AlexaHosts()
	if len(got) != 15 {
		t.Fatalf("Alexa hosts = %d ASes, want 15", len(got))
	}
	if got[0].Name != "CLOUDFLARENET,US" || got[0].AlexaSites != 188 {
		t.Errorf("largest Alexa host = %v (%d sites), want CloudFlare with 188",
			got[0], got[0].AlexaSites)
	}
}

func TestCategoryString(t *testing.T) {
	if CatDNS.String() != "DNS" {
		t.Error("CatDNS.String() != DNS")
	}
	if Category(99).String() == "" {
		t.Error("unknown category should still stringify")
	}
}

func TestCoarseMapping(t *testing.T) {
	cases := map[Category]string{
		CatDNS:               "DNS",
		CatCDN:               "CDN",
		CatCloud:             "Cloud",
		CatCloudMessaging:    "Cloud",
		CatISP:               "ISP",
		CatISPTier1:          "ISP",
		CatBackbone:          "ISP",
		CatSecurity:          "Security",
		CatSocialNetwork:     "Social",
		CatUnknown:           "Unknown",
		CatWebPortal:         "Other",
		CatBlogging:          "Other",
		CatVideoConferencing: "Other",
	}
	for cat, want := range cases {
		if got := cat.Coarse(); got != want {
			t.Errorf("%v.Coarse() = %q, want %q", cat, got, want)
		}
	}
}

func TestCategoryBreakdownDNSShare(t *testing.T) {
	// Fig. 11: DNS represents about one third of anycast ASes (top-100).
	r := Default()
	bd := CategoryBreakdown(r.Top100())
	if bd["DNS"] < 0.25 || bd["DNS"] > 0.45 {
		t.Errorf("DNS share of top-100 = %.2f, want ~1/3", bd["DNS"])
	}
	// Shares sum to 1.
	var sum float64
	for _, v := range bd {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %v", sum)
	}
	if CategoryBreakdown(nil) != nil {
		t.Error("empty breakdown should be nil")
	}
}

func TestByNameMiss(t *testing.T) {
	if _, ok := Default().ByName("NO-SUCH-AS"); ok {
		t.Error("ByName found a nonexistent AS")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic on a miss")
		}
	}()
	Default().MustByName("NO-SUCH-AS")
}
