package services

import (
	"testing"

	"anycastmap/internal/asdb"
)

func build(t *testing.T) (*asdb.Registry, *Inventory) {
	t.Helper()
	reg := asdb.Default()
	return reg, Build(reg, 1)
}

func TestBuildDeterministic(t *testing.T) {
	reg := asdb.Default()
	a := Build(reg, 1)
	b := Build(reg, 1)
	for _, as := range reg.All() {
		sa, oka := a.ByASN(as.ASN)
		sb, okb := b.ByASN(as.ASN)
		if oka != okb {
			t.Fatalf("%v: presence differs", as)
		}
		if !oka {
			continue
		}
		if sa.Len() != sb.Len() {
			t.Fatalf("%v: size differs", as)
		}
		for i := range sa.Services() {
			if sa.Services()[i] != sb.Services()[i] {
				t.Fatalf("%v: service %d differs", as, i)
			}
		}
	}
}

func TestNamedInventories(t *testing.T) {
	reg, inv := build(t)
	cases := []struct {
		name  string
		ports int
	}{
		{"CLOUDFLARENET,US", 22},
		{"EDGECAST,US", 5},
		{"GOOGLE,US", 9},
		{"OVH,FR", 10148},
		{"INCAPSULA,US", 313},
	}
	for _, c := range cases {
		as := reg.MustByName(c.name)
		s, ok := inv.ByASN(as.ASN)
		if !ok {
			t.Errorf("%s has no inventory", c.name)
			continue
		}
		if s.Len() != c.ports {
			t.Errorf("%s has %d open ports, want %d", c.name, s.Len(), c.ports)
		}
	}
}

func TestCloudFlareEdgeCastShareOnlyThreePorts(t *testing.T) {
	// Sec. 4.2: CloudFlare and EdgeCast have only ports 53, 80 and 443 in
	// common, despite both being CDNs.
	reg, inv := build(t)
	cf, _ := inv.ByASN(reg.MustByName("CLOUDFLARENET,US").ASN)
	ec, _ := inv.ByASN(reg.MustByName("EDGECAST,US").ASN)
	var shared []uint16
	for _, p := range cf.OpenPorts() {
		if ec.Open(p) {
			shared = append(shared, p)
		}
	}
	if len(shared) != 3 {
		t.Fatalf("CF and EC share %v, want exactly {53,80,443}", shared)
	}
	for _, p := range []uint16{53, 80, 443} {
		if !cf.Open(p) || !ec.Open(p) {
			t.Errorf("port %d should be open on both", p)
		}
	}
}

func TestLookupAndOpen(t *testing.T) {
	reg, inv := build(t)
	cf, _ := inv.ByASN(reg.MustByName("CLOUDFLARENET,US").ASN)
	svc, ok := cf.Lookup(80)
	if !ok {
		t.Fatal("port 80 closed on CloudFlare")
	}
	if svc.Proto != "http" || svc.Software != "cloudflare-nginx" || !svc.WellKnown || svc.SSL {
		t.Errorf("port 80 service = %+v", svc)
	}
	if svc443, _ := cf.Lookup(443); !svc443.SSL {
		t.Error("port 443 should be SSL")
	}
	if cf.Open(81) {
		t.Error("port 81 should be closed")
	}
	var nilSet *Set
	if _, ok := nilSet.Lookup(80); ok {
		t.Error("nil set lookup should miss")
	}
}

func TestOVHWellKnownShare(t *testing.T) {
	// OVH's bulk must include several hundred well-known ports so the
	// census-wide union reaches the paper's 457 well-known services.
	reg, inv := build(t)
	ovh, _ := inv.ByASN(reg.MustByName("OVH,FR").ASN)
	wk := 0
	for _, s := range ovh.Services() {
		if s.WellKnown {
			wk++
		}
	}
	if wk < 400 || wk > 520 {
		t.Errorf("OVH exposes %d well-known ports, want ~450", wk)
	}
}

func TestTop100PortScanShape(t *testing.T) {
	// Fig. 14/15 shape: ~81 of the top-100 ASes expose at least one TCP
	// port; ~10-25 expose four or more; DNS port 53 is the most common
	// per-AS port.
	reg, inv := build(t)
	withAny, withFour, with53 := 0, 0, 0
	for _, a := range reg.Top100() {
		s, ok := inv.ByASN(a.ASN)
		if !ok || s.Len() == 0 {
			continue
		}
		withAny++
		if s.Len() >= 4 {
			withFour++
		}
		if s.Open(53) {
			with53++
		}
	}
	if withAny < 70 || withAny > 92 {
		t.Errorf("%d top-100 ASes with >=1 open port, want ~81", withAny)
	}
	if withFour < 10 || withFour > 30 {
		t.Errorf("%d top-100 ASes with >=4 open ports, want ~22", withFour)
	}
	if with53 < 40 {
		t.Errorf("only %d top-100 ASes expose TCP 53; DNS should dominate", with53)
	}
}

func TestSoftwareUniverse(t *testing.T) {
	// Every software name used in any inventory must be one of the 30
	// fingerprints of Fig. 16, and a healthy number of them must appear.
	reg, inv := build(t)
	known := map[string]bool{}
	for _, sw := range AllSoftware {
		known[sw] = true
	}
	used := map[string]bool{}
	for _, a := range reg.All() {
		s, ok := inv.ByASN(a.ASN)
		if !ok {
			continue
		}
		for _, sw := range s.SoftwareList() {
			if !known[sw] {
				t.Errorf("software %q not in the Fig. 16 universe", sw)
			}
			used[sw] = true
		}
	}
	if len(used) < 20 {
		t.Errorf("only %d of 30 software implementations appear in inventories", len(used))
	}
}

func TestSoftwareCategory(t *testing.T) {
	cases := map[string]string{
		"ISC BIND":    "DNS",
		"nginx":       "Web",
		"Gmail imapd": "Mail",
		"OpenSSH":     "Other",
		"nonsense":    "",
	}
	for sw, want := range cases {
		if got := SoftwareCategory(sw); got != want {
			t.Errorf("SoftwareCategory(%q) = %q, want %q", sw, got, want)
		}
	}
}

func TestIsWellKnown(t *testing.T) {
	for _, p := range []uint16{22, 53, 80, 443, 1023, 1935, 8080} {
		if !IsWellKnown(p) {
			t.Errorf("port %d should be well-known", p)
		}
	}
	for _, p := range []uint16{1024, 4444, 50000} {
		if IsWellKnown(p) {
			t.Errorf("port %d should not be well-known", p)
		}
	}
}

func TestServicesSortedByPort(t *testing.T) {
	reg, inv := build(t)
	for _, a := range reg.All() {
		s, ok := inv.ByASN(a.ASN)
		if !ok {
			continue
		}
		prev := -1
		for _, sv := range s.Services() {
			if int(sv.Port) <= prev {
				t.Fatalf("%v services not sorted/unique at port %d", a, sv.Port)
			}
			prev = int(sv.Port)
		}
	}
}

func TestDNSOverUDPFlag(t *testing.T) {
	reg, inv := build(t)
	od, _ := inv.ByASN(reg.MustByName("OPENDNS,US").ASN)
	if !od.ServesDNSOverUDP {
		t.Error("OpenDNS must serve DNS over UDP")
	}
	ms, _ := inv.ByASN(reg.MustByName("MICROSOFT,US").ASN)
	if ms.ServesDNSOverUDP {
		t.Error("Microsoft should not serve public DNS over UDP")
	}
}
