// Package services models the TCP service and software inventory of the
// anycast deployments, the ground truth behind the paper's portscan
// campaign (Sec. 4.3, Figs. 14-16): which TCP ports each AS keeps open on
// its anycast addresses, which of those are well-known or SSL services, and
// which software banner an nmap-style fingerprint would reveal.
//
// Named deployments are instantiated from the values the paper reports
// (CloudFlare's 22 ports with only {53, 80, 443} shared with EdgeCast,
// OVH's 10,148 ports from its seedbox ecosystem, Incapsula's 313, Google's
// 9 mail/web/DNS ports, ...); the rest of the top-100 get category-driven
// inventories (DNS providers expose 53, CDNs add 80/443, ISPs add BGP).
package services

import (
	"sort"

	"anycastmap/internal/asdb"
	"anycastmap/internal/detrand"
)

// Service is one open TCP port on a deployment.
type Service struct {
	Port      uint16
	Proto     string // nmap-style service name: "http", "domain", "ssh", ...
	SSL       bool
	WellKnown bool
	// Software is the fingerprinted implementation ("ISC BIND", "nginx",
	// ...); empty when fingerprinting fails and nmap would report
	// "tcpwrapped".
	Software string
}

// SoftwareCategory buckets a software name for the Fig. 16 breakdown.
func SoftwareCategory(sw string) string {
	switch sw {
	case "ISC BIND", "NLnet Labs NSD", "Microsoft DNS", "OpenDNS":
		return "DNS"
	case "nginx", "lighttpd", "Apache httpd", "ECD", "Microsoft IIS", "Varnish",
		"Apache Tomcat", "bitasicv2", "CFS 0213", "cloudflare-nginx", "cPanel httpd",
		"thttpd", "ECAcc/ECS", "Google httpd", "instart/160":
		return "Web"
	case "Gmail imapd", "Gmail pop3d", "Google gsmtp":
		return "Mail"
	case "OpenSSH", "MySQL", "sslstrip", "Microsoft RPC", "Microsoft HTTP", "Microsoft SQL",
		"Minecraft", "MythTV":
		return "Other"
	default:
		return ""
	}
}

// AllSoftware lists the 30 software implementations of Fig. 16.
var AllSoftware = []string{
	"ISC BIND", "NLnet Labs NSD", "Microsoft DNS", "OpenDNS",
	"nginx", "lighttpd", "Apache httpd", "ECD", "Microsoft IIS", "Varnish",
	"Apache Tomcat", "bitasicv2", "CFS 0213", "cloudflare-nginx", "cPanel httpd",
	"thttpd", "ECAcc/ECS", "Google httpd", "instart/160",
	"Gmail imapd", "Gmail pop3d", "Google gsmtp",
	"OpenSSH", "MySQL", "sslstrip", "Microsoft RPC", "Microsoft HTTP", "Microsoft SQL",
	"Minecraft", "MythTV",
}

// wellKnownHigh names the assigned services above 1023 that the inventory
// uses; everything below 1024 is considered well-known, like the IANA
// system port range.
var wellKnownHigh = map[uint16]string{
	1935:  "rtmp",
	3306:  "mysql",
	5252:  "movaz-ssc",
	8080:  "http-proxy",
	8083:  "us-srv",
	8443:  "https-alt",
	6543:  "mythtv",
	25565: "minecraft",
	2052:  "clearvisn",
	2053:  "knetd",
	2082:  "cpanel",
	2083:  "cpanel-ssl",
	2086:  "whm",
	2087:  "whm-ssl",
	2095:  "webmail",
	2096:  "webmail-ssl",
	8880:  "cddbp-alt",
	8008:  "http-alt",
	8088:  "radan-http",
}

// portProto returns the nmap-style service name for a port.
func portProto(port uint16) string {
	switch port {
	case 21:
		return "ftp"
	case 22:
		return "ssh"
	case 25:
		return "smtp"
	case 53:
		return "domain"
	case 80:
		return "http"
	case 110:
		return "pop3"
	case 143:
		return "imap"
	case 179:
		return "bgp"
	case 443:
		return "http-ssl"
	case 465:
		return "smtps"
	case 554:
		return "rtsp"
	case 587:
		return "submission"
	case 993:
		return "imaps"
	case 995:
		return "pop3s"
	}
	if name, ok := wellKnownHigh[port]; ok {
		return name
	}
	if port < 1024 {
		return "well-known"
	}
	return "unknown"
}

// sslPort reports whether the port conventionally carries TLS.
func sslPort(port uint16) bool {
	switch port {
	case 443, 465, 993, 995, 2053, 2083, 2087, 2096, 8443:
		return true
	}
	return false
}

// IsWellKnown reports whether the port maps to an assigned service name.
func IsWellKnown(port uint16) bool {
	if port < 1024 {
		return true
	}
	_, ok := wellKnownHigh[port]
	return ok
}

// Set is the open-port inventory of one AS's anycast deployment.
type Set struct {
	ASN      int
	services []Service // sorted by port
	byPort   map[uint16]int
	// ServesDNSOverUDP marks deployments that answer DNS queries over
	// UDP (Fig. 6 protocol-recall experiment).
	ServesDNSOverUDP bool
}

// Services returns the open services sorted by port. The slice must not be
// modified.
func (s *Set) Services() []Service { return s.services }

// Len returns the number of open ports.
func (s *Set) Len() int { return len(s.services) }

// Lookup returns the service on the given port.
func (s *Set) Lookup(port uint16) (Service, bool) {
	if s == nil || s.byPort == nil {
		return Service{}, false
	}
	i, ok := s.byPort[port]
	if !ok {
		return Service{}, false
	}
	return s.services[i], true
}

// Open reports whether the port is open.
func (s *Set) Open(port uint16) bool {
	_, ok := s.Lookup(port)
	return ok
}

// OpenPorts returns the sorted list of open port numbers.
func (s *Set) OpenPorts() []uint16 {
	out := make([]uint16, len(s.services))
	for i, sv := range s.services {
		out[i] = sv.Port
	}
	return out
}

// SoftwareList returns the distinct fingerprinted software names.
func (s *Set) SoftwareList() []string {
	seen := map[string]bool{}
	var out []string
	for _, sv := range s.services {
		if sv.Software != "" && !seen[sv.Software] {
			seen[sv.Software] = true
			out = append(out, sv.Software)
		}
	}
	sort.Strings(out)
	return out
}

func newSet(asn int, dnsUDP bool, svcs []Service) *Set {
	sort.Slice(svcs, func(i, j int) bool { return svcs[i].Port < svcs[j].Port })
	byPort := make(map[uint16]int, len(svcs))
	for i := range svcs {
		svcs[i].Proto = portProto(svcs[i].Port)
		svcs[i].SSL = svcs[i].SSL || sslPort(svcs[i].Port)
		svcs[i].WellKnown = IsWellKnown(svcs[i].Port)
		byPort[svcs[i].Port] = i
	}
	return &Set{ASN: asn, services: svcs, byPort: byPort, ServesDNSOverUDP: dnsUDP}
}

// Inventory maps each AS of the registry to its service set.
type Inventory struct {
	byASN map[int]*Set
}

// ByASN returns the service set of an AS (nil, false if the AS has no open
// TCP service).
func (inv *Inventory) ByASN(asn int) (*Set, bool) {
	s, ok := inv.byASN[asn]
	return s, ok
}

// open is a small helper to build service lists.
func open(ports ...uint16) []Service {
	out := make([]Service, len(ports))
	for i, p := range ports {
		out[i] = Service{Port: p}
	}
	return out
}

// withSoftware annotates the service on the given port with a software name.
func withSoftware(svcs []Service, port uint16, sw string) []Service {
	for i := range svcs {
		if svcs[i].Port == port {
			svcs[i].Software = sw
		}
	}
	return svcs
}

// Build constructs the inventory for the registry. Deterministic for a
// given seed.
func Build(reg *asdb.Registry, seed uint64) *Inventory {
	inv := &Inventory{byASN: make(map[int]*Set, reg.Len())}

	add := func(name string, dnsUDP bool, svcs []Service) {
		a := reg.MustByName(name)
		inv.byASN[a.ASN] = newSet(a.ASN, dnsUDP, svcs)
	}

	// CloudFlare: 22 open ports, the cPanel-style 2xxx range plus web and
	// DNS; cloudflare-nginx on the HTTP ports (Fig. 14 bottom: its 328
	// /24s dominate the per-/24 port frequencies).
	cf := open(53, 80, 443, 2052, 2053, 2082, 2083, 2086, 2087, 2095, 2096,
		8080, 8443, 8880, 8008, 8088, 2080, 2090, 2091, 2093, 2094, 2098)
	cf = withSoftware(cf, 80, "cloudflare-nginx")
	cf = withSoftware(cf, 8080, "cloudflare-nginx")
	cf = withSoftware(cf, 443, "CFS 0213")
	add("CLOUDFLARENET,US", true, cf)

	// EdgeCast: one quarter of CloudFlare's footprint, sharing only
	// {53, 80, 443}; proprietary ECAcc/ECS/ECD web servers and RTMP
	// streaming.
	ec := open(53, 80, 443, 1935, 554)
	ec = withSoftware(ec, 80, "ECAcc/ECS")
	ec = withSoftware(ec, 443, "ECD")
	add("EDGECAST,US", false, ec)

	// Google: public DNS plus the Gmail mail stack (Sec. 4.3) - 9 ports.
	gg := open(53, 80, 443, 25, 110, 143, 465, 993, 587)
	gg = withSoftware(gg, 80, "Google httpd")
	gg = withSoftware(gg, 25, "Google gsmtp")
	gg = withSoftware(gg, 587, "Google gsmtp")
	gg = withSoftware(gg, 110, "Gmail pop3d")
	gg = withSoftware(gg, 143, "Gmail imapd")
	add("GOOGLE,US", true, gg)

	// OVH: the largest hosting provider in Europe; its seedbox ecosystem
	// leaves ~10,148 ports open (Fig. 15). Several hundred are in the
	// well-known range.
	ovh := buildBulkPorts(seed, 10148, 450)
	ovh = withSoftware(ovh, 80, "Apache httpd")
	ovh = withSoftware(ovh, 22, "OpenSSH")
	ovh = withSoftware(ovh, 3306, "MySQL")
	add("OVH,FR", false, ovh)

	// Incapsula: 313 open ports (Fig. 15), a DDoS-protection proxy that
	// keeps many customer ports reachable.
	inc := buildBulkPorts(seed+1, 313, 7)
	inc = withSoftware(inc, 80, "nginx")
	add("INCAPSULA,US", false, inc)

	// Microsoft: cloud stack.
	ms := open(53, 80, 443, 1433, 135)
	ms = withSoftware(ms, 53, "Microsoft DNS")
	ms = withSoftware(ms, 80, "Microsoft HTTP")
	ms = withSoftware(ms, 443, "Microsoft IIS")
	ms = withSoftware(ms, 1433, "Microsoft SQL")
	ms = withSoftware(ms, 135, "Microsoft RPC")
	add("MICROSOFT,US", false, ms)

	// OpenDNS: DNS resolver with a block page web server.
	od := open(53, 80, 443)
	od = withSoftware(od, 53, "OpenDNS")
	od = withSoftware(od, 80, "nginx")
	add("OPENDNS,US", true, od)

	// NSD deployments: root servers hardened against BIND monoculture
	// (Sec. 4.3), plus Apple.
	for _, name := range []string{"APPLE-ENGINEERING,US", "K-ROOT-SERVER,NL", "L-ROOT,US"} {
		s := open(53)
		s = withSoftware(s, 53, "NLnet Labs NSD")
		add(name, true, s)
	}

	// A tier-1 ISP with several stateful services (Sec. 4.3 notes Tinet
	// among the 22 ASes with at least 4 open ports).
	tinet := open(53, 80, 179, 22)
	tinet = withSoftware(tinet, 22, "OpenSSH")
	add("TINET-BACKBONE,DE", false, tinet)

	// Multimedia and gaming oddities the paper calls out.
	mns := open(80, 443, 554, 1935, 6543)
	mns = withSoftware(mns, 6543, "MythTV")
	add("MNS-AS,NO", false, mns)
	add("AS-QUADRANET,US", false, withSoftware(open(80, 25565), 25565, "Minecraft"))

	// Fastly / CDNs with Varnish and nginx front ends.
	fst := open(53, 80, 443)
	fst = withSoftware(fst, 80, "Varnish")
	add("FASTLY,US", true, fst)
	in160 := open(80, 443)
	in160 = withSoftware(in160, 80, "instart/160")
	add("INSTART,US", false, in160)
	bg := open(80, 443, 8080)
	bg = withSoftware(bg, 80, "bitasicv2")
	add("BITGRAVITY,US", false, bg)
	am := open(80, 443)
	am = withSoftware(am, 80, "Apache Tomcat")
	add("OMNITURE,US", false, am)
	at := open(80, 443)
	at = withSoftware(at, 80, "nginx")
	add("AUTOMATTIC,US", false, at)
	cp := open(80, 443, 2082, 2083)
	cp = withSoftware(cp, 80, "cPanel httpd")
	add("HOMEPL-AS,PL", false, cp)
	th := open(80)
	th = withSoftware(th, 80, "thttpd")
	add("QUANTCAST,US", false, th)
	ss := open(80, 443, 8083)
	ss = withSoftware(ss, 443, "sslstrip")
	add("CEDEXIS,US", false, ss)

	// Remaining ASes: category-driven defaults. The portscan statistics
	// require ~81 of the top-100 to expose at least one TCP port, with
	// only ~22 having four or more.
	webSW := []string{"nginx", "Apache httpd", "lighttpd", "nginx", "lighttpd", "Microsoft IIS", "Apache httpd", "nginx", "Varnish", "lighttpd", "Apache httpd", "nginx", "nginx"}
	webIdx := 0
	dnsIdx := 0
	for _, a := range reg.Top100() {
		if _, done := inv.byASN[a.ASN]; done {
			continue
		}
		// A fraction of deployments expose no TCP service at all: UDP-only
		// DNS servers and fully firewalled infrastructure. This is what
		// keeps the portscan at ~81 of 100 ASes with any open port
		// (Fig. 14) despite ICMP reaching all of them.
		if detrand.UnitFloat(seed, uint64(a.ASN), 11) < noTCPProb(a.Category) {
			inv.byASN[a.ASN] = newSet(a.ASN, a.Category.Coarse() == "DNS", nil)
			continue
		}
		switch a.Category.Coarse() {
		case "DNS":
			svcs := open(53)
			// nmap identifies the DNS software for only about a third
			// of the port-53 ASes (44 of 67 stay unidentified).
			if dnsIdx%3 == 0 {
				svcs = withSoftware(svcs, 53, "ISC BIND")
			}
			dnsIdx++
			// A couple of registries also run a web front end.
			if detrand.UnitFloat(seed, uint64(a.ASN), 1) < 0.25 {
				svcs = append(svcs, Service{Port: 80})
			}
			inv.byASN[a.ASN] = newSet(a.ASN, true, svcs)
		case "CDN":
			svcs := open(80, 443)
			if detrand.UnitFloat(seed, uint64(a.ASN), 2) < 0.5 {
				svcs = append(svcs, Service{Port: 53})
			}
			if detrand.UnitFloat(seed, uint64(a.ASN), 3) < 0.3 {
				svcs = append(svcs, Service{Port: 8080}, Service{Port: 8083})
			}
			svcs = withSoftware(svcs, 80, webSW[webIdx%len(webSW)])
			webIdx++
			inv.byASN[a.ASN] = newSet(a.ASN, false, svcs)
		case "ISP":
			// ISPs anycast internal infrastructure; BGP and SSH show up.
			svcs := open(179)
			if detrand.UnitFloat(seed, uint64(a.ASN), 4) < 0.5 {
				svcs = append(svcs, Service{Port: 22, Software: "OpenSSH"})
			}
			if detrand.UnitFloat(seed, uint64(a.ASN), 5) < 0.5 {
				svcs = append(svcs, Service{Port: 53}, Service{Port: 80})
			}
			inv.byASN[a.ASN] = newSet(a.ASN, false, svcs)
		case "Cloud", "Security", "Social", "Other":
			svcs := open(80, 443)
			if detrand.UnitFloat(seed, uint64(a.ASN), 6) < 0.35 {
				svcs = append(svcs, Service{Port: 53})
			}
			if detrand.UnitFloat(seed, uint64(a.ASN), 7) < 0.25 {
				svcs = append(svcs, Service{Port: 22, Software: "OpenSSH"}, Service{Port: 3306, Software: "MySQL"})
			}
			if detrand.UnitFloat(seed, uint64(a.ASN), 8) < 0.15 {
				svcs = append(svcs, Service{Port: 5252}, Service{Port: 1935})
			}
			svcs = withSoftware(svcs, 80, webSW[webIdx%len(webSW)])
			webIdx++
			inv.byASN[a.ASN] = newSet(a.ASN, false, svcs)
		default:
			// "Unknown" ASes: ~half expose nothing (these account for
			// the top-100 members without open TCP ports).
			if detrand.UnitFloat(seed, uint64(a.ASN), 9) < 0.35 {
				inv.byASN[a.ASN] = newSet(a.ASN, false, open(80))
			}
		}
	}

	// The 246-AS tail: mostly DNS-over-UDP only; TCP 53 open for most.
	for _, a := range reg.All() {
		if a.Top100 {
			continue
		}
		if _, done := inv.byASN[a.ASN]; done {
			continue
		}
		switch a.Category.Coarse() {
		case "DNS":
			inv.byASN[a.ASN] = newSet(a.ASN, true, open(53))
		default:
			if detrand.UnitFloat(seed, uint64(a.ASN), 10) < 0.6 {
				inv.byASN[a.ASN] = newSet(a.ASN, false, open(80, 443))
			}
		}
	}
	return inv
}

// noTCPProb is the probability that a deployment of the given category
// filters every TCP port (UDP-only DNS, ICMP-only infrastructure).
func noTCPProb(cat asdb.Category) float64 {
	switch cat.Coarse() {
	case "DNS":
		return 0.15
	case "ISP":
		return 0.25
	case "Cloud", "Security":
		return 0.15
	case "CDN":
		return 0.04
	default:
		return 0.10
	}
}

// buildBulkPorts produces a deterministic large port inventory: the three
// service staples, lowWellKnown ports drawn from the system range, and the
// rest spread over the ephemeral range.
func buildBulkPorts(seed uint64, total, lowWellKnown int) []Service {
	ports := map[uint16]bool{53: true, 80: true, 443: true, 22: true, 3306: true, 21: true, 25: true}
	for i := 0; len(ports) < lowWellKnown; i++ {
		p := uint16(detrand.Intn(1023, seed, uint64(i), 0xB07) + 1)
		ports[p] = true
	}
	for i := 0; len(ports) < total; i++ {
		p := uint16(detrand.Intn(64512, seed, uint64(i), 0xB17) + 1024)
		ports[p] = true
	}
	out := make([]Service, 0, len(ports))
	for p := range ports {
		// A sliver of the seedbox services run HTTPS on arbitrary high
		// ports (the paper finds 185 SSL services in the 10.5k union).
		ssl := detrand.UnitFloat(seed, uint64(p), 0xB55) < 0.017
		out = append(out, Service{Port: p, SSL: ssl})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}
