package netsim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"anycastmap/internal/detrand"
	"anycastmap/internal/geo"
	"anycastmap/internal/platform"
)

// ReplyKind classifies what comes back from a probe.
type ReplyKind uint8

const (
	// ReplyTimeout means nothing came back.
	ReplyTimeout ReplyKind = iota
	// ReplyEcho is an ICMP echo reply (or, for transport probes, a
	// successful handshake).
	ReplyEcho
	// ReplyAdminFiltered is ICMP type 3 code 13 (communication
	// administratively filtered, RFC 1812) - the bulk of the greylist.
	ReplyAdminFiltered
	// ReplyHostProhibited is ICMP type 3 code 10 (RFC 1122).
	ReplyHostProhibited
	// ReplyNetProhibited is ICMP type 3 code 9 (RFC 1122).
	ReplyNetProhibited
)

func (k ReplyKind) String() string {
	switch k {
	case ReplyTimeout:
		return "timeout"
	case ReplyEcho:
		return "echo"
	case ReplyAdminFiltered:
		return "admin-filtered(13)"
	case ReplyHostProhibited:
		return "host-prohibited(10)"
	case ReplyNetProhibited:
		return "net-prohibited(9)"
	}
	return "unknown"
}

// Greylistable reports whether the reply asks to be excluded from future
// probing (the greylist mechanism of Sec. 3.3).
func (k ReplyKind) Greylistable() bool {
	switch k {
	case ReplyAdminFiltered, ReplyHostProhibited, ReplyNetProhibited:
		return true
	}
	return false
}

// Reply is the observable outcome of one probe.
type Reply struct {
	Kind ReplyKind
	RTT  time.Duration // meaningful only when Kind != ReplyTimeout
}

// OK reports whether the probe elicited a latency sample usable for
// anycast detection.
func (r Reply) OK() bool { return r.Kind == ReplyEcho }

// ProbeICMP sends one ICMP echo request from vp to target during census
// round `round`. Rounds matter: the per-probe queueing jitter differs
// between rounds, so combining censuses by minimum RTT sharpens the
// estimate toward the propagation delay (Sec. 4.1).
func (w *World) ProbeICMP(vp platform.VP, target IP, round uint64) Reply {
	return w.probeICMP(w.session(vp), vp, target, round)
}

func (w *World) probeICMP(s *vpSession, vp platform.VP, target IP, round uint64) Reply {
	p := target.Prefix()
	i, ok := w.byPrefix[p]
	if !ok {
		return Reply{Kind: ReplyTimeout}
	}
	if w.faults.TargetUnreachable(p, round) {
		return Reply{Kind: ReplyTimeout}
	}
	if i >= 0 {
		// Structural checks first: a dead host times out whatever the
		// loss draw would have said, so it never pays for one.
		d := w.deployments[i]
		if target != d.rep && detrand.UnitFloat(w.cfg.Seed, uint64(target), 0xA11E) >= d.Density {
			return Reply{Kind: ReplyTimeout}
		}
		// Transient loss: a few percent of probes get no answer in any
		// given census round; repeating the census recovers them (one
		// reason the combination of censuses has higher recall, Sec. 4.1).
		if detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(target), round, 0xC0FF) < 0.025 {
			return Reply{Kind: ReplyTimeout}
		}
		return Reply{Kind: ReplyEcho, RTT: w.anycastRTT(s, vp, d, target, round)}
	}
	h := &w.unicast[-(i + 1)]
	if target != h.rep {
		// Only the representative host of a unicast /24 is modelled.
		return Reply{Kind: ReplyTimeout}
	}
	if h.class == classSilent {
		return Reply{Kind: ReplyTimeout}
	}
	if detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(target), round, 0xC0FF) < 0.025 {
		return Reply{Kind: ReplyTimeout}
	}
	rtt := w.unicastRTT(s, vp, h, target, round)
	switch h.class {
	case classAdminFiltered:
		return Reply{Kind: ReplyAdminFiltered, RTT: rtt}
	case classHostProhibited:
		return Reply{Kind: ReplyHostProhibited, RTT: rtt}
	case classNetProhibited:
		return Reply{Kind: ReplyNetProhibited, RTT: rtt}
	}
	return Reply{Kind: ReplyEcho, RTT: rtt}
}

// anycastRTT produces the RTT of a successful anycast probe: cached
// catchment + base when a session is bound, the full computation otherwise.
func (w *World) anycastRTT(s *vpSession, vp platform.VP, d *Deployment, target IP, round uint64) time.Duration {
	if s != nil {
		c := &s.cands[d.idx]
		return w.rttFromBaseMs(c.baseMs[w.servingRank(c, vp, d, round)], vp, target, round)
	}
	r := w.servingReplicaSlow(vp, d, round)
	return w.pathRTT(vp, uint64(d.Prefix), r.Loc, uint64(r.ID), target, round)
}

// unicastRTT produces the RTT toward a unicast representative. Hijacked
// prefixes bypass the cache: their effective endpoint depends on a live
// per-VP catchment draw (0x41AC), and hijacks are injected after sessions
// may already be warm.
func (w *World) unicastRTT(s *vpSession, vp platform.VP, h *unicastHost, target IP, round uint64) time.Duration {
	p := target.Prefix()
	if s == nil {
		return w.pathRTT(vp, uint64(p), w.hijackedLoc(vp, p, h.loc), 0, target, round)
	}
	if w.hijacks != nil {
		if _, hijacked := w.hijacks[p]; hijacked {
			return w.pathRTT(vp, uint64(p), w.hijackedLoc(vp, p, h.loc), 0, target, round)
		}
	}
	return w.rttFromBaseMs(w.unicastBaseMs(s, vp, h, p), vp, target, round)
}

// ProbeTCP attempts a TCP SYN/SYN-ACK handshake to the given port
// (Sec. 3.4: L4 measurements only succeed when the service is known a
// priori; Sec. 4.3: the portscan campaign).
func (w *World) ProbeTCP(vp platform.VP, target IP, port uint16, round uint64) Reply {
	return w.probeTCP(w.session(vp), vp, target, port, round)
}

func (w *World) probeTCP(s *vpSession, vp platform.VP, target IP, port uint16, round uint64) Reply {
	i, ok := w.byPrefix[target.Prefix()]
	if !ok {
		return Reply{Kind: ReplyTimeout}
	}
	if w.faults.TargetUnreachable(target.Prefix(), round) {
		return Reply{Kind: ReplyTimeout}
	}
	if i >= 0 {
		d := w.deployments[i]
		if target != d.rep && detrand.UnitFloat(w.cfg.Seed, uint64(target), 0xA11E) >= d.Density {
			return Reply{Kind: ReplyTimeout}
		}
		set, has := w.Services.ByASN(d.ASN)
		if !has || !set.Open(port) {
			return Reply{Kind: ReplyTimeout}
		}
		// Conservative loss: some in-path firewall drops SYNs for a small
		// fraction of (vantage, port) pairs (Sec. 4.3 notes probe
		// filtering makes port counts an underestimate).
		if detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(target), uint64(port), 0xF11) < 0.02 {
			return Reply{Kind: ReplyTimeout}
		}
		return Reply{Kind: ReplyEcho, RTT: w.anycastRTT(s, vp, d, target, round)}
	}
	// Unicast hosts run the occasional service. TCP probes always reach
	// the host's home location: the injected hijacks model an ICMP-era
	// attack and never attract transport traffic, so the cached base is
	// valid here even while a hijack is live.
	h := &w.unicast[-(i + 1)]
	if target != h.rep || h.class != classResponsive {
		return Reply{Kind: ReplyTimeout}
	}
	var p float64
	switch port {
	case 80:
		p = 0.20
	case 443:
		p = 0.15
	case 22:
		p = 0.12
	case 53:
		p = 0.04
	default:
		p = 0.01
	}
	if detrand.UnitFloat(w.cfg.Seed, uint64(target), uint64(port), 0xF12) >= p {
		return Reply{Kind: ReplyTimeout}
	}
	if s != nil {
		return Reply{Kind: ReplyEcho, RTT: w.rttFromBaseMs(w.unicastBaseMs(s, vp, h, target.Prefix()), vp, target, round)}
	}
	return Reply{Kind: ReplyEcho, RTT: w.pathRTT(vp, uint64(target.Prefix()), h.loc, 0, target, round)}
}

// ProbeDNSUDP sends a DNS query over UDP (the dig test of Fig. 6): only
// deployments actually operating a UDP DNS service answer.
func (w *World) ProbeDNSUDP(vp platform.VP, target IP, round uint64) Reply {
	return w.probeDNSUDP(w.session(vp), vp, target, round)
}

func (w *World) probeDNSUDP(s *vpSession, vp platform.VP, target IP, round uint64) Reply {
	i, ok := w.byPrefix[target.Prefix()]
	if !ok || i < 0 {
		return Reply{Kind: ReplyTimeout}
	}
	d := w.deployments[i]
	if target != d.rep && detrand.UnitFloat(w.cfg.Seed, uint64(target), 0xA11E) >= d.Density {
		return Reply{Kind: ReplyTimeout}
	}
	set, has := w.Services.ByASN(d.ASN)
	if !has || !set.ServesDNSOverUDP {
		return Reply{Kind: ReplyTimeout}
	}
	return Reply{Kind: ReplyEcho, RTT: w.anycastRTT(s, vp, d, target, round)}
}

// ProbeDNSTCP sends a DNS query over TCP: it needs both an open port 53 and
// a DNS service behind it.
func (w *World) ProbeDNSTCP(vp platform.VP, target IP, round uint64) Reply {
	i, ok := w.byPrefix[target.Prefix()]
	if !ok || i < 0 {
		return Reply{Kind: ReplyTimeout}
	}
	d := w.deployments[i]
	set, has := w.Services.ByASN(d.ASN)
	if !has || !set.Open(53) || !set.ServesDNSOverUDP {
		return Reply{Kind: ReplyTimeout}
	}
	return w.ProbeTCP(vp, target, 53, round)
}

// ServingReplica exposes, as ground truth, which replica of an anycast
// prefix answers probes from the given vantage point during the given
// census round. The validation pipeline uses it as the equivalent of
// CloudFlare's CF-RAY HTTP header (Sec. 3.4); the measurement pipeline
// must not touch it.
func (w *World) ServingReplica(vp platform.VP, p Prefix24, round uint64) (Replica, bool) {
	d, ok := w.Deployment(p)
	if !ok {
		return Replica{}, false
	}
	return w.servingReplica(vp, d, round), true
}

// servingReplica implements BGP-like replica selection: mostly stable per
// (vantage, prefix), usually - but not always - the geographically nearest
// replica, because BGP picks paths by AS hops and policy, not distance.
// About 12% of (vantage, prefix) catchments flap between census rounds,
// the imperfect anycast affinity documented by the DNS literature the
// paper builds on.
func (w *World) servingReplica(vp platform.VP, d *Deployment, round uint64) Replica {
	if s := w.session(vp); s != nil {
		c := &s.cands[d.idx]
		return d.Replicas[c.idx[w.servingRank(c, vp, d, round)]]
	}
	return w.servingReplicaSlow(vp, d, round)
}

// servingReplicaSlow is the uncached reference implementation; the session
// cache must reproduce its selections bit for bit.
func (w *World) servingReplicaSlow(vp platform.VP, d *Deployment, round uint64) Replica {
	n := len(d.Replicas)
	if n == 1 {
		return d.Replicas[0]
	}
	// Rank the three nearest replicas.
	type cand struct {
		idx  int
		dist float64
	}
	best := [3]cand{{-1, math.MaxFloat64}, {-1, math.MaxFloat64}, {-1, math.MaxFloat64}}
	for i := range d.Replicas {
		dist := geo.DistanceKm(vp.Loc, d.Replicas[i].Loc)
		switch {
		case dist < best[0].dist:
			best[2], best[1], best[0] = best[1], best[0], cand{i, dist}
		case dist < best[1].dist:
			best[2], best[1] = best[1], cand{i, dist}
		case dist < best[2].dist:
			best[2] = cand{i, dist}
		}
	}
	u := detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(d.Prefix), 0xB69)
	if detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(d.Prefix), round, 0xF1A9) < 0.12 {
		// Catchment flap: this round routes to a different candidate.
		u = detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(d.Prefix), round, 0xB6A)
	}
	switch {
	case u < 0.70 || best[1].idx < 0:
		return d.Replicas[best[0].idx]
	case u < 0.90 || best[2].idx < 0:
		return d.Replicas[best[1].idx]
	default:
		return d.Replicas[best[2].idx]
	}
}

// pathRTT models the round-trip time between a vantage point and an
// endpoint at loc: fiber propagation along a stretched path, fixed access
// latency at both ends, and per-probe queueing jitter.
//
// The model maintains the physical invariant the detection technique relies
// on: RTT >= PropagationRTT(vp, loc), so a disk built from a measured RTT
// always contains the answering endpoint.
func (w *World) pathRTT(vp platform.VP, endpointKey uint64, loc geo.Coord, subKey uint64, target IP, round uint64) time.Duration {
	base := w.rttBaseMsDist(vp, endpointKey, geo.DistanceKm(vp.Loc, loc), subKey, w.vpAccessMs(vp))
	return w.rttFromBaseMs(base, vp, target, round)
}

// vpAccessMs is the vantage point's half of the access-latency term: last
// mile plus host overhead, stable across every probe the VP sends.
func (w *World) vpAccessMs(vp platform.VP) float64 {
	return 0.2 + w.cfg.AccessMs*detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), 0xB71)
}

// rttBaseMsDist is the probe-invariant part of the RTT model: propagation
// along the stretched path plus access latency at both ends. The float
// expressions are associated exactly as the pre-memoization code wrote
// them, so a cached base plus live jitter reproduces the original RTT bit
// for bit.
func (w *World) rttBaseMsDist(vp platform.VP, endpointKey uint64, distKm float64, subKey uint64, vpAccess float64) float64 {
	propMs := 2 * distKm / geo.FiberSpeedKmPerMs

	// Path stretch is a stable property of the (vantage, endpoint) pair.
	stretch := w.cfg.StretchBase + w.cfg.StretchExtra*detrand.Exp(w.cfg.Seed, uint64(vp.ID), endpointKey, subKey, 0xB70)
	if stretch > 3.0 {
		stretch = 3.0
	}

	// Access latency: last mile at the VP plus server-side processing.
	accessMs := vpAccess + 0.1 + w.cfg.AccessMs*0.5*detrand.UnitFloat(w.cfg.Seed, endpointKey, subKey, 0xB72)

	return propMs*stretch + accessMs
}

// rttFromBaseMs adds the only probe-varying term - queueing jitter - to a
// base latency. Jitter varies probe to probe (here: round to round), and
// grows with the host's load: an oversubscribed PlanetLab node adds
// milliseconds of scheduling delay, inflating its disks by hundreds of km.
// Minimum-combining across censuses claws part of this back, which is
// where the Fig. 12 recall gain of the combination comes from.
func (w *World) rttFromBaseMs(baseMs float64, vp platform.VP, target IP, round uint64) time.Duration {
	jitterMs := w.cfg.JitterMs * (0.3 + 1.2*vp.LoadFactor) *
		detrand.Exp(w.cfg.Seed, uint64(vp.ID), uint64(target), round, 0xB73)
	return time.Duration(math.Ceil((baseMs + jitterMs) * float64(time.Millisecond)))
}

// SourceDropProb returns the probability that a reply is lost near the
// vantage point when probing at the given rate (replies aggregate at the
// VP: Sec. 3.5 explains why Fastping had to be slowed down by an order of
// magnitude). Each VP's access network has its own tolerance.
func (w *World) SourceDropProb(vp platform.VP, probesPerSecond float64) float64 {
	// Per-VP rate tolerance between 1.5k and 12k probes/s.
	tol := 1500 + 10500*detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), 0xD20)
	if probesPerSecond <= tol {
		return 0
	}
	over := (probesPerSecond - tol) / tol
	p := 0.25 * over
	if p > 0.9 {
		p = 0.9
	}
	return p
}

// AnycastPrefixes returns the sorted list of anycast /24s (ground truth).
func (w *World) AnycastPrefixes() []Prefix24 {
	out := make([]Prefix24, len(w.deployments))
	for i, d := range w.deployments {
		out[i] = d.Prefix
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// BannerTCP performs an nmap-style service fingerprint of an open port:
// it returns the software banner when the service identifies itself, or
// "" with ok=true when the port is open but wrapped (nmap's "tcpwrapped").
// ok is false when the port did not answer at all.
func (w *World) BannerTCP(vp platform.VP, target IP, port uint16, round uint64) (software string, ok bool) {
	if !w.ProbeTCP(vp, target, port, round).OK() {
		return "", false
	}
	d, isAnycast := w.Deployment(target.Prefix())
	if !isAnycast {
		return "", true
	}
	set, has := w.Services.ByASN(d.ASN)
	if !has {
		return "", true
	}
	svc, open := set.Lookup(port)
	if !open {
		return "", true
	}
	return svc.Software, true
}

// ProbeTLS reports whether a TLS handshake succeeds on an open port (nmap's
// ssl service detection). It implies the port answered the TCP handshake.
func (w *World) ProbeTLS(vp platform.VP, target IP, port uint16, round uint64) bool {
	if !w.ProbeTCP(vp, target, port, round).OK() {
		return false
	}
	d, ok := w.Deployment(target.Prefix())
	if !ok {
		return false
	}
	set, has := w.Services.ByASN(d.ASN)
	if !has {
		return false
	}
	svc, open := set.Lookup(port)
	return open && svc.SSL
}

// InjectHijack simulates a BGP prefix hijack of a unicast /24 (the Sec. 5
// extension: geo-inconsistency on a knowingly unicast prefix is
// symptomatic of hijacking). A fraction of vantage points - the hijacker's
// BGP catchment - has its traffic attracted to the hijacker's location.
// Injection must happen before probing starts; it is not safe to call
// concurrently with probes.
func (w *World) InjectHijack(p Prefix24, hijackerLoc geo.Coord, catchment float64) error {
	i, ok := w.byPrefix[p]
	if !ok {
		return fmt.Errorf("netsim: prefix %v not allocated", p)
	}
	if i >= 0 {
		return fmt.Errorf("netsim: prefix %v is anycast; hijack detection targets unicast prefixes", p)
	}
	if catchment <= 0 || catchment > 1 {
		return fmt.Errorf("netsim: catchment %v outside (0, 1]", catchment)
	}
	if w.hijacks == nil {
		w.hijacks = make(map[Prefix24]hijack)
	}
	w.hijacks[p] = hijack{loc: hijackerLoc, catchment: catchment}
	return nil
}

// ClearHijack removes an injected hijack.
func (w *World) ClearHijack(p Prefix24) {
	delete(w.hijacks, p)
}

// hijacked returns the effective endpoint location for a unicast probe,
// accounting for injected hijacks.
func (w *World) hijackedLoc(vp platform.VP, p Prefix24, orig geo.Coord) geo.Coord {
	h, ok := w.hijacks[p]
	if !ok {
		return orig
	}
	if detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(p), 0x41AC) < h.catchment {
		return h.loc
	}
	return orig
}

// QueryCHAOS issues the hostname.bind TXT/CH query of the Fan et al.
// enumeration baseline (paper [25]). DNS deployments answer with a
// per-instance server identifier; everything else stays silent. Like every
// probe, the reply comes from whichever replica BGP routes the vantage
// point to in the given round.
func (w *World) QueryCHAOS(vp platform.VP, target IP, round uint64) (serverID string, reply Reply) {
	rep := w.ProbeDNSUDP(vp, target, round)
	if !rep.OK() {
		return "", rep
	}
	d, _ := w.Deployment(target.Prefix())
	r := w.servingReplica(vp, d, round)
	// Operators conventionally encode the site in the identifier, e.g.
	// "ams01.as13335.net".
	code := strings.ToLower(strings.ReplaceAll(r.City.Name, " ", ""))
	if len(code) > 6 {
		code = code[:6]
	}
	return fmt.Sprintf("%s%02d.as%d.net", code, r.ID, d.ASN), rep
}
