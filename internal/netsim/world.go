// Package netsim is the synthetic Internet the census runs against. It
// replaces the physical measurement substrate of the paper (the IPv4
// address space, BGP routing, CDN deployments, PlanetLab's network paths)
// with a deterministic model that preserves everything the measurement and
// analysis pipeline can observe: which /24s respond to which protocol, with
// which latency, from which vantage point, and which ICMP errors come back.
//
// The anycast inventory is instantiated at the paper's cardinality (346
// ASes, 1,696 anycast /24s, Fig. 10) from the asdb registry; the unicast
// background is scaled by Config.Unicast24s (default 1:100 of the paper's
// 6.6M responsive targets). Everything is a pure function of Config.Seed.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"anycastmap/internal/asdb"
	"anycastmap/internal/cities"
	"anycastmap/internal/detrand"
	"anycastmap/internal/geo"
	"anycastmap/internal/lfsr"
	"anycastmap/internal/services"
)

// Config parametrizes the synthetic Internet.
type Config struct {
	// Seed drives every random choice in the world; two worlds with the
	// same config are identical.
	Seed uint64

	// Epoch advances the anycast landscape in time (the Sec. 5
	// "longitudinal view" extension): deployments keep their prefixes
	// and most of their replica sets, but footprints drift - mostly
	// growth - between epochs. Epoch 0 is the March 2015 landscape.
	Epoch uint64

	// Unicast24s is the number of unicast /24s in the hitlist-covered
	// space. The paper probes 6.6M targets; the default 66,000 is a
	// 1:100 scale documented in DESIGN.md.
	Unicast24s int

	// DeploymentInflation scales the paper's *measured* per-AS replica
	// counts up to the *true* deployment sizes, since measurement from
	// ~300 VPs is a conservative lower bound (Sec. 4.1).
	DeploymentInflation float64

	// ResponsiveFraction is the fraction of unicast hitlist targets that
	// answer ICMP echo, relative to the FULL hitlist space (Fig. 4:
	// fewer than half of the initial hitlist reply; the paper's 4.4M
	// responsive of 10.6M routed /24s is 41.5%).
	ResponsiveFraction float64

	// AdminFilteredFraction, HostProhibitedFraction and
	// NetProhibitedFraction produce the ICMP error population that feeds
	// the greylist (Sec. 3.3: ~98.5% type-3 code-13, 1.3% code 10,
	// 0.2% code 9).
	AdminFilteredFraction  float64
	HostProhibitedFraction float64
	NetProhibitedFraction  float64

	// StretchBase and StretchExtra shape the path-stretch distribution:
	// an Internet path is StretchBase + Exp(mean StretchExtra) times
	// longer than the great circle.
	StretchBase  float64
	StretchExtra float64

	// AccessMs bounds the per-endpoint access latency (last mile, server
	// processing) and JitterMs the per-probe queueing noise.
	AccessMs float64
	JitterMs float64

	// DisableProbeCache turns off the per-VP session memoization of
	// catchments and RTT bases (and with it the span-session resolver),
	// forcing every probe down the uncached reference path. Replies are
	// identical either way (the determinism tests compare the two); the
	// switch exists for those tests and for memory-constrained callers.
	DisableProbeCache bool
}

// DefaultConfig returns the configuration used throughout the benchmarks.
func DefaultConfig() Config {
	return Config{
		Seed:                   2015,
		Unicast24s:             66000,
		DeploymentInflation:    1.0,
		ResponsiveFraction:     0.415,
		AdminFilteredFraction:  0.0143,
		HostProhibitedFraction: 0.00019,
		NetProhibitedFraction:  0.00003,
		StretchBase:            1.10,
		StretchExtra:           0.18,
		AccessMs:               1.2,
		JitterMs:               2.5,
	}
}

// Replica is one instance of an anycast deployment: a server (or site) in a
// city announcing the shared prefix.
type Replica struct {
	ID   int
	City cities.City
	Loc  geo.Coord
}

// Deployment is one anycast /24: a prefix announced from several locations.
type Deployment struct {
	Prefix   Prefix24
	ASN      int
	Replicas []Replica
	// Density is the fraction of /32 addresses alive inside the /24
	// (Sec. 4.2: from Google's lone 8.8.8.8 to CloudFlare's >99%).
	Density float64
	// HostsAlexa marks /24s that serve at least one Alexa top-100k
	// website (Sec. 4.1: 242 such /24s across 15 ASes). The mapping is
	// public data (DNS resolution of the Alexa list), so the analysis
	// pipeline may read it.
	HostsAlexa bool

	// idx is this deployment's position in World.deployments (and in the
	// per-VP session caches); rep is the precomputed hitlist
	// representative. Both are set by New.
	idx int32
	rep IP
}

func (d *Deployment) String() string {
	return fmt.Sprintf("%v AS%d %d replicas", d.Prefix, d.ASN, len(d.Replicas))
}

// Cities returns the sorted distinct city keys of the deployment.
func (d *Deployment) Cities() []string {
	set := map[string]bool{}
	for _, r := range d.Replicas {
		set[r.City.Key()] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// hostClass is the ICMP behaviour of a unicast representative.
type hostClass uint8

const (
	classResponsive hostClass = iota
	classSilent
	classAdminFiltered  // ICMP type 3 code 13
	classHostProhibited // code 10
	classNetProhibited  // code 9
)

// unicastHost is the representative host of a unicast /24. rep and
// everAlive are precomputed at build time so the probe hot path never
// re-derives them.
type unicastHost struct {
	loc       geo.Coord
	rep       IP
	cityIdx   int32
	class     hostClass
	everAlive bool
}

// World is the synthetic Internet.
type World struct {
	cfg      Config
	Registry *asdb.Registry
	Cities   *cities.DB
	Services *services.Inventory

	deployments []*Deployment
	unicast     []unicastHost

	// byPrefix maps a /24 to its object: values >= 0 index deployments,
	// values < 0 encode -(unicastIndex+1).
	byPrefix       map[Prefix24]int32
	unicastPrefix  []Prefix24 // unicast index -> prefix
	anycastByASN   map[int][]*Deployment
	dcPool         []poolCity
	cityCumWeights []float64 // population-cumulative weights over Cities.All()

	// hijacks holds injected BGP hijacks (Sec. 5 extension); see
	// InjectHijack.
	hijacks map[Prefix24]hijack

	// faults is the installed failure schedule; nil means a perfectly
	// healthy substrate. See InstallFaults and WithFaults.
	faults *FaultPlan

	// sessions caches per-VP probe-invariant state (see session.go). It
	// sits behind a pointer so WithFaults views share one table.
	sessions *sessionTable
}

// hijack describes one injected prefix hijack.
type hijack struct {
	loc       geo.Coord
	catchment float64
}

type poolCity struct {
	city cities.City
	w    float64
}

// basePrefix is the /24 index of 1.0.0.0/24: all prefixes of the world are
// allocated upward from here.
const basePrefix = Prefix24(1 << 16)

// maxUnicast24s bounds Unicast24s so the world (anycast footprint
// included) stays below the multicast boundary: 224.0.0.0/24 is /24 index
// 14,680,064, and allocation starts at basePrefix (65,536). The paper's
// full 10.6M announced /24s fit with room to spare.
const maxUnicast24s = 14_600_000

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Unicast24s <= 0:
		return fmt.Errorf("netsim: Unicast24s must be positive, got %d", c.Unicast24s)
	case c.Unicast24s > maxUnicast24s:
		return fmt.Errorf("netsim: Unicast24s %d exceeds the %d address budget", c.Unicast24s, maxUnicast24s)
	case c.ResponsiveFraction < 0 || c.ResponsiveFraction > 1:
		return fmt.Errorf("netsim: ResponsiveFraction %v outside [0,1]", c.ResponsiveFraction)
	case c.ResponsiveFraction+c.AdminFilteredFraction+c.HostProhibitedFraction+c.NetProhibitedFraction > 1:
		return fmt.Errorf("netsim: reply-class fractions exceed 1")
	case c.StretchBase < 1:
		return fmt.Errorf("netsim: StretchBase %v < 1 would break the speed-of-light invariant", c.StretchBase)
	case c.StretchExtra < 0 || c.AccessMs < 0 || c.JitterMs < 0:
		return fmt.Errorf("netsim: negative noise parameter")
	}
	return nil
}

// New builds a world. Construction is deterministic and takes O(prefixes).
// It panics on an invalid configuration; use Config.Validate to check
// first.
func New(cfg Config) *World {
	if cfg.DeploymentInflation <= 0 {
		cfg.DeploymentInflation = 1
	}
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	w := &World{
		cfg:          cfg,
		Registry:     asdb.Default(),
		Cities:       cities.Default(),
		byPrefix:     make(map[Prefix24]int32),
		anycastByASN: make(map[int][]*Deployment),
		sessions:     &sessionTable{},
	}
	w.Services = services.Build(w.Registry, cfg.Seed)
	w.buildPool()
	w.buildCityWeights()

	totalAnycast := w.Registry.TotalFootprint()
	total := totalAnycast + cfg.Unicast24s

	// Scatter the anycast /24s through the whole allocated space using an
	// LFSR permutation: the proverbial needles in the haystack.
	perm, err := lfsr.NewPermutation(uint64(total), cfg.Seed|1)
	if err != nil {
		panic(fmt.Sprintf("netsim: %v", err))
	}
	anycastSlots := make([]uint64, 0, totalAnycast)
	for len(anycastSlots) < totalAnycast {
		v, ok := perm.Next()
		if !ok {
			panic("netsim: permutation exhausted early")
		}
		anycastSlots = append(anycastSlots, v)
	}
	slotOf := make(map[uint64]bool, totalAnycast)
	for _, s := range anycastSlots {
		slotOf[s] = true
	}

	// Instantiate deployments AS by AS, in registry order.
	slotCursor := 0
	for _, as := range w.Registry.All() {
		asReplicas := w.buildASReplicaSet(as)
		_, pinned := pinnedFootprints[as.Name]
		for p := 0; p < as.IP24s; p++ {
			prefix := basePrefix + Prefix24(anycastSlots[slotCursor])
			slotCursor++
			replicas := asReplicas
			if !pinned {
				replicas = w.prefixReplicaSubset(asReplicas, prefix)
			}
			d := &Deployment{
				Prefix:     prefix,
				ASN:        as.ASN,
				Replicas:   replicas,
				Density:    w.density(as, prefix),
				HostsAlexa: p < as.AlexaIP24s,
				idx:        int32(len(w.deployments)),
				// Anycast infrastructure: a low, alive host address.
				rep: prefix.Host(byte(1 + detrand.Intn(32, cfg.Seed, uint64(prefix), 0x4E01))),
			}
			w.byPrefix[prefix] = int32(len(w.deployments))
			w.deployments = append(w.deployments, d)
			w.anycastByASN[as.ASN] = append(w.anycastByASN[as.ASN], d)
		}
	}

	// Fill the remaining slots with unicast representatives.
	w.unicast = make([]unicastHost, 0, cfg.Unicast24s)
	w.unicastPrefix = make([]Prefix24, 0, cfg.Unicast24s)
	for slot := uint64(0); slot < uint64(total); slot++ {
		if slotOf[slot] {
			continue
		}
		prefix := basePrefix + Prefix24(slot)
		idx := len(w.unicast)
		w.unicast = append(w.unicast, w.buildUnicastHost(prefix))
		w.unicastPrefix = append(w.unicastPrefix, prefix)
		w.byPrefix[prefix] = int32(-(idx + 1))
	}
	return w
}

// Config returns the world configuration.
func (w *World) Config() Config { return w.cfg }

// InstallFaults attaches a failure schedule to the world; nil removes it.
// Like InjectHijack it must happen before probing starts and is not safe
// to call concurrently with probes — use WithFaults for a race-free view.
func (w *World) InstallFaults(p *FaultPlan) { w.faults = p }

// WithFaults returns a shallow view of the world with the fault plan
// installed. The view shares every index with the receiver (worlds are
// immutable once built), so it is cheap and safe to probe the original and
// the view concurrently.
func (w *World) WithFaults(p *FaultPlan) *World {
	w2 := *w
	w2.faults = p
	return &w2
}

// Faults returns the installed fault plan, nil when the substrate is
// healthy.
func (w *World) Faults() *FaultPlan { return w.faults }

// Deployments returns every anycast deployment. The slice must not be
// modified.
func (w *World) Deployments() []*Deployment { return w.deployments }

// DeploymentsByASN returns the deployments of one AS.
func (w *World) DeploymentsByASN(asn int) []*Deployment { return w.anycastByASN[asn] }

// Deployment returns the deployment owning the prefix, if any.
func (w *World) Deployment(p Prefix24) (*Deployment, bool) {
	i, ok := w.byPrefix[p]
	if !ok || i < 0 {
		return nil, false
	}
	return w.deployments[i], true
}

// IsAnycast reports the ground truth for a prefix. Only validation and
// ground-truth collection may use it; the measurement pipeline must not.
func (w *World) IsAnycast(p Prefix24) bool {
	_, ok := w.Deployment(p)
	return ok
}

// ASNOf returns the AS announcing the prefix (ground truth used by the BGP
// table substitute).
func (w *World) ASNOf(p Prefix24) (int, bool) {
	i, ok := w.byPrefix[p]
	if !ok {
		return 0, false
	}
	if i >= 0 {
		return w.deployments[i].ASN, true
	}
	// Unicast prefixes get a synthetic origin AS derived from their slot.
	return 100000 + int(uint32(p)%30000), true
}

// NumPrefixes returns the number of allocated /24s (anycast + unicast).
func (w *World) NumPrefixes() int { return len(w.deployments) + len(w.unicast) }

// Prefixes calls fn for every allocated /24 in increasing order.
func (w *World) Prefixes(fn func(Prefix24)) {
	total := w.Registry.TotalFootprint() + w.cfg.Unicast24s
	for slot := 0; slot < total; slot++ {
		fn(basePrefix + Prefix24(slot))
	}
}

// Representative returns the hitlist representative address for a prefix
// and whether any host in the /24 has ever been seen alive (targets with no
// alive host carry a negative hitlist score, Sec. 3.1).
func (w *World) Representative(p Prefix24) (IP, bool) {
	i, ok := w.byPrefix[p]
	if !ok {
		return 0, false
	}
	if i >= 0 {
		return w.deployments[i].rep, true
	}
	h := &w.unicast[-(i + 1)]
	return h.rep, h.everAlive
}

// HostAlive reports whether a specific /32 inside an anycast /24 answers
// probes, according to the deployment density (used by the Sec. 3.1
// spot-check that any alive IP of a /24 is equivalent).
func (w *World) HostAlive(ip IP) bool {
	i, ok := w.byPrefix[ip.Prefix()]
	if !ok {
		return false
	}
	if i < 0 {
		h := &w.unicast[-(i + 1)]
		return h.everAlive && h.rep == ip
	}
	d := w.deployments[i]
	if ip == d.rep {
		return true // the hitlist representative is alive by construction
	}
	return detrand.UnitFloat(w.cfg.Seed, uint64(ip), 0xA11E) < d.Density
}

// buildPool assembles the datacenter-city pool replicas are placed in:
// the classic interconnection hubs get the highest weights.
func (w *World) buildPool() {
	for _, e := range dcPool {
		w.dcPool = append(w.dcPool, poolCity{city: w.Cities.MustByName(e.name, e.cc), w: e.w})
	}
}

// buildCityWeights prepares population-proportional sampling for unicast
// host placement.
func (w *World) buildCityWeights() {
	all := w.Cities.All()
	w.cityCumWeights = make([]float64, len(all))
	sum := 0.0
	for i, c := range all {
		sum += float64(c.Population)
		w.cityCumWeights[i] = sum
	}
}

// buildASReplicaSet chooses the true replica cities of an AS: the paper's
// measured mean footprint inflated to deployment truth, sampled from the
// datacenter pool with hub bias. Small operators outside the top-100
// (country-code registries, national clouds) often deploy regionally: about
// 70% of tail ASes keep every replica within ~800 km of an anchor hub,
// which makes them borderline for speed-of-light detection - the population
// behind Fig. 12's two-replica tail and the recall gained by combining
// censuses.
func (w *World) buildASReplicaSet(as asdb.AS) []Replica {
	if pinned, ok := pinnedFootprints[as.Name]; ok {
		replicas := make([]Replica, 0, len(pinned))
		for i, nc := range pinned {
			city := w.Cities.MustByName(nc[0], nc[1])
			bearing := 360 * detrand.UnitFloat(w.cfg.Seed, uint64(as.ASN), uint64(i), 0x9002)
			dist := 12 * detrand.UnitFloat(w.cfg.Seed, uint64(as.ASN), uint64(i), 0x9003)
			replicas = append(replicas, Replica{ID: i, City: city, Loc: geo.Destination(city.Loc, bearing, dist)})
		}
		return replicas
	}
	n := int(math.Round(float64(as.PaperMeanReplicas) * w.cfg.DeploymentInflation))
	// Longitudinal drift: deployments mostly grow over epochs (the paper
	// observed "small but interesting changes" between later censuses),
	// with the occasional shrink. Candidates are ranked stably, so a
	// grown deployment keeps its old sites and adds the next-best ones.
	if w.cfg.Epoch > 0 {
		growth := int(float64(n) * 0.05 * float64(w.cfg.Epoch))
		swing := detrand.Intn(4, w.cfg.Seed, uint64(as.ASN), w.cfg.Epoch, 0x9020) - 1 // -1..2
		n += growth + swing
	}
	if n < 2 {
		n = 2
	}

	regional := !as.Top100 && detrand.UnitFloat(w.cfg.Seed, uint64(as.ASN), 0x9010) < 0.7
	var anchor geo.Coord
	if regional {
		anchor = w.dcPool[detrand.Intn(len(w.dcPool), w.cfg.Seed, uint64(as.ASN), 0x9011)].city.Loc
	}

	// Weighted sampling without replacement, deterministic per AS.
	type cand struct {
		idx int
		key float64
	}
	build := func(regionOnly bool) []cand {
		out := make([]cand, 0, len(w.dcPool))
		for i, pc := range w.dcPool {
			if regionOnly && geo.DistanceKm(anchor, pc.city.Loc) > 800 {
				continue
			}
			// Efraimidis-Spirakis weighted reservoir keys.
			u := detrand.UnitFloat(w.cfg.Seed, uint64(as.ASN), uint64(i), 0x9001)
			if u <= 0 {
				u = 1e-12
			}
			out = append(out, cand{idx: i, key: math.Pow(u, 1/pc.w)})
		}
		return out
	}
	cands := build(regional)
	if len(cands) < 2 {
		// The anchor region is too sparse to host an anycast deployment;
		// fall back to a global spread.
		cands = build(false)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].key > cands[b].key })
	if n > len(cands) {
		n = len(cands)
	}
	replicas := make([]Replica, 0, n)
	for i := 0; i < n; i++ {
		pc := w.dcPool[cands[i].idx]
		bearing := 360 * detrand.UnitFloat(w.cfg.Seed, uint64(as.ASN), uint64(i), 0x9002)
		dist := 12 * detrand.UnitFloat(w.cfg.Seed, uint64(as.ASN), uint64(i), 0x9003)
		replicas = append(replicas, Replica{
			ID:   i,
			City: pc.city,
			Loc:  geo.Destination(pc.city.Loc, bearing, dist),
		})
	}
	return replicas
}

// prefixReplicaSubset selects the replicas announcing one specific /24 of
// the AS: most prefixes are served from the full AS footprint, with a
// little per-prefix variation (the paper reports small standard deviations
// across /24s of the same AS, Fig. 9).
func (w *World) prefixReplicaSubset(asReplicas []Replica, p Prefix24) []Replica {
	out := make([]Replica, 0, len(asReplicas))
	for i, r := range asReplicas {
		if detrand.UnitFloat(w.cfg.Seed, uint64(p), uint64(i), 0x9004) < 0.9 {
			out = append(out, r)
		}
	}
	if len(out) < 2 {
		out = append(out[:0], asReplicas[0], asReplicas[1])
	}
	return out
}

// density draws the alive-host density of a /24 (Sec. 4.2: Google's DNS
// /24s are nearly empty, CloudFlare's nearly full).
func (w *World) density(as asdb.AS, p Prefix24) float64 {
	switch as.Name {
	case "CLOUDFLARENET,US":
		return 0.995
	case "GOOGLE,US":
		return 0.008 // 8.8.8.8-style: one or two alive addresses
	}
	return 0.1 + 0.8*detrand.UnitFloat(w.cfg.Seed, uint64(p), 0x9005)
}

// buildUnicastHost places a unicast representative in a population-weighted
// city with rural jitter and draws its ICMP behaviour class.
func (w *World) buildUnicastHost(p Prefix24) unicastHost {
	all := w.Cities.All()
	total := w.cityCumWeights[len(w.cityCumWeights)-1]
	x := detrand.UnitFloat(w.cfg.Seed, uint64(p), 0x9006) * total
	idx := sort.SearchFloat64s(w.cityCumWeights, x)
	if idx >= len(all) {
		idx = len(all) - 1
	}
	bearing := 360 * detrand.UnitFloat(w.cfg.Seed, uint64(p), 0x9007)
	dist := 120 * detrand.UnitFloat(w.cfg.Seed, uint64(p), 0x9008)
	loc := geo.Destination(all[idx].Loc, bearing, dist)

	u := detrand.UnitFloat(w.cfg.Seed, uint64(p), 0x9009)
	cfg := w.cfg
	var class hostClass
	switch {
	case u < cfg.ResponsiveFraction:
		class = classResponsive
	case u < cfg.ResponsiveFraction+cfg.AdminFilteredFraction:
		class = classAdminFiltered
	case u < cfg.ResponsiveFraction+cfg.AdminFilteredFraction+cfg.HostProhibitedFraction:
		class = classHostProhibited
	case u < cfg.ResponsiveFraction+cfg.AdminFilteredFraction+cfg.HostProhibitedFraction+cfg.NetProhibitedFraction:
		class = classNetProhibited
	default:
		class = classSilent
	}
	// A silent host may still have been seen alive by past hitlist
	// campaigns; about a third were (this makes the score-pruned hitlist
	// ~62% of the full space, matching the paper's 6.6M of 10.6M).
	everAlive := class != classSilent ||
		detrand.UnitFloat(w.cfg.Seed, uint64(p), 0x4E03) < 1.0/3
	return unicastHost{
		loc:       loc,
		rep:       p.Host(byte(1 + detrand.Intn(253, w.cfg.Seed, uint64(p), 0x4E02))),
		cityIdx:   int32(idx),
		class:     class,
		everAlive: everAlive,
	}
}

// pinnedFootprints fixes the replica cities of deployments whose geography
// the paper's experiments depend on: OpenDNS's 24 published data-center
// locations (the Sec. 3.4 consistency check and the Ashburn/Philadelphia
// anecdote) and Microsoft's 54-site deployment (Fig. 5: PlanetLab sees 21
// of them, RIPE 54).
var pinnedFootprints = map[string][][2]string{
	"OPENDNS,US": {
		{"Ashburn", "US"}, {"Chicago", "US"}, {"Dallas", "US"}, {"Los Angeles", "US"},
		{"Miami", "US"}, {"New York", "US"}, {"Palo Alto", "US"}, {"Seattle", "US"},
		{"Denver", "US"}, {"Atlanta", "US"}, {"Toronto", "CA"}, {"Vancouver", "CA"},
		{"Amsterdam", "NL"}, {"London", "GB"}, {"Frankfurt", "DE"}, {"Paris", "FR"},
		{"Stockholm", "SE"}, {"Milan", "IT"}, {"Prague", "CZ"}, {"Singapore", "SG"},
		{"Hong Kong", "HK"}, {"Tokyo", "JP"}, {"Sydney", "AU"}, {"Sao Paulo", "BR"},
	},
	"MICROSOFT,US": {
		// 16 sites in regions PlanetLab covers well...
		{"Ashburn", "US"}, {"New York", "US"}, {"Chicago", "US"}, {"Honolulu", "US"},
		{"Dakar", "SN"}, {"Tashkent", "UZ"}, {"Los Angeles", "US"}, {"San Jose", "US"},
		{"Seattle", "US"}, {"Port Louis", "MU"}, {"Kathmandu", "NP"}, {"London", "GB"},
		{"Dublin", "IE"}, {"Amsterdam", "NL"}, {"Frankfurt", "DE"}, {"Paris", "FR"},
		{"Madrid", "ES"}, {"Singapore", "SG"}, {"Hong Kong", "HK"}, {"Tokyo", "JP"},
		{"Sydney", "AU"},
		// ...and 31 in regions it barely reaches - which is why PlanetLab
		// sees only a subset of what RIPE sees (Fig. 5).
		{"Johannesburg", "ZA"}, {"Nairobi", "KE"}, {"Lagos", "NG"}, {"Cairo", "EG"},
		{"Casablanca", "MA"}, {"Dubai", "AE"}, {"Doha", "QA"},
		{"Riyadh", "SA"}, {"Kuwait City", "KW"}, {"Amman", "JO"},
		{"Rio de Janeiro", "BR"}, {"Bogota", "CO"}, {"Lima", "PE"}, {"Panama City", "PA"},
		{"Montevideo", "UY"}, {"Jakarta", "ID"}, {"Bangkok", "TH"},
		{"Kuala Lumpur", "MY"}, {"Manila", "PH"}, {"Ho Chi Minh City", "VN"}, {"Dhaka", "BD"},
		{"Karachi", "PK"}, {"Colombo", "LK"}, {"Perth", "AU"}, {"Moscow", "RU"},
		{"Kyiv", "UA"},
	},
}

// dcPool lists the replica-placement cities with hub weights. It spans the
// ~80 cities / ~40 countries footprint of Fig. 10.
var dcPool = []struct {
	name string
	cc   string
	w    float64
}{
	{"Ashburn", "US", 10}, {"New York", "US", 8}, {"San Jose", "US", 9},
	{"Los Angeles", "US", 8}, {"Chicago", "US", 8}, {"Dallas", "US", 7},
	{"Miami", "US", 7}, {"Seattle", "US", 6}, {"Atlanta", "US", 6},
	{"Denver", "US", 4}, {"Phoenix", "US", 3}, {"Boston", "US", 3},
	{"Houston", "US", 3},
	{"Toronto", "CA", 5}, {"Montreal", "CA", 3}, {"Vancouver", "CA", 3},
	{"London", "GB", 10}, {"Amsterdam", "NL", 10}, {"Frankfurt", "DE", 10},
	{"Paris", "FR", 8}, {"Stockholm", "SE", 5}, {"Milan", "IT", 4},
	{"Madrid", "ES", 4}, {"Vienna", "AT", 3}, {"Warsaw", "PL", 3},
	{"Prague", "CZ", 3}, {"Zurich", "CH", 4}, {"Dublin", "IE", 4},
	{"Brussels", "BE", 3}, {"Copenhagen", "DK", 3}, {"Oslo", "NO", 2},
	{"Rome", "IT", 2},
	{"Bucharest", "RO", 2}, {"Budapest", "HU", 2}, {"Sofia", "BG", 1.5},
	{"Istanbul", "TR", 3}, {"Kyiv", "UA", 1.5},
	{"Moscow", "RU", 3}, {"Saint Petersburg", "RU", 1.5},
	{"Tokyo", "JP", 9}, {"Osaka", "JP", 4}, {"Seoul", "KR", 5},
	{"Hong Kong", "HK", 8}, {"Singapore", "SG", 9}, {"Taipei", "TW", 3},
	{"Beijing", "CN", 2}, {"Shanghai", "CN", 2}, {"Mumbai", "IN", 4},
	{"Delhi", "IN", 2}, {"Chennai", "IN", 2}, {"Bangalore", "IN", 2},
	{"Kuala Lumpur", "MY", 2}, {"Jakarta", "ID", 2}, {"Bangkok", "TH", 2},
	{"Hanoi", "VN", 1},
	{"Sydney", "AU", 6}, {"Melbourne", "AU", 4}, {"Perth", "AU", 1.5},
	{"Auckland", "NZ", 2.5},
	{"Sao Paulo", "BR", 6}, {"Rio de Janeiro", "BR", 2},
	{"Buenos Aires", "AR", 2.5}, {"Santiago", "CL", 2.5}, {"Bogota", "CO", 2},
	{"Lima", "PE", 1.5}, {"Mexico City", "MX", 3}, {"Panama City", "PA", 1},
	{"Johannesburg", "ZA", 3}, {"Cape Town", "ZA", 2}, {"Nairobi", "KE", 1.5},
	{"Lagos", "NG", 1.5}, {"Cairo", "EG", 1.5}, {"Casablanca", "MA", 1},
	{"Tel Aviv", "IL", 2.5}, {"Dubai", "AE", 2.5}, {"Doha", "QA", 1},
	{"Riyadh", "SA", 1},
	{"San Francisco", "US", 4},
	{"Washington", "US", 4}, {"Salt Lake City", "US", 1.5},
	{"Manchester", "GB", 1.5}, {"Marseille", "FR", 2},
	{"Dusseldorf", "DE", 2}, {"Munich", "DE", 2}, {"Hamburg", "DE", 1.5},
	{"Barcelona", "ES", 2}, {"Valencia", "ES", 1},
	{"Brisbane", "AU", 1.5},
	{"Luxembourg", "LU", 1.5},
	{"Vilnius", "LT", 1},
	{"Zagreb", "HR", 1},
	{"Bratislava", "SK", 1},
}

// AlexaHosted reports whether the /24 serves an Alexa top-100k website
// (public mapping data - the DNS resolution of the Alexa list - so the
// analysis pipeline may read it).
func (w *World) AlexaHosted(p Prefix24) bool {
	d, ok := w.Deployment(p)
	return ok && d.HostsAlexa
}

// Evolve returns the world as it looks `epochs` census periods later:
// identical prefix allocation and unicast background, drifted anycast
// footprints. The receiver is unchanged.
func (w *World) Evolve(epochs uint64) *World {
	cfg := w.cfg
	cfg.Epoch += epochs
	return New(cfg)
}
