package netsim

import (
	"testing"

	"anycastmap/internal/asdb"
	"anycastmap/internal/cities"
	"anycastmap/internal/geo"
	"anycastmap/internal/platform"
)

// testConfig returns a small, fast world configuration for tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Unicast24s = 4000
	return cfg
}

func testWorld(t *testing.T) *World {
	t.Helper()
	return New(testConfig())
}

func TestWorldInventory(t *testing.T) {
	w := testWorld(t)
	if got := len(w.Deployments()); got != asdb.TotalIP24s {
		t.Errorf("world has %d anycast /24s, want %d", got, asdb.TotalIP24s)
	}
	if got := w.NumPrefixes(); got != asdb.TotalIP24s+4000 {
		t.Errorf("NumPrefixes = %d", got)
	}
	// Per-AS deployment counts match the registry.
	for _, as := range w.Registry.All() {
		if got := len(w.DeploymentsByASN(as.ASN)); got != as.IP24s {
			t.Errorf("%v has %d deployments, want %d", as, got, as.IP24s)
		}
	}
}

func TestDeploymentShape(t *testing.T) {
	w := testWorld(t)
	for _, d := range w.Deployments() {
		if len(d.Replicas) < 2 {
			t.Fatalf("%v has %d replicas; anycast needs at least 2", d, len(d.Replicas))
		}
		if d.Density <= 0 || d.Density > 1 {
			t.Fatalf("%v has density %v", d, d.Density)
		}
		seen := map[string]bool{}
		for _, r := range d.Replicas {
			if !r.Loc.Valid() {
				t.Fatalf("%v replica %d has invalid location", d, r.ID)
			}
			if geo.DistanceKm(r.Loc, r.City.Loc) > 20 {
				t.Fatalf("%v replica %d placed too far from its city", d, r.ID)
			}
			if seen[r.City.Key()] {
				t.Fatalf("%v has two replicas in %v", d, r.City)
			}
			seen[r.City.Key()] = true
		}
	}
}

func TestGroundTruthLookups(t *testing.T) {
	w := testWorld(t)
	d := w.Deployments()[0]
	if !w.IsAnycast(d.Prefix) {
		t.Error("IsAnycast false for a deployment prefix")
	}
	got, ok := w.Deployment(d.Prefix)
	if !ok || got != d {
		t.Error("Deployment lookup failed")
	}
	if asn, ok := w.ASNOf(d.Prefix); !ok || asn != d.ASN {
		t.Errorf("ASNOf = %d,%v want %d", asn, ok, d.ASN)
	}
	// A unicast prefix.
	up := w.unicastPrefix[0]
	if w.IsAnycast(up) {
		t.Error("unicast prefix reported as anycast")
	}
	if _, ok := w.ASNOf(up); !ok {
		t.Error("unicast prefix has no origin AS")
	}
	if _, ok := w.ASNOf(Prefix24(1)); ok {
		t.Error("unallocated prefix should have no AS")
	}
}

func TestDeploymentSizeCalibration(t *testing.T) {
	w := testWorld(t)
	// With the default calibration (DeploymentInflation 1.0 plus the
	// ~0.9 per-prefix subset), true deployment sizes sit close to the
	// paper's measured means: our synthetic PlanetLab covers the
	// datacenter cities better than the real one did, so measured ~= true
	// is the right operating point (see DESIGN.md).
	cf := w.Registry.MustByName("CLOUDFLARENET,US")
	ds := w.DeploymentsByASN(cf.ASN)
	total := 0
	for _, d := range ds {
		total += len(d.Replicas)
	}
	mean := float64(total) / float64(len(ds))
	lo := 0.8 * float64(cf.PaperMeanReplicas)
	hi := 1.3 * float64(cf.PaperMeanReplicas)
	if mean < lo || mean > hi {
		t.Errorf("CloudFlare true mean replicas %.1f outside [%.1f, %.1f]", mean, lo, hi)
	}
}

func TestRepresentative(t *testing.T) {
	w := testWorld(t)
	seenDead := false
	w.Prefixes(func(p Prefix24) {
		rep, everAlive := w.Representative(p)
		if rep.Prefix() != p {
			t.Fatalf("representative %v outside its prefix %v", rep, p)
		}
		if !everAlive {
			seenDead = true
		}
	})
	if !seenDead {
		t.Error("some hitlist entries should have negative liveness scores")
	}
	if _, ok := w.byPrefix[Prefix24(7)]; ok {
		t.Fatal("test assumes prefix 7 unallocated")
	}
	if _, alive := w.Representative(Prefix24(7)); alive {
		t.Error("unallocated prefix should not be alive")
	}
}

func TestDensityExtremes(t *testing.T) {
	w := testWorld(t)
	cf := w.Registry.MustByName("CLOUDFLARENET,US")
	gg := w.Registry.MustByName("GOOGLE,US")
	countAlive := func(d *Deployment) int {
		n := 0
		for b := 1; b < 255; b++ {
			if w.HostAlive(d.Prefix.Host(byte(b))) {
				n++
			}
		}
		return n
	}
	cfAlive := countAlive(w.DeploymentsByASN(cf.ASN)[0])
	ggAlive := countAlive(w.DeploymentsByASN(gg.ASN)[0])
	if cfAlive < 240 {
		t.Errorf("CloudFlare /24 has %d alive hosts, want nearly all (Sec. 4.2)", cfAlive)
	}
	if ggAlive > 12 {
		t.Errorf("Google /24 has %d alive hosts, want a handful (8.8.8.8 style)", ggAlive)
	}
}

func TestWorldDeterministic(t *testing.T) {
	a := New(testConfig())
	b := New(testConfig())
	for i, d := range a.Deployments() {
		e := b.Deployments()[i]
		if d.Prefix != e.Prefix || d.ASN != e.ASN || len(d.Replicas) != len(e.Replicas) {
			t.Fatalf("deployment %d differs between identical worlds", i)
		}
		for j := range d.Replicas {
			if d.Replicas[j] != e.Replicas[j] {
				t.Fatalf("replica %d/%d differs", i, j)
			}
		}
	}
}

func TestAnycastScattered(t *testing.T) {
	// The anycast needles must be spread through the haystack, not
	// clustered at the start of the space.
	w := testWorld(t)
	firstQuarter := 0
	total := w.NumPrefixes()
	for _, d := range w.Deployments() {
		if int(d.Prefix-basePrefix) < total/4 {
			firstQuarter++
		}
	}
	frac := float64(firstQuarter) / float64(len(w.Deployments()))
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("%.2f of anycast prefixes in the first quarter of the space, want ~0.25", frac)
	}
}

func TestCityDiversityOfDeployments(t *testing.T) {
	// Fig. 10: replicas spread over ~77 cities in ~38 countries.
	w := testWorld(t)
	citySet := map[string]bool{}
	ccSet := map[string]bool{}
	for _, d := range w.Deployments() {
		for _, r := range d.Replicas {
			citySet[r.City.Key()] = true
			ccSet[r.City.CC] = true
		}
	}
	if len(citySet) < 60 {
		t.Errorf("deployments span %d cities, want >= 60", len(citySet))
	}
	if len(ccSet) < 30 {
		t.Errorf("deployments span %d countries, want >= 30", len(ccSet))
	}
}

func TestUnicastClassFractions(t *testing.T) {
	w := testWorld(t)
	var resp, silent, grey int
	for _, h := range w.unicast {
		switch h.class {
		case classResponsive:
			resp++
		case classSilent:
			silent++
		default:
			grey++
		}
	}
	n := float64(len(w.unicast))
	if f := float64(resp) / n; f < 0.38 || f > 0.45 {
		t.Errorf("responsive fraction = %.3f, want ~0.415 (4.4M of 10.6M)", f)
	}
	if f := float64(grey) / n; f < 0.008 || f > 0.025 {
		t.Errorf("greylistable fraction = %.3f, want ~0.0145", f)
	}
	if silent == 0 {
		t.Error("no silent hosts")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic with Unicast24s <= 0")
		}
	}()
	New(Config{})
}

func pickVP(t *testing.T) platform.VP {
	t.Helper()
	return platform.PlanetLab(cities.Default()).VPs()[0]
}

func TestEvolve(t *testing.T) {
	w0 := testWorld(t)
	w1 := w0.Evolve(1)
	if w1.Config().Epoch != 1 {
		t.Fatal("epoch not advanced")
	}
	// Prefix allocation and the unicast background are stable in time.
	if w1.NumPrefixes() != w0.NumPrefixes() {
		t.Fatal("prefix space changed across epochs")
	}
	for i, p := range w0.unicastPrefix[:500] {
		if w1.unicastPrefix[i] != p {
			t.Fatal("unicast allocation changed across epochs")
		}
		if w0.unicast[i] != w1.unicast[i] {
			t.Fatal("unicast host changed across epochs")
		}
	}
	// Deployments keep their prefixes; footprints drift, mostly upward,
	// and grown deployments keep their previous sites.
	total0, total1, kept, base := 0, 0, 0, 0
	for i, d0 := range w0.Deployments() {
		d1 := w1.Deployments()[i]
		if d0.Prefix != d1.Prefix || d0.ASN != d1.ASN {
			t.Fatal("deployment identity changed across epochs")
		}
		total0 += len(d0.Replicas)
		total1 += len(d1.Replicas)
		newCities := map[string]bool{}
		for _, r := range d1.Replicas {
			newCities[r.City.Key()] = true
		}
		for _, r := range d0.Replicas {
			base++
			if newCities[r.City.Key()] {
				kept++
			}
		}
	}
	if total1 <= total0 {
		t.Errorf("landscape shrank: %d -> %d replicas", total0, total1)
	}
	if growth := float64(total1-total0) / float64(total0); growth > 0.30 {
		t.Errorf("landscape grew %.0f%% in one epoch; drift should be small", 100*growth)
	}
	if continuity := float64(kept) / float64(base); continuity < 0.80 {
		t.Errorf("only %.0f%% of replica sites survived one epoch", 100*continuity)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	good.Unicast24s = 100
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{}, // zero targets
		func() Config { c := good; c.Unicast24s = 1 << 24; return c }(),
		func() Config { c := good; c.ResponsiveFraction = 1.5; return c }(),
		func() Config { c := good; c.ResponsiveFraction = 0.99; c.AdminFilteredFraction = 0.5; return c }(),
		func() Config { c := good; c.StretchBase = 0.5; return c }(),
		func() Config { c := good; c.JitterMs = -1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
