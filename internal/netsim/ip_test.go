package netsim

import (
	"testing"
	"testing/quick"
)

func TestIPString(t *testing.T) {
	cases := map[IP]string{
		0:                            "0.0.0.0",
		0x01020304:                   "1.2.3.4",
		0xFFFFFFFF:                   "255.255.255.255",
		IP(8<<24 | 8<<16 | 8<<8 | 8): "8.8.8.8",
	}
	for ip, want := range cases {
		if got := ip.String(); got != want {
			t.Errorf("IP(%#x).String() = %q, want %q", uint32(ip), got, want)
		}
	}
}

func TestParseIPRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.-4"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) accepted invalid input", bad)
		}
	}
}

func TestPrefix24(t *testing.T) {
	ip, _ := ParseIP("192.168.7.33")
	p := ip.Prefix()
	if p.String() != "192.168.7.0/24" {
		t.Errorf("prefix = %q", p.String())
	}
	if !p.Contains(ip) {
		t.Error("prefix should contain its member")
	}
	other, _ := ParseIP("192.168.8.33")
	if p.Contains(other) {
		t.Error("prefix should not contain neighbor /24 address")
	}
	if got := p.Host(1).String(); got != "192.168.7.1" {
		t.Errorf("Host(1) = %q", got)
	}
	if ip.HostByte() != 33 {
		t.Errorf("HostByte = %d", ip.HostByte())
	}
}

func TestParsePrefix24(t *testing.T) {
	p, err := ParsePrefix24("10.1.2.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.1.2.0/24" {
		t.Errorf("round trip = %q", p.String())
	}
	// An in-prefix address normalizes to the /24.
	p2, err := ParsePrefix24("10.1.2.77/24")
	if err != nil || p2 != p {
		t.Errorf("ParsePrefix24 of member address = %v, %v", p2, err)
	}
	for _, bad := range []string{"10.1.2.0", "10.1.2.0/16", "x/24"} {
		if _, err := ParsePrefix24(bad); err == nil {
			t.Errorf("ParsePrefix24(%q) accepted invalid input", bad)
		}
	}
}

func TestPrefixHostRoundTrip(t *testing.T) {
	f := func(v uint32, b byte) bool {
		p := Prefix24(v & 0xFFFFFF)
		ip := p.Host(b)
		return ip.Prefix() == p && ip.HostByte() == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
