package netsim

import (
	"sync"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/platform"
)

// The probe-path benchmarks run against one shared mid-size world; building
// it is far more expensive than any measured operation, so it is built once.
var (
	benchOnce    sync.Once
	benchWorld   *World
	benchVPs     []platform.VP
	benchTargets []IP // representative per /24, anycast and unicast interleaved
)

func benchSetup(b *testing.B) (*World, []platform.VP, []IP) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Unicast24s = 8000
		benchWorld = New(cfg)
		benchVPs = platform.PlanetLab(cities.Default()).VPs()
		benchWorld.Prefixes(func(p Prefix24) {
			if ip, alive := benchWorld.Representative(p); alive {
				benchTargets = append(benchTargets, ip)
			}
		})
	})
	b.ResetTimer()
	return benchWorld, benchVPs, benchTargets
}

// BenchmarkProbeICMP measures the census inner loop: one ICMP probe against
// a mixed anycast/unicast target population, cycling vantage points so the
// per-VP caches see realistic reuse.
func BenchmarkProbeICMP(b *testing.B) {
	w, vps, targets := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.ProbeICMP(vps[i%8], targets[i%len(targets)], uint64(i%4+1))
	}
}

// BenchmarkServingReplica measures BGP-like replica selection for anycast
// deployments (the catchment computation).
func BenchmarkServingReplica(b *testing.B) {
	w, vps, _ := benchSetup(b)
	deps := w.Deployments()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.servingReplica(vps[i%8], deps[i%len(deps)], uint64(i%4+1))
	}
}

// BenchmarkPathRTT measures the latency model for a fixed (VP, endpoint)
// pair across rounds: the propagation/stretch/access part is static, only
// the queueing jitter varies.
func BenchmarkPathRTT(b *testing.B) {
	w, vps, targets := benchSetup(b)
	d := w.Deployments()[0]
	r := d.Replicas[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.pathRTT(vps[i%8], uint64(d.Prefix), r.Loc, uint64(r.ID), targets[i%len(targets)], uint64(i%4+1))
	}
}

// BenchmarkProbeTCP measures the portscan probe path.
func BenchmarkProbeTCP(b *testing.B) {
	w, vps, targets := benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.ProbeTCP(vps[i%8], targets[i%len(targets)], 80, uint64(i%4+1))
	}
}
