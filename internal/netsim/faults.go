package netsim

import (
	"fmt"

	"anycastmap/internal/detrand"
)

// This file is the failure model of the measurement substrate. The paper's
// census survived a platform that degraded daily: PlanetLab nodes crashed
// or were rebooted mid-census, overdriven vantage points dropped replies in
// bursts (Sec. 3.5), and targets fell off the routed table for a round.
// FaultPlan reproduces those failure modes deterministically — every
// decision is a pure function of the plan seed and the identifying tuple —
// so a census run against a faulty world is exactly reproducible, and tests
// can predict which vantage points fail, where, and whether retrying helps.

// FaultConfig parametrizes a deterministic fault plan. All fractions are
// probabilities in [0, 1]; the zero value injects nothing.
type FaultConfig struct {
	// Seed drives every fault decision, independently of the world seed,
	// so the same world can be probed under different failure weather.
	Seed uint64

	// CrashFraction is the per-round fraction of vantage points that
	// crash partway through their probing run (the PlanetLab node that
	// reboots mid-census). A crashed VP's run aborts with VPCrashError.
	CrashFraction float64
	// CrashStickiness is the probability that a crashed VP stays down
	// for every retry attempt of the round (hardware failure rather than
	// a reboot): sticky crashes exhaust the retry budget and end in
	// quarantine.
	CrashStickiness float64
	// RecoveryAttempts is the number of failed attempts a non-sticky
	// crashed VP needs before it comes back; zero means 1 (the VP
	// answers its first retry).
	RecoveryAttempts int

	// FlapFraction is the per-round fraction of VPs whose connectivity
	// flaps: a contiguous window of the run in which every probe times
	// out (replies lost, probes unanswered — elevated timeouts, not
	// errors).
	FlapFraction float64
	// FlapWindow is the fraction of the run covered by a flap window;
	// zero means 0.2.
	FlapWindow float64

	// BurstLossFraction is the per-round fraction of VPs that suffer
	// bursty reply loss: within a window of half the run, each probe is
	// lost with BurstLossProb (the heterogeneous reply drops of
	// Sec. 3.5, without the rate coupling).
	BurstLossFraction float64
	// BurstLossProb is the per-probe loss probability inside a burst
	// window; zero means 0.5.
	BurstLossProb float64

	// TargetOutageFraction is the per-round fraction of /24s that are
	// transiently unreachable for the whole round (withdrawn routes,
	// maintenance); the next round reaches them again.
	TargetOutageFraction float64
}

// Validate reports the first problem with the configuration, or nil.
func (c FaultConfig) Validate() error {
	frac := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("netsim: fault %s %v outside [0,1]", name, v)
		}
		return nil
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"CrashFraction", c.CrashFraction},
		{"CrashStickiness", c.CrashStickiness},
		{"FlapFraction", c.FlapFraction},
		{"FlapWindow", c.FlapWindow},
		{"BurstLossFraction", c.BurstLossFraction},
		{"BurstLossProb", c.BurstLossProb},
		{"TargetOutageFraction", c.TargetOutageFraction},
	} {
		if err := frac(p.name, p.v); err != nil {
			return err
		}
	}
	if c.RecoveryAttempts < 0 {
		return fmt.Errorf("netsim: fault RecoveryAttempts %d negative", c.RecoveryAttempts)
	}
	return nil
}

// Hash tags keeping fault draws independent of each other and of every
// other consumer of detrand.
const (
	tagCrash   = 0xFA01
	tagCrashAt = 0xFA02
	tagSticky  = 0xFA03
	tagFlap    = 0xFA04
	tagFlapAt  = 0xFA05
	tagBurst   = 0xFA06
	tagBurstAt = 0xFA07
	tagBurstP  = 0xFA08
	tagOutage  = 0xFA09
)

// FaultPlan is an immutable, deterministic schedule of failures. A nil
// plan injects nothing; every method is safe on a nil receiver, so callers
// need no guards. Plans are stateless and safe for concurrent use.
type FaultPlan struct {
	cfg FaultConfig
}

// NewFaultPlan validates the configuration and builds a plan.
func NewFaultPlan(cfg FaultConfig) (*FaultPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RecoveryAttempts == 0 {
		cfg.RecoveryAttempts = 1
	}
	return &FaultPlan{cfg: cfg}, nil
}

// Config returns the plan's configuration.
func (p *FaultPlan) Config() FaultConfig { return p.cfg }

func (p *FaultPlan) flapWindow() float64 {
	if p.cfg.FlapWindow > 0 {
		return p.cfg.FlapWindow
	}
	return 0.2
}

func (p *FaultPlan) burstProb() float64 {
	if p.cfg.BurstLossProb > 0 {
		return p.cfg.BurstLossProb
	}
	return 0.5
}

// Crashes reports whether the VP is scheduled to crash during the given
// round at all (on its first attempt). Sticky tells whether retrying can
// ever help within the round.
func (p *FaultPlan) Crashes(vpID int, round uint64) (crashes, sticky bool) {
	if p == nil || p.cfg.CrashFraction <= 0 {
		return false, false
	}
	if detrand.UnitFloat(p.cfg.Seed, uint64(vpID), round, tagCrash) >= p.cfg.CrashFraction {
		return false, false
	}
	return true, detrand.UnitFloat(p.cfg.Seed, uint64(vpID), round, tagSticky) < p.cfg.CrashStickiness
}

// CrashIndex returns the probe index at which the VP's run aborts during
// the given (round, attempt), and whether it aborts at all. Non-sticky
// crashed VPs recover once attempt reaches RecoveryAttempts; sticky ones
// crash on every attempt (at varying points). n is the run length.
func (p *FaultPlan) CrashIndex(vpID int, round uint64, attempt int, n uint64) (uint64, bool) {
	if p == nil || n == 0 {
		return 0, false
	}
	crashes, sticky := p.Crashes(vpID, round)
	if !crashes {
		return 0, false
	}
	if !sticky && attempt >= p.cfg.RecoveryAttempts {
		return 0, false
	}
	// The crash lands somewhere in the middle 90% of the run, at a point
	// that differs between attempts: a retried VP gets further (or less
	// far) before dying again.
	frac := 0.05 + 0.9*detrand.UnitFloat(p.cfg.Seed, uint64(vpID), round, uint64(attempt), tagCrashAt)
	at := uint64(frac * float64(n))
	if at == 0 {
		at = 1
	}
	return at, true
}

// ReplyLost reports whether probe i of n from the VP is silently lost to a
// flap window or a loss burst during the round. Lost probes are sent but
// unanswered: the prober sees an elevated timeout rate, not an error.
// Windows are stable across attempts — re-probing into a flap loses the
// probe again.
func (p *FaultPlan) ReplyLost(vpID int, round uint64, i, n uint64) bool {
	if p == nil || n == 0 {
		return false
	}
	if p.cfg.FlapFraction > 0 &&
		detrand.UnitFloat(p.cfg.Seed, uint64(vpID), round, tagFlap) < p.cfg.FlapFraction {
		w := uint64(p.flapWindow() * float64(n))
		start := uint64(detrand.UnitFloat(p.cfg.Seed, uint64(vpID), round, tagFlapAt) * float64(n-w))
		if i >= start && i < start+w {
			return true
		}
	}
	if p.cfg.BurstLossFraction > 0 &&
		detrand.UnitFloat(p.cfg.Seed, uint64(vpID), round, tagBurst) < p.cfg.BurstLossFraction {
		w := n / 2
		start := uint64(detrand.UnitFloat(p.cfg.Seed, uint64(vpID), round, tagBurstAt) * float64(n-w))
		if i >= start && i < start+w &&
			detrand.UnitFloat(p.cfg.Seed, uint64(vpID), round, i, tagBurstP) < p.burstProb() {
			return true
		}
	}
	return false
}

// TargetUnreachable reports whether the /24 is down for the whole round.
func (p *FaultPlan) TargetUnreachable(pfx Prefix24, round uint64) bool {
	if p == nil || p.cfg.TargetOutageFraction <= 0 {
		return false
	}
	return detrand.UnitFloat(p.cfg.Seed, uint64(pfx), round, tagOutage) < p.cfg.TargetOutageFraction
}

// VPCrashError is the mid-run abort of a crashed vantage point: the
// injected equivalent of a PlanetLab node dying under the prober. It is a
// transient infrastructure failure, so census retry logic treats it as
// retryable.
type VPCrashError struct {
	VP         string
	Round      uint64
	Attempt    int
	ProbeIndex uint64
}

// Error implements error.
func (e *VPCrashError) Error() string {
	return fmt.Sprintf("netsim: VP %s crashed at probe %d (round %d, attempt %d)",
		e.VP, e.ProbeIndex, e.Round, e.Attempt)
}
