package netsim

import (
	"testing"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/geo"
	"anycastmap/internal/platform"
)

func responsiveUnicast(t *testing.T, w *World, vp platform.VP) IP {
	t.Helper()
	for _, p := range w.unicastPrefix {
		rep, _ := w.Representative(p)
		if w.ProbeICMP(vp, rep, 0).OK() && w.Traceroute(vp, rep, 0) != nil {
			return rep
		}
	}
	t.Fatal("no responsive unicast target")
	return 0
}

func TestTracerouteShape(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	target := responsiveUnicast(t, w, vp)
	hops := w.Traceroute(vp, target, 0)
	if len(hops) < 3 || len(hops) > 13 {
		t.Fatalf("path has %d hops", len(hops))
	}
	// TTLs increase by one, RTTs are nondecreasing, terminus is the target.
	var prev time.Duration
	for i, h := range hops {
		if h.TTL != i+1 {
			t.Fatalf("hop %d has TTL %d", i, h.TTL)
		}
		if h.RTT < prev {
			t.Fatalf("RTT decreased at hop %d: %v < %v", i, h.RTT, prev)
		}
		prev = h.RTT
	}
	if hops[len(hops)-1].Router != target {
		t.Error("last hop is not the target")
	}
	// Intermediate routers live in the benchmarking range.
	for _, h := range hops[:len(hops)-1] {
		if b := byte(uint32(h.Router) >> 24); b != 198 {
			t.Errorf("router %v outside 198.18.0.0/15", h.Router)
		}
	}
}

func TestTracerouteStableAndShared(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	target := responsiveUnicast(t, w, vp)
	a := w.Traceroute(vp, target, 0)
	b := w.Traceroute(vp, target, 0)
	shared, minLen := PathDivergence(a, b)
	if shared != minLen || len(a) != len(b) {
		t.Error("identical traceroutes diverged")
	}
}

func TestTracerouteUnresponsive(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	if w.Traceroute(vp, IP(42), 0) != nil {
		t.Error("traceroute answered outside the allocated space")
	}
}

func TestTracerouteRevealsHijack(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	target := responsiveUnicast(t, w, vp)
	baseline := w.Traceroute(vp, target, 0)

	rogue := cities.Default().MustByName("Tokyo", "JP").Loc
	if geo.DistanceKm(vp.Loc, rogue) < 3000 {
		rogue = cities.Default().MustByName("Sao Paulo", "BR").Loc
	}
	if err := w.InjectHijack(target.Prefix(), rogue, 1.0); err != nil {
		t.Fatal(err)
	}
	defer w.ClearHijack(target.Prefix())

	after := w.Traceroute(vp, target, 0)
	shared, minLen := PathDivergence(baseline, after)
	if shared >= minLen {
		t.Fatalf("hijacked path identical to baseline (%d shared of %d)", shared, minLen)
	}
	// The terminus RTT reflects the longer detour to the rogue site (the
	// endpoint moved, so the propagation component changed).
	if after[len(after)-1].RTT == baseline[len(baseline)-1].RTT {
		t.Error("hijacked path has identical end-to-end RTT")
	}
}

func TestPathDivergenceEdgeCases(t *testing.T) {
	if s, m := PathDivergence(nil, nil); s != 0 || m != 0 {
		t.Error("empty paths should share nothing")
	}
	a := []Hop{{TTL: 1, Router: 1}, {TTL: 2, Router: 2}}
	if s, m := PathDivergence(a, a[:1]); s != 1 || m != 1 {
		t.Errorf("prefix paths: shared=%d min=%d", s, m)
	}
}

func BenchmarkTraceroute(b *testing.B) {
	w := New(testConfig())
	vp := platform.PlanetLab(cities.Default()).VPs()[0]
	target, _ := w.Representative(w.Deployments()[0].Prefix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Traceroute(vp, target, 0)
	}
}
