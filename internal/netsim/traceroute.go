package netsim

import (
	"math"
	"time"

	"anycastmap/internal/detrand"
	"anycastmap/internal/geo"
	"anycastmap/internal/platform"
)

// Hop is one row of a traceroute: the router that answered at a given TTL.
type Hop struct {
	TTL    int
	Router IP
	RTT    time.Duration
}

// Traceroute runs a TTL-scoped path measurement from the vantage point
// toward the target (Sec. 5: the cross-check for hijack alarms). The path
// follows the great circle toward whichever endpoint actually serves the
// vantage point - the anycast replica BGP selects, the unicast host, or,
// for hijacked prefixes, the hijacker. Routers are keyed on geographic
// corridor cells, so two paths through the same region traverse the same
// routers and path divergence is observable, exactly what the hijack
// cross-check needs. It returns nil when the target does not answer.
func (w *World) Traceroute(vp platform.VP, target IP, round uint64) []Hop {
	i, ok := w.byPrefix[target.Prefix()]
	if !ok {
		return nil
	}
	var endpoint geo.Coord
	switch {
	case i >= 0:
		d := w.deployments[i]
		if !w.HostAlive(target) {
			return nil
		}
		endpoint = w.servingReplica(vp, d, round).Loc
	default:
		h := w.unicast[-(i + 1)]
		if rep, _ := w.Representative(target.Prefix()); rep != target || h.class != classResponsive {
			return nil
		}
		endpoint = w.hijackedLoc(vp, target.Prefix(), h.loc)
	}

	total := w.pathRTT(vp, uint64(target.Prefix()), endpoint, 0, target, round)
	dist := geo.DistanceKm(vp.Loc, endpoint)

	// One router roughly every 1,200 km, at least two (access + border),
	// at most twelve - a plausible AS-path-times-IGP hop count.
	nHops := 2 + int(dist/1200)
	if nHops > 12 {
		nHops = 12
	}

	hops := make([]Hop, 0, nHops+1)
	for h := 1; h <= nHops; h++ {
		frac := float64(h) / float64(nHops+1)
		loc := geo.Interpolate(vp.Loc, endpoint, frac)
		hops = append(hops, Hop{
			TTL:    h,
			Router: routerAt(w.cfg.Seed, loc),
			RTT:    time.Duration(float64(total) * math.Pow(frac, 0.9)),
		})
	}
	// The final hop is the target itself.
	hops = append(hops, Hop{TTL: nHops + 1, Router: target, RTT: total})
	return hops
}

// routerAt derives a stable router address for a 3-degree corridor cell.
// Routers live in 198.18.0.0/15 (the benchmarking range), far from the
// census's allocated space.
func routerAt(seed uint64, loc geo.Coord) IP {
	cellLat := int(math.Floor((loc.Lat + 90) / 3))
	cellLon := int(math.Floor((loc.Lon + 180) / 3))
	h := detrand.Hash64(seed, uint64(cellLat), uint64(cellLon), 0x7207)
	return IP(198<<24 | 18<<16 | uint32(h)&0x1FFFF)
}

// PathDivergence compares two traceroutes and returns the number of shared
// leading routers and the total length of the shorter path. A hijacked
// prefix shows a short shared prefix followed by a completely different
// tail.
func PathDivergence(a, b []Hop) (shared, minLen int) {
	minLen = len(a)
	if len(b) < minLen {
		minLen = len(b)
	}
	for i := 0; i < minLen; i++ {
		if a[i].Router != b[i].Router {
			break
		}
		shared++
	}
	return shared, minLen
}
