package netsim

import (
	"math"
	"sync"

	"anycastmap/internal/detrand"
	"anycastmap/internal/geo"
	"anycastmap/internal/platform"
)

// This file is the memoization layer under the probe hot path. A census
// sends millions of probes, but almost everything a probe computes is a
// stable property of the (vantage point, prefix) pair: the ranked nearest
// replicas of a deployment, the stable catchment draw (0xB69), the
// propagation+stretch+access base latency, and the per-VP access constant
// (0xB71). Only the per-round draws - loss, catchment flap, queueing
// jitter - actually vary probe to probe. The session caches the stable
// part per vantage point and leaves the per-round draws in the inner loop.
// Per-unicast-/24 state (the RTT base) is NOT cached per vantage point -
// at the paper's 10.6M /24s and ~300 VPs that would be tens of gigabytes -
// but per (VP, span) work unit: see ProbeSpanSession.
//
// Determinism is the contract: every cached value is the output of the
// exact detrand/geo expression the uncached code evaluates, so replies are
// byte-identical with the cache on or off (Config.DisableProbeCache and
// TestSessionCacheBitIdentical enforce this). That works because detrand
// draws are pure functions of their key tuple - skipping or reordering
// draws cannot influence other draws - and because the cached float
// expressions are reassociated only along bitwise-exact lines.

// sessionKey identifies a vantage point. The ID alone is not enough:
// PlanetLab and RIPE Atlas assign overlapping ID ranges, so the location
// disambiguates. LoadFactor is deliberately absent - nothing cached here
// depends on it (jitter, the only load-dependent term, stays live).
type sessionKey struct {
	id       int
	lat, lon float64
}

// candSet is the cached catchment of one (vantage point, deployment) pair:
// the three nearest replicas in rank order and the probe-invariant part of
// the RTT toward each.
type candSet struct {
	baseMs [3]float64 // rttBaseMs toward idx[k]; meaningful where idx[k] >= 0
	idx    [3]int32   // k-th nearest replica index into d.Replicas, -1 if absent
	u      float64    // stable base-selection draw (0xB69)
}

// vpSession holds everything probe-invariant about one vantage point. It
// deliberately carries no per-unicast-/24 state: unicast RTT bases are
// resolved per (VP, span) by ProbeSpanSession, so session memory stays
// O(deployments) per vantage point at any world size.
type vpSession struct {
	once     sync.Once
	vpAccess float64   // hoisted per-VP access term (0xB71)
	cands    []candSet // indexed by Deployment.idx
}

// sessionTable maps sessionKey -> *vpSession. It lives behind a pointer on
// World so WithFaults views share one table: fault plans never change RTT
// draws, only whether a reply arrives.
type sessionTable struct {
	m sync.Map
}

// session returns the vantage point's memoized session, building it on
// first use, or nil when the cache is disabled (callers then take the
// uncached code path, which is the behavioral reference).
func (w *World) session(vp platform.VP) *vpSession {
	if w.sessions == nil || w.cfg.DisableProbeCache {
		return nil
	}
	key := sessionKey{id: vp.ID, lat: vp.Loc.Lat, lon: vp.Loc.Lon}
	v, ok := w.sessions.m.Load(key)
	if !ok {
		v, _ = w.sessions.m.LoadOrStore(key, new(vpSession))
	}
	s := v.(*vpSession)
	s.once.Do(func() { w.buildSession(s, vp) })
	return s
}

// buildSession ranks every deployment's replicas by distance from the
// vantage point and caches the RTT bases. Replica locations are drawn per
// (AS, replica ID) and shared across all /24s of the AS, so distances are
// deduplicated at the AS level: one haversine per (VP, AS replica) instead
// of one per (VP, prefix replica) - a 4-5x reduction in trigonometry.
func (w *World) buildSession(s *vpSession, vp platform.VP) {
	s.vpAccess = w.vpAccessMs(vp)
	s.cands = make([]candSet, len(w.deployments))

	asDist := make(map[int][]float64, len(w.anycastByASN))
	for di, d := range w.deployments {
		dists := asDist[d.ASN]
		for _, r := range d.Replicas {
			for r.ID >= len(dists) {
				dists = append(dists, -1)
			}
			if dists[r.ID] < 0 {
				dists[r.ID] = geo.DistanceKm(vp.Loc, r.Loc)
			}
		}
		asDist[d.ASN] = dists

		// The same strict-< cascade servingReplicaSlow runs, over the
		// same DistanceKm outputs, so the ranking is bit-identical.
		type cand struct {
			idx  int32
			dist float64
		}
		best := [3]cand{{-1, math.MaxFloat64}, {-1, math.MaxFloat64}, {-1, math.MaxFloat64}}
		for i := range d.Replicas {
			dist := dists[d.Replicas[i].ID]
			switch {
			case dist < best[0].dist:
				best[2], best[1], best[0] = best[1], best[0], cand{int32(i), dist}
			case dist < best[1].dist:
				best[2], best[1] = best[1], cand{int32(i), dist}
			case dist < best[2].dist:
				best[2] = cand{int32(i), dist}
			}
		}

		c := &s.cands[di]
		c.u = detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(d.Prefix), 0xB69)
		for k := 0; k < 3; k++ {
			c.idx[k] = best[k].idx
			if best[k].idx >= 0 {
				r := d.Replicas[best[k].idx]
				c.baseMs[k] = w.rttBaseMsDist(vp, uint64(d.Prefix), best[k].dist, uint64(r.ID), s.vpAccess)
			}
		}
	}
}

// servingRank picks which cached candidate answers this round. It mirrors
// the selection thresholds of servingReplicaSlow exactly; only the ranking
// and the stable 0xB69 draw come from the cache.
func (w *World) servingRank(c *candSet, vp platform.VP, d *Deployment, round uint64) int {
	if c.idx[1] < 0 {
		return 0 // single-replica deployment: no draws, like the slow path
	}
	u := c.u
	if detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(d.Prefix), round, 0xF1A9) < 0.12 {
		// Catchment flap: this round routes to a different candidate.
		u = detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(d.Prefix), round, 0xB6A)
	}
	switch {
	case u < 0.70:
		return 0
	case u < 0.90 || c.idx[2] < 0:
		return 1
	default:
		return 2
	}
}

// unicastBaseMs is the RTT base toward the unicast host's home location:
// the single expression every path — ad-hoc probes, TCP probes and the
// span resolver — evaluates, so replies stay bit-identical across them.
func (w *World) unicastBaseMs(s *vpSession, vp platform.VP, h *unicastHost, p Prefix24) float64 {
	return w.rttBaseMsDist(vp, uint64(p), geo.DistanceKm(vp.Loc, h.loc), 0, s.vpAccess)
}

// Probe is a vantage-point-bound probing handle: it resolves the VP's
// session once so per-probe work skips the session lookup entirely. The
// prober's inner loop uses it; the World.Probe* methods remain for callers
// probing ad hoc.
type Probe struct {
	w  *World
	vp platform.VP
	s  *vpSession
}

// ProbeSession binds a vantage point to the world for repeated probing.
func (w *World) ProbeSession(vp platform.VP) Probe {
	return Probe{w: w, vp: vp, s: w.session(vp)}
}

// ICMP is ProbeICMP through the bound session.
func (p Probe) ICMP(target IP, round uint64) Reply {
	return p.w.probeICMP(p.s, p.vp, target, round)
}

// TCP is ProbeTCP through the bound session.
func (p Probe) TCP(target IP, port uint16, round uint64) Reply {
	return p.w.probeTCP(p.s, p.vp, target, port, round)
}

// DNSUDP is ProbeDNSUDP through the bound session.
func (p Probe) DNSUDP(target IP, round uint64) Reply {
	return p.w.probeDNSUDP(p.s, p.vp, target, round)
}

// Span classification codes. Everything a probe's outcome depends on that
// is NOT a per-round draw is a stable property of the (VP, target) pair,
// so a span resolver can decide it once per work unit and leave only the
// fault check, the loss draw and the RTT jitter in the inner loop.
const (
	// spanTimeout marks targets that time out structurally in every
	// round: unallocated prefixes, dead anycast host addresses, unicast
	// non-representatives and silent hosts. probeICMP returns before any
	// per-round draw for all of them, so no draw is skipped unsafely.
	spanTimeout uint8 = iota
	// spanAnycast targets answer from a deployment; payload holds the
	// deployments index.
	spanAnycast
	// spanUniEcho..spanUniNet are unicast hosts that answer with the
	// corresponding reply kind; payload holds the RTT base as
	// math.Float64bits.
	spanUniEcho
	spanUniAdmin
	spanUniHost
	spanUniNet
	// spanSlow delegates to the full probeICMP path: hijacked prefixes,
	// whose effective endpoint depends on a live per-VP catchment draw.
	spanSlow
)

// SpanSession is a (vantage point, target span) probing unit: two flat,
// pointer-free slabs — a classification byte and a 64-bit payload per
// target — resolved once per work unit. The per-probe path then touches
// only the slabs and the per-round draws: no map lookups, no sync.Map,
// no allocation, and a working set of ~9 bytes per span target instead of
// the whole world's prefix index. That keeps the probe rate flat from
// 20k-target test runs to full 6.6M-target censuses, where the global
// per-probe map walk used to cost a DRAM miss per probe.
type SpanSession struct {
	w       *World
	vp      platform.VP
	s       *vpSession
	targets []IP
	cls     []uint8
	payload []uint64
	// slow forces every probe down the uncached reference path
	// (Config.DisableProbeCache): the span resolver is part of the cache
	// and must vanish with it.
	slow bool
}

// ProbeSpanSession resolves a probing session covering exactly the given
// target span (callers working in [lo, hi) units pass targets[lo:hi]).
// Resolution is O(span): census spans are ascending in address order, so
// the resolver walks the sorted unicast prefix index with a cursor and
// falls back to one binary search per order break and one map lookup per
// non-unicast target (~0.03% of a census span). Replies through the span
// are bit-identical to ProbeICMP's — the determinism tests compare the
// two — because every cached value is the output of the exact expression
// the reference path evaluates.
func (w *World) ProbeSpanSession(vp platform.VP, targets []IP) SpanSession {
	s := w.session(vp)
	ss := SpanSession{w: w, vp: vp, s: s, targets: targets}
	if s == nil {
		ss.slow = true
		return ss
	}
	ss.cls = make([]uint8, len(targets))
	ss.payload = make([]uint64, len(targets))
	hijacksLive := len(w.hijacks) > 0
	nUni := len(w.unicastPrefix)
	cursor := -1
	prev := Prefix24(0)
	for i, target := range targets {
		p := target.Prefix()
		// Reposition on the first target and on any order break (a span
		// of census targets breaks order never; ad-hoc spans may).
		if cursor < 0 || p <= prev {
			lo, hi := 0, nUni
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if w.unicastPrefix[mid] < p {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			cursor = lo
		} else {
			for cursor < nUni && w.unicastPrefix[cursor] < p {
				cursor++
			}
		}
		prev = p
		if cursor < nUni && w.unicastPrefix[cursor] == p {
			h := &w.unicast[cursor]
			switch {
			case target != h.rep || h.class == classSilent:
				ss.cls[i] = spanTimeout
			case hijacksLive && w.isHijacked(p):
				ss.cls[i] = spanSlow
			default:
				switch h.class {
				case classAdminFiltered:
					ss.cls[i] = spanUniAdmin
				case classHostProhibited:
					ss.cls[i] = spanUniHost
				case classNetProhibited:
					ss.cls[i] = spanUniNet
				default:
					ss.cls[i] = spanUniEcho
				}
				ss.payload[i] = math.Float64bits(w.unicastBaseMs(s, vp, h, p))
			}
			continue
		}
		di, ok := w.byPrefix[p]
		if !ok {
			ss.cls[i] = spanTimeout
			continue
		}
		d := w.deployments[di]
		if target != d.rep && detrand.UnitFloat(w.cfg.Seed, uint64(target), 0xA11E) >= d.Density {
			ss.cls[i] = spanTimeout
			continue
		}
		ss.cls[i] = spanAnycast
		ss.payload[i] = uint64(di)
	}
	return ss
}

// isHijacked reports whether a live hijack covers the prefix.
func (w *World) isHijacked(p Prefix24) bool {
	_, ok := w.hijacks[p]
	return ok
}

// ICMP probes the i-th span target in the given round. The fast path
// reads the two slab cells and pays only the per-round draws: target
// fault check, transient loss, catchment flap (anycast) and queueing
// jitter.
func (ss *SpanSession) ICMP(i int, round uint64) Reply {
	target := ss.targets[i]
	if ss.slow {
		return ss.w.probeICMP(ss.s, ss.vp, target, round)
	}
	cls := ss.cls[i]
	if cls == spanTimeout {
		return Reply{Kind: ReplyTimeout}
	}
	if cls == spanSlow {
		return ss.w.probeICMP(ss.s, ss.vp, target, round)
	}
	w := ss.w
	p := target.Prefix()
	if w.faults.TargetUnreachable(p, round) {
		return Reply{Kind: ReplyTimeout}
	}
	if detrand.UnitFloat(w.cfg.Seed, uint64(ss.vp.ID), uint64(target), round, 0xC0FF) < 0.025 {
		return Reply{Kind: ReplyTimeout}
	}
	if cls == spanAnycast {
		d := w.deployments[ss.payload[i]]
		c := &ss.s.cands[d.idx]
		return Reply{Kind: ReplyEcho, RTT: w.rttFromBaseMs(c.baseMs[w.servingRank(c, ss.vp, d, round)], ss.vp, target, round)}
	}
	rtt := w.rttFromBaseMs(math.Float64frombits(ss.payload[i]), ss.vp, target, round)
	switch cls {
	case spanUniAdmin:
		return Reply{Kind: ReplyAdminFiltered, RTT: rtt}
	case spanUniHost:
		return Reply{Kind: ReplyHostProhibited, RTT: rtt}
	case spanUniNet:
		return Reply{Kind: ReplyNetProhibited, RTT: rtt}
	}
	return Reply{Kind: ReplyEcho, RTT: rtt}
}
