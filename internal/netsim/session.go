package netsim

import (
	"math"
	"sync"
	"sync/atomic"

	"anycastmap/internal/detrand"
	"anycastmap/internal/geo"
	"anycastmap/internal/platform"
)

// This file is the memoization layer under the probe hot path. A census
// sends millions of probes, but almost everything a probe computes is a
// stable property of the (vantage point, prefix) pair: the ranked nearest
// replicas of a deployment, the stable catchment draw (0xB69), the
// propagation+stretch+access base latency, and the per-VP access constant
// (0xB71). Only the per-round draws - loss, catchment flap, queueing
// jitter - actually vary probe to probe. The session caches the stable
// part per vantage point and leaves the per-round draws in the inner loop.
//
// Determinism is the contract: every cached value is the output of the
// exact detrand/geo expression the uncached code evaluates, so replies are
// byte-identical with the cache on or off (Config.DisableProbeCache and
// TestSessionCacheBitIdentical enforce this). That works because detrand
// draws are pure functions of their key tuple - skipping or reordering
// draws cannot influence other draws - and because the cached float
// expressions are reassociated only along bitwise-exact lines.

// sessionKey identifies a vantage point. The ID alone is not enough:
// PlanetLab and RIPE Atlas assign overlapping ID ranges, so the location
// disambiguates. LoadFactor is deliberately absent - nothing cached here
// depends on it (jitter, the only load-dependent term, stays live).
type sessionKey struct {
	id       int
	lat, lon float64
}

// candSet is the cached catchment of one (vantage point, deployment) pair:
// the three nearest replicas in rank order and the probe-invariant part of
// the RTT toward each.
type candSet struct {
	baseMs [3]float64 // rttBaseMs toward idx[k]; meaningful where idx[k] >= 0
	idx    [3]int32   // k-th nearest replica index into d.Replicas, -1 if absent
	u      float64    // stable base-selection draw (0xB69)
}

// vpSession holds everything probe-invariant about one vantage point.
type vpSession struct {
	once     sync.Once
	vpAccess float64   // hoisted per-VP access term (0xB71)
	cands    []candSet // indexed by Deployment.idx
	// uniBase memoizes the unicast RTT base per unicast index as
	// math.Float64bits, filled lazily on first probe; 0 means unset (a
	// real base is always > 0.3 ms). Writes are idempotent - every
	// writer stores the same bits - so racing probes need only atomicity.
	// nil when the world exceeds Config.UniBaseCacheCap: bases are then
	// recomputed per probe so session memory stays O(deployments), not
	// O(unicast /24s), per vantage point.
	uniBase []uint64
}

// sessionTable maps sessionKey -> *vpSession. It lives behind a pointer on
// World so WithFaults views share one table: fault plans never change RTT
// draws, only whether a reply arrives.
type sessionTable struct {
	m sync.Map
}

// session returns the vantage point's memoized session, building it on
// first use, or nil when the cache is disabled (callers then take the
// uncached code path, which is the behavioral reference).
func (w *World) session(vp platform.VP) *vpSession {
	if w.sessions == nil || w.cfg.DisableProbeCache {
		return nil
	}
	key := sessionKey{id: vp.ID, lat: vp.Loc.Lat, lon: vp.Loc.Lon}
	v, ok := w.sessions.m.Load(key)
	if !ok {
		v, _ = w.sessions.m.LoadOrStore(key, new(vpSession))
	}
	s := v.(*vpSession)
	s.once.Do(func() { w.buildSession(s, vp) })
	return s
}

// buildSession ranks every deployment's replicas by distance from the
// vantage point and caches the RTT bases. Replica locations are drawn per
// (AS, replica ID) and shared across all /24s of the AS, so distances are
// deduplicated at the AS level: one haversine per (VP, AS replica) instead
// of one per (VP, prefix replica) - a 4-5x reduction in trigonometry.
func (w *World) buildSession(s *vpSession, vp platform.VP) {
	s.vpAccess = w.vpAccessMs(vp)
	s.cands = make([]candSet, len(w.deployments))
	if len(w.unicast) <= w.cfg.uniBaseCacheCap() {
		s.uniBase = make([]uint64, len(w.unicast))
	}

	asDist := make(map[int][]float64, len(w.anycastByASN))
	for di, d := range w.deployments {
		dists := asDist[d.ASN]
		for _, r := range d.Replicas {
			for r.ID >= len(dists) {
				dists = append(dists, -1)
			}
			if dists[r.ID] < 0 {
				dists[r.ID] = geo.DistanceKm(vp.Loc, r.Loc)
			}
		}
		asDist[d.ASN] = dists

		// The same strict-< cascade servingReplicaSlow runs, over the
		// same DistanceKm outputs, so the ranking is bit-identical.
		type cand struct {
			idx  int32
			dist float64
		}
		best := [3]cand{{-1, math.MaxFloat64}, {-1, math.MaxFloat64}, {-1, math.MaxFloat64}}
		for i := range d.Replicas {
			dist := dists[d.Replicas[i].ID]
			switch {
			case dist < best[0].dist:
				best[2], best[1], best[0] = best[1], best[0], cand{int32(i), dist}
			case dist < best[1].dist:
				best[2], best[1] = best[1], cand{int32(i), dist}
			case dist < best[2].dist:
				best[2] = cand{int32(i), dist}
			}
		}

		c := &s.cands[di]
		c.u = detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(d.Prefix), 0xB69)
		for k := 0; k < 3; k++ {
			c.idx[k] = best[k].idx
			if best[k].idx >= 0 {
				r := d.Replicas[best[k].idx]
				c.baseMs[k] = w.rttBaseMsDist(vp, uint64(d.Prefix), best[k].dist, uint64(r.ID), s.vpAccess)
			}
		}
	}
}

// servingRank picks which cached candidate answers this round. It mirrors
// the selection thresholds of servingReplicaSlow exactly; only the ranking
// and the stable 0xB69 draw come from the cache.
func (w *World) servingRank(c *candSet, vp platform.VP, d *Deployment, round uint64) int {
	if c.idx[1] < 0 {
		return 0 // single-replica deployment: no draws, like the slow path
	}
	u := c.u
	if detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(d.Prefix), round, 0xF1A9) < 0.12 {
		// Catchment flap: this round routes to a different candidate.
		u = detrand.UnitFloat(w.cfg.Seed, uint64(vp.ID), uint64(d.Prefix), round, 0xB6A)
	}
	switch {
	case u < 0.70:
		return 0
	case u < 0.90 || c.idx[2] < 0:
		return 1
	default:
		return 2
	}
}

// unicastBaseMs returns the memoized RTT base toward the unicast host's
// home location, computing and publishing it on first use. Above the
// UniBaseCacheCap there is no memo and every call recomputes — the exact
// same expression, so replies stay bit-identical either way.
func (w *World) unicastBaseMs(s *vpSession, vp platform.VP, uidx int32, h *unicastHost, p Prefix24) float64 {
	if s.uniBase == nil {
		return w.rttBaseMsDist(vp, uint64(p), geo.DistanceKm(vp.Loc, h.loc), 0, s.vpAccess)
	}
	if bits := atomic.LoadUint64(&s.uniBase[uidx]); bits != 0 {
		return math.Float64frombits(bits)
	}
	base := w.rttBaseMsDist(vp, uint64(p), geo.DistanceKm(vp.Loc, h.loc), 0, s.vpAccess)
	atomic.StoreUint64(&s.uniBase[uidx], math.Float64bits(base))
	return base
}

// Probe is a vantage-point-bound probing handle: it resolves the VP's
// session once so per-probe work skips the session lookup entirely. The
// prober's inner loop uses it; the World.Probe* methods remain for callers
// probing ad hoc.
type Probe struct {
	w  *World
	vp platform.VP
	s  *vpSession
}

// ProbeSession binds a vantage point to the world for repeated probing.
func (w *World) ProbeSession(vp platform.VP) Probe {
	return Probe{w: w, vp: vp, s: w.session(vp)}
}

// ICMP is ProbeICMP through the bound session.
func (p Probe) ICMP(target IP, round uint64) Reply {
	return p.w.probeICMP(p.s, p.vp, target, round)
}

// TCP is ProbeTCP through the bound session.
func (p Probe) TCP(target IP, port uint16, round uint64) Reply {
	return p.w.probeTCP(p.s, p.vp, target, port, round)
}

// DNSUDP is ProbeDNSUDP through the bound session.
func (p Probe) DNSUDP(target IP, round uint64) Reply {
	return p.w.probeDNSUDP(p.s, p.vp, target, round)
}
