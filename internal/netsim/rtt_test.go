package netsim

import (
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/geo"
	"anycastmap/internal/platform"
)

func TestProbeICMPPhysicalInvariant(t *testing.T) {
	// Every echo RTT must be at least the fiber propagation RTT to the
	// answering endpoint: the detection technique is sound only if disks
	// built from RTTs contain the true replica.
	w := testWorld(t)
	pl := platform.PlanetLab(cities.Default())
	for _, vp := range pl.VPs()[:20] {
		for _, d := range w.Deployments()[:50] {
			rep, _ := w.ServingReplica(vp, d.Prefix, 0)
			target, _ := w.Representative(d.Prefix)
			reply := w.ProbeICMP(vp, target, 0)
			if !reply.OK() {
				continue // transient loss
			}
			if reply.RTT < geo.PropagationRTT(vp.Loc, rep.Loc) {
				t.Fatalf("RTT %v beats light in fiber to %v (%v)",
					reply.RTT, rep.City, geo.PropagationRTT(vp.Loc, rep.Loc))
			}
			disk := geo.DiskFromRTT(vp.Loc, reply.RTT)
			if !disk.Contains(rep.Loc) {
				t.Fatalf("measurement disk %v does not contain serving replica at %v", disk, rep.Loc)
			}
		}
	}
}

func TestProbeDeterministicPerRound(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	target, _ := w.Representative(w.Deployments()[3].Prefix)
	a := w.ProbeICMP(vp, target, 1)
	b := w.ProbeICMP(vp, target, 1)
	if a != b {
		t.Error("same probe in the same round should be identical")
	}
	c := w.ProbeICMP(vp, target, 2)
	if a.RTT == c.RTT {
		t.Error("different rounds should see different jitter (almost surely)")
	}
}

func TestServingReplicaStable(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	d := w.Deployments()[0]
	r1, ok := w.ServingReplica(vp, d.Prefix, 0)
	if !ok {
		t.Fatal("no serving replica for a deployment")
	}
	r2, _ := w.ServingReplica(vp, d.Prefix, 0)
	if r1.ID != r2.ID {
		t.Error("BGP selection must be stable per (vantage, prefix, round)")
	}
	if _, ok := w.ServingReplica(vp, w.unicastPrefix[0], 0); ok {
		t.Error("unicast prefix should have no serving replica")
	}
}

func TestServingReplicaMostlyNearest(t *testing.T) {
	// BGP usually picks the geographically nearest replica, but not
	// always (the paper's premise that proximity is only loose).
	w := testWorld(t)
	pl := platform.PlanetLab(cities.Default())
	nearest, total := 0, 0
	for _, vp := range pl.VPs() {
		for _, d := range w.Deployments()[:30] {
			r, _ := w.ServingReplica(vp, d.Prefix, 0)
			best := d.Replicas[0]
			bd := geo.DistanceKm(vp.Loc, best.Loc)
			for _, cand := range d.Replicas[1:] {
				if dd := geo.DistanceKm(vp.Loc, cand.Loc); dd < bd {
					best, bd = cand, dd
				}
			}
			if r.ID == best.ID {
				nearest++
			}
			total++
		}
	}
	frac := float64(nearest) / float64(total)
	if frac < 0.55 || frac > 0.85 {
		t.Errorf("nearest-replica fraction = %.2f, want ~0.70", frac)
	}
}

func TestUnicastReplies(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	var echo, timeout, grey int
	for i, p := range w.unicastPrefix {
		if i >= 2000 {
			break
		}
		rep, _ := w.Representative(p)
		reply := w.ProbeICMP(vp, rep, 0)
		switch {
		case reply.Kind == ReplyEcho:
			echo++
		case reply.Kind == ReplyTimeout:
			timeout++
		case reply.Kind.Greylistable():
			grey++
			if reply.RTT <= 0 {
				t.Fatal("ICMP errors carry an RTT (they come from a router)")
			}
		}
	}
	if echo < 700 || echo > 950 {
		t.Errorf("echo replies = %d of 2000, want ~830 (41.5%% of the full space)", echo)
	}
	if grey == 0 {
		t.Error("no greylistable errors observed")
	}
	if timeout == 0 {
		t.Error("no timeouts observed")
	}
}

func TestNonRepresentativeUnicastSilent(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	p := w.unicastPrefix[1]
	rep, _ := w.Representative(p)
	other := p.Host(rep.HostByte() + 1)
	if got := w.ProbeICMP(vp, other, 0); got.Kind != ReplyTimeout {
		t.Errorf("non-representative unicast host answered: %v", got)
	}
}

func TestUnknownPrefixTimesOut(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	if got := w.ProbeICMP(vp, IP(42), 0); got.Kind != ReplyTimeout {
		t.Errorf("probe outside the allocated space answered: %v", got)
	}
	if got := w.ProbeTCP(vp, IP(42), 80, 0); got.Kind != ReplyTimeout {
		t.Errorf("TCP probe outside the allocated space answered: %v", got)
	}
}

func TestMinOverRoundsShrinks(t *testing.T) {
	// Combining censuses by minimum RTT must never increase the estimate
	// and usually decreases it (Fig. 12's combination gain).
	w := testWorld(t)
	vp := pickVP(t)
	target, _ := w.Representative(w.Deployments()[5].Prefix)
	first := w.ProbeICMP(vp, target, 0).RTT
	min := first
	for round := uint64(1); round < 4; round++ {
		if r := w.ProbeICMP(vp, target, round).RTT; r < min {
			min = r
		}
	}
	if min > first {
		t.Error("minimum over rounds exceeds first sample")
	}
}

func TestProtocolMatrix(t *testing.T) {
	// Fig. 6: ICMP has high recall everywhere; transport and application
	// probes answer only where the service exists.
	w := testWorld(t)
	vp := pickVP(t)
	get := func(name string) (IP, int) {
		as := w.Registry.MustByName(name)
		d := w.DeploymentsByASN(as.ASN)[0]
		rep, _ := w.Representative(d.Prefix)
		return rep, as.ASN
	}

	odIP, _ := get("OPENDNS,US")
	msIP, _ := get("MICROSOFT,US")
	cfIP, _ := get("CLOUDFLARENET,US")

	if !w.ProbeICMP(vp, odIP, 0).OK() || !w.ProbeICMP(vp, msIP, 0).OK() || !w.ProbeICMP(vp, cfIP, 0).OK() {
		t.Fatal("ICMP should reach all anycast deployments")
	}
	if !w.ProbeDNSUDP(vp, odIP, 0).OK() {
		t.Error("OpenDNS must answer DNS/UDP")
	}
	if w.ProbeDNSUDP(vp, msIP, 0).OK() {
		t.Error("Microsoft must not answer DNS/UDP")
	}
	if !w.ProbeDNSTCP(vp, odIP, 0).OK() {
		t.Error("OpenDNS must answer DNS/TCP")
	}
	if !w.ProbeTCP(vp, cfIP, 80, 0).OK() {
		t.Error("CloudFlare must answer TCP-80")
	}
	if w.ProbeTCP(vp, cfIP, 81, 0).OK() {
		t.Error("CloudFlare must not answer TCP-81")
	}
}

func TestSourceDropProb(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	if p := w.SourceDropProb(vp, 1000); p != 0 {
		t.Errorf("drop probability at 1k pps = %v, want 0 (the slowed-down rate is safe)", p)
	}
	slow := w.SourceDropProb(vp, 5000)
	fast := w.SourceDropProb(vp, 50000)
	if fast < slow {
		t.Error("drop probability should grow with rate")
	}
	if fast > 0.9 {
		t.Errorf("drop probability capped at 0.9, got %v", fast)
	}
	if w.SourceDropProb(vp, 1e9) != 0.9 {
		t.Error("extreme rate should hit the cap")
	}
}

func TestReplyKindStrings(t *testing.T) {
	for k, want := range map[ReplyKind]string{
		ReplyTimeout: "timeout", ReplyEcho: "echo",
		ReplyAdminFiltered: "admin-filtered(13)", ReplyHostProhibited: "host-prohibited(10)",
		ReplyNetProhibited: "net-prohibited(9)", ReplyKind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("ReplyKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if ReplyEcho.Greylistable() || ReplyTimeout.Greylistable() {
		t.Error("echo/timeout are not greylistable")
	}
	if !ReplyAdminFiltered.Greylistable() {
		t.Error("admin-filtered must be greylistable")
	}
}

func TestAnycastPrefixesSorted(t *testing.T) {
	w := testWorld(t)
	ps := w.AnycastPrefixes()
	if len(ps) != len(w.Deployments()) {
		t.Fatal("AnycastPrefixes length mismatch")
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatal("AnycastPrefixes not sorted")
		}
	}
}

func BenchmarkProbeICMPAnycast(b *testing.B) {
	w := New(testConfig())
	vp := platform.PlanetLab(cities.Default()).VPs()[0]
	target, _ := w.Representative(w.Deployments()[0].Prefix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ProbeICMP(vp, target, uint64(i))
	}
}

func BenchmarkProbeICMPUnicast(b *testing.B) {
	w := New(testConfig())
	vp := platform.PlanetLab(cities.Default()).VPs()[0]
	target, _ := w.Representative(w.unicastPrefix[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ProbeICMP(vp, target, uint64(i))
	}
}

func TestWirePathRoundTrip(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	// An anycast target: echo reply path.
	target, _ := w.Representative(w.Deployments()[0].Prefix)
	pkt, reply, err := w.ExchangeICMP(vp, IP(0x0A000001), target, 7, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeICMPReply(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Kind != reply.Kind {
		t.Errorf("wire decode %v != simulated %v", decoded.Kind, reply.Kind)
	}
	// Timeout path: nil packet.
	if got, err := DecodeICMPReply(nil); err != nil || got.Kind != ReplyTimeout {
		t.Errorf("nil packet decode = %v, %v", got, err)
	}
	// Error path: find a greylistable unicast host.
	found := false
	for _, p := range w.unicastPrefix {
		rep, _ := w.Representative(p)
		r := w.ProbeICMP(vp, rep, 0)
		if !r.Kind.Greylistable() {
			continue
		}
		found = true
		pkt, wireReply, err := w.ExchangeICMP(vp, IP(0x0A000001), rep, 1, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeICMPReply(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Kind != wireReply.Kind || !dec.Kind.Greylistable() {
			t.Errorf("error path decode = %v, want %v", dec.Kind, wireReply.Kind)
		}
		break
	}
	if !found {
		t.Skip("no greylistable host encountered in the sample")
	}
}

func TestDecodeICMPReplyGarbage(t *testing.T) {
	if _, err := DecodeICMPReply([]byte{1, 2, 3}); err == nil {
		t.Error("garbage packet accepted")
	}
}

func TestInjectHijackValidation(t *testing.T) {
	w := testWorld(t)
	anycast := w.Deployments()[0].Prefix
	loc := w.Cities.MustByName("Moscow", "RU").Loc
	if err := w.InjectHijack(anycast, loc, 0.4); err == nil {
		t.Error("hijack of an anycast prefix accepted")
	}
	if err := w.InjectHijack(Prefix24(1), loc, 0.4); err == nil {
		t.Error("hijack of an unallocated prefix accepted")
	}
	uni := w.unicastPrefix[0]
	for _, bad := range []float64{0, -1, 1.5} {
		if err := w.InjectHijack(uni, loc, bad); err == nil {
			t.Errorf("catchment %v accepted", bad)
		}
	}
	if err := w.InjectHijack(uni, loc, 0.5); err != nil {
		t.Fatalf("valid hijack rejected: %v", err)
	}
	w.ClearHijack(uni)
}

func TestBannerAndTLS(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	cf := w.Registry.MustByName("CLOUDFLARENET,US")
	target, _ := w.Representative(w.DeploymentsByASN(cf.ASN)[0].Prefix)
	// Port 80: open, fingerprintable, not TLS.
	if sw, ok := w.BannerTCP(vp, target, 80, 1); !ok || sw != "cloudflare-nginx" {
		t.Errorf("BannerTCP(80) = %q,%v", sw, ok)
	}
	if w.ProbeTLS(vp, target, 80, 1) {
		t.Error("port 80 should not speak TLS")
	}
	// Port 443: open and TLS.
	if !w.ProbeTLS(vp, target, 443, 1) {
		t.Error("port 443 should speak TLS")
	}
	// A closed port yields neither.
	if _, ok := w.BannerTCP(vp, target, 81, 1); ok {
		t.Error("closed port produced a banner")
	}
	if w.ProbeTLS(vp, target, 81, 1) {
		t.Error("closed port spoke TLS")
	}
}

func TestQueryCHAOSInPackage(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	od := w.Registry.MustByName("OPENDNS,US")
	target, _ := w.Representative(w.DeploymentsByASN(od.ASN)[0].Prefix)
	id, reply := w.QueryCHAOS(vp, target, 1)
	if !reply.OK() || id == "" {
		t.Fatalf("CHAOS on OpenDNS: %q, %v", id, reply)
	}
	// Identity is stable per (vp, round) and names the serving site.
	id2, _ := w.QueryCHAOS(vp, target, 1)
	if id != id2 {
		t.Error("CHAOS identity flapped within a round")
	}
	// Non-DNS deployments stay silent.
	ms := w.Registry.MustByName("MICROSOFT,US")
	msIP, _ := w.Representative(w.DeploymentsByASN(ms.ASN)[0].Prefix)
	if id, reply := w.QueryCHAOS(vp, msIP, 1); reply.OK() || id != "" {
		t.Error("CHAOS answered on a non-DNS deployment")
	}
}

func TestExchangeTCPSYNInPackage(t *testing.T) {
	w := testWorld(t)
	vp := pickVP(t)
	cf := w.Registry.MustByName("CLOUDFLARENET,US")
	target, _ := w.Representative(w.DeploymentsByASN(cf.ASN)[0].Prefix)
	pkt, reply, err := w.ExchangeTCPSYN(vp, IP(0x0A000001), target, 40000, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reply.OK() && pkt == nil {
		t.Error("open port produced no packet")
	}
	// A closed port yields no packet.
	pkt, reply, err = w.ExchangeTCPSYN(vp, IP(0x0A000001), target, 40000, 81, 1)
	if err != nil || pkt != nil || reply.OK() {
		t.Errorf("closed port: pkt=%v reply=%v err=%v", pkt, reply, err)
	}
}

func TestDeploymentAccessors(t *testing.T) {
	w := testWorld(t)
	d := w.Deployments()[0]
	if d.String() == "" {
		t.Error("empty deployment String")
	}
	cs := d.Cities()
	if len(cs) == 0 || len(cs) > len(d.Replicas) {
		t.Errorf("Cities() = %v for %d replicas", cs, len(d.Replicas))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] {
			t.Error("Cities() not sorted/unique")
		}
	}
}

func TestAlexaHostedInPackage(t *testing.T) {
	w := testWorld(t)
	cf := w.Registry.MustByName("CLOUDFLARENET,US")
	hosted := 0
	for _, d := range w.DeploymentsByASN(cf.ASN) {
		if w.AlexaHosted(d.Prefix) {
			hosted++
		}
	}
	if hosted != cf.AlexaIP24s {
		t.Errorf("CloudFlare hosts Alexa sites on %d /24s, want %d", hosted, cf.AlexaIP24s)
	}
	if w.AlexaHosted(w.unicastPrefix[0]) {
		t.Error("unicast prefix hosts an Alexa site")
	}
}

func TestProbeTCPUnicastServices(t *testing.T) {
	// A minority of responsive unicast hosts run web/SSH services.
	w := testWorld(t)
	vp := pickVP(t)
	open80, tried := 0, 0
	for _, p := range w.unicastPrefix {
		if tried >= 600 {
			break
		}
		rep, _ := w.Representative(p)
		if !w.ProbeICMP(vp, rep, 0).OK() {
			continue
		}
		tried++
		if w.ProbeTCP(vp, rep, 80, 0).OK() {
			open80++
		}
	}
	frac := float64(open80) / float64(tried)
	if frac < 0.08 || frac > 0.35 {
		t.Errorf("unicast port-80 fraction = %.2f, want ~0.20", frac)
	}
}
