package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address as a big-endian 32-bit integer.
type IP uint32

// String formats the address in dotted-quad notation.
func (ip IP) String() string {
	var b [15]byte
	return string(AppendIP(b[:0], ip))
}

// AppendIP appends the dotted-quad form of ip to dst and returns the
// extended slice. With a pre-sized dst it performs no allocation, which
// is what serving hot paths (TXT answer rendering, response scratch
// buffers) need; String pays exactly the one unavoidable allocation.
func AppendIP(dst []byte, ip IP) []byte {
	for shift := 24; shift >= 0; shift -= 8 {
		dst = appendOctet(dst, byte(ip>>shift))
		if shift > 0 {
			dst = append(dst, '.')
		}
	}
	return dst
}

func appendOctet(dst []byte, v byte) []byte {
	if v >= 100 {
		dst = append(dst, '0'+v/100)
	}
	if v >= 10 {
		dst = append(dst, '0'+(v/10)%10)
	}
	return append(dst, '0'+v%10)
}

// Prefix returns the /24 containing the address.
func (ip IP) Prefix() Prefix24 { return Prefix24(ip >> 8) }

// HostByte returns the low 8 bits, the host part within the /24.
func (ip IP) HostByte() byte { return byte(ip) }

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netsim: bad IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("netsim: bad IPv4 octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(v)
	}
	return IP(ip), nil
}

// Prefix24 identifies a /24 subnet by its top 24 bits: the census
// granularity of the paper (Sec. 3.1: BGP practice ignores prefixes longer
// than /24, so one representative address per /24 covers the whole
// anycast-visible address space).
type Prefix24 uint32

// String formats the prefix in CIDR notation.
func (p Prefix24) String() string {
	var b [18]byte
	return string(AppendPrefix24(b[:0], p))
}

// AppendPrefix24 appends the CIDR form of p ("a.b.c.0/24") to dst.
func AppendPrefix24(dst []byte, p Prefix24) []byte {
	return append(AppendIP(dst, p.Host(0)), "/24"...)
}

// Contains reports whether ip belongs to the /24.
func (p Prefix24) Contains(ip IP) bool { return ip.Prefix() == p }

// Host returns the address with the given host byte inside the /24.
func (p Prefix24) Host(b byte) IP { return IP(uint32(p)<<8 | uint32(b)) }

// ParsePrefix24 parses "a.b.c.0/24" (or any in-prefix address with the /24
// suffix) into a Prefix24.
func ParsePrefix24(s string) (Prefix24, error) {
	base, ok := strings.CutSuffix(s, "/24")
	if !ok {
		return 0, fmt.Errorf("netsim: prefix %q does not end in /24", s)
	}
	ip, err := ParseIP(base)
	if err != nil {
		return 0, err
	}
	return ip.Prefix(), nil
}
