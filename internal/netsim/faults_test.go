package netsim

import (
	"strings"
	"testing"
)

func TestFaultConfigValidate(t *testing.T) {
	if err := (FaultConfig{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	cases := []FaultConfig{
		{CrashFraction: -0.1},
		{CrashFraction: 1.5},
		{CrashStickiness: 2},
		{FlapFraction: -1},
		{FlapWindow: 1.01},
		{BurstLossFraction: 42},
		{BurstLossProb: -0.5},
		{TargetOutageFraction: 7},
		{RecoveryAttempts: -1},
	}
	for _, c := range cases {
		if _, err := NewFaultPlan(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if _, err := NewFaultPlan(FaultConfig{CrashFraction: 0.3, FlapFraction: 0.1}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNilFaultPlanInjectsNothing(t *testing.T) {
	var p *FaultPlan
	if c, s := p.Crashes(1, 1); c || s {
		t.Error("nil plan crashes")
	}
	if _, ok := p.CrashIndex(1, 1, 0, 100); ok {
		t.Error("nil plan has a crash index")
	}
	if p.ReplyLost(1, 1, 0, 100) {
		t.Error("nil plan loses replies")
	}
	if p.TargetUnreachable(Prefix24(1), 1) {
		t.Error("nil plan takes targets down")
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	cfg := FaultConfig{
		Seed: 42, CrashFraction: 0.3, CrashStickiness: 0.5,
		FlapFraction: 0.2, BurstLossFraction: 0.2, TargetOutageFraction: 0.05,
	}
	p1, err := NewFaultPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewFaultPlan(cfg)
	for vp := 0; vp < 50; vp++ {
		for round := uint64(1); round <= 3; round++ {
			c1, s1 := p1.Crashes(vp, round)
			c2, s2 := p2.Crashes(vp, round)
			if c1 != c2 || s1 != s2 {
				t.Fatal("two plans from the same config disagree")
			}
			a1, ok1 := p1.CrashIndex(vp, round, 0, 1000)
			a2, ok2 := p2.CrashIndex(vp, round, 0, 1000)
			if a1 != a2 || ok1 != ok2 {
				t.Fatal("crash indices disagree")
			}
			for i := uint64(0); i < 1000; i += 37 {
				if p1.ReplyLost(vp, round, i, 1000) != p2.ReplyLost(vp, round, i, 1000) {
					t.Fatal("reply loss disagrees")
				}
			}
		}
	}
}

func TestFaultPlanCrashFractionCalibrated(t *testing.T) {
	p, _ := NewFaultPlan(FaultConfig{Seed: 7, CrashFraction: 0.3, CrashStickiness: 0.5})
	const vps = 2000
	crashed, sticky := 0, 0
	for vp := 0; vp < vps; vp++ {
		c, s := p.Crashes(vp, 1)
		if c {
			crashed++
		}
		if s {
			sticky++
		}
	}
	if frac := float64(crashed) / vps; frac < 0.25 || frac > 0.35 {
		t.Errorf("crash fraction = %.3f, want ~0.30", frac)
	}
	// Stickiness conditions on having crashed.
	if frac := float64(sticky) / float64(crashed); frac < 0.4 || frac > 0.6 {
		t.Errorf("sticky fraction among crashed = %.3f, want ~0.5", frac)
	}
}

func TestCrashIndexRecoveryAndStickiness(t *testing.T) {
	p, _ := NewFaultPlan(FaultConfig{Seed: 3, CrashFraction: 1, CrashStickiness: 0})
	const n = 1000
	at0, ok := p.CrashIndex(5, 1, 0, n)
	if !ok {
		t.Fatal("CrashFraction=1 VP did not crash on attempt 0")
	}
	if at0 == 0 || at0 >= n {
		t.Errorf("crash index %d outside the run", at0)
	}
	// RecoveryAttempts defaults to 1: the first retry succeeds.
	if _, ok := p.CrashIndex(5, 1, 1, n); ok {
		t.Error("non-sticky VP crashed on its recovery attempt")
	}

	sticky, _ := NewFaultPlan(FaultConfig{Seed: 3, CrashFraction: 1, CrashStickiness: 1})
	for attempt := 0; attempt < 5; attempt++ {
		if _, ok := sticky.CrashIndex(5, 1, attempt, n); !ok {
			t.Errorf("sticky VP recovered on attempt %d", attempt)
		}
	}

	slow, _ := NewFaultPlan(FaultConfig{Seed: 3, CrashFraction: 1, RecoveryAttempts: 3})
	for attempt := 0; attempt < 3; attempt++ {
		if _, ok := slow.CrashIndex(5, 1, attempt, n); !ok {
			t.Errorf("RecoveryAttempts=3 VP recovered early on attempt %d", attempt)
		}
	}
	if _, ok := slow.CrashIndex(5, 1, 3, n); ok {
		t.Error("RecoveryAttempts=3 VP still down on attempt 3")
	}
}

func TestReplyLostFlapWindowContiguous(t *testing.T) {
	p, _ := NewFaultPlan(FaultConfig{Seed: 11, FlapFraction: 1, FlapWindow: 0.2})
	const n = 1000
	lost := 0
	first, last := -1, -1
	for i := uint64(0); i < n; i++ {
		if p.ReplyLost(0, 1, i, n) {
			lost++
			if first < 0 {
				first = int(i)
			}
			last = int(i)
		}
	}
	if lost == 0 {
		t.Fatal("FlapFraction=1 lost nothing")
	}
	if lost != last-first+1 {
		t.Errorf("flap window not contiguous: %d lost across [%d,%d]", lost, first, last)
	}
	if frac := float64(lost) / n; frac < 0.15 || frac > 0.25 {
		t.Errorf("flap window covers %.2f of the run, want ~0.20", frac)
	}
	// The window is stable across attempts by construction (no attempt in
	// the key): re-probing into the flap loses the probe again.
}

func TestTargetOutageTransient(t *testing.T) {
	p, _ := NewFaultPlan(FaultConfig{Seed: 5, TargetOutageFraction: 0.1})
	const prefixes = 5000
	down1, down2, both := 0, 0, 0
	for i := 0; i < prefixes; i++ {
		d1 := p.TargetUnreachable(Prefix24(i), 1)
		d2 := p.TargetUnreachable(Prefix24(i), 2)
		if d1 {
			down1++
		}
		if d2 {
			down2++
		}
		if d1 && d2 {
			both++
		}
	}
	if frac := float64(down1) / prefixes; frac < 0.07 || frac > 0.13 {
		t.Errorf("round-1 outage fraction = %.3f, want ~0.10", frac)
	}
	if down2 == 0 {
		t.Fatal("no outages in round 2")
	}
	// Outages are per round: the overlap between rounds must look like the
	// product of two independent 10% draws, not like a persistent set.
	if both >= down1 {
		t.Errorf("every round-1 outage persisted into round 2 (%d of %d)", both, down1)
	}
}

func TestWorldWithFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Unicast24s = 50
	w := New(cfg)
	if w.Faults() != nil {
		t.Fatal("fresh world has faults installed")
	}
	p, _ := NewFaultPlan(FaultConfig{Seed: 1, CrashFraction: 0.5})
	w2 := w.WithFaults(p)
	if w2.Faults() != p {
		t.Error("WithFaults did not install the plan")
	}
	if w.Faults() != nil {
		t.Error("WithFaults mutated the original world")
	}
	w.InstallFaults(p)
	if w.Faults() != p {
		t.Error("InstallFaults did not install the plan")
	}
}

func TestVPCrashError(t *testing.T) {
	err := &VPCrashError{VP: "planetlab1.example", Round: 3, Attempt: 1, ProbeIndex: 512}
	msg := err.Error()
	for _, want := range []string{"planetlab1.example", "512", "round 3", "attempt 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}
