package netsim

import (
	"fmt"

	"anycastmap/internal/detrand"

	"anycastmap/internal/platform"
	"anycastmap/internal/wire"
)

// ExchangeICMP performs one probe at the packet level: it builds the IPv4 +
// ICMP echo request Fastping would emit (census signature included),
// simulates the exchange, and returns the raw reply datagram - an echo
// reply from the target, a type-3 error from a router, or nil on timeout.
// The RTT the caller would clock is returned alongside.
//
// The fast path (ProbeICMP) and this wire path are behaviourally identical;
// the prober's wire mode uses this one so the whole measurement loop
// exercises real packet parsing.
func (w *World) ExchangeICMP(vp platform.VP, src, target IP, id, seq uint16, round uint64) (replyPkt []byte, reply Reply, err error) {
	req, err := wire.BuildEchoRequest(uint32(src), uint32(target), id, seq)
	if err != nil {
		return nil, Reply{}, fmt.Errorf("netsim: build probe: %w", err)
	}
	reply = w.ProbeICMP(vp, target, round)
	switch reply.Kind {
	case ReplyTimeout:
		return nil, reply, nil
	case ReplyEcho:
		pkt, err := wire.BuildEchoReply(req)
		if err != nil {
			return nil, Reply{}, fmt.Errorf("netsim: build reply: %w", err)
		}
		return pkt, reply, nil
	default:
		var code uint8
		switch reply.Kind {
		case ReplyAdminFiltered:
			code = wire.CodeAdminFiltered
		case ReplyHostProhibited:
			code = wire.CodeHostProhibited
		case ReplyNetProhibited:
			code = wire.CodeNetProhibited
		}
		// The error originates at the last router before the target.
		router := target.Prefix().Host(254)
		pkt, err := wire.BuildAdminProhibited(uint32(router), code, req)
		if err != nil {
			return nil, Reply{}, fmt.Errorf("netsim: build error: %w", err)
		}
		return pkt, reply, nil
	}
}

// greylistKindOf maps a parsed ICMP error to the simulator's reply kind,
// or ok=false when the message is not a greylistable error.
func greylistKindOf(msg wire.ICMPMessage) (ReplyKind, bool) {
	if msg.Type != wire.ICMPDestUnreach {
		return 0, false
	}
	switch msg.Code {
	case wire.CodeAdminFiltered:
		return ReplyAdminFiltered, true
	case wire.CodeHostProhibited:
		return ReplyHostProhibited, true
	case wire.CodeNetProhibited:
		return ReplyNetProhibited, true
	}
	return 0, false
}

// DecodeICMPReply parses a raw reply datagram back into the simulator's
// Reply classification; it is the receiving half of the prober's wire mode.
// A nil packet is a timeout.
func DecodeICMPReply(pkt []byte) (Reply, error) {
	if pkt == nil {
		return Reply{Kind: ReplyTimeout}, nil
	}
	_, payload, err := wire.ParseIPv4(pkt)
	if err != nil {
		return Reply{}, err
	}
	msg, err := wire.ParseICMP(payload)
	if err != nil {
		return Reply{}, err
	}
	if msg.Echo != nil && msg.Echo.Reply {
		return Reply{Kind: ReplyEcho}, nil
	}
	if kind, ok := greylistKindOf(msg); ok {
		return Reply{Kind: kind}, nil
	}
	return Reply{}, fmt.Errorf("netsim: unexpected ICMP type %d code %d", msg.Type, msg.Code)
}

// ExchangeTCPSYN performs one portscan probe at the packet level: it builds
// the SYN segment nmap would send and returns the raw response - a SYN-ACK
// datagram when the port answers, or nil when the probe is filtered or the
// host silent (the common case on the open Internet, where closed ports
// rarely RST back through the firewalls in between).
func (w *World) ExchangeTCPSYN(vp platform.VP, src, target IP, srcPort, dstPort uint16, round uint64) (respPkt []byte, reply Reply, err error) {
	seq := uint32(detrand.Hash64(w.cfg.Seed, uint64(vp.ID), uint64(target), uint64(dstPort)))
	syn, err := wire.BuildSYN(uint32(src), uint32(target), srcPort, dstPort, seq)
	if err != nil {
		return nil, Reply{}, fmt.Errorf("netsim: build SYN: %w", err)
	}
	reply = w.ProbeTCP(vp, target, dstPort, round)
	if !reply.OK() {
		return nil, reply, nil
	}
	pkt, err := wire.BuildSYNACKResponse(syn, true, seq+1000)
	if err != nil {
		return nil, Reply{}, fmt.Errorf("netsim: build SYN-ACK: %w", err)
	}
	return pkt, reply, nil
}
