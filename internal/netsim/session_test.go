package netsim

import (
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/geo"
	"anycastmap/internal/platform"
)

// sessionTestWorlds builds two identically-configured small worlds, one
// with the probe cache and one forced down the uncached reference path.
func sessionTestWorlds(t testing.TB) (cached, uncached *World) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Unicast24s = 600
	cached = New(cfg)
	cfg.DisableProbeCache = true
	uncached = New(cfg)
	return cached, uncached
}

// sessionTestVPs mixes PlanetLab and RIPE vantage points: the two
// platforms assign overlapping ID ranges, so this doubles as a check that
// the session key keeps their caches apart.
func sessionTestVPs() []platform.VP {
	pl := platform.PlanetLab(cities.Default()).VPs()
	ripe := platform.RIPEAtlas(cities.Default()).VPs()
	vps := append([]platform.VP{}, pl[:6]...)
	return append(vps, ripe[:6]...)
}

// TestSessionCacheBitIdentical is the tentpole's contract: every probe
// reply - kind and RTT, anycast and unicast, ICMP, TCP and DNS - is
// bit-identical with the memoization on or off.
func TestSessionCacheBitIdentical(t *testing.T) {
	cached, uncached := sessionTestWorlds(t)
	vps := sessionTestVPs()

	var targets []IP
	cached.Prefixes(func(p Prefix24) {
		if ip, _ := cached.Representative(p); ip != 0 {
			targets = append(targets, ip)
		}
	})
	if len(targets) < 2000 {
		t.Fatalf("expected >2000 targets, got %d", len(targets))
	}

	for _, vp := range vps {
		probe := cached.ProbeSession(vp)
		for ti, target := range targets {
			for round := uint64(1); round <= 3; round++ {
				got, want := probe.ICMP(target, round), uncached.ProbeICMP(vp, target, round)
				if got != want {
					t.Fatalf("ICMP vp=%s target=%v round=%d: cached %+v, uncached %+v", vp.Name, target, round, got, want)
				}
				// TCP and DNS are cheaper to spot-check on a slice.
				if ti%7 == 0 {
					got, want = probe.TCP(target, 80, round), uncached.ProbeTCP(vp, target, 80, round)
					if got != want {
						t.Fatalf("TCP vp=%s target=%v round=%d: cached %+v, uncached %+v", vp.Name, target, round, got, want)
					}
					got, want = probe.DNSUDP(target, round), uncached.ProbeDNSUDP(vp, target, round)
					if got != want {
						t.Fatalf("DNS vp=%s target=%v round=%d: cached %+v, uncached %+v", vp.Name, target, round, got, want)
					}
				}
			}
		}
	}

	// Replica selection (the CHAOS/ground-truth path) agrees too.
	for _, vp := range vps[:4] {
		for _, d := range cached.Deployments() {
			for round := uint64(1); round <= 3; round++ {
				got, _ := cached.ServingReplica(vp, d.Prefix, round)
				want, _ := uncached.ServingReplica(vp, d.Prefix, round)
				if got.ID != want.ID || got.Loc != want.Loc {
					t.Fatalf("ServingReplica vp=%s prefix=%v round=%d: cached %v, uncached %v", vp.Name, d.Prefix, round, got.ID, want.ID)
				}
			}
		}
	}
}

// TestSessionCacheHijackBypass verifies the cache interplay with injected
// hijacks: hijacked prefixes take the live path (the hijack shows up even
// in a pre-warmed session), and clearing the hijack restores the original
// cached behavior.
func TestSessionCacheHijackBypass(t *testing.T) {
	cached, uncached := sessionTestWorlds(t)
	vps := sessionTestVPs()

	// Find a responsive unicast prefix.
	var prefix Prefix24
	var target IP
	cached.Prefixes(func(p Prefix24) {
		if prefix != 0 {
			return
		}
		if cached.IsAnycast(p) {
			return
		}
		ip, alive := cached.Representative(p)
		if alive && cached.ProbeICMP(vps[0], ip, 1).OK() { // warms the session pre-hijack
			prefix, target = p, ip
		}
	})
	if prefix == 0 {
		t.Fatal("no responsive unicast prefix found")
	}

	hijacker := geo.Coord{Lat: -33.9, Lon: 151.2} // far from most hosts
	for _, w := range []*World{cached, uncached} {
		if err := w.InjectHijack(prefix, hijacker, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	for _, vp := range vps {
		for round := uint64(1); round <= 3; round++ {
			got, want := cached.ProbeICMP(vp, target, round), uncached.ProbeICMP(vp, target, round)
			if got != want {
				t.Fatalf("hijacked ICMP vp=%s round=%d: cached %+v, uncached %+v", vp.Name, round, got, want)
			}
		}
	}

	cached.ClearHijack(prefix)
	uncached.ClearHijack(prefix)
	for _, vp := range vps {
		got, want := cached.ProbeICMP(vp, target, 2), uncached.ProbeICMP(vp, target, 2)
		if got != want {
			t.Fatalf("post-clear ICMP vp=%s: cached %+v, uncached %+v", vp.Name, got, want)
		}
	}
}

// TestSessionSharedAcrossFaultViews checks that WithFaults views reuse the
// receiver's session table rather than rebuilding caches per view.
func TestSessionSharedAcrossFaultViews(t *testing.T) {
	cached, _ := sessionTestWorlds(t)
	vp := sessionTestVPs()[0]
	cached.ProbeSession(vp) // warm
	view := cached.WithFaults(nil)
	if view.sessions != cached.sessions {
		t.Fatal("WithFaults view does not share the session table")
	}
	if _, ok := view.sessions.m.Load(sessionKey{id: vp.ID, lat: vp.Loc.Lat, lon: vp.Loc.Lon}); !ok {
		t.Fatal("warmed session not visible through the fault view")
	}
}

// TestSpanSessionBitIdentical pins the span-resident hot path: a span
// session resolved over any window of the target list — every width, any
// alignment — answers bit-identically to the uncached reference path, for
// every reply kind the world produces (echo, the three greylistable
// errors, structural timeouts, anycast and unicast alike).
func TestSpanSessionBitIdentical(t *testing.T) {
	cached, uncached := sessionTestWorlds(t)
	vps := sessionTestVPs()

	var targets []IP
	cached.Prefixes(func(p Prefix24) {
		if ip, _ := cached.Representative(p); ip != 0 {
			targets = append(targets, ip)
		}
	})

	for _, width := range []int{1, 17, 256, len(targets)} {
		for _, vp := range vps {
			for lo := 0; lo < len(targets); lo += width {
				hi := lo + width
				if hi > len(targets) {
					hi = len(targets)
				}
				span := cached.ProbeSpanSession(vp, targets[lo:hi])
				for i := lo; i < hi; i++ {
					for round := uint64(1); round <= 2; round++ {
						got, want := span.ICMP(i-lo, round), uncached.ProbeICMP(vp, targets[i], round)
						if got != want {
							t.Fatalf("span[%d:%d] vp=%s target=%v round=%d: span %+v, uncached %+v",
								lo, hi, vp.Name, targets[i], round, got, want)
						}
					}
				}
			}
		}
	}

	// The resolver's sequential cursor must survive arbitrary target
	// order (reversed spans break order at every step) and targets the
	// world never allocated.
	rev := make([]IP, 0, 512)
	for i := 400; i >= 0; i-- {
		rev = append(rev, targets[i])
	}
	rev = append(rev, IP(0xDF000001), targets[0], IP(0x01000001))
	span := cached.ProbeSpanSession(vps[0], rev)
	for i, target := range rev {
		got, want := span.ICMP(i, 1), uncached.ProbeICMP(vps[0], target, 1)
		if got != want {
			t.Fatalf("reversed span i=%d target=%v: span %+v, uncached %+v", i, target, got, want)
		}
	}

	// With the probe cache disabled the span session must degrade to the
	// reference path, not to stale slabs.
	slow := uncached.ProbeSpanSession(vps[1], targets[:64])
	for i := range targets[:64] {
		got, want := slow.ICMP(i, 3), uncached.ProbeICMP(vps[1], targets[i], 3)
		if got != want {
			t.Fatalf("nocache span i=%d: span %+v, reference %+v", i, got, want)
		}
	}
}

// TestSpanSessionHijackBypass checks that a span resolved after a hijack
// injection routes the hijacked prefix down the live per-probe path, and
// that clearing the hijack restores fast-path behavior in later spans.
func TestSpanSessionHijackBypass(t *testing.T) {
	cached, uncached := sessionTestWorlds(t)
	vps := sessionTestVPs()

	var prefix Prefix24
	var target IP
	cached.Prefixes(func(p Prefix24) {
		if prefix != 0 || cached.IsAnycast(p) {
			return
		}
		if ip, alive := cached.Representative(p); alive && cached.ProbeICMP(vps[0], ip, 1).OK() {
			prefix, target = p, ip
		}
	})
	if prefix == 0 {
		t.Fatal("no responsive unicast prefix found")
	}

	hijacker := geo.Coord{Lat: -33.9, Lon: 151.2}
	for _, w := range []*World{cached, uncached} {
		if err := w.InjectHijack(prefix, hijacker, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	for _, vp := range vps {
		span := cached.ProbeSpanSession(vp, []IP{target})
		for round := uint64(1); round <= 3; round++ {
			got, want := span.ICMP(0, round), uncached.ProbeICMP(vp, target, round)
			if got != want {
				t.Fatalf("hijacked span vp=%s round=%d: span %+v, uncached %+v", vp.Name, round, got, want)
			}
		}
	}

	cached.ClearHijack(prefix)
	uncached.ClearHijack(prefix)
	for _, vp := range vps {
		span := cached.ProbeSpanSession(vp, []IP{target})
		got, want := span.ICMP(0, 2), uncached.ProbeICMP(vp, target, 2)
		if got != want {
			t.Fatalf("post-clear span vp=%s: span %+v, uncached %+v", vp.Name, got, want)
		}
	}
}
