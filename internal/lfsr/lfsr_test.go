package lfsr

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadWidth(t *testing.T) {
	for _, w := range []uint{0, 1, 33, 64} {
		if _, err := New(w, 1); err == nil {
			t.Errorf("New(%d) accepted unsupported width", w)
		}
	}
}

func TestZeroSeedReplaced(t *testing.T) {
	g, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Must not be stuck in the all-zero lock-up state.
	if g.Next() == 0 {
		t.Error("LFSR emitted 0: lock-up state not avoided")
	}
}

func TestSeedReduction(t *testing.T) {
	// A seed larger than the register must be reduced, and a seed that
	// reduces to zero replaced by 1.
	g, err := New(4, 0x30) // 0x30 & 0xF == 0
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if g.Next() == 0 {
			t.Fatal("locked up after zero-reducing seed")
		}
	}
}

// TestMaximalPeriod exhaustively verifies that every supported width yields
// a maximal-length sequence: all values in [1, 2^w-1] appear exactly once
// per period. Widths above 22 are skipped to keep the test fast; their taps
// come from the same primitive-polynomial table.
func TestMaximalPeriod(t *testing.T) {
	for w := uint(2); w <= 22; w++ {
		w := w
		t.Run(string(rune('0'+w/10))+string(rune('0'+w%10)), func(t *testing.T) {
			g, err := New(w, 1)
			if err != nil {
				t.Fatal(err)
			}
			period := g.Period()
			seen := make([]bool, period+1)
			for i := uint64(0); i < period; i++ {
				v := g.Next()
				if v == 0 || v > period {
					t.Fatalf("width %d: value %d out of range", w, v)
				}
				if seen[v] {
					t.Fatalf("width %d: value %d repeated before full period", w, v)
				}
				seen[v] = true
			}
			// After a full period the register is back at the seed.
			if g.state != g.seed {
				t.Fatalf("width %d: state %d != seed %d after full period", w, g.state, g.seed)
			}
		})
	}
}

func TestLargeWidthNoEarlyRepeat(t *testing.T) {
	// For width 32, check a prefix of the sequence has no repeats.
	g, err := New(32, 0xDEADBEEF)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, 1<<20)
	for i := 0; i < 1<<20; i++ {
		v := g.Next()
		if seen[v] {
			t.Fatalf("repeat after %d steps", i)
		}
		seen[v] = true
	}
}

func TestReset(t *testing.T) {
	g, _ := New(16, 1234)
	var first [10]uint64
	for i := range first {
		first[i] = g.Next()
	}
	g.Reset()
	for i := range first {
		if v := g.Next(); v != first[i] {
			t.Fatalf("after Reset, step %d = %d, want %d", i, v, first[i])
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct {
		n    uint64
		want uint
	}{
		{1, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {15, 4}, {16, 5},
		{1000, 10}, {1023, 10}, {1024, 11}, {6_600_000, 23}, {1 << 31, 32},
	}
	for _, c := range cases {
		got, err := BitsFor(c.n)
		if err != nil {
			t.Errorf("BitsFor(%d): %v", c.n, err)
			continue
		}
		if got != c.want {
			t.Errorf("BitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if _, err := BitsFor(0); err == nil {
		t.Error("BitsFor(0) should fail")
	}
	if _, err := BitsFor(1 << 40); err == nil {
		t.Error("BitsFor(2^40) should exceed max width")
	}
}

// TestPermutationIsPermutation verifies the core invariant: every index in
// [0, n) is emitted exactly once.
func TestPermutationIsPermutation(t *testing.T) {
	f := func(n uint16, seed uint64) bool {
		if n == 0 {
			return true
		}
		p, err := NewPermutation(uint64(n), seed)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		count := 0
		for {
			idx, ok := p.Next()
			if !ok {
				break
			}
			if idx >= uint64(n) || seen[idx] {
				return false
			}
			seen[idx] = true
			count++
		}
		return count == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPermutationExhaustedStaysExhausted(t *testing.T) {
	p, err := NewPermutation(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := p.Next(); !ok {
			t.Fatalf("exhausted after %d of 5", i)
		}
	}
	for i := 0; i < 3; i++ {
		if _, ok := p.Next(); ok {
			t.Error("Next returned a value after exhaustion")
		}
	}
}

func TestPermutationReset(t *testing.T) {
	p, _ := NewPermutation(100, 7)
	var first []uint64
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		first = append(first, v)
	}
	p.Reset()
	for i := range first {
		v, ok := p.Next()
		if !ok || v != first[i] {
			t.Fatalf("replay diverged at %d: got %d,%v want %d", i, v, ok, first[i])
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	// Different seeds should produce different orders (they are rotations
	// of the same cycle, so unequal first elements suffice for most seeds).
	p1, _ := NewPermutation(1000, 1)
	p2, _ := NewPermutation(1000, 999)
	v1, _ := p1.Next()
	v2, _ := p2.Next()
	if v1 == v2 {
		t.Error("seeds 1 and 999 produced the same first index (suspicious)")
	}
}

func TestPermutationNotIdentity(t *testing.T) {
	// The whole point is to not probe targets in order: the permutation of
	// a large range must not be the identity.
	p, _ := NewPermutation(10000, 12345)
	identical := 0
	for i := uint64(0); i < 10000; i++ {
		v, _ := p.Next()
		if v == i {
			identical++
		}
	}
	if identical > 100 {
		t.Errorf("%d of 10000 indices in natural order; permutation too weak", identical)
	}
}

func BenchmarkNext(b *testing.B) {
	g, _ := New(23, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkPermutationNext(b *testing.B) {
	p, _ := NewPermutation(6_600_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Next(); !ok {
			p.Reset()
		}
	}
}
