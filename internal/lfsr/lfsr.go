// Package lfsr implements maximal-length linear feedback shift registers in
// Galois configuration. The census prober uses an LFSR to walk its target
// list in a randomized permutation (Sec. 3.5 of the paper), so that probes
// toward the same /24 or the same destination network are spread over the
// whole census rather than clustered, avoiding ICMP rate limiting at the
// destination.
//
// A maximal-length n-bit LFSR enumerates every value in [1, 2^n-1] exactly
// once per period, which makes it a zero-memory permutation generator: no
// shuffle array of 10^7 entries has to be kept per vantage point.
package lfsr

import (
	"fmt"
	"math/bits"
)

// taps maps register width to the tap positions of a primitive polynomial
// (from the classic Xilinx XAPP052 table), yielding a maximal-length
// sequence of period 2^width - 1.
var taps = map[uint][]uint{
	2:  {2, 1},
	3:  {3, 2},
	4:  {4, 3},
	5:  {5, 3},
	6:  {6, 5},
	7:  {7, 6},
	8:  {8, 6, 5, 4},
	9:  {9, 5},
	10: {10, 7},
	11: {11, 9},
	12: {12, 6, 4, 1},
	13: {13, 4, 3, 1},
	14: {14, 5, 3, 1},
	15: {15, 14},
	16: {16, 15, 13, 4},
	17: {17, 14},
	18: {18, 11},
	19: {19, 6, 2, 1},
	20: {20, 17},
	21: {21, 19},
	22: {22, 21},
	23: {23, 18},
	24: {24, 23, 22, 17},
	25: {25, 22},
	26: {26, 6, 2, 1},
	27: {27, 5, 2, 1},
	28: {28, 25},
	29: {29, 27},
	30: {30, 6, 4, 1},
	31: {31, 28},
	32: {32, 22, 2, 1},
}

// MaxBits is the largest supported register width.
const MaxBits = 32

// Galois is a linear feedback shift register in Galois configuration.
type Galois struct {
	state uint64
	seed  uint64
	mask  uint64 // tap mask
	bits  uint
}

// New returns an LFSR of the given width seeded with seed. The width must be
// in [2, MaxBits] and the seed is reduced modulo the register size; a
// reduced seed of zero (the lock-up state) is replaced by 1.
func New(width uint, seed uint64) (*Galois, error) {
	tp, ok := taps[width]
	if !ok {
		return nil, fmt.Errorf("lfsr: unsupported width %d (want 2..%d)", width, MaxBits)
	}
	var mask uint64
	for _, t := range tp {
		mask |= 1 << (t - 1)
	}
	s := seed & ((1 << width) - 1)
	if s == 0 {
		s = 1
	}
	return &Galois{state: s, seed: s, mask: mask, bits: width}, nil
}

// Bits returns the register width.
func (g *Galois) Bits() uint { return g.bits }

// Period returns the sequence period, 2^width - 1.
func (g *Galois) Period() uint64 { return (1 << g.bits) - 1 }

// Next advances the register and returns the new state, a value in
// [1, 2^width-1]. The sequence visits every such value once per period.
func (g *Galois) Next() uint64 {
	lsb := g.state & 1
	g.state >>= 1
	if lsb != 0 {
		g.state ^= g.mask
	}
	return g.state
}

// Reset rewinds the register to its seed state.
func (g *Galois) Reset() { g.state = g.seed }

// BitsFor returns the smallest supported register width whose period covers
// n values, i.e. the smallest w with 2^w - 1 >= n.
func BitsFor(n uint64) (uint, error) {
	if n == 0 {
		return 0, fmt.Errorf("lfsr: no width for n=0")
	}
	w := uint(bits.Len64(n))
	if (uint64(1)<<w)-1 < n {
		w++
	}
	if w < 2 {
		w = 2
	}
	if w > MaxBits {
		return 0, fmt.Errorf("lfsr: n=%d exceeds max period 2^%d-1", n, MaxBits)
	}
	return w, nil
}

// Permutation iterates the indices [0, n) in the pseudo-random order induced
// by a maximal-length LFSR, skipping register states beyond n. It visits
// every index exactly once per cycle.
type Permutation struct {
	g       *Galois
	n       uint64
	emitted uint64
}

// NewPermutation returns a permutation over [0, n). Different seeds give
// different (rotated) orders.
func NewPermutation(n uint64, seed uint64) (*Permutation, error) {
	w, err := BitsFor(n)
	if err != nil {
		return nil, err
	}
	g, err := New(w, seed)
	if err != nil {
		return nil, err
	}
	return &Permutation{g: g, n: n}, nil
}

// Len returns n, the number of indices in the permutation.
func (p *Permutation) Len() uint64 { return p.n }

// Next returns the next index and true, or 0 and false once all n indices
// have been emitted.
func (p *Permutation) Next() (uint64, bool) {
	if p.emitted >= p.n {
		return 0, false
	}
	for {
		v := p.g.Next()
		if v <= p.n {
			p.emitted++
			return v - 1, true
		}
	}
}

// Reset rewinds the permutation to its beginning.
func (p *Permutation) Reset() {
	p.g.Reset()
	p.emitted = 0
}
