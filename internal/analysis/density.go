package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// CountryCount is one row of the geographical density breakdown that backs
// the Fig. 10 map: how many geolocated replicas sit in each country.
type CountryCount struct {
	CC       string
	Replicas int
	Cities   int
}

// CountryDensity aggregates the located replicas of the findings per
// country, sorted by decreasing replica count.
func CountryDensity(fs []Finding) []CountryCount {
	type agg struct {
		replicas int
		cities   map[string]bool
	}
	byCC := map[string]*agg{}
	for _, f := range fs {
		for _, r := range f.Result.Replicas {
			if !r.Located {
				continue
			}
			a := byCC[r.City.CC]
			if a == nil {
				a = &agg{cities: map[string]bool{}}
				byCC[r.City.CC] = a
			}
			a.replicas++
			a.cities[r.City.Key()] = true
		}
	}
	out := make([]CountryCount, 0, len(byCC))
	for cc, a := range byCC {
		out = append(out, CountryCount{CC: cc, Replicas: a.replicas, Cities: len(a.cities)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Replicas != out[j].Replicas {
			return out[i].Replicas > out[j].Replicas
		}
		return out[i].CC < out[j].CC
	})
	return out
}

// DensityMap renders the located replicas of the findings as an ASCII
// world map (the terminal cousin of Fig. 10's density map): a
// cols x rows equirectangular grid where darker characters mean more
// replicas.
func DensityMap(fs []Finding, cols, rows int) string {
	if cols < 10 {
		cols = 72
	}
	if rows < 5 {
		rows = 24
	}
	grid := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]int, cols)
	}
	max := 0
	for _, f := range fs {
		for _, r := range f.Result.Replicas {
			if !r.Located {
				continue
			}
			// Equirectangular projection; the map spans 72S..84N to skip
			// the empty polar bands.
			x := int((r.City.Loc.Lon + 180) / 360 * float64(cols))
			y := int((84 - r.City.Loc.Lat) / 156 * float64(rows))
			if x < 0 || x >= cols || y < 0 || y >= rows {
				continue
			}
			grid[y][x]++
			if grid[y][x] > max {
				max = grid[y][x]
			}
		}
	}
	shades := []byte(" .:+*#@")
	var b strings.Builder
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", cols))
	for _, row := range grid {
		b.WriteByte('|')
		for _, v := range row {
			if v == 0 {
				b.WriteByte(' ')
				continue
			}
			idx := 1 + v*(len(shades)-2)/(max+1)
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "+%s+ densest cell: %d replicas\n", strings.Repeat("-", cols), max)
	return b.String()
}
