package analysis

import (
	"strings"
	"sync"
	"testing"

	"anycastmap/internal/asdb"
	"anycastmap/internal/bgp"
	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/portscan"
)

var (
	once sync.Once
	w    *netsim.World
	tbl  *bgp.Table
	reg  *asdb.Registry
	db   *cities.DB
)

func testbed(t *testing.T) (*netsim.World, *bgp.Table) {
	t.Helper()
	once.Do(func() {
		cfg := netsim.DefaultConfig()
		cfg.Unicast24s = 2000
		w = netsim.New(cfg)
		tbl = bgp.FromWorld(w)
		reg = w.Registry
		db = cities.Default()
	})
	return w, tbl
}

// fakeResult builds a core.Result with located replicas in the named
// cities.
func fakeResult(t *testing.T, cityNames ...[2]string) core.Result {
	t.Helper()
	testbed(t)
	var reps []core.GeoReplica
	for _, nc := range cityNames {
		reps = append(reps, core.GeoReplica{Located: true, City: db.MustByName(nc[0], nc[1])})
	}
	return core.Result{Anycast: true, Replicas: reps}
}

func syntheticFindings(t *testing.T) []Finding {
	t.Helper()
	w, _ := testbed(t)
	cf := reg.MustByName("CLOUDFLARENET,US")
	lvl := reg.MustByName("LEVEL3,US")
	tail := reg.All()[120] // a tail AS
	mk := func(asn, i int, res core.Result) Finding {
		return Finding{Prefix: w.DeploymentsByASN(asn)[i].Prefix, ASN: asn, Result: res}
	}
	return []Finding{
		mk(cf.ASN, 0, fakeResult(t, [2]string{"Amsterdam", "NL"}, [2]string{"Tokyo", "JP"},
			[2]string{"New York", "US"}, [2]string{"Sydney", "AU"}, [2]string{"London", "GB"})),
		mk(cf.ASN, 1, fakeResult(t, [2]string{"Amsterdam", "NL"}, [2]string{"Tokyo", "JP"},
			[2]string{"Frankfurt", "DE"}, [2]string{"Singapore", "SG"}, [2]string{"Miami", "US"})),
		mk(lvl.ASN, 0, fakeResult(t, [2]string{"Dallas", "US"}, [2]string{"London", "GB"})),
		mk(tail.ASN, 0, fakeResult(t, [2]string{"Paris", "FR"}, [2]string{"Madrid", "ES"})),
	}
}

func TestGlanceOf(t *testing.T) {
	fs := syntheticFindings(t)
	g := GlanceOf(fs)
	if g.IP24s != 4 || g.ASes != 3 {
		t.Errorf("glance = %+v", g)
	}
	if g.Replicas != 5+5+2+2 {
		t.Errorf("replicas = %d", g.Replicas)
	}
	// Distinct cities: AMS TYO NYC SYD LON FRA SIN MIA DAL PAR MAD = 11.
	if g.Cities != 11 {
		t.Errorf("cities = %d, want 11", g.Cities)
	}
	if g.CC < 8 {
		t.Errorf("countries = %d", g.CC)
	}
}

func TestFilterMinReplicas(t *testing.T) {
	fs := syntheticFindings(t)
	top := FilterMinReplicas(fs, 5)
	// Only CloudFlare has a /24 with >= 5 replicas; both its /24s stay.
	if len(top) != 2 {
		t.Fatalf("FilterMinReplicas kept %d findings, want 2", len(top))
	}
	for _, f := range top {
		if f.ASN != reg.MustByName("CLOUDFLARENET,US").ASN {
			t.Error("non-CloudFlare finding survived the >=5 filter")
		}
	}
	if got := len(FilterMinReplicas(fs, 2)); got != 4 {
		t.Errorf("min=2 kept %d, want all 4", got)
	}
}

func TestFilterCAIDAAndAlexa(t *testing.T) {
	fs := syntheticFindings(t)
	caida := FilterCAIDATop100(fs, reg)
	if len(caida) != 1 || caida[0].ASN != reg.MustByName("LEVEL3,US").ASN {
		t.Errorf("CAIDA filter = %v", caida)
	}
	w, _ := testbed(t)
	alexa := FilterAlexaHosts(fs, w.AlexaHosted)
	if len(alexa) != 2 {
		t.Errorf("Alexa filter kept %d, want CloudFlare's 2", len(alexa))
	}
}

func TestPerAS(t *testing.T) {
	fs := syntheticFindings(t)
	sts := PerAS(fs, reg)
	if len(sts) != 3 {
		t.Fatalf("PerAS returned %d ASes", len(sts))
	}
	// Sorted by decreasing mean footprint: CloudFlare first.
	if sts[0].AS.Name != "CLOUDFLARENET,US" {
		t.Errorf("first AS = %v", sts[0].AS)
	}
	if sts[0].IP24s != 2 || sts[0].MeanReplicas != 5 || sts[0].StdReplicas != 0 {
		t.Errorf("CloudFlare stat = %+v", sts[0])
	}
	if sts[0].Cities != 8 {
		t.Errorf("CloudFlare cities = %d, want 8 distinct", sts[0].Cities)
	}
	if sts[0].MaxReplicas != 5 || sts[0].TotalReplicas != 10 {
		t.Errorf("CloudFlare max/total = %d/%d", sts[0].MaxReplicas, sts[0].TotalReplicas)
	}
}

func TestDistributionInputs(t *testing.T) {
	fs := syntheticFindings(t)
	rp := ReplicasPerPrefix(fs)
	if len(rp) != 4 {
		t.Fatal("ReplicasPerPrefix length")
	}
	sp := SubnetsPerAS(fs)
	if len(sp) != 3 || sp[0] != 1 || sp[2] != 2 {
		t.Errorf("SubnetsPerAS = %v", sp)
	}
}

func TestCategoryBreakdown(t *testing.T) {
	fs := syntheticFindings(t)
	bd := CategoryBreakdown(fs, reg)
	shares := map[string]float64{}
	var sum float64
	for _, cs := range bd {
		shares[cs.Category] = cs.Share
		sum += cs.Share
	}
	if shares["CDN"] == 0 || shares["ISP"] == 0 {
		t.Errorf("breakdown = %v", bd)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %v", sum)
	}
	// The ordering contract: share descending, category name breaking
	// ties.
	for i := 1; i < len(bd); i++ {
		if bd[i].Share > bd[i-1].Share ||
			(bd[i].Share == bd[i-1].Share && bd[i].Category < bd[i-1].Category) {
			t.Errorf("breakdown not sorted at %d: %v", i, bd)
		}
	}
}

func TestAttribute(t *testing.T) {
	w, tbl := testbed(t)
	// Build outcomes straight from ground truth prefixes.
	d := w.Deployments()[0]
	oc := []struct {
		p netsim.Prefix24
	}{{d.Prefix}}
	_ = oc
	fs := Attribute(nil, tbl)
	if len(fs) != 0 {
		t.Error("empty outcomes should yield no findings")
	}
}

func scanCampaign(t *testing.T) *portscan.Campaign {
	t.Helper()
	w, _ := testbed(t)
	vp := platform.PlanetLab(cities.Default()).VPs()[0]
	var targets []netsim.IP
	for _, name := range []string{"CLOUDFLARENET,US", "EDGECAST,US", "GOOGLE,US", "L-ROOT,US", "OVH,FR"} {
		as := reg.MustByName(name)
		ip, _ := w.Representative(w.DeploymentsByASN(as.ASN)[0].Prefix)
		targets = append(targets, ip)
	}
	return portscan.Scan(w, vp, targets, portscan.Config{
		Ports: []uint16{22, 25, 53, 80, 110, 143, 179, 443, 465, 554, 587, 993, 1935, 2052, 2053, 2082, 2083, 3306, 8080, 8443},
	})
}

func TestSummarizeScan(t *testing.T) {
	_, tbl := testbed(t)
	camp := scanCampaign(t)
	sum := SummarizeScan(camp, tbl)
	if sum.ScannedIPs != 5 {
		t.Errorf("scanned = %d", sum.ScannedIPs)
	}
	if sum.RespondingIPs < 4 || sum.ASes < 4 {
		t.Errorf("responding=%d ases=%d", sum.RespondingIPs, sum.ASes)
	}
	if sum.UnionPorts < 8 {
		t.Errorf("union ports = %d", sum.UnionPorts)
	}
	if sum.UnionWellKnown == 0 || sum.UnionSSL == 0 {
		t.Error("well-known/SSL counts empty")
	}
	if sum.Software < 3 {
		t.Errorf("software count = %d", sum.Software)
	}
	cf := reg.MustByName("CLOUDFLARENET,US")
	if sum.PortsPerAS[cf.ASN] < 8 {
		t.Errorf("CloudFlare ports = %d", sum.PortsPerAS[cf.ASN])
	}
}

func TestTopPorts(t *testing.T) {
	_, tbl := testbed(t)
	camp := scanCampaign(t)
	byAS := TopPortsByAS(camp, tbl, 10)
	if len(byAS) == 0 {
		t.Fatal("no ports")
	}
	// 53 or 80 should lead the per-AS count.
	if byAS[0].Port != 53 && byAS[0].Port != 80 && byAS[0].Port != 443 {
		t.Errorf("top per-AS port = %d", byAS[0].Port)
	}
	for i := 1; i < len(byAS); i++ {
		if byAS[i].Count > byAS[i-1].Count {
			t.Error("per-AS counts not sorted")
		}
	}
	byPrefix := TopPortsByPrefix(camp, 5)
	if len(byPrefix) != 5 {
		t.Errorf("cap not applied: %d", len(byPrefix))
	}
}

func TestSoftwareBreakdown(t *testing.T) {
	_, tbl := testbed(t)
	camp := scanCampaign(t)
	bd := SoftwareBreakdown(camp, tbl)
	if len(bd) < 3 {
		t.Fatalf("breakdown too small: %v", bd)
	}
	catRank := map[string]int{"DNS": 0, "Web": 1, "Mail": 2, "Other": 3}
	for i := 1; i < len(bd); i++ {
		if catRank[bd[i].Category] < catRank[bd[i-1].Category] {
			t.Error("categories out of order")
		}
	}
	for _, sc := range bd {
		if sc.ASes < 1 || sc.Category == "" {
			t.Errorf("bad software count %+v", sc)
		}
	}
}

func TestPortsCCDF(t *testing.T) {
	sum := ScanSummary{PortsPerAS: map[int]int{1: 1, 2: 3, 3: 3, 4: 10}}
	pts := PortsCCDF(sum)
	if len(pts) != 3 {
		t.Fatalf("CCDF = %v", pts)
	}
	if pts[0].P != 1 {
		t.Error("CCDF must start at 1")
	}
}

func TestFootprintCorrelation(t *testing.T) {
	sts := []ASStat{
		{MeanReplicas: 10, IP24s: 300},
		{MeanReplicas: 20, IP24s: 1},
		{MeanReplicas: 5, IP24s: 5},
		{MeanReplicas: 8, IP24s: 40},
	}
	r := FootprintCorrelation(sts)
	if r < -1 || r > 1 {
		t.Errorf("correlation out of range: %v", r)
	}
	if FootprintCorrelation(nil) != 0 {
		t.Error("empty correlation should be 0")
	}
}

func TestCountryDensity(t *testing.T) {
	fs := syntheticFindings(t)
	dens := CountryDensity(fs)
	if len(dens) == 0 {
		t.Fatal("no density rows")
	}
	total := 0
	usFound := false
	for i, cc := range dens {
		total += cc.Replicas
		if cc.CC == "US" {
			usFound = true
			if cc.Cities < 2 {
				t.Errorf("US cities = %d", cc.Cities)
			}
		}
		if i > 0 && cc.Replicas > dens[i-1].Replicas {
			t.Error("density not sorted")
		}
	}
	// All located replicas accounted for (synthetic findings are fully located).
	want := 0
	for _, f := range fs {
		want += f.Result.Count()
	}
	if total != want {
		t.Errorf("density total %d, want %d", total, want)
	}
	if !usFound {
		t.Error("US missing from density")
	}
	if got := CountryDensity(nil); len(got) != 0 {
		t.Error("empty findings should give empty density")
	}
}

func TestDensityMap(t *testing.T) {
	fs := syntheticFindings(t)
	m := DensityMap(fs, 72, 24)
	lines := strings.Split(strings.TrimRight(m, "\n"), "\n")
	if len(lines) != 26 { // border + 24 rows + border
		t.Fatalf("map has %d lines", len(lines))
	}
	for _, l := range lines[1:25] {
		if len(l) != 74 {
			t.Fatalf("row width %d", len(l))
		}
	}
	// Something must be plotted.
	if !strings.ContainsAny(m, ".:+*#@") {
		t.Error("map is empty")
	}
	// Degenerate dimensions fall back to defaults without panicking.
	if DensityMap(fs, 1, 1) == "" {
		t.Error("fallback dimensions produced nothing")
	}
}
