// Package analysis is the characterization pipeline of Sec. 4: it
// attributes detected anycast /24s to ASes via the routing table, builds
// the per-AS footprint statistics of the bird's-eye view (Fig. 9), the
// census-at-a-glance aggregates (Fig. 10), the category breakdown
// (Fig. 11), the distribution series of Figs. 12/13/15, and the portscan
// summaries of Figs. 14 and 16.
package analysis

import (
	"sort"

	"anycastmap/internal/asdb"
	"anycastmap/internal/bgp"
	"anycastmap/internal/census"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/portscan"
	"anycastmap/internal/services"
	"anycastmap/internal/stats"
)

// Finding is one detected anycast /24 attributed to its origin AS.
type Finding struct {
	Prefix netsim.Prefix24
	ASN    int
	Result core.Result
}

// Attribute maps census outcomes to findings using the routing table (the
// a-posteriori /24-to-announcement mapping of Sec. 3.1). Outcomes whose
// prefix has no origin are dropped.
func Attribute(outcomes []census.Outcome, table *bgp.Table) []Finding {
	out := make([]Finding, 0, len(outcomes))
	for _, o := range outcomes {
		asn, ok := table.OriginAS(o.Prefix())
		if !ok {
			continue
		}
		out = append(out, Finding{Prefix: o.Prefix(), ASN: asn, Result: o.Result})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix < out[j].Prefix })
	return out
}

// Glance is one row of the Fig. 10 table.
type Glance struct {
	IP24s    int
	ASes     int
	Cities   int
	CC       int
	Replicas int
}

// GlanceOf aggregates a finding set: distinct /24s and ASes, distinct
// located cities and their countries, and the total enumerated replicas.
func GlanceOf(fs []Finding) Glance {
	ases := map[int]bool{}
	cityCC := map[string]string{}
	g := Glance{}
	for _, f := range fs {
		g.IP24s++
		ases[f.ASN] = true
		g.Replicas += f.Result.Count()
		for _, r := range f.Result.Replicas {
			if r.Located {
				cityCC[r.City.Key()] = r.City.CC
			}
		}
	}
	ccs := map[string]bool{}
	for _, cc := range cityCC {
		ccs[cc] = true
	}
	g.ASes = len(ases)
	g.Cities = len(cityCC)
	g.CC = len(ccs)
	return g
}

// FilterMinReplicas keeps the findings of ASes for which the census
// enumerated at least min replicas on some /24 (the paper's top-100
// criterion with min=5).
func FilterMinReplicas(fs []Finding, min int) []Finding {
	maxByAS := map[int]int{}
	for _, f := range fs {
		if c := f.Result.Count(); c > maxByAS[f.ASN] {
			maxByAS[f.ASN] = c
		}
	}
	var out []Finding
	for _, f := range fs {
		if maxByAS[f.ASN] >= min {
			out = append(out, f)
		}
	}
	return out
}

// FilterCAIDATop100 keeps findings of ASes in the CAIDA top-100 rank.
func FilterCAIDATop100(fs []Finding, reg *asdb.Registry) []Finding {
	var out []Finding
	for _, f := range fs {
		if a, ok := reg.ByASN(f.ASN); ok && a.CAIDARank > 0 && a.CAIDARank <= 100 {
			out = append(out, f)
		}
	}
	return out
}

// FilterAlexaHosts keeps the findings whose /24 actually serves an Alexa
// top-100k website, per the public DNS-resolution mapping (Fig. 10 counts
// the hosting /24s, not every prefix of the hosting ASes).
func FilterAlexaHosts(fs []Finding, hosted func(netsim.Prefix24) bool) []Finding {
	var out []Finding
	for _, f := range fs {
		if hosted(f.Prefix) {
			out = append(out, f)
		}
	}
	return out
}

// ASStat is one AS row of the Fig. 9 bird's-eye view.
type ASStat struct {
	AS            asdb.AS
	IP24s         int
	MeanReplicas  float64
	StdReplicas   float64
	MaxReplicas   int
	TotalReplicas int
	// Cities is the AS-wide set of located replica cities.
	Cities int
	// OpenPorts is filled from the portscan summary when available.
	OpenPorts int
}

// PerAS groups findings by AS and computes the footprint statistics,
// sorted by decreasing mean geographical footprint (the Fig. 9 x-axis
// order). ASes missing from the registry are skipped.
func PerAS(fs []Finding, reg *asdb.Registry) []ASStat {
	group := map[int][]Finding{}
	for _, f := range fs {
		group[f.ASN] = append(group[f.ASN], f)
	}
	var out []ASStat
	for asn, asFs := range group {
		a, ok := reg.ByASN(asn)
		if !ok {
			continue
		}
		st := ASStat{AS: a, IP24s: len(asFs)}
		var counts []float64
		citySet := map[string]bool{}
		for _, f := range asFs {
			c := f.Result.Count()
			counts = append(counts, float64(c))
			st.TotalReplicas += c
			if c > st.MaxReplicas {
				st.MaxReplicas = c
			}
			for _, r := range f.Result.Replicas {
				if r.Located {
					citySet[r.City.Key()] = true
				}
			}
		}
		st.MeanReplicas = stats.Mean(counts)
		st.StdReplicas = stats.StdDev(counts)
		st.Cities = len(citySet)
		out = append(out, st)
	}
	// Total order with explicit tie-breaks: mean desc, then ASN asc, then
	// name asc — output diffs are stable run to run.
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanReplicas != out[j].MeanReplicas {
			return out[i].MeanReplicas > out[j].MeanReplicas
		}
		if out[i].AS.ASN != out[j].AS.ASN {
			return out[i].AS.ASN < out[j].AS.ASN
		}
		return out[i].AS.Name < out[j].AS.Name
	})
	return out
}

// ReplicasPerPrefix returns the per-/24 replica counts (the Fig. 12 CDF
// input).
func ReplicasPerPrefix(fs []Finding) []float64 {
	out := make([]float64, len(fs))
	for i, f := range fs {
		out[i] = float64(f.Result.Count())
	}
	return out
}

// SubnetsPerAS returns the per-AS anycast /24 counts (the Fig. 13 CDF
// input).
func SubnetsPerAS(fs []Finding) []float64 {
	byAS := map[int]int{}
	for _, f := range fs {
		byAS[f.ASN]++
	}
	out := make([]float64, 0, len(byAS))
	for _, n := range byAS {
		out = append(out, float64(n))
	}
	sort.Float64s(out)
	return out
}

// CategoryShare is one category's fraction of the distinct-AS set.
type CategoryShare struct {
	Category string
	Share    float64
}

// CategoryBreakdown computes the Fig. 11 coarse-category shares over the
// distinct ASes of the findings, sorted by share descending with the
// category name as tie-break — a fully deterministic ordering, unlike
// the map it aggregates from.
func CategoryBreakdown(fs []Finding, reg *asdb.Registry) []CategoryShare {
	seen := map[int]bool{}
	var ases []asdb.AS
	for _, f := range fs {
		if seen[f.ASN] {
			continue
		}
		seen[f.ASN] = true
		if a, ok := reg.ByASN(f.ASN); ok {
			ases = append(ases, a)
		}
	}
	bd := asdb.CategoryBreakdown(ases)
	out := make([]CategoryShare, 0, len(bd))
	for cat, share := range bd {
		out = append(out, CategoryShare{Category: cat, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// ScanSummary aggregates a portscan campaign (the Fig. 14 header row).
type ScanSummary struct {
	ScannedIPs    int
	RespondingIPs int
	// ASes counts distinct ASes with at least one open TCP port.
	ASes int
	// UnionPorts / UnionWellKnown / UnionSSL size the distinct port
	// universe across the whole campaign.
	UnionPorts     int
	UnionWellKnown int
	UnionSSL       int
	// Software counts distinct fingerprinted implementations.
	Software int
	// PortsPerAS maps ASN -> number of distinct open ports across the
	// AS's scanned hosts (the Fig. 15 CCDF input).
	PortsPerAS map[int]int
}

// SummarizeScan aggregates a campaign, attributing hosts via the routing
// table.
func SummarizeScan(camp *portscan.Campaign, table *bgp.Table) ScanSummary {
	sum := ScanSummary{
		ScannedIPs: len(camp.Reports),
		PortsPerAS: map[int]int{},
	}
	unionPorts := map[uint16]bool{}
	sslPorts := map[uint16]bool{}
	softwareSet := map[string]bool{}
	asPorts := map[int]map[uint16]bool{}
	for _, rep := range camp.Reports {
		if !rep.Responded() {
			continue
		}
		sum.RespondingIPs++
		asn, ok := table.OriginAS(rep.Target.Prefix())
		if !ok {
			continue
		}
		if asPorts[asn] == nil {
			asPorts[asn] = map[uint16]bool{}
		}
		for _, p := range rep.Open {
			unionPorts[p.Port] = true
			asPorts[asn][p.Port] = true
			if p.SSL {
				sslPorts[p.Port] = true
			}
			if p.Software != "" {
				softwareSet[p.Software] = true
			}
		}
	}
	for p := range unionPorts {
		if services.IsWellKnown(p) {
			sum.UnionWellKnown++
		}
	}
	sum.UnionSSL = len(sslPorts)
	for asn, ports := range asPorts {
		sum.PortsPerAS[asn] = len(ports)
	}
	sum.ASes = len(asPorts)
	sum.UnionPorts = len(unionPorts)
	sum.Software = len(softwareSet)
	return sum
}

// PortCount is one bar of the Fig. 14 top-10 plots.
type PortCount struct {
	Port  uint16
	Count int
}

// TopPortsByAS returns the ports ordered by how many distinct ASes have
// them open, capped at n.
func TopPortsByAS(camp *portscan.Campaign, table *bgp.Table, n int) []PortCount {
	byPort := map[uint16]map[int]bool{}
	for _, rep := range camp.Reports {
		asn, ok := table.OriginAS(rep.Target.Prefix())
		if !ok {
			continue
		}
		for _, p := range rep.Open {
			if byPort[p.Port] == nil {
				byPort[p.Port] = map[int]bool{}
			}
			byPort[p.Port][asn] = true
		}
	}
	return topCounts(byPort, n)
}

// TopPortsByPrefix returns the ports ordered by how many scanned /24s have
// them open, capped at n. Comparing it with TopPortsByAS exposes the class
// imbalance of Sec. 4.3: CloudFlare's 328 /24s dominate the per-/24 view.
func TopPortsByPrefix(camp *portscan.Campaign, n int) []PortCount {
	byPort := map[uint16]map[netsim.Prefix24]bool{}
	for _, rep := range camp.Reports {
		for _, p := range rep.Open {
			if byPort[p.Port] == nil {
				byPort[p.Port] = map[netsim.Prefix24]bool{}
			}
			byPort[p.Port][rep.Target.Prefix()] = true
		}
	}
	return topCounts(byPort, n)
}

func topCounts[K comparable](byPort map[uint16]map[K]bool, n int) []PortCount {
	out := make([]PortCount, 0, len(byPort))
	for p, set := range byPort {
		out = append(out, PortCount{Port: p, Count: len(set)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Port < out[j].Port
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// SoftwareCount is one bar of the Fig. 16 breakdown.
type SoftwareCount struct {
	Software string
	Category string // DNS / Web / Mail / Other
	ASes     int
}

// SoftwareBreakdown counts, per fingerprinted software, the distinct ASes
// running it, grouped in Fig. 16 category order.
func SoftwareBreakdown(camp *portscan.Campaign, table *bgp.Table) []SoftwareCount {
	bySW := map[string]map[int]bool{}
	for _, rep := range camp.Reports {
		asn, ok := table.OriginAS(rep.Target.Prefix())
		if !ok {
			continue
		}
		for _, p := range rep.Open {
			if p.Software == "" {
				continue
			}
			if bySW[p.Software] == nil {
				bySW[p.Software] = map[int]bool{}
			}
			bySW[p.Software][asn] = true
		}
	}
	// An unlisted category must not collide with DNS's rank 0: unknown
	// categories sort last, alphabetically, keeping the order total.
	catRank := map[string]int{"DNS": 0, "Web": 1, "Mail": 2, "Other": 3}
	rank := func(cat string) int {
		if r, ok := catRank[cat]; ok {
			return r
		}
		return len(catRank)
	}
	out := make([]SoftwareCount, 0, len(bySW))
	for sw, ases := range bySW {
		out = append(out, SoftwareCount{
			Software: sw,
			Category: services.SoftwareCategory(sw),
			ASes:     len(ases),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := rank(out[i].Category), rank(out[j].Category)
		if ci != cj {
			return ci < cj
		}
		if out[i].Category != out[j].Category {
			return out[i].Category < out[j].Category
		}
		if out[i].ASes != out[j].ASes {
			return out[i].ASes > out[j].ASes
		}
		return out[i].Software < out[j].Software
	})
	return out
}

// PortsCCDF returns the Fig. 15 series: the CCDF of distinct open TCP
// ports per AS.
func PortsCCDF(sum ScanSummary) []stats.Point {
	var xs []float64
	for _, n := range sum.PortsPerAS {
		xs = append(xs, float64(n))
	}
	return stats.CCDF(xs)
}

// FootprintCorrelation returns the Pearson correlation between the
// geographical footprint (mean replicas) and the /24 footprint of the
// given AS stats - the paper reports a weak 0.35, evidence that the two
// dimensions of anycast deployment are independent choices.
func FootprintCorrelation(sts []ASStat) float64 {
	var geo, ip24 []float64
	for _, st := range sts {
		geo = append(geo, st.MeanReplicas)
		ip24 = append(ip24, float64(st.IP24s))
	}
	return stats.Pearson(geo, ip24)
}
