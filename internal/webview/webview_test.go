package webview

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"anycastmap/internal/analysis"
	"anycastmap/internal/asdb"
	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/store"
)

// testServer builds a server over two synthetic findings published
// through a store, the same wiring cmd/webview uses.
func testServer(t *testing.T) (*Server, []analysis.Finding) {
	t.Helper()
	reg := asdb.Default()
	db := cities.Default()
	cf := reg.MustByName("CLOUDFLARENET,US")
	lvl := reg.MustByName("LEVEL3,US")
	mk := func(name, cc string) core.GeoReplica {
		return core.GeoReplica{VP: "vp-" + name, Located: true, City: db.MustByName(name, cc)}
	}
	p1, _ := netsim.ParsePrefix24("188.114.97.0/24")
	p2, _ := netsim.ParsePrefix24("4.68.30.0/24")
	fs := []analysis.Finding{
		{Prefix: p1, ASN: cf.ASN, Result: core.Result{Anycast: true, Replicas: []core.GeoReplica{
			mk("Amsterdam", "NL"), mk("Tokyo", "JP"), mk("New York", "US"),
		}}},
		{Prefix: p2, ASN: lvl.ASN, Result: core.Result{Anycast: true, Replicas: []core.GeoReplica{
			mk("Dallas", "US"), {VP: "vp-x", Located: false},
		}}},
	}
	st := store.New(store.Options{})
	st.Publish(store.NewSnapshot(fs, reg, 1, 1))
	s, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	return s, fs
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealth(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"findings":2`) {
		t.Errorf("health body = %s", rec.Body.String())
	}
}

func TestIndexHTML(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"188.114.97.0/24", "CLOUDFLARENET,US", "amsterdam,nl", "<table>"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// The larger deployment sorts first.
	if strings.Index(body, "188.114.97.0/24") > strings.Index(body, "4.68.30.0/24") {
		t.Error("findings not sorted by replica count")
	}
	if got := get(t, s, "/nonexistent"); got.Code != http.StatusNotFound {
		t.Errorf("unknown path status %d", got.Code)
	}
}

func TestFindingsAPI(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/api/findings")
	var out []Finding
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d findings", len(out))
	}
	if out[0].Replicas != 3 || out[0].ASName != "CLOUDFLARENET,US" {
		t.Errorf("first finding = %+v", out[0])
	}
	if len(out[0].Cities) != 3 {
		t.Errorf("cities = %v", out[0].Cities)
	}

	// AS filter.
	rec = get(t, s, "/api/findings?as=level3")
	out = nil
	json.Unmarshal(rec.Body.Bytes(), &out)
	if len(out) != 1 || out[0].ASName != "LEVEL3,US" {
		t.Errorf("filtered findings = %+v", out)
	}
	// Min filter.
	rec = get(t, s, "/api/findings?min=3")
	out = nil
	json.Unmarshal(rec.Body.Bytes(), &out)
	if len(out) != 1 || out[0].Replicas != 3 {
		t.Errorf("min-filtered findings = %+v", out)
	}
}

func TestGeoJSON(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/api/geojson?prefix=188.114.97.0/24")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var coll struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string     `json:"type"`
				Coordinates [2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &coll); err != nil {
		t.Fatal(err)
	}
	if coll.Type != "FeatureCollection" || len(coll.Features) != 3 {
		t.Fatalf("collection = %+v", coll)
	}
	// RFC 7946: [lon, lat]. Amsterdam is ~(4.9 E, 52.4 N).
	found := false
	for _, f := range coll.Features {
		if f.Properties["city"] == "Amsterdam" {
			found = true
			if f.Geometry.Coordinates[0] < 4 || f.Geometry.Coordinates[0] > 6 {
				t.Errorf("Amsterdam lon = %v", f.Geometry.Coordinates[0])
			}
			if f.Geometry.Coordinates[1] < 52 || f.Geometry.Coordinates[1] > 53 {
				t.Errorf("Amsterdam lat = %v", f.Geometry.Coordinates[1])
			}
		}
	}
	if !found {
		t.Error("Amsterdam feature missing")
	}
}

func TestGeoJSONErrors(t *testing.T) {
	s, _ := testServer(t)
	if rec := get(t, s, "/api/geojson"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing prefix: status %d", rec.Code)
	}
	if rec := get(t, s, "/api/geojson?prefix=banana"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad prefix: status %d", rec.Code)
	}
	if rec := get(t, s, "/api/geojson?prefix=9.9.9.0/24"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown prefix: status %d", rec.Code)
	}
}

func TestUnlocatedReplicaFeature(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/api/geojson?prefix=4.68.30.0/24")
	var coll geoJSONCollection
	if err := json.Unmarshal(rec.Body.Bytes(), &coll); err != nil {
		t.Fatal(err)
	}
	unlocated := 0
	for _, f := range coll.Features {
		if f.Properties["located"] == false {
			unlocated++
			if _, hasCity := f.Properties["city"]; hasCity {
				t.Error("unlocated replica carries a city")
			}
		}
	}
	if unlocated != 1 {
		t.Errorf("unlocated features = %d, want 1", unlocated)
	}
}

func TestServesOverRealSocket(t *testing.T) {
	// End to end over a real TCP listener.
	s, _ := testServer(t)
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/findings")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
}

func TestSnapshotSwapVisibleWithoutRestart(t *testing.T) {
	// The browser shares the hot-swappable index with anycastd: a
	// background refresh must show up on the next request.
	reg := asdb.Default()
	db := cities.Default()
	cf := reg.MustByName("CLOUDFLARENET,US")
	p1, _ := netsim.ParsePrefix24("188.114.97.0/24")
	fs := []analysis.Finding{{Prefix: p1, ASN: cf.ASN, Result: core.Result{
		Anycast: true,
		Replicas: []core.GeoReplica{
			{VP: "vp-a", Located: true, City: db.MustByName("Amsterdam", "NL")},
		},
	}}}

	st := store.New(store.Options{})
	s, err := New(st)
	if err != nil {
		t.Fatal(err)
	}
	// Empty store: zero findings, not an error.
	rec := get(t, s, "/api/findings")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("empty store served %d: %s", rec.Code, rec.Body.String())
	}

	st.Publish(store.NewSnapshot(fs, reg, 1, 1))
	var out []Finding
	if err := json.Unmarshal(get(t, s, "/api/findings").Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Prefix != "188.114.97.0/24" {
		t.Fatalf("first snapshot not visible: %+v", out)
	}

	// Swap in a snapshot with an extra deployment.
	p2, _ := netsim.ParsePrefix24("4.68.30.0/24")
	lvl := reg.MustByName("LEVEL3,US")
	fs = append(fs, analysis.Finding{Prefix: p2, ASN: lvl.ASN, Result: core.Result{
		Anycast: true,
		Replicas: []core.GeoReplica{
			{VP: "vp-b", Located: true, City: db.MustByName("Dallas", "US")},
		},
	}})
	st.Publish(store.NewSnapshot(fs, reg, 2, 1))
	out = nil
	if err := json.Unmarshal(get(t, s, "/api/findings").Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("swap not visible: %+v", out)
	}
	if rec := get(t, s, "/api/geojson?prefix=4.68.30.0/24"); rec.Code != http.StatusOK {
		t.Errorf("new deployment's geojson: %d", rec.Code)
	}
}
