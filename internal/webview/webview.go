// Package webview serves the census results for browsing, the equivalent
// of the paper's public dataset site (reference [21]): an HTML index of
// every detected anycast /24, a JSON API, and per-deployment GeoJSON of the
// geolocated replicas, suitable for dropping onto any map widget.
//
// The server exposes measurement results only - nothing from the
// simulator's ground truth.
package webview

import (
	"embed"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"

	"anycastmap/internal/analysis"
	"anycastmap/internal/asdb"
	"anycastmap/internal/netsim"
)

// Finding is the JSON shape of one detected anycast /24.
type Finding struct {
	Prefix   string   `json:"prefix"`
	ASN      int      `json:"asn"`
	ASName   string   `json:"as_name"`
	Category string   `json:"category"`
	Replicas int      `json:"replicas"`
	Cities   []string `json:"cities"`
}

// replica is one geolocated instance for the GeoJSON output.
type replica struct {
	city    string
	cc      string
	lat     float64
	lon     float64
	viaVP   string
	located bool
}

// Server is the census browser; it implements http.Handler.
type Server struct {
	mux      *http.ServeMux
	findings []Finding
	replicas map[string][]replica // prefix -> geolocated replicas
	tmpl     *template.Template
}

//go:embed index.html.tmpl
var templates embed.FS

// New builds a server over attributed census findings.
func New(fs []analysis.Finding, reg *asdb.Registry) (*Server, error) {
	tmpl, err := template.ParseFS(templates, "index.html.tmpl")
	if err != nil {
		return nil, fmt.Errorf("webview: %w", err)
	}
	s := &Server{
		mux:      http.NewServeMux(),
		replicas: map[string][]replica{},
		tmpl:     tmpl,
	}
	for _, f := range fs {
		name, cat := "", ""
		if as, ok := reg.ByASN(f.ASN); ok {
			name, cat = as.Name, as.Category.String()
		}
		entry := Finding{
			Prefix:   f.Prefix.String(),
			ASN:      f.ASN,
			ASName:   name,
			Category: cat,
			Replicas: f.Result.Count(),
			Cities:   f.Result.Cities(),
		}
		s.findings = append(s.findings, entry)
		for _, r := range f.Result.Replicas {
			rep := replica{viaVP: r.VP, located: r.Located}
			if r.Located {
				rep.city, rep.cc = r.City.Name, r.City.CC
				rep.lat, rep.lon = r.City.Loc.Lat, r.City.Loc.Lon
			} else {
				rep.lat, rep.lon = r.Disk.Center.Lat, r.Disk.Center.Lon
			}
			s.replicas[entry.Prefix] = append(s.replicas[entry.Prefix], rep)
		}
	}
	sort.Slice(s.findings, func(i, j int) bool {
		if s.findings[i].Replicas != s.findings[j].Replicas {
			return s.findings[i].Replicas > s.findings[j].Replicas
		}
		return s.findings[i].Prefix < s.findings[j].Prefix
	})

	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/findings", s.handleFindings)
	s.mux.HandleFunc("GET /api/geojson", s.handleGeoJSON)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","findings":%d}`, len(s.findings))
}

// handleIndex renders the HTML table.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	limit := 200
	if len(s.findings) < limit {
		limit = len(s.findings)
	}
	data := struct {
		Total    int
		Shown    int
		Findings []Finding
	}{Total: len(s.findings), Shown: limit, Findings: s.findings[:limit]}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.tmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleFindings serves the full finding list, optionally filtered by AS
// name substring (?as=cloudflare) or minimum replicas (?min=5).
func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	asFilter := strings.ToLower(r.URL.Query().Get("as"))
	min := 0
	if _, err := fmt.Sscanf(r.URL.Query().Get("min"), "%d", &min); err != nil {
		min = 0
	}
	out := make([]Finding, 0, len(s.findings))
	for _, f := range s.findings {
		if asFilter != "" && !strings.Contains(strings.ToLower(f.ASName), asFilter) {
			continue
		}
		if f.Replicas < min {
			continue
		}
		out = append(out, f)
	}
	writeJSON(w, out)
}

// geoJSON types, the subset of RFC 7946 the browser needs.
type geoJSONFeature struct {
	Type       string         `json:"type"`
	Geometry   geoJSONPoint   `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geoJSONPoint struct {
	Type        string     `json:"type"`
	Coordinates [2]float64 `json:"coordinates"` // lon, lat per RFC 7946
}

type geoJSONCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

// handleGeoJSON serves one deployment's replicas as a FeatureCollection
// (?prefix=188.114.97.0/24).
func (s *Server) handleGeoJSON(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	if prefix == "" {
		http.Error(w, "missing ?prefix=", http.StatusBadRequest)
		return
	}
	if _, err := netsim.ParsePrefix24(prefix); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reps, ok := s.replicas[prefix]
	if !ok {
		http.Error(w, "prefix not in the census results", http.StatusNotFound)
		return
	}
	coll := geoJSONCollection{Type: "FeatureCollection"}
	for _, rep := range reps {
		props := map[string]any{"via": rep.viaVP, "located": rep.located}
		if rep.located {
			props["city"] = rep.city
			props["cc"] = rep.cc
		}
		coll.Features = append(coll.Features, geoJSONFeature{
			Type:       "Feature",
			Geometry:   geoJSONPoint{Type: "Point", Coordinates: [2]float64{rep.lon, rep.lat}},
			Properties: props,
		})
	}
	writeJSON(w, coll)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
