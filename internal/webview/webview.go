// Package webview serves the census results for browsing, the equivalent
// of the paper's public dataset site (reference [21]): an HTML index of
// every detected anycast /24, a JSON API, and per-deployment GeoJSON of the
// geolocated replicas, suitable for dropping onto any map widget.
//
// The server reads from a store.Store — the same hot-swappable index that
// backs cmd/anycastd — so a background refresh becomes visible to the
// browser on the next request without a restart. The rendered view
// (sorted finding list, per-prefix replica map) is derived once per
// snapshot version and cached behind an atomic pointer.
//
// The server exposes measurement results only - nothing from the
// simulator's ground truth.
package webview

import (
	"embed"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"

	"anycastmap/internal/netsim"
	"anycastmap/internal/store"
)

// Finding is the JSON shape of one detected anycast /24.
type Finding struct {
	Prefix   string   `json:"prefix"`
	ASN      int      `json:"asn"`
	ASName   string   `json:"as_name"`
	Category string   `json:"category"`
	Replicas int      `json:"replicas"`
	Cities   []string `json:"cities"`
}

// replica is one geolocated instance for the GeoJSON output.
type replica struct {
	city    string
	cc      string
	lat     float64
	lon     float64
	viaVP   string
	located bool
}

// view is the render-ready projection of one snapshot version.
type view struct {
	version  uint64
	findings []Finding
	replicas map[string][]replica // prefix -> geolocated replicas
}

// Server is the census browser; it implements http.Handler.
type Server struct {
	mux   *http.ServeMux
	store *store.Store
	tmpl  *template.Template
	view  atomic.Pointer[view]
}

//go:embed index.html.tmpl
var templates embed.FS

// New builds a server over the census index. The store may be empty (the
// browser shows zero findings) and may be refreshed behind the server's
// back at any time.
func New(st *store.Store) (*Server, error) {
	tmpl, err := template.ParseFS(templates, "index.html.tmpl")
	if err != nil {
		return nil, fmt.Errorf("webview: %w", err)
	}
	s := &Server{
		mux:   http.NewServeMux(),
		store: st,
		tmpl:  tmpl,
	}
	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/findings", s.handleFindings)
	s.mux.HandleFunc("GET /api/geojson", s.handleGeoJSON)
	return s, nil
}

// currentView projects the live snapshot, reusing the cached projection
// while the snapshot version is unchanged. Concurrent rebuilds after a
// swap are benign: they produce identical views and the last store wins.
func (s *Server) currentView() *view {
	// Acquire pins a file-backed snapshot's mapping while buildView walks
	// its entries; for in-heap snapshots the pin is free.
	snap, release := s.store.Acquire()
	defer release()
	if snap == nil {
		return &view{replicas: map[string][]replica{}}
	}
	if v := s.view.Load(); v != nil && v.version == snap.Version() {
		return v
	}
	v := buildView(snap)
	s.view.Store(v)
	return v
}

// buildView flattens a snapshot into the browser's sorted finding list
// and per-prefix replica map.
func buildView(snap *store.Snapshot) *view {
	v := &view{
		version:  snap.Version(),
		replicas: map[string][]replica{},
	}
	for _, e := range snap.Entries() {
		prefix := e.Prefix.String()
		v.findings = append(v.findings, Finding{
			Prefix:   prefix,
			ASN:      e.ASN,
			ASName:   e.ASName,
			Category: e.Category,
			Replicas: e.Replicas,
			Cities:   e.Cities,
		})
		for _, in := range e.Instances {
			v.replicas[prefix] = append(v.replicas[prefix], replica{
				city: in.City, cc: in.CC,
				lat: in.Lat, lon: in.Lon,
				viaVP: in.ViaVP, located: in.Located,
			})
		}
	}
	sort.Slice(v.findings, func(i, j int) bool {
		if v.findings[i].Replicas != v.findings[j].Replicas {
			return v.findings[i].Replicas > v.findings[j].Replicas
		}
		return v.findings[i].Prefix < v.findings[j].Prefix
	})
	return v
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	v := s.currentView()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","findings":%d,"snapshot_version":%d}`, len(v.findings), v.version)
}

// handleIndex renders the HTML table.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	v := s.currentView()
	limit := 200
	if len(v.findings) < limit {
		limit = len(v.findings)
	}
	data := struct {
		Total    int
		Shown    int
		Findings []Finding
	}{Total: len(v.findings), Shown: limit, Findings: v.findings[:limit]}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.tmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleFindings serves the full finding list, optionally filtered by AS
// name substring (?as=cloudflare) or minimum replicas (?min=5).
func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	v := s.currentView()
	asFilter := strings.ToLower(r.URL.Query().Get("as"))
	min := 0
	if _, err := fmt.Sscanf(r.URL.Query().Get("min"), "%d", &min); err != nil {
		min = 0
	}
	out := make([]Finding, 0, len(v.findings))
	for _, f := range v.findings {
		if asFilter != "" && !strings.Contains(strings.ToLower(f.ASName), asFilter) {
			continue
		}
		if f.Replicas < min {
			continue
		}
		out = append(out, f)
	}
	writeJSON(w, out)
}

// geoJSON types, the subset of RFC 7946 the browser needs.
type geoJSONFeature struct {
	Type       string         `json:"type"`
	Geometry   geoJSONPoint   `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geoJSONPoint struct {
	Type        string     `json:"type"`
	Coordinates [2]float64 `json:"coordinates"` // lon, lat per RFC 7946
}

type geoJSONCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

// handleGeoJSON serves one deployment's replicas as a FeatureCollection
// (?prefix=188.114.97.0/24).
func (s *Server) handleGeoJSON(w http.ResponseWriter, r *http.Request) {
	prefix := r.URL.Query().Get("prefix")
	if prefix == "" {
		http.Error(w, "missing ?prefix=", http.StatusBadRequest)
		return
	}
	if _, err := netsim.ParsePrefix24(prefix); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reps, ok := s.currentView().replicas[prefix]
	if !ok {
		http.Error(w, "prefix not in the census results", http.StatusNotFound)
		return
	}
	coll := geoJSONCollection{Type: "FeatureCollection"}
	for _, rep := range reps {
		props := map[string]any{"via": rep.viaVP, "located": rep.located}
		if rep.located {
			props["city"] = rep.city
			props["cc"] = rep.cc
		}
		coll.Features = append(coll.Features, geoJSONFeature{
			Type:       "Feature",
			Geometry:   geoJSONPoint{Type: "Point", Coordinates: [2]float64{rep.lon, rep.lat}},
			Properties: props,
		})
	}
	writeJSON(w, coll)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
