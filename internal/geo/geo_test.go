package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Well-known city coordinates used across the tests.
var (
	paris    = Coord{48.8566, 2.3522}
	london   = Coord{51.5074, -0.1278}
	nyc      = Coord{40.7128, -74.0060}
	tokyo    = Coord{35.6762, 139.6503}
	sydney   = Coord{-33.8688, 151.2093}
	ashburn  = Coord{39.0438, -77.4874}
	phila    = Coord{39.9526, -75.1652}
	northPol = Coord{90, 0}
	southPol = Coord{-90, 0}
)

func randCoord(r *rand.Rand) Coord {
	return Coord{Lat: r.Float64()*180 - 90, Lon: r.Float64()*360 - 180}
}

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name string
		a, b Coord
		want float64 // km
		tol  float64
	}{
		{"paris-london", paris, london, 344, 10},
		{"paris-nyc", paris, nyc, 5837, 30},
		{"nyc-tokyo", nyc, tokyo, 10850, 60},
		{"london-sydney", london, sydney, 16994, 80},
		{"ashburn-philadelphia", ashburn, phila, 220, 15},
		{"poles", northPol, southPol, math.Pi * EarthRadiusKm, 1},
		{"same-point", tokyo, tokyo, 0, 1e-6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := DistanceKm(c.a, c.b)
			if math.Abs(got-c.want) > c.tol {
				t.Errorf("DistanceKm(%v,%v) = %.1f, want %.1f±%.0f", c.a, c.b, got, c.want, c.tol)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceBounds(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		d := DistanceKm(a, b)
		return d >= 0 && d <= MaxSurfaceDistanceKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := randCoord(r), randCoord(r), randCoord(r)
		ab := DistanceKm(a, b)
		bc := DistanceKm(b, c)
		ac := DistanceKm(a, c)
		if ac > ab+bc+1e-6 {
			t.Fatalf("triangle inequality violated: d(%v,%v)=%.3f > %.3f+%.3f", a, c, ac, ab, bc)
		}
	}
}

func TestDistanceIdentity(t *testing.T) {
	f := func(lat, lon float64) bool {
		c := Coord{clampLat(lat), clampLon(lon)}
		return DistanceKm(c, c) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 180) - 90
}

func clampLon(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 360) - 180
}

func TestRTTToRadius(t *testing.T) {
	// 10 ms RTT -> 5 ms one-way -> ~999.3 km at 2/3 c.
	got := RTTToRadiusKm(10 * time.Millisecond)
	want := 5 * FiberSpeedKmPerMs
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("RTTToRadiusKm(10ms) = %v, want %v", got, want)
	}
	if RTTToRadiusKm(0) != 0 {
		t.Errorf("RTTToRadiusKm(0) = %v, want 0", RTTToRadiusKm(0))
	}
}

func TestPropagationRTTRoundTrip(t *testing.T) {
	// The disk built from the physical propagation RTT between two points
	// must contain the remote point (radius == distance).
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{clampLat(lat1), clampLon(lon1)}
		b := Coord{clampLat(lat2), clampLon(lon2)}
		rtt := PropagationRTT(a, b)
		d := DiskFromRTT(a, rtt)
		return d.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiskFromRTTClampsToEarth(t *testing.T) {
	d := DiskFromRTT(paris, 10*time.Hour)
	if d.RadiusKm > MaxSurfaceDistanceKm {
		t.Errorf("radius %v exceeds max surface distance", d.RadiusKm)
	}
}

func TestDiskOverlap(t *testing.T) {
	a := Disk{Center: paris, RadiusKm: 200}
	b := Disk{Center: london, RadiusKm: 200}
	if !a.Overlaps(b) {
		t.Errorf("paris(200) and london(200) should overlap (distance ~344km)")
	}
	c := Disk{Center: london, RadiusKm: 100}
	aSmall := Disk{Center: paris, RadiusKm: 100}
	if aSmall.Overlaps(c) {
		t.Errorf("paris(100) and london(100) should not overlap")
	}
	// Overlap is symmetric.
	f := func(lat1, lon1, r1, lat2, lon2, r2 float64) bool {
		d1 := Disk{Coord{clampLat(lat1), clampLon(lon1)}, math.Abs(math.Mod(r1, 20000))}
		d2 := Disk{Coord{clampLat(lat2), clampLon(lon2)}, math.Abs(math.Mod(r2, 20000))}
		return d1.Overlaps(d2) == d2.Overlaps(d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiskContainsCenter(t *testing.T) {
	f := func(lat, lon, r float64) bool {
		d := Disk{Coord{clampLat(lat), clampLon(lon)}, math.Abs(math.Mod(r, 20000))}
		return d.Contains(d.Center)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegenerate(t *testing.T) {
	if !(Disk{paris, 0}).Degenerate() {
		t.Error("zero-radius disk should be degenerate")
	}
	if (Disk{paris, 5}).Degenerate() {
		t.Error("5km disk should not be degenerate")
	}
}

func TestDestination(t *testing.T) {
	// Travelling distance d from a point must land at distance d (any bearing).
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		start := randCoord(r)
		brg := r.Float64() * 360
		dist := r.Float64() * 5000
		end := Destination(start, brg, dist)
		if !end.Valid() {
			t.Fatalf("Destination(%v,%v,%v) = %v invalid", start, brg, dist, end)
		}
		got := DistanceKm(start, end)
		if math.Abs(got-dist) > 1 {
			t.Fatalf("Destination(%v, %v, %.1f): landed %.1f km away", start, brg, dist, got)
		}
	}
	// Zero distance is the identity.
	if Destination(paris, 123, 0) != paris {
		t.Error("Destination with 0 km should return start")
	}
}

func TestDestinationDueNorth(t *testing.T) {
	start := Coord{0, 0}
	end := Destination(start, 0, 111.195) // ~1 degree of latitude
	if math.Abs(end.Lat-1) > 0.01 || math.Abs(end.Lon) > 0.01 {
		t.Errorf("1 degree north of (0,0): got %v", end)
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(paris, london)
	dp := DistanceKm(m, paris)
	dl := DistanceKm(m, london)
	if math.Abs(dp-dl) > 1 {
		t.Errorf("midpoint not equidistant: %f vs %f", dp, dl)
	}
	if dp > DistanceKm(paris, london) {
		t.Errorf("midpoint farther than endpoints")
	}
}

func TestNewCoord(t *testing.T) {
	if _, err := NewCoord(48.85, 2.35); err != nil {
		t.Errorf("valid coordinate rejected: %v", err)
	}
	for _, bad := range [][2]float64{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}} {
		if _, err := NewCoord(bad[0], bad[1]); err == nil {
			t.Errorf("NewCoord(%v,%v) accepted invalid coordinate", bad[0], bad[1])
		}
	}
}

func TestCoordValid(t *testing.T) {
	if !(Coord{0, 0}).Valid() {
		t.Error("(0,0) should be valid")
	}
	if (Coord{math.NaN(), 0}).Valid() {
		t.Error("NaN latitude should be invalid")
	}
}

func TestSpeedConstants(t *testing.T) {
	// Sanity on the physics: fiber speed must be 2/3 of c.
	if math.Abs(FiberSpeedKmPerMs-199.86163866666666) > 1e-6 {
		t.Errorf("FiberSpeedKmPerMs = %v", FiberSpeedKmPerMs)
	}
	// ~100 km of radius per ms of RTT: a widely used rule of thumb.
	if r := RTTToRadiusKm(time.Millisecond); math.Abs(r-99.93) > 0.1 {
		t.Errorf("1ms RTT radius = %v km, want ~99.93", r)
	}
}

func BenchmarkDistanceKm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DistanceKm(paris, tokyo)
	}
}

func BenchmarkDiskOverlaps(b *testing.B) {
	d1 := Disk{paris, 500}
	d2 := Disk{nyc, 800}
	for i := 0; i < b.N; i++ {
		d1.Overlaps(d2)
	}
}

func TestInitialBearing(t *testing.T) {
	// Due-east along the equator.
	if b := InitialBearing(Coord{0, 0}, Coord{0, 10}); math.Abs(b-90) > 0.5 {
		t.Errorf("equatorial east bearing = %v, want 90", b)
	}
	// Due north.
	if b := InitialBearing(Coord{0, 0}, Coord{10, 0}); math.Abs(b) > 0.5 && math.Abs(b-360) > 0.5 {
		t.Errorf("north bearing = %v, want 0", b)
	}
	// Bearings stay in [0, 360).
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		b := InitialBearing(randCoord(r), randCoord(r))
		if b < 0 || b >= 360 {
			t.Fatalf("bearing %v out of range", b)
		}
	}
}

func TestInterpolate(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 200; i++ {
		a, b := randCoord(r), randCoord(r)
		d := DistanceKm(a, b)
		if d < 1 || d > 15000 {
			continue // skip degenerate and near-antipodal pairs
		}
		// Endpoints.
		if got := DistanceKm(Interpolate(a, b, 0), a); got > 1 {
			t.Fatalf("Interpolate(0) is %v km from a", got)
		}
		if got := DistanceKm(Interpolate(a, b, 1), b); got > 1 {
			t.Fatalf("Interpolate(1) is %v km from b", got)
		}
		// The midpoint fraction matches Midpoint.
		if got := DistanceKm(Interpolate(a, b, 0.5), Midpoint(a, b)); got > 1 {
			t.Fatalf("Interpolate(0.5) is %v km from Midpoint", got)
		}
		// Monotone distance from a.
		frac := r.Float64()
		if got := DistanceKm(a, Interpolate(a, b, frac)); math.Abs(got-frac*d) > 1 {
			t.Fatalf("Interpolate(%v) at %v km, want %v", frac, got, frac*d)
		}
	}
	// Identical points.
	p := Coord{10, 20}
	if Interpolate(p, p, 0.5) != p {
		t.Error("Interpolate of identical points should be the point")
	}
}
