// Package geo implements the spherical geometry underlying latency-based
// anycast detection: great-circle distances, the mapping from round-trip
// times to disks on the Earth's surface, and disk overlap tests.
//
// The central primitive of the paper's technique (Fig. 3 of Cicalese et al.,
// CoNEXT 2015) is the observation that a round-trip time RTT measured from a
// vantage point bounds the probed replica inside a disk centred at the
// vantage point whose radius is the distance light can travel in fiber in
// RTT/2. Two disjoint disks for the same target are a speed-of-light
// violation and therefore prove the target is anycast.
package geo

import (
	"errors"
	"fmt"
	"math"
	"time"
)

const (
	// EarthRadiusKm is the mean Earth radius used for great-circle
	// computations.
	EarthRadiusKm = 6371.0

	// SpeedOfLightKmPerMs is the speed of light in vacuum, in km per
	// millisecond.
	SpeedOfLightKmPerMs = 299.792458

	// FiberSpeedKmPerMs is the propagation speed of light in optical
	// fiber, conventionally taken as 2/3 of the speed of light in vacuum
	// (refraction index ~1.5). This is the constant used to convert
	// latency into an upper bound on geographic distance.
	FiberSpeedKmPerMs = SpeedOfLightKmPerMs * 2.0 / 3.0

	// MaxSurfaceDistanceKm is half the Earth's circumference: no two
	// points on the surface are farther apart than this.
	MaxSurfaceDistanceKm = math.Pi * EarthRadiusKm
)

// Coord is a geographic coordinate in decimal degrees.
type Coord struct {
	Lat float64 // latitude, -90..90
	Lon float64 // longitude, -180..180
}

// Valid reports whether the coordinate lies in the legal lat/lon ranges.
func (c Coord) Valid() bool {
	return c.Lat >= -90 && c.Lat <= 90 && c.Lon >= -180 && c.Lon <= 180 &&
		!math.IsNaN(c.Lat) && !math.IsNaN(c.Lon)
}

func (c Coord) String() string {
	return fmt.Sprintf("(%.4f, %.4f)", c.Lat, c.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// DistanceKm returns the great-circle distance between a and b in km,
// computed with the haversine formula.
func DistanceKm(a, b Coord) float64 {
	la1, lo1 := deg2rad(a.Lat), deg2rad(a.Lon)
	la2, lo2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLat := la2 - la1
	dLon := lo2 - lo1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp to guard against floating-point drift beyond [0,1].
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// UnitVec returns the Earth-centered unit vector of a coordinate. For a
// fixed point it is a pure function of the coordinate, so serving paths
// precompute it once: the nearest-of-N scan then costs one dot product
// per candidate instead of a haversine (two sincos and a sqrt), and the
// ordering by dot product is exactly the ordering by great-circle
// distance (larger dot = closer).
func UnitVec(c Coord) [3]float64 {
	sinLa, cosLa := math.Sincos(deg2rad(c.Lat))
	sinLo, cosLo := math.Sincos(deg2rad(c.Lon))
	return [3]float64{cosLa * cosLo, cosLa * sinLo, sinLa}
}

// VecDot is the dot product of two unit vectors: the cosine of the
// central angle between the two points.
func VecDot(a, b [3]float64) float64 {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
}

// VecDistKm converts a unit-vector dot product into great-circle km.
func VecDistKm(dot float64) float64 {
	if dot > 1 {
		dot = 1
	} else if dot < -1 {
		dot = -1
	}
	return EarthRadiusKm * math.Acos(dot)
}

// PropagationRTT returns the round-trip time light in fiber needs to cover
// the great-circle distance between a and b and back. It is the physical
// lower bound for any RTT measured between the two points.
func PropagationRTT(a, b Coord) time.Duration {
	distKm := DistanceKm(a, b)
	ms := 2 * distKm / FiberSpeedKmPerMs
	// Round up: the result is a physical lower bound, so truncating to an
	// integer number of nanoseconds must never make it optimistic.
	return time.Duration(math.Ceil(ms * float64(time.Millisecond)))
}

// RTTToRadiusKm converts a measured round-trip time into the maximum
// distance the probed host can be from the vantage point: the one-way
// propagation budget RTT/2 travelled at fiber speed.
func RTTToRadiusKm(rtt time.Duration) float64 {
	ms := float64(rtt) / float64(time.Millisecond)
	return ms / 2 * FiberSpeedKmPerMs
}

// Disk is a closed disk on the Earth's surface, the geometric object a
// latency sample is mapped to.
type Disk struct {
	Center   Coord
	RadiusKm float64
}

// DiskFromRTT maps a latency sample taken at vantage point vp to the disk
// that must contain the replica which answered the probe.
func DiskFromRTT(vp Coord, rtt time.Duration) Disk {
	r := RTTToRadiusKm(rtt)
	if r > MaxSurfaceDistanceKm {
		r = MaxSurfaceDistanceKm
	}
	return Disk{Center: vp, RadiusKm: r}
}

// Contains reports whether point p lies inside the disk (boundary included).
func (d Disk) Contains(p Coord) bool {
	return DistanceKm(d.Center, p) <= d.RadiusKm+1e-9
}

// Overlaps reports whether the two disks intersect. Two disks on the sphere
// intersect iff the great-circle distance between their centers does not
// exceed the sum of their radii.
func (d Disk) Overlaps(o Disk) bool {
	return DistanceKm(d.Center, o.Center) <= d.RadiusKm+o.RadiusKm+1e-9
}

// Degenerate reports whether the disk has (numerically) zero radius; disks
// are collapsed to a point once their replica has been geolocated, in the
// iterative step of the enumeration algorithm.
func (d Disk) Degenerate() bool { return d.RadiusKm <= 1e-9 }

func (d Disk) String() string {
	return fmt.Sprintf("disk[%v r=%.0fkm]", d.Center, d.RadiusKm)
}

// Destination returns the point reached by travelling distKm from start
// along the given initial bearing (degrees clockwise from north). It is used
// to synthesize host positions around city centers.
func Destination(start Coord, bearingDeg, distKm float64) Coord {
	if distKm == 0 {
		return start
	}
	la1 := deg2rad(start.Lat)
	lo1 := deg2rad(start.Lon)
	brg := deg2rad(bearingDeg)
	ad := distKm / EarthRadiusKm // angular distance

	la2 := math.Asin(math.Sin(la1)*math.Cos(ad) + math.Cos(la1)*math.Sin(ad)*math.Cos(brg))
	lo2 := lo1 + math.Atan2(
		math.Sin(brg)*math.Sin(ad)*math.Cos(la1),
		math.Cos(ad)-math.Sin(la1)*math.Sin(la2),
	)
	// Normalize longitude to [-180, 180).
	lon := math.Mod(rad2deg(lo2)+540, 360) - 180
	return Coord{Lat: rad2deg(la2), Lon: lon}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Coord) Coord {
	la1, lo1 := deg2rad(a.Lat), deg2rad(a.Lon)
	la2, lo2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLon := lo2 - lo1
	bx := math.Cos(la2) * math.Cos(dLon)
	by := math.Cos(la2) * math.Sin(dLon)
	lat := math.Atan2(math.Sin(la1)+math.Sin(la2),
		math.Sqrt((math.Cos(la1)+bx)*(math.Cos(la1)+bx)+by*by))
	lon := lo1 + math.Atan2(by, math.Cos(la1)+bx)
	return Coord{Lat: rad2deg(lat), Lon: math.Mod(rad2deg(lon)+540, 360) - 180}
}

// ErrInvalidCoord is returned by constructors that validate coordinates.
var ErrInvalidCoord = errors.New("geo: invalid coordinate")

// NewCoord validates and returns a coordinate.
func NewCoord(lat, lon float64) (Coord, error) {
	c := Coord{Lat: lat, Lon: lon}
	if !c.Valid() {
		return Coord{}, fmt.Errorf("%w: lat=%v lon=%v", ErrInvalidCoord, lat, lon)
	}
	return c, nil
}

// InitialBearing returns the initial great-circle bearing from a toward b,
// in degrees clockwise from north.
func InitialBearing(a, b Coord) float64 {
	la1, lo1 := deg2rad(a.Lat), deg2rad(a.Lon)
	la2, lo2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLon := lo2 - lo1
	y := math.Sin(dLon) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLon)
	brg := rad2deg(math.Atan2(y, x))
	return math.Mod(brg+360, 360)
}

// Interpolate returns the point at fraction frac (0..1) along the great
// circle from a to b. Fractions outside [0, 1] extrapolate along the same
// circle.
func Interpolate(a, b Coord, frac float64) Coord {
	d := DistanceKm(a, b)
	if d == 0 {
		return a
	}
	return Destination(a, InitialBearing(a, b), d*frac)
}
