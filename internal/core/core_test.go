package core

import (
	"math/rand"
	"testing"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/geo"
)

var db = cities.Default()

// synth builds a measurement from a VP location toward a host location with
// a given path stretch and access overhead.
func synth(name string, vp, host geo.Coord, stretch, overheadMs float64) Measurement {
	prop := geo.PropagationRTT(vp, host)
	rtt := time.Duration(float64(prop)*stretch) + time.Duration(overheadMs*float64(time.Millisecond))
	return Measurement{VP: name, VPLoc: vp, RTT: rtt}
}

// unicastScenario: every VP measures the same host in Frankfurt.
func unicastScenario() []Measurement {
	host := db.MustByName("Frankfurt", "DE").Loc
	vps := []string{"Paris,FR", "London,GB", "New York,US", "Tokyo,JP", "Sydney,AU", "Sao Paulo,BR", "Johannesburg,ZA", "Seattle,US"}
	var ms []Measurement
	for i, v := range vps {
		name, cc, _ := cut(v)
		c := db.MustByName(name, cc)
		ms = append(ms, synth(v, c.Loc, host, 1.1+0.1*float64(i%3), 1.5))
	}
	return ms
}

// anycastScenario: two replicas, Frankfurt and Tokyo; VPs are served by the
// nearest.
func anycastScenario() []Measurement {
	fra := db.MustByName("Frankfurt", "DE").Loc
	tyo := db.MustByName("Tokyo", "JP").Loc
	entries := []struct {
		vp   string
		host geo.Coord
	}{
		// A VP colocated with each replica keeps the smallest disk tight
		// enough for an unambiguous classification; the distant VPs'
		// larger disks overlap the collapsed points and are absorbed.
		{"Frankfurt,DE", fra}, {"Paris,FR", fra}, {"London,GB", fra}, {"Warsaw,PL", fra},
		{"Osaka,JP", tyo}, {"Seoul,KR", tyo}, {"Taipei,TW", tyo}, {"Hong Kong,HK", tyo},
	}
	var ms []Measurement
	for i, e := range entries {
		name, cc, _ := cut(e.vp)
		c := db.MustByName(name, cc)
		ms = append(ms, synth(e.vp, c.Loc, e.host, 1.1+0.05*float64(i%4), 1.2))
	}
	return ms
}

func cut(s string) (string, string, bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ',' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

func TestDetectUnicast(t *testing.T) {
	if Detect(unicastScenario()) {
		t.Error("unicast scenario detected as anycast")
	}
}

func TestDetectAnycast(t *testing.T) {
	if !Detect(anycastScenario()) {
		t.Error("two-replica scenario not detected")
	}
}

func TestDetectDegenerate(t *testing.T) {
	if Detect(nil) || Detect(unicastScenario()[:1]) {
		t.Error("fewer than two samples can never prove anycast")
	}
}

func TestAnalyzeUnicast(t *testing.T) {
	r := Analyze(db, unicastScenario(), Options{})
	if r.Anycast || r.Count() != 0 {
		t.Errorf("unicast Analyze = %+v", r)
	}
}

func TestAnalyzeTwoReplicas(t *testing.T) {
	r := Analyze(db, anycastScenario(), Options{})
	if !r.Anycast {
		t.Fatal("anycast not detected")
	}
	if r.Count() < 2 {
		t.Fatalf("enumerated %d replicas, want >= 2", r.Count())
	}
	cs := r.Cities()
	hasFra, hasTyo := false, false
	for _, c := range cs {
		if c == "frankfurt,de" {
			hasFra = true
		}
		if c == "tokyo,jp" {
			hasTyo = true
		}
	}
	if !hasFra || !hasTyo {
		t.Errorf("geolocated cities = %v, want frankfurt and tokyo", cs)
	}
}

func TestAnalyzeConservative(t *testing.T) {
	// Enumeration is a lower bound: with replicas in Paris and Brussels
	// (260 km apart) and only distant VPs, the disks overlap and the
	// deployment is undetectable - conservative, not wrong.
	par := db.MustByName("Paris", "FR").Loc
	bru := db.MustByName("Brussels", "BE").Loc
	ms := []Measurement{
		synth("New York,US", db.MustByName("New York", "US").Loc, par, 1.2, 2),
		synth("Tokyo,JP", db.MustByName("Tokyo", "JP").Loc, bru, 1.2, 2),
		synth("Sydney,AU", db.MustByName("Sydney", "AU").Loc, par, 1.2, 2),
	}
	r := Analyze(db, ms, Options{})
	if r.Anycast {
		t.Error("close replicas seen only from far away should be undetectable")
	}
}

func TestIterationIncreasesRecall(t *testing.T) {
	// Three replicas: Frankfurt, Tokyo, and New York. A VP in Chicago has
	// a moderately large disk that overlaps the New York VP's small disk;
	// collapsing New York onto its city can free other disks in later
	// iterations. At minimum, iteration must not lose replicas.
	fra := db.MustByName("Frankfurt", "DE").Loc
	tyo := db.MustByName("Tokyo", "JP").Loc
	nyc := db.MustByName("New York", "US").Loc
	ms := []Measurement{
		synth("Paris,FR", db.MustByName("Paris", "FR").Loc, fra, 1.1, 1),
		synth("Warsaw,PL", db.MustByName("Warsaw", "PL").Loc, fra, 1.1, 1),
		synth("Osaka,JP", db.MustByName("Osaka", "JP").Loc, tyo, 1.1, 1),
		synth("Seoul,KR", db.MustByName("Seoul", "KR").Loc, tyo, 1.1, 1),
		synth("Boston,US", db.MustByName("Boston", "US").Loc, nyc, 1.1, 1),
		synth("Chicago,US", db.MustByName("Chicago", "US").Loc, nyc, 1.9, 6),
	}
	r := Analyze(db, ms, Options{})
	if !r.Anycast || r.Count() < 3 {
		t.Fatalf("enumerated %d replicas, want >= 3 (got %v)", r.Count(), r.Replicas)
	}
	if r.Iterations < 1 {
		t.Error("iteration count not reported")
	}
}

func TestPopulationBiasMisclassification(t *testing.T) {
	// The paper's OpenDNS anecdote: a replica in Ashburn probed from a VP
	// ~2.6ms away gets classified to Philadelphia, the largest city in
	// the disk.
	ash := db.MustByName("Ashburn", "US").Loc
	tyo := db.MustByName("Tokyo", "JP").Loc
	ms := []Measurement{
		// VP near Washington DC measuring the Ashburn replica: a ~2.5ms
		// RTT maps to a ~250km disk that contains Philadelphia but not
		// New York.
		synth("Washington,US", db.MustByName("Washington", "US").Loc, ash, 1.2, 2.0),
		synth("Osaka,JP", db.MustByName("Osaka", "JP").Loc, tyo, 1.1, 1),
		synth("Seoul,KR", db.MustByName("Seoul", "KR").Loc, tyo, 1.1, 1),
	}
	r := Analyze(db, ms, Options{})
	if !r.Anycast {
		t.Fatal("not detected")
	}
	for _, rep := range r.Replicas {
		if rep.VP == "Washington,US" {
			if !rep.Located {
				t.Fatal("US replica not located")
			}
			if rep.City.Name != "Philadelphia" {
				t.Errorf("US replica classified to %v, the population bias predicts Philadelphia", rep.City)
			}
		}
	}
}

func TestMISGreedyIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		disks := randomDisks(r, 2+r.Intn(40))
		mis := MISGreedy(disks)
		if len(mis) < 1 {
			t.Fatal("MIS of a nonempty instance must be nonempty")
		}
		for a := 0; a < len(mis); a++ {
			for b := a + 1; b < len(mis); b++ {
				if disks[mis[a]].Overlaps(disks[mis[b]]) {
					t.Fatalf("greedy MIS not independent: disks %d and %d overlap", mis[a], mis[b])
				}
			}
		}
		// Maximality: every excluded disk conflicts with a chosen one.
		chosen := map[int]bool{}
		for _, i := range mis {
			chosen[i] = true
		}
		for i := range disks {
			if chosen[i] {
				continue
			}
			conflicts := false
			for _, j := range mis {
				if disks[i].Overlaps(disks[j]) {
					conflicts = true
					break
				}
			}
			if !conflicts {
				t.Fatalf("disk %d independent of the MIS but excluded", i)
			}
		}
	}
}

func TestMISGreedyVsBrute(t *testing.T) {
	// The greedy solution must be within the 5-approximation bound of the
	// optimum, and in practice nearly always equal (the paper reports
	// near-optimal results at a fraction of the brute-force cost).
	r := rand.New(rand.NewSource(13))
	equal, total := 0, 0
	for trial := 0; trial < 60; trial++ {
		disks := randomDisks(r, 2+r.Intn(11))
		g := len(MISGreedy(disks))
		b := len(MISBrute(disks))
		if g > b {
			t.Fatalf("greedy %d exceeds optimum %d", g, b)
		}
		if b > 5*g {
			t.Fatalf("greedy %d worse than the 5-approximation bound of optimum %d", g, b)
		}
		if g == b {
			equal++
		}
		total++
	}
	if float64(equal)/float64(total) < 0.8 {
		t.Errorf("greedy matched the optimum on only %d/%d instances", equal, total)
	}
}

func TestMISBrutePanicsOnLargeInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MISBrute should refuse > 24 disks")
		}
	}()
	r := rand.New(rand.NewSource(1))
	MISBrute(randomDisks(r, 25))
}

func TestDetectMatchesNaive(t *testing.T) {
	// The candidate-certificate fast path must agree with the naive
	// pairwise test on random instances.
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		disks := randomDisks(r, 2+r.Intn(30))
		fast := DetectCert(disks, nil).Anycast()
		naive := false
		for i := 0; i < len(disks) && !naive; i++ {
			for j := i + 1; j < len(disks); j++ {
				if !disks[i].Overlaps(disks[j]) {
					naive = true
					break
				}
			}
		}
		if fast != naive {
			t.Fatalf("DetectCert = %v, naive = %v on %v", fast, naive, disks)
		}
	}
}

func TestAnalyzeFindsAtLeastProvenPair(t *testing.T) {
	// Whenever detection succeeds, enumeration reports >= 2 replicas.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(20)
		ms := make([]Measurement, n)
		for i := range ms {
			ms[i] = Measurement{
				VP:    "vp",
				VPLoc: geo.Coord{Lat: r.Float64()*140 - 70, Lon: r.Float64()*360 - 180},
				RTT:   time.Duration(1+r.Intn(150)) * time.Millisecond,
			}
		}
		res := Analyze(db, ms, Options{})
		if res.Anycast != Detect(ms) {
			t.Fatal("Analyze and Detect disagree")
		}
		if res.Anycast && res.Count() < 2 {
			t.Fatalf("anycast proven but only %d replicas enumerated", res.Count())
		}
	}
}

func TestResultCities(t *testing.T) {
	r := Analyze(db, anycastScenario(), Options{})
	cs := r.Cities()
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] {
			t.Error("Cities() not sorted/unique")
		}
	}
}

func TestGeoReplicaString(t *testing.T) {
	g := GeoReplica{VP: "x", Located: true, City: db.MustByName("Paris", "FR")}
	if g.String() == "" {
		t.Error("empty String()")
	}
	u := GeoReplica{VP: "y", Disk: geo.Disk{RadiusKm: 10}}
	if u.String() == "" {
		t.Error("empty String() for unlocated")
	}
}

func randomDisks(r *rand.Rand, n int) []geo.Disk {
	disks := make([]geo.Disk, n)
	for i := range disks {
		disks[i] = geo.Disk{
			Center:   geo.Coord{Lat: r.Float64()*140 - 70, Lon: r.Float64()*360 - 180},
			RadiusKm: 100 + r.Float64()*6000,
		}
	}
	return disks
}

func BenchmarkDetectUnicast300VPs(b *testing.B) {
	host := db.MustByName("Frankfurt", "DE").Loc
	r := rand.New(rand.NewSource(5))
	ms := make([]Measurement, 300)
	for i := range ms {
		vp := geo.Coord{Lat: r.Float64()*140 - 70, Lon: r.Float64()*360 - 180}
		ms[i] = synth("vp", vp, host, 1.1+0.3*r.Float64(), 1.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Detect(ms) {
			b.Fatal("unicast detected as anycast")
		}
	}
}

func BenchmarkAnalyzeAnycast(b *testing.B) {
	ms := anycastScenario()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(db, ms, Options{})
	}
}
