package core

import (
	"sort"

	"anycastmap/internal/geo"
)

// Detection reduces to a single small certificate (Cicalese et al.,
// INFOCOM 2015): either one point provably inside every disk (no
// speed-of-light violation is possible — unicast), or one disjoint disk
// pair (a violation — anycast). Successive censuses mostly shrink a few
// disks of a few targets, so the certificate from the previous analysis
// usually still decides the target: Revalidate re-checks it in O(n)
// without sorting, and only targets whose certificate broke pay the full
// DetectCert pass again. The incremental census analyzer
// (internal/census/analyzer.go) caches one Certificate per target.

// CertKind classifies a detection certificate.
type CertKind uint8

const (
	// CertNone is the zero value: no certificate is known. Borderline
	// unicast targets (no containment witness, no disjoint pair) always
	// end up here and pay the full pairwise scan.
	CertNone CertKind = iota
	// CertUnicast records a witness disk whose center lies inside every
	// disk, certifying that all disks pairwise overlap.
	CertUnicast
	// CertAnycast records a proven disjoint disk pair.
	CertAnycast
)

// Certificate is the cached outcome of one detection pass over one
// target's disks. Indices are positions in the disks slice the
// certificate was extracted from; callers caching certificates across
// rounds must remap them if measurement positions shift (the census
// analyzer stores vantage-point slots and remaps).
type Certificate struct {
	Kind CertKind
	// I is the witness disk for CertUnicast, or the first disk of the
	// disjoint pair for CertAnycast.
	I int
	// J is the second disk of the disjoint pair (CertAnycast only).
	J int
}

// Anycast reports whether the certificate proves the target anycast.
func (c Certificate) Anycast() bool { return c.Kind == CertAnycast }

// DetectCert runs the detection pass over the disks and returns its
// certificate. The verdict is exactly Detect's: CertAnycast means proven
// anycast, anything else means no violation was found. The comparisons
// spell out Disk.Contains and Disk.Overlaps (same epsilon, same
// association) so a CenterDist oracle and the live haversine path are
// interchangeable bit for bit.
func DetectCert(disks []geo.Disk, dist CenterDist) Certificate {
	n := len(disks)
	if n < 2 {
		return Certificate{}
	}
	centerDist := func(i, j int) float64 {
		if dist != nil {
			return dist(i, j)
		}
		return geo.DistanceKm(disks[i].Center, disks[j].Center)
	}
	contained := func(ci int) bool {
		for i := range disks {
			if centerDist(i, ci) > disks[i].RadiusKm+1e-9 { // !Contains
				return false
			}
		}
		return true
	}
	// Early-exit unicast rejection: when one radius is strictly the
	// smallest, it is the first candidate the sort below would yield under
	// any tie resolution, so certifying it up front skips the O(n log n)
	// sort (and its allocations) for the overwhelmingly common
	// certified-unicast target.
	minI, ties := 0, 0
	for i := 1; i < n; i++ {
		switch r := disks[i].RadiusKm; {
		case r < disks[minI].RadiusKm:
			minI, ties = i, 0
		case r == disks[minI].RadiusKm:
			ties++
		}
	}
	strictMin := ties == 0
	if strictMin && contained(minI) {
		return Certificate{Kind: CertUnicast, I: minI}
	}
	// Candidate certificate points: centers of the three smallest disks.
	// A point contained in every disk certifies pairwise overlap.
	for _, ci := range smallestK(disks, 3) {
		if strictMin && ci == minI {
			continue // already tried (and failed) above
		}
		if contained(ci) {
			return Certificate{Kind: CertUnicast, I: ci}
		}
	}
	// Pairwise scan ordered by radius: small disks are the most likely to
	// be disjoint, so true anycast exits early.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return disks[order[a]].RadiusKm < disks[order[b]].RadiusKm })
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			i, j := order[a], order[b]
			if centerDist(i, j) > disks[i].RadiusKm+disks[j].RadiusKm+1e-9 { // !Overlaps
				return Certificate{Kind: CertAnycast, I: i, J: j}
			}
		}
	}
	return Certificate{}
}

// Revalidate re-checks a certificate extracted from a previous analysis of
// the same target against the current disks, in O(n) and without sorting.
// When ok is true the verdict (anycast) is exactly what DetectCert would
// conclude from scratch on these disks; ok false means the certificate no
// longer decides the target and the caller must fall back to DetectCert.
//
// Under a minimum-RTT combine, disks only ever shrink: a disjoint pair
// stays disjoint (CertAnycast mostly revalidates) while containment can
// break (a shrunken disk may exclude the witness). Both paths are written
// to be conclusive only when they provably agree with the full pass:
//
//   - CertUnicast: the witness must still be guaranteed among the three
//     smallest-radius candidates under any sort tie resolution, and its
//     center must still lie in every disk.
//   - CertAnycast: the pair must still be disjoint, and no disk that
//     could rank among the three smallest may certify containment —
//     DetectCert believes a containment witness over any disjoint pair,
//     so a surviving pair alone is not enough in the (epsilon-window)
//     corner where both exist.
func (c Certificate) Revalidate(disks []geo.Disk, dist CenterDist) (anycast, ok bool) {
	n := len(disks)
	if n < 2 {
		return false, false
	}
	centerDist := func(i, j int) float64 {
		if dist != nil {
			return dist(i, j)
		}
		return geo.DistanceKm(disks[i].Center, disks[j].Center)
	}
	contained := func(ci int) bool {
		for i := range disks {
			if centerDist(i, ci) > disks[i].RadiusKm+1e-9 { // !Contains
				return false
			}
		}
		return true
	}
	switch c.Kind {
	case CertUnicast:
		w := c.I
		if w < 0 || w >= n {
			return false, false
		}
		// Still guaranteed in the top-3 candidate set: at most two other
		// disks may sort before it under any tie resolution.
		ahead := 0
		for i := range disks {
			if i != w && disks[i].RadiusKm <= disks[w].RadiusKm {
				ahead++
				if ahead > 2 {
					return false, false
				}
			}
		}
		if !contained(w) {
			return false, false
		}
		return false, true
	case CertAnycast:
		i, j := c.I, c.J
		if i < 0 || j < 0 || i >= n || j >= n || i == j {
			return false, false
		}
		if centerDist(i, j) <= disks[i].RadiusKm+disks[j].RadiusKm+1e-9 { // Overlaps
			return false, false
		}
		// The pair is disjoint, so DetectCert's pairwise scan would find a
		// violation — unless its candidate phase certifies first. Check
		// every disk that could rank among the three smallest under some
		// tie resolution (radius ≤ third-smallest value).
		r3 := thirdSmallestRadius(disks)
		for k := range disks {
			if disks[k].RadiusKm > r3 {
				continue
			}
			if contained(k) {
				return false, false // witness and pair coexist: inconclusive
			}
		}
		return true, true
	}
	return false, false
}

// thirdSmallestRadius returns the third order statistic (with
// multiplicity) of the disk radii, or +Inf when there are fewer than
// three disks (every disk is then a candidate).
func thirdSmallestRadius(disks []geo.Disk) float64 {
	const inf = 1e308
	m1, m2, m3 := inf, inf, inf
	for i := range disks {
		switch r := disks[i].RadiusKm; {
		case r < m1:
			m1, m2, m3 = r, m1, m2
		case r < m2:
			m2, m3 = r, m2
		case r < m3:
			m3 = r
		}
	}
	return m3
}

// AppendDisks appends each measurement's constraint disk to buf and
// returns the extended slice, letting hot-path callers reuse one scratch
// buffer across targets.
func AppendDisks(buf []geo.Disk, ms []Measurement) []geo.Disk {
	for _, m := range ms {
		buf = append(buf, m.Disk())
	}
	return buf
}
