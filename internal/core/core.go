// Package core implements the paper's primary analysis technique
// (Fig. 3; Cicalese et al., "A fistful of pings", INFOCOM 2015, applied at
// census scale in the CoNEXT 2015 paper this repository reproduces):
// latency-based anycast detection, enumeration and geolocation.
//
// Given RTT samples from geographically dispersed vantage points toward one
// target address:
//
//  1. each sample is mapped to a disk centred at the vantage point whose
//     radius is the distance light travels in fiber in RTT/2 — the answering
//     replica provably lies inside the disk;
//  2. two disjoint disks are a speed-of-light violation, proving the target
//     is announced from at least two locations (detection);
//  3. a Maximum Independent Set over the disk intersection graph
//     lower-bounds the number of replicas; the NP-hard MIS is approximated
//     greedily over disks of increasing radius, a 5-approximation for unit
//     ball graphs (enumeration);
//  4. each independent disk is classified to the most populated city it
//     contains — the maximum-likelihood classifier with population bias
//     that the paper found ~75% accurate at city level (geolocation);
//  5. classified disks are collapsed onto their city and the process
//     repeats until the replica set converges, increasing recall
//     (iteration).
package core

import (
	"fmt"
	"sort"
	"time"

	"anycastmap/internal/cities"
	"anycastmap/internal/geo"
)

// Measurement is one latency sample toward the target under analysis.
type Measurement struct {
	// VP names the vantage point (for reporting only).
	VP string
	// VPLoc is the vantage point location.
	VPLoc geo.Coord
	// RTT is the minimum observed round-trip time from this vantage
	// point; the caller should combine repeated probes by minimum so the
	// sample approaches the propagation delay.
	RTT time.Duration
}

// Disk maps the measurement to its constraint disk.
func (m Measurement) Disk() geo.Disk { return geo.DiskFromRTT(m.VPLoc, m.RTT) }

// GeoReplica is one enumerated (and, when possible, geolocated) replica.
type GeoReplica struct {
	// VP is the vantage point whose disk isolated this replica.
	VP string
	// Disk is the final (possibly city-collapsed) disk.
	Disk geo.Disk
	// City is the classified location; valid only when Located.
	City cities.City
	// Located is false when the disk contains no known city; the replica
	// still counts toward enumeration.
	Located bool
}

func (g GeoReplica) String() string {
	if g.Located {
		return fmt.Sprintf("%v (via %s)", g.City, g.VP)
	}
	return fmt.Sprintf("unlocated %v (via %s)", g.Disk, g.VP)
}

// Result is the outcome of the full analysis of one target.
type Result struct {
	// Anycast is true when a speed-of-light violation proves at least
	// two replicas.
	Anycast bool
	// Replicas is the conservative enumeration: pairwise geo-consistent
	// replicas, each carrying its classification. Empty for unicast
	// targets.
	Replicas []GeoReplica
	// Iterations is how many enumerate-geolocate rounds ran before
	// convergence.
	Iterations int
}

// Count returns the conservative replica count (the MIS lower bound).
func (r Result) Count() int { return len(r.Replicas) }

// Cities returns the sorted distinct city keys of located replicas.
func (r Result) Cities() []string {
	set := map[string]bool{}
	for _, g := range r.Replicas {
		if g.Located {
			set[g.City.Key()] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Options tunes the analysis.
type Options struct {
	// MaxIterations bounds the enumerate-geolocate loop; 0 means the
	// default of 10. The loop normally converges in 2-3 iterations.
	MaxIterations int
}

func (o Options) maxIter() int {
	if o.MaxIterations <= 0 {
		return 10
	}
	return o.MaxIterations
}

// Detect reports whether the measurements prove the target anycast: some
// pair of disks is disjoint. It is the cheap census-wide pass; Analyze
// gives the full enumeration and geolocation.
//
// The implementation certifies the (overwhelmingly common) unicast case in
// O(n): if any single point — tried from the centers of the smallest
// disks — lies inside every disk, all disks pairwise overlap. Only when no
// certificate is found does it fall back to the pairwise scan, which for
// true anycast terminates at the first disjoint pair.
func Detect(ms []Measurement) bool {
	return DetectCert(disksOf(ms), nil).Anycast()
}

// CenterDist lets callers supply a precomputed oracle for the distance in
// km between the centers of disks i and j, replacing the haversine
// evaluation in the detection scans. The values must be bitwise equal to
// geo.DistanceKm(disks[i].Center, disks[j].Center) - the census pipeline
// satisfies this with a VP-pair distance matrix, valid because every disk
// of a target is centered at a vantage point. nil means compute live.
type CenterDist func(i, j int) float64

// disksOf maps measurements to disks.
func disksOf(ms []Measurement) []geo.Disk {
	out := make([]geo.Disk, len(ms))
	for i, m := range ms {
		out[i] = m.Disk()
	}
	return out
}

// smallestK returns the indices of the k smallest-radius disks.
func smallestK(disks []geo.Disk, k int) []int {
	idx := make([]int, len(disks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return disks[idx[a]].RadiusKm < disks[idx[b]].RadiusKm })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// MISGreedy returns the indices of an independent (pairwise disjoint) set
// of disks, built greedily over disks of increasing radius. For disk
// graphs this is a 5-approximation of the maximum independent set, and in
// practice it is near-optimal (the paper validates it against brute
// force).
func MISGreedy(disks []geo.Disk) []int {
	order := make([]int, len(disks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return disks[order[a]].RadiusKm < disks[order[b]].RadiusKm })
	var chosen []int
	for _, i := range order {
		ok := true
		for _, j := range chosen {
			if disks[i].Overlaps(disks[j]) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, i)
		}
	}
	sort.Ints(chosen)
	return chosen
}

// MISBrute returns an exact maximum independent set by exhaustive search.
// It exists to validate MISGreedy in tests and is exponential: inputs are
// limited to 24 disks.
func MISBrute(disks []geo.Disk) []int {
	n := len(disks)
	if n > 24 {
		panic("core: MISBrute limited to 24 disks")
	}
	// Precompute the conflict graph.
	conflict := make([]uint32, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if disks[i].Overlaps(disks[j]) {
				conflict[i] |= 1 << j
				conflict[j] |= 1 << i
			}
		}
	}
	var best uint32
	bestSize := 0
	for mask := uint32(0); mask < 1<<n; mask++ {
		size := popcount(mask)
		if size <= bestSize {
			continue
		}
		ok := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) != 0 && conflict[i]&mask != 0 {
				ok = false
			}
		}
		if ok {
			best, bestSize = mask, size
		}
	}
	out := make([]int, 0, bestSize)
	for i := 0; i < n; i++ {
		if best&(1<<i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Locator is the geolocation side channel the analysis classifies disks
// with: *cities.DB satisfies it directly, *cities.Index satisfies it with a
// spatial index (the census pipeline uses the latter - LargestInDisk runs
// once per MIS disk per iteration per anycast target).
type Locator interface {
	LargestInDisk(geo.Disk) (cities.City, bool)
}

// Analyze runs the full detection / enumeration / geolocation / iteration
// pipeline over the measurements for one target.
func Analyze(db *cities.DB, ms []Measurement, opt Options) Result {
	return AnalyzeWith(db, ms, opt)
}

// AnalyzeWith is Analyze over any Locator.
func AnalyzeWith(db Locator, ms []Measurement, opt Options) Result {
	return AnalyzeWithDist(db, ms, nil, opt)
}

// AnalyzeWithDist is AnalyzeWith with a CenterDist oracle accelerating the
// detection scans (the dominant cost for borderline unicast targets, which
// fail the O(n) certificate and pay the full pairwise scan). The oracle
// only serves detection over the original measurement disks; the iterative
// enumeration works on city-collapsed disks whose centers are no longer
// vantage points.
func AnalyzeWithDist(db Locator, ms []Measurement, dist CenterDist, opt Options) Result {
	if len(ms) < 2 {
		return Result{}
	}
	disks := disksOf(ms)
	if !DetectCert(disks, dist).Anycast() {
		return Result{}
	}
	return AnalyzeDetected(db, ms, disks, dist, opt)
}

// AnalyzeDetected is the enumeration / geolocation / iteration tail of
// AnalyzeWithDist for a target already proven anycast — by DetectCert or a
// revalidated Certificate. disks must be the measurements' constraint
// disks (AppendDisks(nil, ms)); given those, the result is identical to
// AnalyzeWithDist on the same input. The caller's certificate is
// deliberately not taken as input: the rare single-disk-MIS fallback
// below re-derives the proven pair with a fresh detection pass so the
// reported replicas never depend on which certificate decided the target.
func AnalyzeDetected(db Locator, ms []Measurement, disks []geo.Disk, dist CenterDist, opt Options) Result {
	// work keeps the evolving disk of each measurement plus its
	// classification state.
	type work struct {
		disk      geo.Disk
		city      cities.City
		located   bool
		collapsed bool
	}
	ws := make([]work, len(disks))
	for i, d := range disks {
		ws[i] = work{disk: d}
	}

	cur := make([]geo.Disk, len(ws))
	var mis []int
	prevKey := ""
	iter := 0
	for ; iter < opt.maxIter(); iter++ {
		for i := range ws {
			cur[i] = ws[i].disk
		}
		mis = MISGreedy(cur)

		// Geolocate and collapse the newly independent disks.
		changed := false
		for _, i := range mis {
			if ws[i].collapsed {
				continue
			}
			if city, ok := db.LargestInDisk(ws[i].disk); ok {
				ws[i].city = city
				ws[i].located = true
				ws[i].disk = geo.Disk{Center: city.Loc, RadiusKm: 0}
			}
			ws[i].collapsed = true
			changed = true
		}

		// Converged when the replica set is stable and nothing collapsed.
		key := fmt.Sprint(mis)
		if !changed && key == prevKey {
			break
		}
		prevKey = key
	}

	// The greedy MIS can (rarely) return a single disk even though
	// detection proved two disjoint ones exist; enumeration must still
	// report at least the proven pair.
	if len(mis) < 2 {
		cert := DetectCert(disks, dist)
		mis = []int{cert.I, cert.J}
		for _, k := range mis {
			if !ws[k].collapsed {
				if city, ok := db.LargestInDisk(disks[k]); ok {
					ws[k].city = city
					ws[k].located = true
				}
			}
		}
	}

	reps := make([]GeoReplica, 0, len(mis))
	for _, i := range mis {
		reps = append(reps, GeoReplica{
			VP:      ms[i].VP,
			Disk:    ws[i].disk,
			City:    ws[i].city,
			Located: ws[i].located,
		})
	}
	return Result{Anycast: true, Replicas: reps, Iterations: iter + 1}
}
