package core

import (
	"math/rand"
	"testing"

	"anycastmap/internal/geo"
)

// shrinkable returns disks in a certified-unicast configuration: a tight
// witness disk around Frankfurt plus wide disks from distant VPs, all
// containing the witness center.
func unicastDisks() []geo.Disk {
	return disksOf(unicastScenario())
}

func anycastDisks() []geo.Disk {
	return disksOf(anycastScenario())
}

func TestDetectCertKinds(t *testing.T) {
	if c := DetectCert(unicastDisks(), nil); c.Kind != CertUnicast {
		t.Fatalf("unicast scenario yielded certificate %+v", c)
	}
	if c := DetectCert(anycastDisks(), nil); c.Kind != CertAnycast {
		t.Fatalf("anycast scenario yielded certificate %+v", c)
	}
	if c := DetectCert(nil, nil); c.Kind != CertNone || c.Anycast() {
		t.Fatalf("empty input yielded certificate %+v", c)
	}
}

// TestCertUnicastInvalidatedByShrink: an improved min-RTT shrinks one
// non-witness disk until it excludes the cached witness center — the
// certificate must refuse to conclude, and the fresh pass must agree
// with the naive ground truth.
func TestCertUnicastInvalidatedByShrink(t *testing.T) {
	disks := unicastDisks()
	cert := DetectCert(disks, nil)
	if cert.Kind != CertUnicast {
		t.Fatalf("expected unicast certificate, got %+v", cert)
	}
	// Sanity: the certificate revalidates against unchanged disks.
	if any, ok := cert.Revalidate(disks, nil); !ok || any {
		t.Fatalf("certificate did not revalidate unchanged disks (anycast=%v ok=%v)", any, ok)
	}
	// Shrink a far VP's disk (Tokyo, index 3) to a sliver: the witness
	// center is no longer inside it.
	far := 3
	if far == cert.I {
		far = 4
	}
	disks[far].RadiusKm = 10
	if !disks[far].Contains(disks[cert.I].Center) {
		if _, ok := cert.Revalidate(disks, nil); ok {
			t.Fatal("certificate revalidated after its witness was excluded")
		}
	} else {
		t.Fatal("shrink did not exclude the witness; test fixture broken")
	}
	// The fallback pass decides the new configuration; it must agree with
	// the naive pairwise check.
	fresh := DetectCert(disks, nil)
	naive := false
	for i := range disks {
		for j := i + 1; j < len(disks); j++ {
			if !disks[i].Overlaps(disks[j]) {
				naive = true
			}
		}
	}
	if fresh.Anycast() != naive {
		t.Fatalf("fallback verdict %v, naive %v", fresh.Anycast(), naive)
	}
}

// TestCertUnicastBrokenByNewVP: a vantage point newly answering the
// target appends a measurement whose disk is disjoint from an existing
// one — the cached unicast bound cannot stand.
func TestCertUnicastBrokenByNewVP(t *testing.T) {
	disks := unicastDisks()
	cert := DetectCert(disks, nil)
	if cert.Kind != CertUnicast {
		t.Fatalf("expected unicast certificate, got %+v", cert)
	}
	// A new VP in Auckland reports a tiny RTT: its disk is nowhere near
	// Frankfurt.
	akl := geo.Disk{Center: geo.Coord{Lat: -36.85, Lon: 174.76}, RadiusKm: 50}
	disks = append(disks, akl)
	if _, ok := cert.Revalidate(disks, nil); ok {
		t.Fatal("unicast certificate survived a disjoint new-VP disk")
	}
	fresh := DetectCert(disks, nil)
	if !fresh.Anycast() {
		t.Fatal("fresh detection missed the speed-of-light violation")
	}
	if any, ok := fresh.Revalidate(disks, nil); !ok || !any {
		t.Fatalf("fresh anycast certificate did not revalidate (anycast=%v ok=%v)", any, ok)
	}
}

// TestCertAnycastSurvivesShrink: under a minimum-RTT combine disks only
// shrink, and a disjoint pair stays disjoint — the cached anycast
// certificate keeps deciding the target without a full scan.
func TestCertAnycastSurvivesShrink(t *testing.T) {
	disks := anycastDisks()
	cert := DetectCert(disks, nil)
	if cert.Kind != CertAnycast {
		t.Fatalf("expected anycast certificate, got %+v", cert)
	}
	disks[cert.I].RadiusKm *= 0.7
	disks[cert.J].RadiusKm *= 0.9
	any, ok := cert.Revalidate(disks, nil)
	if !ok || !any {
		t.Fatalf("anycast certificate did not survive shrink (anycast=%v ok=%v)", any, ok)
	}
	if fresh := DetectCert(disks, nil); !fresh.Anycast() {
		t.Fatal("revalidation and fresh detection disagree")
	}
}

// TestCertAnycastInvalidatedByGrowth: growing a pair disk until the pair
// overlaps (only possible through the API, never under min-combine) must
// invalidate, not mis-certify.
func TestCertAnycastInvalidatedByGrowth(t *testing.T) {
	disks := anycastDisks()
	cert := DetectCert(disks, nil)
	if cert.Kind != CertAnycast {
		t.Fatalf("expected anycast certificate, got %+v", cert)
	}
	disks[cert.I].RadiusKm = geo.MaxSurfaceDistanceKm
	if _, ok := cert.Revalidate(disks, nil); ok {
		t.Fatal("anycast certificate survived overlapping pair")
	}
}

// TestCertOutOfRange: stale indices (e.g. from a shorter measurement
// sequence) must invalidate cleanly.
func TestCertOutOfRange(t *testing.T) {
	disks := unicastDisks()
	for _, c := range []Certificate{
		{Kind: CertUnicast, I: len(disks)},
		{Kind: CertUnicast, I: -1},
		{Kind: CertAnycast, I: 0, J: len(disks)},
		{Kind: CertAnycast, I: 2, J: 2},
		{},
	} {
		if _, ok := c.Revalidate(disks, nil); ok {
			t.Fatalf("certificate %+v revalidated out-of-range input", c)
		}
	}
}

// TestRevalidateAgreesWithDetect is the bit-identity property the
// incremental analyzer rests on: whenever Revalidate is conclusive about
// a perturbed disk set, its verdict equals a from-scratch DetectCert.
func TestRevalidateAgreesWithDetect(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	conclusive := 0
	for trial := 0; trial < 500; trial++ {
		disks := randomDisks(r, 2+r.Intn(24))
		cert := DetectCert(disks, nil)
		// Perturb like a census round would: a few disks shrink,
		// occasionally one new VP appears.
		for i := range disks {
			if r.Intn(3) == 0 {
				disks[i].RadiusKm *= 0.5 + r.Float64()*0.5
			}
		}
		if r.Intn(4) == 0 {
			disks = append(disks, randomDisks(r, 1)...)
		}
		any, ok := cert.Revalidate(disks, nil)
		if !ok {
			continue
		}
		conclusive++
		if fresh := DetectCert(disks, nil); fresh.Anycast() != any {
			t.Fatalf("trial %d: revalidated verdict %v, fresh %v (cert %+v, disks %v)",
				trial, any, fresh.Anycast(), cert, disks)
		}
	}
	if conclusive == 0 {
		t.Fatal("no trial revalidated conclusively; property untested")
	}
}
