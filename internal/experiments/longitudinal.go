package experiments

import (
	"fmt"
	"strings"

	"anycastmap/internal/census"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
)

// LongitudinalResult is the Sec. 5 "longitudinal view" extension: periodic
// censuses against the evolving anycast landscape, tracking how the
// detected footprint changes over time.
type LongitudinalResult struct {
	Epochs []LongitudinalEpoch
}

// LongitudinalEpoch is the census outcome for one period.
type LongitudinalEpoch struct {
	Epoch        uint64
	TrueReplicas int
	Detected24s  int
	Replicas     int
	// NewCities / LostCities count the churn of the measured city set
	// relative to the previous epoch.
	NewCities, LostCities int
}

// Longitudinal runs one census per epoch against the evolving world. It is
// intentionally lighter than the full lab: a single census of vps vantage
// points per epoch.
func (l *Lab) Longitudinal(epochs int, vps int) LongitudinalResult {
	res := LongitudinalResult{}
	prevCities := map[string]bool{}
	for e := 0; e < epochs; e++ {
		world := l.World
		if e > 0 {
			world = l.World.Evolve(uint64(e))
		}
		h := hitlist.FromWorld(world).PruneNeverAlive()
		sample := l.PL.Sample(vps, l.Config.Seed+100+uint64(e))
		run := census.Execute(world, sample, h, nil, uint64(50+e), census.Config{Seed: l.Config.Seed})
		combined, err := census.Combine(run)
		if err != nil {
			panic(fmt.Sprintf("longitudinal: %v", err))
		}
		outcomes := census.AnalyzeAll(l.Cities, combined, core.Options{}, 2, 0)

		ep := LongitudinalEpoch{Epoch: uint64(e)}
		for _, d := range world.Deployments() {
			ep.TrueReplicas += len(d.Replicas)
		}
		cities := map[string]bool{}
		for _, o := range outcomes {
			ep.Detected24s++
			ep.Replicas += o.Result.Count()
			for _, c := range o.Result.Cities() {
				cities[c] = true
			}
		}
		for c := range cities {
			if !prevCities[c] {
				ep.NewCities++
			}
		}
		for c := range prevCities {
			if !cities[c] {
				ep.LostCities++
			}
		}
		if e == 0 {
			ep.NewCities, ep.LostCities = 0, 0
		}
		prevCities = cities
		res.Epochs = append(res.Epochs, ep)
	}
	return res
}

// Report renders the time series.
func (r LongitudinalResult) Report() string {
	var b strings.Builder
	b.WriteString("Extension - longitudinal view (Sec. 5): periodic censuses over the evolving landscape\n")
	for _, e := range r.Epochs {
		fmt.Fprintf(&b, "  epoch %d: truth %6d replicas; detected %4d /24s, %6d replicas; city churn +%d/-%d\n",
			e.Epoch, e.TrueReplicas, e.Detected24s, e.Replicas, e.NewCities, e.LostCities)
	}
	b.WriteString("  (the landscape mostly grows; a running census tracks the drift census over census)\n")
	return b.String()
}
