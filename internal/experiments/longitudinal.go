package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/core"
	"anycastmap/internal/detrand"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/prober"
)

// LongitudinalResult is the Sec. 5 "longitudinal view" extension: periodic
// censuses against the evolving anycast landscape, tracking how the
// detected footprint changes over time.
type LongitudinalResult struct {
	Epochs []LongitudinalEpoch
}

// LongitudinalEpoch is the census outcome for one period.
type LongitudinalEpoch struct {
	Epoch        uint64
	TrueReplicas int
	Detected24s  int
	Replicas     int
	// NewCities / LostCities count the churn of the measured city set
	// relative to the previous epoch.
	NewCities, LostCities int
}

// Longitudinal runs one census per epoch against the evolving world. It is
// intentionally lighter than the full lab: a single census of vps vantage
// points per epoch.
func (l *Lab) Longitudinal(epochs int, vps int) LongitudinalResult {
	res := LongitudinalResult{}
	prevCities := map[string]bool{}
	for e := 0; e < epochs; e++ {
		world := l.World
		if e > 0 {
			world = l.World.Evolve(uint64(e))
		}
		h := hitlist.FromWorld(world).PruneNeverAlive()
		sample := l.PL.Sample(vps, l.Config.Seed+100+uint64(e))
		run := census.Execute(world, sample, h, nil, uint64(50+e), census.Config{Seed: l.Config.Seed})
		// Each epoch streams through a campaign with an attached
		// incremental analyzer (worlds differ between epochs, so nothing
		// carries across them; within the epoch the fold + dirty-set
		// analysis matches batch Combine + AnalyzeAll bit for bit).
		cp := census.NewCampaign(census.CampaignConfig{})
		cp.AttachAnalyzer(census.NewAnalyzer(l.Cities, census.AnalyzerConfig{}))
		if err := cp.FoldRun(run); err != nil {
			panic(fmt.Sprintf("longitudinal: %v", err))
		}
		cp.AnalyzeDirty()
		outcomes := cp.Outcomes()

		ep := LongitudinalEpoch{Epoch: uint64(e)}
		for _, d := range world.Deployments() {
			ep.TrueReplicas += len(d.Replicas)
		}
		cities := map[string]bool{}
		for _, o := range outcomes {
			ep.Detected24s++
			ep.Replicas += o.Result.Count()
			for _, c := range o.Result.Cities() {
				cities[c] = true
			}
		}
		for c := range cities {
			if !prevCities[c] {
				ep.NewCities++
			}
		}
		for c := range prevCities {
			if !cities[c] {
				ep.LostCities++
			}
		}
		if e == 0 {
			ep.NewCities, ep.LostCities = 0, 0
		}
		prevCities = cities
		res.Epochs = append(res.Epochs, ep)
	}
	return res
}

// LongitudinalCampaignRound is one round of the multi-round re-analysis
// workload: how much of the target set actually changed and what the
// census saw after the round folded.
type LongitudinalCampaignRound struct {
	Round uint64
	// Dirty is how many targets the fold marked dirty (a combined
	// min-RTT cell improved or a VP newly answered); DirtyFraction is
	// Dirty over the full target count — the measured analogue of the
	// paper's Sec. 3.2 month-to-month churn.
	Dirty         int
	DirtyFraction float64
	Detected24s   int
}

// LongitudinalCampaignResult quantifies the incremental analysis engine
// on the paper's longitudinal re-analysis workload (Sec. 3.2: the anycast
// set is largely stable between censuses, with month-to-month changes
// confined to a small fraction of the /24s): after an initial full
// census, each monthly round re-probes only the churned slice of the
// target list and the combination is re-analyzed after every round both
// ways — batch (re-Combine all rounds so far + AnalyzeAll from scratch,
// what longitudinal re-analysis cost before the incremental engine) and
// incremental (fold + dirty-set analysis with cached certificates) — and
// the per-round outcomes are verified equal.
type LongitudinalCampaignResult struct {
	Rounds  []LongitudinalCampaignRound
	Targets int
	VPs     int
	// BatchWall and IncrementalWall cover the analysis data path only
	// (combine/fold + per-round analysis); probing is identical in both
	// modes and excluded.
	BatchWall, IncrementalWall time.Duration
	Speedup                    float64
	// CertHitRate is the fraction of incremental analyses decided by
	// revalidating a cached detection certificate.
	CertHitRate float64
	// Agree is true when every round's incremental outcomes deep-equal
	// the batch outcomes — the bit-identity contract.
	Agree bool
}

// LongitudinalChurnPerMil is the per-round target churn of the
// longitudinal campaign workload, in 1/1000ths: each patch round
// re-probes this deterministic slice of the target list, standing in for
// the small month-to-month fraction of /24s whose routing actually
// changed (Sec. 3.2).
const LongitudinalChurnPerMil = 50

// LongitudinalCampaign runs the paper's census cadence against the lab's
// world — one full census, then rounds-1 monthly patch rounds that
// re-probe only the ~5% churned slice of the target list (everything
// else is greylisted and keeps its folded samples) — using one fixed VP
// sample throughout, and re-analyzes the combined view after every round
// through both analysis paths.
func (l *Lab) LongitudinalCampaign(rounds, vps int) LongitudinalCampaignResult {
	sample := l.PL.Sample(vps, l.Config.Seed+200)
	targets := l.Hitlist.Targets()
	runs := make([]*census.Run, rounds)
	for r := range runs {
		black := l.Black
		if r > 0 {
			// Patch round: greylist every target outside this month's
			// churn slice, so the census re-probes only the /24s that
			// plausibly changed since the last round.
			black = prober.NewGreylist()
			if l.Black != nil {
				black.Merge(l.Black)
			}
			for _, t := range targets {
				if detrand.Hash64(l.Config.Seed, uint64(60+r), uint64(t), 0xC4)%1000 >= LongitudinalChurnPerMil {
					black.Add(t, netsim.ReplyTimeout)
				}
			}
		}
		runs[r] = census.Execute(l.World, sample, l.Hitlist, black, uint64(60+r), census.Config{Seed: l.Config.Seed})
	}

	res := LongitudinalCampaignResult{Agree: true}

	// Incremental path: stream the rounds through a campaign, analyzing
	// each round's dirty set against cached results and certificates.
	cp := census.NewCampaign(census.CampaignConfig{})
	an := census.NewAnalyzer(l.Cities, census.AnalyzerConfig{})
	cp.AttachAnalyzer(an)
	perRound := make([][]census.Outcome, rounds)
	t0 := time.Now()
	for r, run := range runs {
		if err := cp.FoldRun(run); err != nil {
			panic(fmt.Sprintf("longitudinal campaign: %v", err))
		}
		dirty := cp.AnalyzeDirty()
		perRound[r] = cp.Outcomes()
		res.Rounds = append(res.Rounds, LongitudinalCampaignRound{
			Round:         run.Round,
			Dirty:         dirty,
			DirtyFraction: float64(dirty) / float64(len(cp.Combined().Targets)),
			Detected24s:   len(perRound[r]),
		})
	}
	res.IncrementalWall = time.Since(t0)
	res.Targets = len(cp.Combined().Targets)
	res.VPs = len(cp.Combined().VPs)
	res.CertHitRate = an.Stats().CertHitRate()

	// Batch path: what the workload cost before — after every round,
	// re-combine every round so far and analyze everything from scratch.
	t0 = time.Now()
	for r := range runs {
		combined, err := census.Combine(runs[:r+1]...)
		if err != nil {
			panic(fmt.Sprintf("longitudinal campaign: %v", err))
		}
		outcomes := census.AnalyzeAll(l.Cities, combined, core.Options{}, 2, 0)
		if !reflect.DeepEqual(outcomes, perRound[r]) {
			res.Agree = false
		}
	}
	res.BatchWall = time.Since(t0)
	if res.IncrementalWall > 0 {
		res.Speedup = float64(res.BatchWall) / float64(res.IncrementalWall)
	}
	return res
}

// Report renders the incremental-vs-batch comparison.
func (r LongitudinalCampaignResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension - incremental re-analysis over a %d-round campaign (%d targets, %d VPs)\n",
		len(r.Rounds), r.Targets, r.VPs)
	for _, rd := range r.Rounds {
		fmt.Fprintf(&b, "  round %d: %6d dirty targets (%.1f%%), %4d anycast /24s\n",
			rd.Round, rd.Dirty, 100*rd.DirtyFraction, rd.Detected24s)
	}
	fmt.Fprintf(&b, "  batch %.2fs vs incremental %.2fs: %.1fx; certificate hit rate %.1f%%; outcomes agree: %v\n",
		r.BatchWall.Seconds(), r.IncrementalWall.Seconds(), r.Speedup, 100*r.CertHitRate, r.Agree)
	b.WriteString("  (successive censuses mostly confirm the previous answer - Sec. 3.2's stability,\n   turned into wall-clock savings by cached detection certificates)\n")
	return b.String()
}

// Report renders the time series.
func (r LongitudinalResult) Report() string {
	var b strings.Builder
	b.WriteString("Extension - longitudinal view (Sec. 5): periodic censuses over the evolving landscape\n")
	for _, e := range r.Epochs {
		fmt.Fprintf(&b, "  epoch %d: truth %6d replicas; detected %4d /24s, %6d replicas; city churn +%d/-%d\n",
			e.Epoch, e.TrueReplicas, e.Detected24s, e.Replicas, e.NewCities, e.LostCities)
	}
	b.WriteString("  (the landscape mostly grows; a running census tracks the drift census over census)\n")
	return b.String()
}
