package experiments

import (
	"fmt"
	"strings"
	"sync"

	"anycastmap/internal/analysis"
	"anycastmap/internal/netsim"
	"anycastmap/internal/portscan"
	"anycastmap/internal/stats"
)

var (
	scanOnce sync.Once
	scanCamp *portscan.Campaign
)

// Portscan lazily runs the Sec. 4.3 campaign: every detected /24 of the
// >=5-replica ASes, one representative each, full 2^16 TCP port space from
// one vantage point.
func (l *Lab) Portscan() *portscan.Campaign {
	scanOnce.Do(func() {
		top := analysis.FilterMinReplicas(l.Findings, 5)
		var targets []netsim.IP
		for _, f := range top {
			if ip, ok := l.World.Representative(f.Prefix); ok {
				targets = append(targets, ip)
			}
		}
		scanCamp = portscan.Scan(l.World, l.PL.VPs()[0], targets, portscan.Config{Round: 1})
	})
	return scanCamp
}

// Fig14Result is the portscan statistics header plus the top-10 port bars.
type Fig14Result struct {
	Summary     analysis.ScanSummary
	TopByAS     []analysis.PortCount
	TopByPrefix []analysis.PortCount
}

// PaperFig14 records the campaign statistics the paper reports.
var PaperFig14 = struct {
	IPs, ASes, Ports, SSL, WellKnown, Software int
}{812, 81, 10499, 185, 457, 30}

// Fig14 summarizes the portscan campaign.
func (l *Lab) Fig14() Fig14Result {
	camp := l.Portscan()
	return Fig14Result{
		Summary:     analysis.SummarizeScan(camp, l.Table),
		TopByAS:     analysis.TopPortsByAS(camp, l.Table, 10),
		TopByPrefix: analysis.TopPortsByPrefix(camp, 10),
	}
}

// Report renders the campaign statistics.
func (r Fig14Result) Report() string {
	var b strings.Builder
	s := r.Summary
	fmt.Fprintf(&b, "Fig. 14 - nmap portscan statistics (measured | paper)\n")
	fmt.Fprintf(&b, "  IPs/32 responding %4d | %d   ASes %3d | %d   ports %5d | %d\n",
		s.RespondingIPs, PaperFig14.IPs, s.ASes, PaperFig14.ASes, s.UnionPorts, PaperFig14.Ports)
	fmt.Fprintf(&b, "  SSL %4d | %d   well-known %4d | %d   software %3d | %d\n",
		s.UnionSSL, PaperFig14.SSL, s.UnionWellKnown, PaperFig14.WellKnown, s.Software, PaperFig14.Software)
	fmt.Fprintf(&b, "  top ports by AS:     ")
	for _, pc := range r.TopByAS {
		fmt.Fprintf(&b, " %d(%d)", pc.Port, pc.Count)
	}
	fmt.Fprintf(&b, "\n  top ports by /24:    ")
	for _, pc := range r.TopByPrefix {
		fmt.Fprintf(&b, " %d(%d)", pc.Port, pc.Count)
	}
	fmt.Fprintf(&b, "\n  (paper per-AS top: 53 80 443 179 22 8080 8083 3306 1935 5252;"+
		" per-/24 dominated by CloudFlare's 2xxx range)\n")
	return b.String()
}

// Fig15Result is the open-ports-per-AS CCDF plus named extremes.
type Fig15Result struct {
	CCDF  []stats.Point
	Named map[string]int
	// AtLeastOne / AtLeastFive are AS fractions over the scanned top-100
	// set.
	AtLeastOne, AtLeastFive float64
}

// PaperFig15 records the named per-AS port counts.
var PaperFig15 = map[string]int{
	"OVH,FR":           10148,
	"INCAPSULA,US":     313,
	"CLOUDFLARENET,US": 22,
	"GOOGLE,US":        9,
	"EDGECAST,US":      5,
}

// Fig15 computes the per-AS port-count distribution.
func (l *Lab) Fig15() Fig15Result {
	sum := analysis.SummarizeScan(l.Portscan(), l.Table)
	res := Fig15Result{
		CCDF:  analysis.PortsCCDF(sum),
		Named: map[string]int{},
	}
	for name := range PaperFig15 {
		as := l.World.Registry.MustByName(name)
		res.Named[name] = sum.PortsPerAS[as.ASN]
	}
	scannedASes := map[int]bool{}
	for _, f := range analysis.FilterMinReplicas(l.Findings, 5) {
		scannedASes[f.ASN] = true
	}
	if n := len(scannedASes); n > 0 {
		ge1, ge5 := 0, 0
		for asn := range scannedASes {
			if sum.PortsPerAS[asn] >= 1 {
				ge1++
			}
			if sum.PortsPerAS[asn] >= 5 {
				ge5++
			}
		}
		res.AtLeastOne = float64(ge1) / float64(n)
		res.AtLeastFive = float64(ge5) / float64(n)
	}
	return res
}

// Report renders the CCDF summary.
func (r Fig15Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 15 - CCDF of open TCP ports per AS\n")
	fmt.Fprintf(&b, "  ASes with >=1 open port: %.0f%% (paper ~81/100)   >=5: %.0f%% (paper ~10%%)\n",
		100*r.AtLeastOne, 100*r.AtLeastFive)
	for _, name := range []string{"OVH,FR", "INCAPSULA,US", "CLOUDFLARENET,US", "GOOGLE,US", "EDGECAST,US"} {
		fmt.Fprintf(&b, "  %-18s measured %5d | paper %5d\n", name, r.Named[name], PaperFig15[name])
	}
	return b.String()
}

// Fig16Result is the software breakdown.
type Fig16Result struct {
	Breakdown []analysis.SoftwareCount
	// UnicastRankSpearman correlates the measured web-server popularity
	// with the unicast-world w3techs ranking (paper: 0.38, low).
	UnicastRankSpearman float64
}

// unicastWebRank approximates the w3techs web-server popularity ranking of
// the unicast web (rank 1 = most popular).
var unicastWebRank = map[string]int{
	"Apache httpd":     1,
	"nginx":            2,
	"Microsoft IIS":    3,
	"cPanel httpd":     4,
	"Varnish":          5,
	"Apache Tomcat":    6,
	"Google httpd":     7,
	"lighttpd":         8,
	"thttpd":           9,
	"cloudflare-nginx": 10,
	"ECAcc/ECS":        11,
	"instart/160":      12,
	"bitasicv2":        13,
	"ECD":              14,
	"CFS 0213":         15,
}

// Fig16 fingerprints the anycast software landscape.
func (l *Lab) Fig16() Fig16Result {
	bd := analysis.SoftwareBreakdown(l.Portscan(), l.Table)
	// Correlate the anycast web-server popularity with the unicast
	// ranking: pair (measured AS count, unicast rank) per web server.
	var measured, unicast []float64
	for _, sc := range bd {
		if sc.Category != "Web" {
			continue
		}
		rank, ok := unicastWebRank[sc.Software]
		if !ok {
			continue
		}
		// Higher AS count = more popular; unicast rank 1 = most popular,
		// so negate the rank to orient both the same way.
		measured = append(measured, float64(sc.ASes))
		unicast = append(unicast, float64(-rank))
	}
	return Fig16Result{
		Breakdown:           bd,
		UnicastRankSpearman: statsSpearman(measured, unicast),
	}
}

func statsSpearman(a, b []float64) float64 { return stats.Spearman(a, b) }

// Report renders the software breakdown.
func (r Fig16Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 16 - software on anycast replicas (%d implementations; paper 30)\n", len(r.Breakdown))
	cur := ""
	for _, sc := range r.Breakdown {
		if sc.Category != cur {
			cur = sc.Category
			fmt.Fprintf(&b, "  [%s]\n", cur)
		}
		fmt.Fprintf(&b, "    %-18s %3d ASes\n", sc.Software, sc.ASes)
	}
	fmt.Fprintf(&b, "  web-server popularity vs unicast ranking (Spearman): %.2f (paper 0.38)\n", r.UnicastRankSpearman)
	return b.String()
}
