package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The shared test lab runs the full four-census campaign at a reduced
// unicast scale; every anycast-side quantity is at paper cardinality.
var (
	labOnce sync.Once
	testLab *Lab
)

func getLab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("full campaign lab skipped in -short mode")
	}
	labOnce.Do(func() {
		cfg := DefaultLabConfig()
		cfg.Unicast24s = 6000
		testLab = NewLab(cfg)
	})
	return testLab
}

func between(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %v, want within [%v, %v]", name, got, lo, hi)
	}
}

func TestLabWorkflow(t *testing.T) {
	l := getLab(t)
	if len(l.Runs) != 4 {
		t.Fatalf("lab ran %d censuses, want 4", len(l.Runs))
	}
	for i, want := range []int{261, 255, 269, 240} {
		if got := len(l.Runs[i].VPs); got != want {
			t.Errorf("census %d used %d VPs, want %d", i+1, got, want)
		}
	}
	if l.Hitlist.Len() >= l.Full.Len() {
		t.Error("pruning removed nothing")
	}
	if len(l.Findings) == 0 {
		t.Fatal("campaign detected nothing")
	}
}

func TestFig4Funnel(t *testing.T) {
	r := getLab(t).Fig4()
	// The funnel must be monotone.
	if !(r.FullHitlist > r.PrunedTargets && r.PrunedTargets > r.EchoTargets &&
		r.EchoTargets > r.AnycastPrefixes) {
		t.Errorf("funnel not monotone: %+v", r)
	}
	// Extrapolations within 2x of the paper's magnitudes.
	between(t, "extrapolated pruned", float64(r.PrunedTargets)*r.Scale, 0.5*PaperPruned, 2*PaperPruned)
	between(t, "extrapolated echo", float64(r.EchoTargets)*r.Scale, 0.5*PaperResponsive, 2*PaperResponsive)
	between(t, "extrapolated greylist", float64(r.GreylistHosts)*r.Scale, 0.3*PaperGreylist, 3*PaperGreylist)
	// The needle in the haystack: detected anycast /24s close to the
	// paper's 1696, with no scaling (the inventory is at paper size).
	between(t, "anycast /24s", float64(r.AnycastPrefixes), 0.8*PaperAnycastIP24, 1.02*PaperAnycastIP24)
	if !strings.Contains(r.Report(), "paper") {
		t.Error("report should cite the paper values")
	}
}

func TestTable1Formats(t *testing.T) {
	r := getLab(t).Table1()
	if r.Samples == 0 {
		t.Fatal("no samples recorded")
	}
	sizeRatio := float64(r.TextBytesPerVP) / float64(r.BinaryBytesPerVP)
	between(t, "text/binary size ratio", sizeRatio, 5, 20) // paper ~13x
	if r.EstTextParse <= r.EstBinaryParse {
		t.Error("textual parsing should be slower (paper: >3 days vs 3 h)")
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestFig5PlatformGap(t *testing.T) {
	r := getLab(t).Fig5()
	if r.RIPEReplicas <= r.PLReplicas {
		t.Errorf("RIPE (%d) must out-resolve PlanetLab (%d) on Microsoft (paper: 54 vs 21)",
			r.RIPEReplicas, r.PLReplicas)
	}
	between(t, "PL replicas", float64(r.PLReplicas), 15, 35)       // paper 21
	between(t, "RIPE replicas", float64(r.RIPEReplicas), 40, 54)   // paper 54
	between(t, "PL-in-RIPE fraction", r.SubsetFraction, 0.45, 1.0) // paper: subset
}

func TestFig6BinaryRecall(t *testing.T) {
	r := getLab(t).Fig6()
	idx := map[string]int{}
	for i, p := range r.Protocols {
		idx[p] = i
	}
	di := map[string]int{}
	for i, d := range r.Deployments {
		di[d] = i
	}
	// ICMP is high everywhere.
	for d, i := range di {
		if r.Ratio[i][idx["ICMP"]] < 0.9 {
			t.Errorf("ICMP recall for %s = %.2f, want ~1", d, r.Ratio[i][idx["ICMP"]])
		}
	}
	// DNS/UDP answers only on actual DNS services.
	if r.Ratio[di["OPENDNS,US"]][idx["DNS/UDP"]] < 0.9 {
		t.Error("OpenDNS should answer DNS/UDP")
	}
	if r.Ratio[di["MICROSOFT,US"]][idx["DNS/UDP"]] > 0.1 {
		t.Error("Microsoft should not answer DNS/UDP")
	}
	if r.Ratio[di["EDGECAST,US"]][idx["TCP-80"]] < 0.9 {
		t.Error("EdgeCast should answer TCP-80")
	}
}

func TestFig7Validation(t *testing.T) {
	rs := getLab(t).Fig7()
	if len(rs) != 2 {
		t.Fatalf("want 2 validations, got %d", len(rs))
	}
	for _, r := range rs {
		p := PaperFig7[r.AS]
		between(t, r.AS+" TPR", r.Summary.MeanTPR, p.TPR-0.12, p.TPR+0.12)
		between(t, r.AS+" median err", r.Summary.MedianErrKm, 100, 700) // paper 434/287
		between(t, r.AS+" GT/PAI", r.Summary.MeanGTOverPAI, 0.5, 1.0)
		if r.Summary.Prefixes < 10 {
			t.Errorf("%s validated only %d /24s", r.AS, r.Summary.Prefixes)
		}
	}
	// CloudFlare's TPR exceeds EdgeCast's, as in the paper (77% vs 65%).
	if rs[0].Summary.MeanTPR <= rs[1].Summary.MeanTPR {
		t.Errorf("CloudFlare TPR (%.2f) should exceed EdgeCast's (%.2f)",
			rs[0].Summary.MeanTPR, rs[1].Summary.MeanTPR)
	}
}

func TestFig8Completion(t *testing.T) {
	r := getLab(t).Fig8()
	between(t, "within 2h", r.Within2h, 0.25, 0.55) // paper ~40%
	between(t, "within 5h", r.Within5h, 0.88, 0.99) // paper ~95%
	if r.Within5h <= r.Within2h {
		t.Error("CDF not monotone")
	}
}

func TestFig9BirdsEye(t *testing.T) {
	r := getLab(t).Fig9()
	between(t, "top ASes", float64(len(r.Rows)), 85, 125) // paper 100
	// Sorted by decreasing footprint.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Stat.MeanReplicas > r.Rows[i-1].Stat.MeanReplicas {
			t.Fatal("rows not sorted by mean replicas")
		}
	}
	// The paper's "no correlation" observation: weak Pearson.
	between(t, "footprint correlation", r.FootprintCorrelation, -0.2, 0.6) // paper 0.35
	// CloudFlare is among the top geographical footprints.
	foundCF := false
	for _, row := range r.Rows[:10] {
		if row.Stat.AS.Name == "CLOUDFLARENET,US" {
			foundCF = true
		}
	}
	if !foundCF {
		t.Error("CloudFlare missing from the top-10 geographical footprints")
	}
}

func TestFig10Glance(t *testing.T) {
	r := getLab(t).Fig10()
	p := PaperFig10
	between(t, "all /24s", float64(r.All.IP24s), 0.8*float64(p["All"].IP24s), 1.02*float64(p["All"].IP24s))
	between(t, "all ASes", float64(r.All.ASes), 0.8*float64(p["All"].ASes), 1.02*float64(p["All"].ASes))
	between(t, "all replicas", float64(r.All.Replicas), 0.8*float64(p["All"].Replicas), 1.25*float64(p["All"].Replicas))
	between(t, "min5 /24s", float64(r.Min5.IP24s), 0.8*float64(p["Min5"].IP24s), 1.25*float64(p["Min5"].IP24s))
	between(t, "min5 ASes", float64(r.Min5.ASes), 0.75*float64(p["Min5"].ASes), 1.35*float64(p["Min5"].ASes))
	between(t, "caida /24s", float64(r.CAIDA100.IP24s), 15, 23) // paper 19
	if r.CAIDA100.ASes != 8 {
		t.Errorf("CAIDA-100 ASes = %d, want 8", r.CAIDA100.ASes)
	}
	between(t, "alexa /24s", float64(r.Alexa100k.IP24s), 0.9*float64(p["Alexa-100k"].IP24s), 1.02*float64(p["Alexa-100k"].IP24s))
	if r.Alexa100k.ASes != 15 {
		t.Errorf("Alexa ASes = %d, want 15", r.Alexa100k.ASes)
	}
	// Nesting: each filtered row is a subset of All.
	if r.Min5.IP24s > r.All.IP24s || r.CAIDA100.IP24s > r.All.IP24s || r.Alexa100k.IP24s > r.All.IP24s {
		t.Error("filtered rows exceed the All row")
	}
}

func TestFig11Categories(t *testing.T) {
	r := getLab(t).Fig11()
	between(t, "DNS share", r.Share("DNS"), 0.22, 0.45) // paper ~1/3
	var sum float64
	for _, cs := range r.Breakdown {
		sum += cs.Share
	}
	between(t, "breakdown sum", sum, 0.999, 1.001)
	// DNS leads all categories (the paper's headline of Fig. 11) — with
	// the share-descending ordering, DNS must be the first entry.
	for _, cs := range r.Breakdown {
		if cs.Category != "DNS" && cs.Share > r.Share("DNS") {
			t.Errorf("category %s (%.2f) exceeds DNS (%.2f)", cs.Category, cs.Share, r.Share("DNS"))
		}
	}
	if len(r.Breakdown) > 0 && r.Breakdown[0].Category != "DNS" {
		t.Errorf("breakdown leads with %s, want DNS", r.Breakdown[0].Category)
	}
}

func TestFig12Combination(t *testing.T) {
	r := getLab(t).Fig12()
	if len(r.PerCensusCounts) != 4 {
		t.Fatal("want 4 per-census counts")
	}
	for _, n := range r.PerCensusCounts {
		if n > r.CombinedCount {
			t.Errorf("census found %d > combined %d", n, r.CombinedCount)
		}
	}
	if r.CombinationGain <= 0 {
		t.Errorf("combination gain = %v, want positive (paper ~+200)", r.CombinationGain)
	}
	between(t, "median replicas", r.MedianReplicas, 3, 10)
	between(t, "max replicas", float64(r.MaxReplicas), 20, 54)
}

func TestFig13Footprints(t *testing.T) {
	r := getLab(t).Fig13()
	between(t, "singleton share", r.SingletonShare, 0.3, 0.6) // paper ~50%
	for name, paper := range PaperFig13 {
		got := r.Named[name]
		lo := int(0.85 * float64(paper))
		if paper <= 3 {
			lo = paper - 1
		}
		if got < lo || got > paper {
			t.Errorf("%s measured %d /24s, want within [%d, %d] (paper %d)", name, got, lo, paper, paper)
		}
	}
}

func TestFig14Portscan(t *testing.T) {
	r := getLab(t).Fig14()
	s := r.Summary
	between(t, "responding IPs", float64(s.RespondingIPs), 0.8*float64(PaperFig14.IPs), 1.2*float64(PaperFig14.IPs))
	between(t, "scan ASes", float64(s.ASes), 0.85*float64(PaperFig14.ASes), 1.2*float64(PaperFig14.ASes))
	between(t, "union ports", float64(s.UnionPorts), 0.95*float64(PaperFig14.Ports), 1.05*float64(PaperFig14.Ports))
	between(t, "ssl union", float64(s.UnionSSL), 0.7*float64(PaperFig14.SSL), 1.3*float64(PaperFig14.SSL))
	between(t, "well-known union", float64(s.UnionWellKnown), 0.85*float64(PaperFig14.WellKnown), 1.15*float64(PaperFig14.WellKnown))
	between(t, "software", float64(s.Software), 25, 31) // paper 30
	// DNS, HTTP and HTTPS lead the per-AS port ranking.
	lead := map[uint16]bool{}
	for _, pc := range r.TopByAS[:3] {
		lead[pc.Port] = true
	}
	if !lead[53] || !lead[80] || !lead[443] {
		t.Errorf("per-AS top-3 ports = %v, want {53,80,443}", r.TopByAS[:3])
	}
	// The per-/24 ranking is CloudFlare-skewed: its 2xxx/8xxx range shows up.
	cfSkew := false
	for _, pc := range r.TopByPrefix {
		if pc.Port >= 2052 && pc.Port <= 2098 {
			cfSkew = true
		}
	}
	if !cfSkew {
		t.Error("per-/24 top-10 missing CloudFlare's 2xxx range (class imbalance, Sec. 4.3)")
	}
}

func TestFig15PortsPerAS(t *testing.T) {
	r := getLab(t).Fig15()
	for name, paper := range PaperFig15 {
		between(t, name+" ports", float64(r.Named[name]), 0.9*float64(paper), 1.02*float64(paper))
	}
	between(t, ">=1 port share", r.AtLeastOne, 0.6, 0.95)   // paper ~81%
	between(t, ">=5 ports share", r.AtLeastFive, 0.05, 0.3) // paper ~10%
	if r.AtLeastFive >= r.AtLeastOne {
		t.Error("CCDF not monotone")
	}
}

func TestFig16Software(t *testing.T) {
	r := getLab(t).Fig16()
	between(t, "implementations", float64(len(r.Breakdown)), 25, 31) // paper 30
	counts := map[string]int{}
	for _, sc := range r.Breakdown {
		counts[sc.Software] = sc.ASes
	}
	// ISC BIND is the most adopted DNS implementation; NSD runs on 3 ASes.
	if counts["ISC BIND"] <= counts["NLnet Labs NSD"] {
		t.Error("ISC BIND should dominate NSD")
	}
	if counts["NLnet Labs NSD"] != 3 {
		t.Errorf("NSD on %d ASes, want 3 (Apple, K-root, L-root)", counts["NLnet Labs NSD"])
	}
	// nginx leads the web servers (paper: 7 ASes).
	if counts["nginx"] < counts["Apache httpd"] {
		t.Error("nginx should lead Apache in the anycast world")
	}
	// The anycast ranking correlates only weakly with the unicast one.
	between(t, "unicast Spearman", r.UnicastRankSpearman, 0.0, 0.85) // paper 0.38
}

func TestCoverageCheck(t *testing.T) {
	r := getLab(t).Coverage()
	between(t, "hitlist coverage", r.Fraction, 0.999, 1.0)        // paper 99.99%
	between(t, "anycast /24 share", r.AnycastSlash24, 0.84, 0.92) // paper 88%
}

func TestOpenDNSConsistency(t *testing.T) {
	r := getLab(t).OpenDNS()
	if r.TrueSites != 24 {
		t.Fatalf("OpenDNS pinned to %d sites, want 24", r.TrueSites)
	}
	counts := r.InstancesByProtocol
	if len(counts) != 5 {
		t.Fatalf("protocols = %v", counts)
	}
	// Consistency: every protocol sees nearly the same instance count
	// (paper: 15-17 across protocols).
	lo, hi := 1<<30, 0
	for _, n := range counts {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi-lo > 3 {
		t.Errorf("instance counts spread too wide: %v", counts)
	}
	between(t, "instances", float64(counts["ICMP"]), 14, 24)
	if r.TotalLocated > 0 && float64(r.CorrectCities)/float64(r.TotalLocated) < 0.6 {
		t.Errorf("only %d/%d OpenDNS cities correct", r.CorrectCities, r.TotalLocated)
	}
}

func TestAllReportsRender(t *testing.T) {
	l := getLab(t)
	reports := []string{
		l.Table1().Report(), l.Fig4().Report(), l.Fig5().Report(),
		l.Fig6().Report(), ReportFig7(l.Fig7()), l.Fig8().Report(),
		l.Fig9().Report(), l.Fig10().Report(), l.Fig11().Report(),
		l.Fig13().Report(), l.Fig14().Report(),
		l.Fig15().Report(), l.Fig16().Report(), l.Coverage().Report(),
		l.OpenDNS().Report(),
	}
	for i, rep := range reports {
		if len(rep) < 40 {
			t.Errorf("report %d suspiciously short: %q", i, rep)
		}
	}
}

// TestLabDiscardRuns pins the streaming memory contract: a lab built with
// DiscardRuns keeps no per-round matrices yet produces a combination
// identical to the retaining lab's.
func TestLabDiscardRuns(t *testing.T) {
	cfg := LabConfig{Unicast24s: 800, Censuses: 2, VPsPerCensus: []int{24, 20}, Seed: 7}
	keep := NewLab(cfg)
	cfg.DiscardRuns = true
	drop := NewLab(cfg)

	if drop.Runs != nil {
		t.Fatalf("DiscardRuns lab retained %d runs", len(drop.Runs))
	}
	if len(keep.Runs) != 2 {
		t.Fatalf("retaining lab kept %d runs, want 2", len(keep.Runs))
	}
	if len(drop.Combined.VPs) != len(keep.Combined.VPs) ||
		len(drop.Combined.Targets) != len(keep.Combined.Targets) {
		t.Fatal("combined shapes diverge")
	}
	for v := range keep.Combined.RTTus {
		for ti, want := range keep.Combined.RTTus[v] {
			if got := drop.Combined.RTTus[v][ti]; got != want {
				t.Fatalf("combined cell (%d,%d) = %d, want %d", v, ti, got, want)
			}
		}
	}
	if len(drop.Findings) != len(keep.Findings) {
		t.Fatalf("findings diverge: %d vs %d", len(drop.Findings), len(keep.Findings))
	}
}
