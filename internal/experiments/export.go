package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"anycastmap/internal/analysis"
	"anycastmap/internal/stats"
)

// ExportCSV writes the plot-ready data series behind every distribution
// figure to dir, one CSV file per series - the dataset-release counterpart
// of the paper's public results page. Files:
//
//	fig8_completion_cdf.csv    hours,cdf
//	fig10_density.csv          cc,replicas,cities
//	fig11_categories.csv       category,share
//	fig12_replica_cdf.csv      replicas,cdf
//	fig13_subnets_cdf.csv      subnets,cdf
//	fig15_ports_ccdf.csv       ports,ccdf
//	fig9_top_ases.csv          as,asn,mean_replicas,std,ip24s,open_ports
func (l *Lab) ExportCSV(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	var written []string
	write := func(name, header string, rows []string) error {
		path := filepath.Join(dir, name)
		var b strings.Builder
		b.WriteString(header)
		b.WriteByte('\n')
		for _, r := range rows {
			b.WriteString(r)
			b.WriteByte('\n')
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return fmt.Errorf("export %s: %w", name, err)
		}
		written = append(written, path)
		return nil
	}
	points := func(pts []stats.Point) []string {
		rows := make([]string, len(pts))
		for i, p := range pts {
			rows[i] = fmt.Sprintf("%g,%g", p.X, p.P)
		}
		return rows
	}

	if err := write("fig8_completion_cdf.csv", "hours,cdf", points(l.Fig8().CDF)); err != nil {
		return written, err
	}

	var densityRows []string
	for _, cc := range analysis.CountryDensity(l.Findings) {
		densityRows = append(densityRows, fmt.Sprintf("%s,%d,%d", cc.CC, cc.Replicas, cc.Cities))
	}
	if err := write("fig10_density.csv", "cc,replicas,cities", densityRows); err != nil {
		return written, err
	}

	fig11 := l.Fig11()
	var catRows []string
	for _, cat := range []string{"DNS", "CDN", "Cloud", "ISP", "Security", "Social", "Unknown", "Other"} {
		catRows = append(catRows, fmt.Sprintf("%s,%g", cat, fig11.Share(cat)))
	}
	if err := write("fig11_categories.csv", "category,share", catRows); err != nil {
		return written, err
	}

	replicaCDF := stats.ECDF(analysis.ReplicasPerPrefix(l.Findings))
	if err := write("fig12_replica_cdf.csv", "replicas,cdf", points(replicaCDF)); err != nil {
		return written, err
	}

	subnetCDF := stats.ECDF(analysis.SubnetsPerAS(l.Findings))
	if err := write("fig13_subnets_cdf.csv", "subnets,cdf", points(subnetCDF)); err != nil {
		return written, err
	}

	if err := write("fig15_ports_ccdf.csv", "ports,ccdf", points(l.Fig15().CCDF)); err != nil {
		return written, err
	}

	var asRows []string
	for _, row := range l.Fig9().Rows {
		asRows = append(asRows, fmt.Sprintf("%q,%d,%g,%g,%d,%d",
			row.Stat.AS.Name, row.Stat.AS.ASN, row.Stat.MeanReplicas, row.Stat.StdReplicas,
			row.Stat.IP24s, row.OpenPorts))
	}
	if err := write("fig9_top_ases.csv", "as,asn,mean_replicas,std,ip24s,open_ports", asRows); err != nil {
		return written, err
	}
	return written, nil
}
