package experiments

import (
	"fmt"
	"strings"

	"anycastmap/internal/baseline"
	"anycastmap/internal/core"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

// BaselineComparison reproduces the Sec. 2.2 positioning of the paper's
// technique against prior art, on live campaign data.
type BaselineComparison struct {
	// DNS deployments: CHAOS enumeration vs iGreedy vs truth.
	DNSTargets   int
	TruthTotal   int
	CHAOSTotal   int
	IGreedyTotal int
	// CHAOS is blind beyond DNS.
	NonDNSTargets      int
	CHAOSNonDNSAnswers int
	// Geolocation databases: one location per prefix; at most one replica
	// of each deployment can match it.
	DBPrefixes       int
	DBReplicaMatches int
	DBReplicaTotal   int
	// Constraint-based geolocation feasibility.
	AnycastTargets     int
	CBGFeasibleAnycast int
	UnicastTargets     int
	CBGFeasibleUnicast int
}

// Baselines runs every prior-art comparison over a sample of campaign
// targets.
func (l *Lab) Baselines(sampleSize int) BaselineComparison {
	res := BaselineComparison{}
	geoDB := baseline.BuildGeoDB(l.World, l.World.Registry, l.Cities)
	vps := l.Runs[0].VPs

	measureTarget := func(target netsim.IP) []core.Measurement {
		return measureFromVPs(vps, l.Config.Censuses, func(vp platform.VP, round uint64) netsim.Reply {
			return l.World.ProbeICMP(vp, target, round)
		})
	}

	// Anycast side: walk a sample of the detected deployments.
	for _, f := range l.Findings {
		if res.DNSTargets+res.NonDNSTargets >= sampleSize {
			break
		}
		d, _ := l.World.Deployment(f.Prefix)
		target, _ := l.World.Representative(f.Prefix)
		set, hasSvc := l.World.Services.ByASN(d.ASN)
		isDNS := hasSvc && set.ServesDNSOverUDP

		chaos, err := baseline.CHAOSEnumerate(l.World, vps, target, l.Config.Censuses)
		if err != nil {
			panic(fmt.Sprintf("baselines: %v", err))
		}
		if isDNS {
			res.DNSTargets++
			res.TruthTotal += len(d.Replicas)
			res.CHAOSTotal += chaos.Count()
			res.IGreedyTotal += f.Result.Count()
		} else {
			res.NonDNSTargets++
			if chaos.Answered {
				res.CHAOSNonDNSAnswers++
			}
		}

		if home, ok := geoDB.Lookup(f.Prefix); ok {
			res.DBPrefixes++
			for _, r := range d.Replicas {
				res.DBReplicaTotal++
				if r.City.Key() == home.Key() {
					res.DBReplicaMatches++
				}
			}
		}

		res.AnycastTargets++
		if baseline.CBGLocate(measureTarget(target)).Feasible {
			res.CBGFeasibleAnycast++
		}
	}

	// Unicast side: CBG should succeed on responsive single-location
	// targets.
	count := 0
	l.World.Prefixes(func(p netsim.Prefix24) {
		if count >= sampleSize/2 || l.World.IsAnycast(p) {
			return
		}
		ip, alive := l.World.Representative(p)
		if !alive {
			return
		}
		ms := measureTarget(ip)
		if len(ms) < 10 {
			return
		}
		count++
		res.UnicastTargets++
		if baseline.CBGLocate(ms).Feasible {
			res.CBGFeasibleUnicast++
		}
	})
	return res
}

// Report renders the comparison.
func (r BaselineComparison) Report() string {
	var b strings.Builder
	b.WriteString("Baselines - prior art reproduced on campaign data (Sec. 2.2)\n")
	fmt.Fprintf(&b, "  CHAOS [25] on %d DNS deployments: %d instances vs iGreedy %d (truth %d)\n",
		r.DNSTargets, r.CHAOSTotal, r.IGreedyTotal, r.TruthTotal)
	fmt.Fprintf(&b, "  CHAOS beyond DNS: %d answers on %d non-DNS anycast deployments (blind, as argued)\n",
		r.CHAOSNonDNSAnswers, r.NonDNSTargets)
	fmt.Fprintf(&b, "  geo databases [41]: %d of %d replicas match the single stored location (%.0f%%)\n",
		r.DBReplicaMatches, r.DBReplicaTotal, 100*float64(r.DBReplicaMatches)/float64(max(1, r.DBReplicaTotal)))
	fmt.Fprintf(&b, "  CBG triangulation [28]: feasible on %d/%d unicast but only %d/%d anycast targets\n",
		r.CBGFeasibleUnicast, r.UnicastTargets, r.CBGFeasibleAnycast, r.AnycastTargets)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
