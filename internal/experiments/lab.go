// Package experiments regenerates every table and figure of the paper's
// evaluation from the synthetic Internet: it wires the full workflow of
// Fig. 1 (hitlist -> blacklist census -> four censuses from PlanetLab ->
// minimum-RTT combination -> detection/enumeration/geolocation ->
// characterization and portscan) and exposes one function per experiment,
// each returning the measured values next to the numbers the paper
// reports.
package experiments

import (
	"fmt"
	"sync"

	"anycastmap/internal/analysis"
	"anycastmap/internal/bgp"
	"anycastmap/internal/census"
	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// LabConfig sizes the laboratory.
type LabConfig struct {
	// Unicast24s scales the unicast background. The default 20,000 is a
	// 1:530 scale of the paper's 10.6M routed /24s; cmd/benchreport can
	// raise it. The anycast inventory is always at paper cardinality.
	Unicast24s int
	// Censuses is the number of census rounds (the paper ran 4).
	Censuses int
	// VPsPerCensus is the PlanetLab availability per round (the paper
	// saw 261, 255, 269 and 240 live nodes).
	VPsPerCensus []int
	// Seed drives the whole lab.
	Seed uint64
	// DiscardRuns releases each round's matrix after it folds into the
	// combination, bounding peak memory to O(one run + combined). The
	// default (false) retains Runs, which the Fig. 4 funnel and the
	// per-census ablations need; discard only for scale/memory studies
	// that read nothing but Combined.
	DiscardRuns bool
}

// DefaultLabConfig mirrors the paper's campaign at reduced unicast scale.
func DefaultLabConfig() LabConfig {
	return LabConfig{
		Unicast24s:   20000,
		Censuses:     4,
		VPsPerCensus: []int{261, 255, 269, 240},
		Seed:         2015,
	}
}

// Lab is a fully-executed census campaign ready for analysis.
type Lab struct {
	Config LabConfig

	World    *netsim.World
	Cities   *cities.DB
	PL       *platform.Platform
	RIPE     *platform.Platform
	Table    *bgp.Table
	Full     *hitlist.Hitlist // before pruning
	Hitlist  *hitlist.Hitlist // pruned per-VP target list
	Black    *prober.Greylist
	Runs     []*census.Run // individual rounds; nil when Config.DiscardRuns

	Combined *census.Combined
	Outcomes []census.Outcome
	Findings []analysis.Finding
}

// ScaleFactor returns the downscale of the allocated /24 space relative to
// the paper's 10.6M routed /24s; multiply scaled magnitudes by it to
// extrapolate.
func (l *Lab) ScaleFactor() float64 {
	return 10_616_435.0 / float64(l.World.NumPrefixes())
}

// NewLab builds the world and executes the full campaign. It is expensive
// (tens of seconds at default scale); share one Lab across experiments.
func NewLab(cfg LabConfig) *Lab {
	if cfg.Unicast24s <= 0 {
		cfg.Unicast24s = 20000
	}
	if cfg.Censuses <= 0 {
		cfg.Censuses = 4
	}
	for len(cfg.VPsPerCensus) < cfg.Censuses {
		cfg.VPsPerCensus = append(cfg.VPsPerCensus, 255)
	}

	wcfg := netsim.DefaultConfig()
	wcfg.Seed = cfg.Seed
	wcfg.Unicast24s = cfg.Unicast24s

	l := &Lab{Config: cfg, Cities: cities.Default()}
	l.World = netsim.New(wcfg)
	l.PL = platform.PlanetLab(l.Cities)
	l.RIPE = platform.RIPEAtlas(l.Cities)
	l.Table = bgp.FromWorld(l.World)
	l.Full = hitlist.FromWorld(l.World)

	// Workflow of Fig. 1: a preliminary single-VP census seeds the
	// blacklist, then the pruned hitlist is probed from every live VP in
	// each census round.
	black, err := prober.BuildBlacklist(l.World, l.PL.VPs()[0], l.Full.Targets(), prober.Config{Seed: cfg.Seed})
	if err != nil {
		panic(fmt.Sprintf("experiments: blacklist census: %v", err))
	}
	l.Black = black
	l.Hitlist = l.Full.PruneNeverAlive().Without(l.Black.Targets())

	// Rounds stream through a Campaign: each census folds into the
	// combined minimum-RTT matrix as it finishes, and (with DiscardRuns)
	// its rows are released right away. The fold is byte-identical to the
	// batch Combine of the same rounds.
	cp := census.NewCampaign(census.CampaignConfig{
		Census:     census.Config{Seed: cfg.Seed},
		RetainRuns: !cfg.DiscardRuns,
	})
	for round := 0; round < cfg.Censuses; round++ {
		vps := l.PL.Sample(cfg.VPsPerCensus[round], cfg.Seed+uint64(round))
		run := census.Execute(l.World, vps, l.Hitlist, l.Black, uint64(round+1), census.Config{Seed: cfg.Seed})
		if err := cp.FoldRun(run); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
	}
	l.Runs = cp.Runs()
	l.Combined = cp.Combined()
	l.Outcomes = census.AnalyzeAll(l.Cities, l.Combined, core.Options{}, 2, 0)
	l.Findings = analysis.Attribute(l.Outcomes, l.Table)
	return l
}

var (
	defaultLabOnce sync.Once
	defaultLab     *Lab
)

// DefaultLab returns the shared lab at default scale, building it on first
// use.
func DefaultLab() *Lab {
	defaultLabOnce.Do(func() {
		defaultLab = NewLab(DefaultLabConfig())
	})
	return defaultLab
}
