package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"anycastmap/internal/prober"
	"anycastmap/internal/record"
	"anycastmap/internal/stats"
)

// Fig4Result is the census-magnitude funnel of Fig. 4.
type Fig4Result struct {
	// Measured, at lab scale.
	FullHitlist     int
	PrunedTargets   int
	EchoTargets     int // targets answering at least one VP in census 1
	GreylistHosts   int
	ValidTargets    int // targets with >= 2 echo samples in the combination
	AnycastPrefixes int
	// Scale is the unicast downscale factor for extrapolation.
	Scale float64
}

// Paper magnitudes for Fig. 4 (Secs. 2.1 and 3.1).
const (
	PaperFullHitlist   = 10_616_435
	PaperPruned        = 6_600_000
	PaperResponsive    = 4_400_000
	PaperGreylist      = 150_000
	PaperAnycastIP24   = 1696
	PaperAnycastASes   = 346
	PaperTotalReplicas = 13802
)

// Fig4 reproduces the census funnel.
func (l *Lab) Fig4() Fig4Result {
	valid := 0
	for t := range l.Combined.Targets {
		n := 0
		for v := range l.Combined.VPs {
			if l.Combined.RTTus[v][t] >= 0 {
				n++
				if n >= 2 {
					break
				}
			}
		}
		if n >= 2 {
			valid++
		}
	}
	grey := prober.NewGreylist()
	grey.Merge(l.Black)
	for _, r := range l.Runs {
		grey.Merge(r.Greylist)
	}
	return Fig4Result{
		FullHitlist:     l.Full.Len(),
		PrunedTargets:   l.Hitlist.Len(),
		EchoTargets:     l.Runs[0].EchoTargets(),
		GreylistHosts:   grey.Len(),
		ValidTargets:    valid,
		AnycastPrefixes: len(l.Findings),
		Scale:           l.ScaleFactor(),
	}
}

// Report renders the funnel next to the paper's magnitudes.
func (r Fig4Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 - census magnitude funnel (scale 1:%.0f, extrapolation in parens)\n", r.Scale)
	row := func(name string, got int, paper int) {
		fmt.Fprintf(&b, "  %-22s %10d  (x%.0f = %11.0f)   paper %11d\n",
			name, got, r.Scale, float64(got)*r.Scale, paper)
	}
	row("hitlist /24s", r.FullHitlist, PaperFullHitlist)
	row("pruned targets", r.PrunedTargets, PaperPruned)
	row("echo targets", r.EchoTargets, PaperResponsive)
	row("greylist hosts", r.GreylistHosts, PaperGreylist)
	fmt.Fprintf(&b, "  %-22s %10d   paper %d (of %d ASes)\n", "anycast /24s (no scaling)", r.AnycastPrefixes, PaperAnycastIP24, PaperAnycastASes)
	return b.String()
}

// Table1Result compares the textual and binary census formats.
type Table1Result struct {
	Samples          int // recorded samples for one VP at lab scale
	BinaryBytesPerVP int64
	TextBytesPerVP   int64
	// Extrapolations to the paper's 6.6M-target, ~300-VP campaign.
	EstBinaryCensusBytes int64
	EstTextCensusBytes   int64
	// Decode throughput drives the analysis-duration gap of Table 1.
	BinaryDecodePerSec float64
	TextDecodePerSec   float64
	EstBinaryParse     time.Duration // parse time for a full paper-scale census
	EstTextParse       time.Duration
}

// Paper values for Table 1.
const (
	PaperBinaryHostMB   = 21
	PaperTextHostMB     = 270
	PaperBinaryCensusGB = 6
	PaperTextCensusGB   = 79
)

// Table1 re-runs one vantage point's census through both record formats
// and measures sizes and decode throughput.
func (l *Lab) Table1() Table1Result {
	vp := l.PL.VPs()[1]
	var bin, txt bytes.Buffer
	bw := record.NewBinaryWriter(&bin)
	cw := record.NewCSVWriter(&txt, vp.Name)
	n := 0
	if _, _, err := prober.Run(l.World, vp, l.Hitlist.Targets(), l.Black, prober.Config{Seed: l.Config.Seed, Round: 1},
		func(s record.Sample) {
			n++
			if err := bw.Write(s); err != nil {
				panic(err)
			}
			if err := cw.Write(s); err != nil {
				panic(err)
			}
		}); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	bw.Flush()
	cw.Flush()

	res := Table1Result{
		Samples:          n,
		BinaryBytesPerVP: int64(bin.Len()),
		TextBytesPerVP:   int64(txt.Len()),
	}
	// Extrapolate to the paper's per-VP sample volume (4.4M replies) and
	// ~300 VPs.
	perSampleBin := float64(bin.Len()) / float64(n)
	perSampleTxt := float64(txt.Len()) / float64(n)
	res.EstBinaryCensusBytes = int64(perSampleBin * 4_400_000 * 300)
	res.EstTextCensusBytes = int64(perSampleTxt * 4_400_000 * 300)

	res.BinaryDecodePerSec = decodeRate(record.NewBinaryReader(bytes.NewReader(bin.Bytes())), n)
	res.TextDecodePerSec = decodeRate(record.NewCSVReader(bytes.NewReader(txt.Bytes())), n)
	if res.BinaryDecodePerSec > 0 {
		res.EstBinaryParse = time.Duration(4_400_000 * 300 / res.BinaryDecodePerSec * float64(time.Second))
	}
	if res.TextDecodePerSec > 0 {
		res.EstTextParse = time.Duration(4_400_000 * 300 / res.TextDecodePerSec * float64(time.Second))
	}
	return res
}

func decodeRate(r record.Reader, n int) float64 {
	start := time.Now()
	count := 0
	for {
		if _, err := r.Read(); err != nil {
			if err == io.EOF {
				break
			}
			panic(err)
		}
		count++
	}
	el := time.Since(start)
	if el <= 0 || count == 0 {
		return 0
	}
	return float64(count) / el.Seconds()
}

// Report renders the format comparison.
func (r Table1Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 - textual vs binary census format (one VP, %d samples)\n", r.Samples)
	fmt.Fprintf(&b, "  %-28s %12s %12s\n", "", "binary", "textual")
	fmt.Fprintf(&b, "  %-28s %12d %12d\n", "bytes per VP (lab scale)", r.BinaryBytesPerVP, r.TextBytesPerVP)
	fmt.Fprintf(&b, "  %-28s %9.1f GB %9.1f GB   paper: %d GB vs %d GB\n", "est. census at paper scale",
		float64(r.EstBinaryCensusBytes)/1e9, float64(r.EstTextCensusBytes)/1e9, PaperBinaryCensusGB, PaperTextCensusGB)
	fmt.Fprintf(&b, "  %-28s %10.1fM/s %10.2fM/s\n", "decode throughput", r.BinaryDecodePerSec/1e6, r.TextDecodePerSec/1e6)
	fmt.Fprintf(&b, "  %-28s %12v %12v   paper: 3 h vs >3 days\n", "est. parse, paper scale", r.EstBinaryParse.Round(time.Second), r.EstTextParse.Round(time.Second))
	fmt.Fprintf(&b, "  size ratio %.1fx (paper ~13x), parse ratio %.1fx\n",
		float64(r.TextBytesPerVP)/float64(r.BinaryBytesPerVP),
		float64(r.EstTextParse)/float64(max64(1, int64(r.EstBinaryParse))))
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Fig8Result is the per-VP completion-time distribution.
type Fig8Result struct {
	// HoursAtPaperScale is each VP's completion extrapolated to the 6.6M
	// target list at 1k probes/s.
	HoursAtPaperScale  []float64
	Within2h, Within5h float64 // fractions
	CDF                []stats.Point
}

// Fig8 reproduces the completion-time CDF.
func (l *Lab) Fig8() Fig8Result {
	scaleToPaper := 6_600_000.0 / float64(l.Hitlist.Len())
	var hours []float64
	for _, r := range l.Runs {
		for _, d := range r.CompletionTimes() {
			hours = append(hours, d.Hours()*scaleToPaper)
		}
	}
	return Fig8Result{
		HoursAtPaperScale: hours,
		Within2h:          stats.FractionAtMost(hours, 2),
		Within5h:          stats.FractionAtMost(hours, 5),
		CDF:               stats.ECDF(hours),
	}
}

// Report renders the completion-time summary.
func (r Fig8Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 - per-VP completion time (extrapolated to 6.6M targets at 1k pps)\n")
	fmt.Fprintf(&b, "  within 2h: %.0f%% (paper ~40%%)   within 5h: %.0f%% (paper ~95%%)\n",
		100*r.Within2h, 100*r.Within5h)
	mn, mx := stats.MinMax(r.HoursAtPaperScale)
	fmt.Fprintf(&b, "  range %.1fh .. %.1fh over %d VP-runs (paper x-axis 1..16h)\n", mn, mx, len(r.HoursAtPaperScale))
	return b.String()
}

// CoverageResult is the Sec. 3.1 hitlist-coverage cross-check.
type CoverageResult struct {
	Routed24s      int
	Covered24s     int
	Fraction       float64
	AnycastSlash24 float64 // fraction of anycast /24s announced exactly as /24
}

// Coverage cross-checks hitlist coverage and announcement granularity.
func (l *Lab) Coverage() CoverageResult {
	covered, total := coverageOf(l)
	return CoverageResult{
		Routed24s:      total,
		Covered24s:     covered,
		Fraction:       float64(covered) / float64(total),
		AnycastSlash24: l.Table.FractionSlash24(l.World.AnycastPrefixes()),
	}
}

func coverageOf(l *Lab) (int, int) {
	covered := 0
	for _, rt := range l.Table.Routes() {
		if l.Full.Covers(rt.Prefix) {
			covered++
		}
	}
	return covered, l.Table.Len()
}

// Report renders the coverage check.
func (r CoverageResult) Report() string {
	return fmt.Sprintf("Sec. 3.1 - coverage: %d of %d routed /24s have a hitlist representative (%.4f%%, paper 99.99%%)\n"+
		"  anycast announcements that are exactly /24: %.0f%% (paper [35]: 88%%)\n",
		r.Covered24s, r.Routed24s, 100*r.Fraction, 100*r.AnycastSlash24)
}
