package experiments

import (
	"encoding/csv"
	"os"
	"testing"
)

func TestAblateVPCount(t *testing.T) {
	l := getLab(t)
	r := l.AblateVPCount([]int{40, 120, 250})
	if len(r.Detected24s) != 3 {
		t.Fatal("sweep incomplete")
	}
	// Monotone: more VPs, more detections and more replicas.
	for i := 1; i < len(r.Detected24s); i++ {
		if r.Detected24s[i] < r.Detected24s[i-1] {
			t.Errorf("detections decreased: %v", r.Detected24s)
		}
		if r.Replicas[i] < r.Replicas[i-1] {
			t.Errorf("replicas decreased: %v", r.Replicas)
		}
	}
	// A skeleton platform misses a lot; the full one approaches truth.
	if r.Detected24s[0] >= r.Detected24s[2] {
		t.Error("no VP-count effect at all")
	}
	between(t, "recall at 250 VPs", float64(r.Detected24s[2])/float64(r.Truth24s), 0.7, 1.0)
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestAblateRate(t *testing.T) {
	l := getLab(t)
	r := l.AblateRate([]float64{1000, 12000})
	if r.Dropped[0] != 0 {
		t.Errorf("replies dropped at the slow rate: %d", r.Dropped[0])
	}
	if r.Dropped[1] == 0 {
		t.Error("no drops at 12k pps; the rate-limit model is inert")
	}
	if r.EchoFraction[1] >= r.EchoFraction[0] {
		t.Errorf("fast probing did not reduce yield: %.3f vs %.3f",
			r.EchoFraction[1], r.EchoFraction[0])
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestAblateIteration(t *testing.T) {
	l := getLab(t)
	r := l.AblateIteration()
	if r.Prefixes == 0 {
		t.Fatal("nothing analyzed")
	}
	if r.IteratedReplicas < r.SingleShotReplicas {
		t.Errorf("iteration lost replicas: %d -> %d", r.SingleShotReplicas, r.IteratedReplicas)
	}
	gain := float64(r.IteratedReplicas-r.SingleShotReplicas) / float64(r.SingleShotReplicas)
	between(t, "iteration gain", gain, 0.0, 0.6)
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestAblateMIS(t *testing.T) {
	l := getLab(t)
	r := l.AblateMIS(25)
	if r.Instances < 10 {
		t.Fatalf("only %d instances solved", r.Instances)
	}
	frac := float64(r.EqualCount) / float64(r.Instances)
	between(t, "greedy-optimal fraction", frac, 0.8, 1.0)
	if r.MeanBruteNs <= r.MeanGreedyNs {
		t.Error("brute force should cost more than greedy")
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestFusePlatforms(t *testing.T) {
	l := getLab(t)
	r := l.FusePlatforms(10)
	if r.Prefixes != 10 {
		t.Fatalf("refined %d prefixes, want 10", r.Prefixes)
	}
	if r.RefinedReplicas <= r.PLReplicas {
		t.Errorf("RIPE refinement did not add replicas: %d vs %d", r.RefinedReplicas, r.PLReplicas)
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestLongitudinalCampaign(t *testing.T) {
	l := getLab(t)
	r := l.LongitudinalCampaign(3, 60)
	if !r.Agree {
		t.Fatal("incremental and batch per-round outcomes diverge")
	}
	if len(r.Rounds) != 3 {
		t.Fatalf("got %d rounds", len(r.Rounds))
	}
	if r.Rounds[0].DirtyFraction < 0.5 {
		t.Errorf("initial full census dirtied only %.1f%% of targets", 100*r.Rounds[0].DirtyFraction)
	}
	for i, rd := range r.Rounds {
		if rd.DirtyFraction < 0 || rd.DirtyFraction > 1 {
			t.Errorf("round %d dirty fraction %v out of range", rd.Round, rd.DirtyFraction)
		}
		if i > 0 {
			// Patch rounds re-probe only the churned slice, so the dirty
			// set is bounded by it (with slack for hash-sample variance).
			if max := 3 * float64(LongitudinalChurnPerMil) / 1000; rd.DirtyFraction > max {
				t.Errorf("patch round %d dirtied %.1f%% of targets, want <= %.1f%%", rd.Round, 100*rd.DirtyFraction, 100*max)
			}
		}
		if rd.Detected24s == 0 {
			t.Errorf("round %d detected nothing", rd.Round)
		}
	}
	if r.CertHitRate <= 0 {
		t.Error("no certificate revalidation hits across a stable campaign")
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestLongitudinal(t *testing.T) {
	l := getLab(t)
	r := l.Longitudinal(3, 150)
	if len(r.Epochs) != 3 {
		t.Fatalf("got %d epochs", len(r.Epochs))
	}
	// The landscape grows over time and the census tracks it.
	if r.Epochs[2].TrueReplicas <= r.Epochs[0].TrueReplicas {
		t.Error("truth did not grow across epochs")
	}
	if r.Epochs[2].Replicas <= r.Epochs[0].Replicas {
		t.Error("measured replicas did not grow across epochs")
	}
	// Churn is visible but moderate.
	if r.Epochs[1].NewCities == 0 && r.Epochs[2].NewCities == 0 {
		t.Error("no city churn observed")
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestBaselines(t *testing.T) {
	l := getLab(t)
	r := l.Baselines(40)
	if r.DNSTargets == 0 || r.NonDNSTargets == 0 {
		t.Fatalf("sample did not cover both DNS and non-DNS deployments: %+v", r)
	}
	// CHAOS reads identities off the wire: at least as many instances as
	// the latency technique on DNS deployments, never more than truth.
	if r.CHAOSTotal < r.IGreedyTotal {
		t.Errorf("CHAOS (%d) below iGreedy (%d) on DNS targets", r.CHAOSTotal, r.IGreedyTotal)
	}
	if r.CHAOSTotal > r.TruthTotal {
		t.Errorf("CHAOS (%d) exceeds truth (%d)", r.CHAOSTotal, r.TruthTotal)
	}
	if r.CHAOSNonDNSAnswers != 0 {
		t.Errorf("CHAOS answered on %d non-DNS deployments", r.CHAOSNonDNSAnswers)
	}
	// The database matches at most one replica per deployment.
	if r.DBReplicaMatches > r.DBPrefixes {
		t.Errorf("database matched %d replicas over %d prefixes", r.DBReplicaMatches, r.DBPrefixes)
	}
	// CBG: fine on unicast, broken on anycast.
	if r.UnicastTargets == 0 || r.CBGFeasibleUnicast < r.UnicastTargets*8/10 {
		t.Errorf("CBG feasible on only %d/%d unicast targets", r.CBGFeasibleUnicast, r.UnicastTargets)
	}
	if r.CBGFeasibleAnycast > r.AnycastTargets/10 {
		t.Errorf("CBG feasible on %d/%d anycast targets; should almost always fail", r.CBGFeasibleAnycast, r.AnycastTargets)
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestRIPECensus(t *testing.T) {
	l := getLab(t)
	r := l.RIPECensus()
	if r.RIPEDetected <= r.PLSingleDetected {
		t.Errorf("one RIPE census detected %d <= one PlanetLab census's %d",
			r.RIPEDetected, r.PLSingleDetected)
	}
	if r.RIPEDetected > r.Truth24s {
		t.Errorf("RIPE detected %d of %d true deployments?!", r.RIPEDetected, r.Truth24s)
	}
	ripeRecall := float64(r.RIPEDetected) / float64(r.Truth24s)
	between(t, "RIPE recall", ripeRecall, 0.8, 1.0)
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestExportCSV(t *testing.T) {
	l := getLab(t)
	dir := t.TempDir()
	files, err := l.ExportCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 7 {
		t.Fatalf("exported %d files, want 7", len(files))
	}
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := csv.NewReader(fh).ReadAll()
		fh.Close()
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		// Header plus at least one data row; encoding/csv has already
		// enforced a consistent column count.
		if len(rows) < 2 {
			t.Errorf("%s has only %d rows", f, len(rows))
		}
	}
}
