package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"anycastmap/internal/core"
	"anycastmap/internal/geo"
	"anycastmap/internal/groundtruth"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
)

// targetIndex finds a prefix's index in the combined target list.
func (l *Lab) targetIndex(p netsim.Prefix24) (int, bool) {
	for i, ip := range l.Combined.Targets {
		if ip.Prefix() == p {
			return i, true
		}
	}
	return -1, false
}

// measureFromVPs builds a min-over-rounds measurement set toward one target
// from an arbitrary VP list using the given probe function.
func measureFromVPs(vps []platform.VP, rounds int, probe func(platform.VP, uint64) netsim.Reply) []core.Measurement {
	var ms []core.Measurement
	for _, vp := range vps {
		best := time.Duration(-1)
		for r := 1; r <= rounds; r++ {
			reply := probe(vp, uint64(r))
			if !reply.OK() {
				continue
			}
			if best < 0 || reply.RTT < best {
				best = reply.RTT
			}
		}
		if best >= 0 {
			ms = append(ms, core.Measurement{VP: vp.Name, VPLoc: vp.Loc, RTT: best})
		}
	}
	return ms
}

// Fig5Result compares the Microsoft deployment as seen from PlanetLab and
// from RIPE Atlas.
type Fig5Result struct {
	TrueReplicas   int
	PLReplicas     int
	RIPEReplicas   int
	PLCities       []string
	RIPECities     []string
	SubsetFraction float64 // fraction of PL cities also found via RIPE
}

// PaperFig5 records the paper's counts: 21 replicas from PlanetLab, 54 from
// RIPE, with the PlanetLab set a subset of the RIPE set.
var PaperFig5 = struct{ PL, RIPE int }{21, 54}

// Fig5 analyzes one Microsoft /24 from both platforms.
func (l *Lab) Fig5() Fig5Result {
	ms := l.World.Registry.MustByName("MICROSOFT,US")
	d := l.World.DeploymentsByASN(ms.ASN)[0]

	res := Fig5Result{TrueReplicas: len(d.Replicas)}
	target, _ := l.World.Representative(d.Prefix)

	if ti, ok := l.targetIndex(d.Prefix); ok {
		pl := core.Analyze(l.Cities, l.Combined.Measurements(ti), core.Options{})
		res.PLReplicas = pl.Count()
		res.PLCities = pl.Cities()
	}

	ripeMs := measureFromVPs(l.RIPE.VPs(), l.Config.Censuses, func(vp platform.VP, round uint64) netsim.Reply {
		return l.World.ProbeICMP(vp, target, round)
	})
	ripe := core.Analyze(l.Cities, ripeMs, core.Options{})
	res.RIPEReplicas = ripe.Count()
	res.RIPECities = ripe.Cities()

	ripeSet := map[string]bool{}
	for _, c := range res.RIPECities {
		ripeSet[c] = true
	}
	matched := 0
	for _, c := range res.PLCities {
		if ripeSet[c] {
			matched++
		}
	}
	if len(res.PLCities) > 0 {
		res.SubsetFraction = float64(matched) / float64(len(res.PLCities))
	}
	return res
}

// Report renders the platform comparison.
func (r Fig5Result) Report() string {
	return fmt.Sprintf("Fig. 5 - Microsoft deployment, PlanetLab vs RIPE (truth: %d replicas)\n"+
		"  PlanetLab: %d replicas (paper %d)   RIPE: %d replicas (paper %d)\n"+
		"  PL cities also found by RIPE: %.0f%% (paper: PL is a subset of RIPE)\n",
		r.TrueReplicas, r.PLReplicas, PaperFig5.PL, r.RIPEReplicas, PaperFig5.RIPE, 100*r.SubsetFraction)
}

// Fig6Result holds the protocol-recall matrix: response ratio per
// (deployment, protocol).
type Fig6Result struct {
	Deployments []string
	Protocols   []string
	// Ratio[d][p] is the fraction of probes answered.
	Ratio [][]float64
}

// fig6Protocols in display order (Fig. 6 x-axis).
var fig6Protocols = []string{"ICMP", "TCP-53", "TCP-80", "DNS/UDP", "DNS/TCP"}

// Fig6 measures the response ratio of each probing protocol against the
// four deployments of the paper's test (100 probes each).
func (l *Lab) Fig6() Fig6Result {
	deployments := []string{"OPENDNS,US", "EDGECAST,US", "CLOUDFLARENET,US", "MICROSOFT,US"}
	res := Fig6Result{Deployments: deployments, Protocols: fig6Protocols}
	vps := l.PL.VPs()
	for _, name := range deployments {
		as := l.World.Registry.MustByName(name)
		d := l.World.DeploymentsByASN(as.ASN)[0]
		target, _ := l.World.Representative(d.Prefix)
		row := make([]float64, len(fig6Protocols))
		for pi, proto := range fig6Protocols {
			ok := 0
			const probes = 100
			for i := 0; i < probes; i++ {
				vp := vps[i%len(vps)]
				round := uint64(1 + i/len(vps))
				var reply netsim.Reply
				switch proto {
				case "ICMP":
					reply = l.World.ProbeICMP(vp, target, round)
				case "TCP-53":
					reply = l.World.ProbeTCP(vp, target, 53, round)
				case "TCP-80":
					reply = l.World.ProbeTCP(vp, target, 80, round)
				case "DNS/UDP":
					reply = l.World.ProbeDNSUDP(vp, target, round)
				case "DNS/TCP":
					reply = l.World.ProbeDNSTCP(vp, target, round)
				}
				if reply.OK() {
					ok++
				}
			}
			row[pi] = float64(ok) / probes
		}
		res.Ratio = append(res.Ratio, row)
	}
	return res
}

// Report renders the protocol matrix.
func (r Fig6Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 - response ratio by protocol (binary recall for L4/L7, ICMP near-total)\n")
	fmt.Fprintf(&b, "  %-18s", "")
	for _, p := range r.Protocols {
		fmt.Fprintf(&b, "%9s", p)
	}
	b.WriteString("\n")
	for di, d := range r.Deployments {
		fmt.Fprintf(&b, "  %-18s", strings.Split(d, ",")[0])
		for pi := range r.Protocols {
			fmt.Fprintf(&b, "%8.0f%%", 100*r.Ratio[di][pi])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig7Result validates geolocation against the HTTP ground truth of one
// CDN.
type Fig7Result struct {
	AS      string
	Summary groundtruth.Summary
}

// PaperFig7 records the paper's validation outcomes.
var PaperFig7 = map[string]struct {
	TPR         float64
	MedianErrKm float64
}{
	"CLOUDFLARENET,US": {0.77, 434},
	"EDGECAST,US":      {0.65, 287},
}

// Fig7 validates every detected /24 of the disclosing CDNs against the
// CF-RAY / Server header ground truth collected from PlanetLab.
func (l *Lab) Fig7() []Fig7Result {
	byPrefix := map[netsim.Prefix24]core.Result{}
	for _, f := range l.Findings {
		byPrefix[f.Prefix] = f.Result
	}
	var out []Fig7Result
	for _, name := range []string{"CLOUDFLARENET,US", "EDGECAST,US"} {
		as := l.World.Registry.MustByName(name)
		pai := len(groundtruth.PAI(l.World, as.ASN))
		var vs []groundtruth.PrefixValidation
		for _, d := range l.World.DeploymentsByASN(as.ASN) {
			res, detected := byPrefix[d.Prefix]
			if !detected {
				continue
			}
			gt, ok := groundtruth.Collect(l.World, l.Runs[0].VPs, d.Prefix, 1)
			if !ok || len(gt.Cities) == 0 {
				continue
			}
			vs = append(vs, groundtruth.ValidatePrefix(res, gt, pai))
		}
		out = append(out, Fig7Result{AS: name, Summary: groundtruth.Summarize(vs)})
	}
	return out
}

// ReportFig7 renders the validation results.
func ReportFig7(rs []Fig7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 - validation against HTTP ground truth (CF-RAY / Server headers)\n")
	for _, r := range rs {
		p := PaperFig7[r.AS]
		fmt.Fprintf(&b, "  %-18s TPR %.0f%%±%.0f (paper %.0f%%)  median err %.0f km (paper %.0f)  GT/PAI %.2f±%.2f  [%d /24s]\n",
			strings.Split(r.AS, ",")[0], 100*r.Summary.MeanTPR, 100*r.Summary.StdTPR, 100*p.TPR,
			r.Summary.MedianErrKm, p.MedianErrKm, r.Summary.MeanGTOverPAI, r.Summary.StdGTOverPAI, r.Summary.Prefixes)
	}
	return b.String()
}

// OpenDNSResult is the Sec. 3.4 consistency check: the same deployment
// analyzed through every probing protocol.
type OpenDNSResult struct {
	TrueSites int
	// InstancesByProtocol maps protocol -> enumerated replicas.
	InstancesByProtocol map[string]int
	// CorrectCities / TotalLocated score the ICMP classification against
	// the published locations.
	CorrectCities, TotalLocated int
	// PopulationBias reports the documented failure mode of the
	// classifier (the paper's Philadelphia-for-Ashburn anecdote): a
	// replica classified to a more populated city near a true, smaller
	// site.
	PopulationBias bool
	// BiasExample names one observed (classified, true) city pair.
	BiasExample string
}

// OpenDNS runs the consistency experiment.
func (l *Lab) OpenDNS() OpenDNSResult {
	as := l.World.Registry.MustByName("OPENDNS,US")
	d := l.World.DeploymentsByASN(as.ASN)[0]
	target, _ := l.World.Representative(d.Prefix)
	pai := groundtruth.PAI(l.World, as.ASN)

	res := OpenDNSResult{
		TrueSites:           len(d.Replicas),
		InstancesByProtocol: map[string]int{},
	}
	probes := map[string]func(platform.VP, uint64) netsim.Reply{
		"ICMP":    func(vp platform.VP, r uint64) netsim.Reply { return l.World.ProbeICMP(vp, target, r) },
		"TCP-53":  func(vp platform.VP, r uint64) netsim.Reply { return l.World.ProbeTCP(vp, target, 53, r) },
		"TCP-80":  func(vp platform.VP, r uint64) netsim.Reply { return l.World.ProbeTCP(vp, target, 80, r) },
		"DNS/UDP": func(vp platform.VP, r uint64) netsim.Reply { return l.World.ProbeDNSUDP(vp, target, r) },
		"DNS/TCP": func(vp platform.VP, r uint64) netsim.Reply { return l.World.ProbeDNSTCP(vp, target, r) },
	}
	for proto, probe := range probes {
		ms := measureFromVPs(l.PL.VPs(), l.Config.Censuses, probe)
		r := core.Analyze(l.Cities, ms, core.Options{})
		res.InstancesByProtocol[proto] = r.Count()
		if proto != "ICMP" {
			continue
		}
		for _, rep := range r.Replicas {
			if !rep.Located {
				continue
			}
			res.TotalLocated++
			if _, ok := pai[rep.City.Key()]; ok {
				res.CorrectCities++
				continue
			}
			// Misclassified: is this the population bias at work - a
			// bigger city absorbing a nearby smaller true site?
			for _, truth := range pai {
				if rep.City.Population > truth.Population &&
					geo.DistanceKm(rep.City.Loc, truth.Loc) < 400 {
					res.PopulationBias = true
					res.BiasExample = fmt.Sprintf("%v classified where %v serves", rep.City, truth)
					break
				}
			}
		}
	}
	return res
}

// Report renders the consistency check.
func (r OpenDNSResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. 3.4 - OpenDNS consistency (%d published sites; paper finds 15-17 instances)\n", r.TrueSites)
	protos := make([]string, 0, len(r.InstancesByProtocol))
	for p := range r.InstancesByProtocol {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	for _, p := range protos {
		fmt.Fprintf(&b, "  %-8s %d instances\n", p, r.InstancesByProtocol[p])
	}
	fmt.Fprintf(&b, "  ICMP classification: %d/%d cities correct; population bias observed: %v (paper: Philadelphia-for-Ashburn)\n",
		r.CorrectCities, r.TotalLocated, r.PopulationBias)
	if r.BiasExample != "" {
		fmt.Fprintf(&b, "  example: %s\n", r.BiasExample)
	}
	return b.String()
}
