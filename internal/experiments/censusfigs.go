package experiments

import (
	"fmt"
	"strings"

	"anycastmap/internal/analysis"
	"anycastmap/internal/census"
	"anycastmap/internal/core"
	"anycastmap/internal/stats"
)

// Fig10Result is the census-at-a-glance table.
type Fig10Result struct {
	All       analysis.Glance
	Min5      analysis.Glance
	CAIDA100  analysis.Glance
	Alexa100k analysis.Glance
	// Map is the ASCII rendering of the Fig. 10 replica-density map and
	// TopCountries its per-country backing data.
	Map          string
	TopCountries []analysis.CountryCount
}

// PaperFig10 transcribes the Fig. 10 table.
var PaperFig10 = map[string]analysis.Glance{
	"All":        {IP24s: 1696, ASes: 346, Cities: 77, CC: 38, Replicas: 13802},
	"Min5":       {IP24s: 897, ASes: 100, Cities: 71, CC: 36, Replicas: 11598},
	"CAIDA-100":  {IP24s: 19, ASes: 8, Cities: 30, CC: 18, Replicas: 138},
	"Alexa-100k": {IP24s: 242, ASes: 15, Cities: 45, CC: 29, Replicas: 4038},
}

// Fig10 aggregates the combined census.
func (l *Lab) Fig10() Fig10Result {
	reg := l.World.Registry
	dens := analysis.CountryDensity(l.Findings)
	if len(dens) > 10 {
		dens = dens[:10]
	}
	return Fig10Result{
		All:          analysis.GlanceOf(l.Findings),
		Min5:         analysis.GlanceOf(analysis.FilterMinReplicas(l.Findings, 5)),
		CAIDA100:     analysis.GlanceOf(analysis.FilterCAIDATop100(l.Findings, reg)),
		Alexa100k:    analysis.GlanceOf(analysis.FilterAlexaHosts(l.Findings, l.World.AlexaHosted)),
		Map:          analysis.DensityMap(l.Findings, 72, 20),
		TopCountries: dens,
	}
}

// Report renders the glance table.
func (r Fig10Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 - anycast censuses at a glance (measured | paper)\n")
	fmt.Fprintf(&b, "  %-12s %15s %13s %13s %9s %15s\n", "", "IP/24", "ASes", "Cities", "CC", "Replicas")
	row := func(name string, g, p analysis.Glance) {
		fmt.Fprintf(&b, "  %-12s %6d | %6d %5d | %5d %5d | %5d %3d | %3d %6d | %6d\n",
			name, g.IP24s, p.IP24s, g.ASes, p.ASes, g.Cities, p.Cities, g.CC, p.CC, g.Replicas, p.Replicas)
	}
	row("All", r.All, PaperFig10["All"])
	row(">=5 replicas", r.Min5, PaperFig10["Min5"])
	row("^ CAIDA-100", r.CAIDA100, PaperFig10["CAIDA-100"])
	row("^ Alexa-100k", r.Alexa100k, PaperFig10["Alexa-100k"])
	if r.Map != "" {
		b.WriteString("  geographical density of detected replicas (Fig. 10 map):\n")
		b.WriteString(r.Map)
	}
	if len(r.TopCountries) > 0 {
		b.WriteString("  densest countries:")
		for _, cc := range r.TopCountries {
			fmt.Fprintf(&b, " %s(%d)", cc.CC, cc.Replicas)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig9Row is one AS of the bird's-eye view.
type Fig9Row struct {
	Stat      analysis.ASStat
	OpenPorts int
	CAIDARank int
	Alexa     int
}

// Fig9Result is the bird's-eye view of the top anycast ASes.
type Fig9Result struct {
	Rows []Fig9Row
	// FootprintCorrelation is the Pearson correlation between
	// geographical and /24 footprints (paper: 0.35).
	FootprintCorrelation float64
}

// Fig9 builds the bird's-eye view over the >=5-replica ASes, joining the
// census footprints with the portscan and rank metadata.
func (l *Lab) Fig9() Fig9Result {
	reg := l.World.Registry
	top := analysis.FilterMinReplicas(l.Findings, 5)
	sts := analysis.PerAS(top, reg)
	scan := l.Portscan()
	sum := analysis.SummarizeScan(scan, l.Table)
	var rows []Fig9Row
	for _, st := range sts {
		rows = append(rows, Fig9Row{
			Stat:      st,
			OpenPorts: sum.PortsPerAS[st.AS.ASN],
			CAIDARank: st.AS.CAIDARank,
			Alexa:     st.AS.AlexaSites,
		})
	}
	return Fig9Result{Rows: rows, FootprintCorrelation: analysis.FootprintCorrelation(sts)}
}

// Report renders the head of the bird's-eye view.
func (r Fig9Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 - bird's-eye view of top anycast ASes (%d ASes with >=5 replicas; first 15 shown)\n", len(r.Rows))
	fmt.Fprintf(&b, "  %-22s %9s %6s %6s %7s %7s %9s\n", "AS", "replicas", "±", "IP/24", "ports", "CAIDA", "Alexa")
	for i, row := range r.Rows {
		if i >= 15 {
			break
		}
		caida, alexa := "-", "-"
		if row.CAIDARank > 0 {
			caida = fmt.Sprint(row.CAIDARank)
		}
		if row.Alexa > 0 {
			alexa = fmt.Sprint(row.Alexa)
		}
		fmt.Fprintf(&b, "  %-22s %9.1f %6.1f %6d %7d %7s %9s\n",
			row.Stat.AS.Name, row.Stat.MeanReplicas, row.Stat.StdReplicas, row.Stat.IP24s, row.OpenPorts, caida, alexa)
	}
	fmt.Fprintf(&b, "  geo-vs-IP/24 footprint Pearson correlation: %.2f (paper 0.35)\n", r.FootprintCorrelation)
	return b.String()
}

// Fig11Result is the AS-category breakdown, sorted by share descending
// (category name as tie-break).
type Fig11Result struct {
	Breakdown []analysis.CategoryShare
}

// Share looks up one category's share (zero when absent).
func (r Fig11Result) Share(cat string) float64 {
	for _, cs := range r.Breakdown {
		if cs.Category == cat {
			return cs.Share
		}
	}
	return 0
}

// PaperFig11 approximates the Fig. 11 bars (first category only, top-100).
var PaperFig11 = map[string]float64{
	"DNS": 0.33, "CDN": 0.18, "Cloud": 0.17, "ISP": 0.10,
	"Security": 0.04, "Social": 0.03, "Unknown": 0.07, "Other": 0.08,
}

// Fig11 computes the category shares of the detected >=5-replica ASes.
func (l *Lab) Fig11() Fig11Result {
	top := analysis.FilterMinReplicas(l.Findings, 5)
	return Fig11Result{Breakdown: analysis.CategoryBreakdown(top, l.World.Registry)}
}

// Report renders the breakdown.
func (r Fig11Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 - AS category breakdown (measured %% | paper %%)\n")
	for _, cat := range []string{"DNS", "CDN", "Cloud", "ISP", "Security", "Social", "Unknown", "Other"} {
		fmt.Fprintf(&b, "  %-9s %5.1f | %5.1f\n", cat, 100*r.Share(cat), 100*PaperFig11[cat])
	}
	return b.String()
}

// Fig12Result is the replicas-per-/24 distribution, per census and
// combined.
type Fig12Result struct {
	// PerCensusCounts[i] is the number of anycast /24s detected by
	// census i alone.
	PerCensusCounts []int
	CombinedCount   int
	// CombinationGain is CombinedCount minus the mean individual count
	// (paper: ~200).
	CombinationGain float64
	// CombinedCDF is the CDF of geographically distinct replicas per
	// /24 for the combination.
	CombinedCDF    []stats.Point
	MedianReplicas float64
	MaxReplicas    int
}

// Fig12 analyzes each census individually and the combination.
func (l *Lab) Fig12() Fig12Result {
	res := Fig12Result{CombinedCount: len(l.Findings)}
	for _, run := range l.Runs {
		single, err := census.Combine(run)
		if err != nil {
			panic(err)
		}
		outcomes := census.AnalyzeAll(l.Cities, single, core.Options{}, 2, 0)
		res.PerCensusCounts = append(res.PerCensusCounts, len(outcomes))
	}
	var mean float64
	for _, n := range res.PerCensusCounts {
		mean += float64(n)
	}
	mean /= float64(len(res.PerCensusCounts))
	res.CombinationGain = float64(res.CombinedCount) - mean

	counts := analysis.ReplicasPerPrefix(l.Findings)
	res.CombinedCDF = stats.ECDF(counts)
	res.MedianReplicas = stats.Median(counts)
	_, mx := stats.MinMax(counts)
	res.MaxReplicas = int(mx)
	return res
}

// Report renders the distribution summary.
func (r Fig12Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 - geographically distinct replicas per /24\n")
	fmt.Fprintf(&b, "  per-census anycast /24s: %v   combined: %d\n", r.PerCensusCounts, r.CombinedCount)
	fmt.Fprintf(&b, "  combination gain: +%.0f /24s over the average census (paper ~+200)\n", r.CombinationGain)
	fmt.Fprintf(&b, "  median replicas per /24: %.0f, max %d (paper x-axis 2..25+)\n", r.MedianReplicas, r.MaxReplicas)
	return b.String()
}

// Fig13Result is the anycast-/24s-per-AS distribution.
type Fig13Result struct {
	CDF            []stats.Point
	SingletonShare float64 // fraction of ASes with exactly one /24
	Named          map[string]int
}

// PaperFig13 records the named footprints of Fig. 13 / Sec. 4.2.
var PaperFig13 = map[string]int{
	"CLOUDFLARENET,US":     328,
	"GOOGLE,US":            102,
	"EDGECAST,US":          37,
	"PROLEXIC,US":          21,
	"APPLE-ENGINEERING,US": 6,
	"TWITTER-NETWORK,US":   3,
	"LEVEL3,US":            2,
	"LINKEDIN,US":          1,
}

// Fig13 computes the per-AS footprint distribution from the census.
func (l *Lab) Fig13() Fig13Result {
	xs := analysis.SubnetsPerAS(l.Findings)
	res := Fig13Result{
		CDF:            stats.ECDF(xs),
		SingletonShare: stats.FractionAtMost(xs, 1),
		Named:          map[string]int{},
	}
	byASN := map[int]int{}
	for _, f := range l.Findings {
		byASN[f.ASN]++
	}
	for name := range PaperFig13 {
		as := l.World.Registry.MustByName(name)
		res.Named[name] = byASN[as.ASN]
	}
	return res
}

// Report renders the footprint distribution.
func (r Fig13Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 - anycast /24s per AS\n")
	fmt.Fprintf(&b, "  ASes with exactly one /24: %.0f%% (paper ~50%%)\n", 100*r.SingletonShare)
	for _, name := range []string{"CLOUDFLARENET,US", "GOOGLE,US", "EDGECAST,US", "PROLEXIC,US", "APPLE-ENGINEERING,US", "TWITTER-NETWORK,US", "LEVEL3,US", "LINKEDIN,US"} {
		fmt.Fprintf(&b, "  %-22s measured %3d | paper %3d\n", name, r.Named[name], PaperFig13[name])
	}
	return b.String()
}
