package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"anycastmap/internal/census"
	"anycastmap/internal/core"
	"anycastmap/internal/geo"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// This file holds the ablation experiments for the design choices the
// paper argues for qualitatively: the number of vantage points (Sec. 2.1),
// the deliberately slowed-down probing rate (Sec. 3.5), the
// iterate-and-collapse step of the analysis (Fig. 3e), the minimum-RTT
// census combination (Sec. 4.1), and the greedy MIS approximation against
// brute force (Sec. 2.1).

// VPCountAblation measures census recall as a function of the number of
// vantage points, quantifying the paper's statement that "a large number
// of vantage points is required to provide an accurate picture".
type VPCountAblation struct {
	VPCounts []int
	// Detected24s[i] is the number of anycast /24s detected using
	// VPCounts[i] vantage points; Replicas[i] the enumerated total.
	Detected24s []int
	Replicas    []int
	Truth24s    int
}

// AblateVPCount re-analyzes the lab's combined dataset restricted to
// growing vantage-point subsets. The sweep rides the incremental
// analyzer's VP-extension path: each step appends vantage-point rows and
// re-analyzes only the targets those rows answered, instead of paying a
// from-scratch AnalyzeAll per subset (non-ascending steps fall back to a
// fresh analyzer; the outcomes are identical either way).
func (l *Lab) AblateVPCount(counts []int) VPCountAblation {
	res := VPCountAblation{VPCounts: counts, Truth24s: len(l.World.Deployments())}
	an := census.NewAnalyzer(l.Cities, census.AnalyzerConfig{})
	prev := 0
	for _, n := range counts {
		if n > len(l.Combined.VPs) {
			n = len(l.Combined.VPs)
		}
		sub := &census.Combined{
			VPs:     l.Combined.VPs[:n],
			Targets: l.Combined.Targets,
			RTTus:   l.Combined.RTTus[:n],
			Rounds:  l.Combined.Rounds,
		}
		if n < prev {
			an = census.NewAnalyzer(l.Cities, census.AnalyzerConfig{})
			prev = 0
		}
		var dirty []int
		if prev == 0 {
			dirty = make([]int, len(sub.Targets))
			for t := range dirty {
				dirty[t] = t
			}
		} else {
			// Only targets the appended rows answered have a changed
			// measurement set.
			seen := make([]bool, len(sub.Targets))
			for v := prev; v < n; v++ {
				for t, cell := range l.Combined.RTTus[v] {
					if cell >= 0 {
						seen[t] = true
					}
				}
			}
			for t, s := range seen {
				if s {
					dirty = append(dirty, t)
				}
			}
		}
		an.Update(sub, dirty)
		detected, replicas := 0, 0
		for _, o := range an.Outcomes() {
			detected++
			replicas += o.Result.Count()
		}
		res.Detected24s = append(res.Detected24s, detected)
		res.Replicas = append(res.Replicas, replicas)
		prev = n
	}
	return res
}

// Report renders the VP-count sweep.
func (r VPCountAblation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation - recall vs number of vantage points (truth: %d anycast /24s)\n", r.Truth24s)
	for i, n := range r.VPCounts {
		fmt.Fprintf(&b, "  %4d VPs: %5d /24s detected (%.0f%%), %6d replicas enumerated\n",
			n, r.Detected24s[i], 100*float64(r.Detected24s[i])/float64(r.Truth24s), r.Replicas[i])
	}
	b.WriteString("  (more vantage points monotonically increase both detection and enumeration recall)\n")
	return b.String()
}

// RateAblation quantifies the Sec. 3.5 lesson: probing too fast loses
// replies near the vantage point and *reduces* census yield.
type RateAblation struct {
	Rates []float64
	// EchoFraction[i] is the per-probe echo success at Rates[i];
	// Dropped[i] the replies lost to source-side aggregation.
	EchoFraction []float64
	Dropped      []int
}

// AblateRate runs one vantage point's census at several probing rates.
func (l *Lab) AblateRate(rates []float64) RateAblation {
	res := RateAblation{Rates: rates}
	targets := l.Hitlist.Targets()
	if len(targets) > 4000 {
		targets = targets[:4000]
	}
	// A vantage point with a mid-range rate tolerance shows the effect
	// most clearly; average over a few.
	vps := l.PL.VPs()[:8]
	for _, rate := range rates {
		echo, dropped, sent := 0, 0, 0
		for _, vp := range vps {
			stats, _, err := prober.Run(l.World, vp, targets, l.Black,
				prober.Config{Seed: l.Config.Seed, Round: 9, Rate: rate}, nil)
			if err != nil {
				panic(fmt.Sprintf("experiments: rate ablation: %v", err))
			}
			echo += stats.Echo
			dropped += stats.SourceDropped
			sent += stats.Sent
		}
		res.EchoFraction = append(res.EchoFraction, float64(echo)/float64(sent))
		res.Dropped = append(res.Dropped, dropped)
	}
	return res
}

// Report renders the rate sweep.
func (r RateAblation) Report() string {
	var b strings.Builder
	b.WriteString("Ablation - probing rate vs census yield (the Sec. 3.5 slow-down lesson)\n")
	for i, rate := range r.Rates {
		fmt.Fprintf(&b, "  %6.0f probes/s: echo fraction %.3f, %d replies lost near the source\n",
			rate, r.EchoFraction[i], r.Dropped[i])
	}
	b.WriteString("  (Fastping was slowed by an order of magnitude for exactly this reason)\n")
	return b.String()
}

// IterationAblation isolates the recall contribution of the
// iterate-and-collapse step of the analysis (Fig. 3e).
type IterationAblation struct {
	// SingleShotReplicas is the enumeration with one MIS pass and no
	// collapse; IteratedReplicas with the converged loop.
	SingleShotReplicas int
	IteratedReplicas   int
	// Prefixes analyzed.
	Prefixes int
}

// AblateIteration re-analyzes every detected anycast /24 with and without
// iteration.
func (l *Lab) AblateIteration() IterationAblation {
	res := IterationAblation{}
	for _, f := range l.Findings {
		ti, ok := l.targetIndex(f.Prefix)
		if !ok {
			continue
		}
		ms := l.Combined.Measurements(ti)
		one := core.Analyze(l.Cities, ms, core.Options{MaxIterations: 1})
		full := core.Analyze(l.Cities, ms, core.Options{})
		res.SingleShotReplicas += one.Count()
		res.IteratedReplicas += full.Count()
		res.Prefixes++
	}
	return res
}

// Report renders the iteration ablation.
func (r IterationAblation) Report() string {
	gain := float64(r.IteratedReplicas-r.SingleShotReplicas) / float64(r.SingleShotReplicas)
	return fmt.Sprintf("Ablation - iterate-and-collapse (Fig. 3e) over %d anycast /24s\n"+
		"  single MIS pass: %d replicas; iterated to convergence: %d (+%.0f%% recall)\n",
		r.Prefixes, r.SingleShotReplicas, r.IteratedReplicas, 100*gain)
}

// MISAblation compares the greedy 5-approximation against brute force on
// real measurement instances (the paper reports near-optimal results at
// a 10^4-fold cost reduction).
type MISAblation struct {
	Instances  int
	EqualCount int
	// MeanGreedyNs / MeanBruteNs are the per-instance solver costs.
	MeanGreedyNs float64
	MeanBruteNs  float64
}

// AblateMIS solves random small sub-instances of real anycast targets with
// both solvers.
func (l *Lab) AblateMIS(instances int) MISAblation {
	rng := rand.New(rand.NewSource(int64(l.Config.Seed)))
	res := MISAblation{}
	for _, f := range l.Findings {
		if res.Instances >= instances {
			break
		}
		ti, ok := l.targetIndex(f.Prefix)
		if !ok {
			continue
		}
		ms := l.Combined.Measurements(ti)
		if len(ms) < 6 {
			continue
		}
		// Brute force is exponential: sample a 16-disk sub-instance.
		rng.Shuffle(len(ms), func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
		n := 16
		if len(ms) < n {
			n = len(ms)
		}
		disks := make([]geo.Disk, n)
		for i := 0; i < n; i++ {
			disks[i] = ms[i].Disk()
		}
		t0 := time.Now()
		g := len(core.MISGreedy(disks))
		tg := time.Since(t0)
		t0 = time.Now()
		bf := len(core.MISBrute(disks))
		tb := time.Since(t0)
		res.Instances++
		if g == bf {
			res.EqualCount++
		}
		res.MeanGreedyNs += float64(tg.Nanoseconds())
		res.MeanBruteNs += float64(tb.Nanoseconds())
	}
	if res.Instances > 0 {
		res.MeanGreedyNs /= float64(res.Instances)
		res.MeanBruteNs /= float64(res.Instances)
	}
	return res
}

// Report renders the solver comparison.
func (r MISAblation) Report() string {
	speedup := r.MeanBruteNs / r.MeanGreedyNs
	return fmt.Sprintf("Ablation - greedy MIS vs brute force on %d real 16-disk instances\n"+
		"  greedy optimal on %d/%d (%.0f%%); mean cost %.0fµs vs %.0fµs (%.0fx speedup)\n"+
		"  (paper: greedy runs in O(10^-1)s per target vs O(10^3)s brute force)\n",
		r.Instances, r.EqualCount, r.Instances, 100*float64(r.EqualCount)/float64(r.Instances),
		r.MeanGreedyNs/1e3, r.MeanBruteNs/1e3, speedup)
}

// PlatformFusion implements the Sec. 5 "combine measurement platforms"
// direction: anycast /24s detected cheaply from PlanetLab get their
// geolocation refined by re-measuring just those targets from RIPE.
type PlatformFusion struct {
	Prefixes        int
	PLReplicas      int
	RefinedReplicas int
}

// FusePlatforms refines the top-N largest detected deployments via RIPE.
func (l *Lab) FusePlatforms(topN int) PlatformFusion {
	res := PlatformFusion{}
	// Take the N findings with the largest PL enumerations.
	var fs []struct {
		count int
		idx   int
	}
	for i, f := range l.Findings {
		fs = append(fs, struct {
			count int
			idx   int
		}{f.Result.Count(), i})
	}
	for i := 0; i < len(fs); i++ {
		for j := i + 1; j < len(fs); j++ {
			if fs[j].count > fs[i].count {
				fs[i], fs[j] = fs[j], fs[i]
			}
		}
	}
	if topN > len(fs) {
		topN = len(fs)
	}
	for _, e := range fs[:topN] {
		f := l.Findings[e.idx]
		target, _ := l.World.Representative(f.Prefix)
		// Fusion = the union of both platforms' measurement sets: the
		// PlanetLab samples from the census combination plus fresh RIPE
		// samples toward just this target.
		ti, ok := l.targetIndex(f.Prefix)
		if !ok {
			continue
		}
		ms := l.Combined.Measurements(ti)
		ms = append(ms, measureFromVPs(l.RIPE.VPs(), l.Config.Censuses, func(vp platform.VP, round uint64) netsim.Reply {
			return l.World.ProbeICMP(vp, target, round)
		})...)
		refined := core.Analyze(l.Cities, ms, core.Options{})
		res.Prefixes++
		res.PLReplicas += f.Result.Count()
		res.RefinedReplicas += refined.Count()
	}
	return res
}

// Report renders the fusion summary.
func (r PlatformFusion) Report() string {
	return fmt.Sprintf("Extension - platform fusion (Sec. 5): RIPE refinement of the %d largest PL detections\n"+
		"  PlanetLab enumerated %d replicas; RIPE refinement reaches %d (+%.0f%%)\n",
		r.Prefixes, r.PLReplicas, r.RefinedReplicas,
		100*float64(r.RefinedReplicas-r.PLReplicas)/float64(r.PLReplicas))
}
