package experiments

import (
	"fmt"

	"anycastmap/internal/analysis"
	"anycastmap/internal/census"
)

// RIPECensusResult is the Sec. 3.2 what-if: the same census campaign run
// from the RIPE-like platform instead of PlanetLab. The paper could not do
// this (RIPE Atlas caps probing rates and budgets and cannot run custom
// software); the simulator can, quantifying what the platform choice costs.
type RIPECensusResult struct {
	PLVPs, RIPEVPs int
	// PLDetected is the four-census PlanetLab combination;
	// PLSingleDetected one PlanetLab census - the apples-to-apples
	// comparison for RIPE's single census.
	PLDetected, PLSingleDetected, RIPEDetected int
	PLReplicas, RIPEReplicas                   int
	Truth24s                                   int
	TruthReplicas                              int
}

// RIPECensus runs one RIPE census over the lab's world and compares it with
// the PlanetLab campaign.
func (l *Lab) RIPECensus() RIPECensusResult {
	res := RIPECensusResult{
		PLVPs:    len(l.Combined.VPs),
		RIPEVPs:  l.RIPE.Len(),
		Truth24s: len(l.World.Deployments()),
	}
	for _, d := range l.World.Deployments() {
		res.TruthReplicas += len(d.Replicas)
	}
	for _, f := range l.Findings {
		res.PLDetected++
		res.PLReplicas += f.Result.Count()
	}
	// Both single-census views stream through a campaign with the
	// incremental analyzer (one fold + one dirty-set analysis — identical
	// to batch Combine + AnalyzeAll, without materializing a second
	// combined matrix API-side).
	analyzeSingle := func(run *census.Run) []census.Outcome {
		cp := census.NewCampaign(census.CampaignConfig{})
		cp.AttachAnalyzer(census.NewAnalyzer(l.Cities, census.AnalyzerConfig{}))
		if err := cp.FoldRun(run); err != nil {
			panic(fmt.Sprintf("ripecensus: %v", err))
		}
		cp.AnalyzeDirty()
		return cp.Outcomes()
	}
	res.PLSingleDetected = len(analyzeSingle(l.Runs[0]))

	run := census.Execute(l.World, l.RIPE.VPs(), l.Hitlist, l.Black, 21, census.Config{Seed: l.Config.Seed})
	outcomes := analyzeSingle(run)
	findings := analysis.Attribute(outcomes, l.Table)
	for _, f := range findings {
		res.RIPEDetected++
		res.RIPEReplicas += f.Result.Count()
	}
	return res
}

// Report renders the platform what-if.
func (r RIPECensusResult) Report() string {
	return fmt.Sprintf("What-if - a census from the RIPE-like platform (Sec. 3.2's intriguing direction)\n"+
		"  PlanetLab, 1 census (~261 VPs): %4d/%d anycast /24s\n"+
		"  RIPE,      1 census (%4d VPs): %4d/%d anycast /24s, %d replicas (truth %d)\n"+
		"  PlanetLab, 4 censuses combined: %4d/%d anycast /24s, %d replicas\n"+
		"  (the denser platform buys recall per census; the paper's PL choice traded that\n"+
		"   for full control of probing software and rate, then clawed recall back by combining)\n",
		r.PLSingleDetected, r.Truth24s,
		r.RIPEVPs, r.RIPEDetected, r.Truth24s, r.RIPEReplicas, r.TruthReplicas,
		r.PLDetected, r.Truth24s, r.PLReplicas)
}
