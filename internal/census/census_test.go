package census

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"anycastmap/internal/cities"
	"anycastmap/internal/core"
	"anycastmap/internal/hitlist"
	"anycastmap/internal/netsim"
	"anycastmap/internal/platform"
	"anycastmap/internal/prober"
)

// The integration testbed: a small world probed by a subset of PlanetLab.
var (
	tbOnce sync.Once
	tbW    *netsim.World
	tbH    *hitlist.Hitlist
	tbVPs  []platform.VP
	tbRun1 *Run
	tbRun2 *Run
)

func testbed(t *testing.T) (*netsim.World, *hitlist.Hitlist, []platform.VP, *Run, *Run) {
	t.Helper()
	tbOnce.Do(func() {
		cfg := netsim.DefaultConfig()
		cfg.Unicast24s = 6000
		tbW = netsim.New(cfg)
		tbH = hitlist.FromWorld(tbW).PruneNeverAlive()
		pl := platform.PlanetLab(cities.Default())
		tbVPs = pl.Sample(160, 1)
		tbRun1 = Execute(tbW, tbVPs, tbH, nil, 1, Config{Seed: 9})
		tbRun2 = Execute(tbW, pl.Sample(150, 2), tbH, nil, 2, Config{Seed: 9})
	})
	return tbW, tbH, tbVPs, tbRun1, tbRun2
}

func TestExecuteShape(t *testing.T) {
	_, h, vps, run, _ := testbed(t)
	if len(run.RTTus) != len(vps) || len(run.Stats) != len(vps) {
		t.Fatal("matrix shape mismatch")
	}
	if len(run.Targets) != h.Len() {
		t.Fatal("target list mismatch")
	}
	for v := range vps {
		if len(run.RTTus[v]) != len(run.Targets) {
			t.Fatal("row length mismatch")
		}
		if run.Stats[v].Sent != len(run.Targets) {
			t.Errorf("VP %d sent %d probes, want %d", v, run.Stats[v].Sent, len(run.Targets))
		}
	}
	if run.TotalProbes() != len(vps)*len(run.Targets) {
		t.Error("TotalProbes mismatch")
	}
	if got := len(run.CompletionTimes()); got != len(vps) {
		t.Errorf("CompletionTimes length %d", got)
	}
}

func TestEchoTargetsFraction(t *testing.T) {
	_, _, _, run, _ := testbed(t)
	frac := float64(run.EchoTargets()) / float64(len(run.Targets))
	// On the pruned hitlist ~2/3 of unicast targets respond, plus all
	// anycast; the testbed world is ~22% anycast.
	if frac < 0.6 || frac > 0.95 {
		t.Errorf("echo target fraction = %.2f", frac)
	}
}

func TestGreylistPopulated(t *testing.T) {
	_, _, _, run, _ := testbed(t)
	if run.Greylist.Len() == 0 {
		t.Fatal("census saw no greylistable errors")
	}
	bd := run.Greylist.Breakdown()
	if bd[netsim.ReplyAdminFiltered] == 0 {
		t.Error("no admin-filtered entries")
	}
}

func TestCombine(t *testing.T) {
	_, _, _, r1, r2 := testbed(t)
	c, err := Combine(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds != 2 {
		t.Error("rounds not counted")
	}
	// The union has at least as many VPs as the larger census.
	if len(c.VPs) < len(r1.VPs) || len(c.VPs) < len(r2.VPs) {
		t.Errorf("combined VPs = %d", len(c.VPs))
	}
	// No duplicate VP identities.
	seen := map[int]bool{}
	for _, vp := range c.VPs {
		if seen[vp.ID] {
			t.Fatal("duplicate VP in combination")
		}
		seen[vp.ID] = true
	}
	// Per (shared VP, target): combined RTT = min of the two runs.
	idx2 := map[int]int{}
	for vi, vp := range r2.VPs {
		idx2[vp.ID] = vi
	}
	checked := 0
	for ci, vp := range c.VPs {
		v1 := -1
		for vi, v := range r1.VPs {
			if v.ID == vp.ID {
				v1 = vi
				break
			}
		}
		v2, in2 := idx2[vp.ID]
		if v1 < 0 || !in2 {
			continue
		}
		for tix := 0; tix < len(c.Targets); tix += 97 {
			a, b := r1.RTTus[v1][tix], r2.RTTus[v2][tix]
			want := a
			if b >= 0 && (want < 0 || b < want) {
				want = b
			}
			if got := c.RTTus[ci][tix]; got != want {
				t.Fatalf("combined[%d][%d] = %d, want min(%d,%d)", ci, tix, got, a, b)
			}
			checked++
		}
		if checked > 500 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no shared VPs between the two censuses (sampling too disjoint)")
	}
}

func TestCombineErrors(t *testing.T) {
	if _, err := Combine(); err == nil {
		t.Error("empty combine should fail")
	}
	_, _, _, r1, _ := testbed(t)
	bad := &Run{Targets: r1.Targets[:1]}
	if _, err := Combine(r1, bad); err == nil {
		t.Error("mismatched target lists should fail")
	}
}

func TestAnalyzeAllNoFalsePositives(t *testing.T) {
	// The RTT model guarantees every disk contains the answering host, so
	// unicast targets can never exhibit a speed-of-light violation:
	// detection precision must be 1.
	w, _, _, r1, r2 := testbed(t)
	c, _ := Combine(r1, r2)
	outcomes := AnalyzeAll(cities.Default(), c, core.Options{}, 2, 0)
	for _, o := range outcomes {
		if !w.IsAnycast(o.Prefix()) {
			t.Fatalf("false positive: %v detected as anycast (%d replicas)", o.Prefix(), o.Result.Count())
		}
		if o.Result.Count() < 2 {
			t.Fatalf("%v: anycast outcome with %d replicas", o.Prefix(), o.Result.Count())
		}
	}
}

func TestAnalyzeAllRecall(t *testing.T) {
	w, _, _, r1, r2 := testbed(t)
	c, _ := Combine(r1, r2)
	outcomes := AnalyzeAll(cities.Default(), c, core.Options{}, 2, 0)
	detected := map[netsim.Prefix24]bool{}
	for _, o := range outcomes {
		detected[o.Prefix()] = true
	}
	recall := float64(len(detected)) / float64(len(w.Deployments()))
	if recall < 0.5 {
		t.Errorf("census recall = %.2f (%d of %d), want >= 0.5",
			recall, len(detected), len(w.Deployments()))
	}
	t.Logf("recall = %.3f (%d of %d anycast /24s)", recall, len(detected), len(w.Deployments()))
}

func TestCombinationIncreasesRecall(t *testing.T) {
	// Fig. 12: combining censuses detects more anycast /24s than a single
	// census (more VPs, sharper minima).
	_, _, _, r1, r2 := testbed(t)
	single, _ := Combine(r1)
	both, _ := Combine(r1, r2)
	db := cities.Default()
	nSingle := len(AnalyzeAll(db, single, core.Options{}, 2, 0))
	nBoth := len(AnalyzeAll(db, both, core.Options{}, 2, 0))
	if nBoth < nSingle {
		t.Errorf("combination detected fewer /24s (%d) than one census (%d)", nBoth, nSingle)
	}
	t.Logf("single census: %d, combined: %d", nSingle, nBoth)
}

func TestExecuteWithBlacklistShrinksErrors(t *testing.T) {
	w, h, vps, _, _ := testbed(t)
	bl, err := prober.BuildBlacklist(w, vps[0], h.Targets(), prober.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	run := Execute(w, vps[:10], h, bl, 3, Config{Seed: 9})
	// Errors seen during the census exclude everything the preliminary
	// blacklist caught from the same probing behaviour.
	for _, s := range run.Stats {
		if s.Sent >= h.Len() {
			t.Errorf("%s probed blacklisted hosts", s.VP.Name)
		}
	}
	// The single-VP blacklist covers error behaviour that is
	// target-deterministic; a follow-up census sees only the few hosts
	// whose error reply was transiently lost during the blacklist run.
	if run.Greylist.Len() > bl.Len()/10 {
		t.Errorf("census still saw %d greylistable errors after blacklisting %d", run.Greylist.Len(), bl.Len())
	}
}

func TestMeasurementsAssembly(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	c, _ := Combine(r1)
	for tix := range c.Targets {
		ms := c.Measurements(tix)
		if len(ms) == 0 {
			continue
		}
		for _, m := range ms {
			if m.RTT <= 0 || !m.VPLoc.Valid() || m.VP == "" {
				t.Fatalf("bad measurement %+v", m)
			}
		}
		return // checking the first target with samples suffices here
	}
}

func TestSaveLoadRun(t *testing.T) {
	_, _, _, r1, _ := testbed(t)
	var buf bytes.Buffer
	if err := SaveRun(&buf, r1); err != nil {
		t.Fatal(err)
	}
	t.Logf("serialized run: %d bytes for %d x %d matrix",
		buf.Len(), len(r1.VPs), len(r1.Targets))
	got, err := LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != r1.Round || len(got.VPs) != len(r1.VPs) || len(got.Targets) != len(r1.Targets) {
		t.Fatal("run metadata does not round trip")
	}
	for vi := range r1.VPs {
		if got.VPs[vi] != r1.VPs[vi] {
			t.Fatal("VP does not round trip")
		}
		for ti := 0; ti < len(r1.Targets); ti += 53 {
			if got.RTTus[vi][ti] != r1.RTTus[vi][ti] {
				t.Fatalf("matrix cell (%d,%d) does not round trip", vi, ti)
			}
		}
	}
	if got.Greylist.Len() != r1.Greylist.Len() {
		t.Errorf("greylist round trip: %d vs %d", got.Greylist.Len(), r1.Greylist.Len())
	}
	// A loaded run combines and analyzes exactly like the original.
	c1, _ := Combine(r1)
	c2, _ := Combine(got)
	n1 := len(AnalyzeAll(cities.Default(), c1, core.Options{}, 2, 0))
	n2 := len(AnalyzeAll(cities.Default(), c2, core.Options{}, 2, 0))
	if n1 != n2 {
		t.Errorf("loaded run analyzes differently: %d vs %d", n1, n2)
	}
}

func TestLoadRunRejectsGarbage(t *testing.T) {
	if _, err := LoadRun(bytes.NewBufferString("not a run")); err == nil {
		t.Error("garbage accepted")
	}
	// A truncated valid stream must error too.
	_, _, _, r1, _ := testbed(t)
	var buf bytes.Buffer
	if err := SaveRun(&buf, r1); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRun(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("truncated run accepted")
	}
}

func TestExecuteContextCancellation(t *testing.T) {
	w, h, vps, _, _ := testbed(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the census starts
	run, err := ExecuteContext(ctx, w, vps[:20], h, nil, 7, Config{Seed: 9})
	if err == nil {
		t.Fatal("cancelled census returned no error")
	}
	if len(run.RTTus) != 20 {
		t.Fatalf("partial run has %d rows", len(run.RTTus))
	}
	// Every row exists (all empty), so downstream code cannot panic.
	for _, row := range run.RTTus {
		if len(row) != h.Len() {
			t.Fatal("row length wrong on cancelled run")
		}
	}
	if run.TotalProbes() != 0 {
		t.Errorf("cancelled census sent %d probes", run.TotalProbes())
	}
}
